// Command loadgen drives a projpushd server with concurrent clients and
// reports the outcome mix and latency tail — the companion drill tool
// for the serving layer. Each client retries retryable outcomes (shed,
// timeout, internal, torn connections) with jittered backoff and counts
// terminal ones (over-width, parse, resource) as final.
//
//	loadgen -addr 127.0.0.1:7433 -clients 8 -requests 50 -family augpath -order 6
//	loadgen -addr 127.0.0.1:7433 -queryfile q.cq -clients 4
//
// -addr accepts a comma-separated list for multi-instance drills —
// clients spread round-robin over the endpoints (several independent
// servers, or several coordinator front ends of one fleet). Responses
// stamped with a fleet worker id are attributed per worker in the
// outcome mix, and coordinator failovers and hedge wins are summed.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"projpush/internal/cqparse"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/server"
	"projpush/internal/server/client"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7433", "projpushd address, or a comma-separated list to spread clients over several instances")
		clients   = flag.Int("clients", 4, "concurrent clients")
		requests  = flag.Int("requests", 25, "requests per client")
		method    = flag.String("method", "", "optimization method (empty = server default)")
		family    = flag.String("family", "augpath", "generated 3-COLOR family: augpath, ladder, augladder, cycle")
		order     = flag.Int("order", 6, "family order of the generated query")
		queryFile = flag.String("queryfile", "", "send this cqparse file verbatim instead of generating queries")
		cyclic    = flag.Float64("cyclic", 0, "fraction of requests drawn from dense cyclic 3-COLOR shapes (triangle, clique, wheel) — the worst-case-optimal route's workload; 0 disables")
		seed      = flag.Int64("seed", 1, "seed for client jitter and per-request family orders")
		retries   = flag.Int("retries", 4, "max retries per request")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request attempt timeout")
	)
	flag.Parse()

	queries, err := buildQueries(*queryFile, *family, *order)
	if err != nil {
		fatal(err)
	}
	var cyclicQueries []string
	if *cyclic > 0 {
		if cyclicQueries, err = buildCyclicQueries(*order); err != nil {
			fatal(err)
		}
	}

	addrs := strings.Split(*addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	type result struct {
		status  string
		worker  string
		latency time.Duration
	}
	results := make([][]result, *clients)
	var attempts int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	// inFlight tracks requests currently inside c.Query; peakInFlight is
	// its high-water mark — the concurrency the server actually saw, as
	// opposed to the -clients ceiling. aggBytes and aggPeakBytes sum the
	// server-reported per-request Bytes and PeakBytes over successful
	// answers: the total materialization the run cost the server.
	var inFlight, peakInFlight int64
	var aggBytes, aggPeakBytes int64
	var statsN int64
	// wcojRouted counts answers the server executed on the
	// worst-case-optimal route, agmAdmitted the subset that only got in
	// through the AGM-bound width override; aggSeeks/aggExtensions sum
	// the leapfrog work those answers reported.
	var wcojRouted, agmAdmitted int64
	var aggSeeks, aggExtensions int64
	// spilledRuns counts answers that went out of core, aggSpilled and
	// aggSpillFiles the disk traffic they reported; spillAdmitted counts
	// admissions that only got in through the spill override.
	var spilledRuns, spillAdmitted int64
	var aggSpilled, aggSpillFiles int64
	// failovers sums the replicas coordinators gave up on before
	// answering; hedgeWins counts answers that came from a hedge request
	// that beat the first replica. Both are zero against plain servers.
	var failovers, hedgeWins int64
	start := time.Now()
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := client.New(client.Options{
				Addr:           addrs[ci%len(addrs)],
				MaxRetries:     *retries,
				AttemptTimeout: *timeout,
				Seed:           *seed + int64(ci),
			})
			rng := rand.New(rand.NewSource(*seed + int64(ci)*7919))
			for r := 0; r < *requests; r++ {
				q := queries[rng.Intn(len(queries))]
				if len(cyclicQueries) > 0 && rng.Float64() < *cyclic {
					q = cyclicQueries[rng.Intn(len(cyclicQueries))]
				}
				t0 := time.Now()
				now := atomic.AddInt64(&inFlight, 1)
				for {
					peak := atomic.LoadInt64(&peakInFlight)
					if now <= peak || atomic.CompareAndSwapInt64(&peakInFlight, peak, now) {
						break
					}
				}
				resp, err := c.Query(context.Background(), q, *method)
				atomic.AddInt64(&inFlight, -1)
				lat := time.Since(t0)
				if resp != nil && resp.Stats != nil {
					atomic.AddInt64(&aggBytes, resp.Stats.Bytes)
					atomic.AddInt64(&aggPeakBytes, resp.Stats.PeakBytes)
					atomic.AddInt64(&statsN, 1)
					atomic.AddInt64(&aggSeeks, resp.Stats.Seeks)
					atomic.AddInt64(&aggExtensions, resp.Stats.Extensions)
					if resp.Stats.SpilledBytes > 0 {
						atomic.AddInt64(&spilledRuns, 1)
						atomic.AddInt64(&aggSpilled, resp.Stats.SpilledBytes)
						atomic.AddInt64(&aggSpillFiles, int64(resp.Stats.SpillFiles))
					}
				}
				if resp != nil && resp.Verdict != nil && resp.Verdict.AdmittedOnSpill {
					atomic.AddInt64(&spillAdmitted, 1)
				}
				if resp != nil && resp.Verdict != nil && resp.Verdict.Method == "wcoj" {
					atomic.AddInt64(&wcojRouted, 1)
					if resp.Verdict.AdmittedOnAGM {
						atomic.AddInt64(&agmAdmitted, 1)
					}
				}
				status := "transport_error"
				worker := ""
				if resp != nil {
					status = string(resp.Status)
					worker = resp.Worker
					atomic.AddInt64(&failovers, int64(resp.Failovers))
					if resp.Hedged {
						atomic.AddInt64(&hedgeWins, 1)
					}
				} else if err == nil {
					status = string(server.StatusOK)
				}
				results[ci] = append(results[ci], result{status: status, worker: worker, latency: lat})
			}
			mu.Lock()
			attempts += c.Attempts()
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []result
	for _, rs := range results {
		all = append(all, rs...)
	}
	counts := make(map[string]int)
	perWorker := make(map[string]map[string]int)
	lats := make([]time.Duration, 0, len(all))
	for _, r := range all {
		counts[r.status]++
		lats = append(lats, r.latency)
		if r.worker != "" {
			m := perWorker[r.worker]
			if m == nil {
				m = make(map[string]int)
				perWorker[r.worker] = m
			}
			m[r.status]++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("loadgen: %d requests (%d round trips incl. retries) in %v, %.1f req/s\n",
		len(all), attempts, elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds())
	statuses := make([]string, 0, len(counts))
	for s := range counts {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	for _, s := range statuses {
		fmt.Printf("  %-16s %d\n", s, counts[s])
	}
	if len(perWorker) > 0 {
		workers := make([]string, 0, len(perWorker))
		for w := range perWorker {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		fmt.Println("per-worker outcome mix:")
		for _, w := range workers {
			wm := perWorker[w]
			ws := make([]string, 0, len(wm))
			for s := range wm {
				ws = append(ws, s)
			}
			sort.Strings(ws)
			parts := make([]string, 0, len(ws))
			total := 0
			for _, s := range ws {
				parts = append(parts, fmt.Sprintf("%s=%d", s, wm[s]))
				total += wm[s]
			}
			fmt.Printf("  %-16s %-5d %s\n", w, total, strings.Join(parts, " "))
		}
	}
	if failovers > 0 || hedgeWins > 0 {
		fmt.Printf("fleet: failovers=%d hedge-wins=%d\n", failovers, hedgeWins)
	}
	fmt.Printf("latency p50=%v p95=%v max=%v\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(1.0).Round(time.Microsecond))
	fmt.Printf("concurrency peak=%d in flight (of %d clients)\n", peakInFlight, *clients)
	fmt.Printf("server bytes: total=%d peak-live=%d across %d answered requests\n",
		aggBytes, aggPeakBytes, statsN)
	if wcojRouted > 0 || aggSeeks > 0 {
		fmt.Printf("wcoj route: %d answers (%d admitted on the AGM override), seeks=%d extensions=%d\n",
			wcojRouted, agmAdmitted, aggSeeks, aggExtensions)
	}
	if spilledRuns > 0 || spillAdmitted > 0 {
		fmt.Printf("spill: %d answers went out of core (%d admitted on the spill override), %d bytes across %d files\n",
			spilledRuns, spillAdmitted, aggSpilled, aggSpillFiles)
	}
}

// buildQueries returns the request texts: the query file verbatim, or a
// few 3-COLOR instances of the family around the requested order (the
// server is expected to hold the k-COLOR edge database).
func buildQueries(path, family string, order int) ([]string, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return []string{string(data)}, nil
	}
	var queries []string
	for _, n := range []int{order, order + 1, order + 2} {
		var g *graph.Graph
		switch family {
		case "augpath":
			g = graph.AugmentedPath(n)
		case "ladder":
			g = graph.Ladder(n)
		case "augladder":
			g = graph.AugmentedLadder(n)
		case "cycle":
			g = graph.Cycle(n)
		default:
			return nil, fmt.Errorf("unknown family %q", family)
		}
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := cqparse.WriteQuery(&buf, q); err != nil {
			return nil, err
		}
		queries = append(queries, buf.String())
	}
	return queries, nil
}

// buildCyclicQueries returns dense cyclic 3-COLOR request texts — the
// triangle, a clique at the requested order (capped so the answer bound
// stays sane), and a wheel — the shapes whose plan widths blow past
// any admission cap while the AGM bound stays small, so a server with
// the override on routes them to the worst-case-optimal executor.
func buildCyclicQueries(order int) ([]string, error) {
	k := order
	if k > 6 {
		k = 6
	}
	if k < 4 {
		k = 4
	}
	w := order
	if w < 5 {
		w = 5
	}
	var queries []string
	for _, g := range []*graph.Graph{graph.Cycle(3), graph.Complete(k), graph.Wheel(w)} {
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := cqparse.WriteQuery(&buf, q); err != nil {
			return nil, err
		}
		queries = append(queries, buf.String())
	}
	return queries, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
