// Command experiments reproduces the paper's figures. Each figure is a
// sweep over query size or density comparing the optimization methods;
// the output is the table of median running times the paper plots.
//
//	experiments -figure 3              # density scaling, order 20
//	experiments -figure 8 -scale 0.5   # augmented ladders at half the paper's orders
//	experiments -figure all -reps 3
//
// Paper-scale parameters are the defaults; -scale shrinks the sweep for
// quick runs (the shapes are visible well below full scale). Runs that
// exceed -timeout are reported as "timeout", as the paper reports the
// straightforward method on augmented circular ladders.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"projpush/internal/core"
	"projpush/internal/engine"
	"projpush/internal/experiments"
	"projpush/internal/faultinject"
	"projpush/internal/server/client"
)

func main() {
	var (
		figure    = flag.String("figure", "all", "figure to reproduce: 2,3,4,5,6,7,8,9,sat or all")
		scale     = flag.Float64("scale", 1.0, "scale factor on sweep sizes (0.5 = half the paper's orders)")
		reps      = flag.Int("reps", 5, "instances per data point (medians reported)")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-run execution timeout")
		free      = flag.Float64("free", -1, "free-variable fraction; -1 runs both Boolean and 20% variants")
		chart     = flag.Bool("chart", false, "render ASCII logscale charts (the paper's figure style) instead of tables")
		csv       = flag.Bool("csv", false, "emit CSV (median seconds per method) instead of tables")
		workers   = flag.Int("workers", 1, "harness goroutines per data point, also the planner's GEQO island count; structural methods are identical for any value, the cost-based naive planner on GEQO-sized queries depends deterministically on it (default matches the serial planner)")
		cache     = flag.Bool("cache", false, "share a subplan result cache across all measured executions")
		cachemb   = flag.Int("cachemb", 0, "subplan cache budget in MiB (0 = engine default); implies -cache")
		membudget = flag.Int("membudget", 0, "per-run materialized-bytes budget in MiB (0 = unlimited); runs that blow it are annotated 'membudget'")
		spilldir  = flag.String("spilldir", "", "spill directory for out-of-core execution: runs over the memory budget degrade to disk instead of failing (empty = spilling off)")
		maxspill  = flag.Int("maxspill", 0, "per-run spill-directory budget in MiB (0 = unlimited disk; requires -spilldir)")
		maxwidth  = flag.Int("maxwidth", 0, "width-admission cap (0 = off); plans wider than this are rejected before executing and annotated 'overwidth'")
		resilient = flag.Bool("resilient", false, "retry resource-aborted runs down the degradation ladder (early projection, then bucket elimination) instead of annotating them as failures")
		faults    = flag.String("faults", "", "fault-injection spec for robustness drills, e.g. 'join.panic=0.01,experiment.panic=0.1'; points: "+strings.Join(faultinject.PointNames(), ", "))
		faultseed = flag.Int64("faultseed", 1, "seed for the fault-injection coin flips")
		methods   = flag.String("methods", "", "comma-separated method list overriding the paper's default grid (straightforward, earlyprojection, reordering, bucketelimination, yannakakis, stream, wcoj)")
		connect   = flag.String("connect", "", "route every measurement through the projpushd server or fleet coordinator at this address instead of the local engine; the CSV gains per-method failover/hedge columns")
	)
	flag.Parse()

	if *faults != "" {
		if err := faultinject.Enable(*faults, *faultseed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -faults:", err)
			os.Exit(1)
		}
		defer faultinject.Disable()
	}

	render := func(s *experiments.Series) string {
		switch {
		case *csv:
			return experiments.CSV(s)
		case *chart:
			return experiments.Chart(s, 16)
		default:
			return experiments.Report(s)
		}
	}

	base := experiments.Config{
		Seed: *seed, Reps: *reps, Timeout: *timeout, Workers: *workers,
		MaxBytes: int64(*membudget) << 20, Resilient: *resilient,
		MaxWidth: *maxwidth,
		SpillDir: *spilldir, MaxSpillBytes: int64(*maxspill) << 20,
	}
	if *methods != "" {
		ms, err := parseMethods(*methods)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -methods:", err)
			os.Exit(1)
		}
		base.Methods = ms
	}
	if *cache || *cachemb > 0 {
		base.Cache = engine.NewCache(int64(*cachemb) << 20)
	}
	if *connect != "" {
		// Each measured request carries the instance's rel blocks and its
		// own timeout; the remote side's answer (or typed failure)
		// becomes the cell. Coordinator responses also feed the
		// failover/hedge columns.
		base.Fleet = client.New(client.Options{
			Addr:           *connect,
			AttemptTimeout: *timeout + 5*time.Second,
			MaxRetries:     -1,
		})
	}
	variants := []float64{0, 0.2}
	if *free >= 0 {
		variants = []float64{*free}
	}

	run := func(name string, f func(cfg experiments.Config) (*experiments.Series, error)) {
		for _, fr := range variants {
			cfg := base
			cfg.FreeFraction = fr
			s, err := f(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("== %s ==\n%s\n", name, render(s))
		}
	}

	want := func(name string) bool { return *figure == "all" || *figure == name }

	if want("2") {
		// Figure 2 has no Boolean/non-Boolean split.
		cfg := base
		s, err := experiments.CompileTimeScaling(cfg, 5, scaleFloats([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("== Figure 2: compile-time scaling (3-SAT, 5 variables) ==\n%s\n", render(s))
	}
	if want("3") {
		run("Figure 3: 3-COLOR density scaling, order 20", func(cfg experiments.Config) (*experiments.Series, error) {
			order := scaleInt(20, *scale, 6)
			return experiments.DensityScaling(cfg, order, []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6, 7, 8})
		})
	}
	if want("4") {
		run("Figure 4: 3-COLOR order scaling, density 3.0", func(cfg experiments.Config) (*experiments.Series, error) {
			return experiments.OrderScaling(cfg, 3.0, scaleInts([]int{10, 15, 20, 25, 30, 35}, *scale, 6))
		})
	}
	if want("5") {
		run("Figure 5: 3-COLOR order scaling, density 6.0", func(cfg experiments.Config) (*experiments.Series, error) {
			return experiments.OrderScaling(cfg, 6.0, scaleInts([]int{15, 20, 25, 30}, *scale, 8))
		})
	}
	structured := []struct {
		fig    string
		family experiments.Family
		orders []int
	}{
		{"6", experiments.FamilyAugmentedPath, []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}},
		{"7", experiments.FamilyLadder, []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}},
		{"8", experiments.FamilyAugmentedLadder, []int{5, 10, 15, 20, 25, 30}},
		{"9", experiments.FamilyAugmentedCircularLadder, []int{5, 10, 15, 20, 25, 30}},
	}
	for _, sc := range structured {
		if !want(sc.fig) {
			continue
		}
		sc := sc
		run(fmt.Sprintf("Figure %s: %s order scaling", sc.fig, sc.family), func(cfg experiments.Config) (*experiments.Series, error) {
			return experiments.StructuredScaling(cfg, sc.family, scaleInts(sc.orders, *scale, 3))
		})
	}
	if want("sat") {
		run("Section 7: 3-SAT density scaling, 12 variables", func(cfg experiments.Config) (*experiments.Series, error) {
			n := scaleInt(12, *scale, 6)
			return experiments.SATScaling(cfg, 3, n, []float64{1, 2, 3, 4, 5, 6})
		})
		run("Section 7: 2-SAT density scaling, 14 variables", func(cfg experiments.Config) (*experiments.Series, error) {
			n := scaleInt(14, *scale, 6)
			return experiments.SATScaling(cfg, 2, n, []float64{0.5, 1, 1.5, 2, 3})
		})
	}
}

func parseMethods(spec string) ([]core.Method, error) {
	known := append(append([]core.Method(nil), core.Methods...),
		core.MethodYannakakis, core.MethodStream, core.MethodWCOJ)
	var out []core.Method
	for _, name := range strings.Split(spec, ",") {
		m := core.Method(strings.TrimSpace(name))
		if m == "" {
			continue
		}
		ok := false
		for _, k := range known {
			if m == k {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown method %q", m)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty method list")
	}
	return out, nil
}

func scaleInt(x int, s float64, min int) int {
	v := int(float64(x)*s + 0.5)
	if v < min {
		v = min
	}
	return v
}

func scaleInts(xs []int, s float64, min int) []int {
	out := make([]int, 0, len(xs))
	seen := map[int]bool{}
	for _, x := range xs {
		v := scaleInt(x, s, min)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func scaleFloats(xs []float64, s float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * s
	}
	return out
}
