// Command projpushd serves project-join queries over TCP: a hardened,
// long-running front end to the projpush engine with width-aware
// admission control, load shedding, per-method circuit breakers, and a
// graceful SIGTERM drain.
//
//	projpushd -addr :7433 -colors 3 -maxwidth 6 -concurrency 8
//	projpushd -addr :7433 -db instance.cq -method bucketelimination -log requests.log
//
// Fleet topologies (internal/cluster):
//
//	projpushd -addr :7433 -fleet 4 -hedge        # coordinator + 4 in-process workers
//	projpushd -addr :7434 -join 127.0.0.1:7433   # worker that registers with a coordinator
//
// Clients speak the length-prefixed JSON protocol of internal/server;
// cmd/loadgen drives it under load, and `projpush -connect` sends a
// single generated instance.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"projpush/internal/cluster"
	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/instance"
	"projpush/internal/server"
	"projpush/internal/server/client"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7433", "TCP listen address")
		dbFile      = flag.String("db", "", "serve this cqparse database (rel blocks; any query clause is ignored as a sample)")
		colors      = flag.Int("colors", 3, "with no -db, serve the k-COLOR edge database for this k")
		method      = flag.String("method", string(core.MethodBucketElimination), "default optimization method")
		maxWidth    = flag.Int("maxwidth", 0, "admission threshold on predicted plan width (0 = off)")
		maxAGM      = flag.Float64("maxagm", 0, "admission threshold on the AGM output bound, in log2 rows (0 = off)")
		maxPeak     = flag.Int("maxpeak", 0, "admission threshold on predicted streaming peak bytes, in MiB (0 = off)")
		streamWidth = flag.Int("streamwidth", 0, "route method-less queries up to this elimination width to the streaming engine (0 = engine default, <0 = off)")
		wcojAGM     = flag.Float64("wcojagm", 0, "admit method-less queries over the width cap when their AGM output bound is at most this many log2 rows, routing them to the worst-case-optimal executor (0 = engine default, <0 = off)")
		concurrency = flag.Int("concurrency", 4, "concurrently executing requests")
		queue       = flag.Int("queue", 0, "bounded wait queue ahead of the executors (0 = 2x concurrency)")
		queueWait   = flag.Duration("queuewait", time.Second, "max time a request may queue before being shed")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request execution deadline")
		maxRows     = flag.Int("maxrows", 10_000_000, "intermediate row cap per request (0 = unlimited)")
		membudget   = flag.Int("membudget", 256, "materialized-bytes budget per request in MiB (0 = unlimited)")
		spilldir    = flag.String("spilldir", "", "spill directory for out-of-core execution: runs over the memory budget degrade to disk instead of failing (empty = spilling off)")
		maxspill    = flag.Int("maxspill", 0, "per-request spill-directory budget in MiB (0 = unlimited disk; requires -spilldir)")
		workers     = flag.Int("workers", 1, "executor workers per request")
		resilient   = flag.Bool("resilient", true, "degrade failed runs down the method ladder instead of failing them")
		brkN        = flag.Int("breaker", 3, "consecutive internal/memory failures that trip a method's circuit breaker (-1 disables)")
		brkCool     = flag.Duration("breakercooldown", 5*time.Second, "open-breaker cooldown before a half-open trial")
		drain       = flag.Duration("drain", 15*time.Second, "SIGTERM drain deadline for in-flight requests")
		cachemb     = flag.Int("cachemb", 0, "shared subplan cache budget in MiB (0 = no cache)")
		logFile     = flag.String("log", "", "append structured per-request JSON logs here (default stderr; 'none' disables)")
		faults      = flag.String("faults", "", "fault-injection spec for chaos drills, e.g. 'conn.drop=0.05,join.panic=0.02'; points: "+strings.Join(faultinject.PointNames(), ", "))
		faultseed   = flag.Int64("faultseed", 1, "seed for the fault-injection coin flips")
		fleetN      = flag.Int("fleet", 0, "serve a fault-tolerant fleet: this many in-process workers behind a coordinator on -addr (0 = single server)")
		hedge       = flag.Bool("hedge", false, "fleet mode: hedge slow requests against a second replica after the p95 delay")
		join        = flag.String("join", "", "worker mode: register with the fleet coordinator at this address after listening, deregister before draining")
		workerID    = flag.String("workerid", "", "fleet member id stamped on every response (worker mode; default the listen address)")
	)
	flag.Parse()

	if *faults != "" {
		if err := faultinject.Enable(*faults, *faultseed); err != nil {
			fatal(fmt.Errorf("-faults: %w", err))
		}
		defer faultinject.Disable()
	}

	db, err := loadDB(*dbFile, *colors)
	if err != nil {
		fatal(err)
	}

	cfg := server.Config{
		DB:                db,
		Method:            core.Method(*method),
		MaxWidth:          *maxWidth,
		MaxAGMLog2:        *maxAGM,
		MaxPredictedBytes: int64(*maxPeak) << 20,
		StreamWidth:       *streamWidth,
		WCOJAGMLog2:       *wcojAGM,
		MaxConcurrent:     *concurrency,
		MaxQueue:          *queue,
		QueueWait:         *queueWait,
		RequestTimeout:    *timeout,
		MaxRows:           *maxRows,
		MaxBytes:          int64(*membudget) << 20,
		SpillDir:          *spilldir,
		MaxSpillBytes:     int64(*maxspill) << 20,
		Workers:           *workers,
		Resilient:         *resilient,
		BreakerThreshold:  *brkN,
		BreakerCooldown:   *brkCool,
	}
	if *cachemb > 0 {
		cfg.Cache = engine.NewCache(int64(*cachemb) << 20)
	}
	switch *logFile {
	case "":
		cfg.Log = os.Stderr
	case "none":
	default:
		f, err := os.OpenFile(*logFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Log = f
	}

	// SIGTERM/SIGINT: readiness flips false, the listener closes,
	// in-flight requests drain under the deadline.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	if *fleetN > 0 {
		fl, err := cluster.StartFleet(*addr, cluster.FleetConfig{
			Workers: *fleetN,
			Worker:  cfg,
			Coordinator: cluster.Config{
				DB:             db,
				Method:         core.Method(*method),
				Hedge:          *hedge,
				RequestTimeout: *timeout,
				LocalFallback:  true,
				MaxRows:        *maxRows,
				MaxBytes:       int64(*membudget) << 20,
				Log:            cfg.Log,
			},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "projpushd: coordinating %d workers (%s) on %s (method=%s hedge=%v)\n",
			*fleetN, strings.Join(fl.WorkerAddrs(), ", "), fl.Addr(), *method, *hedge)
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "projpushd: %v, draining fleet (deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err = fl.Shutdown(ctx)
		cancel()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "projpushd: fleet drained cleanly")
		return
	}

	cfg.WorkerID = *workerID
	if cfg.WorkerID == "" && *join != "" {
		cfg.WorkerID = *addr
	}
	srv := server.New(cfg)
	if err := srv.Listen(*addr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "projpushd: serving %d relations on %s (method=%s maxwidth=%d concurrency=%d)\n",
		len(db), srv.Addr(), *method, *maxWidth, *concurrency)

	// Worker mode: announce ourselves to the coordinator; it routes our
	// shard of the fingerprint space here until we deregister.
	var coord *client.Client
	if *join != "" {
		coord = client.New(client.Options{Addr: *join})
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := coord.Do(ctx, &server.Request{Op: "register", Addr: srv.Addr().String()})
		cancel()
		if err != nil {
			fatal(fmt.Errorf("-join %s: %w", *join, err))
		}
		fmt.Fprintf(os.Stderr, "projpushd: registered with coordinator %s\n", *join)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "projpushd: %v, draining (deadline %v)\n", sig, *drain)
		if coord != nil {
			// Deregister first: the coordinator re-routes our shard to the
			// surviving replicas while our in-flight requests finish.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if _, err := coord.Do(ctx, &server.Request{Op: "deregister", Addr: srv.Addr().String()}); err != nil {
				fmt.Fprintf(os.Stderr, "projpushd: deregister: %v\n", err)
			}
			cancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fatal(err)
		}
		<-done
		fmt.Fprintln(os.Stderr, "projpushd: drained cleanly")
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
}

// loadDB builds the served database: a cqparse file's rel blocks, or the
// k-COLOR edge database.
func loadDB(path string, colors int) (cq.Database, error) {
	if path == "" {
		return instance.ColorDatabase(colors), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	parsed, err := cqparse.Parse(f)
	if err != nil {
		return nil, err
	}
	return parsed.DB, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "projpushd:", err)
	os.Exit(1)
}
