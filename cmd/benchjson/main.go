// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark result with the
// name, iteration count, ns/op, B/op, and allocs/op. It is the back end
// of `make bench-json`, which records the kernel microbenchmarks in
// BENCH_relation.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	results := []result{} // never nil: no matches must encode as [], not null
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// BenchmarkName-8  1234  5678 ns/op  90 B/op  12 allocs/op
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		r := result{Name: strings.TrimSuffix(f[0], cpuSuffix(f[0]))}
		var err error
		if r.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			continue
		}
		if r.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS suffix of a benchmark
// name, or "" if absent, so names stay stable across machines.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
