// Command projpush runs one project-join query end to end: it generates a
// 3-COLOR instance (random or one of the paper's structured families),
// builds the plan for a chosen optimization method, executes it over the
// six-tuple edge database, and reports the answer together with the
// structural statistics the paper's analysis is about (plan width, maximum
// intermediate cardinality, tuples materialized).
//
//	projpush -family random -order 20 -density 3.0 -method bucketelimination
//	projpush -family augladder -order 10 -all
//	projpush -family ladder -order 4 -method earlyprojection -sql
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/pgplanner"
	"projpush/internal/plan"
	"projpush/internal/resilience"
	"projpush/internal/server/client"
	"projpush/internal/sqlgen"
	"projpush/internal/workload"
)

func main() {
	var (
		family    = flag.String("family", "random", "graph family: random, augpath, ladder, augladder, augcircladder, cycle, complete")
		order     = flag.Int("order", 15, "graph order (vertices for random, family parameter otherwise)")
		density   = flag.Float64("density", 3.0, "edge density m/n (random family only)")
		method    = flag.String("method", string(core.MethodBucketElimination), "optimization method: straightforward, earlyprojection, reordering, bucketelimination, yannakakis, stream, wcoj, hybrid")
		all       = flag.Bool("all", false, "run every method and compare")
		free      = flag.Float64("free", 0, "fraction of vertices kept free (0 = Boolean query)")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-run execution timeout")
		maxRows   = flag.Int("maxrows", 10_000_000, "intermediate row cap (0 = unlimited)")
		membudget = flag.Int("membudget", 0, "materialized-bytes budget in MiB (0 = unlimited)")
		spilldir  = flag.String("spilldir", "", "spill directory for out-of-core execution: runs over the memory budget degrade to disk instead of failing (empty = spilling off)")
		maxspill  = flag.Int("maxspill", 0, "spill-directory budget in MiB (0 = unlimited disk; requires -spilldir)")
		resilient = flag.Bool("resilient", false, "on row-cap/memory/internal failures, degrade to early projection then bucket elimination instead of reporting the error")
		showSQL   = flag.Bool("sql", false, "print the generated SQL instead of executing")
		explain   = flag.Bool("explain", false, "print the plan tree with actual cardinalities instead of the summary line")
		analyze   = flag.Bool("analyze", false, "print the structural report (treewidth bounds, induced widths, plan widths) and exit")
		colors    = flag.Int("colors", 3, "number of colors (k-COLOR)")
		graphFile = flag.String("graphfile", "", "load a DIMACS .col graph instead of generating one")
		cnfFile   = flag.String("cnffile", "", "load a DIMACS CNF formula and solve it as a project-join query")
		queryFile = flag.String("query", "", "load a query+database file (Datalog-style, see internal/cqparse)")
		suiteFile = flag.String("suite", "", "run every instance of a JSON workload suite (see -emitsuite)")
		emitSuite = flag.Float64("emitsuite", 0, "print the paper's workload suite at the given scale as JSON and exit")
		emitQuery = flag.Bool("emitquery", false, "print the generated instance as a query file (the -query format) and exit")
		connect   = flag.String("connect", "", "send the instance to a projpushd server at this address instead of executing locally")
		faults    = flag.String("faults", "", "fault-injection spec for robustness drills, e.g. 'join.panic=0.01,kernel.latency=500us:0.1'; points: "+strings.Join(faultinject.PointNames(), ", "))
		faultseed = flag.Int64("faultseed", 1, "seed for the fault-injection coin flips")
	)
	flag.Parse()

	if *faults != "" {
		if err := faultinject.Enable(*faults, *faultseed); err != nil {
			fatal(fmt.Errorf("-faults: %w", err))
		}
		defer faultinject.Disable()
	}

	rng := rand.New(rand.NewSource(*seed))

	if *emitSuite > 0 {
		if err := workload.WriteSuite(os.Stdout, workload.PaperSuite(*emitSuite)); err != nil {
			fatal(err)
		}
		return
	}
	opt := engine.Options{
		Timeout: *timeout, MaxRows: *maxRows, MaxBytes: int64(*membudget) << 20,
		SpillDir: *spilldir, MaxSpillBytes: int64(*maxspill) << 20,
	}

	if *suiteFile != "" {
		runSuite(*suiteFile, core.Method(*method), *all, opt, *resilient, rng)
		return
	}

	var (
		q   *cq.Query
		db  cq.Database
		g   *graph.Graph
		err error
	)
	switch {
	case *queryFile != "":
		f, ferr := os.Open(*queryFile)
		if ferr != nil {
			fatal(ferr)
		}
		parsed, ferr := cqparse.Parse(f)
		f.Close()
		if ferr != nil {
			fatal(ferr)
		}
		q, db = parsed.Query, parsed.DB
		fmt.Fprintf(os.Stderr, "instance: %s, %d atoms, %d variables, free=%v\n",
			*queryFile, len(q.Atoms), q.NumVars(), q.Free)
	case *cnfFile != "":
		f, ferr := os.Open(*cnfFile)
		if ferr != nil {
			fatal(ferr)
		}
		sat, ferr := instance.ReadDIMACSCNF(f)
		f.Close()
		if ferr != nil {
			fatal(ferr)
		}
		vars := instance.SATVariablesInClauses(sat)
		var freeVars []cq.Var
		if *free > 0 {
			freeVars = instance.ChooseFree(vars, *free, rng)
		} else {
			freeVars = vars[:1]
		}
		q, db, err = instance.SATQuery(sat, freeVars)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "instance: CNF %s, %d clauses, %d variables, free=%v\n",
			*cnfFile, len(sat.Clauses), sat.NumVars, q.Free)
	default:
		if *graphFile != "" {
			f, ferr := os.Open(*graphFile)
			if ferr != nil {
				fatal(ferr)
			}
			g, err = instance.ReadDIMACSGraph(f)
			f.Close()
		} else {
			g, err = buildGraph(*family, *order, *density, rng)
		}
		if err != nil {
			fatal(err)
		}
		var freeVars []cq.Var
		if *free > 0 {
			freeVars = instance.ChooseFree(instance.EdgeVertices(g), *free, rng)
		} else {
			freeVars = instance.BooleanFree(g)
		}
		q, err = instance.ColorQuery(g, freeVars)
		if err != nil {
			fatal(err)
		}
		db = instance.ColorDatabase(*colors)
		fmt.Fprintf(os.Stderr, "instance: %v, %d atoms, %d variables, free=%v\n", g, len(q.Atoms), q.NumVars(), q.Free)
	}

	if *emitQuery {
		if err := cqparse.Write(os.Stdout, db, q); err != nil {
			fatal(err)
		}
		return
	}
	if *connect != "" {
		runRemote(*connect, q, db, core.Method(*method), *timeout)
		return
	}
	if *analyze {
		rep, err := core.AnalyzeStructure(q)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
		return
	}

	methods := []core.Method{core.Method(*method)}
	if *all {
		methods = core.Methods
	}
	for _, m := range methods {
		var p plan.Node
		if m == "hybrid" {
			choice, err := core.Hybrid(q, pgplanner.NewCostModel(db), rng)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("hybrid picked %s (estimated cost %.0f, rows %.0f)\n",
				choice.Candidate, choice.Estimate.Cost, choice.Estimate.Rows)
			p = choice.Plan
		} else {
			var err error
			p, err = core.BuildPlan(m, q, rng)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", m, err))
			}
		}
		if *showSQL {
			sql, err := sqlgen.FromPlan(p)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- %s\n%s\n\n", m, sql)
			continue
		}
		if *explain {
			var out string
			var err error
			switch m {
			case core.MethodYannakakis:
				out, err = engine.ExplainYannakakis(q, db, opt, true)
			case core.MethodStream:
				out, err = engine.ExplainStream(p, db, opt, true)
			case core.MethodWCOJ:
				out, err = engine.ExplainWCOJ(q, db, opt, true)
			default:
				out, err = engine.Explain(p, db, opt, true)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- %s\n%s\n", m, out)
			continue
		}
		st := plan.Analyze(p)
		res, err := execute(m, p, q, db, opt, *resilient, rng)
		if err != nil {
			fmt.Printf("%-18s width=%-3d ERROR: %v\n", m, st.Width, err)
			continue
		}
		answer := "EMPTY"
		if res.Nonempty() {
			answer = fmt.Sprintf("NONEMPTY (%d tuples)", res.Rel.Len())
		}
		if res.Stats.SpilledBytes > 0 {
			answer += fmt.Sprintf(" spilled=%dB/%df", res.Stats.SpilledBytes, res.Stats.SpillFiles)
		}
		fmt.Printf("%-18s width=%-3d time=%-12v maxrows=%-8d tuples=%-9d joins=%-3d %s\n",
			m, st.Width, res.Stats.Elapsed.Round(time.Microsecond),
			res.Stats.MaxRows, res.Stats.Tuples, res.Stats.Joins, answer)
	}
}

// execute runs one method, degrading down the method ladder when resil
// is set: a row-cap, memory-budget, or internal failure retries with
// early projection and then bucket elimination, logging the abandoned
// rungs to stderr so the summary line stays comparable. The yannakakis
// method executes the full reducer, the stream method the pipelined
// executor, and the wcoj method the worst-case-optimal multiway join,
// instead of the (surrogate) plan.
func execute(m core.Method, p plan.Node, q *cq.Query, db cq.Database, opt engine.Options, resil bool, rng *rand.Rand) (*engine.Result, error) {
	var res *engine.Result
	var err error
	switch {
	case m == core.MethodYannakakis && resil:
		res, err = engine.ExecResilientStrategy(context.Background(),
			resilience.YannakakisRung(q), resilience.PlanLadder(q, rng), db, opt, 1)
	case m == core.MethodYannakakis:
		return engine.ExecYannakakis(q, db, opt)
	case m == core.MethodStream && resil:
		res, err = engine.ExecResilientStrategy(context.Background(),
			resilience.StreamRung(q), resilience.PlanLadder(q, rng), db, opt, 1)
	case m == core.MethodStream:
		return engine.ExecStream(p, db, opt)
	case m == core.MethodWCOJ && resil:
		res, err = engine.ExecResilientStrategy(context.Background(),
			resilience.WCOJRung(q), resilience.PlanLadder(q, rng), db, opt, 1)
	case m == core.MethodWCOJ:
		return engine.ExecWCOJ(q, db, opt)
	case resil:
		res, err = engine.ExecResilient(context.Background(), p, resilience.DegradationLadder(q, rng), db, opt, 1)
	default:
		return engine.Exec(p, db, opt)
	}
	if res != nil && len(res.Stats.Attempts) > 1 {
		for _, a := range res.Stats.Attempts {
			if a.Err != "" {
				fmt.Fprintf(os.Stderr, "degraded: %s failed: %s\n", a.Method, a.Err)
			}
		}
	}
	return res, err
}

// runRemote ships the instance (database and query) to a projpushd
// server and reports its verdict: the request carries the full cqparse
// rendering, so the server answers over these relations even when its
// resident database differs.
func runRemote(addr string, q *cq.Query, db cq.Database, m core.Method, timeout time.Duration) {
	var buf bytes.Buffer
	if err := cqparse.Write(&buf, db, q); err != nil {
		fatal(err)
	}
	c := client.New(client.Options{Addr: addr, AttemptTimeout: timeout})
	resp, err := c.Query(context.Background(), buf.String(), string(m))
	if err != nil {
		if resp != nil && resp.Verdict != nil {
			v := resp.Verdict
			fmt.Fprintf(os.Stderr, "verdict: plan width %d, elimination width %d, AGM log2 %.1f (thresholds: width %d, AGM log2 %.1f)\n",
				v.PlanWidth, v.ElimWidth, v.AGMLog2, v.MaxWidth, v.MaxAGMLog2)
		}
		fatal(fmt.Errorf("%s after %d attempt(s): %w", addr, c.Attempts(), err))
	}
	answer := "EMPTY"
	if resp.Answer != nil && resp.Answer.Nonempty {
		answer = fmt.Sprintf("NONEMPTY (%d tuples)", resp.Answer.Rows)
	}
	status := string(resp.Status)
	if resp.Stats != nil {
		fmt.Printf("%-18s status=%-9s time=%-12v maxrows=%-8d tuples=%-9d joins=%-3d %s\n",
			m, status, time.Duration(resp.Stats.ElapsedUS)*time.Microsecond,
			resp.Stats.MaxRows, resp.Stats.Tuples, resp.Stats.Joins, answer)
		for _, a := range resp.Stats.Attempts {
			if a.Err != "" {
				fmt.Fprintf(os.Stderr, "degraded: %s failed: %s\n", a.Method, a.Err)
			}
		}
	} else {
		fmt.Printf("%-18s status=%-9s %s\n", m, status, answer)
	}
}

// runSuite executes every spec of a workload suite under the chosen
// method(s), one summary line per (spec, method).
func runSuite(path string, method core.Method, all bool, opt engine.Options, resil bool, rng *rand.Rand) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	suite, err := workload.ReadSuite(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	methods := []core.Method{method}
	if all {
		methods = core.Methods
	}
	fmt.Printf("suite %s: %d instances\n", suite.Name, len(suite.Specs))
	for _, sp := range suite.Specs {
		q, db, err := sp.Build()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sp.Name, err))
		}
		for _, m := range methods {
			p, err := core.BuildPlan(m, q, rng)
			if err != nil {
				fatal(fmt.Errorf("%s %s: %w", sp.Name, m, err))
			}
			st := plan.Analyze(p)
			res, err := execute(m, p, q, db, opt, resil, rng)
			if err != nil {
				fmt.Printf("%-28s %-18s width=%-3d TIMEOUT/%v\n", sp.Name, m, st.Width, err)
				continue
			}
			answer := "EMPTY"
			if res.Nonempty() {
				answer = "NONEMPTY"
			}
			fmt.Printf("%-28s %-18s width=%-3d time=%-12v %s\n",
				sp.Name, m, st.Width, res.Stats.Elapsed.Round(time.Microsecond), answer)
		}
	}
}

func buildGraph(family string, order int, density float64, rng *rand.Rand) (*graph.Graph, error) {
	switch family {
	case "random":
		return graph.RandomDensity(order, density, rng)
	case "augpath":
		return graph.AugmentedPath(order), nil
	case "ladder":
		return graph.Ladder(order), nil
	case "augladder":
		return graph.AugmentedLadder(order), nil
	case "augcircladder":
		return graph.AugmentedCircularLadder(order), nil
	case "cycle":
		return graph.Cycle(order), nil
	case "complete":
		return graph.Complete(order), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "projpush:", err)
	os.Exit(1)
}
