// Command sqlgen regenerates the paper's Appendix A: for a given instance
// it prints the SQL each optimization method produces, in the dialect the
// paper ships to PostgreSQL. With no flags it prints the pentagon example
// of the appendix under all five conversions.
//
//	sqlgen                                   # pentagon, all conversions
//	sqlgen -family ladder -order 3 -method bucketelimination
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/sqlgen"
)

func main() {
	var (
		family    = flag.String("family", "pentagon", "graph family: pentagon, random, augpath, ladder, augladder, augcircladder, cycle")
		order     = flag.Int("order", 5, "graph order")
		density   = flag.Float64("density", 2.0, "density (random family)")
		method    = flag.String("method", "all", "method, naive, or all")
		seed      = flag.Int64("seed", 1, "random seed")
		queryFile = flag.String("query", "", "render a query file (the cqparse format) instead of a generated instance")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var q *cq.Query
	var err error
	if *queryFile != "" {
		f, ferr := os.Open(*queryFile)
		if ferr != nil {
			fatal(ferr)
		}
		parsed, ferr := cqparse.Parse(f)
		f.Close()
		if ferr != nil {
			fatal(ferr)
		}
		q = parsed.Query
	} else {
		q, err = buildQuery(*family, *order, *density, rng)
		if err != nil {
			fatal(err)
		}
	}

	if *method == "naive" || *method == "all" {
		sql, err := sqlgen.Naive(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- naive\n%s\n\n", sql)
	}
	for _, m := range core.Methods {
		if *method != "all" && *method != string(m) {
			continue
		}
		p, err := core.BuildPlan(m, q, rng)
		if err != nil {
			fatal(err)
		}
		sql, err := sqlgen.FromPlan(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- %s\n%s\n\n", m, sql)
	}
}

func buildQuery(family string, order int, density float64, rng *rand.Rand) (*cq.Query, error) {
	if family == "pentagon" {
		// The Appendix A example, with its exact atom listing.
		return &cq.Query{
			Atoms: []cq.Atom{
				{Rel: "edge", Args: []cq.Var{1, 2}},
				{Rel: "edge", Args: []cq.Var{1, 5}},
				{Rel: "edge", Args: []cq.Var{4, 5}},
				{Rel: "edge", Args: []cq.Var{3, 4}},
				{Rel: "edge", Args: []cq.Var{2, 3}},
			},
			Free: []cq.Var{1},
		}, nil
	}
	var g *graph.Graph
	var err error
	switch family {
	case "random":
		g, err = graph.RandomDensity(order, density, rng)
	case "augpath":
		g = graph.AugmentedPath(order)
	case "ladder":
		g = graph.Ladder(order)
	case "augladder":
		g = graph.AugmentedLadder(order)
	case "augcircladder":
		g = graph.AugmentedCircularLadder(order)
	case "cycle":
		g = graph.Cycle(order)
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
	if err != nil {
		return nil, err
	}
	return instance.ColorQuery(g, instance.BooleanFree(g))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlgen:", err)
	os.Exit(1)
}
