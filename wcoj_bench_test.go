package projpush

import (
	"math/rand"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

// Worst-case-optimal-vs-binary-plan benchmarks on dense cyclic shapes —
// the regime the leapfrog executor exists for. On a triangle or 4-cycle
// over a random edge relation, every binary plan must materialize a
// two-atom join of about |E|²/dom rows before the closing edge can
// filter it, while the multiway join intersects all atoms variable by
// variable and never holds more than the (tiny) output plus the sorted
// indexes. `make bench-json` pins the series in BENCH_wcoj.json; the
// acceptance signal is wcoj latency or peak-bytes at least 5x under
// bucket elimination on the triangle and four-cycle shapes.

// runWCOJVariant executes one variant b.N times, reporting the
// materialized/peak bytes and (for wcoj) the leapfrog work counters.
func runWCOJVariant(b *testing.B, variant string, q *cq.Query, db cq.Database) {
	b.Helper()
	var bytes, peak, seeks, extensions int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *engine.Result
		var err error
		switch variant {
		case "wcoj":
			res, err = engine.ExecWCOJ(q, db, ybenchOpts)
		case "stream":
			p, perr := core.BuildPlan(core.MethodStream, q, nil)
			if perr != nil {
				b.Fatal(perr)
			}
			res, err = engine.ExecStream(p, db, ybenchOpts)
		default:
			p, perr := core.BuildPlan(core.Method(variant), q, nil)
			if perr != nil {
				b.Fatal(perr)
			}
			res, err = engine.Exec(p, db, ybenchOpts)
		}
		if err != nil {
			b.Fatalf("%s aborted: %v", variant, err)
		}
		bytes = res.Stats.Bytes
		peak = res.Stats.PeakBytes
		seeks = res.Stats.Seeks
		extensions = res.Stats.Extensions
	}
	b.ReportMetric(float64(bytes), "stats-bytes")
	b.ReportMetric(float64(peak), "peak-bytes")
	if seeks > 0 {
		b.ReportMetric(float64(seeks), "seeks")
		b.ReportMetric(float64(extensions), "extensions")
	}
}

func wcojVariants(b *testing.B, q *cq.Query, db cq.Database) {
	for _, v := range []string{"wcoj", string(core.MethodBucketElimination), "stream"} {
		v := v
		b.Run(v, func(b *testing.B) { runWCOJVariant(b, v, q, db) })
	}
}

// BenchmarkWCOJTriangle is the canonical worst-case-optimal workload: a
// directed triangle over one random edge relation. The binary plans
// build e⋈e (about rows²/dom tuples) before the closing atom prunes
// it; semijoin pushdown cannot help because every edge participates in
// some two-path, so the streaming engine pays the same build.
func BenchmarkWCOJTriangle(b *testing.B) {
	const rows, dom = 30_000, 1500
	rng := rand.New(rand.NewSource(11))
	db := cq.Database{"e": randomRel(rng, rows, dom, dom)}
	q := &cq.Query{
		Free: []cq.Var{0},
		Atoms: []cq.Atom{
			{Rel: "e", Args: []cq.Var{0, 1}},
			{Rel: "e", Args: []cq.Var{1, 2}},
			{Rel: "e", Args: []cq.Var{2, 0}},
		},
	}
	wcojVariants(b, q, db)
}

// BenchmarkWCOJFourCycle is the 4-cycle over the same kind of random
// edge relation: two independent two-path joins of about rows²/dom
// tuples each before the binary plans can intersect them.
func BenchmarkWCOJFourCycle(b *testing.B) {
	const rows, dom = 20_000, 1500
	rng := rand.New(rand.NewSource(13))
	db := cq.Database{"e": randomRel(rng, rows, dom, dom)}
	q := &cq.Query{
		Free: []cq.Var{0},
		Atoms: []cq.Atom{
			{Rel: "e", Args: []cq.Var{0, 1}},
			{Rel: "e", Args: []cq.Var{1, 2}},
			{Rel: "e", Args: []cq.Var{2, 3}},
			{Rel: "e", Args: []cq.Var{3, 0}},
		},
	}
	wcojVariants(b, q, db)
}

// BenchmarkWCOJClique is the paper-flavored cyclic shape: Boolean
// 6-COLOR on K7 (empty — the chromatic number is 7), where bucket
// elimination's intermediates enumerate the injective partial colorings
// of growing sub-cliques while the leapfrog join backtracks out of each
// dead branch at its first unextendable variable.
func BenchmarkWCOJClique(b *testing.B) {
	g := graph.Complete(7)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		b.Fatal(err)
	}
	db := instance.ColorDatabase(6)
	wcojVariants(b, q, db)
}
