# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test bench fuzz experiments clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...
	gofmt -l .

test:
	go test ./...

# One iteration per benchmark: regenerates every figure series quickly.
bench:
	go test -bench=. -benchmem -benchtime 1x .

fuzz:
	go test ./internal/sqlparse -fuzz 'FuzzParse$$' -fuzztime 30s
	go test ./internal/sqlparse -fuzz 'FuzzParseNaive$$' -fuzztime 30s

# Paper-scale sweeps with timeouts (slow; see -scale to shrink).
experiments:
	go run ./cmd/experiments -figure all

clean:
	go clean ./...
