# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test chaos chaos-cluster bench bench-json bench-yannakakis bench-stream bench-wcoj bench-spill fuzz experiments clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...
	gofmt -l .

test:
	go test ./...
	go test -race . ./internal/engine ./internal/relation ./internal/experiments ./internal/pgplanner ./internal/server/... ./internal/cluster

# The serving-layer acceptance drills: concurrent retrying clients vs a
# server with network + engine faults injected, and the spill drill with
# disk faults on an out-of-core server, both under the race detector.
chaos:
	go test -race -run '^TestChaosDrill(Spill)?$$' -timeout 60s -count=1 -v ./internal/server

# The fleet acceptance drill: a 4-worker fleet under a coordinator with
# 2 workers hard-killed and restarted mid-run, the worker.kill chaos
# loop armed, and network faults tearing coordinator connections, plus
# the healthy-fleet differential check against the single-process
# oracle — all under the race detector.
chaos-cluster:
	go test -race -run '^TestWorkerLossChaosDrill$$|^TestFleetDifferentialAgainstOracle$$' -timeout 60s -count=1 -v ./internal/cluster

# One iteration per benchmark: regenerates every figure series quickly.
bench:
	go test -bench=. -benchmem -benchtime 1x .

# Kernel microbenchmarks (open-addressing join/dedup vs map baselines,
# partitioned join by worker count) recorded as JSON for trend tracking,
# plus the engine/harness suite: subplan cache cached-vs-uncached
# repeated workloads, iterator-join kernel port, and harness scaling by
# worker count. The planner suite covers the incremental bitset DP,
# island GEQO by worker count, and the bucket-queue/bitset elimination
# orders, each against the map-based baseline it replaced.
bench-json:
	go test ./internal/relation -run '^$$' -bench '^BenchmarkKernel' -benchmem \
		| go run ./cmd/benchjson > BENCH_relation.json
	@cat BENCH_relation.json
	go test ./internal/engine ./internal/experiments -run '^$$' \
		-bench '^BenchmarkEngine|^BenchmarkHarness' -benchmem \
		| go run ./cmd/benchjson > BENCH_engine.json
	@cat BENCH_engine.json
	go test ./internal/pgplanner ./internal/treedec -run '^$$' \
		-bench '^BenchmarkPlanner|^BenchmarkOrder' -benchmem \
		| go run ./cmd/benchjson > BENCH_planner.json
	@cat BENCH_planner.json
	go test . -run '^$$' -bench '^BenchmarkYannakakis' -benchmem -benchtime 3x \
		| go run ./cmd/benchjson > BENCH_yannakakis.json
	@cat BENCH_yannakakis.json
	go test . -run '^$$' -bench '^BenchmarkStream' -benchmem -benchtime 3x \
		| go run ./cmd/benchjson > BENCH_stream.json
	@cat BENCH_stream.json
	go test . -run '^$$' -bench '^BenchmarkWCOJ' -benchmem -benchtime 3x \
		| go run ./cmd/benchjson > BENCH_wcoj.json
	@cat BENCH_wcoj.json
	go test . -run '^$$' -bench '^BenchmarkSpill' -benchmem -benchtime 3x \
		| go run ./cmd/benchjson > BENCH_spill.json
	@cat BENCH_spill.json

# The full-reducer-vs-plan-method series on acyclic selective workloads
# (the stats-bytes metric in the text output is the peak Stats.Bytes
# acceptance signal; B/op tracks it in the JSON).
bench-yannakakis:
	go test . -run '^$$' -bench '^BenchmarkYannakakis' -benchmem -benchtime 3x

# The streaming-vs-materializing peak-memory series on the same selective
# workloads (peak-bytes is the acceptance signal: stream at least 5x
# under the iterator on chain and spider at equal-or-better latency).
bench-stream:
	go test . -run '^$$' -bench '^BenchmarkStream' -benchmem -benchtime 3x

# The worst-case-optimal-vs-binary-plan series on dense cyclic workloads
# (triangle, 4-cycle, clique coloring; the acceptance signal is wcoj
# latency or peak-bytes at least 5x under bucket elimination).
bench-wcoj:
	go test . -run '^$$' -bench '^BenchmarkWCOJ' -benchmem -benchtime 3x

# The out-of-core series: chain and spider under a budget the in-memory
# run cannot meet (proved outside the timer), completing via spill with
# peak residency (stats-bytes) within budget-bytes.
bench-spill:
	go test . -run '^$$' -bench '^BenchmarkSpill' -benchmem -benchtime 3x

fuzz:
	go test ./internal/sqlparse -fuzz 'FuzzParse$$' -fuzztime 30s
	go test ./internal/sqlparse -fuzz 'FuzzParseNaive$$' -fuzztime 30s

# Paper-scale sweeps with timeouts (slow; see -scale to shrink).
experiments:
	go run ./cmd/experiments -figure all

clean:
	go clean ./...
