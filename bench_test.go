// Benchmarks regenerating every figure of the paper's evaluation section.
// One Benchmark per figure, with sub-benchmarks for the swept parameter
// and each optimization method, so
//
//	go test -bench=Figure3 -benchmem
//
// prints the series behind Figure 3. Absolute times differ from the
// paper's PostgreSQL-on-Itanium numbers; the shapes — who wins, the
// exponential separations, where methods blow up — are the reproduction
// targets and are recorded in EXPERIMENTS.md.
//
// Sweep sizes are scaled down from the paper so the straightforward
// baseline (deliberately exponential) finishes; cmd/experiments runs
// paper-scale sweeps with timeouts instead.
package projpush

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"projpush/internal/acyclic"
	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/joingraph"
	"projpush/internal/minibucket"
	"projpush/internal/pgplanner"
	"projpush/internal/plan"
)

// benchOpts bounds every benchmarked execution so that even the
// deliberately-bad baselines terminate.
var benchOpts = engine.Options{Timeout: 20 * time.Second, MaxRows: 8_000_000}

// runMethod executes one method over the query b.N times, reporting plan
// width and peak intermediate cardinality as benchmark metrics.
func runMethod(b *testing.B, m core.Method, q *cq.Query, db cq.Database, seed int64) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	var width, maxRows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.BuildPlan(m, q, rng)
		if err != nil {
			b.Fatal(err)
		}
		width = plan.Analyze(p).Width
		res, err := engine.Exec(p, db, benchOpts)
		if err != nil {
			b.Skipf("%s aborted (the paper reports this as a timeout): %v", m, err)
		}
		if res.Stats.MaxRows > maxRows {
			maxRows = res.Stats.MaxRows
		}
	}
	b.ReportMetric(float64(width), "width")
	b.ReportMetric(float64(maxRows), "maxrows")
}

// colorBench builds the 3-COLOR query for a graph with a fixed seed.
func colorBench(b *testing.B, g *graph.Graph, freeFrac float64, seed int64) (*cq.Query, cq.Database) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	var free []cq.Var
	if freeFrac > 0 {
		free = instance.ChooseFree(instance.EdgeVertices(g), freeFrac, rng)
	} else {
		free = instance.BooleanFree(g)
	}
	q, err := instance.ColorQuery(g, free)
	if err != nil {
		b.Fatal(err)
	}
	return q, instance.ColorDatabase(3)
}

// BenchmarkFigure2CompileTime regenerates Figure 2: the cost-based
// planner's compile time on 3-SAT queries with 5 variables as density
// grows, against the straightforward method's (trivial) plan
// construction. The DP planner runs below the GEQO threshold and the
// genetic search above it, as PostgreSQL does.
func BenchmarkFigure2CompileTime(b *testing.B) {
	for _, density := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		nvars := 5
		m := nvars * density
		rng := rand.New(rand.NewSource(int64(density)))
		sat, err := instance.RandomSAT(3, nvars, m, rng)
		if err != nil {
			b.Fatal(err)
		}
		vars := instance.SATVariablesInClauses(sat)
		q, db, err := instance.SATQuery(sat, vars[:1])
		if err != nil {
			b.Fatal(err)
		}
		cm := pgplanner.NewCostModel(db)
		b.Run(fmt.Sprintf("d=%d/naive-planner", density), func(b *testing.B) {
			var explored int64
			for i := 0; i < b.N; i++ {
				res, err := pgplanner.Plan(q, cm, rng, pgplanner.Options{})
				if err != nil {
					b.Fatal(err)
				}
				explored = res.PlansExplored
			}
			b.ReportMetric(float64(explored), "plans")
		})
		b.Run(fmt.Sprintf("d=%d/straightforward", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Straightforward(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3DensityScaling regenerates Figure 3: 3-COLOR density
// scaling at fixed order, all four methods, Boolean variant. (The paper
// uses order 20; order 14 keeps the straightforward baseline within the
// bench budget — the separations are already exponential there.)
func BenchmarkFigure3DensityScaling(b *testing.B) {
	const order = 14
	for _, density := range []float64{1, 2, 3, 4.5, 6} {
		rng := rand.New(rand.NewSource(int64(density * 100)))
		g, err := graph.RandomDensity(order, density, rng)
		if err != nil {
			b.Fatal(err)
		}
		q, db := colorBench(b, g, 0, int64(density*10))
		for _, m := range core.Methods {
			b.Run(fmt.Sprintf("d=%.1f/%s", density, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(density*10))
			})
		}
	}
}

// BenchmarkFigure3NonBoolean is the right-hand panel of Figure 3: 20% of
// the vertices stay free.
func BenchmarkFigure3NonBoolean(b *testing.B) {
	const order = 14
	for _, density := range []float64{2, 4.5} {
		rng := rand.New(rand.NewSource(int64(density * 100)))
		g, err := graph.RandomDensity(order, density, rng)
		if err != nil {
			b.Fatal(err)
		}
		q, db := colorBench(b, g, 0.2, int64(density*10))
		for _, m := range core.Methods {
			b.Run(fmt.Sprintf("d=%.1f/%s", density, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(density*10))
			})
		}
	}
}

// BenchmarkFigure4OrderScalingD3 regenerates Figure 4: order scaling at
// density 3.0. All methods run at the smaller orders; beyond order 14 the
// straightforward and reordering baselines exceed the bench budget (the
// paper shows the same divergence), so only the projection-pushing
// methods continue.
func BenchmarkFigure4OrderScalingD3(b *testing.B) {
	full := []int{10, 12, 14}
	pushOnly := []int{18, 22}
	for _, order := range full {
		g := mustRandom(b, order, 3.0, int64(order))
		q, db := colorBench(b, g, 0, int64(order))
		for _, m := range core.Methods {
			b.Run(fmt.Sprintf("n=%d/%s", order, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(order))
			})
		}
	}
	for _, order := range pushOnly {
		g := mustRandom(b, order, 3.0, int64(order))
		q, db := colorBench(b, g, 0, int64(order))
		for _, m := range []core.Method{core.MethodEarlyProjection, core.MethodBucketElimination} {
			b.Run(fmt.Sprintf("n=%d/%s", order, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(order))
			})
		}
	}
}

// BenchmarkFigure5OrderScalingD6 regenerates Figure 5: order scaling at
// density 6.0 (the overconstrained regime, where the paper finds the
// greedy methods no better than straightforward while bucket elimination
// still wins).
func BenchmarkFigure5OrderScalingD6(b *testing.B) {
	for _, order := range []int{13, 14, 16} {
		g := mustRandom(b, order, 6.0, int64(order))
		q, db := colorBench(b, g, 0, int64(order))
		for _, m := range core.Methods {
			b.Run(fmt.Sprintf("n=%d/%s", order, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(order))
			})
		}
	}
}

// structuredBench drives Figures 6–9.
func structuredBench(b *testing.B, build func(int) *graph.Graph, fullOrders, pushOrders []int) {
	b.Helper()
	for _, order := range fullOrders {
		q, db := colorBench(b, build(order), 0, int64(order))
		for _, m := range core.Methods {
			b.Run(fmt.Sprintf("n=%d/%s", order, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(order))
			})
		}
	}
	for _, order := range pushOrders {
		q, db := colorBench(b, build(order), 0, int64(order))
		for _, m := range []core.Method{core.MethodEarlyProjection, core.MethodBucketElimination} {
			b.Run(fmt.Sprintf("n=%d/%s", order, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(order))
			})
		}
	}
}

// BenchmarkFigure6AugmentedPath regenerates Figure 6.
func BenchmarkFigure6AugmentedPath(b *testing.B) {
	structuredBench(b, graph.AugmentedPath, []int{5, 8}, []int{20, 40})
}

// BenchmarkFigure7Ladder regenerates Figure 7 (where the paper finds the
// reordering heuristic *worse* than straightforward).
func BenchmarkFigure7Ladder(b *testing.B) {
	structuredBench(b, graph.Ladder, []int{5, 7}, []int{20, 40})
}

// BenchmarkFigure8AugmentedLadder regenerates Figure 8 (straightforward
// and reordering time out around order 7 in the paper).
func BenchmarkFigure8AugmentedLadder(b *testing.B) {
	structuredBench(b, graph.AugmentedLadder, []int{4, 5}, []int{15, 30})
}

// BenchmarkFigure9AugmentedCircularLadder regenerates Figure 9.
func BenchmarkFigure9AugmentedCircularLadder(b *testing.B) {
	structuredBench(b, graph.AugmentedCircularLadder, []int{4, 5}, []int{15, 30})
}

// BenchmarkStructuredNonBoolean covers the right-hand panels of
// Figures 6–9: the structured families with 20% of the vertices free.
// The paper finds the non-Boolean variants uniformly harder ("there are
// 20% less vertices to exploit in the optimization") with the same
// method ordering.
func BenchmarkStructuredNonBoolean(b *testing.B) {
	families := []struct {
		name  string
		build func(int) *graph.Graph
		order int
	}{
		{"augpath", graph.AugmentedPath, 16},
		{"ladder", graph.Ladder, 16},
		{"augladder", graph.AugmentedLadder, 10},
		{"augcircladder", graph.AugmentedCircularLadder, 10},
	}
	for _, f := range families {
		q, db := colorBench(b, f.build(f.order), 0.2, int64(f.order))
		for _, m := range []core.Method{core.MethodEarlyProjection, core.MethodBucketElimination} {
			b.Run(fmt.Sprintf("%s/%s", f.name, m), func(b *testing.B) {
				runMethod(b, m, q, db, int64(f.order))
			})
		}
	}
}

// BenchmarkSection7SAT regenerates the concluding-remarks claim: the
// method ranking carries over from 3-COLOR to 3-SAT and 2-SAT.
func BenchmarkSection7SAT(b *testing.B) {
	for _, k := range []int{2, 3} {
		nvars := 10
		for _, density := range []float64{2, 4} {
			m := int(density * float64(nvars))
			rng := rand.New(rand.NewSource(int64(m)))
			sat, err := instance.RandomSAT(k, nvars, m, rng)
			if err != nil {
				b.Fatal(err)
			}
			vars := instance.SATVariablesInClauses(sat)
			q, db, err := instance.SATQuery(sat, vars[:1])
			if err != nil {
				b.Fatal(err)
			}
			for _, meth := range core.Methods {
				b.Run(fmt.Sprintf("%d-SAT/d=%.0f/%s", k, density, meth), func(b *testing.B) {
					runMethod(b, meth, q, db, int64(m))
				})
			}
		}
	}
}

// BenchmarkAblationOrders compares elimination-order heuristics for
// bucket elimination: the paper's MCS choice against min-fill and
// min-degree, on the same random queries.
func BenchmarkAblationOrders(b *testing.B) {
	g := mustRandom(b, 18, 3.0, 99)
	q, db := colorBench(b, g, 0, 99)
	orders := map[string][]cq.Var{"mcs": core.MCSVarOrder(q, nil)}
	for _, h := range []core.OrderHeuristic{core.OrderMinFill, core.OrderMinDegree} {
		jg, elim, err := core.EliminationOrder(q, h, nil)
		if err != nil {
			b.Fatal(err)
		}
		orders[string(h)] = varOrderFromElimination(q, jg, elim)
	}
	for name, order := range orders {
		b.Run(name, func(b *testing.B) {
			var width int
			for i := 0; i < b.N; i++ {
				p, err := core.BucketEliminationOrder(q, order)
				if err != nil {
					b.Fatal(err)
				}
				width = plan.Analyze(p).Width
				if _, err := engine.Exec(p, db, benchOpts); err != nil {
					b.Skip(err)
				}
			}
			b.ReportMetric(float64(width), "width")
		})
	}
}

// BenchmarkAblationMiniBucket sweeps the mini-bucket bound on a dense
// query: smaller bounds trade exactness for width.
func BenchmarkAblationMiniBucket(b *testing.B) {
	g := mustRandom(b, 16, 4.0, 7)
	q, db := colorBench(b, g, 0, 7)
	order := core.MCSVarOrder(q, nil)
	for _, bound := range []int{3, 5, 8, len(order)} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			var exact bool
			for i := 0; i < b.N; i++ {
				res, err := minibucket.Evaluate(q, db, order, bound)
				if err != nil {
					b.Fatal(err)
				}
				exact = res.Exact
			}
			if exact {
				b.ReportMetric(1, "exact")
			} else {
				b.ReportMetric(0, "exact")
			}
		})
	}
}

// BenchmarkAblationSemijoin compares Yannakakis's algorithm (semijoin
// reduction + bottom-up join) with bucket elimination on acyclic queries
// — the paper's note that semijoins add nothing in this setting.
func BenchmarkAblationSemijoin(b *testing.B) {
	q, db := colorBench(b, graph.AugmentedPath(25), 0, 3)
	b.Run("yannakakis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := acyclic.Evaluate(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bucketelimination", func(b *testing.B) {
		runMethod(b, core.MethodBucketElimination, q, db, 3)
	})
}

// BenchmarkAblationExecutor compares the two execution models over the
// same plans: the materializing executor and the Volcano-style iterator
// engine (PostgreSQL's model). The paper's SELECT DISTINCT subqueries
// force materialization at every projection boundary, which is why the
// two models track each other — intermediate arity, not engine style,
// governs cost.
func BenchmarkAblationExecutor(b *testing.B) {
	g := mustRandom(b, 14, 3.0, 11)
	q, db := colorBench(b, g, 0, 11)
	p, err := core.BuildPlan(core.MethodBucketElimination, q, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("materializing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Exec(p, db, benchOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.ExecIterator(p, db, benchOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallel measures the parallel executor against the
// sequential one on two plan shapes that stress its two parallelism axes:
// a bushy bucket plan (independent subtrees fork) and a chain-shaped
// straightforward ladder plan, where the plan is one left-deep spine with
// no independent subtrees and every speedup must come from the
// radix-partitioned join kernel inside each join.
func BenchmarkAblationParallel(b *testing.B) {
	g := mustRandom(b, 18, 2.0, 13)
	q, db := colorBench(b, g, 0, 13)
	p, err := core.BuildPlan(core.MethodBucketElimination, q, nil)
	if err != nil {
		b.Fatal(err)
	}
	lq, ldb := colorBench(b, graph.Ladder(9), 0, 3)
	lp, err := core.BuildPlan(core.MethodStraightforward, lq, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("bushy/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.ExecParallel(p, db, benchOpts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("chain/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.ExecParallel(lp, ldb, benchOpts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLocalSearch quantifies the local-search order
// refinement (Section 7's treewidth-approximation direction): widths and
// plan times for plain MCS vs MCS + hill climbing.
func BenchmarkAblationLocalSearch(b *testing.B) {
	g := mustRandom(b, 20, 2.5, 17)
	q, db := colorBench(b, g, 0, 17)
	b.Run("mcs", func(b *testing.B) {
		runMethod(b, core.MethodBucketElimination, q, db, 17)
	})
	b.Run("mcs+localsearch", func(b *testing.B) {
		var width int
		for i := 0; i < b.N; i++ {
			p, err := core.BucketEliminationImproved(q, 300, rand.New(rand.NewSource(17)))
			if err != nil {
				b.Fatal(err)
			}
			width = plan.Analyze(p).Width
			if _, err := engine.Exec(p, db, benchOpts); err != nil {
				b.Skip(err)
			}
		}
		b.ReportMetric(float64(width), "width")
	})
}

// BenchmarkAblationHybrid measures the hybrid optimizer's total cost
// (portfolio construction + estimation + execution) against its best
// fixed candidate.
func BenchmarkAblationHybrid(b *testing.B) {
	g := mustRandom(b, 16, 3.0, 29)
	q, db := colorBench(b, g, 0, 29)
	cm := pgplanner.NewCostModel(db)
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			choice, err := core.Hybrid(q, cm, rand.New(rand.NewSource(29)))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Exec(choice.Plan, db, benchOpts); err != nil {
				b.Skip(err)
			}
		}
	})
	b.Run("bucketelimination", func(b *testing.B) {
		runMethod(b, core.MethodBucketElimination, q, db, 29)
	})
}

// BenchmarkAblationHashKey measures the join kernel's exact-packing fast
// path (byte-size domains, as in all paper workloads) against the
// verify-on-collision path (values outside byte range force FNV hashing).
func BenchmarkAblationHashKey(b *testing.B) {
	build := func(offset Value) (Database, *cq.Query) {
		rel := NewRelation([]Var{0, 1})
		for i := Value(0); i < 40; i++ {
			for j := Value(0); j < 40; j++ {
				if i != j {
					// With offset 0 all values stay below 256 and keys
					// pack exactly; a large offset forces the FNV path.
					rel.Add(Tuple{i*6 + offset, j*6 + offset})
				}
			}
		}
		db := Database{"r": rel}
		q := &cq.Query{
			Atoms: []cq.Atom{
				{Rel: "r", Args: []Var{0, 1}},
				{Rel: "r", Args: []Var{1, 2}},
				{Rel: "r", Args: []Var{2, 3}},
			},
			Free: []Var{0},
		}
		return db, q
	}
	for name, offset := range map[string]Value{"packed-bytes": 0, "hashed-wide": 100000} {
		db, q := build(offset)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(EarlyProjection, q, db, ExecOptions{}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mustRandom builds a random graph or fails the benchmark.
func mustRandom(b *testing.B, n int, density float64, seed int64) *graph.Graph {
	b.Helper()
	g, err := graph.RandomDensity(n, density, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// varOrderFromElimination converts a join-graph elimination order into
// the bucket-elimination variable order (free variables first, then the
// reverse of the elimination order).
func varOrderFromElimination(q *cq.Query, jg *joingraph.JoinGraph, elim []int) []cq.Var {
	free := make(map[cq.Var]bool, len(q.Free))
	order := append([]cq.Var(nil), q.Free...)
	for _, v := range q.Free {
		free[v] = true
	}
	for i := len(elim) - 1; i >= 0; i-- {
		v := jg.Vars[elim[i]]
		if !free[v] {
			order = append(order, v)
		}
	}
	return order
}
