package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"projpush/internal/engine"
)

// shape projects a series onto its schedule-independent content: titles,
// methods, widths, and per-cell measurement/timeout counts. Durations
// (and, under a shared cache, the hit/miss split between concurrent
// duplicate misses) are the only quantities allowed to differ between a
// sequential and a fanned-out sweep.
func shape(s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s\n", s.Title, s.XLabel)
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%g:", r.X)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %s w=%d n=%d to=%d;",
				c.Method, c.Width, len(c.Sample.Durations), c.Sample.Timeouts)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func harnessConfig(workers int, cache *engine.Cache) Config {
	return Config{
		Seed:    7,
		Reps:    3,
		Timeout: 20 * time.Second,
		Workers: workers,
		Cache:   cache,
	}
}

// TestHarnessWorkerDeterminism runs the same structured sweep
// sequentially and with a 4-worker pool, with and without a shared
// subplan cache, and checks the schedule-independent content matches
// exactly. Randomized instance generation and the SAT sweep (a fresh
// database per repetition, exercising the database fingerprint) are
// covered by the second sweep.
func TestHarnessWorkerDeterminism(t *testing.T) {
	run := func(workers int, cache *engine.Cache) (*Series, *Series) {
		s1, err := StructuredScaling(harnessConfig(workers, cache), FamilyLadder, []int{4, 6})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := SATScaling(harnessConfig(workers, cache), 3, 8, []float64{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		return s1, s2
	}

	for _, cached := range []bool{false, true} {
		name := "cache-off"
		if cached {
			name = "cache-on"
		}
		t.Run(name, func(t *testing.T) {
			mk := func() *engine.Cache {
				if cached {
					return engine.NewCache(0)
				}
				return nil
			}
			seq1, seq2 := run(1, mk())
			par1, par2 := run(4, mk())
			if got, want := shape(par1), shape(seq1); got != want {
				t.Fatalf("structured sweep diverged across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", want, got)
			}
			if got, want := shape(par2), shape(seq2); got != want {
				t.Fatalf("SAT sweep diverged across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", want, got)
			}
			if cached {
				hits := int64(0)
				for _, r := range seq1.Rows {
					for _, c := range r.Cells {
						hits += c.CacheHits
					}
				}
				if hits == 0 {
					t.Fatal("cached structured sweep recorded no hits")
				}
				if !seq1.Cache || !par1.Cache {
					t.Fatal("Series.Cache flag not set on cached sweeps")
				}
			}
		})
	}
}

// TestHarnessCSVCacheColumns pins the CSV contract: cache columns appear
// exactly when the sweep ran with a cache.
func TestHarnessCSVCacheColumns(t *testing.T) {
	s, err := StructuredScaling(harnessConfig(2, engine.NewCache(0)), FamilyAugmentedPath, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	csv := CSV(s)
	if !strings.Contains(csv, "_cache_hits") || !strings.Contains(csv, "_cache_misses") {
		t.Fatalf("cached sweep CSV lacks cache columns:\n%s", csv)
	}
	s.Cache = false
	if plain := CSV(s); strings.Contains(plain, "_cache_hits") {
		t.Fatalf("uncached CSV grew cache columns:\n%s", plain)
	}
}
