package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders a series as an ASCII plot with a logarithmic y axis —
// the terminal rendition of the paper's logscale figures. Each method
// gets a symbol; points that coincide print '*'; cells whose runs mostly
// timed out print '!' pinned to the top row. Height counts plot rows
// (excluding axes); sensible values are 10–24.
func Chart(s *Series, height int) string {
	if len(s.Rows) == 0 {
		return s.Title + "\n(no data)\n"
	}
	if height < 4 {
		height = 4
	}

	// Collect medians (seconds) and the y range.
	type point struct {
		col, method int
		y           float64 // seconds; NaN = timeout
	}
	var points []point
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for col, r := range s.Rows {
		for mi := range r.Cells {
			med, ok := r.Cells[mi].Sample.Median()
			if !ok {
				points = append(points, point{col, mi, math.NaN()})
				continue
			}
			y := med.Seconds()
			if y <= 0 {
				y = 1e-9
			}
			points = append(points, point{col, mi, y})
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) { // everything timed out
		ymin, ymax = 1e-3, 1
	}
	if ymax <= ymin {
		ymax = ymin * 10
	}
	logMin, logMax := math.Log10(ymin), math.Log10(ymax)

	symbols := methodSymbols(s)
	colWidth := 6
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(s.Rows)*colWidth))
	}
	put := func(row, col int, ch byte) {
		pos := col*colWidth + colWidth/2
		cur := grid[row][pos]
		switch {
		case cur == ' ':
			grid[row][pos] = ch
		case cur != ch:
			grid[row][pos] = '*'
		}
	}
	for _, p := range points {
		ch := symbols[p.method]
		if math.IsNaN(p.y) {
			put(0, p.col, '!')
			continue
		}
		frac := (math.Log10(p.y) - logMin) / (logMax - logMin)
		row := int(math.Round(float64(height-1) * (1 - frac)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		put(row, p.col, ch)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  (log time, '!' = timeout)\n", s.Title)
	for i, line := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.2gs ", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.2gs ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	// X axis.
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", len(s.Rows)*colWidth) + "\n")
	axis := make([]byte, len(s.Rows)*colWidth)
	for i := range axis {
		axis[i] = ' '
	}
	for col, r := range s.Rows {
		lbl := fmt.Sprintf("%g", r.X)
		pos := col*colWidth + colWidth/2 - len(lbl)/2
		for i := 0; i < len(lbl) && pos+i < len(axis); i++ {
			if pos+i >= 0 {
				axis[pos+i] = lbl[i]
			}
		}
	}
	fmt.Fprintf(&b, "%s %s  (%s)\n", strings.Repeat(" ", 10), string(axis), s.XLabel)
	// Legend.
	if len(s.Rows) > 0 {
		b.WriteString("legend: ")
		for mi, c := range s.Rows[0].Cells {
			if mi > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%c=%s", symbols[mi], c.Method)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// methodSymbols assigns one distinct symbol per method: the first unique
// uppercase letter of the method name, falling back to digits.
func methodSymbols(s *Series) []byte {
	if len(s.Rows) == 0 {
		return nil
	}
	used := map[byte]bool{'*': true, '!': true}
	out := make([]byte, len(s.Rows[0].Cells))
	for i, c := range s.Rows[0].Cells {
		var ch byte
		for j := 0; j < len(c.Method); j++ {
			cand := upper(c.Method[j])
			if !used[cand] {
				ch = cand
				break
			}
		}
		if ch == 0 {
			ch = byte('0' + i%10)
		}
		used[ch] = true
		out[i] = ch
	}
	return out
}

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}
