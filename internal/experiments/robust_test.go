package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"

	"math/rand"
	"projpush/internal/core"
	"projpush/internal/cq"
)

// robustConfig is a small sweep configuration for fault tests.
func robustConfig() Config {
	return Config{Seed: 3, Reps: 3, Timeout: 20 * time.Second}
}

// TestGeneratorFailureSpoilsOnlyItsRep feeds runPoint a generator that
// fails on one repetition and checks the point still completes: the
// spoiled rep is annotated "generator" on every cell, the other reps
// measure normally, and no error aborts the series.
func TestGeneratorFailureSpoilsOnlyItsRep(t *testing.T) {
	cfg := robustConfig().withDefaults()
	cfg.Methods = []core.Method{core.MethodEarlyProjection, core.MethodBucketElimination}
	g := graph.Ladder(4)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)

	row, err := runPoint(1, cfg, func(rep int, rng *rand.Rand) (*cq.Query, cq.Database, error) {
		if rep == 1 {
			return nil, nil, fmt.Errorf("synthetic generator failure")
		}
		return q, db, nil
	})
	if err != nil {
		t.Fatalf("generator failure aborted the point: %v", err)
	}
	for _, c := range row.Cells {
		if got := len(c.Sample.Durations); got != cfg.Reps-1 {
			t.Fatalf("cell %s measured %d reps, want %d", c.Method, got, cfg.Reps-1)
		}
		if c.Failures["generator"] != 1 {
			t.Fatalf("cell %s failures = %v, want one 'generator'", c.Method, c.Failures)
		}
		if c.Sample.Timeouts != 1 {
			t.Fatalf("cell %s timeouts = %d, want 1", c.Method, c.Sample.Timeouts)
		}
	}
}

// TestExperimentWorkerPanicIsolation injects panics into the experiment
// worker pool and checks the sweep completes with every repetition
// accounted for — measured or annotated — instead of crashing.
func TestExperimentWorkerPanicIsolation(t *testing.T) {
	defer faultinject.Disable()
	if err := faultinject.Enable("experiment.panic=0.5", 17); err != nil {
		t.Fatal(err)
	}
	cfg := robustConfig()
	cfg.Workers = 4
	s, err := StructuredScaling(cfg, FamilyLadder, []int{4, 5})
	if err != nil {
		t.Fatalf("fault-injected sweep aborted: %v", err)
	}
	panics := 0
	for _, r := range s.Rows {
		for _, c := range r.Cells {
			if got := len(c.Sample.Durations) + c.Sample.Timeouts; got != cfg.Reps {
				t.Fatalf("x=%g cell %s accounts for %d reps, want %d",
					r.X, c.Method, got, cfg.Reps)
			}
			panics += c.Failures["panic"]
		}
	}
	if panics == 0 {
		t.Fatal("no injected panic reached a cell — injection not exercised")
	}
}

// TestResilientSweepRescuesBudgetFailures is the harness-level acceptance
// check: under a byte budget sized so the straightforward method blows it
// while bucket elimination fits, a plain sweep annotates the failures and
// a Resilient sweep completes every cell by degrading to the safer
// methods — on the Figure-9 family, differentially against the plain
// sweep's structural outcome.
func TestResilientSweepRescuesBudgetFailures(t *testing.T) {
	g := graph.AugmentedCircularLadder(4)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)

	// Calibrate: budget below the straightforward appetite, above the
	// bucket-elimination one.
	sfPlan, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := engine.Exec(sfPlan, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget := sf.Stats.Bytes / 2
	bePlan, err := core.BuildPlan(core.MethodBucketElimination, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Exec(bePlan, db, engine.Options{MaxBytes: budget}); err != nil {
		t.Skipf("bucket elimination does not fit the calibrated budget %d: %v", budget, err)
	}

	cfg := robustConfig()
	cfg.Methods = []core.Method{core.MethodStraightforward}
	cfg.MaxBytes = budget

	plain, err := StructuredScaling(cfg, FamilyAugmentedCircularLadder, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	pc := plain.Rows[0].Cells[0]
	if pc.Failures["membudget"] != cfg.withDefaults().Reps {
		t.Fatalf("plain sweep failures = %v, want every rep annotated membudget", pc.Failures)
	}

	cfg.Resilient = true
	rescued, err := StructuredScaling(cfg, FamilyAugmentedCircularLadder, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	rc := rescued.Rows[0].Cells[0]
	if len(rc.Failures) != 0 {
		t.Fatalf("resilient sweep still failed: %v", rc.Failures)
	}
	if got := len(rc.Sample.Durations); got != cfg.withDefaults().Reps {
		t.Fatalf("resilient sweep measured %d reps, want %d", got, cfg.withDefaults().Reps)
	}
}

// TestFailureKindAdmissionVerdicts pins the classification of the
// serving layer's admission sentinels: rejected-at-admission kinds get
// their own annotations, distinct from mid-execution aborts.
func TestFailureKindAdmissionVerdicts(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{engine.ErrOverWidth, "overwidth"},
		{engine.ErrOverloaded, "shed"},
		{fmt.Errorf("wrapped: %w", engine.ErrOverWidth), "overwidth"},
		{engine.ErrRowLimit, "rowcap"},
		{engine.ErrMemLimit, "membudget"},
	}
	for _, c := range cases {
		if got := failureKind(c.err); got != c.want {
			t.Errorf("failureKind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestAdmissionCapRejectsBeforeExecuting sweeps with a width cap no
// method can meet: every repetition is annotated "overwidth", the cell
// counts it as rejected (not aborted), and the CSV grows the
// rejected/aborted breakdown columns.
func TestAdmissionCapRejectsBeforeExecuting(t *testing.T) {
	cfg := robustConfig()
	cfg.Methods = []core.Method{core.MethodBucketElimination}
	cfg.MaxWidth = 1 // even a single join's output is wider
	s, err := StructuredScaling(cfg, FamilyAugmentedLadder, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	cell := s.Rows[0].Cells[0]
	if got := cell.Failures["overwidth"]; got != cfg.withDefaults().Reps {
		t.Fatalf("overwidth failures = %d (of %v), want every rep", got, cell.Failures)
	}
	if cell.rejected() == 0 || cell.aborted() != 0 {
		t.Fatalf("rejected=%d aborted=%d, want all rejected", cell.rejected(), cell.aborted())
	}
	if len(cell.Sample.Durations) != 0 {
		t.Fatal("rejected repetitions must not record execution durations")
	}
	if ann := cell.annotation(); !strings.Contains(ann, "overwidth") {
		t.Fatalf("annotation %q lacks the overwidth breakdown", ann)
	}
	csv := CSV(s)
	if !strings.Contains(csv, "_rejected") || !strings.Contains(csv, "_aborted") {
		t.Fatalf("CSV of a sweep with admission rejections lacks breakdown columns:\n%s", csv)
	}
	// A clean sweep must not grow the columns (header stability).
	clean, err := StructuredScaling(robustConfig(), FamilyAugmentedPath, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if out := CSV(clean); strings.Contains(out, "_rejected") {
		t.Fatalf("clean sweep CSV grew failure columns:\n%s", out)
	}
}
