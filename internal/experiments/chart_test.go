package experiments

import (
	"strings"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/stats"
)

// syntheticSeries builds a series with known medians for chart testing.
func syntheticSeries() *Series {
	s := &Series{Title: "synthetic", XLabel: "order"}
	mk := func(ds ...time.Duration) []Cell {
		cells := make([]Cell, len(ds))
		names := []string{"straightforward", "bucketelimination"}
		for i, d := range ds {
			cells[i].Method = names[i]
			if d == 0 {
				cells[i].Sample = stats.Sample{Timeouts: 3}
			} else {
				cells[i].Sample.Add(d)
			}
		}
		return cells
	}
	s.Rows = []Row{
		{X: 5, Cells: mk(time.Millisecond, 100*time.Microsecond)},
		{X: 10, Cells: mk(100*time.Millisecond, 200*time.Microsecond)},
		{X: 15, Cells: mk(0, 400*time.Microsecond)}, // straightforward times out
	}
	return s
}

func TestChartShape(t *testing.T) {
	out := Chart(syntheticSeries(), 12)
	if !strings.Contains(out, "synthetic") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "legend: S=straightforward  B=bucketelimination") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "!") {
		t.Fatalf("timeout marker missing:\n%s", out)
	}
	// Axis labels present.
	for _, lbl := range []string{"5", "10", "15", "(order)"} {
		if !strings.Contains(out, lbl) {
			t.Fatalf("axis label %q missing:\n%s", lbl, out)
		}
	}
	// The slow method's first point sits below the top row; the fast
	// method's points sit near the bottom: count rows containing each.
	lines := strings.Split(out, "\n")
	var sRow, bRow = -1, -1
	for i, line := range lines {
		if strings.Contains(line, "S") && strings.Contains(line, "|") && sRow < 0 {
			sRow = i
		}
		if strings.Contains(line, "B") && strings.Contains(line, "|") && bRow < 0 {
			bRow = i
		}
	}
	if sRow < 0 || bRow < 0 {
		t.Fatalf("method symbols not plotted:\n%s", out)
	}
	if sRow >= bRow {
		t.Fatalf("slower method (S, row %d) must plot above faster (B, row %d):\n%s", sRow, bRow, out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	out := Chart(&Series{Title: "empty"}, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart:\n%s", out)
	}
}

func TestChartAllTimeouts(t *testing.T) {
	s := &Series{Title: "t", XLabel: "x"}
	var c Cell
	c.Method = "straightforward"
	c.Sample = stats.Sample{Timeouts: 2}
	s.Rows = []Row{{X: 1, Cells: []Cell{c}}}
	out := Chart(s, 8)
	if !strings.Contains(out, "!") {
		t.Fatalf("all-timeout chart:\n%s", out)
	}
}

func TestChartOnRealSweep(t *testing.T) {
	cfg := fast()
	cfg.Methods = []core.Method{core.MethodEarlyProjection, core.MethodBucketElimination}
	s, err := StructuredScaling(cfg, FamilyAugmentedPath, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	out := Chart(s, 10)
	if !strings.Contains(out, "E=earlyprojection") || !strings.Contains(out, "B=bucketelimination") {
		t.Fatalf("real sweep chart:\n%s", out)
	}
}

func TestMethodSymbolsDisambiguate(t *testing.T) {
	s := &Series{Rows: []Row{{Cells: []Cell{
		{Method: "straightforward"},
		{Method: "strange"}, // S taken, falls to T
		{Method: "sturdy"},  // S, T taken, falls to U
	}}}}
	sym := methodSymbols(s)
	if sym[0] == sym[1] || sym[1] == sym[2] || sym[0] == sym[2] {
		t.Fatalf("symbols collide: %c %c %c", sym[0], sym[1], sym[2])
	}
}

func TestCSV(t *testing.T) {
	out := CSV(syntheticSeries())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv shape:\n%s", out)
	}
	if lines[0] != "order,straightforward,bucketelimination" {
		t.Fatalf("csv header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "5,0.001,0.0001") {
		t.Fatalf("csv row: %q", lines[1])
	}
	// Timeout cell is empty.
	if !strings.HasPrefix(lines[3], "15,,") {
		t.Fatalf("timeout row: %q", lines[3])
	}
}
