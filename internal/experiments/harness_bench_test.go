package experiments

import (
	"fmt"
	"testing"
	"time"

	"projpush/internal/engine"
)

// benchSweep is one fixed structured sweep: 4 reps × 4 methods × 2
// orders = 32 measurements per invocation, the grid the worker pool
// fans out.
func benchSweep(b *testing.B, workers int, cache *engine.Cache) {
	b.Helper()
	cfg := Config{Seed: 11, Reps: 4, Timeout: 30 * time.Second, Workers: workers, Cache: cache}
	if _, err := StructuredScaling(cfg, FamilyLadder, []int{5, 7}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHarnessWorkers measures the batch-evaluation harness at
// increasing worker counts on a fixed sweep. Speedup tracks available
// cores: on a multi-core machine the independent (rep, method) cells
// scale near-linearly to the core count; on a single-CPU host (the CI
// container) all counts measure flat, as DESIGN.md notes for the other
// parallel paths.
func BenchmarkHarnessWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSweep(b, w, nil)
			}
		})
	}
}

// BenchmarkHarnessCache measures the same sweep with and without a
// shared subplan cache. Structured families reuse one plan shape across
// repetitions, so a warm cache collapses most executions to lookups.
func BenchmarkHarnessCache(b *testing.B) {
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSweep(b, 1, nil)
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := engine.NewCache(0)
		for i := 0; i < b.N; i++ {
			benchSweep(b, 1, c)
		}
	})
	b.Run("cached-workers=4", func(b *testing.B) {
		c := engine.NewCache(0)
		for i := 0; i < b.N; i++ {
			benchSweep(b, 4, c)
		}
	})
}
