package experiments

import (
	"strings"
	"testing"
	"time"

	"projpush/internal/core"
)

// fast returns a config small enough for unit tests.
func fast() Config {
	return Config{
		Seed:    1,
		Reps:    2,
		Timeout: 2 * time.Second,
		MaxRows: 500_000,
	}
}

func TestDensityScalingSmall(t *testing.T) {
	s, err := DensityScaling(fast(), 8, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if len(r.Cells) != len(core.Methods) {
			t.Fatalf("cells = %d", len(r.Cells))
		}
		for _, c := range r.Cells {
			if c.Sample.Runs() != 2 {
				t.Fatalf("%s at %g: runs = %d", c.Method, r.X, c.Sample.Runs())
			}
			if c.Width == 0 {
				t.Fatalf("%s: width not recorded", c.Method)
			}
		}
	}
}

func TestOrderScalingWidthOrdering(t *testing.T) {
	s, err := OrderScaling(fast(), 2.0, []int{8, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Rows {
		var sf, be int
		for _, c := range r.Cells {
			switch core.Method(c.Method) {
			case core.MethodStraightforward:
				sf = c.Width
			case core.MethodBucketElimination:
				be = c.Width
			}
		}
		if be >= sf {
			t.Fatalf("order %g: bucket width %d not below straightforward %d", r.X, be, sf)
		}
	}
}

func TestStructuredScalingFamilies(t *testing.T) {
	for _, f := range []Family{
		FamilyAugmentedPath, FamilyLadder,
		FamilyAugmentedLadder, FamilyAugmentedCircularLadder,
	} {
		cfg := fast()
		cfg.Methods = []core.Method{core.MethodEarlyProjection, core.MethodBucketElimination}
		s, err := StructuredScaling(cfg, f, []int{4, 6})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(s.Rows) != 2 || len(s.Rows[0].Cells) != 2 {
			t.Fatalf("%s: shape wrong", f)
		}
	}
}

func TestStructuredScalingUnknownFamily(t *testing.T) {
	if _, err := StructuredScaling(fast(), Family("nope"), []int{4}); err == nil {
		t.Fatal("accepted unknown family")
	}
	if _, err := BuildFamily(FamilyAugmentedCircularLadder, 2); err == nil {
		t.Fatal("accepted circular ladder of order 2")
	}
}

func TestCompileTimeScaling(t *testing.T) {
	s, err := CompileTimeScaling(fast(), 5, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if len(r.Cells) != 2 {
			t.Fatalf("cells = %d", len(r.Cells))
		}
		naive, _ := r.Cells[0].Sample.Median()
		sf, _ := r.Cells[1].Sample.Median()
		if naive < sf {
			t.Fatalf("density %g: planner compile %v below straightforward %v", r.X, naive, sf)
		}
	}
	// Planner effort grows with density.
	if s.Rows[1].Cells[0].Width <= s.Rows[0].Cells[0].Width {
		t.Fatalf("plans explored did not grow: %d -> %d",
			s.Rows[0].Cells[0].Width, s.Rows[1].Cells[0].Width)
	}
}

func TestSATScaling(t *testing.T) {
	cfg := fast()
	cfg.Methods = []core.Method{core.MethodStraightforward, core.MethodBucketElimination}
	s, err := SATScaling(cfg, 3, 8, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// 2-SAT works too.
	s2, err := SATScaling(cfg, 2, 8, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Rows) != 1 {
		t.Fatal("2-SAT scaling failed")
	}
}

func TestTimeoutsReported(t *testing.T) {
	cfg := fast()
	cfg.Timeout = time.Nanosecond
	cfg.Methods = []core.Method{core.MethodStraightforward}
	s, err := DensityScaling(cfg, 8, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Rows[0].Cells[0]
	if c.Sample.Timeouts != c.Sample.Runs() {
		t.Fatalf("expected every run to time out, got %+v", c.Sample)
	}
	if !strings.Contains(Report(s), "timeout") {
		t.Fatal("report does not show timeouts")
	}
}

func TestReportFormat(t *testing.T) {
	s, err := DensityScaling(fast(), 8, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(s)
	if !strings.Contains(rep, "density") {
		t.Fatalf("report missing x label:\n%s", rep)
	}
	for _, m := range core.Methods {
		if !strings.Contains(rep, string(m)) {
			t.Fatalf("report missing method %s:\n%s", m, rep)
		}
	}
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	if len(lines) != 3 { // title, header, one row
		t.Fatalf("report shape:\n%s", rep)
	}
}

func TestNonBooleanConfig(t *testing.T) {
	cfg := fast()
	cfg.FreeFraction = 0.2
	cfg.Methods = []core.Method{core.MethodBucketElimination}
	s, err := DensityScaling(cfg, 10, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Title, "free=20%") {
		t.Fatalf("title: %s", s.Title)
	}
}

func TestIncludeNaive(t *testing.T) {
	cfg := fast()
	cfg.IncludeNaive = true
	cfg.Methods = []core.Method{core.MethodBucketElimination}
	s, err := DensityScaling(cfg, 8, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	cells := s.Rows[0].Cells
	if len(cells) != 2 || cells[0].Method != "naive" {
		t.Fatalf("cells: %+v", cells)
	}
	if cells[0].Sample.Runs() != cfg.Reps {
		t.Fatal("naive cell not measured")
	}
	// Naive never pushes projections: its width is the variable count.
	if cells[0].Width <= cells[1].Width {
		t.Fatalf("naive width %d should exceed bucket width %d",
			cells[0].Width, cells[1].Width)
	}
}
