// Package experiments defines the paper's experiments (Figures 2–9 plus
// the 3-SAT/2-SAT consistency check of Section 7) as reusable sweeps:
// generate instances, translate them to project-join queries, build a
// plan per optimization method, execute with a timeout, and report median
// times the way the paper's plots do.
//
// The harness separates the two quantities the paper measures: plan
// construction ("compile") effort, which is what blows up for the
// cost-based naive method (Figure 2), and query execution time, which is
// what the structural methods improve (Figures 3–9).
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/pgplanner"
	"projpush/internal/plan"
	"projpush/internal/resilience"
	"projpush/internal/server"
	"projpush/internal/stats"
)

// Remote executes a measurement somewhere else — a fleet coordinator
// (cluster.Coordinator satisfies it in process, client.Client over TCP).
// The harness ships each instance as a self-contained request and takes
// the wire answer's stats, so the same sweeps that profile the local
// engine also profile a distributed fleet under failures.
type Remote interface {
	Do(ctx context.Context, req *server.Request) (*server.Response, error)
}

// Config controls a sweep.
type Config struct {
	// Seed makes the sweep reproducible.
	Seed int64
	// Reps is the number of instances measured per point; the paper
	// reports medians over repetitions.
	Reps int
	// Timeout bounds each run; aborted runs are reported as timeouts,
	// matching the paper's "timing out at around order 7" remarks.
	Timeout time.Duration
	// MaxRows caps intermediate results as a memory guard (0 = none).
	MaxRows int
	// MaxBytes caps the bytes of relation storage each run may
	// materialize (engine.Options.MaxBytes); 0 means no byte budget.
	MaxBytes int64
	// SpillDir, when non-empty, arms out-of-core execution
	// (engine.Options.SpillDir): runs that would blow MaxBytes spill
	// breaker and hash-build state to temp files under this directory
	// instead of aborting, and resilient runs retry memory failures with
	// spilling before degrading methods. Per-cell spill traffic lands in
	// Cell.SpilledBytes/SpillFiles.
	SpillDir string
	// MaxSpillBytes bounds each run's spill-directory footprint
	// (0 = unlimited disk).
	MaxSpillBytes int64
	// MaxWidth, when positive, is a width-admission cap mirroring the
	// serving layer (internal/server): a method whose plan width
	// exceeds it is rejected before execution with engine.ErrOverWidth
	// and counted as "overwidth" in Cell.Failures — rejected at
	// admission, with nothing materialized, as opposed to the kinds
	// that abort mid-execution.
	MaxWidth int
	// Resilient retries each structural-method run down the degradation
	// ladder (engine.ExecResilient with resilience.DegradationLadder)
	// when it fails on a resource limit or internal fault: the cell then
	// measures the rescued run end to end instead of recording a
	// failure. The naive baseline is never retried — its explosion is
	// the quantity Figure 2 reports.
	Resilient bool
	// FreeFraction is the fraction of vertices kept free; 0 runs the
	// Boolean variant (one projected variable), 0.2 the paper's
	// non-Boolean variant.
	FreeFraction float64
	// Methods lists the structural methods to compare; nil means all.
	Methods []core.Method
	// IncludeNaive adds the cost-based naive baseline: join order from
	// the DP/GEQO planner (compile time included in the measurement),
	// no projection pushing. The paper drops it after Figure 2 because
	// its execution matches straightforward while compilation explodes.
	IncludeNaive bool
	// Workers fans the (repetition, method) measurements of each data
	// point across this many goroutines; values < 2 run sequentially.
	// Instance generation stays sequential with the per-repetition seed
	// derivation unchanged, and every measurement draws a private RNG
	// derived from (Seed, x, rep, method), so every randomized choice —
	// instances, planner tie-breaking, free-variable selection — and
	// therefore every width, cardinality, and timeout/success outcome is
	// identical for any worker count. Only wall-clock durations (and,
	// with a shared Cache, the hit/miss split between concurrent
	// duplicate misses) vary with the schedule.
	//
	// Workers is also handed to the cost-based planner as its island
	// count (pgplanner.Options.Workers). One exception to the
	// schedule-independence above follows: with IncludeNaive (or in
	// CompileTimeScaling) on queries large enough for the genetic
	// search, the chosen join order depends deterministically on the
	// worker count, because Workers>1 splits the pool into that many
	// islands. Fixed (Seed, Workers) still reproduces bit-identical
	// results, and the default Workers=1 matches the serial planner
	// exactly, so the published figures are unchanged.
	Workers int
	// Cache, when non-nil, is a subplan result cache shared by every
	// measured execution (engine.Options.Cache). The structural
	// methods' plans share subtrees across methods and repetitions over
	// one fixed database, so repeated sweeps hit heavily; per-cell hit
	// and miss counts land in Cell.CacheHits/CacheMisses.
	Cache *engine.Cache
	// Fleet, when non-nil, routes every structural-method measurement
	// through it instead of the local engine: each repetition ships its
	// query and database as one request and measures the round trip, so
	// the sweep profiles a distributed fleet — failovers and hedge wins
	// land in Cell.Failovers/Hedges. The naive baseline (and compile-time
	// sweeps) stay local: their quantity is planner effort, not serving.
	Fleet Remote
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxRows == 0 {
		c.MaxRows = 5_000_000
	}
	if len(c.Methods) == 0 {
		c.Methods = core.Methods
	}
	return c
}

// Cell is one (x, method) measurement.
type Cell struct {
	Method string
	Sample stats.Sample
	// Width is the maximum plan width observed across repetitions —
	// the structural quantity behind the running times.
	Width int
	// CacheHits and CacheMisses total the subplan-cache traffic of this
	// cell's executions (zero when Config.Cache is nil).
	CacheHits, CacheMisses int64
	// Seeks and Extensions total the leapfrog index-seek and
	// variable-extension counts of this cell's executions; only the
	// worst-case-optimal strategy produces them, so they stay zero for
	// the plan-based methods.
	Seeks, Extensions int64
	// SpilledBytes and SpillFiles total the out-of-core traffic of this
	// cell's executions (zero unless Config.SpillDir is set and some run
	// actually spilled).
	SpilledBytes int64
	SpillFiles   int
	// Failures counts failed repetitions by kind; nil when every
	// repetition succeeded. Admission verdicts ("overwidth", "shed")
	// mean the run was rejected before executing; the rest ("timeout",
	// "rowcap", "membudget", "panic", "canceled", "generator", "error")
	// aborted mid-execution. Failed repetitions also count into
	// Sample.Timeouts, as the paper's plots lump every abort together.
	Failures map[string]int
	// Failovers and Hedges total the coordinator-side fleet events behind
	// this cell's answers: replicas given up on before an answer arrived,
	// and answers won by a hedge request (zero for local sweeps).
	Failovers, Hedges int64
}

// rejected counts the repetitions turned away at admission, before any
// intermediate was materialized.
func (c *Cell) rejected() int {
	return c.Failures["overwidth"] + c.Failures["shed"]
}

// aborted counts the repetitions that started executing and failed.
func (c *Cell) aborted() int {
	n := 0
	for k, v := range c.Failures {
		if k != "overwidth" && k != "shed" {
			n += v
		}
	}
	return n
}

// fail annotates one aborted repetition on the cell.
func (c *Cell) fail(kind string) {
	if c.Failures == nil {
		c.Failures = make(map[string]int)
	}
	c.Failures[kind]++
	c.Sample.AddTimeout()
}

// annotation renders the cell's sample for the text report. The sample
// itself lumps every abort into "(N timeouts)" the way the paper's plots
// do; when a kind other than a plain timeout occurred, that note is
// replaced with the per-kind breakdown from Failures.
func (c *Cell) annotation() string {
	s := c.Sample.String()
	if len(c.Failures) == 0 || (len(c.Failures) == 1 && c.Failures["timeout"] > 0) {
		return s
	}
	kinds := make([]string, 0, len(c.Failures))
	for k := range c.Failures {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%d %s", c.Failures[k], k)
	}
	note := "(" + strings.Join(parts, ", ") + ")"
	if i := strings.LastIndex(s, "("); i >= 0 {
		return s[:i] + note
	}
	return s + " " + note
}

// failureKind classifies an execution error for Cell.Failures.
func failureKind(err error) string {
	switch {
	case errors.Is(err, engine.ErrTimeout):
		return "timeout"
	case errors.Is(err, engine.ErrCanceled):
		return "canceled"
	case errors.Is(err, engine.ErrRowLimit):
		return "rowcap"
	case errors.Is(err, engine.ErrMemLimit):
		return "membudget"
	case errors.Is(err, engine.ErrSpill):
		return "spillfail"
	case errors.Is(err, engine.ErrInternal):
		return "panic"
	case errors.Is(err, engine.ErrOverWidth):
		return "overwidth"
	case errors.Is(err, engine.ErrOverloaded):
		return "shed"
	default:
		return "error"
	}
}

// Row is one x-coordinate of a figure with all method measurements.
type Row struct {
	X     float64
	Cells []Cell
}

// Series is a reproduced figure: a titled table of rows.
type Series struct {
	Title  string
	XLabel string
	Rows   []Row
	// Cache records whether the sweep ran with a subplan cache; CSV
	// adds per-method hit/miss columns when set.
	Cache bool
	// Fleet records whether the sweep routed through a fleet coordinator
	// (Config.Fleet); CSV adds per-method failover/hedge columns when set.
	Fleet bool
}

// Family names a structured graph family from Figure 1.
type Family string

// The structured query families of Figures 6–9.
const (
	FamilyAugmentedPath           Family = "augmented-path"
	FamilyLadder                  Family = "ladder"
	FamilyAugmentedLadder         Family = "augmented-ladder"
	FamilyAugmentedCircularLadder Family = "augmented-circular-ladder"
)

// BuildFamily constructs a family instance of the given order.
func BuildFamily(f Family, order int) (*graph.Graph, error) {
	switch f {
	case FamilyAugmentedPath:
		return graph.AugmentedPath(order), nil
	case FamilyLadder:
		return graph.Ladder(order), nil
	case FamilyAugmentedLadder:
		return graph.AugmentedLadder(order), nil
	case FamilyAugmentedCircularLadder:
		if order < 3 {
			return nil, fmt.Errorf("experiments: circular ladder needs order >= 3")
		}
		return graph.AugmentedCircularLadder(order), nil
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", f)
	}
}

// randomClamped generates a random graph at the given density, clamping
// the edge count to the simple-graph maximum so scaled-down sweeps with
// high densities degrade to complete graphs instead of failing.
func randomClamped(order int, density float64, rng *rand.Rand) (*graph.Graph, error) {
	m := int(density*float64(order) + 0.5)
	if max := order * (order - 1) / 2; m > max {
		m = max
	}
	return graph.Random(order, m, rng)
}

// freeVars picks the query's target schema per the config.
func freeVars(g *graph.Graph, frac float64, rng *rand.Rand) []cq.Var {
	if frac <= 0 {
		return instance.BooleanFree(g)
	}
	return instance.ChooseFree(instance.EdgeVertices(g), frac, rng)
}

// execOptions translates a config into engine options, threading the
// shared subplan cache through every measured execution.
func (c Config) execOptions() engine.Options {
	return engine.Options{
		Timeout: c.Timeout, MaxRows: c.MaxRows, MaxBytes: c.MaxBytes, Cache: c.Cache,
		SpillDir: c.SpillDir, MaxSpillBytes: c.MaxSpillBytes,
	}
}

// outcome is one measurement: duration, plan width, cache traffic, and
// the error (timeout / row cap) if the run was aborted.
type outcome struct {
	d                 time.Duration
	w                 int
	hits, misses      int64
	seeks, extensions int64
	spilled           int64
	spillFiles        int
	failovers         int64
	hedged            bool
	err               error
}

// fold copies a result's counters into the outcome (no-op on nil).
func (o *outcome) fold(res *engine.Result) {
	if res == nil {
		return
	}
	o.hits, o.misses = res.Stats.CacheHits, res.Stats.CacheMisses
	o.seeks, o.extensions = res.Stats.Seeks, res.Stats.Extensions
	o.spilled, o.spillFiles = res.Stats.SpilledBytes, res.Stats.SpillFiles
}

// measure builds and executes one method on one query, returning the
// execution duration (plan construction included; it is negligible, as
// the paper notes for the subquery-based methods) and the plan width.
func measure(m core.Method, q *cq.Query, db cq.Database, rng *rand.Rand, cfg Config) outcome {
	if cfg.Fleet != nil {
		return measureFleet(m, q, db, cfg)
	}
	if m == core.MethodYannakakis {
		return measureYannakakis(q, db, rng, cfg)
	}
	if m == core.MethodStream {
		return measureStream(q, db, rng, cfg)
	}
	if m == core.MethodWCOJ {
		return measureWCOJ(q, db, rng, cfg)
	}
	start := time.Now()
	p, err := core.BuildPlan(m, q, rng)
	if err != nil {
		return outcome{err: err}
	}
	w := plan.Analyze(p).Width
	if cfg.MaxWidth > 0 && w > cfg.MaxWidth {
		return outcome{w: w, err: fmt.Errorf("%w: plan width %d over admission cap %d",
			engine.ErrOverWidth, w, cfg.MaxWidth)}
	}
	var res *engine.Result
	if cfg.Resilient {
		res, err = engine.ExecResilient(context.Background(), p,
			resilience.DegradationLadder(q, rng), db, cfg.execOptions(), 1)
	} else {
		res, err = engine.Exec(p, db, cfg.execOptions())
	}
	o := outcome{d: time.Since(start), w: w, err: err}
	o.fold(res)
	return o
}

// measureYannakakis runs the full-reducer execution strategy: the join
// tree replaces the plan, its width is the admission quantity, and
// resilient runs degrade to the plan-based ladder.
func measureYannakakis(q *cq.Query, db cq.Database, rng *rand.Rand, cfg Config) outcome {
	start := time.Now()
	tree, err := engine.BuildJoinTree(q, rng)
	if err != nil {
		return outcome{err: err}
	}
	w := tree.Width()
	if cfg.MaxWidth > 0 && w > cfg.MaxWidth {
		return outcome{w: w, err: fmt.Errorf("%w: join-tree width %d over admission cap %d",
			engine.ErrOverWidth, w, cfg.MaxWidth)}
	}
	var res *engine.Result
	if cfg.Resilient {
		res, err = engine.ExecResilientStrategy(context.Background(),
			resilience.YannakakisRung(q), resilience.PlanLadder(q, rng), db, cfg.execOptions(), 1)
	} else {
		res, err = engine.ExecYannakakisTree(context.Background(), tree, db, cfg.execOptions())
	}
	o := outcome{d: time.Since(start), w: w, err: err}
	o.fold(res)
	return o
}

// measureStream runs the pipelined streaming executor: the plan shape
// is early projection's, so the width column stays comparable, but
// execution fuses projections into the operators, pushes semijoin
// filters below the hash-join builds, and materializes only at pipeline
// breakers. Resilient runs degrade down the plan-based ladder.
func measureStream(q *cq.Query, db cq.Database, rng *rand.Rand, cfg Config) outcome {
	start := time.Now()
	p, err := core.BuildPlan(core.MethodStream, q, rng)
	if err != nil {
		return outcome{err: err}
	}
	w := plan.Analyze(p).Width
	if cfg.MaxWidth > 0 && w > cfg.MaxWidth {
		return outcome{w: w, err: fmt.Errorf("%w: plan width %d over admission cap %d",
			engine.ErrOverWidth, w, cfg.MaxWidth)}
	}
	var res *engine.Result
	if cfg.Resilient {
		res, err = engine.ExecResilientStrategy(context.Background(),
			resilience.StreamRung(q), resilience.PlanLadder(q, rng), db, cfg.execOptions(), 1)
	} else {
		res, err = engine.ExecStream(p, db, cfg.execOptions())
	}
	o := outcome{d: time.Since(start), w: w, err: err}
	o.fold(res)
	return o
}

// measureWCOJ runs the worst-case-optimal multiway join. The
// bucket-elimination surrogate supplies the width column, so capped
// sweeps stay comparable — but note the surrogate width is exactly the
// quantity the leapfrog join beats on cyclic queries, which is why the
// serving layer admits wcoj routes on the AGM bound instead; the
// harness keeps MaxWidth a uniform plan-width cap. Resilient runs
// degrade to the plan-based ladder.
func measureWCOJ(q *cq.Query, db cq.Database, rng *rand.Rand, cfg Config) outcome {
	start := time.Now()
	p, err := core.BuildPlan(core.MethodWCOJ, q, rng)
	if err != nil {
		return outcome{err: err}
	}
	w := plan.Analyze(p).Width
	if cfg.MaxWidth > 0 && w > cfg.MaxWidth {
		return outcome{w: w, err: fmt.Errorf("%w: surrogate plan width %d over admission cap %d",
			engine.ErrOverWidth, w, cfg.MaxWidth)}
	}
	var res *engine.Result
	if cfg.Resilient {
		res, err = engine.ExecResilientStrategy(context.Background(),
			resilience.WCOJRung(q), resilience.PlanLadder(q, rng), db, cfg.execOptions(), 1)
	} else {
		res, err = engine.ExecWCOJ(q, db, cfg.execOptions())
	}
	o := outcome{d: time.Since(start), w: w, err: err}
	o.fold(res)
	return o
}

// measureFleet runs one measurement through Config.Fleet: the instance is
// rendered as a self-contained request (rel blocks plus the query, so the
// remote side needs no shared database) and the round trip is measured
// end to end — routing, failover, hedging, and any local rescue included.
// Wire statuses classify through the same failureKind buckets as local
// errors (a client.StatusError aliases the engine sentinels), so fleet
// and local sweeps share failure vocabulary; the plan-width column comes
// from the responder's admission verdict.
func measureFleet(m core.Method, q *cq.Query, db cq.Database, cfg Config) outcome {
	var buf bytes.Buffer
	if err := cqparse.Write(&buf, db, q); err != nil {
		return outcome{err: err}
	}
	req := &server.Request{
		Op:      "query",
		Query:   buf.String(),
		Method:  string(m),
		Timeout: cfg.Timeout.String(),
	}
	start := time.Now()
	resp, err := cfg.Fleet.Do(context.Background(), req)
	o := outcome{d: time.Since(start), err: err}
	if resp != nil {
		o.failovers = int64(resp.Failovers)
		o.hedged = resp.Hedged
		if resp.Verdict != nil {
			o.w = resp.Verdict.PlanWidth
		}
		if resp.Stats != nil {
			o.seeks, o.extensions = resp.Stats.Seeks, resp.Stats.Extensions
			o.spilled, o.spillFiles = resp.Stats.SpilledBytes, resp.Stats.SpillFiles
		}
	}
	return o
}

// measureNaive runs the naive method end to end: cost-based planning
// (DP or GEQO) picks a join order, then the straightforward-shaped plan
// executes. The returned duration includes the planner's compile time,
// the quantity that dominates it.
func measureNaive(q *cq.Query, db cq.Database, rng *rand.Rand, cfg Config) outcome {
	start := time.Now()
	cm := pgplanner.NewCostModel(db)
	res, err := pgplanner.Plan(q, cm, rng, pgplanner.Options{Workers: cfg.Workers})
	if err != nil {
		return outcome{err: err}
	}
	p, err := core.StraightforwardOrder(q, res.Order)
	if err != nil {
		return outcome{err: err}
	}
	w := plan.Analyze(p).Width
	if cfg.MaxWidth > 0 && w > cfg.MaxWidth {
		return outcome{w: w, err: fmt.Errorf("%w: plan width %d over admission cap %d",
			engine.ErrOverWidth, w, cfg.MaxWidth)}
	}
	er, err := engine.Exec(p, db, cfg.execOptions())
	o := outcome{d: time.Since(start), w: w, err: err}
	o.fold(er)
	return o
}

// repSeed derives the instance-generation seed of one repetition — the
// derivation every sweep has always used, kept stable so fixed-seed
// figures reproduce across harness versions.
func repSeed(cfg Config, x float64, rep int) int64 {
	return cfg.Seed + int64(rep)*7919 + int64(x*1000)
}

// cellSeed derives the private measurement seed of one (rep, cell) task.
// Each task owns its RNG, so the schedule — sequential or worker pool —
// cannot perturb the random choices any measurement sees.
func cellSeed(cfg Config, x float64, rep, cell int) int64 {
	return cfg.Seed + int64(rep)*7919 + int64(cell+1)*1_000_003 + int64(x*1000)
}

// runPoint measures all methods over Reps instances supplied by gen.
//
// Instances are generated sequentially (rep order, per-rep seeds), then
// the Reps × methods measurement grid fans out over cfg.Workers
// goroutines pulling from a shared queue. Results are folded into the
// row in (rep, cell) order after all tasks finish, so the produced Row —
// and therefore every figure, table, and CSV — is identical for any
// worker count, including the sequential path.
func runPoint(x float64, cfg Config, gen func(rep int, rng *rand.Rand) (*cq.Query, cq.Database, error)) (Row, error) {
	ncells := len(cfg.Methods)
	if cfg.IncludeNaive {
		ncells++
	}
	row := Row{X: x, Cells: make([]Cell, ncells)}
	if cfg.IncludeNaive {
		row.Cells[0].Method = "naive"
	}
	offset := ncells - len(cfg.Methods)
	for i, m := range cfg.Methods {
		row.Cells[offset+i].Method = string(m)
	}

	// A failing generator spoils only its own repetition: the rep's
	// cells are annotated "generator" and the rest of the series runs.
	// Aborting the whole sweep here used to throw away every completed
	// point because one instance drew an empty graph.
	type inst struct {
		q  *cq.Query
		db cq.Database
	}
	insts := make([]inst, cfg.Reps)
	genErrs := make([]error, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		rng := rand.New(rand.NewSource(repSeed(cfg, x, rep)))
		q, db, err := gen(rep, rng)
		if err != nil {
			genErrs[rep] = err
			continue
		}
		insts[rep] = inst{q: q, db: db}
	}

	// A panicking measurement is recovered at the task boundary, so one
	// pathological cell cannot take down the whole batch (or, with a
	// worker pool, the process).
	runCell := func(rep, ci int) (o outcome) {
		if genErrs[rep] != nil {
			return outcome{err: genErrs[rep]}
		}
		defer func() {
			if r := recover(); r != nil {
				o = outcome{err: fmt.Errorf("%w: experiment worker panic: %v", engine.ErrInternal, r)}
			}
		}()
		faultinject.Panic(faultinject.PanicExperimentWorker)
		rng := rand.New(rand.NewSource(cellSeed(cfg, x, rep, ci)))
		in := insts[rep]
		if cfg.IncludeNaive && ci == 0 {
			return measureNaive(in.q, in.db, rng, cfg)
		}
		return measure(cfg.Methods[ci-offset], in.q, in.db, rng, cfg)
	}

	results := make([]outcome, cfg.Reps*ncells)
	if cfg.Workers < 2 {
		for idx := range results {
			results[idx] = runCell(idx/ncells, idx%ncells)
		}
	} else {
		tasks := make(chan int)
		var wg sync.WaitGroup
		workers := cfg.Workers
		if workers > len(results) {
			workers = len(results)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range tasks {
					results[idx] = runCell(idx/ncells, idx%ncells)
				}
			}()
		}
		for idx := range results {
			tasks <- idx
		}
		close(tasks)
		wg.Wait()
	}

	for rep := 0; rep < cfg.Reps; rep++ {
		for ci := 0; ci < ncells; ci++ {
			o := results[rep*ncells+ci]
			cell := &row.Cells[ci]
			if o.w > cell.Width {
				cell.Width = o.w
			}
			cell.CacheHits += o.hits
			cell.CacheMisses += o.misses
			cell.Seeks += o.seeks
			cell.Extensions += o.extensions
			cell.SpilledBytes += o.spilled
			cell.SpillFiles += o.spillFiles
			cell.Failovers += o.failovers
			if o.hedged {
				cell.Hedges++
			}
			if o.err != nil {
				if genErrs[rep] != nil {
					cell.fail("generator")
				} else {
					cell.fail(failureKind(o.err))
				}
				continue
			}
			cell.Sample.Add(o.d)
		}
	}
	return row, nil
}

// DensityScaling reproduces Figure 3: random 3-COLOR queries of a fixed
// order with the density swept.
func DensityScaling(cfg Config, order int, densities []float64) (*Series, error) {
	cfg = cfg.withDefaults()
	db := instance.ColorDatabase(3)
	s := &Series{
		Title:  fmt.Sprintf("3-COLOR density scaling, order=%d, free=%.0f%%", order, cfg.FreeFraction*100),
		XLabel: "density",
		Cache:  cfg.Cache != nil,
		Fleet:  cfg.Fleet != nil,
	}
	for _, d := range densities {
		row, err := runPoint(d, cfg, func(rep int, rng *rand.Rand) (*cq.Query, cq.Database, error) {
			g, err := randomClamped(order, d, rng)
			if err != nil {
				return nil, nil, err
			}
			if g.M() == 0 {
				return nil, nil, fmt.Errorf("experiments: density %f yields no edges", d)
			}
			q, err := instance.ColorQuery(g, freeVars(g, cfg.FreeFraction, rng))
			if err != nil {
				return nil, nil, err
			}
			return q, db, nil
		})
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// OrderScaling reproduces Figures 4 and 5: random 3-COLOR queries of a
// fixed density with the order swept.
func OrderScaling(cfg Config, density float64, orders []int) (*Series, error) {
	cfg = cfg.withDefaults()
	db := instance.ColorDatabase(3)
	s := &Series{
		Title:  fmt.Sprintf("3-COLOR order scaling, density=%.1f, free=%.0f%%", density, cfg.FreeFraction*100),
		XLabel: "order",
		Cache:  cfg.Cache != nil,
		Fleet:  cfg.Fleet != nil,
	}
	for _, n := range orders {
		row, err := runPoint(float64(n), cfg, func(rep int, rng *rand.Rand) (*cq.Query, cq.Database, error) {
			g, err := randomClamped(n, density, rng)
			if err != nil {
				return nil, nil, err
			}
			if g.M() == 0 {
				return nil, nil, fmt.Errorf("experiments: no edges at order %d", n)
			}
			q, err := instance.ColorQuery(g, freeVars(g, cfg.FreeFraction, rng))
			if err != nil {
				return nil, nil, err
			}
			return q, db, nil
		})
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// StructuredScaling reproduces Figures 6–9: a structured family with the
// order swept.
func StructuredScaling(cfg Config, family Family, orders []int) (*Series, error) {
	cfg = cfg.withDefaults()
	db := instance.ColorDatabase(3)
	s := &Series{
		Title:  fmt.Sprintf("3-COLOR %s, free=%.0f%%", family, cfg.FreeFraction*100),
		XLabel: "order",
		Cache:  cfg.Cache != nil,
		Fleet:  cfg.Fleet != nil,
	}
	for _, n := range orders {
		g, err := BuildFamily(family, n)
		if err != nil {
			return nil, err
		}
		row, err := runPoint(float64(n), cfg, func(rep int, rng *rand.Rand) (*cq.Query, cq.Database, error) {
			q, err := instance.ColorQuery(g, freeVars(g, cfg.FreeFraction, rng))
			if err != nil {
				return nil, nil, err
			}
			return q, db, nil
		})
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// CompileTimeScaling reproduces Figure 2: the planning ("compile") effort
// of the cost-based naive method against the straightforward method on
// random 3-SAT queries with 5 variables, density swept. Cells report the
// planner's wall-clock time; for the naive method that is the DP/GEQO
// search, for straightforward it is plan construction only.
func CompileTimeScaling(cfg Config, nvars int, densities []float64) (*Series, error) {
	cfg = cfg.withDefaults()
	s := &Series{
		Title:  fmt.Sprintf("3-SAT compile-time scaling, %d variables", nvars),
		XLabel: "density",
	}
	for _, d := range densities {
		m := int(d*float64(nvars) + 0.5)
		if m < 1 {
			m = 1
		}
		row := Row{X: d, Cells: []Cell{{Method: "naive(planner)"}, {Method: "straightforward"}}}
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*104729 + int64(d*1000)))
			sat, err := instance.RandomSAT(3, nvars, m, rng)
			if err != nil {
				return nil, err
			}
			vars := instance.SATVariablesInClauses(sat)
			q, db, err := instance.SATQuery(sat, vars[:1])
			if err != nil {
				return nil, err
			}
			cm := pgplanner.NewCostModel(db)

			start := time.Now()
			res, err := pgplanner.Plan(q, cm, rng, pgplanner.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			row.Cells[0].Sample.Add(time.Since(start))
			if int(res.PlansExplored) > row.Cells[0].Width {
				// Reuse Width to carry plans explored for this figure.
				row.Cells[0].Width = int(res.PlansExplored)
			}

			start = time.Now()
			if _, err := core.Straightforward(q); err != nil {
				return nil, err
			}
			row.Cells[1].Sample.Add(time.Since(start))
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// SATScaling runs the Section 7 consistency check: the structural methods
// on random k-SAT queries with the density swept.
func SATScaling(cfg Config, k, nvars int, densities []float64) (*Series, error) {
	cfg = cfg.withDefaults()
	s := &Series{
		Title:  fmt.Sprintf("%d-SAT density scaling, %d variables, free=%.0f%%", k, nvars, cfg.FreeFraction*100),
		XLabel: "density",
		Cache:  cfg.Cache != nil,
		Fleet:  cfg.Fleet != nil,
	}
	for _, d := range densities {
		m := int(d*float64(nvars) + 0.5)
		if m < 1 {
			m = 1
		}
		row, err := runPoint(d, cfg, func(rep int, rng *rand.Rand) (*cq.Query, cq.Database, error) {
			sat, err := instance.RandomSAT(k, nvars, m, rng)
			if err != nil {
				return nil, nil, err
			}
			vars := instance.SATVariablesInClauses(sat)
			var free []cq.Var
			if cfg.FreeFraction > 0 {
				free = instance.ChooseFree(vars, cfg.FreeFraction, rng)
			} else {
				free = vars[:1]
			}
			q, db, err := instance.SATQuery(sat, free)
			if err != nil {
				return nil, nil, err
			}
			return q, db, nil
		})
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Report renders a series as an aligned text table, one row per x value
// and one column per method, cells showing the median duration (or
// "timeout") as the paper's logscale plots do.
func Report(s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	header := []string{s.XLabel}
	if len(s.Rows) > 0 {
		for _, c := range s.Rows[0].Cells {
			header = append(header, c.Method)
		}
	}
	widths := make([]int, len(header))
	var lines [][]string
	lines = append(lines, header)
	for _, r := range s.Rows {
		line := []string{fmt.Sprintf("%g", r.X)}
		for i := range r.Cells {
			line = append(line, r.Cells[i].annotation())
		}
		lines = append(lines, line)
	}
	for _, line := range lines {
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, line := range lines {
		for i, cell := range line {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// hasFailures reports whether any cell of the series recorded a failed
// repetition — the trigger for the CSV failure columns.
func hasFailures(s *Series) bool {
	for _, r := range s.Rows {
		for i := range r.Cells {
			if len(r.Cells[i].Failures) > 0 {
				return true
			}
		}
	}
	return false
}

// hasSeeks reports whether any cell recorded leapfrog seek work — the
// trigger for the CSV seek/extension columns, present only when the
// sweep ran the worst-case-optimal strategy.
func hasSeeks(s *Series) bool {
	for _, r := range s.Rows {
		for i := range r.Cells {
			if r.Cells[i].Seeks > 0 || r.Cells[i].Extensions > 0 {
				return true
			}
		}
	}
	return false
}

// hasSpill reports whether any cell spilled to disk.
func hasSpill(s *Series) bool {
	for _, r := range s.Rows {
		for i := range r.Cells {
			if r.Cells[i].SpilledBytes > 0 {
				return true
			}
		}
	}
	return false
}

// CSV renders a series as comma-separated values: one row per x with a
// median-seconds column per method (empty for timeouts) — the format for
// external plotting tools. A sweep run with a subplan cache additionally
// gets <method>_cache_hits and <method>_cache_misses columns, a sweep
// with any failed repetition gets <method>_rejected (turned away at
// admission: over-width, shed) and <method>_aborted (failed
// mid-execution) columns, a sweep that ran the worst-case-optimal
// strategy gets <method>_seeks and <method>_extensions columns with its
// leapfrog work counters, a sweep where any run spilled to disk gets
// <method>_spilled_bytes and <method>_spill_files columns, and a sweep
// routed through a fleet coordinator gets <method>_failovers and
// <method>_hedges columns with the per-cell fleet event totals.
func CSV(s *Series) string {
	failures := hasFailures(s)
	seeks := hasSeeks(s)
	spill := hasSpill(s)
	var b strings.Builder
	b.WriteString(s.XLabel)
	if len(s.Rows) > 0 {
		for _, c := range s.Rows[0].Cells {
			b.WriteString(",")
			b.WriteString(c.Method)
		}
		if s.Cache {
			for _, c := range s.Rows[0].Cells {
				fmt.Fprintf(&b, ",%s_cache_hits,%s_cache_misses", c.Method, c.Method)
			}
		}
		if failures {
			for _, c := range s.Rows[0].Cells {
				fmt.Fprintf(&b, ",%s_rejected,%s_aborted", c.Method, c.Method)
			}
		}
		if seeks {
			for _, c := range s.Rows[0].Cells {
				fmt.Fprintf(&b, ",%s_seeks,%s_extensions", c.Method, c.Method)
			}
		}
		if spill {
			for _, c := range s.Rows[0].Cells {
				fmt.Fprintf(&b, ",%s_spilled_bytes,%s_spill_files", c.Method, c.Method)
			}
		}
		if s.Fleet {
			for _, c := range s.Rows[0].Cells {
				fmt.Fprintf(&b, ",%s_failovers,%s_hedges", c.Method, c.Method)
			}
		}
	}
	b.WriteString("\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%g", r.X)
		for i := range r.Cells {
			b.WriteString(",")
			if med, ok := r.Cells[i].Sample.Median(); ok {
				fmt.Fprintf(&b, "%g", med.Seconds())
			}
		}
		if s.Cache {
			for i := range r.Cells {
				fmt.Fprintf(&b, ",%d,%d", r.Cells[i].CacheHits, r.Cells[i].CacheMisses)
			}
		}
		if failures {
			for i := range r.Cells {
				fmt.Fprintf(&b, ",%d,%d", r.Cells[i].rejected(), r.Cells[i].aborted())
			}
		}
		if seeks {
			for i := range r.Cells {
				fmt.Fprintf(&b, ",%d,%d", r.Cells[i].Seeks, r.Cells[i].Extensions)
			}
		}
		if spill {
			for i := range r.Cells {
				fmt.Fprintf(&b, ",%d,%d", r.Cells[i].SpilledBytes, r.Cells[i].SpillFiles)
			}
		}
		if s.Fleet {
			for i := range r.Cells {
				fmt.Fprintf(&b, ",%d,%d", r.Cells[i].Failovers, r.Cells[i].Hedges)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
