package cqparse

import (
	"strings"
	"testing"

	"projpush/internal/core"
	"projpush/internal/engine"
)

const triangleInput = `
# the 3-COLOR database
rel edge {
  0 1
  0 2
  1 0
  1 2
  2 0
  2 1
}

query ans(x) :- edge(x, y), edge(y, z), edge(z, x).
`

func TestParseTriangle(t *testing.T) {
	f, err := Parse(strings.NewReader(triangleInput))
	if err != nil {
		t.Fatal(err)
	}
	if f.DB["edge"].Len() != 6 || f.DB["edge"].Arity() != 2 {
		t.Fatalf("edge relation: %v", f.DB["edge"])
	}
	if len(f.Query.Atoms) != 3 || len(f.Query.Free) != 1 {
		t.Fatalf("query: %v", f.Query)
	}
	// Variable names mapped in order of first appearance (head first).
	if f.VarNames["x"] != 0 || f.VarNames["y"] != 1 || f.VarNames["z"] != 2 {
		t.Fatalf("var names: %v", f.VarNames)
	}
	// The query runs end to end: a triangle is 3-colorable.
	p, err := core.BucketElimination(f.Query, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(p, f.DB, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("triangle colors = %d, want 3", res.Rel.Len())
	}
}

func TestParseBooleanHead(t *testing.T) {
	in := `
rel r {
  1 2
}
query ans() :- r(a, b).
`
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Query.Free) != 0 {
		t.Fatalf("Boolean head gave free vars %v", f.Query.Free)
	}
}

func TestParseMultilineQuery(t *testing.T) {
	in := `
rel edge {
  0 1
  1 0
}
query ans(a) :- edge(a, b),
                edge(b, c),
                edge(c, a).
`
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Query.Atoms) != 3 {
		t.Fatalf("multiline query atoms: %v", f.Query.Atoms)
	}
}

func TestParseMultipleRelations(t *testing.T) {
	in := `
rel person {
  1
  2
}
rel likes {
  1 2
}
query ans(p) :- person(p), likes(p, q), person(q).
`
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.DB["person"].Arity() != 1 || f.DB["likes"].Arity() != 2 {
		t.Fatal("arities wrong")
	}
	res, err := engine.EvalOracle(f.Query, f.DB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains([]int32{1}) {
		t.Fatalf("result: %v", res)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no query", "rel r {\n1\n}\n"},
		{"unclosed rel", "rel r {\n1 2\n"},
		{"empty rel", "rel r {\n}\nquery ans() :- r(a).\n"},
		{"tuple arity mismatch", "rel r {\n1 2\n1\n}\nquery ans() :- r(a, b).\n"},
		{"bad value", "rel r {\none two\n}\nquery ans() :- r(a, b).\n"},
		{"redefined relation", "rel r {\n1\n}\nrel r {\n2\n}\nquery ans() :- r(a).\n"},
		{"bad header", "rel r\n"},
		{"garbage line", "hello\n"},
		{"query missing turnstile", "rel r {\n1\n}\nquery ans(a) r(a).\n"},
		{"query missing period", "rel r {\n1\n}\nquery ans(a) :- r(a)\n"},
		{"malformed atom", "rel r {\n1\n}\nquery ans(a) :- r a.\n"},
		{"empty body", "rel r {\n1\n}\nquery ans() :- .\n"},
		{"two queries", "rel r {\n1\n}\nquery ans() :- r(a).\nquery ans() :- r(b).\n"},
		{"unknown relation in body", "rel r {\n1\n}\nquery ans() :- s(a).\n"},
		{"atom arity mismatch", "rel r {\n1\n}\nquery ans() :- r(a, b).\n"},
		{"repeated var in atom", "rel r {\n1 2\n}\nquery ans() :- r(a, a).\n"},
		{"empty argument", "rel r {\n1 2\n}\nquery ans() :- r(a, ).\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted invalid input", c.name)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	in := `
# leading comment

rel edge {
  # inside a relation
  0 1

  1 0
}

# before the query
query ans(a) :- edge(a, b).
`
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.DB["edge"].Len() != 2 {
		t.Fatal("comments broke tuple parsing")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(triangleInput))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, f.DB, f.Query); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\nwritten:\n%s", err, b.String())
	}
	if len(back.Query.Atoms) != len(f.Query.Atoms) ||
		len(back.Query.Free) != len(f.Query.Free) {
		t.Fatalf("query shape changed:\n%s", b.String())
	}
	if back.DB["edge"].Len() != f.DB["edge"].Len() {
		t.Fatal("database changed through round trip")
	}
	// Semantics preserved.
	a, err := engine.EvalOracle(f.Query, f.DB)
	if err != nil {
		t.Fatal(err)
	}
	c, err := engine.EvalOracle(back.Query, back.DB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != c.Len() {
		t.Fatal("round trip changed the answer")
	}
}
