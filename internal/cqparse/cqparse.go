// Package cqparse reads conjunctive queries and databases from a small
// Datalog-flavoured text format, so the tools can run arbitrary
// project-join queries rather than only generated instances:
//
//	# relations: name, then one tuple per line of integer values
//	rel edge {
//	  0 1
//	  1 0
//	  0 2
//	}
//
//	# the query: head variables are the target schema, the body lists
//	# atoms; Boolean queries use an empty head ans().
//	query ans(x, z) :- edge(x, y), edge(y, z).
//
// Variables are arbitrary identifiers, mapped to dense ids in order of
// first appearance (head first). Multiple rel blocks build the database;
// exactly one query clause is required.
package cqparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"projpush/internal/cq"
	"projpush/internal/relation"
)

// File is a parsed input: a database and a query over it, plus the
// mapping from source variable names to query variable ids.
type File struct {
	DB       cq.Database
	Query    *cq.Query
	VarNames map[string]cq.Var
}

// Parse reads the whole format from r.
func Parse(r io.Reader) (*File, error) {
	return ParseWith(r, nil)
}

// ParseWith is Parse against a base database: the query is validated
// over the union of the file's own rel blocks and base, with file-local
// relations shadowing base relations of the same name. It serves query
// service requests, which typically carry only a query clause to be
// answered over the server-resident database; base relations referenced
// by the query are shared into the returned File's DB, not copied.
func ParseWith(r io.Reader, base cq.Database) (*File, error) {
	p := &parser{
		sc: bufio.NewScanner(r),
		f: &File{
			DB:       make(cq.Database),
			VarNames: make(map[string]cq.Var),
		},
	}
	p.sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for p.next() {
		line := strings.TrimSpace(p.line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "rel "):
			if err := p.relBlock(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "query "):
			if err := p.queryClause(line); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("cqparse: line %d: expected 'rel' or 'query', got %q", p.lineNo, line)
		}
	}
	if err := p.sc.Err(); err != nil {
		return nil, err
	}
	if p.f.Query == nil {
		return nil, fmt.Errorf("cqparse: no query clause")
	}
	for name, rel := range base {
		if _, shadowed := p.f.DB[name]; !shadowed {
			p.f.DB[name] = rel
		}
	}
	if err := p.f.Query.Validate(p.f.DB); err != nil {
		return nil, fmt.Errorf("cqparse: %w", err)
	}
	return p.f, nil
}

type parser struct {
	sc     *bufio.Scanner
	line   string
	lineNo int
	f      *File
}

func (p *parser) next() bool {
	if !p.sc.Scan() {
		return false
	}
	p.line = p.sc.Text()
	p.lineNo++
	return true
}

// relBlock parses "rel name {" followed by tuple lines and "}".
func (p *parser) relBlock(header string) error {
	fields := strings.Fields(header)
	if len(fields) != 3 || fields[2] != "{" {
		return fmt.Errorf("cqparse: line %d: want \"rel name {\"", p.lineNo)
	}
	name := fields[1]
	if _, dup := p.f.DB[name]; dup {
		return fmt.Errorf("cqparse: line %d: relation %q redefined", p.lineNo, name)
	}
	var rel *relation.Relation
	for p.next() {
		line := strings.TrimSpace(p.line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "}" {
			if rel == nil {
				return fmt.Errorf("cqparse: line %d: relation %q has no tuples (arity unknown)", p.lineNo, name)
			}
			p.f.DB[name] = rel
			return nil
		}
		vals := strings.Fields(line)
		if rel == nil {
			attrs := make([]relation.Attr, len(vals))
			for i := range attrs {
				attrs[i] = i
			}
			rel = relation.New(attrs)
		}
		if len(vals) != rel.Arity() {
			return fmt.Errorf("cqparse: line %d: tuple arity %d, relation %q has arity %d",
				p.lineNo, len(vals), name, rel.Arity())
		}
		t := make(relation.Tuple, len(vals))
		for i, v := range vals {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("cqparse: line %d: bad value %q", p.lineNo, v)
			}
			t[i] = relation.Value(n)
		}
		rel.Add(t)
	}
	return fmt.Errorf("cqparse: relation %q not closed with }", name)
}

// queryClause parses "query head(vars) :- atom, atom, ... ." possibly
// spanning lines until the trailing period.
func (p *parser) queryClause(first string) error {
	if p.f.Query != nil {
		return fmt.Errorf("cqparse: line %d: multiple query clauses", p.lineNo)
	}
	text := strings.TrimPrefix(first, "query ")
	for !strings.Contains(text, ".") {
		if !p.next() {
			return fmt.Errorf("cqparse: query clause not terminated with '.'")
		}
		text += " " + strings.TrimSpace(p.line)
	}
	text = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), "."))

	headBody := strings.SplitN(text, ":-", 2)
	if len(headBody) != 2 {
		return fmt.Errorf("cqparse: query clause needs ':-'")
	}
	head, err := p.atom(strings.TrimSpace(headBody[0]))
	if err != nil {
		return err
	}

	q := &cq.Query{}
	varOf := func(name string) (cq.Var, error) {
		if name == "" {
			return 0, fmt.Errorf("cqparse: empty variable name")
		}
		if v, ok := p.f.VarNames[name]; ok {
			return v, nil
		}
		v := len(p.f.VarNames)
		p.f.VarNames[name] = v
		return v, nil
	}
	for _, arg := range head.args {
		v, err := varOf(arg)
		if err != nil {
			return err
		}
		q.Free = append(q.Free, v)
	}

	for _, part := range splitAtoms(strings.TrimSpace(headBody[1])) {
		a, err := p.atom(part)
		if err != nil {
			return err
		}
		atom := cq.Atom{Rel: a.name}
		for _, arg := range a.args {
			v, err := varOf(arg)
			if err != nil {
				return err
			}
			atom.Args = append(atom.Args, v)
		}
		q.Atoms = append(q.Atoms, atom)
	}
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cqparse: query has no body atoms")
	}
	p.f.Query = q
	return nil
}

type rawAtom struct {
	name string
	args []string
}

// atom parses "name(a, b, c)" or "name()".
func (p *parser) atom(s string) (rawAtom, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return rawAtom{}, fmt.Errorf("cqparse: line %d: malformed atom %q", p.lineNo, s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return rawAtom{}, fmt.Errorf("cqparse: line %d: atom with empty name", p.lineNo)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return rawAtom{name: name}, nil
	}
	var args []string
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return rawAtom{}, fmt.Errorf("cqparse: line %d: empty argument in %q", p.lineNo, s)
		}
		args = append(args, a)
	}
	return rawAtom{name: name, args: args}, nil
}

// splitAtoms splits the body on commas that are outside parentheses.
func splitAtoms(body string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	if last := strings.TrimSpace(body[start:]); last != "" {
		parts = append(parts, last)
	}
	return parts
}

// Write serializes a database and query in the package's text format, so
// generated instances can be saved, edited, and replayed. Variable names
// are rendered as x<id>; relation order is sorted for determinism.
func Write(w io.Writer, db cq.Database, q *cq.Query) error {
	names := make([]string, 0, len(db))
	for name := range db {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rel := db[name]
		if _, err := fmt.Fprintf(w, "rel %s {\n", name); err != nil {
			return err
		}
		for _, t := range rel.SortedTuples() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = strconv.Itoa(int(v))
			}
			if _, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "}"); err != nil {
			return err
		}
	}
	return WriteQuery(w, q)
}

// WriteQuery serializes only the query clause, without any rel blocks —
// the shape of a query service request answered over a database the
// server already holds. Variable names are rendered as x<id>.
func WriteQuery(w io.Writer, q *cq.Query) error {
	head := make([]string, len(q.Free))
	for i, v := range q.Free {
		head[i] = fmt.Sprintf("x%d", v)
	}
	if _, err := fmt.Fprintf(w, "query ans(%s) :- ", strings.Join(head, ", ")); err != nil {
		return err
	}
	for i, a := range q.Atoms {
		if i > 0 {
			if _, err := io.WriteString(w, ", "); err != nil {
				return err
			}
		}
		args := make([]string, len(a.Args))
		for j, v := range a.Args {
			args[j] = fmt.Sprintf("x%d", v)
		}
		if _, err := fmt.Fprintf(w, "%s(%s)", a.Rel, strings.Join(args, ", ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ".")
	return err
}
