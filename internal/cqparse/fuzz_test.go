package cqparse

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the query-file parser. Invariants:
// no panics, and accepted files always carry a query that validates
// against the parsed database (Parse checks this itself; re-assert to
// catch regressions in that wiring).
func FuzzParse(f *testing.F) {
	seeds := []string{
		triangleInput,
		"rel r {\n1 2\n}\nquery ans() :- r(a, b).",
		"rel r {\n}\n",
		"query ans(x) :- .",
		"rel r {\n1\n}\nquery ans(a) :- r(a).",
		"# only a comment",
		"rel r {\n-5 300\n}\nquery ans(a) :- r(a, b).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if parsed.Query == nil {
			t.Fatal("accepted file without query")
		}
		if err := parsed.Query.Validate(parsed.DB); err != nil {
			t.Fatalf("accepted file with invalid query: %v", err)
		}
	})
}
