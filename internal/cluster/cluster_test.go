package cluster

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/server"
	"projpush/internal/server/client"
)

// colorQueryText renders one 3-COLOR family query as request text.
func colorQueryText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cqparse.WriteQuery(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRingOrderIsDeterministicAndComplete(t *testing.T) {
	r := newRing(64)
	addrs := []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1", "10.0.0.4:1"}
	for _, a := range addrs {
		r.add(a)
	}
	first := r.order("some-fingerprint")
	if len(first) != len(addrs) {
		t.Fatalf("order returned %d workers, want %d", len(first), len(addrs))
	}
	seen := map[string]bool{}
	for _, a := range first {
		seen[a] = true
	}
	if len(seen) != len(addrs) {
		t.Fatalf("order has duplicates: %v", first)
	}
	for i := 0; i < 10; i++ {
		again := r.order("some-fingerprint")
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("order not deterministic: %v vs %v", first, again)
			}
		}
	}
	// Keys spread: over many fingerprints, more than one worker leads.
	leads := map[string]bool{}
	for i := 0; i < 64; i++ {
		leads[r.order(fmt.Sprintf("fp-%d", i))[0]] = true
	}
	if len(leads) < 2 {
		t.Errorf("64 fingerprints all routed to one worker: %v", leads)
	}
}

func TestRingMembershipChangeIsMinimal(t *testing.T) {
	r := newRing(64)
	addrs := []string{"a:1", "b:1", "c:1", "d:1"}
	for _, a := range addrs {
		r.add(a)
	}
	before := make(map[string]string)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("fp-%d", i)
		before[k] = r.order(k)[0]
	}
	r.remove("c:1")
	moved := 0
	for k, prev := range before {
		now := r.order(k)[0]
		if prev != "c:1" && now != prev {
			moved++
		}
	}
	// Consistent hashing: keys not owned by the removed worker stay put.
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed worker were remapped", moved)
	}
	// Re-adding restores the original assignment exactly.
	r.add("c:1")
	for k, prev := range before {
		if now := r.order(k)[0]; now != prev {
			t.Fatalf("key %s moved from %s to %s after remove+re-add", k, prev, now)
		}
	}
}

// TestWorkerBreakerStateMachine drives one worker's health breaker with
// an injectable clock through the flapping sequence the drills rely on:
// closed under scattered failures, open at the threshold, half-open one
// trial after the cooldown, re-opened (cooldown reset) on a failed
// trial, closed again on a successful one.
func TestWorkerBreakerStateMachine(t *testing.T) {
	const (
		threshold = 2
		cooldown  = time.Second
	)
	now := time.Unix(1000, 0)
	w := newWorker("x:1", client.Options{})

	if got := w.status(now, cooldown); got != "up" {
		t.Fatalf("initial status = %s, want up", got)
	}
	w.fail(now, threshold)
	if got := w.status(now, cooldown); got != "up" {
		t.Fatalf("one failure below threshold flipped status to %s", got)
	}
	w.ok()
	w.fail(now, threshold)
	if got := w.status(now, cooldown); got != "up" {
		t.Fatalf("ok() did not reset the failure streak (status %s)", got)
	}

	// Two consecutive failures: open.
	w.fail(now, threshold)
	if got := w.status(now, cooldown); got != "down" {
		t.Fatalf("status after threshold failures = %s, want down", got)
	}
	if w.admit(now, cooldown) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown elapses: half-open, exactly one trial admitted.
	now = now.Add(cooldown)
	if got := w.status(now, cooldown); got != "half-open" {
		t.Fatalf("status after cooldown = %s, want half-open", got)
	}
	if !w.admit(now, cooldown) {
		t.Fatal("half-open breaker refused the trial request")
	}
	if w.admit(now, cooldown) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// Failed trial: re-open with the cooldown anchor reset.
	w.fail(now, threshold)
	if got := w.status(now, cooldown); got != "down" {
		t.Fatalf("status after failed trial = %s, want down", got)
	}
	if w.admit(now.Add(cooldown/2), cooldown) {
		t.Fatal("failed trial did not reset the cooldown")
	}

	// Next trial succeeds: closed, requests flow.
	now = now.Add(cooldown)
	if !w.admit(now, cooldown) {
		t.Fatal("breaker refused the second trial")
	}
	w.ok()
	if got := w.status(now, cooldown); got != "up" {
		t.Fatalf("status after successful trial = %s, want up", got)
	}
	if !w.admit(now, cooldown) || !w.admit(now, cooldown) {
		t.Fatal("closed breaker limited admission")
	}
}

// TestWorkerTrialTokenLifecycle pins the half-open token plumbing the
// failover path depends on: enumeration (eligible) never claims the
// trial, claim hands it to exactly one caller and reports it, and
// releaseTrial returns an unresolved token so the worker stays
// recoverable after a cancelled trial attempt.
func TestWorkerTrialTokenLifecycle(t *testing.T) {
	const (
		threshold = 1
		cooldown  = time.Second
	)
	now := time.Unix(2000, 0)
	w := newWorker("x:1", client.Options{})
	w.fail(now, threshold) // open
	now = now.Add(cooldown)

	// eligible is a read: any number of calls leave the token unclaimed.
	for i := 0; i < 5; i++ {
		if !w.eligible(now, cooldown) {
			t.Fatal("half-open worker not eligible for candidate lists")
		}
	}
	ok, trial := w.claim(now, cooldown)
	if !ok || !trial {
		t.Fatalf("claim after eligible checks = (%v, %v), want the trial token", ok, trial)
	}
	if ok, _ := w.claim(now, cooldown); ok {
		t.Fatal("second concurrent trial claimed")
	}
	if w.eligible(now, cooldown) != true {
		t.Fatal("trial in flight must not hide the worker from enumeration")
	}

	// A cancelled trial releases the token; the next claim gets it.
	w.releaseTrial()
	ok, trial = w.claim(now, cooldown)
	if !ok || !trial {
		t.Fatalf("claim after releaseTrial = (%v, %v), want the trial token back", ok, trial)
	}
	w.ok()
	if got := w.status(now, cooldown); got != "up" {
		t.Fatalf("status after successful reclaimed trial = %s, want up", got)
	}
}

// TestBackupEnumerationDoesNotLockOutHalfOpenWorker is the regression
// drill for the trial-token leak: a half-open worker listed as a backup
// candidate — but never attempted, because the primary answers — must
// keep its trial token, so the next health probe (or forward) can still
// admit it and the worker heals instead of being excluded forever.
func TestBackupEnumerationDoesNotLockOutHalfOpenWorker(t *testing.T) {
	f1 := startFakeWorker(t, "w-a", 0)
	f2 := startFakeWorker(t, "w-b", 0)
	var clock struct {
		mu  sync.Mutex
		now time.Time
	}
	clock.now = time.Unix(7000, 0)
	cfg := Config{
		RequestTimeout: 2 * time.Second,
		FailThreshold:  1,
		Cooldown:       time.Second,
		now: func() time.Time {
			clock.mu.Lock()
			defer clock.mu.Unlock()
			return clock.now
		},
	}
	co, byAddr := newTestCoordinator(t, cfg, f1, f2)

	text := colorQueryText(t, graph.AugmentedPath(4))
	req := &server.Request{Op: "query", Query: text}
	fp := co.affinity(req, mustParse(t, co, text))
	order := co.ring.order(fp)
	primary, secondary := byAddr[order[0]], byAddr[order[1]]

	// Open the backup replica's breaker and elapse the cooldown: it is
	// now half-open, one trial pending.
	co.mu.Lock()
	sec := co.workers[secondary.addr]
	co.mu.Unlock()
	sec.fail(clock.now, cfg.FailThreshold)
	clock.mu.Lock()
	clock.now = clock.now.Add(cfg.Cooldown)
	clock.mu.Unlock()
	if st := co.WorkerStates()[secondary.addr]; st != "half-open" {
		t.Fatalf("backup state = %q, want half-open", st)
	}

	// Traffic on the shard: the primary answers every time, the half-open
	// backup is enumerated as a failover candidate but never attempted.
	for i := 0; i < 5; i++ {
		resp, err := co.Do(context.Background(), req)
		if err != nil || resp.Status != server.StatusOK {
			t.Fatalf("query %d: %v / %+v", i, err, resp)
		}
		if resp.Worker != primary.id {
			t.Fatalf("query %d answered by %q, want the primary %q", i, resp.Worker, primary.id)
		}
	}
	sec.mu.Lock()
	probing := sec.probing
	sec.mu.Unlock()
	if probing {
		t.Fatal("candidate enumeration consumed the backup's half-open trial token")
	}

	// The probe round must therefore still be admitted — and heal it.
	co.checkWorkers()
	if st := co.WorkerStates()[secondary.addr]; st != "up" {
		t.Fatalf("backup state after probe = %q, want up (recovered)", st)
	}
}

// TestCanceledRequestIsTypedCanceled pins the cancellation status: a
// caller that gives up gets StatusCanceled, not a fabricated timeout.
func TestCanceledRequestIsTypedCanceled(t *testing.T) {
	f1 := startFakeWorker(t, "w-a", 0)
	co, _ := newTestCoordinator(t, Config{RequestTimeout: 5 * time.Second}, f1)

	text := colorQueryText(t, graph.AugmentedPath(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp, err := co.Do(ctx, &server.Request{Op: "query", Query: text})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusCanceled {
		t.Fatalf("status = %s (%s), want canceled", resp.Status, resp.Error)
	}
}

// fakeWorker is a Handler-mode server whose per-request behavior is
// switched at runtime: mode 0 answers OK, 1 answers StatusInternal, 2
// sleeps before answering OK (the hedging victim). served counts the
// queries it answered.
type fakeWorker struct {
	id     string
	srv    *server.Server
	addr   string
	mode   atomic.Int32
	delay  time.Duration
	served atomic.Int64
}

func startFakeWorker(t *testing.T, id string, delay time.Duration) *fakeWorker {
	t.Helper()
	f := &fakeWorker{id: id, delay: delay}
	f.srv = server.New(server.Config{
		WorkerID: id,
		Handler: func(_ context.Context, req *server.Request, remote string) *server.Response {
			switch req.Op {
			case "ready":
				ready := true
				return &server.Response{Status: server.StatusOK, Ready: &ready}
			case "query":
				switch f.mode.Load() {
				case 1:
					return &server.Response{Status: server.StatusInternal, Error: "injected"}
				case 2:
					time.Sleep(f.delay)
				}
				f.served.Add(1)
				return &server.Response{
					Status: server.StatusOK,
					Answer: &server.Answer{Nonempty: true, Rows: 1, Tuples: [][]int32{{0}}},
				}
			default:
				return &server.Response{Status: server.StatusError, Error: "unexpected op " + req.Op}
			}
		},
	})
	if err := f.srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	f.addr = f.srv.Addr().String()
	go f.srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		f.srv.Shutdown(ctx)
	})
	return f
}

// newTestCoordinator builds an in-process coordinator over the fake
// workers with the background prober disabled, so tests control health
// transitions explicitly.
func newTestCoordinator(t *testing.T, cfg Config, fakes ...*fakeWorker) (*Coordinator, map[string]*fakeWorker) {
	t.Helper()
	byAddr := make(map[string]*fakeWorker, len(fakes))
	for _, f := range fakes {
		cfg.Workers = append(cfg.Workers, f.addr)
		byAddr[f.addr] = f
	}
	cfg.DB = instance.ColorDatabase(3)
	cfg.HealthInterval = -1
	co := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		co.Shutdown(ctx)
	})
	return co, byAddr
}

func TestForwardFailoverOnInternalFault(t *testing.T) {
	f1 := startFakeWorker(t, "w-a", 0)
	f2 := startFakeWorker(t, "w-b", 0)
	co, byAddr := newTestCoordinator(t, Config{RequestTimeout: 2 * time.Second}, f1, f2)

	text := colorQueryText(t, graph.AugmentedPath(4))
	req := &server.Request{Op: "query", Query: text}
	fp := co.affinity(req, mustParse(t, co, text))
	order := co.ring.order(fp)
	primary, secondary := byAddr[order[0]], byAddr[order[1]]
	primary.mode.Store(1) // isolated internal fault on the affinity shard

	resp, err := co.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusOK {
		t.Fatalf("status = %s (%s), want ok", resp.Status, resp.Error)
	}
	if resp.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", resp.Failovers)
	}
	if resp.Worker != secondary.id {
		t.Errorf("answered by %q, want the failover replica %q", resp.Worker, secondary.id)
	}
	if h := co.health(); h.Failovers != 1 {
		t.Errorf("health.Failovers = %d, want 1", h.Failovers)
	}

	// With the fault cleared, traffic returns to the affinity shard — the
	// typed fault never opened its breaker.
	primary.mode.Store(0)
	resp, err = co.Do(context.Background(), req)
	if err != nil || resp.Status != server.StatusOK {
		t.Fatalf("after clearing fault: %v / %+v", err, resp)
	}
	if resp.Worker != primary.id {
		t.Errorf("answered by %q, want the affinity shard %q", resp.Worker, primary.id)
	}
	if resp.Failovers != 0 {
		t.Errorf("Failovers = %d after recovery, want 0", resp.Failovers)
	}
}

func TestHedgedRequestWinsAndCancelsLoser(t *testing.T) {
	f1 := startFakeWorker(t, "w-a", 400*time.Millisecond)
	f2 := startFakeWorker(t, "w-b", 400*time.Millisecond)
	co, byAddr := newTestCoordinator(t, Config{
		RequestTimeout: 5 * time.Second,
		Hedge:          true,
		HedgeFloor:     20 * time.Millisecond,
	}, f1, f2)

	text := colorQueryText(t, graph.Ladder(3))
	req := &server.Request{Op: "query", Query: text}
	fp := co.affinity(req, mustParse(t, co, text))
	order := co.ring.order(fp)
	primary, secondary := byAddr[order[0]], byAddr[order[1]]
	primary.mode.Store(2) // the affinity shard stalls; the hedge must win

	start := time.Now()
	resp, err := co.Do(context.Background(), req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusOK {
		t.Fatalf("status = %s (%s), want ok", resp.Status, resp.Error)
	}
	if !resp.Hedged {
		t.Error("winning answer not marked Hedged")
	}
	if resp.Worker != secondary.id {
		t.Errorf("answered by %q, want the hedge replica %q", resp.Worker, secondary.id)
	}
	if resp.Failovers != 0 {
		t.Errorf("Failovers = %d, want 0 (the primary was slow, not failed)", resp.Failovers)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("hedged answer took %v; the stalled primary was waited out", elapsed)
	}
	if h := co.health(); h.Hedges != 1 {
		t.Errorf("health.Hedges = %d, want 1", h.Hedges)
	}
}

func TestDeregisterReroutesAndRegisterRestores(t *testing.T) {
	f1 := startFakeWorker(t, "w-a", 0)
	f2 := startFakeWorker(t, "w-b", 0)
	co, byAddr := newTestCoordinator(t, Config{RequestTimeout: 2 * time.Second}, f1, f2)

	text := colorQueryText(t, graph.AugmentedPath(5))
	req := &server.Request{Op: "query", Query: text}
	fp := co.affinity(req, mustParse(t, co, text))
	order := co.ring.order(fp)
	primary, secondary := byAddr[order[0]], byAddr[order[1]]

	resp, err := co.Do(context.Background(), req)
	if err != nil || resp.Worker != primary.id {
		t.Fatalf("baseline: err=%v worker=%q, want %q", err, resp.Worker, primary.id)
	}

	// Graceful exit: the shard re-routes with zero failovers — this is a
	// planned handoff, not a failure.
	if resp, err := co.Do(context.Background(), &server.Request{Op: "deregister", Addr: primary.addr}); err != nil || resp.Status != server.StatusOK {
		t.Fatalf("deregister: %v / %+v", err, resp)
	}
	if st := co.WorkerStates()[primary.addr]; st != "draining" {
		t.Errorf("deregistered worker state = %q, want draining", st)
	}
	resp, err = co.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Worker != secondary.id || resp.Failovers != 0 {
		t.Errorf("after deregister: worker=%q failovers=%d, want %q/0", resp.Worker, resp.Failovers, secondary.id)
	}

	// Rejoin: the ring assignment is address-stable, so the shard comes
	// straight back.
	if resp, err := co.Do(context.Background(), &server.Request{Op: "register", Addr: primary.addr}); err != nil || resp.Status != server.StatusOK {
		t.Fatalf("register: %v / %+v", err, resp)
	}
	resp, err = co.Do(context.Background(), req)
	if err != nil || resp.Worker != primary.id {
		t.Errorf("after re-register: err=%v worker=%q, want %q", err, resp.Worker, primary.id)
	}
}

// TestHealthProbeOpensAndRecovers exercises the probe path against real
// worker death and revival: strikes from failed probes open the breaker
// (removing the worker from routing), the cooldown admits a half-open
// probe, and a revived worker closes it again — all on an injectable
// clock, with the background prober disabled and probe rounds driven
// explicitly.
func TestHealthProbeOpensAndRecovers(t *testing.T) {
	db := instance.ColorDatabase(3)
	mkServer := func() *server.Server {
		return server.New(server.Config{DB: db, RequestTimeout: time.Second})
	}
	s1, s2 := mkServer(), mkServer()
	if err := s1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go s1.Serve()
	go s2.Serve()
	addr1, addr2 := s1.Addr().String(), s2.Addr().String()
	shutdown := func(s *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
	defer shutdown(s1)

	var clock struct {
		mu  sync.Mutex
		now time.Time
	}
	clock.now = time.Unix(5000, 0)
	advance := func(d time.Duration) {
		clock.mu.Lock()
		clock.now = clock.now.Add(d)
		clock.mu.Unlock()
	}
	cfg := Config{
		DB:             db,
		Workers:        []string{addr1, addr2},
		HealthInterval: -1,
		HealthTimeout:  200 * time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
		FailThreshold:  2,
		Cooldown:       time.Second,
		RequestTimeout: 2 * time.Second,
		now: func() time.Time {
			clock.mu.Lock()
			defer clock.mu.Unlock()
			return clock.now
		},
	}
	co := New(cfg)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		co.Shutdown(ctx)
	}()

	co.checkWorkers()
	states := co.WorkerStates()
	if states[addr1] != "up" || states[addr2] != "up" {
		t.Fatalf("initial probe: states = %v, want both up", states)
	}

	// Kill worker 2 the hard way; two probe rounds strike it out.
	s2.Abort()
	shutdown(s2)
	co.checkWorkers()
	co.checkWorkers()
	if st := co.WorkerStates()[addr2]; st != "down" {
		t.Fatalf("dead worker state after 2 probe rounds = %q, want down", st)
	}

	// Routing excludes it: every query answers from worker 1.
	text := colorQueryText(t, graph.AugmentedPath(4))
	for i := 0; i < 3; i++ {
		resp, err := co.Do(context.Background(), &server.Request{Op: "query", Query: text})
		if err != nil || resp.Status != server.StatusOK {
			t.Fatalf("query with dead replica: %v / %+v", err, resp)
		}
	}

	// Inside the cooldown nothing is probed; past it, the half-open
	// probe finds the worker still dead and re-opens.
	advance(cfg.Cooldown)
	if st := co.WorkerStates()[addr2]; st != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", st)
	}
	co.checkWorkers()
	if st := co.WorkerStates()[addr2]; st != "down" {
		t.Fatalf("failed half-open probe left state %q, want down", st)
	}

	// Revive on the same address; the next half-open probe closes it.
	s2 = mkServer()
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; {
		if err = s2.Listen(addr2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr2, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go s2.Serve()
	defer shutdown(s2)
	advance(cfg.Cooldown)
	co.checkWorkers()
	if st := co.WorkerStates()[addr2]; st != "up" {
		t.Fatalf("revived worker state = %q, want up", st)
	}
}

func TestLocalFallbackRescuesWhenFleetIsGone(t *testing.T) {
	db := instance.ColorDatabase(3)
	co := New(Config{
		DB:             db,
		HealthInterval: -1,
		LocalFallback:  true,
		RequestTimeout: 5 * time.Second,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		co.Shutdown(ctx)
	}()

	text := colorQueryText(t, graph.AugmentedPath(4))
	resp, err := co.Do(context.Background(), &server.Request{Op: "query", Query: text})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusDegraded {
		t.Fatalf("status = %s (%s), want degraded (rescued locally)", resp.Status, resp.Error)
	}
	if resp.Worker != "local" {
		t.Errorf("Worker = %q, want local", resp.Worker)
	}
	if resp.Answer == nil || !resp.Answer.Nonempty {
		t.Fatalf("rescued answer = %+v, want the nonempty 3-coloring", resp.Answer)
	}
	if resp.Stats == nil || len(resp.Stats.Attempts) < 2 {
		t.Fatalf("Stats.Attempts = %+v, want the failed fleet attempt leading a local rung", resp.Stats)
	}
	if a := resp.Stats.Attempts[0]; a.Method != "fleet" || a.Err == "" {
		t.Errorf("Attempts[0] = %+v, want the failed fleet rung with its error", a)
	}
	if h := co.health(); h.Rescued != 1 {
		t.Errorf("health.Rescued = %d, want 1", h.Rescued)
	}
}

func TestUnavailableWithoutFallbackIsTypedAndRetryable(t *testing.T) {
	co := New(Config{
		DB:             instance.ColorDatabase(3),
		HealthInterval: -1,
		RequestTimeout: time.Second,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		co.Shutdown(ctx)
	}()

	text := colorQueryText(t, graph.AugmentedPath(4))
	resp, err := co.Do(context.Background(), &server.Request{Op: "query", Query: text})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusUnavailable {
		t.Fatalf("status = %s, want unavailable", resp.Status)
	}
	se := &client.StatusError{Status: resp.Status, Msg: resp.Error}
	if !client.Retryable(se) {
		t.Error("unavailable must be retryable (workers may rejoin)")
	}
	if h := co.health(); h.Unavailable != 1 {
		t.Errorf("health.Unavailable = %d, want 1", h.Unavailable)
	}
}

// TestAffinityHeaderStampsForwards pins the distributed-cache contract:
// the coordinator stamps every forward with the plan fingerprint it
// routed on, and repeats of the same query family land on the same
// worker with the same affinity header.
func TestAffinityHeaderStampsForwards(t *testing.T) {
	var seen struct {
		mu         sync.Mutex
		affinities []string
	}
	f := &fakeWorker{id: "w-a"}
	f.srv = server.New(server.Config{
		WorkerID: f.id,
		Handler: func(_ context.Context, req *server.Request, remote string) *server.Response {
			if req.Op == "ready" {
				ready := true
				return &server.Response{Status: server.StatusOK, Ready: &ready}
			}
			seen.mu.Lock()
			seen.affinities = append(seen.affinities, req.Affinity)
			seen.mu.Unlock()
			return &server.Response{Status: server.StatusOK, Answer: &server.Answer{}}
		},
	})
	if err := f.srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	f.addr = f.srv.Addr().String()
	go f.srv.Serve()
	co, _ := newTestCoordinator(t, Config{RequestTimeout: 2 * time.Second}, f)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		f.srv.Shutdown(ctx)
	}()

	text := colorQueryText(t, graph.Cycle(5))
	for i := 0; i < 3; i++ {
		if _, err := co.Do(context.Background(), &server.Request{Op: "query", Query: text}); err != nil {
			t.Fatal(err)
		}
	}
	seen.mu.Lock()
	defer seen.mu.Unlock()
	if len(seen.affinities) != 3 {
		t.Fatalf("worker saw %d forwards, want 3", len(seen.affinities))
	}
	for _, a := range seen.affinities {
		if a == "" {
			t.Fatal("forward missing the affinity header")
		}
		if a != seen.affinities[0] {
			t.Fatalf("affinity changed between repeats: %v", seen.affinities)
		}
	}
}

// mustParse parses request text the way the coordinator does, for tests
// that need the query to compute ring positions.
func mustParse(t *testing.T, co *Coordinator, text string) *cq.Query {
	t.Helper()
	file, err := cqparse.ParseWith(strings.NewReader(text), co.cfg.DB)
	if err != nil {
		t.Fatal(err)
	}
	return file.Query
}
