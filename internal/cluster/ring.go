package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker addresses. Each worker owns
// vnodes points on a uint64 circle; a key routes to the first point at or
// after its hash, and the full walk from there yields every worker in a
// key-stable preference order — the failover sequence. Virtual nodes keep
// shard ownership balanced and membership changes minimal: adding or
// removing one worker of n moves only ~1/n of the fingerprint space, so
// the affinity-sharded subplan caches of the surviving workers stay warm
// through churn.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

func newRing(vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &ring{vnodes: vnodes}
}

// hash64 places keys on the circle. Raw FNV-64a diffuses short, similar
// keys (sequential worker ports, the "#i" vnode suffixes) into narrow
// bands, which collapses the ring into unbalanced range partitioning —
// so the FNV digest is passed through a splitmix64 finalizer to
// avalanche it across the full 64-bit circle.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// add inserts a worker's virtual nodes (idempotent).
func (r *ring) add(addr string) {
	for _, p := range r.points {
		if p.addr == addr {
			return
		}
	}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", addr, i)), addr: addr})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes a worker's virtual nodes.
func (r *ring) remove(addr string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.addr != addr {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// order returns every distinct worker in the key's preference order: the
// ring walk starting at the key's hash. The first entry is the key's
// affinity shard; the rest are its failover replicas, nearest first.
func (r *ring) order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := make(map[string]struct{})
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.addr]; ok {
			continue
		}
		seen[p.addr] = struct{}{}
		out = append(out, p.addr)
	}
	return out
}
