// Package cluster is projpushd's fault-tolerant distribution layer: a
// coordinator that fronts a fleet of projpushd workers over the existing
// length-prefixed protocol and keeps answering — correctly and with typed
// outcomes — while individual workers die, flap, and rejoin.
//
// Routing is consistent hashing by the renaming-invariant plan
// fingerprint, so each query family lands on the worker whose subplan
// cache already holds its plans (an affinity-sharded distributed cache),
// and a membership change remaps only the dead worker's shard. Around
// that sit the failure-domain mechanisms: per-worker health probing with
// a breaker-style state machine (closed → open → half-open), failover
// down the ring with the remaining deadline propagated to each attempt,
// optional hedged requests against the next replica after a p95-based
// delay, graceful worker deregistration, and — when every replica for a
// shard is down — a local degraded execution through the engine's
// resilience ladder, reported as StatusDegraded rather than silently
// masquerading as a healthy answer.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/resilience"
	"projpush/internal/server"
	"projpush/internal/server/client"
)

// latencyWindow is the size of the sliding success-latency sample the
// hedge delay is computed from.
const latencyWindow = 256

// Config configures a Coordinator. The zero value of every bound means
// "use the default", documented per field.
type Config struct {
	// DB is the coordinator's copy of the database. It is required for
	// affinity fingerprinting (the coordinator plans the query exactly as
	// a worker would) and for LocalFallback execution.
	DB cq.Database
	// Method is the default optimization method assumed when a request
	// does not name one, used only for fingerprinting (default
	// bucketelimination, matching the server default). Workers still
	// apply their own routing to methodless requests.
	Method core.Method
	// Workers seeds the fleet membership (worker TCP addresses). Workers
	// may also join and leave at runtime via the register/deregister ops.
	Workers []string
	// Vnodes is the virtual-node count per worker on the hash ring
	// (default 64).
	Vnodes int
	// Hedge arms hedged requests: when the first replica has not answered
	// within the p95 of recent successes, a second attempt is fired
	// against the next replica and the first answer wins; the loser is
	// cancelled.
	Hedge bool
	// HedgeFloor is the minimum hedge delay, used directly until enough
	// latencies are observed and as a floor afterwards (default 2ms).
	HedgeFloor time.Duration
	// RequestTimeout is the end-to-end deadline for one coordinated
	// request, spanning every failover and hedge attempt (default 10s).
	// Requests may tighten it, never extend it.
	RequestTimeout time.Duration
	// DialTimeout bounds each worker connection attempt (default 1s).
	DialTimeout time.Duration
	// HealthInterval is the health-probe period (default 250ms; negative
	// disables the background prober — tests drive checkWorkers directly).
	HealthInterval time.Duration
	// HealthTimeout bounds each health probe (default 500ms).
	HealthTimeout time.Duration
	// FailThreshold opens a worker's breaker after this many consecutive
	// transport failures (default 2).
	FailThreshold int
	// Cooldown is how long an open worker breaker waits before admitting
	// a half-open trial (default 2s).
	Cooldown time.Duration
	// LocalFallback arms the last resilience rung: when no replica can
	// answer, the coordinator executes the query itself through the
	// engine's degradation ladder and reports StatusDegraded.
	LocalFallback bool
	// MaxRows and MaxBytes bound LocalFallback executions
	// (engine.Options; zero means unbounded, matching the engine).
	MaxRows  int
	MaxBytes int64
	// Log, when non-nil, receives one structured JSON line per forwarded
	// request (fingerprint, chosen worker, failovers, hedging, status).
	Log io.Writer

	// now is the breaker/health clock, injectable in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Method == "" {
		c.Method = core.MethodBucketElimination
	}
	if c.Vnodes <= 0 {
		c.Vnodes = 64
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = 2 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Coordinator fronts a worker fleet. It embeds a Handler-mode
// server.Server, inheriting the protocol loop, panic isolation, network
// fault points, and graceful drain, and adds routing, health, failover,
// and hedging on top.
type Coordinator struct {
	cfg Config
	srv *server.Server

	mu      sync.Mutex
	ring    *ring
	workers map[string]*worker

	stop     chan struct{}
	stopOnce sync.Once
	healthWG sync.WaitGroup

	// health counters (coordinator-side outcomes)
	served, degraded, shed, overWidth, failed    atomic.Int64
	failovers, hedges, rescued, unavailableCount atomic.Int64

	// sliding window of success latencies for the hedge delay
	latMu   sync.Mutex
	lats    [latencyWindow]time.Duration
	latN    int // total recorded (saturates at window size for reads)
	latNext int // ring index

	logMu sync.Mutex
}

// New returns an unstarted coordinator; call Listen then Serve for TCP
// service, or use Do directly for in-process dispatch.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		ring:    newRing(cfg.Vnodes),
		workers: make(map[string]*worker),
		stop:    make(chan struct{}),
	}
	c.srv = server.New(server.Config{
		RequestTimeout: cfg.RequestTimeout,
		Handler:        c.handle,
	})
	for _, addr := range cfg.Workers {
		c.AddWorker(addr)
	}
	if cfg.HealthInterval > 0 {
		c.healthWG.Add(1)
		go c.healthLoop()
	}
	return c
}

// Listen binds the coordinator's front port.
func (c *Coordinator) Listen(addr string) error { return c.srv.Listen(addr) }

// Addr returns the bound address (after Listen).
func (c *Coordinator) Addr() net.Addr { return c.srv.Addr() }

// Serve accepts client connections until Shutdown.
func (c *Coordinator) Serve() error { return c.srv.Serve() }

// Draining reports whether Shutdown has begun.
func (c *Coordinator) Draining() bool { return c.srv.Draining() }

// Shutdown drains the coordinator: the prober stops, the front listener
// closes, and in-flight coordinated requests get until ctx's deadline.
// Safe to call without Listen/Serve (in-process coordinators).
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.healthWG.Wait()
	return c.srv.Shutdown(ctx)
}

// AddWorker joins a worker to the fleet (idempotent). A re-added
// draining worker starts a fresh membership.
func (c *Coordinator) AddWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok && !w.isDraining() {
		return
	}
	c.workers[addr] = newWorker(addr, client.Options{
		DialTimeout:    c.cfg.DialTimeout,
		AttemptTimeout: c.cfg.RequestTimeout,
	})
	c.ring.add(addr)
}

// RemoveWorker begins a worker's graceful exit: it leaves the ring
// immediately (new requests re-route to the surviving replicas) and is
// reaped by the prober once its in-flight forwards finish.
func (c *Coordinator) RemoveWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[addr]
	if !ok {
		return
	}
	w.drain()
	c.ring.remove(addr)
}

// WorkerStates snapshots each member's health state, as reported on the
// coordinator's health endpoint.
func (c *Coordinator) WorkerStates() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	out := make(map[string]string, len(c.workers))
	for addr, w := range c.workers {
		out[addr] = w.status(now, c.cfg.Cooldown)
	}
	return out
}

// Do dispatches one request in process — the entry point shared by the
// TCP handler, the experiments harness, and tests. The error is always
// nil: every outcome, including "no healthy worker", is a typed
// response.
func (c *Coordinator) Do(ctx context.Context, req *server.Request) (*server.Response, error) {
	switch req.Op {
	case "query", "explain":
		return c.coordinate(ctx, req), nil
	default:
		return c.handle(ctx, req, "inproc"), nil
	}
}

// handle is the server.Config.Handler: the coordinator's op dispatch.
// ctx is the per-request context the server derives from the client
// connection, so a peer that disconnects (or a draining front) cancels
// the coordinated fan-out instead of letting it run to the full
// RequestTimeout on dead air.
func (c *Coordinator) handle(ctx context.Context, req *server.Request, remote string) *server.Response {
	switch req.Op {
	case "register":
		if req.Addr == "" {
			return &server.Response{Status: server.StatusError, Error: "register: missing addr"}
		}
		c.AddWorker(req.Addr)
		return &server.Response{Status: server.StatusOK}
	case "deregister":
		if req.Addr == "" {
			return &server.Response{Status: server.StatusError, Error: "deregister: missing addr"}
		}
		c.RemoveWorker(req.Addr)
		return &server.Response{Status: server.StatusOK}
	case "health":
		return &server.Response{Status: server.StatusOK, Health: c.health()}
	case "ready":
		ready := !c.srv.Draining()
		return &server.Response{Status: server.StatusOK, Ready: &ready}
	case "query", "explain":
		return c.coordinate(ctx, req)
	default:
		return &server.Response{Status: server.StatusError, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// health aggregates the fleet view with the coordinator's own counters.
func (c *Coordinator) health() *server.Health {
	return &server.Health{
		Ready:       !c.srv.Draining(),
		InFlight:    c.srv.InFlightRequests(),
		Served:      c.served.Load(),
		Degraded:    c.degraded.Load(),
		Shed:        c.shed.Load(),
		OverWidth:   c.overWidth.Load(),
		Failed:      c.failed.Load(),
		Workers:     c.WorkerStates(),
		Failovers:   c.failovers.Load(),
		Hedges:      c.hedges.Load(),
		Rescued:     c.rescued.Load(),
		Unavailable: c.unavailableCount.Load(),
	}
}

// coordinate runs one query/explain request through routing, failover,
// hedging, and — if everything remote fails — the local rescue ladder.
func (c *Coordinator) coordinate(ctx context.Context, req *server.Request) *server.Response {
	start := time.Now()
	logEntry := map[string]any{"op": req.Op}
	resp := c.coordinateInner(ctx, req, logEntry)
	logEntry["status"] = string(resp.Status)
	logEntry["worker"] = resp.Worker
	if resp.Failovers > 0 {
		logEntry["failovers"] = resp.Failovers
	}
	if resp.Hedged {
		logEntry["hedged"] = true
	}
	logEntry["elapsed_us"] = time.Since(start).Microseconds()
	c.logLine(logEntry)
	switch resp.Status {
	case server.StatusOK:
		c.served.Add(1)
		c.recordLatency(time.Since(start))
	case server.StatusDegraded:
		c.served.Add(1)
		c.degraded.Add(1)
	case server.StatusShed, server.StatusDraining:
		c.shed.Add(1)
	case server.StatusOverWidth:
		c.overWidth.Add(1)
	case server.StatusUnavailable:
		c.unavailableCount.Add(1)
	default:
		c.failed.Add(1)
	}
	return resp
}

func (c *Coordinator) coordinateInner(ctx context.Context, req *server.Request, logEntry map[string]any) *server.Response {
	if c.srv.Draining() {
		return &server.Response{Status: server.StatusDraining, Error: "coordinator is draining"}
	}
	// Parse locally: a malformed query fails fast at the front instead of
	// burning a forward, and the parse yields the query the affinity
	// fingerprint and any local rescue need.
	file, err := cqparse.ParseWith(strings.NewReader(req.Query), c.cfg.DB)
	if err != nil {
		return &server.Response{Status: server.StatusParseError, Error: err.Error()}
	}

	timeout := c.cfg.RequestTimeout
	if req.Timeout != "" {
		if d, perr := time.ParseDuration(req.Timeout); perr == nil && d > 0 && d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	fp := c.affinity(req, file.Query)
	logEntry["fp"] = fp
	fwd := *req
	fwd.Affinity = fp

	resp, who, failovers, hedged, ferr := c.forward(ctx, &fwd, fp)
	c.failovers.Add(int64(failovers))
	if resp != nil {
		if resp.Worker == "" {
			resp.Worker = who
		}
		resp.Failovers = failovers
		resp.Hedged = hedged
		return resp
	}
	if ctx.Err() != nil {
		if errors.Is(ctx.Err(), context.Canceled) {
			// Plain cancellation — the caller (or its connection) gave up;
			// not a deadline, and the counters must not call it one.
			return &server.Response{
				Status:    server.StatusCanceled,
				Error:     fmt.Sprintf("%v: request canceled after %d failovers", engine.ErrCanceled, failovers),
				Failovers: failovers,
			}
		}
		return &server.Response{
			Status:    server.StatusTimeout,
			Error:     fmt.Sprintf("%v: fleet deadline expired after %d failovers", engine.ErrTimeout, failovers),
			Failovers: failovers,
		}
	}
	// Every replica for this shard is gone. Rescue locally if armed.
	if c.cfg.LocalFallback && req.Op == "query" {
		return c.rescue(ctx, file.Query, file.DB, ferr, failovers)
	}
	return &server.Response{
		Status:    server.StatusUnavailable,
		Error:     fmt.Sprintf("no healthy worker for shard %s: %v", fp, ferr),
		Failovers: failovers,
	}
}

// affinity computes the routing key: the renaming-invariant fingerprint
// of the plan a worker would build, so every query in the same family
// hashes to the worker holding that family's cached subplans. Requests
// whose plan cannot be built fall back to hashing the raw text — they
// still route deterministically, and the worker produces the typed error.
func (c *Coordinator) affinity(req *server.Request, q *cq.Query) string {
	method := c.cfg.Method
	if req.Method != "" {
		method = core.Method(req.Method)
	}
	if p, err := core.BuildPlan(method, q, nil); err == nil {
		return server.FingerprintID(p)
	}
	h := fnv.New64a()
	io.WriteString(h, string(method))
	io.WriteString(h, "\x00")
	io.WriteString(h, req.Query)
	return fmt.Sprintf("%016x", h.Sum64())
}

// candidates returns the shard's failover sequence: every eligible
// worker in ring order from the fingerprint. Health filtering happens
// here, after the walk, so the ring itself stays stable under flapping
// and a recovered worker gets its old shard (and warm cache) back.
// Enumeration is deliberately non-claiming: a half-open worker's single
// trial token is claimed only when forward actually launches an attempt
// at it, so listing one as a backup that the primary's answer makes
// moot does not burn the trial and lock the worker out of recovery.
func (c *Coordinator) candidates(fp string) []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	var out []*worker
	for _, addr := range c.ring.order(fp) {
		w := c.workers[addr]
		if w == nil {
			continue
		}
		if w.eligible(now, c.cfg.Cooldown) {
			out = append(out, w)
		}
	}
	return out
}

var errNoWorkers = errors.New("cluster: no healthy workers")

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	resp  *server.Response
	err   error
	w     *worker
	hedge bool
}

// forward runs the failover/hedging state machine: launch the affinity
// replica, optionally hedge to the next one after the p95 delay, fail
// over down the candidate list on transport errors and failover-worthy
// statuses, and relay the first usable answer. Losing attempts are
// cancelled; their goroutines unblock promptly (the client arms a
// context.AfterFunc read deadline) and drain into the buffered channel.
func (c *Coordinator) forward(ctx context.Context, req *server.Request, fp string) (resp *server.Response, who string, failovers int, hedged bool, err error) {
	cands := c.candidates(fp)
	if len(cands) == 0 {
		return nil, "", 0, false, errNoWorkers
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, len(cands))
	next, inflight := 0, 0
	// launch claims the next launchable candidate and fires an attempt at
	// it; a half-open candidate whose trial token was claimed elsewhere in
	// the meantime is skipped. Reports whether anything was launched.
	launch := func(hedge bool) bool {
		for next < len(cands) {
			w := cands[next]
			next++
			ok, trial := w.claim(c.cfg.now(), c.cfg.Cooldown)
			if !ok {
				continue
			}
			inflight++
			go func() {
				r, e := c.attempt(actx, w, req, trial)
				results <- attemptResult{resp: r, err: e, w: w, hedge: hedge}
			}()
			return true
		}
		return false
	}
	launch(false)
	var hedgeC <-chan time.Time
	if c.cfg.Hedge && next < len(cands) {
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	lastErr := errNoWorkers
	for inflight > 0 {
		select {
		case r := <-results:
			inflight--
			if r.err == nil || (r.resp != nil && !failoverable(r.err)) {
				// A usable answer: success, or a typed terminal outcome the
				// client must see (parse error, over-width, resource
				// verdict). Cancel any sibling still running.
				return r.resp, r.w.addr, failovers, r.hedge, nil
			}
			lastErr = r.err
			failovers++
			// Launch the next replica only when nothing else is pending: a
			// still-running hedge sibling is already covering the request.
			if inflight == 0 && actx.Err() == nil {
				launch(false)
			}
		case <-hedgeC:
			hedgeC = nil
			if inflight > 0 && launch(true) {
				c.hedges.Add(1)
				hedged = true
			}
		case <-actx.Done():
			return nil, "", failovers, hedged, actx.Err()
		}
	}
	return nil, "", failovers, hedged, lastErr
}

// attempt forwards the request to one worker with the remaining deadline
// propagated: the worker-side execution budget is rewritten to what is
// actually left, so failover retries shrink the budget instead of
// resetting it. Transport failures strike the worker's breaker; typed
// responses (even rejections) count as proof of life. trial marks an
// attempt that claimed the worker's half-open trial token; an attempt
// that ends without proving anything must hand the token back or the
// worker can never be probed or routed to again.
func (c *Coordinator) attempt(ctx context.Context, w *worker, req *server.Request, trial bool) (*server.Response, error) {
	w.inFlight.Add(1)
	defer w.inFlight.Add(-1)
	r := *req
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			if trial {
				w.releaseTrial()
			}
			return nil, context.DeadlineExceeded
		}
		r.Timeout = rem.String()
	}
	resp, err := w.cl.Do(ctx, &r)
	if err == nil {
		w.ok()
		return resp, nil
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		w.ok()
		return resp, err
	}
	if ctx.Err() == nil {
		// A transport failure while our context was still live: the worker
		// really failed us. (Cancellation-induced read errors — a hedge
		// loser, a caller giving up — are not the worker's fault.)
		w.fail(c.cfg.now(), c.cfg.FailThreshold)
	} else if trial {
		// Cancelled mid-trial: the worker proved nothing either way, so
		// the trial token goes back instead of leaking claimed.
		w.releaseTrial()
	}
	return nil, err
}

// failoverable reports whether an attempt outcome warrants trying the
// next replica: transport failures and the statuses a different worker
// could answer differently (shed, draining, isolated internal faults,
// timeouts, unavailable). Terminal verdicts — parse errors, over-width,
// resource limits — are the same on every replica and are relayed.
func failoverable(err error) bool {
	var se *client.StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case server.StatusShed, server.StatusDraining, server.StatusInternal,
			server.StatusTimeout, server.StatusUnavailable:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// rescue is the last rung: every replica for the shard is down, so the
// coordinator executes locally through the engine's resilience ladder,
// led by a RemoteRung that replays the fleet failure as a degradable
// error. The answer comes back StatusDegraded with the failed fleet
// attempt leading Stats.Attempts — an honest record of how it was
// produced.
func (c *Coordinator) rescue(ctx context.Context, q *cq.Query, db cq.Database, remoteErr error, failovers int) *server.Response {
	fleet := resilience.RemoteRung("fleet", func(context.Context) (*engine.Result, error) {
		return nil, fmt.Errorf("%w: no replica answered: %v", engine.ErrInternal, remoteErr)
	})
	opt := engine.Options{MaxRows: c.cfg.MaxRows, MaxBytes: c.cfg.MaxBytes}
	res, err := engine.ExecResilientStrategy(ctx, fleet, resilience.DegradationLadder(q, nil), db, opt, 1)
	resp := &server.Response{Worker: "local", Failovers: failovers}
	if res != nil {
		resp.Stats = server.StatsOf(&res.Stats)
	}
	if err != nil {
		resp.Status = server.ClassifyStatus(err)
		resp.Error = err.Error()
		return resp
	}
	c.rescued.Add(1)
	resp.Status = server.StatusDegraded
	resp.Answer = server.AnswerOf(res)
	return resp
}

// hedgeDelay is the p95 of the success-latency window, floored at
// HedgeFloor; until the window has a meaningful sample it is the floor
// itself.
func (c *Coordinator) hedgeDelay() time.Duration {
	c.latMu.Lock()
	n := c.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	if n < 8 {
		c.latMu.Unlock()
		return c.cfg.HedgeFloor
	}
	buf := make([]time.Duration, n)
	copy(buf, c.lats[:n])
	c.latMu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	p95 := buf[(n*95)/100-1]
	if p95 < c.cfg.HedgeFloor {
		p95 = c.cfg.HedgeFloor
	}
	return p95
}

// recordLatency feeds one success latency into the sliding window.
func (c *Coordinator) recordLatency(d time.Duration) {
	c.latMu.Lock()
	c.lats[c.latNext] = d
	c.latNext = (c.latNext + 1) % latencyWindow
	c.latN++
	c.latMu.Unlock()
}

// healthLoop probes every member each interval and reaps drained ones.
func (c *Coordinator) healthLoop() {
	defer c.healthWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.checkWorkers()
		}
	}
}

// checkWorkers runs one probe round: every member that is closed, or
// open with its cooldown elapsed (the half-open trial), gets a ready
// probe; probe transport failures strike the breaker exactly like
// forward failures, so a dead worker goes down within
// FailThreshold*HealthInterval without any query traffic. Draining
// members with no in-flight forwards are reaped.
func (c *Coordinator) checkWorkers() {
	c.mu.Lock()
	type probe struct {
		addr string
		w    *worker
	}
	var probes []probe
	now := c.cfg.now()
	for addr, w := range c.workers {
		if w.isDraining() {
			if w.inFlight.Load() == 0 {
				delete(c.workers, addr)
				c.ring.remove(addr)
			}
			continue
		}
		if w.admit(now, c.cfg.Cooldown) {
			probes = append(probes, probe{addr, w})
		}
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range probes {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
			defer cancel()
			ready, err := w.cl.Ready(ctx)
			if err != nil || !ready {
				// Unreachable, or alive but draining: either way it must
				// not receive forwards.
				w.fail(c.cfg.now(), c.cfg.FailThreshold)
				return
			}
			w.ok()
		}(p.w)
	}
	wg.Wait()
}

// logLine emits one JSON log line (best effort).
func (c *Coordinator) logLine(fields map[string]any) {
	if c.cfg.Log == nil {
		return
	}
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	c.cfg.Log.Write(append(b, '\n'))
}
