package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"projpush/internal/server/client"
)

// worker is the coordinator's view of one fleet member: a dedicated
// transport client plus a breaker-style health state machine. It mirrors
// the server's per-method breaker (closed → open → half-open) but guards
// a whole peer instead of a strategy: consecutive transport failures —
// from the health prober or from live forwards — open it, a cooldown
// later one trial request (or probe) is admitted, and a single success
// closes it again. Typed responses count as successes even when they
// carry an error status: a worker that sheds load or rejects a query is
// alive, and routing away from it is admission control's job, not
// failover's.
type worker struct {
	addr string
	cl   *client.Client

	mu       sync.Mutex
	failures int       // consecutive transport failures
	down     bool      // breaker open
	openedAt time.Time // when it opened (cooldown anchor)
	probing  bool      // a half-open trial is in flight
	draining bool      // deregistered; excluded from routing, reaped at idle

	// inFlight counts forwards currently using this worker, so drain can
	// reap it only once idle.
	inFlight atomic.Int64
}

func newWorker(addr string, opt client.Options) *worker {
	opt.Addr = addr
	// The coordinator owns retry policy (failover beats re-dialing a dead
	// peer), so the per-worker transport never retries on its own.
	opt.MaxRetries = -1
	return &worker{addr: addr, cl: client.New(opt)}
}

// admit reports whether a forward may use this worker now. Closed: yes.
// Open within the cooldown: no. Open past the cooldown: one caller gets
// through as the half-open trial; concurrent callers are held off until
// that trial resolves via ok or fail.
func (w *worker) admit(now time.Time, cooldown time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		return false
	}
	if !w.down {
		return true
	}
	if now.Sub(w.openedAt) >= cooldown && !w.probing {
		w.probing = true
		return true
	}
	return false
}

// ok records a successful round trip (typed responses included) and
// closes the breaker.
func (w *worker) ok() {
	w.mu.Lock()
	w.failures = 0
	w.down = false
	w.probing = false
	w.mu.Unlock()
}

// fail records a transport failure. The breaker opens when consecutive
// failures reach threshold, and re-opens immediately (resetting the
// cooldown) when a half-open trial fails.
func (w *worker) fail(now time.Time, threshold int) {
	w.mu.Lock()
	w.failures++
	if w.probing || w.failures >= threshold {
		w.down = true
		w.openedAt = now
		w.probing = false
	}
	w.mu.Unlock()
}

// drain marks the worker as deregistered: no new forwards, reaped once
// inFlight hits zero.
func (w *worker) drain() {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
}

// isDraining reports the drain flag.
func (w *worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// status renders the health-report state: "up", "down", "half-open" (open
// but past the cooldown, trial pending or in flight), or "draining".
func (w *worker) status(now time.Time, cooldown time.Duration) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.draining:
		return "draining"
	case !w.down:
		return "up"
	case now.Sub(w.openedAt) >= cooldown:
		return "half-open"
	default:
		return "down"
	}
}
