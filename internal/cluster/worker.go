package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"projpush/internal/server/client"
)

// worker is the coordinator's view of one fleet member: a dedicated
// transport client plus a breaker-style health state machine. It mirrors
// the server's per-method breaker (closed → open → half-open) but guards
// a whole peer instead of a strategy: consecutive transport failures —
// from the health prober or from live forwards — open it, a cooldown
// later one trial request (or probe) is admitted, and a single success
// closes it again. Typed responses count as successes even when they
// carry an error status: a worker that sheds load or rejects a query is
// alive, and routing away from it is admission control's job, not
// failover's.
type worker struct {
	addr string
	cl   *client.Client

	mu       sync.Mutex
	failures int       // consecutive transport failures
	down     bool      // breaker open
	openedAt time.Time // when it opened (cooldown anchor)
	probing  bool      // a half-open trial is in flight
	draining bool      // deregistered; excluded from routing, reaped at idle

	// inFlight counts forwards currently using this worker, so drain can
	// reap it only once idle.
	inFlight atomic.Int64
}

func newWorker(addr string, opt client.Options) *worker {
	opt.Addr = addr
	// The coordinator owns retry policy (failover beats re-dialing a dead
	// peer), so the per-worker transport never retries on its own.
	opt.MaxRetries = -1
	return &worker{addr: addr, cl: client.New(opt)}
}

// eligible reports whether this worker belongs in a failover candidate
// list right now, WITHOUT claiming anything: closed workers qualify, and
// so do half-open ones (cooldown elapsed) even while a trial is in
// flight — enumeration must never consume the trial token, or a backup
// candidate that is listed but never attempted locks the worker out of
// routing and probing forever. The token is claimed by claim/admit only
// when an attempt actually launches.
func (w *worker) eligible(now time.Time, cooldown time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		return false
	}
	return !w.down || now.Sub(w.openedAt) >= cooldown
}

// claim admits one actual attempt. Closed: yes, no token involved. Open
// within the cooldown: no. Open past the cooldown: one caller gets
// through as the half-open trial (trial=true); concurrent callers are
// held off until that trial resolves via ok, fail, or releaseTrial.
func (w *worker) claim(now time.Time, cooldown time.Duration) (ok, trial bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		return false, false
	}
	if !w.down {
		return true, false
	}
	if now.Sub(w.openedAt) >= cooldown && !w.probing {
		w.probing = true
		return true, true
	}
	return false, false
}

// admit is claim for callers that resolve every admitted attempt via
// ok/fail (the health prober) and so never need the token back.
func (w *worker) admit(now time.Time, cooldown time.Duration) bool {
	ok, _ := w.claim(now, cooldown)
	return ok
}

// releaseTrial returns an unresolved half-open trial token: the attempt
// that claimed it was cancelled before proving anything (hedge loser,
// caller gave up), so the worker goes back to plain half-open and the
// next attempt or probe may try again.
func (w *worker) releaseTrial() {
	w.mu.Lock()
	w.probing = false
	w.mu.Unlock()
}

// ok records a successful round trip (typed responses included) and
// closes the breaker.
func (w *worker) ok() {
	w.mu.Lock()
	w.failures = 0
	w.down = false
	w.probing = false
	w.mu.Unlock()
}

// fail records a transport failure. The breaker opens when consecutive
// failures reach threshold, and re-opens immediately (resetting the
// cooldown) when a half-open trial fails.
func (w *worker) fail(now time.Time, threshold int) {
	w.mu.Lock()
	w.failures++
	if w.probing || w.failures >= threshold {
		w.down = true
		w.openedAt = now
		w.probing = false
	}
	w.mu.Unlock()
}

// drain marks the worker as deregistered: no new forwards, reaped once
// inFlight hits zero.
func (w *worker) drain() {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
}

// isDraining reports the drain flag.
func (w *worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// status renders the health-report state: "up", "down", "half-open" (open
// but past the cooldown, trial pending or in flight), or "draining".
func (w *worker) status(now time.Time, cooldown time.Duration) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.draining:
		return "draining"
	case !w.down:
		return "up"
	case now.Sub(w.openedAt) >= cooldown:
		return "half-open"
	default:
		return "down"
	}
}
