// Worker-loss chaos drill (ISSUE 10): concurrent retrying clients
// against a 4-worker fleet while 2 of the 4 workers are killed and
// restarted mid-run, the worker.kill chaos loop keeps crashing members,
// and network faults tear coordinator-to-worker connections. The
// acceptance bar: every completed request is differentially equal to
// the single-process oracle, clients see only typed outcomes, at least
// one request failed over, and the drain leaves zero goroutines and
// zero listening sockets behind — all under -race, well inside 60s.
package cluster

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"projpush/internal/faultinject"
	"projpush/internal/instance"
	"projpush/internal/server"
	"projpush/internal/server/client"
)

func TestWorkerLossChaosDrill(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	db := instance.ColorDatabase(3)
	cases := buildFleetCases(t, db)

	fl, err := StartFleet("127.0.0.1:0", FleetConfig{
		Workers: 4,
		Worker: server.Config{
			DB:             db,
			MaxConcurrent:  2,
			MaxQueue:       2,
			QueueWait:      50 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			MaxRows:        200_000,
			Resilient:      true,
		},
		Coordinator: Config{
			Hedge:          true,
			HedgeFloor:     5 * time.Millisecond,
			LocalFallback:  true,
			RequestTimeout: 3 * time.Second,
			HealthInterval: 50 * time.Millisecond,
			HealthTimeout:  200 * time.Millisecond,
			FailThreshold:  2,
			Cooldown:       300 * time.Millisecond,
		},
		RestartDelay:  200 * time.Millisecond,
		ChaosInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := fl.Addr()
	workerAddrs := fl.WorkerAddrs()

	// Network faults on the worker side of every coordinator connection,
	// plus the worker.kill point the fleet's chaos loop polls —
	// deterministic per (seed, point, call index).
	spec := "worker.kill=0.02,conn.drop=0.05,conn.read.fail=0.05," +
		"read.slow=1ms:0.08,write.slow=1ms:0.08"
	if err := faultinject.Enable(spec, 42); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	const (
		numClients = 5
		perClient  = 8
	)
	type tally struct {
		ok, degraded, shed, timeout, resource, internal, unavailable int
	}
	var (
		mu     sync.Mutex
		counts tally
		wg     sync.WaitGroup
	)
	for ci := 0; ci < numClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := client.New(client.Options{
				Addr:           addr,
				MaxRetries:     8,
				AttemptTimeout: 4 * time.Second,
				BaseBackoff:    2 * time.Millisecond,
				MaxBackoff:     50 * time.Millisecond,
				Seed:           int64(ci) + 1,
			})
			for r := 0; r < perClient; r++ {
				cse := cases[(ci*perClient+r)%len(cases)]
				resp, err := c.Query(context.Background(), cse.text, "")
				if err == nil {
					if resp.Status != server.StatusOK && resp.Status != server.StatusDegraded {
						t.Errorf("client %d: nil error with status %s", ci, resp.Status)
						continue
					}
					if resp.Answer == nil {
						t.Errorf("client %d: %s: OK without an answer", ci, cse.name)
						continue
					}
					// Differential check: kill/restart churn must never
					// lose or duplicate answer rows.
					if !sameTuples(resp.Answer.Tuples, cse.tuples) {
						t.Errorf("client %d: %s: answer has %d rows, oracle has %d (or rows differ)",
							ci, cse.name, len(resp.Answer.Tuples), len(cse.tuples))
					}
					if resp.Worker == "" {
						t.Errorf("client %d: %s: answer not attributed to a worker", ci, cse.name)
					}
					mu.Lock()
					if resp.Status == server.StatusDegraded {
						counts.degraded++
					} else {
						counts.ok++
					}
					mu.Unlock()
					continue
				}
				// Failures must be typed: a *StatusError with one of the
				// documented outcomes, never a raw transport error.
				var se *client.StatusError
				if !errors.As(err, &se) {
					t.Errorf("client %d: %s: untyped failure after retries: %v", ci, cse.name, err)
					continue
				}
				mu.Lock()
				switch se.Status {
				case server.StatusShed, server.StatusDraining:
					counts.shed++
				case server.StatusTimeout:
					counts.timeout++
				case server.StatusResourceLimit:
					counts.resource++
				case server.StatusInternal:
					counts.internal++
				case server.StatusUnavailable:
					counts.unavailable++
				default:
					t.Errorf("client %d: %s: unexpected typed status %s: %v", ci, cse.name, se.Status, err)
				}
				mu.Unlock()
			}
		}(ci)
	}

	// Worker-loss drill proper: while the clients run, hard-kill 2 of
	// the 4 workers (the crash, not the drain), leave them dead long
	// enough for probes to open their breakers, then restart them on
	// their fixed addresses so their shards come home.
	time.Sleep(100 * time.Millisecond)
	fl.Kill(0)
	time.Sleep(150 * time.Millisecond)
	fl.Kill(1)
	time.Sleep(300 * time.Millisecond)
	if err := fl.Restart(0); err != nil {
		t.Errorf("Restart(0): %v", err)
	}
	if err := fl.Restart(1); err != nil {
		t.Errorf("Restart(1): %v", err)
	}

	wg.Wait()
	faultinject.Disable()

	if counts.ok+counts.degraded == 0 {
		t.Error("drill produced no successful answers")
	}
	t.Logf("drill outcomes: ok=%d degraded=%d shed=%d timeout=%d resource=%d internal=%d unavailable=%d",
		counts.ok, counts.degraded, counts.shed, counts.timeout, counts.resource, counts.internal, counts.unavailable)

	// The coordinator must have failed over at least once: 2 of 4 shards
	// lost their primary mid-run.
	hc := client.New(client.Options{Addr: addr})
	h, err := hc.Health(context.Background())
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Failovers < 1 {
		t.Errorf("health.Failovers = %d, want >= 1 after killing 2 of 4 workers mid-run", h.Failovers)
	}
	if len(h.Workers) != 4 {
		t.Errorf("health.Workers tracks %d members, want 4: %v", len(h.Workers), h.Workers)
	}
	t.Logf("fleet health: failovers=%d hedges=%d rescued=%d unavailable=%d workers=%v",
		h.Failovers, h.Hedges, h.Rescued, h.Unavailable, h.Workers)

	// Clean drain: the coordinator and every worker stop answering, and
	// no goroutines or sockets are left behind.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fl.Shutdown(ctx); err != nil {
		t.Fatalf("fleet Shutdown: %v", err)
	}
	if _, err := hc.Ready(context.Background()); err == nil {
		t.Error("coordinator still answering after drain")
	}
	for i, wa := range workerAddrs {
		if conn, err := net.DialTimeout("tcp", wa, 500*time.Millisecond); err == nil {
			conn.Close()
			t.Errorf("worker %d (%s) still accepting connections after drain", i, wa)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak after drain: %d > %d\n%s", n, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
}
