package cluster

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/server"
	"projpush/internal/server/client"
)

// fleetCase is a query text plus its oracle answer, mirroring the
// single-server chaos drill's differential setup: free variables make
// the answers real relations, and each oracle is computed once up
// front with no faults armed.
type fleetCase struct {
	name   string
	text   string
	tuples [][]int32
}

func buildFleetCases(t *testing.T, db cq.Database) []fleetCase {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"augpath4", graph.AugmentedPath(4)},
		{"augpath5", graph.AugmentedPath(5)},
		{"ladder3", graph.Ladder(3)},
		{"cycle5", graph.Cycle(5)},
	}
	var cases []fleetCase
	for _, gc := range graphs {
		free := instance.ChooseFree(instance.EdgeVertices(gc.g), 0.3, rng)
		q, err := instance.ColorQuery(gc.g, free)
		if err != nil {
			t.Fatalf("%s: ColorQuery: %v", gc.name, err)
		}
		var buf bytes.Buffer
		if err := cqparse.WriteQuery(&buf, q); err != nil {
			t.Fatalf("%s: WriteQuery: %v", gc.name, err)
		}
		oracle, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatalf("%s: EvalOracle: %v", gc.name, err)
		}
		sorted := oracle.SortedTuples()
		tuples := make([][]int32, len(sorted))
		for i, tup := range sorted {
			row := make([]int32, len(tup))
			for j, v := range tup {
				row[j] = int32(v)
			}
			tuples[i] = row
		}
		cases = append(cases, fleetCase{name: gc.name, text: buf.String(), tuples: tuples})
	}
	return cases
}

func sameTuples(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestFleetDifferentialAgainstOracle pins the fleet's answers to the
// single-process oracle over the paper's Figure 6–9 query families: a
// healthy 3-worker fleet, no faults, every answer differentially equal,
// and the affinity sharding stable — repeats of a query land on the
// same worker every time.
func TestFleetDifferentialAgainstOracle(t *testing.T) {
	db := instance.ColorDatabase(3)
	cases := buildFleetCases(t, db)

	fl, err := StartFleet("127.0.0.1:0", FleetConfig{
		Workers: 3,
		Worker: server.Config{
			DB:             db,
			MaxConcurrent:  4,
			RequestTimeout: 5 * time.Second,
			Resilient:      true,
		},
		Coordinator:   Config{RequestTimeout: 5 * time.Second},
		ChaosInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	c := client.New(client.Options{Addr: fl.Addr(), AttemptTimeout: 5 * time.Second})
	shard := make(map[string]string)
	for round := 0; round < 3; round++ {
		for _, cse := range cases {
			resp, err := c.Query(context.Background(), cse.text, "")
			if err != nil {
				t.Fatalf("round %d %s: %v", round, cse.name, err)
			}
			if resp.Status != server.StatusOK {
				t.Fatalf("round %d %s: status %s (%s)", round, cse.name, resp.Status, resp.Error)
			}
			if resp.Answer == nil || !sameTuples(resp.Answer.Tuples, cse.tuples) {
				t.Errorf("round %d %s: fleet answer differs from the oracle", round, cse.name)
			}
			if resp.Worker == "" {
				t.Fatalf("round %d %s: answer not stamped with its worker", round, cse.name)
			}
			if prev, ok := shard[cse.name]; ok && prev != resp.Worker {
				t.Errorf("%s: affinity moved from %s to %s on a healthy fleet", cse.name, prev, resp.Worker)
			}
			shard[cse.name] = resp.Worker
			if resp.Failovers != 0 || resp.Hedged {
				t.Errorf("round %d %s: failovers=%d hedged=%v on a healthy fleet",
					round, cse.name, resp.Failovers, resp.Hedged)
			}
		}
	}
	t.Logf("affinity shards: %v", shard)
}
