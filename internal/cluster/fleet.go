package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"projpush/internal/faultinject"
	"projpush/internal/server"
)

// FleetConfig configures StartFleet.
type FleetConfig struct {
	// Workers is the member count (default 4).
	Workers int
	// Worker is the per-member server configuration; WorkerID is set per
	// member ("w0", "w1", ...).
	Worker server.Config
	// Coordinator is the coordinator configuration; DB defaults to the
	// worker database and Workers is filled with the spawned members.
	Coordinator Config
	// RestartDelay is how long a chaos-killed worker stays dead before
	// its supervised restart (default 250ms).
	RestartDelay time.Duration
	// ChaosInterval is the worker.kill polling period (default 100ms;
	// negative disables the chaos loop). Each tick rolls the worker.kill
	// fault point once per live member; a firing hard-stops that member
	// (server.Abort — the crash, not the drain) and schedules its
	// restart, so an armed drill kills and revives workers continuously.
	ChaosInterval time.Duration
}

// Fleet is an in-process worker fleet under one coordinator: the drill
// and single-binary (-fleet) topology. Workers listen on loopback
// ephemeral ports; the coordinator fronts them on the caller's address.
type Fleet struct {
	co *Coordinator

	mu      sync.Mutex
	members []*member
	retired []*server.Server // aborted servers awaiting final join

	restartDelay time.Duration
	stop         chan struct{}
	stopOnce     sync.Once
	wg           sync.WaitGroup
}

// member is one supervised worker slot: the address is fixed for the
// fleet's lifetime (so the ring, and therefore shard affinity, is stable
// across kill/restart), the server behind it is replaced on restart.
type member struct {
	id   string
	addr string
	cfg  server.Config

	mu   sync.Mutex
	srv  *server.Server
	down bool
}

// StartFleet spawns the members and the coordinator and starts serving.
// addr is the coordinator's front address ("127.0.0.1:0" picks a port).
func StartFleet(addr string, cfg FleetConfig) (*Fleet, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.RestartDelay <= 0 {
		cfg.RestartDelay = 250 * time.Millisecond
	}
	if cfg.ChaosInterval == 0 {
		cfg.ChaosInterval = 100 * time.Millisecond
	}
	f := &Fleet{restartDelay: cfg.RestartDelay, stop: make(chan struct{})}
	var addrs []string
	for i := 0; i < cfg.Workers; i++ {
		wcfg := cfg.Worker
		wcfg.WorkerID = fmt.Sprintf("w%d", i)
		m := &member{id: wcfg.WorkerID, cfg: wcfg, srv: server.New(wcfg)}
		if err := m.srv.Listen("127.0.0.1:0"); err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: worker %s listen: %w", m.id, err)
		}
		m.addr = m.srv.Addr().String()
		f.serve(m.srv)
		f.members = append(f.members, m)
		addrs = append(addrs, m.addr)
	}
	ccfg := cfg.Coordinator
	if ccfg.DB == nil {
		ccfg.DB = cfg.Worker.DB
	}
	ccfg.Workers = addrs
	f.co = New(ccfg)
	if err := f.co.Listen(addr); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.co.Serve()
	}()
	if cfg.ChaosInterval > 0 {
		f.wg.Add(1)
		go f.chaosLoop(cfg.ChaosInterval)
	}
	return f, nil
}

// serve runs one worker server's accept loop under the fleet waitgroup.
func (f *Fleet) serve(s *server.Server) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		s.Serve()
	}()
}

// Coordinator returns the fleet's coordinator.
func (f *Fleet) Coordinator() *Coordinator { return f.co }

// Addr returns the coordinator's front address.
func (f *Fleet) Addr() string { return f.co.Addr().String() }

// WorkerAddrs returns the members' fixed addresses, in slot order.
func (f *Fleet) WorkerAddrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	addrs := make([]string, len(f.members))
	for i, m := range f.members {
		addrs[i] = m.addr
	}
	return addrs
}

// Kill hard-stops worker i as a crash would: listener and connections
// sever immediately, no drain, no deregistration. The coordinator finds
// out the hard way — through failed forwards and probes.
func (f *Fleet) Kill(i int) {
	f.mu.Lock()
	m := f.members[i]
	f.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return
	}
	m.down = true
	m.srv.Abort()
	f.mu.Lock()
	f.retired = append(f.retired, m.srv)
	f.mu.Unlock()
}

// Restart revives worker i on its original address with a fresh server,
// retrying the bind briefly (the dead listener's port may linger). The
// ring never changed, so the revived worker gets its exact shard — and
// begins rebuilding its subplan cache for it — as soon as a health probe
// notices it.
func (f *Fleet) Restart(i int) error {
	f.mu.Lock()
	m := f.members[i]
	f.mu.Unlock()
	// Bind outside m.mu: the retry loop can take seconds while the dead
	// listener's port lingers, and holding the member mutex through it
	// would block Down(i) — and with it the whole chaos tick — and stall
	// Shutdown's member sweep on this slot. The lock is taken only at the
	// end, to swap the bound server in after re-checking the flags.
	m.mu.Lock()
	down := m.down
	m.mu.Unlock()
	if !down {
		return nil
	}
	srv := server.New(m.cfg)
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; {
		select {
		case <-f.stop:
			return nil
		default:
		}
		if err = srv.Listen(m.addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: worker %s rebind %s: %w", m.id, m.addr, err)
		}
		m.mu.Lock()
		down = m.down
		m.mu.Unlock()
		if !down {
			return nil // a concurrent restart won the slot
		}
		select {
		case <-f.stop:
			return nil
		case <-time.After(20 * time.Millisecond):
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Checked under m.mu: Shutdown closes stop before sweeping members, so
	// a restart that would otherwise revive a worker after its slot was
	// swept (leaking its accept loop past the final join) sees the closed
	// channel here, releases the freshly bound listener, and stands down.
	select {
	case <-f.stop:
		srv.Abort()
		return nil
	default:
	}
	if !m.down {
		srv.Abort()
		return nil
	}
	m.srv = srv
	m.down = false
	f.serve(srv)
	return nil
}

// Down reports whether worker i is currently killed.
func (f *Fleet) Down(i int) bool {
	f.mu.Lock()
	m := f.members[i]
	f.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// chaosLoop is the worker-loss drill driver: each tick, each live member
// rolls the worker.kill fault point; a firing kills the member and
// schedules its supervised restart. With faults disarmed the loop is
// inert.
func (f *Fleet) chaosLoop(interval time.Duration) {
	defer f.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.mu.Lock()
			n := len(f.members)
			f.mu.Unlock()
			for i := 0; i < n; i++ {
				if f.Down(i) {
					continue
				}
				if faultinject.FailAlloc(faultinject.WorkerKill) {
					f.Kill(i)
					f.wg.Add(1)
					go func(slot int) {
						defer f.wg.Done()
						select {
						case <-f.stop:
						case <-time.After(f.restartDelay):
							f.Restart(slot)
						}
					}(i)
				}
			}
		}
	}
}

// Shutdown drains the whole topology front to back: chaos stops, the
// coordinator drains (no new requests, in-flight ones finish), then
// every member — including servers aborted by kills, whose lingering
// handlers must still be joined — shuts down under ctx's deadline. The
// first error wins but every stage runs.
func (f *Fleet) Shutdown(ctx context.Context) error {
	f.stopOnce.Do(func() { close(f.stop) })
	var first error
	if f.co != nil {
		if err := f.co.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	f.mu.Lock()
	members := append([]*member(nil), f.members...)
	retired := append([]*server.Server(nil), f.retired...)
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		srv, down := m.srv, m.down
		m.mu.Unlock()
		if down {
			continue // already in retired
		}
		if err := srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, srv := range retired {
		if err := srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	f.wg.Wait()
	return first
}

// Close is Shutdown with a short deadline, for construction-failure
// cleanup.
func (f *Fleet) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	f.Shutdown(ctx)
}
