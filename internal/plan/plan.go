// Package plan defines the logical project-join plans that every
// optimization method in this repository produces, plus structural
// analysis over them (output schemas, width, validation).
//
// A plan is a binary tree of Scan, Join, and Project nodes. All of the
// paper's methods — straightforward, early projection, greedy reordering,
// and bucket elimination — differ only in the shape of this tree; one
// executor (package engine) evaluates them all, and one renderer (package
// sqlgen) prints them in the paper's SQL dialect.
package plan

import (
	"fmt"
	"strings"

	"projpush/internal/cq"
)

// Node is a node of a project-join plan.
type Node interface {
	// Attrs returns the node's output schema in column order.
	Attrs() []cq.Var
	// Children returns the node's inputs (nil for Scan).
	Children() []Node

	fmt.Stringer
}

// Scan reads one atom: the named database relation with columns bound to
// the atom's variables.
type Scan struct {
	Atom cq.Atom
}

// Attrs returns the atom's variables.
func (s *Scan) Attrs() []cq.Var { return s.Atom.Args }

// Children returns nil.
func (s *Scan) Children() []Node { return nil }

func (s *Scan) String() string { return s.Atom.String() }

// Join is the natural join of two subplans. Its output schema is the left
// schema followed by right-only attributes, matching relation.Join.
type Join struct {
	Left, Right Node
}

// Attrs returns the joined schema.
func (j *Join) Attrs() []cq.Var {
	l := j.Left.Attrs()
	out := append([]cq.Var(nil), l...)
	in := make(map[cq.Var]bool, len(l))
	for _, a := range l {
		in[a] = true
	}
	for _, a := range j.Right.Attrs() {
		if !in[a] {
			out = append(out, a)
		}
	}
	return out
}

// Children returns the two inputs.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

func (j *Join) String() string {
	return "(" + j.Left.String() + " ⋈ " + j.Right.String() + ")"
}

// Project projects its child onto Cols with duplicate elimination (the
// paper's SELECT DISTINCT subqueries).
type Project struct {
	Child Node
	Cols  []cq.Var
}

// Attrs returns Cols.
func (p *Project) Attrs() []cq.Var { return p.Cols }

// Children returns the single input.
func (p *Project) Children() []Node { return []Node{p.Child} }

func (p *Project) String() string {
	var b strings.Builder
	b.WriteString("π{")
	for i, c := range p.Cols {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "x%d", c)
	}
	b.WriteString("}")
	b.WriteString(p.Child.String())
	return b.String()
}

// Stats summarizes the structure of a plan. Width is the paper's key
// metric: the maximum arity over every node's output schema, which for a
// projection-pushed plan equals the width of the corresponding
// join-expression tree.
type Stats struct {
	// Width is the maximum output arity over all nodes.
	Width int
	// Joins, Projects, Scans count node kinds.
	Joins, Projects, Scans int
	// Depth is the height of the tree (a single Scan has depth 1).
	Depth int
}

// Analyze walks the plan and returns its structural statistics.
func Analyze(n Node) Stats {
	var s Stats
	var walk func(Node) int
	walk = func(n Node) int {
		if a := len(n.Attrs()); a > s.Width {
			s.Width = a
		}
		depth := 0
		for _, c := range n.Children() {
			if d := walk(c); d > depth {
				depth = d
			}
		}
		switch n.(type) {
		case *Scan:
			s.Scans++
		case *Join:
			s.Joins++
		case *Project:
			s.Projects++
		}
		return depth + 1
	}
	s.Depth = walk(n)
	return s
}

// Atoms returns the scan atoms of the plan in left-to-right order.
func Atoms(n Node) []cq.Atom {
	var out []cq.Atom
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			out = append(out, s.Atom)
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Validate checks that the plan is a faithful evaluation strategy for q:
// its scans are exactly q's atoms (as a multiset), every projection keeps a
// subset of its child's schema, no projection drops a variable that is
// still needed (occurs in an unscanned atom or the target schema), and the
// root's schema is exactly q's free variables.
func Validate(n Node, q *cq.Query) error {
	// Scans must be exactly the query atoms, as a multiset.
	want := make(map[string]int)
	for _, a := range q.Atoms {
		want[a.String()]++
	}
	for _, a := range Atoms(n) {
		k := a.String()
		if want[k] == 0 {
			return fmt.Errorf("plan: scan %s is not a (remaining) query atom", k)
		}
		want[k]--
	}
	for k, c := range want {
		if c != 0 {
			return fmt.Errorf("plan: query atom %s missing from plan", k)
		}
	}

	// Projections must keep subsets of their child schema and must not
	// kill a variable needed outside the subtree.
	if err := validateSubtree(n, q, rootContext(q)); err != nil {
		return err
	}

	// Root schema must equal the free variables as a set.
	root := n.Attrs()
	if len(root) != len(q.Free) {
		return fmt.Errorf("plan: root schema %v != free variables %v", root, q.Free)
	}
	free := make(map[cq.Var]bool, len(q.Free))
	for _, v := range q.Free {
		free[v] = true
	}
	for _, v := range root {
		if !free[v] {
			return fmt.Errorf("plan: root schema %v != free variables %v", root, q.Free)
		}
	}
	return nil
}

// rootContext counts the references that are outside the whole plan tree:
// only the target schema. References from sibling subtrees are added as
// validateSubtree descends through joins.
func rootContext(q *cq.Query) map[cq.Var]int {
	need := make(map[cq.Var]int)
	for _, v := range q.Free {
		need[v]++
	}
	return need
}

// validateSubtree checks projection safety. outside maps each variable to
// the number of references to it outside the current subtree (including
// the target schema). A projection may drop a variable only if the
// variable has no outside references.
func validateSubtree(n Node, q *cq.Query, outside map[cq.Var]int) error {
	switch t := n.(type) {
	case *Scan:
		return nil
	case *Project:
		childAttrs := make(map[cq.Var]bool)
		for _, a := range t.Child.Attrs() {
			childAttrs[a] = true
		}
		kept := make(map[cq.Var]bool)
		for _, c := range t.Cols {
			if !childAttrs[c] {
				return fmt.Errorf("plan: projection keeps x%d not in child schema", c)
			}
			if kept[c] {
				return fmt.Errorf("plan: projection repeats column x%d", c)
			}
			kept[c] = true
		}
		for a := range childAttrs {
			if !kept[a] && outside[a] > 0 {
				return fmt.Errorf("plan: projection drops x%d, still referenced outside the subtree", a)
			}
		}
		return validateSubtree(t.Child, q, outside)
	case *Join:
		// References outside the left subtree include everything in the
		// right subtree, and vice versa.
		leftOutside := addCounts(outside, subtreeCounts(t.Right))
		if err := validateSubtree(t.Left, q, leftOutside); err != nil {
			return err
		}
		rightOutside := addCounts(outside, subtreeCounts(t.Left))
		return validateSubtree(t.Right, q, rightOutside)
	default:
		return fmt.Errorf("plan: unknown node type %T", n)
	}
}

// subtreeCounts counts variable occurrences in the scans of a subtree.
func subtreeCounts(n Node) map[cq.Var]int {
	c := make(map[cq.Var]int)
	for _, a := range Atoms(n) {
		for _, v := range a.Args {
			c[v]++
		}
	}
	return c
}

func addCounts(a, b map[cq.Var]int) map[cq.Var]int {
	out := make(map[cq.Var]int, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// Equal reports whether two plans are structurally identical (same shapes,
// atoms, and projection columns in the same order).
func Equal(a, b Node) bool {
	switch x := a.(type) {
	case *Scan:
		y, ok := b.(*Scan)
		if !ok || x.Atom.Rel != y.Atom.Rel || len(x.Atom.Args) != len(y.Atom.Args) {
			return false
		}
		for i := range x.Atom.Args {
			if x.Atom.Args[i] != y.Atom.Args[i] {
				return false
			}
		}
		return true
	case *Join:
		y, ok := b.(*Join)
		return ok && Equal(x.Left, y.Left) && Equal(x.Right, y.Right)
	case *Project:
		y, ok := b.(*Project)
		if !ok || len(x.Cols) != len(y.Cols) {
			return false
		}
		for i := range x.Cols {
			if x.Cols[i] != y.Cols[i] {
				return false
			}
		}
		return Equal(x.Child, y.Child)
	default:
		return false
	}
}

// LeftDeepJoin builds (..((a1 ⋈ a2) ⋈ a3).. ⋈ am) over the given scans,
// with no projections — the shape of the paper's straightforward method
// before the final projection.
func LeftDeepJoin(nodes []Node) Node {
	if len(nodes) == 0 {
		panic("plan.LeftDeepJoin: no nodes")
	}
	cur := nodes[0]
	for _, n := range nodes[1:] {
		cur = &Join{Left: cur, Right: n}
	}
	return cur
}
