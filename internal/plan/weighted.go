package plan

import "projpush/internal/cq"

// Weights assigns a byte width to every variable — the paper's Section 7
// extension: "queries with weighted attributes, reflecting the fact that
// different attributes may have different widths in bytes". Arity is then
// replaced by weighted arity as the cost measure a plan minimizes.
type Weights struct {
	// ByVar holds per-variable weights; variables not present use
	// Default.
	ByVar map[cq.Var]int
	// Default is the weight of unlisted variables. Zero means 1.
	Default int
}

// Of returns the weight of v.
func (w Weights) Of(v cq.Var) int {
	if wt, ok := w.ByVar[v]; ok {
		return wt
	}
	if w.Default > 0 {
		return w.Default
	}
	return 1
}

// RowWeight returns the weighted arity of a schema: the number of bytes
// one tuple over these attributes occupies.
func (w Weights) RowWeight(attrs []cq.Var) int {
	total := 0
	for _, v := range attrs {
		total += w.Of(v)
	}
	return total
}

// WeightedWidth returns the maximum weighted arity over every node's
// output schema — the generalization of Stats.Width that the weighted
// optimization targets. With all weights 1 it equals Analyze(n).Width.
func WeightedWidth(n Node, w Weights) int {
	max := 0
	var walk func(Node)
	walk = func(n Node) {
		if rw := w.RowWeight(n.Attrs()); rw > max {
			max = rw
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return max
}
