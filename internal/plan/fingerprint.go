package plan

import (
	"strconv"
	"strings"

	"projpush/internal/cq"
)

// Fingerprint returns a canonical structural fingerprint of the plan
// subtree rooted at n, invariant under variable renaming: two subtrees
// have equal fingerprints iff one is the image of the other under an
// injective variable substitution. Variables are numbered 0..k-1 in
// first-occurrence order of a deterministic left-to-right walk, so the
// same join/projection structure over differently-named variables — the
// common case across repetitions of a structured workload — maps to one
// fingerprint.
//
// The second result is the canonicalization witness: vars[i] is the
// actual variable assigned canonical id i. A cached execution result can
// therefore be stored over canonical attributes (rename actual → index)
// and re-bound on a later hit from a renamed but structurally identical
// subtree (rename index → that subtree's vars[i]).
func Fingerprint(n Node) (string, []cq.Var) {
	var b strings.Builder
	canon := make(map[cq.Var]int)
	var order []cq.Var
	id := func(v cq.Var) int {
		if c, ok := canon[v]; ok {
			return c
		}
		c := len(order)
		canon[v] = c
		order = append(order, v)
		return c
	}
	writeVars := func(vs []cq.Var) {
		for i, v := range vs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(id(v)))
		}
	}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Scan:
			b.WriteString("s:")
			b.WriteString(t.Atom.Rel)
			b.WriteByte('(')
			writeVars(t.Atom.Args)
			b.WriteByte(')')
		case *Join:
			b.WriteString("j(")
			walk(t.Left)
			b.WriteString(")(")
			walk(t.Right)
			b.WriteByte(')')
		case *Project:
			b.WriteString("p{")
			writeVars(t.Cols)
			b.WriteString("}(")
			walk(t.Child)
			b.WriteByte(')')
		default:
			// Unknown node kinds cannot be canonicalized; make the
			// fingerprint unique so they never alias a real subtree.
			b.WriteString("?:")
			b.WriteString(t.String())
		}
	}
	walk(n)
	return b.String(), order
}
