package plan

import (
	"testing"

	"projpush/internal/cq"
)

func scan(rel string, vars ...cq.Var) *Scan {
	return &Scan{Atom: cq.Atom{Rel: rel, Args: vars}}
}

// pathQuery is edge(0,1) ⋈ edge(1,2) ⋈ edge(2,3) with free variable 0.
func pathQuery() *cq.Query {
	return &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "edge", Args: []cq.Var{0, 1}},
			{Rel: "edge", Args: []cq.Var{1, 2}},
			{Rel: "edge", Args: []cq.Var{2, 3}},
		},
		Free: []cq.Var{0},
	}
}

func straightforwardPlan(q *cq.Query) Node {
	nodes := make([]Node, len(q.Atoms))
	for i, a := range q.Atoms {
		nodes[i] = &Scan{Atom: a}
	}
	return &Project{Child: LeftDeepJoin(nodes), Cols: q.Free}
}

func TestJoinAttrsOrder(t *testing.T) {
	j := &Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)}
	got := j.Attrs()
	want := []cq.Var{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("attrs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attrs = %v, want %v", got, want)
		}
	}
}

func TestAnalyze(t *testing.T) {
	q := pathQuery()
	s := Analyze(straightforwardPlan(q))
	if s.Width != 4 {
		t.Fatalf("width = %d, want 4 (no projection pushing)", s.Width)
	}
	if s.Joins != 2 || s.Scans != 3 || s.Projects != 1 {
		t.Fatalf("counts = %+v", s)
	}
	if s.Depth != 4 {
		t.Fatalf("depth = %d, want 4", s.Depth)
	}
}

func TestAnalyzeEarlyProjectionWidth(t *testing.T) {
	// π{0}( π{0,2}?? — build the early-projection plan for the path:
	// π{0}( (π{0,2}(edge(0,1) ⋈ edge(1,2))) ⋈ edge(2,3) )
	inner := &Project{
		Child: &Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Cols:  []cq.Var{0, 2},
	}
	root := &Project{
		Child: &Join{Left: inner, Right: scan("edge", 2, 3)},
		Cols:  []cq.Var{0},
	}
	s := Analyze(root)
	if s.Width != 3 {
		t.Fatalf("width = %d, want 3 with projection pushed", s.Width)
	}
	if err := Validate(root, pathQuery()); err != nil {
		t.Fatalf("valid early-projection plan rejected: %v", err)
	}
}

func TestAtomsInOrder(t *testing.T) {
	q := pathQuery()
	atoms := Atoms(straightforwardPlan(q))
	if len(atoms) != 3 {
		t.Fatalf("atoms = %v", atoms)
	}
	for i := range atoms {
		if atoms[i].String() != q.Atoms[i].String() {
			t.Fatalf("atom %d = %v, want %v", i, atoms[i], q.Atoms[i])
		}
	}
}

func TestValidateAcceptsStraightforward(t *testing.T) {
	q := pathQuery()
	if err := Validate(straightforwardPlan(q), q); err != nil {
		t.Fatalf("Validate rejected straightforward plan: %v", err)
	}
}

func TestValidateRejectsMissingAtom(t *testing.T) {
	q := pathQuery()
	p := &Project{
		Child: &Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Cols:  []cq.Var{0},
	}
	if err := Validate(p, q); err == nil {
		t.Fatal("Validate accepted plan missing an atom")
	}
}

func TestValidateRejectsForeignAtom(t *testing.T) {
	q := pathQuery()
	nodes := []Node{
		scan("edge", 0, 1), scan("edge", 1, 2), scan("edge", 2, 3),
		scan("edge", 3, 4),
	}
	p := &Project{Child: LeftDeepJoin(nodes), Cols: q.Free}
	if err := Validate(p, q); err == nil {
		t.Fatal("Validate accepted plan with extra atom")
	}
}

func TestValidateRejectsUnsafeProjection(t *testing.T) {
	q := pathQuery()
	// Project away variable 2 before edge(2,3) is joined: unsafe.
	inner := &Project{
		Child: &Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Cols:  []cq.Var{0}, // drops 2, still needed by edge(2,3)
	}
	p := &Project{
		Child: &Join{Left: inner, Right: scan("edge", 2, 3)},
		Cols:  []cq.Var{0},
	}
	if err := Validate(p, q); err == nil {
		t.Fatal("Validate accepted projection that kills a live variable")
	}
}

func TestValidateRejectsDroppingFreeVariable(t *testing.T) {
	q := pathQuery()
	q.Free = []cq.Var{0, 3}
	// Early-project 3 away even though it is free.
	inner := &Project{
		Child: LeftDeepJoin([]Node{
			scan("edge", 0, 1), scan("edge", 1, 2), scan("edge", 2, 3),
		}),
		Cols: []cq.Var{0},
	}
	if err := Validate(inner, q); err == nil {
		t.Fatal("Validate accepted plan dropping a free variable")
	}
}

func TestValidateRejectsWrongRootSchema(t *testing.T) {
	q := pathQuery()
	nodes := make([]Node, len(q.Atoms))
	for i, a := range q.Atoms {
		nodes[i] = &Scan{Atom: a}
	}
	p := &Project{Child: LeftDeepJoin(nodes), Cols: []cq.Var{0, 1}}
	if err := Validate(p, q); err == nil {
		t.Fatal("Validate accepted root schema != free variables")
	}
}

func TestValidateRejectsProjectionOutsideChildSchema(t *testing.T) {
	q := &cq.Query{
		Atoms: []cq.Atom{{Rel: "edge", Args: []cq.Var{0, 1}}},
		Free:  []cq.Var{0},
	}
	p := &Project{Child: scan("edge", 0, 1), Cols: []cq.Var{5}}
	if err := Validate(p, q); err == nil {
		t.Fatal("Validate accepted projection to column not in child")
	}
}

func TestValidateRejectsRepeatedProjectionColumn(t *testing.T) {
	q := &cq.Query{
		Atoms: []cq.Atom{{Rel: "edge", Args: []cq.Var{0, 1}}},
		Free:  []cq.Var{0},
	}
	p := &Project{Child: scan("edge", 0, 1), Cols: []cq.Var{0, 0}}
	if err := Validate(p, q); err == nil {
		t.Fatal("Validate accepted repeated projection column")
	}
}

func TestEqual(t *testing.T) {
	q := pathQuery()
	a := straightforwardPlan(q)
	b := straightforwardPlan(q)
	if !Equal(a, b) {
		t.Fatal("identical plans not Equal")
	}
	c := &Project{Child: LeftDeepJoin([]Node{
		scan("edge", 1, 2), scan("edge", 0, 1), scan("edge", 2, 3),
	}), Cols: q.Free}
	if Equal(a, c) {
		t.Fatal("different plans reported Equal")
	}
	if Equal(scan("edge", 0, 1), &Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)}) {
		t.Fatal("Scan equal to Join")
	}
}

func TestStringRendering(t *testing.T) {
	p := &Project{
		Child: &Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Cols:  []cq.Var{0},
	}
	got := p.String()
	want := "π{x0}(edge(x0,x1) ⋈ edge(x1,x2))"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestLeftDeepJoinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LeftDeepJoin(nil)
}
