package plan

import (
	"testing"

	"projpush/internal/cq"
)

func TestWeightsOf(t *testing.T) {
	w := Weights{ByVar: map[cq.Var]int{3: 7}, Default: 2}
	if w.Of(3) != 7 || w.Of(5) != 2 {
		t.Fatalf("Of: %d, %d", w.Of(3), w.Of(5))
	}
	zero := Weights{}
	if zero.Of(1) != 1 {
		t.Fatal("zero-value weights must default to 1")
	}
}

func TestRowWeight(t *testing.T) {
	w := Weights{ByVar: map[cq.Var]int{0: 10}, Default: 1}
	if got := w.RowWeight([]cq.Var{0, 1, 2}); got != 12 {
		t.Fatalf("RowWeight = %d, want 12", got)
	}
	if got := w.RowWeight(nil); got != 0 {
		t.Fatalf("empty RowWeight = %d", got)
	}
}

func TestWeightedWidthUniformEqualsWidth(t *testing.T) {
	q := pathQuery()
	p := straightforwardPlan(q)
	if got, want := WeightedWidth(p, Weights{}), Analyze(p).Width; got != want {
		t.Fatalf("uniform weighted width %d != width %d", got, want)
	}
}

func TestWeightedWidthHeavyColumnDominates(t *testing.T) {
	// π{0}(edge(0,1) ⋈ edge(1,2)): widest schema is {0,1,2}. With x1
	// weighing 100 the weighted width is 102.
	p := &Project{
		Child: &Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Cols:  []cq.Var{0},
	}
	w := Weights{ByVar: map[cq.Var]int{1: 100}, Default: 1}
	if got := WeightedWidth(p, w); got != 102 {
		t.Fatalf("weighted width = %d, want 102", got)
	}
}
