package plan

import (
	"testing"

	"projpush/internal/cq"
)

func fpScan(rel string, args ...cq.Var) *Scan {
	return &Scan{Atom: cq.Atom{Rel: rel, Args: args}}
}

func TestFingerprintRenamingInvariance(t *testing.T) {
	// π{x1}(e(x1,x2) ⋈ e(x2,x3)) and the same shape under the injective
	// renaming 1→7, 2→4, 3→9 must collide; a structural change must not.
	a := &Project{
		Cols:  []cq.Var{1},
		Child: &Join{Left: fpScan("e", 1, 2), Right: fpScan("e", 2, 3)},
	}
	b := &Project{
		Cols:  []cq.Var{7},
		Child: &Join{Left: fpScan("e", 7, 4), Right: fpScan("e", 4, 9)},
	}
	fa, va := Fingerprint(a)
	fb, vb := Fingerprint(b)
	if fa != fb {
		t.Fatalf("renamed isomorphs got distinct fingerprints:\n%s\n%s", fa, fb)
	}
	if len(va) != 3 || va[0] != 1 || va[1] != 2 || va[2] != 3 {
		t.Fatalf("witness a = %v, want [1 2 3]", va)
	}
	if len(vb) != 3 || vb[0] != 7 || vb[1] != 4 || vb[2] != 9 {
		t.Fatalf("witness b = %v, want [7 4 9]", vb)
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	base := &Join{Left: fpScan("e", 1, 2), Right: fpScan("e", 2, 3)}
	fp := func(n Node) string { f, _ := Fingerprint(n); return f }
	distinct := []Node{
		base,
		// Swapped children: joins are not commutative structurally.
		&Join{Left: fpScan("e", 2, 3), Right: fpScan("e", 1, 2)},
		// Different relation name.
		&Join{Left: fpScan("f", 1, 2), Right: fpScan("e", 2, 3)},
		// Non-injective pattern: shared variable in one atom.
		&Join{Left: fpScan("e", 1, 1), Right: fpScan("e", 1, 2)},
		// Projection on top.
		&Project{Cols: []cq.Var{1}, Child: base},
		// Projection keeping a different canonical column.
		&Project{Cols: []cq.Var{2}, Child: base},
	}
	seen := map[string]int{}
	for i, n := range distinct {
		f := fp(n)
		if j, dup := seen[f]; dup {
			t.Fatalf("plans %d and %d alias: %s", i, j, f)
		}
		seen[f] = i
	}
}

// TestFingerprintSeparatesConnectionPattern pins the subtlety the
// first-occurrence numbering must capture: which *positions* share a
// variable, not what the variable is called. e(x,y)⋈e(y,z) (a path) and
// e(x,y)⋈e(x,z) (a fork) use the same relation twice with two fresh
// variables each, but connect through different columns.
func TestFingerprintSeparatesConnectionPattern(t *testing.T) {
	path, _ := Fingerprint(&Join{Left: fpScan("e", 1, 2), Right: fpScan("e", 2, 3)})
	fork, _ := Fingerprint(&Join{Left: fpScan("e", 1, 2), Right: fpScan("e", 1, 3)})
	if path == fork {
		t.Fatalf("path and fork join patterns alias: %s", path)
	}
}
