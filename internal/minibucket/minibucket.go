// Package minibucket implements Dechter's mini-bucket elimination, the
// approximation scheme the paper lists as a promising extension
// (Section 7). Where bucket elimination joins *all* relations in a bucket
// before projecting out the bucket variable — paying up to the induced
// width in intermediate arity — mini-bucket elimination with bound i
// partitions each bucket into mini-buckets of at most i variables and
// processes each separately.
//
// The price of the bound is completeness: the result is an upper
// approximation. A nonempty mini-bucket result does not prove the query
// nonempty, but an empty result does prove it empty (each mini-bucket
// join relaxes the constraint set). With the bound at least the induced
// width, mini-buckets coincide with full bucket elimination and the
// result is exact.
package minibucket

import (
	"fmt"

	"projpush/internal/cq"
	"projpush/internal/relation"
)

// Result is the outcome of a mini-bucket run.
type Result struct {
	// Rel over-approximates the true query result: it is a superset of
	// the exact relation over the free variables.
	Rel *relation.Relation
	// Exact reports whether no bucket was actually split, in which case
	// Rel is the exact answer.
	Exact bool
	// MaxArity is the largest intermediate arity used.
	MaxArity int
}

// Evaluate runs mini-bucket elimination with the given variable order
// (free variables first, as for bucket elimination) and arity bound.
// bound must be at least 1; the bound counts variables per mini-bucket
// join (the "i" of MBE(i)).
func Evaluate(q *cq.Query, db cq.Database, order []cq.Var, bound int) (*Result, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("minibucket: query has no atoms")
	}
	if bound < 1 {
		return nil, fmt.Errorf("minibucket: bound must be >= 1, got %d", bound)
	}
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	num := make(map[cq.Var]int, len(order))
	for i, v := range order {
		if _, dup := num[v]; dup {
			return nil, fmt.Errorf("minibucket: variable x%d repeated in order", v)
		}
		num[v] = i
	}
	for _, v := range q.Vars() {
		if _, ok := num[v]; !ok {
			return nil, fmt.Errorf("minibucket: variable x%d missing from order", v)
		}
	}
	numFree := len(q.Free)
	for _, v := range q.Free {
		if num[v] >= numFree {
			return nil, fmt.Errorf("minibucket: free variable x%d not at the front of the order", v)
		}
	}

	res := &Result{Exact: true}
	observe := func(r *relation.Relation) {
		if r.Arity() > res.MaxArity {
			res.MaxArity = r.Arity()
		}
	}

	bucketOf := func(r *relation.Relation) int {
		max := -1
		for _, v := range r.Attrs() {
			if num[v] > max {
				max = num[v]
			}
		}
		return max
	}

	buckets := make([][]*relation.Relation, len(order))
	var residual []*relation.Relation
	place := func(r *relation.Relation) {
		if b := bucketOf(r); b >= 0 {
			buckets[b] = append(buckets[b], r)
		} else {
			residual = append(residual, r)
		}
	}
	for _, a := range q.Atoms {
		rel := db[a.Rel]
		m := make(map[relation.Attr]relation.Attr, rel.Arity())
		for c, attr := range rel.Attrs() {
			m[attr] = a.Args[c]
		}
		bound := relation.Rename(rel, m)
		observe(bound)
		place(bound)
	}

	for i := len(order) - 1; i >= numFree; i-- {
		if len(buckets[i]) == 0 {
			continue
		}
		groups := partition(buckets[i], bound)
		if len(groups) > 1 {
			res.Exact = false
		}
		for _, grp := range groups {
			joined := grp[0]
			for _, r := range grp[1:] {
				joined = relation.Join(joined, r)
				observe(joined)
			}
			keep := make([]cq.Var, 0, joined.Arity())
			for _, v := range joined.Attrs() {
				if v != order[i] {
					keep = append(keep, v)
				}
			}
			projected := relation.Project(joined, keep)
			observe(projected)
			place(projected)
		}
	}

	var final *relation.Relation
	join := func(r *relation.Relation) {
		if final == nil {
			final = r
		} else {
			final = relation.Join(final, r)
			observe(final)
		}
	}
	for i := 0; i < numFree; i++ {
		for _, r := range buckets[i] {
			join(r)
		}
	}
	for _, r := range residual {
		join(r)
	}
	if final == nil {
		return nil, fmt.Errorf("minibucket: nothing to join (no free variables and empty residue)")
	}
	res.Rel = relation.Project(final, q.Free)
	observe(res.Rel)
	return res, nil
}

// partition greedily splits a bucket's relations into groups whose
// combined schema has at most bound variables. Every relation lands in
// the first group it fits; relations wider than the bound get singleton
// groups (their arity cannot be reduced anyway).
func partition(rels []*relation.Relation, bound int) [][]*relation.Relation {
	var groups [][]*relation.Relation
	var groupVars []map[cq.Var]bool
next:
	for _, r := range rels {
		for gi, g := range groups {
			merged := make(map[cq.Var]bool, len(groupVars[gi])+r.Arity())
			for v := range groupVars[gi] {
				merged[v] = true
			}
			for _, v := range r.Attrs() {
				merged[v] = true
			}
			if len(merged) <= bound {
				groups[gi] = append(g, r)
				groupVars[gi] = merged
				continue next
			}
		}
		vars := make(map[cq.Var]bool, r.Arity())
		for _, v := range r.Attrs() {
			vars[v] = true
		}
		groups = append(groups, []*relation.Relation{r})
		groupVars = append(groupVars, vars)
	}
	return groups
}
