package minibucket

import (
	"math/rand"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/relation"
)

func setup(t *testing.T, g *graph.Graph) (*cq.Query, cq.Database, []cq.Var) {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	return q, instance.ColorDatabase(3), core.MCSVarOrder(q, nil)
}

func TestExactWhenBoundLarge(t *testing.T) {
	q, db, order := setup(t, graph.Cycle(5))
	res, err := Evaluate(q, db, order, len(order))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("bound = #vars must never split a bucket")
	}
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(want) {
		t.Fatalf("exact mini-bucket %v != oracle %v", res.Rel, want)
	}
}

func TestUpperApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(5)
		m := n + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		order := core.MCSVarOrder(q, rng)
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, bound := range []int{2, 3, 4} {
			res, err := Evaluate(q, db, order, bound)
			if err != nil {
				t.Fatal(err)
			}
			// Superset property: every exact tuple appears in the
			// approximation (both relations share the target-schema
			// column order).
			ok := true
			want.Each(func(tu relation.Tuple) bool {
				if !res.Rel.Contains(tu) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				t.Fatalf("trial %d bound %d: approximation misses an exact tuple", trial, bound)
			}
			// Soundness of emptiness: empty approximation implies
			// empty exact answer.
			if res.Rel.Empty() && !want.Empty() {
				t.Fatalf("trial %d bound %d: empty approximation but nonempty answer", trial, bound)
			}
			if res.MaxArity > maxInt(bound, widestAtom(q)) {
				t.Fatalf("trial %d bound %d: arity %d exceeded the bound", trial, bound, res.MaxArity)
			}
		}
	}
}

func widestAtom(q *cq.Query) int {
	w := 0
	for _, a := range q.Atoms {
		if len(a.Args) > w {
			w = len(a.Args)
		}
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBoundTrumpsWidth(t *testing.T) {
	// On a clique the exact induced width is n-1; mini-buckets with a
	// small bound must keep intermediate arity at the bound.
	q, db, order := setup(t, graph.Complete(6))
	res, err := Evaluate(q, db, order, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("a clique bucket must split under bound 3")
	}
	if res.MaxArity > 3 {
		t.Fatalf("arity %d exceeds bound 3", res.MaxArity)
	}
	// K6 is not 3-colorable but the relaxation may not detect it; what
	// matters is no false emptiness, checked in TestUpperApproximation.
}

func TestErrors(t *testing.T) {
	q, db, order := setup(t, graph.Cycle(4))
	if _, err := Evaluate(q, db, order, 0); err == nil {
		t.Fatal("accepted bound 0")
	}
	if _, err := Evaluate(q, db, order[1:], 3); err == nil {
		t.Fatal("accepted incomplete order")
	}
	bad := append([]cq.Var{order[1]}, order[1:]...)
	if _, err := Evaluate(q, db, bad, 3); err == nil {
		t.Fatal("accepted duplicate in order")
	}
	if _, err := Evaluate(&cq.Query{}, db, nil, 3); err == nil {
		t.Fatal("accepted empty query")
	}
}

func TestFreeVariablesSurvive(t *testing.T) {
	g := graph.Ladder(3)
	rng := rand.New(rand.NewSource(3))
	free := instance.ChooseFree(instance.EdgeVertices(g), 0.2, rng)
	q, err := instance.ColorQuery(g, free)
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	order := core.MCSVarOrder(q, nil)
	res, err := Evaluate(q, db, order, len(order))
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(want) {
		t.Fatalf("non-Boolean exact mini-bucket differs from oracle")
	}
}
