package acyclic

import (
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/relation"
)

func colorQ(t *testing.T, g *graph.Graph, free []cq.Var) *cq.Query {
	t.Helper()
	q, err := instance.ColorQuery(g, free)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestIsAcyclicFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"path", graph.Path(6), true},
		{"augmented path", graph.AugmentedPath(5), true},
		{"star via wheel rim removed", graph.Path(2), true},
		{"cycle", graph.Cycle(5), false},
		{"ladder", graph.Ladder(4), false},
		{"complete", graph.Complete(4), false},
	}
	for _, c := range cases {
		q := colorQ(t, c.g, instance.BooleanFree(c.g))
		if got := IsAcyclic(q); got != c.want {
			t.Errorf("%s: IsAcyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIsAcyclicHypergraph(t *testing.T) {
	// A ternary atom covering a triangle is acyclic as a hypergraph.
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "r3", Args: []cq.Var{0, 1, 2}},
			{Rel: "edge", Args: []cq.Var{0, 1}},
		},
		Free: []cq.Var{0},
	}
	if !IsAcyclic(q) {
		t.Fatal("hyperedge-covered triangle must be acyclic")
	}
}

func TestGYOForestStructure(t *testing.T) {
	q := colorQ(t, graph.Path(4), instance.BooleanFree(graph.Path(4)))
	f, ok := GYO(q)
	if !ok {
		t.Fatal("path query must be acyclic")
	}
	if len(f.Order) != len(q.Atoms) {
		t.Fatalf("order covers %d atoms, want %d", len(f.Order), len(q.Atoms))
	}
	roots := f.Roots()
	if len(roots) != 1 {
		t.Fatalf("connected path query should have 1 root, got %v", roots)
	}
	// Every non-root's parent must be a valid atom index.
	for i, p := range f.Parent {
		if p == i || p < -1 || p >= len(q.Atoms) {
			t.Fatalf("bad parent[%d] = %d", i, p)
		}
	}
}

func TestEvaluateMatchesOracleOnAcyclicQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	db := instance.ColorDatabase(3)
	families := []*graph.Graph{
		graph.Path(6),
		graph.AugmentedPath(4),
		graph.AugmentedPath(6),
	}
	for _, g := range families {
		for _, boolean := range []bool{true, false} {
			var free []cq.Var
			if boolean {
				free = instance.BooleanFree(g)
			} else {
				free = instance.ChooseFree(instance.EdgeVertices(g), 0.2, rng)
			}
			q := colorQ(t, g, free)
			got, err := Evaluate(q, db)
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.EvalOracle(q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%v boolean=%v: Yannakakis %v != oracle %v", g, boolean, got, want)
			}
		}
	}
}

func TestEvaluateRejectsCyclic(t *testing.T) {
	q := colorQ(t, graph.Cycle(4), instance.BooleanFree(graph.Cycle(4)))
	if _, err := Evaluate(q, instance.ColorDatabase(3)); err == nil {
		t.Fatal("Evaluate accepted a cyclic query")
	}
	if _, err := FullReduce(q, instance.ColorDatabase(3)); err == nil {
		t.Fatal("FullReduce accepted a cyclic query")
	}
}

func TestFullReduceGlobalConsistency(t *testing.T) {
	// Build a database where reduction must actually remove tuples: a
	// path query over an asymmetric relation.
	db := instance.ColorDatabase(3)
	// next: only (0,1) and (1,2) — a "successor" chain.
	next := relation.New([]relation.Attr{0, 1})
	next.Add(relation.Tuple{0, 1})
	next.Add(relation.Tuple{1, 2})
	db["next"] = next
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "next", Args: []cq.Var{0, 1}},
			{Rel: "next", Args: []cq.Var{1, 2}},
			{Rel: "next", Args: []cq.Var{2, 3}},
		},
		Free: []cq.Var{0},
	}
	// The chain 0->1->2->3 over {(0,1),(1,2)} has no solution: reduction
	// must empty something.
	rels, err := FullReduce(q, db)
	if err != nil {
		t.Fatal(err)
	}
	anyEmpty := false
	for _, r := range rels {
		if r.Empty() {
			anyEmpty = true
		}
	}
	if !anyEmpty {
		t.Fatal("full reducer failed to detect inconsistency")
	}
	got, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatal("3-step chain over 2-step successor must be empty")
	}
	// A 2-step chain is satisfiable exactly by v0=0.
	q2 := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "next", Args: []cq.Var{0, 1}},
			{Rel: "next", Args: []cq.Var{1, 2}},
		},
		Free: []cq.Var{0},
	}
	got, err = Evaluate(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("2-step chain result = %v, want exactly v0=0", got)
	}
}

func TestSemijoinsUselessFor3Color(t *testing.T) {
	// The paper's observation: projecting a column of the edge relation
	// yields all colors, so the full reducer never shrinks any relation
	// on (acyclic) 3-COLOR queries.
	db := instance.ColorDatabase(3)
	g := graph.AugmentedPath(5)
	q := colorQ(t, g, instance.BooleanFree(g))
	rels, err := FullReduce(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rels {
		if r.Len() != 6 {
			t.Fatalf("atom %d reduced to %d tuples; semijoins should be useless (want 6)", i, r.Len())
		}
	}
}

func TestEvaluateDisconnectedQuery(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	q := colorQ(t, g, []cq.Var{0})
	got, err := Evaluate(q, instance.ColorDatabase(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("disconnected acyclic query = %v, want 3 colors", got)
	}
}
