// Package acyclic implements the classical machinery for acyclic
// project-join queries that the paper positions its work against
// (Sections 1 and 7): the GYO ear-removal acyclicity test of Tarjan &
// Yannakakis, the full semijoin reducer in the style of Wong–Youssefi,
// and Yannakakis's evaluation algorithm with linear-size intermediate
// results.
//
// The paper notes that for its 3-COLOR queries semijoins are useless —
// projecting a column of the edge relation yields all colors, so
// semijoin reduction never shrinks anything. That claim is tested here
// (TestSemijoinsUselessFor3Color) and is the reason the paper focuses
// purely on join/projection ordering.
package acyclic

import (
	"fmt"

	"projpush/internal/cq"
	"projpush/internal/relation"
)

// JoinForest is the result of a successful GYO reduction: a forest over
// atom indices. Parent[i] is the atom that absorbed atom i, or -1 for
// roots. Order lists the atoms leaves-first (the removal order), which is
// the order semijoin passes follow.
type JoinForest struct {
	Parent []int
	Order  []int
}

// Roots returns the root atom indices.
func (f *JoinForest) Roots() []int {
	var out []int
	for i, p := range f.Parent {
		if p == -1 {
			out = append(out, i)
		}
	}
	return out
}

// GYO runs the Graham / Yu–Ozsoyoglu ear-removal algorithm on the query's
// hypergraph (one hyperedge per atom). It returns a join forest when the
// query is acyclic, and ok=false otherwise.
func GYO(q *cq.Query) (*JoinForest, bool) {
	m := len(q.Atoms)
	edges := make([]map[cq.Var]bool, m)
	alive := make([]bool, m)
	occ := make(map[cq.Var]int)
	for i, a := range q.Atoms {
		edges[i] = make(map[cq.Var]bool, len(a.Args))
		alive[i] = true
		for _, v := range a.Args {
			edges[i][v] = true
			occ[v]++
		}
	}
	f := &JoinForest{Parent: make([]int, m)}
	for i := range f.Parent {
		f.Parent[i] = -1
	}
	aliveCount := m

	for {
		changed := false
		// Rule 1: drop variables occurring in exactly one hyperedge.
		for i := 0; i < m; i++ {
			if !alive[i] {
				continue
			}
			for v := range edges[i] {
				if occ[v] == 1 {
					delete(edges[i], v)
					occ[v] = 0
					changed = true
				}
			}
		}
		// Rule 2: remove a hyperedge contained in another (an ear).
		for i := 0; i < m && aliveCount > 1; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < m; j++ {
				if i == j || !alive[j] {
					continue
				}
				if subset(edges[i], edges[j]) {
					alive[i] = false
					aliveCount--
					f.Parent[i] = j
					f.Order = append(f.Order, i)
					for v := range edges[i] {
						occ[v]--
					}
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	if aliveCount != 1 {
		// Either cyclic, or several disconnected components each fully
		// reduced to one edge: the latter is still acyclic (a forest).
		for i := 0; i < m; i++ {
			if alive[i] && len(edges[i]) > 0 {
				// A remaining hyperedge with variables shared with
				// another remaining hyperedge means a cycle.
				for j := 0; j < m; j++ {
					if j == i || !alive[j] {
						continue
					}
					for v := range edges[i] {
						if edges[j][v] {
							return nil, false
						}
					}
				}
			}
		}
	}
	// Remaining alive atoms are roots, appended last in removal order.
	for i := 0; i < m; i++ {
		if alive[i] {
			f.Order = append(f.Order, i)
		}
	}
	return f, true
}

// subset reports a ⊆ b.
func subset(a, b map[cq.Var]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// bindAtoms materializes each atom's relation with columns renamed to the
// atom's variables.
func bindAtoms(q *cq.Query, db cq.Database) ([]*relation.Relation, error) {
	out := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		rel, ok := db[a.Rel]
		if !ok {
			return nil, fmt.Errorf("acyclic: unknown relation %q", a.Rel)
		}
		if rel.Arity() != len(a.Args) {
			return nil, fmt.Errorf("acyclic: atom %s arity mismatch", a)
		}
		m := make(map[relation.Attr]relation.Attr, rel.Arity())
		for c, attr := range rel.Attrs() {
			m[attr] = a.Args[c]
		}
		out[i] = relation.Rename(rel, m)
	}
	return out, nil
}

// FullReduce runs the full semijoin reducer over an acyclic query: a
// leaves-to-roots semijoin pass followed by a roots-to-leaves pass. The
// returned relations are globally consistent: every tuple participates in
// some solution. Returns an error for cyclic queries.
func FullReduce(q *cq.Query, db cq.Database) ([]*relation.Relation, error) {
	f, ok := GYO(q)
	if !ok {
		return nil, fmt.Errorf("acyclic: query is cyclic")
	}
	rels, err := bindAtoms(q, db)
	if err != nil {
		return nil, err
	}
	// Up: child reduces parent.
	for _, i := range f.Order {
		if p := f.Parent[i]; p >= 0 {
			rels[p] = relation.Semijoin(rels[p], rels[i])
		}
	}
	// Down: parent reduces child.
	for k := len(f.Order) - 1; k >= 0; k-- {
		i := f.Order[k]
		if p := f.Parent[i]; p >= 0 {
			rels[i] = relation.Semijoin(rels[i], rels[p])
		}
	}
	return rels, nil
}

// Evaluate runs Yannakakis's algorithm on an acyclic query: full semijoin
// reduction, then a bottom-up join keeping only connecting variables and
// free variables, so every intermediate result stays polynomial. Returns
// an error for cyclic queries.
func Evaluate(q *cq.Query, db cq.Database) (*relation.Relation, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	f, ok := GYO(q)
	if !ok {
		return nil, fmt.Errorf("acyclic: query is cyclic")
	}
	rels, err := FullReduce(q, db)
	if err != nil {
		return nil, err
	}
	free := make(map[cq.Var]bool, len(q.Free))
	for _, v := range q.Free {
		free[v] = true
	}
	// Bottom-up join: fold each child into its parent, projecting to the
	// parent's own variables plus any free variables gathered below.
	atomVars := make([]map[cq.Var]bool, len(q.Atoms))
	for i, a := range q.Atoms {
		atomVars[i] = make(map[cq.Var]bool, len(a.Args))
		for _, v := range a.Args {
			atomVars[i][v] = true
		}
	}
	for _, i := range f.Order {
		p := f.Parent[i]
		if p < 0 {
			continue
		}
		joined := relation.Join(rels[p], rels[i])
		var keep []cq.Var
		for _, v := range joined.Attrs() {
			if atomVars[p][v] || free[v] {
				keep = append(keep, v)
			}
		}
		rels[p] = relation.Project(joined, keep)
	}
	// Join the roots (cross product across disconnected components) and
	// project to the target schema.
	var result *relation.Relation
	for _, r := range f.Roots() {
		if result == nil {
			result = rels[r]
		} else {
			result = relation.Join(result, rels[r])
		}
	}
	if result == nil {
		return nil, fmt.Errorf("acyclic: query has no atoms")
	}
	return relation.Project(result, q.Free), nil
}

// IsAcyclic reports whether the query's hypergraph is acyclic.
func IsAcyclic(q *cq.Query) bool {
	_, ok := GYO(q)
	return ok
}
