// Package sqlparse parses the SQL dialect produced by package sqlgen —
// the paper's Appendix A queries — back into executable plans. It exists
// both as a round-trip oracle for the generator and as the reader half of
// the PostgreSQL-substitute substrate: the experiments can ship SQL text
// through generation and parsing, exactly as the paper's driver shipped
// text to a backend.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokPunct
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased
	pos  int
}

// keywords of the dialect.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "JOIN": true,
	"ON": true, "AS": true, "AND": true, "TRUE": true, "WHERE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '=' || c == ';':
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{tokKeyword, up, start})
			} else {
				l.toks = append(l.toks, token{tokIdent, word, start})
			}
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
