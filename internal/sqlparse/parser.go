package sqlparse

import (
	"fmt"
	"strconv"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

// Parse parses a JOIN-form query of the sqlgen dialect into a plan. The
// root of the returned plan is always a Project carrying the SELECT list.
func Parse(sql string) (plan.Node, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	node, err := p.query()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input")
	}
	return node, nil
}

// ParseNaive parses a naive-form query (comma FROM list, WHERE
// equalities) into a conjunctive query, verifying the WHERE clause is
// consistent with the variable naming.
func ParseNaive(sql string) (*cq.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.naiveQuery()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input")
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// varOfColumn decodes a v<digits> column name into a variable.
func varOfColumn(name string) (cq.Var, error) {
	if len(name) < 2 || name[0] != 'v' {
		return 0, fmt.Errorf("sqlparse: column %q does not follow the v<id> convention", name)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil {
		return 0, fmt.Errorf("sqlparse: column %q does not follow the v<id> convention", name)
	}
	return n, nil
}

// qualifiedColumn parses alias '.' column and returns (alias, var).
func (p *parser) qualifiedColumn() (string, cq.Var, error) {
	alias, err := p.expect(tokIdent, "")
	if err != nil {
		return "", 0, err
	}
	if _, err := p.expect(tokPunct, "."); err != nil {
		return "", 0, err
	}
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return "", 0, err
	}
	v, err := varOfColumn(col.text)
	if err != nil {
		return "", 0, err
	}
	return alias.text, v, nil
}

// query parses SELECT DISTINCT list FROM fromExpr.
func (p *parser) query() (plan.Node, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "DISTINCT"); err != nil {
		return nil, err
	}
	var cols []cq.Var
	for {
		_, v, err := p.qualifiedColumn()
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	item, err := p.fromExpr()
	if err != nil {
		return nil, err
	}
	// The SELECT list must reference produced variables.
	produced := make(map[cq.Var]bool)
	for _, v := range item.Attrs() {
		produced[v] = true
	}
	for _, v := range cols {
		if !produced[v] {
			return nil, fmt.Errorf("sqlparse: SELECT references v%d not produced by FROM", v)
		}
	}
	return &plan.Project{Child: item, Cols: cols}, nil
}

// fromExpr parses item (JOIN item ON '(' cond ')')*.
func (p *parser) fromExpr() (plan.Node, error) {
	left, err := p.fromItem()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "JOIN") {
		right, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		join := &plan.Join{Left: left, Right: right}
		if err := p.joinCondition(join); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		left = join
	}
	return left, nil
}

// joinCondition parses TRUE or eq (AND eq)* and checks each equality
// relates two occurrences of the same variable available in the join.
func (p *parser) joinCondition(j *plan.Join) error {
	if p.accept(tokKeyword, "TRUE") {
		return nil
	}
	avail := make(map[cq.Var]bool)
	for _, v := range j.Attrs() {
		avail[v] = true
	}
	for {
		_, v1, err := p.qualifiedColumn()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return err
		}
		_, v2, err := p.qualifiedColumn()
		if err != nil {
			return err
		}
		if v1 != v2 {
			return fmt.Errorf("sqlparse: join condition equates v%d with v%d; the dialect only equates occurrences of one variable", v1, v2)
		}
		if !avail[v1] {
			return fmt.Errorf("sqlparse: join condition references v%d not available in the join", v1)
		}
		if !p.accept(tokKeyword, "AND") {
			return nil
		}
	}
}

// fromItem parses a base-table reference, a parenthesized subquery with
// alias, or a parenthesized join expression.
func (p *parser) fromItem() (plan.Node, error) {
	if p.accept(tokPunct, "(") {
		if p.at(tokKeyword, "SELECT") {
			sub, err := p.query()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, ""); err != nil {
				return nil, err
			}
			return sub, nil
		}
		inner, err := p.fromExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.scan()
}

// scan parses rel alias '(' col (',' col)* ')'.
func (p *parser) scan() (plan.Node, error) {
	rel, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, ""); err != nil { // alias
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var args []cq.Var
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		v, err := varOfColumn(col.text)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return &plan.Scan{Atom: cq.Atom{Rel: rel.text, Args: args}}, nil
}

// naiveQuery parses SELECT DISTINCT list FROM scan (, scan)* [WHERE eqs].
func (p *parser) naiveQuery() (*cq.Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "DISTINCT"); err != nil {
		return nil, err
	}
	var free []cq.Var
	for {
		_, v, err := p.qualifiedColumn()
		if err != nil {
			return nil, err
		}
		free = append(free, v)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	q := &cq.Query{Free: free}
	for {
		s, err := p.scan()
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, s.(*plan.Scan).Atom)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		occ := make(map[cq.Var]bool)
		for _, a := range q.Atoms {
			for _, v := range a.Args {
				occ[v] = true
			}
		}
		for {
			_, v1, err := p.qualifiedColumn()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			_, v2, err := p.qualifiedColumn()
			if err != nil {
				return nil, err
			}
			if v1 != v2 {
				return nil, fmt.Errorf("sqlparse: WHERE equates v%d with v%d", v1, v2)
			}
			if !occ[v1] {
				return nil, fmt.Errorf("sqlparse: WHERE references unknown v%d", v1)
			}
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}
	return q, nil
}
