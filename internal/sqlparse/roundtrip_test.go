package sqlparse

import (
	"math/rand"
	"strings"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
	"projpush/internal/sqlgen"
)

// pentagon is the Appendix A example: a 5-cycle with the paper's atom
// listing.
func pentagon() *cq.Query {
	return &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "edge", Args: []cq.Var{1, 2}},
			{Rel: "edge", Args: []cq.Var{1, 5}},
			{Rel: "edge", Args: []cq.Var{4, 5}},
			{Rel: "edge", Args: []cq.Var{3, 4}},
			{Rel: "edge", Args: []cq.Var{2, 3}},
		},
		Free: []cq.Var{1},
	}
}

func TestRoundTripAllMethodsPentagon(t *testing.T) {
	q := pentagon()
	db := instance.ColorDatabase(3)
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range core.Methods {
		p, err := core.BuildPlan(m, q, nil)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		sql, err := sqlgen.FromPlan(p)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		back, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: parse error: %v\nSQL:\n%s", m, err, sql)
		}
		if err := plan.Validate(back, q); err != nil {
			t.Fatalf("%s: parsed plan invalid: %v\nSQL:\n%s", m, err, sql)
		}
		res, err := engine.Exec(back, db, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !res.Rel.Equal(want) {
			t.Fatalf("%s: round-tripped plan disagrees with oracle", m)
		}
		// Width must survive the round trip: the SQL text encodes the
		// same projection structure.
		if got, orig := plan.Analyze(back).Width, plan.Analyze(p).Width; got != orig {
			t.Fatalf("%s: width changed through SQL: %d -> %d", m, orig, got)
		}
	}
}

func TestRoundTripRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(5)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		free := instance.ChooseFree(instance.EdgeVertices(g), 0.2, rng)
		q, err := instance.ColorQuery(g, free)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range core.Methods {
			p, err := core.BuildPlan(m, q, rng)
			if err != nil {
				t.Fatal(err)
			}
			sql, err := sqlgen.FromPlan(p)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Parse(sql)
			if err != nil {
				t.Fatalf("trial %d %s: %v\nSQL:\n%s", trial, m, err, sql)
			}
			res, err := engine.Exec(back, db, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Rel.Equal(want) {
				t.Fatalf("trial %d %s: SQL round trip changed the answer", trial, m)
			}
		}
	}
}

func TestNaiveFormRoundTrip(t *testing.T) {
	q := pentagon()
	sql, err := sqlgen.Naive(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "WHERE") {
		t.Fatalf("naive SQL missing WHERE:\n%s", sql)
	}
	if strings.Contains(sql, "JOIN") {
		t.Fatalf("naive SQL must not use JOIN syntax:\n%s", sql)
	}
	back, err := ParseNaive(sql)
	if err != nil {
		t.Fatalf("%v\nSQL:\n%s", err, sql)
	}
	if len(back.Atoms) != len(q.Atoms) || len(back.Free) != 1 || back.Free[0] != 1 {
		t.Fatalf("naive round trip structure: %v", back)
	}
	for i := range q.Atoms {
		if back.Atoms[i].String() != q.Atoms[i].String() {
			t.Fatalf("atom %d changed: %v != %v", i, back.Atoms[i], q.Atoms[i])
		}
	}
}

func TestGeneratedSQLShape(t *testing.T) {
	q := pentagon()
	p, err := core.EarlyProjection(q)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := sqlgen.FromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's dialect fingerprints: DISTINCT subqueries with AS tN
	// and renamed scans.
	for _, marker := range []string{"SELECT DISTINCT", "AS t", "edge e1 (", "JOIN", "ON ("} {
		if !strings.Contains(sql, marker) {
			t.Fatalf("generated SQL missing %q:\n%s", marker, sql)
		}
	}
}

func TestFromPlanRejectsZeroColumnRoot(t *testing.T) {
	q := pentagon()
	q.Free = nil
	p, err := core.BucketElimination(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqlgen.FromPlan(p); err == nil {
		t.Fatal("accepted zero-column root (SQL cannot express it)")
	}
}

func TestNaiveErrors(t *testing.T) {
	if _, err := sqlgen.Naive(&cq.Query{Free: []cq.Var{0}}); err == nil {
		t.Fatal("accepted query with no atoms")
	}
	q := pentagon()
	q.Free = nil
	if _, err := sqlgen.Naive(q); err == nil {
		t.Fatal("accepted query with no projected variable")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		sql  string
	}{
		{"garbage", "HELLO WORLD"},
		{"missing distinct", "SELECT e1.v1 FROM edge e1 (v1,v2);"},
		{"bad column convention", "SELECT DISTINCT e1.x1 FROM edge e1 (x1,x2);"},
		{"unknown select var", "SELECT DISTINCT e1.v9 FROM edge e1 (v1,v2);"},
		{"cross-variable equality", "SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2) JOIN edge e2 (v2,v3) ON (e1.v1 = e2.v3);"},
		{"condition on absent var", "SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2) JOIN edge e2 (v2,v3) ON (e1.v9 = e2.v9);"},
		{"trailing tokens", "SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2); extra"},
		{"unterminated paren", "SELECT DISTINCT e1.v1 FROM (edge e1 (v1,v2);"},
		{"subquery missing alias", "SELECT DISTINCT t1.v1 FROM (SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2));"},
		{"bad character", "SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2) WHERE e1.v1 > 3;"},
	}
	for _, c := range cases {
		if _, err := Parse(c.sql); err == nil {
			t.Errorf("%s: Parse accepted invalid SQL", c.name)
		}
	}
}

func TestParseNaiveErrors(t *testing.T) {
	cases := []struct {
		name string
		sql  string
	}{
		{"cross-variable where", "SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2), edge e2 (v2,v3) WHERE e1.v1 = e2.v3;"},
		{"unknown where var", "SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2) WHERE e1.v9 = e1.v9;"},
	}
	for _, c := range cases {
		if _, err := ParseNaive(c.sql); err == nil {
			t.Errorf("%s: ParseNaive accepted invalid SQL", c.name)
		}
	}
}

func TestParseAcceptsHandwrittenAppendixStyle(t *testing.T) {
	// A hand-transcription of the Appendix A.5 bucket-elimination query
	// (variable numbers shifted to the pentagon's naming).
	sql := `SELECT DISTINCT e3.v4
FROM edge e3 (v4, v5) JOIN (
   SELECT DISTINCT e4.v4, t1.v5
   FROM edge e4 (v3, v4) JOIN (
      SELECT DISTINCT e2.v5, t3.v3
      FROM edge e2 (v1, v5) JOIN (
         SELECT DISTINCT e1.v1, e5.v3
         FROM edge e1 (v1, v2) JOIN edge e5 (v2, v3)
         ON (e5.v2 = e1.v2)) AS t3
      ON (t3.v1 = e2.v1)) AS t1
   ON (t1.v3 = e4.v3)) AS t5
ON (t5.v4 = e3.v4 AND t5.v5 = e3.v5);`
	p, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(p, instance.ColorDatabase(3), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The pentagon (5-cycle) is 3-colorable: nonempty result with all 3
	// colors for the selected vertex.
	if res.Rel.Len() != 3 {
		t.Fatalf("appendix query result = %v, want 3 colors", res.Rel)
	}
	// Widest node: the ternary joins inside the subqueries.
	if w := plan.Analyze(p).Width; w != 3 {
		t.Fatalf("appendix bucket query width = %d, want 3", w)
	}
}
