package sqlparse

import (
	"testing"

	"projpush/internal/sqlgen"
)

// FuzzParse feeds arbitrary text to the parser. The invariants: the
// parser never panics, and any plan it accepts can be rendered back to
// SQL and re-parsed (generator and parser agree on the dialect).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT DISTINCT e1.v0\nFROM edge e1 (v0,v1);",
		"SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2) JOIN edge e2 (v2,v3) ON (e1.v2 = e2.v2);",
		"SELECT DISTINCT t1.v0 FROM (SELECT DISTINCT e1.v0 FROM edge e1 (v0,v1)) AS t1;",
		"SELECT DISTINCT e1.v0 FROM edge e1 (v0,v1) JOIN edge e2 (v2,v3) ON (TRUE);",
		"SELECT DISTINCT",
		"((((",
		"p edge 3 3",
		"SELECT DISTINCT e1.v0 FROM edge e1 (v0,v1) JOIN (edge e2 (v1,v2) JOIN edge e3 (v2,v3) ON (e2.v2 = e3.v2)) ON (e1.v1 = e2.v1);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		sql, err := sqlgen.FromPlan(p)
		if err != nil {
			// Parsed plans can have zero output columns only if the
			// SELECT list was empty, which the grammar forbids.
			t.Fatalf("accepted plan cannot be rendered: %v", err)
		}
		if _, err := Parse(sql); err != nil {
			t.Fatalf("rendered SQL does not re-parse: %v\nrendered:\n%s", err, sql)
		}
	})
}

// FuzzParseNaive checks the naive-form parser never panics and accepted
// queries re-render.
func FuzzParseNaive(f *testing.F) {
	seeds := []string{
		"SELECT DISTINCT e1.v1 FROM edge e1 (v1,v2), edge e2 (v2,v3) WHERE e2.v2 = e1.v2;",
		"SELECT DISTINCT e1.v0 FROM edge e1 (v0,v1);",
		"SELECT DISTINCT x FROM y;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseNaive(input)
		if err != nil {
			return
		}
		sql, err := sqlgen.Naive(q)
		if err != nil {
			t.Fatalf("accepted naive query cannot be rendered: %v", err)
		}
		if _, err := ParseNaive(sql); err != nil {
			t.Fatalf("rendered naive SQL does not re-parse: %v\nrendered:\n%s", err, sql)
		}
	})
}
