// Package jointree implements the paper's join-expression trees
// (Section 5): evaluation orders for project-join queries in which joins
// are evaluated bottom-up and projection is applied as early as possible.
//
// A join-expression tree node carries a working label L_w (the schema of
// the intermediate relation computed at the node) and a projected label
// L_p (the columns passed to the parent). The width of the tree is the
// maximum working-label size; minimized over all trees this is the query's
// join width, which Theorem 1 identifies as treewidth(join graph) + 1.
//
// The package provides both directions of that theorem:
//
//   - FromDecomposition (Algorithm 3, via the Mark-and-Sweep of
//     Algorithm 2) converts a tree decomposition of the join graph into a
//     join-expression tree whose width is at most the decomposition width
//     plus one.
//   - ToDecomposition (Algorithm 1) converts a join-expression tree back
//     into a tree decomposition of width = join-tree width − 1.
//
// ToPlan lowers a join-expression tree to an executable plan.
package jointree

import (
	"fmt"
	"sort"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// Node is a join-expression tree node.
type Node struct {
	// Atom is non-nil exactly for leaves, which read one query atom.
	Atom *cq.Atom
	// Children are the subtrees joined at this node (empty for leaves).
	Children []*Node
	// Working is L_w: the schema of the relation computed here. For a
	// leaf it is the atom's variables; for an interior node, the union
	// of the children's projected labels.
	Working []cq.Var
	// Projected is L_p: the columns this node passes upward — the
	// subset of Working still needed outside the subtree (the target
	// schema, for the root).
	Projected []cq.Var
}

// Tree is a rooted join-expression tree for a query.
type Tree struct {
	Root  *Node
	Query *cq.Query
}

// Width returns the width of the tree: the maximum working-label size
// over all nodes.
func (t *Tree) Width() int {
	w := 0
	var walk func(*Node)
	walk = func(n *Node) {
		if len(n.Working) > w {
			w = len(n.Working)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return w
}

// Nodes returns all nodes in pre-order.
func (t *Tree) Nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Validate checks the join-expression tree invariants: leaves carry atoms
// with Working = atom variables; interior working labels are the union of
// children's projected labels; projected labels are subsets of working
// labels; the root's projected label equals the query's target schema;
// and the leaf atoms are exactly the query's atoms.
func (t *Tree) Validate() error {
	var leafAtoms []cq.Atom
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Atom != nil {
			if len(n.Children) != 0 {
				return fmt.Errorf("jointree: leaf with children")
			}
			leafAtoms = append(leafAtoms, *n.Atom)
			if !sameVarSet(n.Working, n.Atom.Args) {
				return fmt.Errorf("jointree: leaf working label %v != atom vars %v",
					n.Working, n.Atom.Args)
			}
		} else {
			if len(n.Children) == 0 {
				return fmt.Errorf("jointree: interior node with no children")
			}
			union := make(map[cq.Var]bool)
			for _, c := range n.Children {
				for _, v := range c.Projected {
					union[v] = true
				}
			}
			if len(union) != len(n.Working) {
				return fmt.Errorf("jointree: working label %v is not the union of children projections",
					n.Working)
			}
			for _, v := range n.Working {
				if !union[v] {
					return fmt.Errorf("jointree: working label %v is not the union of children projections",
						n.Working)
				}
			}
		}
		w := make(map[cq.Var]bool, len(n.Working))
		for _, v := range n.Working {
			w[v] = true
		}
		for _, v := range n.Projected {
			if !w[v] {
				return fmt.Errorf("jointree: projected label %v ⊄ working label %v",
					n.Projected, n.Working)
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if !sameVarSet(t.Root.Projected, t.Query.Free) {
		return fmt.Errorf("jointree: root projected label %v != target schema %v",
			t.Root.Projected, t.Query.Free)
	}
	// Leaf atoms = query atoms as multisets.
	want := make(map[string]int)
	for _, a := range t.Query.Atoms {
		want[a.String()]++
	}
	for _, a := range leafAtoms {
		want[a.String()]--
	}
	for k, c := range want {
		if c != 0 {
			return fmt.Errorf("jointree: leaf atoms disagree with query at %s", k)
		}
	}
	return nil
}

func sameVarSet(a, b []cq.Var) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[cq.Var]bool, len(a))
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		if !m[v] {
			return false
		}
	}
	return true
}

// FromDecomposition implements Algorithm 3: it simplifies the given tree
// decomposition of q's join graph with Mark-and-Sweep (Algorithm 2),
// attaches a leaf for every atom to the node covering it, roots the tree
// at the node covering the target schema, and computes working and
// projected labels. The resulting tree has width at most dec.Width() + 1.
func FromDecomposition(q *cq.Query, jg *joingraph.JoinGraph, dec *treedec.Decomposition) (*Tree, error) {
	// Relations for the sweep: each atom's vertex set, then R_T.
	rels := make([][]int, 0, len(q.Atoms)+1)
	for _, a := range q.Atoms {
		rels = append(rels, sortedVertices(jg, a.Args))
	}
	rels = append(rels, sortedVertices(jg, q.Free))

	s, err := treedec.MarkAndSweep(dec, rels)
	if err != nil {
		return nil, err
	}
	d := s.Dec
	rootIdx := s.RelNode[len(rels)-1]

	// Build the interior skeleton.
	nodes := make([]*Node, d.NumNodes())
	for i := range nodes {
		nodes[i] = &Node{}
	}
	parent := make([]int, d.NumNodes())
	for i := range parent {
		parent[i] = -2
	}
	var order []int // pre-order
	parent[rootIdx] = -1
	stack := []int{rootIdx}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, w := range d.Adj[u] {
			if parent[w] == -2 {
				parent[w] = u
				nodes[u].Children = append(nodes[u].Children, nodes[w])
				stack = append(stack, w)
			}
		}
	}

	// Attach atom leaves to their host nodes.
	for j, a := range q.Atoms {
		leaf := &Node{
			Atom:      &q.Atoms[j],
			Working:   append([]cq.Var(nil), a.Args...),
			Projected: append([]cq.Var(nil), a.Args...),
		}
		host := nodes[s.RelNode[j]]
		host.Children = append(host.Children, leaf)
	}

	// Compute labels bottom-up over the interior nodes (reverse
	// pre-order visits children before parents).
	bagVars := func(i int) map[cq.Var]bool {
		m := make(map[cq.Var]bool, len(d.Bags[i]))
		for _, v := range d.Bags[i] {
			m[jg.Vars[v]] = true
		}
		return m
	}
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		n := nodes[i]
		union := make(map[cq.Var]bool)
		for _, c := range n.Children {
			for _, v := range c.Projected {
				union[v] = true
			}
		}
		n.Working = varSlice(union)
		if parent[i] == -1 {
			n.Projected = append([]cq.Var(nil), q.Free...)
			continue
		}
		pb := bagVars(parent[i])
		var proj []cq.Var
		for _, v := range n.Working {
			if pb[v] {
				proj = append(proj, v)
			}
		}
		n.Projected = proj
	}

	t := &Tree{Root: nodes[rootIdx], Query: q}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("jointree: Algorithm 3 produced an invalid tree: %w", err)
	}
	return t, nil
}

// ToDecomposition implements Algorithm 1 / Lemma 1: drop the projected
// labels and use the working labels as bags, yielding a tree decomposition
// of the join graph with width = tree width − 1.
func ToDecomposition(t *Tree, jg *joingraph.JoinGraph) *treedec.Decomposition {
	var bags [][]int
	var adj [][]int
	var build func(n *Node) int
	build = func(n *Node) int {
		idx := len(bags)
		bags = append(bags, sortedVertices(jg, n.Working))
		adj = append(adj, nil)
		for _, c := range n.Children {
			ci := build(c)
			adj[idx] = append(adj[idx], ci)
			adj[ci] = append(adj[ci], idx)
		}
		return idx
	}
	build(t.Root)
	return &treedec.Decomposition{Bags: bags, Adj: adj}
}

// ToPlan lowers the join-expression tree to an executable plan: each
// interior node joins its children's plans left-deep and projects to its
// projected label; leaves scan their atoms. Projections that keep every
// column are skipped.
func (t *Tree) ToPlan() plan.Node {
	var lower func(n *Node) plan.Node
	lower = func(n *Node) plan.Node {
		if n.Atom != nil {
			return &plan.Scan{Atom: *n.Atom}
		}
		children := make([]plan.Node, len(n.Children))
		for i, c := range n.Children {
			children[i] = lower(c)
		}
		joined := plan.LeftDeepJoin(children)
		if len(n.Projected) == len(joined.Attrs()) {
			return joined
		}
		return &plan.Project{Child: joined, Cols: n.Projected}
	}
	root := lower(t.Root)
	// Guarantee the root schema is exactly the target schema even when
	// the final projection was a no-op by column count but differs in
	// set (it cannot, by Validate) — and when the query is a single
	// atom whose schema already matches, keep the plan minimal.
	if !sameVarSet(root.Attrs(), t.Query.Free) {
		root = &plan.Project{Child: root, Cols: t.Query.Free}
	}
	return root
}

func sortedVertices(jg *joingraph.JoinGraph, vars []cq.Var) []int {
	out := make([]int, 0, len(vars))
	for _, v := range vars {
		if i, ok := jg.Index[v]; ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func varSlice(m map[cq.Var]bool) []cq.Var {
	out := make([]cq.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
