package jointree_test

import (
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/joingraph"
	"projpush/internal/jointree"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// buildTree constructs the join-expression tree of the 3-COLOR query of g
// from the tree decomposition induced by the given elimination order.
func buildTree(t *testing.T, g *graph.Graph, elim []int) (*jointree.Tree, *cq.Query, *joingraph.JoinGraph) {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	jg := joingraph.Build(q)
	if elim == nil {
		elim = treedec.EliminationOrder(treedec.MCS(jg.G, jg.Vertices(q.Free), nil))
	}
	dec := treedec.FromOrder(jg.G, elim)
	if err := dec.Validate(jg.G); err != nil {
		t.Fatal(err)
	}
	tree, err := jointree.FromDecomposition(q, jg, dec)
	if err != nil {
		t.Fatal(err)
	}
	return tree, q, jg
}

func TestFromDecompositionPath(t *testing.T) {
	tree, q, _ := buildTree(t, graph.Path(6), nil)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Path join graph has treewidth 1: tree width must be 2.
	if w := tree.Width(); w != 2 {
		t.Fatalf("path join-tree width = %d, want 2", w)
	}
	p := tree.ToPlan()
	if err := plan.Validate(p, q); err != nil {
		t.Fatalf("lowered plan invalid: %v", err)
	}
}

func TestTheorem1Cycle(t *testing.T) {
	// Round-trip Theorem 1 on small random graphs: a join tree built
	// from an optimal decomposition has width exactly tw+1, and
	// Algorithm 1 maps it back to a valid decomposition of width
	// tree.Width()-1.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		m := n - 1 + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		jg := joingraph.Build(q)
		tw, elim, err := treedec.Exact(jg.G)
		if err != nil {
			t.Fatal(err)
		}
		dec := treedec.FromOrder(jg.G, elim)
		tree, err := jointree.FromDecomposition(q, jg, dec)
		if err != nil {
			t.Fatal(err)
		}
		if w := tree.Width(); w != tw+1 {
			t.Fatalf("trial %d: join-tree width %d, want treewidth+1 = %d (graph %v)",
				trial, w, tw+1, g)
		}
		// Algorithm 1: back to a decomposition.
		back := jointree.ToDecomposition(tree, jg)
		if err := back.Validate(jg.G); err != nil {
			t.Fatalf("trial %d: Algorithm 1 output invalid: %v", trial, err)
		}
		if back.Width() != tree.Width()-1 {
			t.Fatalf("trial %d: Algorithm 1 width %d, want %d",
				trial, back.Width(), tree.Width()-1)
		}
	}
}

func TestPlanEquivalentToOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(5)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; max < m {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		tree, q, _ := buildTree(t, g, nil)
		p := tree.ToPlan()
		if err := plan.Validate(p, q); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := engine.Exec(p, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.Equal(want) {
			t.Fatalf("trial %d: join-tree plan %v != oracle %v", trial, res.Rel, want)
		}
	}
}

func TestNonBooleanPlan(t *testing.T) {
	g := graph.Ladder(4)
	rng := rand.New(rand.NewSource(2))
	free := instance.ChooseFree(instance.EdgeVertices(g), 0.2, rng)
	q, err := instance.ColorQuery(g, free)
	if err != nil {
		t.Fatal(err)
	}
	jg := joingraph.Build(q)
	elim := treedec.EliminationOrder(treedec.MCS(jg.G, jg.Vertices(q.Free), nil))
	dec := treedec.FromOrder(jg.G, elim)
	tree, err := jointree.FromDecomposition(q, jg, dec)
	if err != nil {
		t.Fatal(err)
	}
	p := tree.ToPlan()
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	res, err := engine.Exec(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(want) {
		t.Fatalf("non-Boolean: plan %v != oracle %v", res.Rel, want)
	}
	if res.Rel.Arity() != len(free) {
		t.Fatalf("result arity %d != %d free vars", res.Rel.Arity(), len(free))
	}
}

func TestWidthMonotoneInDecompositionQuality(t *testing.T) {
	// A bad elimination order cannot make the join tree *narrower* than
	// one from an optimal order.
	g := graph.AugmentedCircularLadder(4)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	jg := joingraph.Build(q)
	tw, optElim, err := treedec.Exact(jg.G)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := jointree.FromDecomposition(q, jg, treedec.FromOrder(jg.G, optElim))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Width() != tw+1 {
		t.Fatalf("optimal width = %d, want %d", opt.Width(), tw+1)
	}
	// Identity order is usually bad here.
	idElim := make([]int, jg.G.N)
	for i := range idElim {
		idElim[i] = i
	}
	bad, err := jointree.FromDecomposition(q, jg, treedec.FromOrder(jg.G, idElim))
	if err != nil {
		t.Fatal(err)
	}
	if bad.Width() < opt.Width() {
		t.Fatalf("bad order width %d below optimal %d", bad.Width(), opt.Width())
	}
}

func TestValidateCatchesCorruptedTrees(t *testing.T) {
	tree, _, _ := buildTree(t, graph.Path(4), nil)
	// Corrupt: clobber the root's projected label.
	orig := tree.Root.Projected
	tree.Root.Projected = []cq.Var{999}
	if err := tree.Validate(); err == nil {
		t.Fatal("accepted root projecting unknown variable")
	}
	tree.Root.Projected = orig

	// Corrupt a leaf's working label.
	var leaf *jointree.Node
	for _, n := range tree.Nodes() {
		if n.Atom != nil {
			leaf = n
			break
		}
	}
	origW := leaf.Working
	leaf.Working = []cq.Var{0}
	if err := tree.Validate(); err == nil {
		t.Fatal("accepted leaf working label != atom vars")
	}
	leaf.Working = origW
	if err := tree.Validate(); err != nil {
		t.Fatalf("restored tree should validate: %v", err)
	}
}

func TestNodesPreorder(t *testing.T) {
	tree, q, _ := buildTree(t, graph.Path(3), nil)
	nodes := tree.Nodes()
	if nodes[0] != tree.Root {
		t.Fatal("first node is not root")
	}
	leaves := 0
	for _, n := range nodes {
		if n.Atom != nil {
			leaves++
		}
	}
	if leaves != len(q.Atoms) {
		t.Fatalf("leaves = %d, want %d", leaves, len(q.Atoms))
	}
}

func TestTheorem1NonBoolean(t *testing.T) {
	// The paper's Theorem 1 extends the Boolean characterization to
	// non-Boolean queries: the target schema contributes a clique to the
	// join graph, and the join width is still treewidth+1 of that graph.
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(4)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		free := instance.ChooseFree(instance.EdgeVertices(g), 0.3, rng)
		if len(free) < 2 {
			continue // need a real clique to exercise the extension
		}
		q, err := instance.ColorQuery(g, free)
		if err != nil {
			t.Fatal(err)
		}
		jg := joingraph.Build(q)
		tw, elim, err := treedec.Exact(jg.G)
		if err != nil {
			t.Fatal(err)
		}
		dec := treedec.FromOrder(jg.G, elim)
		tree, err := jointree.FromDecomposition(q, jg, dec)
		if err != nil {
			t.Fatal(err)
		}
		if w := tree.Width(); w != tw+1 {
			t.Fatalf("trial %d: non-Boolean join width %d, want tw+1 = %d (free=%v)",
				trial, w, tw+1, free)
		}
		// The round trip still yields a valid decomposition: the free
		// clique forces the target schema into one bag.
		back := jointree.ToDecomposition(tree, jg)
		if err := back.Validate(jg.G); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
