// Package workload defines serializable instance specifications, so the
// exact workloads behind an experiment — family, size, seed, free
// fraction — can be stored, shared, and replayed. A Spec deterministically
// expands into a conjunctive query plus its database; a Suite is a named
// list of Specs, stored as JSON.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"projpush/internal/cq"
	"projpush/internal/experiments"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

// Kind selects the instance encoder.
type Kind string

// The supported instance kinds.
const (
	KindColor Kind = "color" // k-COLOR over a graph
	KindSAT   Kind = "sat"   // random k-SAT
)

// Spec is one reproducible instance description.
type Spec struct {
	// Name labels the instance in reports.
	Name string `json:"name"`
	// Kind selects the encoder (color or sat).
	Kind Kind `json:"kind"`

	// Family selects the graph family for color instances: "random" or
	// one of the experiments.Family values.
	Family string `json:"family,omitempty"`
	// Order is the graph order (color) or variable count (sat).
	Order int `json:"order"`
	// Density is edges-per-vertex (color/random) or
	// clauses-per-variable (sat).
	Density float64 `json:"density,omitempty"`
	// Colors is the palette size for color instances (default 3).
	Colors int `json:"colors,omitempty"`
	// K is the clause width for sat instances (default 3).
	K int `json:"k,omitempty"`
	// Seed makes the instance deterministic.
	Seed int64 `json:"seed"`
	// FreeFraction keeps this fraction of variables free; 0 is the
	// Boolean emulation (one projected variable).
	FreeFraction float64 `json:"free_fraction,omitempty"`
}

// Build expands the spec into a query and database.
func (s Spec) Build() (*cq.Query, cq.Database, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Kind {
	case KindColor:
		g, err := s.buildGraph(rng)
		if err != nil {
			return nil, nil, err
		}
		var free []cq.Var
		if s.FreeFraction > 0 {
			free = instance.ChooseFree(instance.EdgeVertices(g), s.FreeFraction, rng)
		} else {
			free = instance.BooleanFree(g)
		}
		q, err := instance.ColorQuery(g, free)
		if err != nil {
			return nil, nil, err
		}
		colors := s.Colors
		if colors == 0 {
			colors = 3
		}
		return q, instance.ColorDatabase(colors), nil

	case KindSAT:
		k := s.K
		if k == 0 {
			k = 3
		}
		m := int(s.Density*float64(s.Order) + 0.5)
		if m < 1 {
			m = 1
		}
		sat, err := instance.RandomSAT(k, s.Order, m, rng)
		if err != nil {
			return nil, nil, err
		}
		vars := instance.SATVariablesInClauses(sat)
		if len(vars) == 0 {
			return nil, nil, fmt.Errorf("workload: SAT instance has no clauses")
		}
		var free []cq.Var
		if s.FreeFraction > 0 {
			free = instance.ChooseFree(vars, s.FreeFraction, rng)
		} else {
			free = vars[:1]
		}
		return instance.SATQuery(sat, free)

	default:
		return nil, nil, fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
}

func (s Spec) buildGraph(rng *rand.Rand) (*graph.Graph, error) {
	switch s.Family {
	case "", "random":
		// Clamp the edge count to the simple-graph maximum so scaled
		// suites with high densities degrade to complete graphs rather
		// than failing.
		m := int(s.Density*float64(s.Order) + 0.5)
		if max := s.Order * (s.Order - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(s.Order, m, rng)
		if err != nil {
			return nil, err
		}
		if g.M() == 0 {
			return nil, fmt.Errorf("workload: spec %q yields an edgeless graph", s.Name)
		}
		return g, nil
	default:
		return experiments.BuildFamily(experiments.Family(s.Family), s.Order)
	}
}

// Validate checks the spec is expandable without building it fully.
func (s Spec) Validate() error {
	if s.Order < 1 {
		return fmt.Errorf("workload: spec %q: order must be positive", s.Name)
	}
	switch s.Kind {
	case KindColor, KindSAT:
	default:
		return fmt.Errorf("workload: spec %q: unknown kind %q", s.Name, s.Kind)
	}
	if s.FreeFraction < 0 || s.FreeFraction > 1 {
		return fmt.Errorf("workload: spec %q: free fraction %f out of [0,1]", s.Name, s.FreeFraction)
	}
	return nil
}

// Suite is a named list of instance specs.
type Suite struct {
	Name  string `json:"name"`
	Specs []Spec `json:"specs"`
}

// ReadSuite decodes a JSON suite and validates every spec.
func ReadSuite(r io.Reader) (*Suite, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if len(s.Specs) == 0 {
		return nil, fmt.Errorf("workload: suite %q has no specs", s.Name)
	}
	for _, sp := range s.Specs {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
	}
	return &s, nil
}

// WriteSuite encodes a suite as indented JSON.
func WriteSuite(w io.Writer, s *Suite) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// PaperSuite returns the workload behind the paper's evaluation section,
// scaled by the given factor: random density/order sweeps and the four
// structured families.
func PaperSuite(scale float64) *Suite {
	s := &Suite{Name: "projection-pushing-revisited"}
	sc := func(x int, min int) int {
		v := int(float64(x)*scale + 0.5)
		if v < min {
			v = min
		}
		return v
	}
	for _, d := range []float64{1, 2, 3, 4, 6, 8} {
		s.Specs = append(s.Specs, Spec{
			Name: fmt.Sprintf("random-d%.0f", d), Kind: KindColor,
			Family: "random", Order: sc(20, 6), Density: d, Seed: int64(d * 100),
		})
	}
	for _, n := range []int{10, 15, 20, 25, 30, 35} {
		s.Specs = append(s.Specs, Spec{
			Name: fmt.Sprintf("random-n%d", n), Kind: KindColor,
			Family: "random", Order: sc(n, 6), Density: 3.0, Seed: int64(n),
		})
	}
	for _, f := range []experiments.Family{
		experiments.FamilyAugmentedPath, experiments.FamilyLadder,
		experiments.FamilyAugmentedLadder, experiments.FamilyAugmentedCircularLadder,
	} {
		for _, n := range []int{5, 10, 20} {
			s.Specs = append(s.Specs, Spec{
				Name: fmt.Sprintf("%s-n%d", f, n), Kind: KindColor,
				Family: string(f), Order: sc(n, 3), Seed: int64(n),
			})
		}
	}
	for _, d := range []float64{2, 4.26, 6} {
		s.Specs = append(s.Specs, Spec{
			Name: fmt.Sprintf("3sat-d%.2f", d), Kind: KindSAT,
			Order: sc(12, 6), Density: d, Seed: int64(d * 10),
		})
	}
	return s
}
