package workload

import (
	"strings"
	"testing"

	"projpush/internal/core"
	"projpush/internal/engine"
	"projpush/internal/plan"
)

func TestSpecBuildColorDeterministic(t *testing.T) {
	s := Spec{Name: "x", Kind: KindColor, Family: "random", Order: 10, Density: 2, Seed: 7}
	q1, db1, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if q1.String() != q2.String() {
		t.Fatal("same spec built different queries")
	}
	if err := q1.Validate(db1); err != nil {
		t.Fatal(err)
	}
}

func TestSpecBuildFamilies(t *testing.T) {
	for _, fam := range []string{"augmented-path", "ladder", "augmented-ladder", "augmented-circular-ladder"} {
		s := Spec{Name: fam, Kind: KindColor, Family: fam, Order: 4, Seed: 1}
		q, db, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if err := q.Validate(db); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
	}
}

func TestSpecBuildSAT(t *testing.T) {
	s := Spec{Name: "sat", Kind: KindSAT, Order: 8, Density: 3, Seed: 3, FreeFraction: 0.25}
	q, db, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(db); err != nil {
		t.Fatal(err)
	}
	if len(q.Free) != 2 {
		t.Fatalf("free = %v, want 2 vars (25%% of 8)", q.Free)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []Spec{
		{Name: "bad kind", Kind: "nope", Order: 5},
		{Name: "bad order", Kind: KindColor, Order: 0},
		{Name: "bad frac", Kind: KindColor, Order: 5, FreeFraction: 2},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", c.Name)
		}
	}
	good := Spec{Name: "ok", Kind: KindSAT, Order: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecBuildErrors(t *testing.T) {
	if _, _, err := (Spec{Kind: "nope", Order: 3}).Build(); err == nil {
		t.Fatal("accepted unknown kind")
	}
	if _, _, err := (Spec{Kind: KindColor, Family: "nope", Order: 3}).Build(); err == nil {
		t.Fatal("accepted unknown family")
	}
	if _, _, err := (Spec{Kind: KindColor, Family: "random", Order: 5, Density: 0}).Build(); err == nil {
		t.Fatal("accepted edgeless random spec")
	}
}

func TestSuiteRoundTrip(t *testing.T) {
	suite := PaperSuite(0.5)
	var b strings.Builder
	if err := WriteSuite(&b, suite); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSuite(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != suite.Name || len(back.Specs) != len(suite.Specs) {
		t.Fatalf("round trip changed suite shape: %d vs %d specs",
			len(back.Specs), len(suite.Specs))
	}
	for i := range suite.Specs {
		if back.Specs[i] != suite.Specs[i] {
			t.Fatalf("spec %d changed: %+v vs %+v", i, back.Specs[i], suite.Specs[i])
		}
	}
}

func TestReadSuiteErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"garbage", "not json"},
		{"empty specs", `{"name":"x","specs":[]}`},
		{"unknown field", `{"name":"x","specs":[{"name":"a","kind":"color","order":5,"bogus":1}]}`},
		{"invalid spec", `{"name":"x","specs":[{"name":"a","kind":"nope","order":5}]}`},
	}
	for _, c := range cases {
		if _, err := ReadSuite(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPaperSuiteExecutable(t *testing.T) {
	// Every spec in the scaled-down paper suite builds and runs under
	// bucket elimination.
	suite := PaperSuite(0.3)
	for _, sp := range suite.Specs {
		q, db, err := sp.Build()
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		p, err := core.BucketElimination(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if err := plan.Validate(p, q); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if _, err := engine.Exec(p, db, engine.Options{MaxRows: 2_000_000}); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
	}
}
