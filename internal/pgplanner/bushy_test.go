package pgplanner

import (
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
)

func TestBushyDPCoversAllAtoms(t *testing.T) {
	q, _, cm := colorSetup(t, graph.Path(7))
	res, err := BushyDP(q, cm)
	if err != nil {
		t.Fatal(err)
	}
	atoms := plan.Atoms(res.Plan)
	if len(atoms) != len(q.Atoms) {
		t.Fatalf("bushy plan has %d atoms, want %d", len(atoms), len(q.Atoms))
	}
	seen := map[string]int{}
	for _, a := range atoms {
		seen[a.String()]++
	}
	for _, a := range q.Atoms {
		if seen[a.String()] == 0 {
			t.Fatalf("atom %v missing", a)
		}
		seen[a.String()]--
	}
	if res.PlansExplored == 0 {
		t.Fatal("no work recorded")
	}
}

func TestBushyAtMostLeftDeepCost(t *testing.T) {
	// The bushy space contains every left-deep tree, so the bushy
	// optimum can never cost more.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(3)
		m := n + rng.Intn(n/2+1)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 || g.M() > 10 {
			continue
		}
		q, _, cm := colorSetup(t, g)
		left, err := DP(q, cm)
		if err != nil {
			t.Fatal(err)
		}
		bushy, err := BushyDP(q, cm)
		if err != nil {
			t.Fatal(err)
		}
		if bushy.Cost > left.Cost+1e-6 {
			t.Fatalf("trial %d: bushy cost %g above left-deep %g", trial, bushy.Cost, left.Cost)
		}
	}
}

func TestBushyPlanExecutesCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(3)
		g, err := graph.Random(n, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, _, cm := colorSetup(t, g)
		res, err := BushyDP(q, cm)
		if err != nil {
			t.Fatal(err)
		}
		full := &plan.Project{Child: res.Plan, Cols: q.Free}
		if err := plan.Validate(full, q); err != nil {
			t.Fatal(err)
		}
		got, err := engine.Exec(full, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Rel.Equal(want) {
			t.Fatalf("trial %d: bushy plan disagrees with oracle", trial)
		}
	}
}

func TestBushyDPLimits(t *testing.T) {
	q, _, cm := colorSetup(t, graph.Path(20))
	if _, err := BushyDP(q, cm); err == nil {
		t.Fatal("accepted 19 atoms")
	}
	if _, err := BushyDP(&cq.Query{}, cm); err == nil {
		t.Fatal("accepted empty query")
	}
}

func TestBushyExploresMoreThanLeftDeep(t *testing.T) {
	// 3^m vs 2^m·m: bushy explores strictly more pairs for enough atoms.
	q, _, cm := colorSetup(t, graph.Path(11)) // 10 atoms
	left, err := DP(q, cm)
	if err != nil {
		t.Fatal(err)
	}
	bushy, err := BushyDP(q, cm)
	if err != nil {
		t.Fatal(err)
	}
	if bushy.PlansExplored <= left.PlansExplored {
		t.Fatalf("bushy explored %d <= left-deep %d", bushy.PlansExplored, left.PlansExplored)
	}
}
