package pgplanner

import (
	"math"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/plan"
)

func TestEstimatePlanScan(t *testing.T) {
	_, _, cm := colorSetup(t, graph.Path(3))
	p := &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{0, 1}}}
	est, err := cm.EstimatePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 6 || est.Cost != 0 {
		t.Fatalf("scan estimate: %+v", est)
	}
}

func TestEstimatePlanJoinExact(t *testing.T) {
	// edge(0,1) ⋈ edge(1,2): true size 12; the model's 6·6/3 matches.
	_, _, cm := colorSetup(t, graph.Path(3))
	p := &plan.Join{
		Left:  &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{0, 1}}},
		Right: &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{1, 2}}},
	}
	est, err := cm.EstimatePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Rows-12) > 1e-9 {
		t.Fatalf("join rows = %f, want 12", est.Rows)
	}
	if est.Cost <= 0 {
		t.Fatal("join cost not accumulated")
	}
}

func TestEstimatePlanProjectionCap(t *testing.T) {
	// π{0} caps at 3 distinct colors even though the child has 12 rows.
	_, _, cm := colorSetup(t, graph.Path(3))
	p := &plan.Project{
		Child: &plan.Join{
			Left:  &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{0, 1}}},
			Right: &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{1, 2}}},
		},
		Cols: []cq.Var{0},
	}
	est, err := cm.EstimatePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 3 {
		t.Fatalf("projection estimate = %f, want 3", est.Rows)
	}
}

func TestEstimatePlanUnknownVariable(t *testing.T) {
	_, _, cm := colorSetup(t, graph.Path(3))
	p := &plan.Project{
		Child: &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{0, 1}}},
		Cols:  []cq.Var{9},
	}
	if _, err := cm.EstimatePlan(p); err == nil {
		t.Fatal("accepted projection of unknown variable")
	}
}
