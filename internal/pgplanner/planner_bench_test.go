package pgplanner

// Planner microbenchmarks recorded by `make bench-json` into
// BENCH_planner.json: the incremental bitset DP and the island genetic
// search against the pinned map-based baselines they replaced.

import (
	"fmt"
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

func benchQuery(b *testing.B, seed int64, n, edges int) (*cq.Query, *CostModel) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.Random(n, edges, rng)
	if err != nil {
		b.Fatal(err)
	}
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		b.Fatal(err)
	}
	return q, NewCostModel(instance.ColorDatabase(3))
}

// BenchmarkPlannerDP14 measures the exhaustive DP on a 14-atom query
// (16384 subset states): the incremental bitset estimates against the
// map-based per-subset recomputation.
func BenchmarkPlannerDP14(b *testing.B) {
	q, cm := benchQuery(b, 41, 10, 14)
	if len(q.Atoms) != 14 {
		b.Fatalf("query has %d atoms, want 14", len(q.Atoms))
	}
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DP(q, cm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dpMapBaseline(q, cm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlannerGEQO measures the genetic search on a 20-atom query
// with the pool size and generation budget PostgreSQL 7.2 would derive
// (pool 2048): the allocating map-based search against the flat-table
// islands at increasing worker counts. Workers=1 is the serial path;
// higher counts split the pool and generation budget across islands.
func BenchmarkPlannerGEQO(b *testing.B) {
	q, cm := benchQuery(b, 43, 12, 20)
	if len(q.Atoms) != 20 {
		b.Fatalf("query has %d atoms, want 20", len(q.Atoms))
	}
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := geqoMapBaseline(q, cm, rand.New(rand.NewSource(7)), Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := GEQO(q, cm, rand.New(rand.NewSource(7)), Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerGEQOSteadyState isolates the steady-state generation
// loop on a warmed pool, asserting the recycled offspring buffer keeps
// it allocation-free (the satellite contract) before measuring it.
func BenchmarkPlannerGEQOSteadyState(b *testing.B) {
	q, cm := benchQuery(b, 45, 12, 20)
	tab := newCostTables(q, cm)
	is := newGeqoIsland(tab, rand.New(rand.NewSource(19)), 256)
	is.init()
	if allocs := testing.AllocsPerRun(5, func() { is.evolve(100) }); allocs != 0 {
		b.Fatalf("steady-state loop allocates %v objects per 100 generations, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		is.evolve(1)
	}
}

// BenchmarkPlannerEval compares one cost evaluation: the flat-table
// evaluator against the map-based leftDeepCost it replaced.
func BenchmarkPlannerEval(b *testing.B) {
	q, cm := benchQuery(b, 47, 12, 20)
	ev := newCostTables(q, cm).newEvaluator()
	order := rand.New(rand.NewSource(3)).Perm(len(q.Atoms))
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.evalOrder(order)
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			leftDeepCostMapBaseline(q, cm, order)
		}
	})
}
