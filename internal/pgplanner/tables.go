package pgplanner

import (
	"math"

	"projpush/internal/cq"
)

// The planner's hot loops — the 2^m-state DP and the genetic search's
// eval-per-child — used to rebuild a map[cq.Var]float64 occurrence table
// for every cost evaluation. costTables precomputes everything those
// loops need as flat arrays indexed by atom and by a dense variable id:
// per-atom base cardinalities, per-atom column lists (variable id +
// distinct count), per-atom variable bitmasks, and per-variable
// occurrence tables. Built once per (query, cost model) pair; immutable
// afterwards, so concurrent GEQO islands share one instance.
type costTables struct {
	m    int
	nv   int       // distinct variables, densely renumbered 0..nv-1
	base []float64 // per atom: clamped base cardinality

	// Column lists, flattened: atom i's columns are
	// cols[colIdx[i]:colIdx[i+1]], in argument order.
	colIdx []int32
	cols   []atomCol

	// varMask[i] is atom i's variable set as a bitmask over the dense
	// variable universe; only populated when nv <= 64 (the paper's
	// queries are far below that).
	varMask []uint64

	// atomsOf[v] is the set of atoms containing variable v, as a bitmask
	// over atom indexes; only populated when m <= 64 (the DP needs it and
	// caps m at 24).
	atomsOf []uint64

	// Per-variable distinct tables: occs[v] lists v's occurrences in
	// ascending atom order with the occurrence's distinct count, and
	// uniformD[v] is set when every occurrence agrees on that count — the
	// common case (a variable ranging over one attribute domain), which
	// makes the DP transition's selectivity lookup O(1).
	occs     [][]occEntry
	uniformD []bool
	uniD     []float64
}

// atomCol is one bound column of an atom: the dense variable id and the
// column's distinct count under the cost model.
type atomCol struct {
	v int32
	d float64
}

// occEntry records one occurrence of a variable: the atom index and the
// distinct count of the column it occupies there.
type occEntry struct {
	atom int32
	d    float64
}

func newCostTables(q *cq.Query, cm *CostModel) *costTables {
	m := len(q.Atoms)
	t := &costTables{
		m:      m,
		base:   make([]float64, m),
		colIdx: make([]int32, m+1),
	}
	varID := make(map[cq.Var]int32)
	for i, a := range q.Atoms {
		base := float64(cm.BaseRows[a.Rel])
		if base <= 0 {
			base = 1
		}
		t.base[i] = base
		t.colIdx[i] = int32(len(t.cols))
		for col, v := range a.Args {
			id, ok := varID[v]
			if !ok {
				id = int32(len(varID))
				varID[v] = id
				t.occs = append(t.occs, nil)
			}
			d := cm.columnDistinct(a.Rel, col)
			t.cols = append(t.cols, atomCol{v: id, d: d})
			t.occs[id] = append(t.occs[id], occEntry{atom: int32(i), d: d})
		}
	}
	t.colIdx[m] = int32(len(t.cols))
	t.nv = len(varID)

	t.uniformD = make([]bool, t.nv)
	t.uniD = make([]float64, t.nv)
	for v, occ := range t.occs {
		uniform := true
		for _, o := range occ[1:] {
			if o.d != occ[0].d {
				uniform = false
				break
			}
		}
		t.uniformD[v] = uniform
		t.uniD[v] = occ[0].d
	}
	if m <= 64 {
		t.atomsOf = make([]uint64, t.nv)
		for v, occ := range t.occs {
			for _, o := range occ {
				t.atomsOf[v] |= 1 << uint(o.atom)
			}
		}
	}
	if t.nv <= 64 {
		t.varMask = make([]uint64, m)
		for i := 0; i < m; i++ {
			for _, c := range t.cols[t.colIdx[i]:t.colIdx[i+1]] {
				t.varMask[i] |= 1 << uint(c.v)
			}
		}
	}
	return t
}

// extendRaw extends the unclamped cardinality estimate of the atom set
// prevSet (a bitmask) by atom a: multiply in a's base cardinality, then
// one equality selectivity per column whose variable already occurs in
// prevSet. The floating-point operation sequence is exactly the one
// CostModel.Estimate performs for prevSet ∪ {a} when a is the highest
// atom index — the DP adds atoms in ascending order, so per-subset
// estimates stay bit-identical to the full recomputation they replace.
// Requires m <= 64 (atomsOf populated).
func (t *costTables) extendRaw(prevRaw float64, prevSet int, a int) float64 {
	r := prevRaw * t.base[a]
	for _, c := range t.cols[t.colIdx[a]:t.colIdx[a+1]] {
		in := t.atomsOf[c.v] & uint64(prevSet)
		if in == 0 {
			continue
		}
		var prevd float64
		if t.uniformD[c.v] {
			prevd = t.uniD[c.v]
		} else {
			// Running max over the occurrences present in prevSet — the
			// occurrence-tracking rule Estimate applies.
			prevd = math.Inf(-1)
			for _, o := range t.occs[c.v] {
				if in>>uint(o.atom)&1 == 1 {
					prevd = math.Max(prevd, o.d)
				}
			}
		}
		sel := 1 / math.Max(prevd, c.d)
		r *= sel
	}
	return r
}

// costEvaluator is the mutable scratch state for evaluating left-deep
// join orders against one costTables: a per-variable running-max
// distinct table, epoch-versioned so resets are O(1). Each concurrent
// user (a GEQO island) owns its own evaluator; evalOrder allocates
// nothing.
type costEvaluator struct {
	t       *costTables
	occMax  []float64
	occSeen []uint32
	epoch   uint32
}

func (t *costTables) newEvaluator() *costEvaluator {
	return &costEvaluator{
		t:       t,
		occMax:  make([]float64, t.nv),
		occSeen: make([]uint32, t.nv),
	}
}

// evalOrder computes the left-deep model cost of the given join order —
// bit-identical to leftDeepCost, with the map replaced by the epoch-
// versioned flat tables. Zero allocations per call.
func (e *costEvaluator) evalOrder(order []int) float64 {
	e.epoch++
	if e.epoch == 0 { // uint32 wrap: invalidate all stale marks
		for i := range e.occSeen {
			e.occSeen[i] = 0
		}
		e.epoch = 1
	}
	t := e.t
	rows := 1.0
	cost := 0.0
	for step, i := range order {
		base := t.base[i]
		newRows := rows * base
		for _, c := range t.cols[t.colIdx[i]:t.colIdx[i+1]] {
			if e.occSeen[c.v] == e.epoch {
				prev := e.occMax[c.v]
				newRows *= 1 / math.Max(prev, c.d)
				e.occMax[c.v] = math.Max(prev, c.d)
			} else {
				e.occSeen[c.v] = e.epoch
				e.occMax[c.v] = c.d
			}
		}
		if newRows < 1 {
			newRows = 1
		}
		if step > 0 {
			cost += math.Min(rows, base) + math.Max(rows, base) + newRows
		}
		rows = newRows
	}
	return cost
}
