// Package pgplanner simulates the cost-based SQL planner the paper runs
// against (PostgreSQL 7.2.1): a System-R style exhaustive dynamic program
// over join orders for small queries, and a GEQO-style genetic search for
// large ones, driven by a textbook cardinality model.
//
// The paper's naive method hands the whole join to this planner; Figure 2
// shows its compile time growing exponentially with query density while
// the chosen plan is no better than the straightforward order. Both
// behaviours are structural: the DP explores 2^m subsets, the genetic
// search uses an exponentially-sized pool (as PostgreSQL's GEQO sized its
// pool before being capped), and neither considers projection pushing —
// they only pick a join order. This package reproduces exactly that.
//
// The search *spaces* are the point of the reproduction; the search
// *implementation* is not, so the hot loops run on flat precomputed
// tables (see costTables) instead of per-evaluation maps, and the
// genetic search can fan out across deterministic islands. For a fixed
// seed the chosen orders, costs, and PlansExplored counts are identical
// to the straightforward implementation they replace.
package pgplanner

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"time"

	"projpush/internal/cq"
)

// CostModel estimates join cardinalities and costs from relation sizes
// and per-column distinct counts — the only statistics available in the
// paper's setting of tiny databases.
type CostModel struct {
	// BaseRows is the cardinality of each database relation.
	BaseRows map[string]int
	// Distinct is the number of distinct values per relation column,
	// used for equality selectivity (1/distinct). Missing entries fall
	// back to DefaultDistinct.
	Distinct map[string][]int
	// DefaultDistinct is used when no column statistics exist.
	DefaultDistinct int
}

// NewCostModel gathers statistics from a database.
func NewCostModel(db cq.Database) *CostModel {
	cm := &CostModel{
		BaseRows:        make(map[string]int),
		Distinct:        make(map[string][]int),
		DefaultDistinct: 10,
	}
	for name, rel := range db {
		cm.BaseRows[name] = rel.Len()
		d := make([]int, rel.Arity())
		for i, a := range rel.Attrs() {
			seen := make(map[int32]bool)
			for _, t := range rel.Tuples() {
				seen[rel.Value(t, a)] = true
			}
			d[i] = len(seen)
			if d[i] == 0 {
				d[i] = 1
			}
		}
		cm.Distinct[name] = d
	}
	return cm
}

// columnDistinct returns the distinct count for an atom argument.
func (cm *CostModel) columnDistinct(rel string, col int) float64 {
	if d, ok := cm.Distinct[rel]; ok && col < len(d) {
		return float64(d[col])
	}
	if cm.DefaultDistinct > 0 {
		return float64(cm.DefaultDistinct)
	}
	return 10
}

// Estimate computes the estimated cardinality of joining a set of atoms:
// the product of base cardinalities discounted by one equality selectivity
// per repeated variable occurrence — the standard System-R independence
// assumptions. The occurrence table carries the running maximum distinct
// count per variable, so a third or later occurrence is priced against
// the largest domain seen so far, not just the previous column's.
func (cm *CostModel) Estimate(q *cq.Query, atomSet []int) float64 {
	rows := 1.0
	occ := make(map[cq.Var]float64)
	for _, i := range atomSet {
		a := q.Atoms[i]
		base := cm.BaseRows[a.Rel]
		if base <= 0 {
			base = 1
		}
		rows *= float64(base)
		for col, v := range a.Args {
			d := cm.columnDistinct(a.Rel, col)
			if prev, ok := occ[v]; ok {
				// Another occurrence of v: apply 1/max(distinct) and
				// keep the running max.
				sel := 1 / math.Max(prev, d)
				rows *= sel
				d = math.Max(prev, d)
			}
			occ[v] = d
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// Result is the outcome of a planner search: a join order for a left-deep
// plan, its estimated cost, and how much work the search performed.
type Result struct {
	// Order is the atom permutation for a left-deep join.
	Order []int
	// Cost is the model cost of the chosen plan.
	Cost float64
	// PlansExplored counts cost evaluations — the planner's "compile
	// effort", the quantity Figure 2 plots as compile time.
	PlansExplored int64
	// Elapsed is the wall-clock planning time.
	Elapsed time.Duration
	// Algorithm records which search ran ("dp" or "geqo").
	Algorithm string
}

// Options configures Plan.
type Options struct {
	// GEQOThreshold is the atom count at which the planner switches
	// from exhaustive DP to the genetic search; PostgreSQL's
	// geqo_threshold. Default 12.
	GEQOThreshold int
	// PoolSize overrides the genetic pool size; 0 derives it from the
	// query size the way PostgreSQL 7.2 did (exponential, capped).
	PoolSize int
	// Generations overrides the number of steady-state generations;
	// 0 derives pool-many generations.
	Generations int
	// PoolCap caps the derived pool size. Default 1 << 14.
	PoolCap int
	// Workers splits the genetic search into that many concurrently
	// evolved islands with periodic best-member migration. Results are
	// deterministic for a fixed (seed, Workers) pair; Workers <= 1 (the
	// default) runs the serial search, identical to the pre-island
	// implementation. The DP is unaffected by Workers.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.GEQOThreshold <= 0 {
		o.GEQOThreshold = 12
	}
	if o.PoolCap <= 0 {
		o.PoolCap = 1 << 14
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Plan searches for a join order for q: exhaustive DP when the query has
// at most GEQOThreshold atoms, genetic search otherwise — PostgreSQL's
// policy.
func Plan(q *cq.Query, cm *CostModel, rng *rand.Rand, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("pgplanner: query has no atoms")
	}
	if len(q.Atoms) <= opt.GEQOThreshold {
		return DP(q, cm)
	}
	return GEQO(q, cm, rng, opt)
}

// leftDeepCost evaluates the model cost of a left-deep join in the given
// order: the sum of estimated intermediate cardinalities plus hash-join
// build and probe terms. It also reports how many cost evaluations were
// charged (one per join step).
//
// This is the readable reference implementation; the genetic search runs
// the bit-identical allocation-free costEvaluator.evalOrder instead.
func leftDeepCost(q *cq.Query, cm *CostModel, order []int) (float64, int64) {
	// Incremental estimate: carry rows and variable occurrences.
	rows := 1.0
	cost := 0.0
	occ := make(map[cq.Var]float64, len(order)*2)
	for step, i := range order {
		a := q.Atoms[i]
		base := float64(cm.BaseRows[a.Rel])
		if base <= 0 {
			base = 1
		}
		newRows := rows * base
		for col, v := range a.Args {
			d := cm.columnDistinct(a.Rel, col)
			if prev, ok := occ[v]; ok {
				newRows *= 1 / math.Max(prev, d)
				d = math.Max(prev, d)
			}
			occ[v] = d
		}
		if newRows < 1 {
			newRows = 1
		}
		if step > 0 {
			// Hash join: build the smaller side, probe the larger,
			// emit the output.
			cost += math.Min(rows, base) + math.Max(rows, base) + newRows
		}
		rows = newRows
	}
	return cost, int64(len(order))
}

// DP runs the System-R exhaustive search over left-deep join orders using
// dynamic programming on atom subsets: 2^m states, each scanning the m
// possible last atoms. Exponential in the number of atoms — the source of
// the naive method's compile-time blow-up below the GEQO threshold.
//
// Subset cardinality estimates are incremental: the unclamped estimate of
// S extends the estimate of S minus its highest atom by that atom's base
// size and per-column selectivities, looked up in precomputed bitmask and
// distinct tables (costTables.extendRaw) — O(arity) and allocation-free
// per state instead of rebuilding an occurrence map from the whole
// subset. The floating-point operation order matches the full
// recomputation exactly, so costs are bit-identical, and the explored
// count (one per (subset, last atom) transition) is unchanged.
func DP(q *cq.Query, cm *CostModel) (*Result, error) {
	m := len(q.Atoms)
	if m == 0 {
		return nil, fmt.Errorf("pgplanner: query has no atoms")
	}
	if m > 24 {
		return nil, fmt.Errorf("pgplanner: DP infeasible for %d atoms (limit 24)", m)
	}
	start := time.Now()
	t := newCostTables(q, cm)
	size := 1 << uint(m)
	bestCost := make([]float64, size)
	rawRows := make([]float64, size) // unclamped subset estimates
	lastAtom := make([]int8, size)
	explored := int64(0)

	for s := 1; s < size; s++ {
		if s&(s-1) == 0 {
			// Single atom.
			a := bits.TrailingZeros(uint(s))
			bestCost[s] = 0
			rawRows[s] = t.base[a]
			lastAtom[s] = int8(a)
			continue
		}
		hi := bits.Len(uint(s)) - 1
		raw := t.extendRaw(rawRows[s&^(1<<uint(hi))], s&^(1<<uint(hi)), hi)
		rawRows[s] = raw
		rows := raw
		if rows < 1 {
			rows = 1
		}
		bc := math.Inf(1)
		var la int8
		for rem := s; rem != 0; rem &= rem - 1 {
			a := bits.TrailingZeros(uint(rem))
			prev := s &^ (1 << uint(a))
			explored++
			base := t.base[a]
			prevRows := rawRows[prev]
			if prevRows < 1 {
				prevRows = 1
			}
			stepCost := math.Min(prevRows, base) + math.Max(prevRows, base) + rows
			c := bestCost[prev] + stepCost
			if c < bc {
				bc = c
				la = int8(a)
			}
		}
		bestCost[s] = bc
		lastAtom[s] = la
	}

	order := make([]int, m)
	s := size - 1
	for i := m - 1; i >= 0; i-- {
		a := int(lastAtom[s])
		order[i] = a
		s &^= 1 << uint(a)
	}
	return &Result{
		Order:         order,
		Cost:          bestCost[size-1],
		PlansExplored: explored,
		Elapsed:       time.Since(start),
		Algorithm:     "dp",
	}, nil
}
