// Package pgplanner simulates the cost-based SQL planner the paper runs
// against (PostgreSQL 7.2.1): a System-R style exhaustive dynamic program
// over join orders for small queries, and a GEQO-style genetic search for
// large ones, driven by a textbook cardinality model.
//
// The paper's naive method hands the whole join to this planner; Figure 2
// shows its compile time growing exponentially with query density while
// the chosen plan is no better than the straightforward order. Both
// behaviours are structural: the DP explores 2^m subsets, the genetic
// search uses an exponentially-sized pool (as PostgreSQL's GEQO sized its
// pool before being capped), and neither considers projection pushing —
// they only pick a join order. This package reproduces exactly that.
package pgplanner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"projpush/internal/cq"
)

// CostModel estimates join cardinalities and costs from relation sizes
// and per-column distinct counts — the only statistics available in the
// paper's setting of tiny databases.
type CostModel struct {
	// BaseRows is the cardinality of each database relation.
	BaseRows map[string]int
	// Distinct is the number of distinct values per relation column,
	// used for equality selectivity (1/distinct). Missing entries fall
	// back to DefaultDistinct.
	Distinct map[string][]int
	// DefaultDistinct is used when no column statistics exist.
	DefaultDistinct int
}

// NewCostModel gathers statistics from a database.
func NewCostModel(db cq.Database) *CostModel {
	cm := &CostModel{
		BaseRows:        make(map[string]int),
		Distinct:        make(map[string][]int),
		DefaultDistinct: 10,
	}
	for name, rel := range db {
		cm.BaseRows[name] = rel.Len()
		d := make([]int, rel.Arity())
		for i, a := range rel.Attrs() {
			seen := make(map[int32]bool)
			for _, t := range rel.Tuples() {
				seen[rel.Value(t, a)] = true
			}
			d[i] = len(seen)
			if d[i] == 0 {
				d[i] = 1
			}
		}
		cm.Distinct[name] = d
	}
	return cm
}

// columnDistinct returns the distinct count for an atom argument.
func (cm *CostModel) columnDistinct(rel string, col int) float64 {
	if d, ok := cm.Distinct[rel]; ok && col < len(d) {
		return float64(d[col])
	}
	if cm.DefaultDistinct > 0 {
		return float64(cm.DefaultDistinct)
	}
	return 10
}

// Estimate computes the estimated cardinality of joining a set of atoms:
// the product of base cardinalities discounted by one equality selectivity
// per repeated variable occurrence — the standard System-R independence
// assumptions.
func (cm *CostModel) Estimate(q *cq.Query, atomSet []int) float64 {
	rows := 1.0
	occ := make(map[cq.Var]float64)
	for _, i := range atomSet {
		a := q.Atoms[i]
		base := cm.BaseRows[a.Rel]
		if base <= 0 {
			base = 1
		}
		rows *= float64(base)
		for col, v := range a.Args {
			d := cm.columnDistinct(a.Rel, col)
			if prev, ok := occ[v]; ok {
				// Another occurrence of v: apply 1/max(distinct).
				sel := 1 / math.Max(prev, d)
				rows *= sel
			}
			occ[v] = d
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// Result is the outcome of a planner search: a join order for a left-deep
// plan, its estimated cost, and how much work the search performed.
type Result struct {
	// Order is the atom permutation for a left-deep join.
	Order []int
	// Cost is the model cost of the chosen plan.
	Cost float64
	// PlansExplored counts cost evaluations — the planner's "compile
	// effort", the quantity Figure 2 plots as compile time.
	PlansExplored int64
	// Elapsed is the wall-clock planning time.
	Elapsed time.Duration
	// Algorithm records which search ran ("dp" or "geqo").
	Algorithm string
}

// Options configures Plan.
type Options struct {
	// GEQOThreshold is the atom count at which the planner switches
	// from exhaustive DP to the genetic search; PostgreSQL's
	// geqo_threshold. Default 12.
	GEQOThreshold int
	// PoolSize overrides the genetic pool size; 0 derives it from the
	// query size the way PostgreSQL 7.2 did (exponential, capped).
	PoolSize int
	// Generations overrides the number of steady-state generations;
	// 0 derives pool-many generations.
	Generations int
	// PoolCap caps the derived pool size. Default 1 << 14.
	PoolCap int
}

func (o Options) withDefaults() Options {
	if o.GEQOThreshold <= 0 {
		o.GEQOThreshold = 12
	}
	if o.PoolCap <= 0 {
		o.PoolCap = 1 << 14
	}
	return o
}

// Plan searches for a join order for q: exhaustive DP when the query has
// at most GEQOThreshold atoms, genetic search otherwise — PostgreSQL's
// policy.
func Plan(q *cq.Query, cm *CostModel, rng *rand.Rand, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("pgplanner: query has no atoms")
	}
	if len(q.Atoms) <= opt.GEQOThreshold {
		return DP(q, cm)
	}
	return GEQO(q, cm, rng, opt)
}

// leftDeepCost evaluates the model cost of a left-deep join in the given
// order: the sum of estimated intermediate cardinalities plus hash-join
// build and probe terms. It also reports how many cost evaluations were
// charged (one per join step).
func leftDeepCost(q *cq.Query, cm *CostModel, order []int) (float64, int64) {
	// Incremental estimate: carry rows and variable occurrences.
	rows := 1.0
	cost := 0.0
	occ := make(map[cq.Var]float64, len(order)*2)
	for step, i := range order {
		a := q.Atoms[i]
		base := float64(cm.BaseRows[a.Rel])
		if base <= 0 {
			base = 1
		}
		newRows := rows * base
		for col, v := range a.Args {
			d := cm.columnDistinct(a.Rel, col)
			if prev, ok := occ[v]; ok {
				newRows *= 1 / math.Max(prev, d)
			}
			occ[v] = d
		}
		if newRows < 1 {
			newRows = 1
		}
		if step > 0 {
			// Hash join: build the smaller side, probe the larger,
			// emit the output.
			cost += math.Min(rows, base) + math.Max(rows, base) + newRows
		}
		rows = newRows
	}
	return cost, int64(len(order))
}

// DP runs the System-R exhaustive search over left-deep join orders using
// dynamic programming on atom subsets: 2^m states, each scanning the m
// possible last atoms. Exponential in the number of atoms — the source of
// the naive method's compile-time blow-up below the GEQO threshold.
func DP(q *cq.Query, cm *CostModel) (*Result, error) {
	m := len(q.Atoms)
	if m == 0 {
		return nil, fmt.Errorf("pgplanner: query has no atoms")
	}
	if m > 24 {
		return nil, fmt.Errorf("pgplanner: DP infeasible for %d atoms (limit 24)", m)
	}
	start := time.Now()
	size := 1 << uint(m)
	bestCost := make([]float64, size)
	bestRows := make([]float64, size)
	lastAtom := make([]int8, size)
	explored := int64(0)

	// Subset cardinality estimates are computed incrementally: rows of
	// S = rows of S∖{a} adjusted by a's base size and the selectivities
	// of a's variables against S∖{a}. To keep the DP simple we recompute
	// the per-variable occurrence structure from the subset each time;
	// the work is still O(2^m · m · arity), dominated by 2^m.
	for s := 1; s < size; s++ {
		bestCost[s] = math.Inf(1)
		if s&(s-1) == 0 {
			// Single atom.
			var a int
			for a = 0; s>>uint(a)&1 == 0; a++ {
			}
			base := float64(cm.BaseRows[q.Atoms[a].Rel])
			if base <= 0 {
				base = 1
			}
			bestCost[s] = 0
			bestRows[s] = base
			lastAtom[s] = int8(a)
			continue
		}
		subset := make([]int, 0, m)
		for a := 0; a < m; a++ {
			if s>>uint(a)&1 == 1 {
				subset = append(subset, a)
			}
		}
		rows := cm.Estimate(q, subset)
		bestRows[s] = rows
		for _, a := range subset {
			prev := s &^ (1 << uint(a))
			explored++
			base := float64(cm.BaseRows[q.Atoms[a].Rel])
			if base <= 0 {
				base = 1
			}
			stepCost := math.Min(bestRows[prev], base) + math.Max(bestRows[prev], base) + rows
			c := bestCost[prev] + stepCost
			if c < bestCost[s] {
				bestCost[s] = c
				lastAtom[s] = int8(a)
			}
		}
	}

	order := make([]int, m)
	s := size - 1
	for i := m - 1; i >= 0; i-- {
		a := int(lastAtom[s])
		order[i] = a
		s &^= 1 << uint(a)
	}
	return &Result{
		Order:         order,
		Cost:          bestCost[size-1],
		PlansExplored: explored,
		Elapsed:       time.Since(start),
		Algorithm:     "dp",
	}, nil
}

// GEQO runs a steady-state genetic search over join orders, in the style
// of PostgreSQL's genetic query optimizer: an order-crossover of two
// pool members ranked by cost, offspring replacing the worst member. The
// derived pool size grows exponentially with the number of atoms (capped
// at PoolCap), matching the planner behaviour whose compile-time blow-up
// Figure 2 reports.
func GEQO(q *cq.Query, cm *CostModel, rng *rand.Rand, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	m := len(q.Atoms)
	if m == 0 {
		return nil, fmt.Errorf("pgplanner: query has no atoms")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	start := time.Now()

	pool := opt.PoolSize
	if pool <= 0 {
		// PostgreSQL 7.2 derived the pool size as 2^(m/2+1), capped.
		shift := m/2 + 1
		if shift > 30 {
			shift = 30
		}
		pool = 1 << uint(shift)
		if pool > opt.PoolCap {
			pool = opt.PoolCap
		}
	}
	if pool < 4 {
		pool = 4
	}
	gens := opt.Generations
	if gens <= 0 {
		gens = pool
	}

	type member struct {
		order []int
		cost  float64
	}
	explored := int64(0)
	eval := func(order []int) float64 {
		c, n := leftDeepCost(q, cm, order)
		explored += n
		return c
	}

	members := make([]member, pool)
	for i := range members {
		ord := rng.Perm(m)
		members[i] = member{order: ord, cost: eval(ord)}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].cost < members[j].cost })

	// Linear-bias parent selection, as GEQO does.
	pick := func() int {
		// Squaring a uniform sample biases toward the front (fitter).
		u := rng.Float64()
		return int(u * u * float64(pool))
	}

	child := make([]int, m)
	used := make([]bool, m)
	for g := 0; g < gens; g++ {
		p1 := members[pick()].order
		p2 := members[pick()].order
		// Order crossover (OX): copy a random slice of p1, fill the
		// rest in p2's order.
		lo := rng.Intn(m)
		hi := lo + rng.Intn(m-lo)
		for i := range used {
			used[i] = false
		}
		for i := lo; i <= hi; i++ {
			child[i] = p1[i]
			used[p1[i]] = true
		}
		j := 0
		for _, a := range p2 {
			if used[a] {
				continue
			}
			for j >= lo && j <= hi {
				j++
			}
			child[j] = a
			j++
			for j >= lo && j <= hi {
				j++
			}
		}
		// Occasional swap mutation.
		if rng.Intn(4) == 0 {
			i1, i2 := rng.Intn(m), rng.Intn(m)
			child[i1], child[i2] = child[i2], child[i1]
		}
		c := eval(child)
		// Replace the worst member if the child improves on it, then
		// restore rank order by insertion.
		if c < members[pool-1].cost {
			members[pool-1] = member{order: append([]int(nil), child...), cost: c}
			for i := pool - 1; i > 0 && members[i].cost < members[i-1].cost; i-- {
				members[i], members[i-1] = members[i-1], members[i]
			}
		}
	}

	best := members[0]
	return &Result{
		Order:         append([]int(nil), best.order...),
		Cost:          best.cost,
		PlansExplored: explored,
		Elapsed:       time.Since(start),
		Algorithm:     "geqo",
	}, nil
}
