package pgplanner

import (
	"fmt"
	"math"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

// PlanEstimate is the cost model applied to a whole plan tree, including
// projections — the piece a pure join-order planner lacks, and the
// bridge the paper's Section 7 asks for between structural and
// cost-based optimization: once projection-pushing rewrites produce
// candidate plans, the cost model can rank them.
type PlanEstimate struct {
	// Rows is the estimated cardinality of the plan's output.
	Rows float64
	// Cost is the accumulated model cost (build + probe + output per
	// join; input + output per projection).
	Cost float64
}

// EstimatePlan walks a plan bottom-up estimating cardinalities: scans
// report base cardinalities, joins apply one equality selectivity per
// shared variable (independence assumptions, as in System R), and
// DISTINCT projections cap their output by the product of the kept
// columns' distinct counts.
func (cm *CostModel) EstimatePlan(p plan.Node) (PlanEstimate, error) {
	est, _, err := cm.estimateNode(p)
	return est, err
}

// estimateNode returns the estimate plus each variable's distinct-count
// bound in the node's output.
func (cm *CostModel) estimateNode(p plan.Node) (PlanEstimate, map[cq.Var]float64, error) {
	switch t := p.(type) {
	case *plan.Scan:
		base := float64(cm.BaseRows[t.Atom.Rel])
		if base <= 0 {
			base = 1
		}
		distinct := make(map[cq.Var]float64, len(t.Atom.Args))
		for col, v := range t.Atom.Args {
			distinct[v] = math.Min(cm.columnDistinct(t.Atom.Rel, col), base)
		}
		return PlanEstimate{Rows: base, Cost: 0}, distinct, nil

	case *plan.Join:
		le, ld, err := cm.estimateNode(t.Left)
		if err != nil {
			return PlanEstimate{}, nil, err
		}
		re, rd, err := cm.estimateNode(t.Right)
		if err != nil {
			return PlanEstimate{}, nil, err
		}
		rows := le.Rows * re.Rows
		distinct := make(map[cq.Var]float64, len(ld)+len(rd))
		for v, d := range ld {
			distinct[v] = d
		}
		for v, d := range rd {
			if prev, ok := distinct[v]; ok {
				rows *= 1 / math.Max(prev, d)
				distinct[v] = math.Min(prev, d)
			} else {
				distinct[v] = d
			}
		}
		if rows < 1 {
			rows = 1
		}
		cost := le.Cost + re.Cost +
			math.Min(le.Rows, re.Rows) + math.Max(le.Rows, re.Rows) + rows
		return PlanEstimate{Rows: rows, Cost: cost}, distinct, nil

	case *plan.Project:
		ce, cd, err := cm.estimateNode(t.Child)
		if err != nil {
			return PlanEstimate{}, nil, err
		}
		// DISTINCT output is bounded by the child cardinality and the
		// product of the kept columns' distinct counts.
		cap := 1.0
		distinct := make(map[cq.Var]float64, len(t.Cols))
		for _, v := range t.Cols {
			d, ok := cd[v]
			if !ok {
				return PlanEstimate{}, nil, fmt.Errorf("pgplanner: projection keeps unknown variable x%d", v)
			}
			distinct[v] = d
			if cap < 1e18 { // avoid overflow on wide plans
				cap *= d
			}
		}
		rows := math.Min(ce.Rows, cap)
		if rows < 1 {
			rows = 1
		}
		return PlanEstimate{
			Rows: rows,
			Cost: ce.Cost + ce.Rows + rows,
		}, distinct, nil

	default:
		return PlanEstimate{}, nil, fmt.Errorf("pgplanner: unknown plan node %T", p)
	}
}
