package pgplanner

import (
	"math"
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

// TestEstimateOccurrenceRunningMax is the regression test for the
// occurrence-tracking bug: with a variable occurring in three atoms
// whose columns have different distinct counts, the second and third
// occurrences must both be priced against the running maximum, not
// against whatever column happened to come last. Variable 0 occurs in
// columns with distinct counts 20, 2, and 4: the buggy tracker stored 2
// after the second atom and priced the third occurrence at 1/max(2,4) =
// 1/4; the fix keeps the max 20 and prices it at 1/20.
func TestEstimateOccurrenceRunningMax(t *testing.T) {
	cm := &CostModel{
		BaseRows: map[string]int{"a": 100, "b": 10, "c": 40},
		Distinct: map[string][]int{
			"a": {20},
			"b": {2},
			"c": {4},
		},
		DefaultDistinct: 10,
	}
	q := &cq.Query{Atoms: []cq.Atom{
		{Rel: "a", Args: []cq.Var{0}},
		{Rel: "b", Args: []cq.Var{0}},
		{Rel: "c", Args: []cq.Var{0}},
	}}
	// 100 * 10 * (1/max(20,2)) * 40 * (1/max(20,4)) = 100.
	want := 100.0 * 10 / 20 * 40 / 20
	if got := cm.Estimate(q, []int{0, 1, 2}); got != want {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
	// The buggy tracker would have returned 100*10/20*40/4 = 2000.
	if buggy := estimateMapBaseline(cm, q, []int{0, 1, 2}); buggy == want {
		t.Fatalf("baseline unexpectedly agrees (%v); regression test is vacuous", buggy)
	}

	// leftDeepCost applies the same rule: its final intermediate
	// cardinality must reflect the running max too.
	cost, _ := leftDeepCost(q, cm, []int{0, 1, 2})
	// Step 1: rows=100, base=10 -> newRows=50; cost = 10+100+50.
	// Step 2: rows=50, base=40 -> newRows=50*40/20=100; cost += 40+50+100.
	wantCost := (10.0 + 100 + 50) + (40 + 50 + 100)
	if cost != wantCost {
		t.Fatalf("leftDeepCost = %v, want %v", cost, wantCost)
	}
}

// TestDPMatchesBruteForce cross-checks DP optimality: for random color
// queries with at most 7 atoms, enumerate all m! left-deep orders with
// leftDeepCost and check DP returns a minimum-cost order.
func TestDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := instance.ColorDatabase(3)
	cm := NewCostModel(db)
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(3)
		maxM := n * (n - 1) / 2
		m := 3 + rng.Intn(5)
		if m > maxM {
			m = maxM
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		res, err := DP(q, cm)
		if err != nil {
			t.Fatal(err)
		}

		// Heap's algorithm over all orders.
		best := math.Inf(1)
		order := make([]int, len(q.Atoms))
		for i := range order {
			order[i] = i
		}
		var visit func(k int)
		visit = func(k int) {
			if k == 1 {
				if c, _ := leftDeepCost(q, cm, order); c < best {
					best = c
				}
				return
			}
			for i := 0; i < k; i++ {
				visit(k - 1)
				if k%2 == 0 {
					order[i], order[k-1] = order[k-1], order[i]
				} else {
					order[0], order[k-1] = order[k-1], order[0]
				}
			}
		}
		visit(len(order))

		// DP accumulates the same step costs in a different float
		// association, so compare with a relative tolerance.
		tol := 1e-9 * math.Max(1, best)
		if res.Cost > best+tol {
			t.Fatalf("trial %d (%d atoms): DP cost %v above brute-force optimum %v", trial, len(q.Atoms), res.Cost, best)
		}
		ownCost, _ := leftDeepCost(q, cm, res.Order)
		if math.Abs(ownCost-res.Cost) > tol {
			t.Fatalf("trial %d: DP order's cost %v != reported cost %v", trial, ownCost, res.Cost)
		}
	}
}

func geqoQuery(t testing.TB, seed int64, n, edges int) (*cq.Query, *CostModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.Random(n, edges, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	return q, NewCostModel(instance.ColorDatabase(3))
}

// TestGEQODeterminism pins the genetic search's determinism contract:
// for a fixed seed and fixed worker count, repeated runs return the same
// Order, Cost, and PlansExplored — serially and with islands.
func TestGEQODeterminism(t *testing.T) {
	q, cm := geqoQuery(t, 31, 15, 40)
	for _, workers := range []int{1, 2, 4} {
		opt := Options{PoolSize: 64, Generations: 256, Workers: workers}
		a, err := GEQO(q, cm, rand.New(rand.NewSource(77)), opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GEQO(q, cm, rand.New(rand.NewSource(77)), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(a, b) {
			t.Fatalf("workers=%d: two seeded runs diverged: cost %v/%v explored %d/%d order %v/%v",
				workers, a.Cost, b.Cost, a.PlansExplored, b.PlansExplored, a.Order, b.Order)
		}
		if a.Algorithm != "geqo" {
			t.Fatalf("algorithm = %q", a.Algorithm)
		}
		seen := make([]bool, len(q.Atoms))
		for _, i := range a.Order {
			if i < 0 || i >= len(seen) || seen[i] {
				t.Fatalf("workers=%d: order not a permutation: %v", workers, a.Order)
			}
			seen[i] = true
		}
	}
}

// TestGEQOIslandsExploreAndImprove sanity-checks the island search: the
// aggregated explored count matches the serial generation budget, and
// the chosen plan is competitive with random orders.
func TestGEQOIslandsExploreAndImprove(t *testing.T) {
	q, cm := geqoQuery(t, 33, 14, 42)
	m := len(q.Atoms)
	opt := Options{PoolSize: 64, Generations: 512, Workers: 4}
	res, err := GEQO(q, cm, rand.New(rand.NewSource(3)), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Every pool member is evaluated once at init and every generation
	// evaluates one child, regardless of how the islands split them.
	if want := int64((64 + 512) * m); res.PlansExplored != want {
		t.Fatalf("explored = %d, want %d", res.PlansExplored, want)
	}
	rng := rand.New(rand.NewSource(99))
	worse := 0
	for i := 0; i < 50; i++ {
		c, _ := leftDeepCost(q, cm, rng.Perm(m))
		if c >= res.Cost {
			worse++
		}
	}
	if worse < 40 {
		t.Fatalf("island GEQO (cost %g) beats only %d/50 random orders", res.Cost, worse)
	}
}

// TestGEQOSteadyStateZeroAlloc asserts the satellite contract: after
// initialization the steady-state loop — crossover, mutation, cost
// evaluation, pool replacement — allocates nothing, the recycled
// offspring buffer replacing the old per-improvement order copy.
func TestGEQOSteadyStateZeroAlloc(t *testing.T) {
	q, cm := geqoQuery(t, 35, 14, 40)
	tab := newCostTables(q, cm)
	is := newGeqoIsland(tab, rand.New(rand.NewSource(17)), 64)
	is.init()
	if allocs := testing.AllocsPerRun(10, func() { is.evolve(100) }); allocs != 0 {
		t.Fatalf("steady-state loop allocates %v objects per 100 generations, want 0", allocs)
	}
}
