package pgplanner

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"projpush/internal/cq"
)

// geqoMigrationEpochs is the number of lockstep evolution epochs the
// island-parallel search runs; the islands exchange best members at the
// epoch boundaries (epochs-1 migrations).
const geqoMigrationEpochs = 4

// geqoMember is one pool member: a join order and its model cost.
type geqoMember struct {
	order []int
	cost  float64
}

// geqoIsland is one independently evolving pool of the genetic search,
// with a private RNG and private evaluator scratch so islands can run
// concurrently without synchronization. The serial search is a single
// island holding the whole pool.
type geqoIsland struct {
	ev       *costEvaluator
	rng      *rand.Rand
	members  []geqoMember
	child    []int // recycled offspring buffer (swapped, never copied)
	used     []bool
	m        int
	pool     int
	explored int64
}

func newGeqoIsland(t *costTables, rng *rand.Rand, pool int) *geqoIsland {
	return &geqoIsland{
		ev:      t.newEvaluator(),
		rng:     rng,
		members: make([]geqoMember, pool),
		child:   make([]int, t.m),
		used:    make([]bool, t.m),
		m:       t.m,
		pool:    pool,
	}
}

func (is *geqoIsland) eval(order []int) float64 {
	is.explored += int64(len(order))
	return is.ev.evalOrder(order)
}

// init fills the pool with random permutations and ranks it by cost.
func (is *geqoIsland) init() {
	for i := range is.members {
		ord := is.rng.Perm(is.m)
		is.members[i] = geqoMember{order: ord, cost: is.eval(ord)}
	}
	sort.Slice(is.members, func(i, j int) bool { return is.members[i].cost < is.members[j].cost })
}

// pick selects a parent index with GEQO's linear bias: squaring a
// uniform sample biases toward the front (fitter) of the ranked pool.
func (is *geqoIsland) pick() int {
	u := is.rng.Float64()
	return int(u * u * float64(is.pool))
}

// evolve runs gens steady-state generations: order-crossover of two
// ranked parents, occasional swap mutation, offspring replacing the
// worst member when it improves on it. The offspring buffer is recycled
// by swapping with the evicted member's order, so the steady-state loop
// allocates nothing.
func (is *geqoIsland) evolve(gens int) {
	m, pool := is.m, is.pool
	for g := 0; g < gens; g++ {
		p1 := is.members[is.pick()].order
		p2 := is.members[is.pick()].order
		// Order crossover (OX): copy a random slice of p1, fill the
		// rest in p2's order.
		lo := is.rng.Intn(m)
		hi := lo + is.rng.Intn(m-lo)
		for i := range is.used {
			is.used[i] = false
		}
		for i := lo; i <= hi; i++ {
			is.child[i] = p1[i]
			is.used[p1[i]] = true
		}
		j := 0
		for _, a := range p2 {
			if is.used[a] {
				continue
			}
			for j >= lo && j <= hi {
				j++
			}
			is.child[j] = a
			j++
			for j >= lo && j <= hi {
				j++
			}
		}
		// Occasional swap mutation.
		if is.rng.Intn(4) == 0 {
			i1, i2 := is.rng.Intn(m), is.rng.Intn(m)
			is.child[i1], is.child[i2] = is.child[i2], is.child[i1]
		}
		c := is.eval(is.child)
		// Replace the worst member if the child improves on it, then
		// restore rank order by insertion. Swapping buffers hands the
		// evicted order to the next generation as scratch; every slot
		// is rewritten by the crossover, so no stale state survives.
		if c < is.members[pool-1].cost {
			is.members[pool-1].order, is.child = is.child, is.members[pool-1].order
			is.members[pool-1].cost = c
			for i := pool - 1; i > 0 && is.members[i].cost < is.members[i-1].cost; i-- {
				is.members[i], is.members[i-1] = is.members[i-1], is.members[i]
			}
		}
	}
}

// inject offers a migrant to the island: it replaces the worst member if
// strictly better, keeping the pool ranked. No RNG is consumed, so
// migration cannot perturb the islands' private random streams.
func (is *geqoIsland) inject(order []int, cost float64) {
	pool := is.pool
	if cost >= is.members[pool-1].cost {
		return
	}
	copy(is.members[pool-1].order, order)
	is.members[pool-1].cost = cost
	for i := pool - 1; i > 0 && is.members[i].cost < is.members[i-1].cost; i-- {
		is.members[i], is.members[i-1] = is.members[i-1], is.members[i]
	}
}

// best returns the island's fittest member (the pool is kept ranked).
func (is *geqoIsland) best() geqoMember { return is.members[0] }

// geqoPoolSize derives the pool size the way PostgreSQL 7.2 did:
// 2^(m/2+1), capped.
func geqoPoolSize(m int, opt Options) int {
	pool := opt.PoolSize
	if pool <= 0 {
		shift := m/2 + 1
		if shift > 30 {
			shift = 30
		}
		pool = 1 << uint(shift)
		if pool > opt.PoolCap {
			pool = opt.PoolCap
		}
	}
	if pool < 4 {
		pool = 4
	}
	return pool
}

// GEQO runs a steady-state genetic search over join orders, in the style
// of PostgreSQL's genetic query optimizer: an order-crossover of two
// pool members ranked by cost, offspring replacing the worst member. The
// derived pool size grows exponentially with the number of atoms (capped
// at PoolCap), matching the planner behaviour whose compile-time blow-up
// Figure 2 reports.
//
// With Options.Workers > 1 the pool and generation budget split across
// that many islands, each evolving concurrently with a private RNG
// seeded deterministically from the caller's rng in island order, and
// the islands' best members migrate ring-wise at fixed epoch boundaries.
// The result is a pure function of (seed, Workers): re-running with the
// same pair reproduces Order, Cost, and PlansExplored exactly, and
// Workers <= 1 reproduces the serial search's historical results.
// Explored counts aggregate across islands in island order.
func GEQO(q *cq.Query, cm *CostModel, rng *rand.Rand, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	m := len(q.Atoms)
	if m == 0 {
		return nil, fmt.Errorf("pgplanner: query has no atoms")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	start := time.Now()

	pool := geqoPoolSize(m, opt)
	gens := opt.Generations
	if gens <= 0 {
		gens = pool
	}
	t := newCostTables(q, cm)

	nw := opt.Workers
	if nw > pool/4 {
		nw = pool / 4 // every island needs a few members to rank
	}
	if nw <= 1 {
		is := newGeqoIsland(t, rng, pool)
		is.init()
		is.evolve(gens)
		best := is.best()
		return &Result{
			Order:         append([]int(nil), best.order...),
			Cost:          best.cost,
			PlansExplored: is.explored,
			Elapsed:       time.Since(start),
			Algorithm:     "geqo",
		}, nil
	}

	// Island seeds are drawn from the caller's rng in island order, so
	// each island's private stream is a deterministic function of
	// (caller seed, island index).
	islands := make([]*geqoIsland, nw)
	gensLeft := make([]int, nw)
	for i := range islands {
		p := pool / nw
		if i < pool%nw {
			p++
		}
		islands[i] = newGeqoIsland(t, rand.New(rand.NewSource(rng.Int63())), p)
		gensLeft[i] = gens / nw
		if i < gens%nw {
			gensLeft[i]++
		}
	}

	for e := 0; e < geqoMigrationEpochs; e++ {
		var wg sync.WaitGroup
		for i, is := range islands {
			chunk := gensLeft[i] / (geqoMigrationEpochs - e)
			gensLeft[i] -= chunk
			wg.Add(1)
			go func(is *geqoIsland, first bool, chunk int) {
				defer wg.Done()
				if first {
					is.init()
				}
				is.evolve(chunk)
			}(is, e == 0, chunk)
		}
		wg.Wait()
		if e < geqoMigrationEpochs-1 {
			// Ring migration: island i's best is offered to island i+1.
			// Bests are snapshotted first so the exchange is order-free.
			migrants := make([]geqoMember, nw)
			for i, is := range islands {
				b := is.best()
				migrants[i] = geqoMember{order: append([]int(nil), b.order...), cost: b.cost}
			}
			for i := range islands {
				islands[(i+1)%nw].inject(migrants[i].order, migrants[i].cost)
			}
		}
	}

	best := islands[0].best()
	explored := islands[0].explored
	for _, is := range islands[1:] {
		explored += is.explored
		if b := is.best(); b.cost < best.cost {
			best = b
		}
	}
	return &Result{
		Order:         append([]int(nil), best.order...),
		Cost:          best.cost,
		PlansExplored: explored,
		Elapsed:       time.Since(start),
		Algorithm:     "geqo",
	}, nil
}
