package pgplanner

import (
	"fmt"
	"math"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

// BushyResult is the outcome of the bushy dynamic program: a full join
// tree rather than a linear order.
type BushyResult struct {
	// Plan is the chosen join tree over the query atoms (no
	// projections — cost-based planners in the paper's experiments never
	// push projections; that is the point).
	Plan plan.Node
	// Cost is the model cost of the tree.
	Cost float64
	// PlansExplored counts subset-pair combinations evaluated.
	PlansExplored int64
	// Elapsed is the planning wall-clock time.
	Elapsed time.Duration
}

// BushyDP runs the System-R dynamic program over *bushy* join trees:
// every subset of atoms is built from every partition into two smaller
// subsets. This is the search space PostgreSQL's standard (non-GEQO)
// planner explores, 3^m subset pairs instead of the left-deep 2^m·m —
// an even steeper compile-time curve for Figure 2's phenomenon. Limited
// to 16 atoms.
func BushyDP(q *cq.Query, cm *CostModel) (*BushyResult, error) {
	m := len(q.Atoms)
	if m == 0 {
		return nil, fmt.Errorf("pgplanner: query has no atoms")
	}
	if m > 16 {
		return nil, fmt.Errorf("pgplanner: bushy DP infeasible for %d atoms (limit 16)", m)
	}
	start := time.Now()
	size := 1 << uint(m)
	bestCost := make([]float64, size)
	bestRows := make([]float64, size)
	split := make([]int, size) // winning left subset; 0 for singletons
	explored := int64(0)

	subsetOf := func(s int) []int {
		out := make([]int, 0, m)
		for a := 0; a < m; a++ {
			if s>>uint(a)&1 == 1 {
				out = append(out, a)
			}
		}
		return out
	}

	for s := 1; s < size; s++ {
		if s&(s-1) == 0 {
			var a int
			for a = 0; s>>uint(a)&1 == 0; a++ {
			}
			base := float64(cm.BaseRows[q.Atoms[a].Rel])
			if base <= 0 {
				base = 1
			}
			bestCost[s] = 0
			bestRows[s] = base
			continue
		}
		bestCost[s] = math.Inf(1)
		rows := cm.Estimate(q, subsetOf(s))
		bestRows[s] = rows
		// Enumerate proper sub-subsets as the left side; take each
		// unordered pair once by requiring left < complement.
		for l := (s - 1) & s; l > 0; l = (l - 1) & s {
			r := s &^ l
			if l > r {
				continue
			}
			explored++
			stepCost := math.Min(bestRows[l], bestRows[r]) +
				math.Max(bestRows[l], bestRows[r]) + rows
			c := bestCost[l] + bestCost[r] + stepCost
			if c < bestCost[s] {
				bestCost[s] = c
				split[s] = l
			}
		}
	}

	var build func(s int) plan.Node
	build = func(s int) plan.Node {
		if s&(s-1) == 0 {
			var a int
			for a = 0; s>>uint(a)&1 == 0; a++ {
			}
			return &plan.Scan{Atom: q.Atoms[a]}
		}
		l := split[s]
		return &plan.Join{Left: build(l), Right: build(s &^ l)}
	}
	root := build(size - 1)
	return &BushyResult{
		Plan:          root,
		Cost:          bestCost[size-1],
		PlansExplored: explored,
		Elapsed:       time.Since(start),
	}, nil
}
