package pgplanner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
)

func colorSetup(t *testing.T, g *graph.Graph) (*cq.Query, cq.Database, *CostModel) {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	return q, db, NewCostModel(db)
}

func TestNewCostModelStatistics(t *testing.T) {
	db := instance.ColorDatabase(3)
	cm := NewCostModel(db)
	if cm.BaseRows["edge"] != 6 {
		t.Fatalf("edge rows = %d, want 6", cm.BaseRows["edge"])
	}
	d := cm.Distinct["edge"]
	if len(d) != 2 || d[0] != 3 || d[1] != 3 {
		t.Fatalf("edge distinct = %v, want [3 3]", d)
	}
}

func TestEstimateIndependence(t *testing.T) {
	q, _, cm := colorSetup(t, graph.Path(3)) // edge(0,1), edge(1,2)
	// One atom: base cardinality.
	if got := cm.Estimate(q, []int{0}); got != 6 {
		t.Fatalf("single-atom estimate = %f, want 6", got)
	}
	// Two atoms sharing one variable: 6*6/3 = 12 (the true join size).
	if got := cm.Estimate(q, []int{0, 1}); math.Abs(got-12) > 1e-9 {
		t.Fatalf("two-atom estimate = %f, want 12", got)
	}
}

func TestDPFindsConnectedOrder(t *testing.T) {
	// A path query: the optimal left-deep order avoids cross products.
	q, _, cm := colorSetup(t, graph.Path(8))
	res, err := DP(q, cm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "dp" {
		t.Fatalf("algorithm = %s", res.Algorithm)
	}
	// The chosen order must never introduce a cross product: each atom
	// after the first shares a variable with the prefix.
	seen := map[cq.Var]bool{}
	for _, v := range q.Atoms[res.Order[0]].Args {
		seen[v] = true
	}
	for _, i := range res.Order[1:] {
		shares := false
		for _, v := range q.Atoms[i].Args {
			if seen[v] {
				shares = true
			}
		}
		if !shares {
			t.Fatalf("DP order %v has a cross product at atom %d", res.Order, i)
		}
		for _, v := range q.Atoms[i].Args {
			seen[v] = true
		}
	}
	// Cost of DP's order is no worse than the straightforward order.
	id := make([]int, len(q.Atoms))
	for i := range id {
		id[i] = i
	}
	sfCost, _ := leftDeepCost(q, cm, id)
	if res.Cost > sfCost+1e-9 {
		t.Fatalf("DP cost %f above straightforward %f", res.Cost, sfCost)
	}
}

func TestDPExploredGrowsExponentially(t *testing.T) {
	// Figure 2's phenomenon: compile effort blows up with query size.
	q5, _, cm := colorSetup(t, graph.Path(6))  // 5 atoms
	q10, _, _ := colorSetup(t, graph.Path(11)) // 10 atoms
	r5, err := DP(q5, cm)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := DP(q10, cm)
	if err != nil {
		t.Fatal(err)
	}
	if r10.PlansExplored < 16*r5.PlansExplored {
		t.Fatalf("explored(10 atoms)=%d not ≫ explored(5 atoms)=%d",
			r10.PlansExplored, r5.PlansExplored)
	}
}

func TestDPRejectsHugeQueries(t *testing.T) {
	q, _, cm := colorSetup(t, graph.Path(30))
	if _, err := DP(q, cm); err == nil {
		t.Fatal("DP accepted 29 atoms")
	}
}

func TestGEQOProducesValidPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.Random(15, 45, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, _, cm := colorSetup(t, g)
	res, err := GEQO(q, cm, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "geqo" {
		t.Fatalf("algorithm = %s", res.Algorithm)
	}
	seen := make([]bool, len(q.Atoms))
	for _, i := range res.Order {
		if i < 0 || i >= len(seen) || seen[i] {
			t.Fatalf("GEQO order is not a permutation: %v", res.Order)
		}
		seen[i] = true
	}
	if res.PlansExplored == 0 {
		t.Fatal("no plans explored")
	}
}

func TestGEQOImprovesOverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := graph.Random(14, 42, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, _, cm := colorSetup(t, g)
	res, err := GEQO(q, cm, rng, Options{PoolSize: 128, Generations: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Median random order cost should exceed GEQO's chosen cost.
	worse := 0
	for i := 0; i < 50; i++ {
		c, _ := leftDeepCost(q, cm, rng.Perm(len(q.Atoms)))
		if c >= res.Cost {
			worse++
		}
	}
	if worse < 40 {
		t.Fatalf("GEQO result (cost %g) beats only %d/50 random orders", res.Cost, worse)
	}
}

func TestPlanThresholdSwitch(t *testing.T) {
	qSmall, _, cm := colorSetup(t, graph.Path(6))
	rng := rand.New(rand.NewSource(7))
	r, err := Plan(qSmall, cm, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "dp" {
		t.Fatalf("small query used %s, want dp", r.Algorithm)
	}
	g, err := graph.Random(12, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	qBig, _, _ := colorSetup(t, g)
	r, err = Plan(qBig, cm, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "geqo" {
		t.Fatalf("30-atom query used %s, want geqo", r.Algorithm)
	}
}

func TestNaivePlanExecutesCorrectly(t *testing.T) {
	// The planner's order fed into a straightforward-shaped plan gives
	// the same answers as the oracle (the naive method end to end).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(3)
		g, err := graph.Random(n, n+rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, db, cm := colorSetup(t, g)
		res, err := Plan(q, cm, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pq, err := q.Permute(res.Order)
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]plan.Node, len(pq.Atoms))
		for i := range pq.Atoms {
			nodes[i] = &plan.Scan{Atom: pq.Atoms[i]}
		}
		p := &plan.Project{Child: plan.LeftDeepJoin(nodes), Cols: q.Free}
		got, err := engine.Exec(p, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Rel.Equal(want) {
			t.Fatalf("trial %d: naive plan disagrees with oracle", trial)
		}
	}
}

func TestQuickGEQOAlwaysPermutation(t *testing.T) {
	db := instance.ColorDatabase(3)
	cm := NewCostModel(db)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		m := n + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil || g.M() == 0 {
			return err == nil
		}
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			return false
		}
		res, err := GEQO(q, cm, rng, Options{PoolSize: 16, Generations: 32})
		if err != nil {
			return false
		}
		seen := make([]bool, len(q.Atoms))
		for _, i := range res.Order {
			if i < 0 || i >= len(seen) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.GEQOThreshold != 12 || o.PoolCap != 1<<14 {
		t.Fatalf("defaults: %+v", o)
	}
}
