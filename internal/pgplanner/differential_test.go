package pgplanner

// Pinned pre-rewrite implementations of the planner's three hot paths —
// the per-subset map-based Estimate recomputation in the DP and the
// allocating map-based genetic search — used (a) as differential oracles
// proving the flat-table rewrite returns bit-identical orders, costs,
// and explored counts, and (b) as the map baselines the planner
// microbenchmarks compare against.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

// estimateMapBaseline is the pre-rewrite CostModel.Estimate, including
// its stale-occurrence behaviour (occ[v] overwritten with the latest
// column's distinct count instead of the running max).
func estimateMapBaseline(cm *CostModel, q *cq.Query, atomSet []int) float64 {
	rows := 1.0
	occ := make(map[cq.Var]float64)
	for _, i := range atomSet {
		a := q.Atoms[i]
		base := cm.BaseRows[a.Rel]
		if base <= 0 {
			base = 1
		}
		rows *= float64(base)
		for col, v := range a.Args {
			d := cm.columnDistinct(a.Rel, col)
			if prev, ok := occ[v]; ok {
				sel := 1 / math.Max(prev, d)
				rows *= sel
			}
			occ[v] = d
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// leftDeepCostMapBaseline is the pre-rewrite leftDeepCost (stale
// occurrence tracking, fresh map per call).
func leftDeepCostMapBaseline(q *cq.Query, cm *CostModel, order []int) (float64, int64) {
	rows := 1.0
	cost := 0.0
	occ := make(map[cq.Var]float64, len(order)*2)
	for step, i := range order {
		a := q.Atoms[i]
		base := float64(cm.BaseRows[a.Rel])
		if base <= 0 {
			base = 1
		}
		newRows := rows * base
		for col, v := range a.Args {
			d := cm.columnDistinct(a.Rel, col)
			if prev, ok := occ[v]; ok {
				newRows *= 1 / math.Max(prev, d)
			}
			occ[v] = d
		}
		if newRows < 1 {
			newRows = 1
		}
		if step > 0 {
			cost += math.Min(rows, base) + math.Max(rows, base) + newRows
		}
		rows = newRows
	}
	return cost, int64(len(order))
}

// dpMapBaseline is the pre-rewrite DP: a full Estimate recomputation
// (map allocation and subset slice) per subset state.
func dpMapBaseline(q *cq.Query, cm *CostModel) (*Result, error) {
	m := len(q.Atoms)
	if m == 0 || m > 24 {
		return nil, fmt.Errorf("dpMapBaseline: bad atom count %d", m)
	}
	size := 1 << uint(m)
	bestCost := make([]float64, size)
	bestRows := make([]float64, size)
	lastAtom := make([]int8, size)
	explored := int64(0)
	for s := 1; s < size; s++ {
		bestCost[s] = math.Inf(1)
		if s&(s-1) == 0 {
			var a int
			for a = 0; s>>uint(a)&1 == 0; a++ {
			}
			base := float64(cm.BaseRows[q.Atoms[a].Rel])
			if base <= 0 {
				base = 1
			}
			bestCost[s] = 0
			bestRows[s] = base
			lastAtom[s] = int8(a)
			continue
		}
		subset := make([]int, 0, m)
		for a := 0; a < m; a++ {
			if s>>uint(a)&1 == 1 {
				subset = append(subset, a)
			}
		}
		rows := estimateMapBaseline(cm, q, subset)
		bestRows[s] = rows
		for _, a := range subset {
			prev := s &^ (1 << uint(a))
			explored++
			base := float64(cm.BaseRows[q.Atoms[a].Rel])
			if base <= 0 {
				base = 1
			}
			stepCost := math.Min(bestRows[prev], base) + math.Max(bestRows[prev], base) + rows
			c := bestCost[prev] + stepCost
			if c < bestCost[s] {
				bestCost[s] = c
				lastAtom[s] = int8(a)
			}
		}
	}
	order := make([]int, m)
	s := size - 1
	for i := m - 1; i >= 0; i-- {
		a := int(lastAtom[s])
		order[i] = a
		s &^= 1 << uint(a)
	}
	return &Result{Order: order, Cost: bestCost[size-1], PlansExplored: explored, Algorithm: "dp"}, nil
}

// geqoMapBaseline is the pre-rewrite serial GEQO: map-based cost
// evaluation and a fresh order copy per pool improvement.
func geqoMapBaseline(q *cq.Query, cm *CostModel, rng *rand.Rand, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	m := len(q.Atoms)
	if m == 0 {
		return nil, fmt.Errorf("geqoMapBaseline: query has no atoms")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	pool := opt.PoolSize
	if pool <= 0 {
		shift := m/2 + 1
		if shift > 30 {
			shift = 30
		}
		pool = 1 << uint(shift)
		if pool > opt.PoolCap {
			pool = opt.PoolCap
		}
	}
	if pool < 4 {
		pool = 4
	}
	gens := opt.Generations
	if gens <= 0 {
		gens = pool
	}
	type member struct {
		order []int
		cost  float64
	}
	explored := int64(0)
	eval := func(order []int) float64 {
		c, n := leftDeepCostMapBaseline(q, cm, order)
		explored += n
		return c
	}
	members := make([]member, pool)
	for i := range members {
		ord := rng.Perm(m)
		members[i] = member{order: ord, cost: eval(ord)}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].cost < members[j].cost })
	pick := func() int {
		u := rng.Float64()
		return int(u * u * float64(pool))
	}
	child := make([]int, m)
	used := make([]bool, m)
	for g := 0; g < gens; g++ {
		p1 := members[pick()].order
		p2 := members[pick()].order
		lo := rng.Intn(m)
		hi := lo + rng.Intn(m-lo)
		for i := range used {
			used[i] = false
		}
		for i := lo; i <= hi; i++ {
			child[i] = p1[i]
			used[p1[i]] = true
		}
		j := 0
		for _, a := range p2 {
			if used[a] {
				continue
			}
			for j >= lo && j <= hi {
				j++
			}
			child[j] = a
			j++
			for j >= lo && j <= hi {
				j++
			}
		}
		if rng.Intn(4) == 0 {
			i1, i2 := rng.Intn(m), rng.Intn(m)
			child[i1], child[i2] = child[i2], child[i1]
		}
		c := eval(child)
		if c < members[pool-1].cost {
			members[pool-1] = member{order: append([]int(nil), child...), cost: c}
			for i := pool - 1; i > 0 && members[i].cost < members[i-1].cost; i-- {
				members[i], members[i-1] = members[i-1], members[i]
			}
		}
	}
	best := members[0]
	return &Result{
		Order:         append([]int(nil), best.order...),
		Cost:          best.cost,
		PlansExplored: explored,
		Algorithm:     "geqo",
	}, nil
}

func sameResult(a, b *Result) bool {
	if a.Cost != b.Cost || a.PlansExplored != b.PlansExplored || len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	return true
}

// figure2Queries generates the 3-SAT queries of the Figure 2 workload
// (5 variables, density swept) exactly as CompileTimeScaling does.
func figure2Queries(t testing.TB) []struct {
	q  *cq.Query
	cm *CostModel
} {
	t.Helper()
	var out []struct {
		q  *cq.Query
		cm *CostModel
	}
	const nvars = 5
	for _, d := range []float64{1, 2, 3, 4, 5, 6, 7, 8} {
		m := int(d*float64(nvars) + 0.5)
		if m < 1 {
			m = 1
		}
		for rep := 0; rep < 3; rep++ {
			rng := rand.New(rand.NewSource(1 + int64(rep)*104729 + int64(d*1000)))
			sat, err := instance.RandomSAT(3, nvars, m, rng)
			if err != nil {
				t.Fatal(err)
			}
			vars := instance.SATVariablesInClauses(sat)
			q, db, err := instance.SATQuery(sat, vars[:1])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, struct {
				q  *cq.Query
				cm *CostModel
			}{q, NewCostModel(db)})
		}
	}
	return out
}

// TestDPDifferentialFigure2 pins the rewrite: on the Figure 2 workload
// the incremental bitset DP returns bit-identical Order, Cost, and
// PlansExplored to the pre-rewrite map-based DP.
func TestDPDifferentialFigure2(t *testing.T) {
	for _, w := range figure2Queries(t) {
		if len(w.q.Atoms) > 14 {
			continue // keep the exhaustive search fast
		}
		oldRes, err := dpMapBaseline(w.q, w.cm)
		if err != nil {
			t.Fatal(err)
		}
		newRes, err := DP(w.q, w.cm)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(oldRes, newRes) {
			t.Fatalf("DP diverged on %v:\nold: order=%v cost=%v explored=%d\nnew: order=%v cost=%v explored=%d",
				w.q, oldRes.Order, oldRes.Cost, oldRes.PlansExplored,
				newRes.Order, newRes.Cost, newRes.PlansExplored)
		}
	}
}

// TestGEQODifferentialFigure2 pins the serial genetic search: for the
// GEQO-sized queries of the Figure 2 workload, the island implementation
// at Workers=1 consumes the same rng stream and returns bit-identical
// results to the pre-rewrite allocating implementation.
func TestGEQODifferentialFigure2(t *testing.T) {
	opt := Options{PoolSize: 64, Generations: 256}
	for _, w := range figure2Queries(t) {
		if len(w.q.Atoms) <= 12 {
			continue
		}
		oldRes, err := geqoMapBaseline(w.q, w.cm, rand.New(rand.NewSource(42)), opt)
		if err != nil {
			t.Fatal(err)
		}
		newRes, err := GEQO(w.q, w.cm, rand.New(rand.NewSource(42)), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(oldRes, newRes) {
			t.Fatalf("GEQO diverged on %d atoms:\nold: cost=%v explored=%d order=%v\nnew: cost=%v explored=%d order=%v",
				len(w.q.Atoms), oldRes.Cost, oldRes.PlansExplored, oldRes.Order,
				newRes.Cost, newRes.PlansExplored, newRes.Order)
		}
	}
}

// TestGEQODifferentialDerivedPool covers the derived (exponential) pool
// sizing path on a larger random query.
func TestGEQODifferentialDerivedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := graph.Random(16, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCostModel(instance.ColorDatabase(3))
	oldRes, err := geqoMapBaseline(q, cm, rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := GEQO(q, cm, rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(oldRes, newRes) {
		t.Fatalf("derived-pool GEQO diverged: old cost=%v explored=%d, new cost=%v explored=%d",
			oldRes.Cost, oldRes.PlansExplored, newRes.Cost, newRes.PlansExplored)
	}
}

// TestEvalOrderMatchesLeftDeepCost checks the allocation-free evaluator
// against the reference leftDeepCost on random orders, including a cost
// model with non-uniform distinct counts (where the running-max
// occurrence rule has bite).
func TestEvalOrderMatchesLeftDeepCost(t *testing.T) {
	cm := &CostModel{
		BaseRows: map[string]int{"r": 100, "s": 50, "t": 80},
		Distinct: map[string][]int{
			"r": {4, 20},
			"s": {7, 3},
			"t": {12, 5},
		},
		DefaultDistinct: 10,
	}
	q := &cq.Query{Atoms: []cq.Atom{
		{Rel: "r", Args: []cq.Var{0, 1}},
		{Rel: "s", Args: []cq.Var{1, 2}},
		{Rel: "t", Args: []cq.Var{1, 3}},
		{Rel: "r", Args: []cq.Var{2, 3}},
		{Rel: "s", Args: []cq.Var{3, 0}},
	}}
	ev := newCostTables(q, cm).newEvaluator()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		order := rng.Perm(len(q.Atoms))
		want, _ := leftDeepCost(q, cm, order)
		if got := ev.evalOrder(order); got != want {
			t.Fatalf("trial %d order %v: evalOrder=%v leftDeepCost=%v", trial, order, got, want)
		}
	}
}

// TestExtendRawMatchesEstimate checks the DP's incremental subset
// estimates against the exported Estimate on random subsets, again with
// non-uniform distinct counts exercising the occurrence-table scan.
func TestExtendRawMatchesEstimate(t *testing.T) {
	cm := &CostModel{
		BaseRows: map[string]int{"r": 9, "s": 30},
		Distinct: map[string][]int{
			"r": {2, 9},
			"s": {5, 16},
		},
		DefaultDistinct: 10,
	}
	q := &cq.Query{Atoms: []cq.Atom{
		{Rel: "r", Args: []cq.Var{0, 1}},
		{Rel: "s", Args: []cq.Var{1, 2}},
		{Rel: "r", Args: []cq.Var{2, 0}},
		{Rel: "s", Args: []cq.Var{0, 3}},
		{Rel: "r", Args: []cq.Var{3, 1}},
		{Rel: "s", Args: []cq.Var{2, 3}},
	}}
	tab := newCostTables(q, cm)
	m := len(q.Atoms)
	raw := make([]float64, 1<<uint(m))
	for s := 1; s < 1<<uint(m); s++ {
		if s&(s-1) == 0 {
			var a int
			for a = 0; s>>uint(a)&1 == 0; a++ {
			}
			raw[s] = tab.base[a]
		} else {
			hi := 0
			for a := 0; a < m; a++ {
				if s>>uint(a)&1 == 1 {
					hi = a
				}
			}
			raw[s] = tab.extendRaw(raw[s&^(1<<uint(hi))], s&^(1<<uint(hi)), hi)
		}
		subset := []int{}
		for a := 0; a < m; a++ {
			if s>>uint(a)&1 == 1 {
				subset = append(subset, a)
			}
		}
		want := cm.Estimate(q, subset)
		got := raw[s]
		if got < 1 {
			got = 1
		}
		if got != want {
			t.Fatalf("subset %b: incremental=%v Estimate=%v", s, got, want)
		}
	}
}
