package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeDedupAndOrientation(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Fatal("first AddEdge returned false")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("reversed duplicate accepted")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Fatal("HasEdge must be orientation-insensitive")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge found absent edge")
	}
}

func TestAddEdgePanics(t *testing.T) {
	for _, c := range []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"out of range", 0, 9},
		{"negative", -1, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			New(3).AddEdge(c.u, c.v)
		}()
	}
}

func TestRandomExactEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := Random(20, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 20 || g.M() != 60 {
		t.Fatalf("got n=%d m=%d", g.N, g.M())
	}
	// No duplicates in either orientation, no self-loops.
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		if e[0] == e[1] {
			t.Fatal("self-loop generated")
		}
		k := norm(e[0], e[1])
		if seen[k] {
			t.Fatal("duplicate edge generated")
		}
		seen[k] = true
	}
}

func TestRandomRejectsImpossible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(4, 7, rng); err == nil {
		t.Fatal("accepted m > n(n-1)/2")
	}
	if _, err := Random(1, 1, rng); err == nil {
		t.Fatal("accepted edges with single vertex")
	}
	if g, err := Random(6, 15, rng); err != nil || g.M() != 15 {
		t.Fatalf("complete graph generation failed: %v", err)
	}
}

func TestRandomDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RandomDensity(20, 3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 60 {
		t.Fatalf("density 3.0 on 20 vertices: m = %d, want 60", g.M())
	}
	if d := g.Density(); d != 3.0 {
		t.Fatalf("Density = %f", d)
	}
}

func TestPathCycleComplete(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || p.N != 5 {
		t.Fatalf("path: %v", p)
	}
	if !p.Connected() {
		t.Fatal("path must be connected")
	}
	c := Cycle(5)
	if c.M() != 5 {
		t.Fatalf("cycle: %v", c)
	}
	k := Complete(5)
	if k.M() != 10 || k.MaxDegree() != 4 {
		t.Fatalf("complete: %v", k)
	}
}

func TestWheel(t *testing.T) {
	w := Wheel(5)
	if w.N != 6 || w.M() != 10 {
		t.Fatalf("wheel: %v", w)
	}
	deg := w.Degrees()
	if deg[0] != 5 {
		t.Fatalf("hub degree = %d, want 5", deg[0])
	}
	for i := 1; i <= 5; i++ {
		if deg[i] != 3 {
			t.Fatalf("rim degree = %d, want 3", deg[i])
		}
	}
}

func TestAugmentedPathShape(t *testing.T) {
	g := AugmentedPath(5)
	if g.N != 10 || g.M() != 9 {
		t.Fatalf("augmented path: %v", g)
	}
	if !g.Connected() {
		t.Fatal("augmented path must be connected")
	}
	deg := g.Degrees()
	// Dangling vertices have degree 1.
	for i := 5; i < 10; i++ {
		if deg[i] != 1 {
			t.Fatalf("dangling vertex %d degree = %d", i, deg[i])
		}
	}
	// Path endpoints have degree 2 (one path edge + dangle).
	if deg[0] != 2 || deg[4] != 2 {
		t.Fatalf("endpoint degrees = %d,%d, want 2,2", deg[0], deg[4])
	}
	// Interior path vertices have degree 3.
	for i := 1; i < 4; i++ {
		if deg[i] != 3 {
			t.Fatalf("interior vertex %d degree = %d, want 3", i, deg[i])
		}
	}
}

func TestLadderShape(t *testing.T) {
	g := Ladder(4)
	if g.N != 8 || g.M() != 10 {
		t.Fatalf("ladder: %v", g)
	}
	if !g.Connected() {
		t.Fatal("ladder must be connected")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("ladder max degree = %d, want 3", g.MaxDegree())
	}
	// Rungs exist.
	for i := 0; i < 4; i++ {
		if !g.HasEdge(i, 4+i) {
			t.Fatalf("missing rung %d", i)
		}
	}
}

func TestAugmentedLadderShape(t *testing.T) {
	g := AugmentedLadder(4)
	if g.N != 16 || g.M() != 18 {
		t.Fatalf("augmented ladder: %v", g)
	}
	if !g.Connected() {
		t.Fatal("augmented ladder must be connected")
	}
	deg := g.Degrees()
	for i := 8; i < 16; i++ {
		if deg[i] != 1 {
			t.Fatalf("dangling vertex %d degree = %d", i, deg[i])
		}
	}
}

func TestAugmentedCircularLadderShape(t *testing.T) {
	g := AugmentedCircularLadder(4)
	if g.N != 16 || g.M() != 20 {
		t.Fatalf("augmented circular ladder: %v", g)
	}
	if !g.HasEdge(3, 0) || !g.HasEdge(7, 4) {
		t.Fatal("rail-closing edges missing")
	}
	// All ladder vertices now have degree 4 (two rail + rung + dangle).
	deg := g.Degrees()
	for i := 0; i < 8; i++ {
		if deg[i] != 4 {
			t.Fatalf("ladder vertex %d degree = %d, want 4", i, deg[i])
		}
	}
}

func TestConnectedDetectsDisconnection(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Fatal("trivial graphs must be connected")
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path", Path(10), 1},
		{"cycle", Cycle(10), 2},
		{"K5", Complete(5), 4},
		{"ladder", Ladder(6), 2},
		{"augmented path", AugmentedPath(6), 1},
		{"edgeless", New(5), 0},
	}
	for _, c := range cases {
		if got := c.g.Degeneracy(); got != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone shares edge set")
	}
}

func TestQuickRandomGraphInvariants(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw%30) + 5
		density := float64(dRaw%70)/10 + 0.5
		m := int(density*float64(n) + 0.5)
		if m > n*(n-1)/2 {
			return true // impossible parameters are rejected elsewhere
		}
		rng := rand.New(rand.NewSource(seed))
		g, err := Random(n, m, rng)
		if err != nil {
			return false
		}
		if g.M() != m {
			return false
		}
		seen := map[[2]int]bool{}
		for _, e := range g.Edges {
			if e[0] == e[1] || e[0] < 0 || e[1] >= n {
				return false
			}
			k := norm(e[0], e[1])
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	adj := g.Adjacency()
	if len(adj[0]) != 3 || adj[0][0] != 1 || adj[0][2] != 3 {
		t.Fatalf("adjacency not sorted: %v", adj[0])
	}
}
