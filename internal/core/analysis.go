package core

import (
	"fmt"
	"strings"

	"projpush/internal/cq"
	"projpush/internal/hypertree"
	"projpush/internal/joingraph"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// StructuralReport collects the structural measures the paper's theory
// revolves around, for one query: the join graph, treewidth bounds, the
// induced widths of the order heuristics, the hypertree-width estimate,
// and the plan width each optimization method achieves. It is the
// "explain" of structural optimization: everything here is computed from
// schemas alone, without touching data.
type StructuralReport struct {
	// Vars and Atoms describe the query.
	Vars, Atoms int
	// JoinGraphEdges is the edge count of the join graph.
	JoinGraphEdges int
	// TreewidthLower is the degeneracy lower bound on treewidth.
	TreewidthLower int
	// TreewidthExact is the exact treewidth, or -1 when the join graph
	// exceeds the exact solver's limit.
	TreewidthExact int
	// InducedWidths maps each order heuristic to the induced width of
	// its elimination order (Theorem 2: the optimum equals treewidth).
	InducedWidths map[OrderHeuristic]int
	// HypertreeWidth is the greedy generalized-hypertree-width estimate.
	HypertreeWidth int
	// MethodWidths maps each optimization method to its plan width
	// (Theorem 1: the optimum equals treewidth+1).
	MethodWidths map[Method]int
}

// AnalyzeStructure computes the report. Exact treewidth is attempted
// only when the join graph has at most treedec.MaxExactVertices vertices.
func AnalyzeStructure(q *cq.Query) (*StructuralReport, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	jg := joingraph.Build(q)
	r := &StructuralReport{
		Vars:           q.NumVars(),
		Atoms:          len(q.Atoms),
		JoinGraphEdges: jg.G.M(),
		TreewidthLower: jg.G.Degeneracy(),
		TreewidthExact: -1,
		InducedWidths:  make(map[OrderHeuristic]int),
		MethodWidths:   make(map[Method]int),
	}
	if jg.G.N <= treedec.MaxExactVertices {
		tw, _, err := treedec.Exact(jg.G)
		if err == nil {
			r.TreewidthExact = tw
		}
	}
	for _, h := range []OrderHeuristic{OrderMCS, OrderMinFill, OrderMinDegree} {
		_, elim, err := EliminationOrder(q, h, nil)
		if err != nil {
			return nil, err
		}
		r.InducedWidths[h] = treedec.InducedWidth(jg.G, elim)
	}
	hw, _, err := hypertree.Estimate(q)
	if err != nil {
		return nil, err
	}
	r.HypertreeWidth = hw
	for _, m := range Methods {
		p, err := BuildPlan(m, q, nil)
		if err != nil {
			return nil, err
		}
		r.MethodWidths[m] = plan.Analyze(p).Width
	}
	return r, nil
}

// String renders the report as an aligned block.
func (r *StructuralReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %d atoms, %d variables; join graph: %d edges\n",
		r.Atoms, r.Vars, r.JoinGraphEdges)
	if r.TreewidthExact >= 0 {
		fmt.Fprintf(&b, "treewidth: %d (degeneracy lower bound %d)\n",
			r.TreewidthExact, r.TreewidthLower)
	} else {
		fmt.Fprintf(&b, "treewidth: >= %d (exact solver skipped)\n", r.TreewidthLower)
	}
	fmt.Fprintf(&b, "induced widths: mcs=%d minfill=%d mindegree=%d (optimum = treewidth)\n",
		r.InducedWidths[OrderMCS], r.InducedWidths[OrderMinFill], r.InducedWidths[OrderMinDegree])
	fmt.Fprintf(&b, "hypertree width estimate: %d\n", r.HypertreeWidth)
	fmt.Fprintf(&b, "plan widths: straightforward=%d earlyprojection=%d reordering=%d bucketelimination=%d (optimum = treewidth+1)\n",
		r.MethodWidths[MethodStraightforward], r.MethodWidths[MethodEarlyProjection],
		r.MethodWidths[MethodReordering], r.MethodWidths[MethodBucketElimination])
	return b.String()
}
