package core

import (
	"fmt"
	"math/rand"

	"projpush/internal/cq"
	"projpush/internal/pgplanner"
	"projpush/internal/plan"
)

// HybridChoice is the outcome of the hybrid optimizer: the chosen plan,
// which candidate produced it, and the model estimate that won.
type HybridChoice struct {
	Plan      plan.Node
	Candidate string
	Estimate  pgplanner.PlanEstimate
}

// Hybrid combines structural and cost-based optimization — the paper's
// fourth future-work item ("structural query optimization needs to be
// combined with cost-based optimization"). Structural rewriting
// generates a small portfolio of projection-pushed candidate plans
// (early projection, greedy reordering, bucket elimination under MCS and
// min-fill orders, and the local-search-improved order); the cost model
// then ranks the portfolio and the cheapest plan wins. Unlike the
// pure cost-based planner, the search space is a handful of plans, so
// compile time stays trivial; unlike pure structural optimization, data
// statistics get a vote.
func Hybrid(q *cq.Query, cm *pgplanner.CostModel, rng *rand.Rand) (*HybridChoice, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	type candidate struct {
		name  string
		build func() (plan.Node, error)
	}
	candidates := []candidate{
		{"earlyprojection", func() (plan.Node, error) { return EarlyProjection(q) }},
		{"reordering", func() (plan.Node, error) { return Reordering(q, rng) }},
		{"bucketelimination/mcs", func() (plan.Node, error) { return BucketElimination(q, rng) }},
		{"treedecomposition/minfill", func() (plan.Node, error) {
			return TreeDecompositionPlan(q, OrderMinFill, rng)
		}},
		{"bucketelimination/improved", func() (plan.Node, error) {
			return BucketEliminationImproved(q, 200, rng)
		}},
	}
	var best *HybridChoice
	for _, c := range candidates {
		p, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("core: hybrid candidate %s: %w", c.name, err)
		}
		est, err := cm.EstimatePlan(p)
		if err != nil {
			return nil, fmt.Errorf("core: hybrid candidate %s: %w", c.name, err)
		}
		if best == nil || est.Cost < best.Estimate.Cost {
			best = &HybridChoice{Plan: p, Candidate: c.name, Estimate: est}
		}
	}
	return best, nil
}
