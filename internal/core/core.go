// Package core implements the query-optimization methods the paper
// compares (Sections 3–5), all as pure plan constructions over
// conjunctive queries:
//
//   - Straightforward: join the atoms left-deep in the order given, with a
//     single final projection — no projection pushing (Section 3). The
//     naive method is the same plan shape with the join order chosen by a
//     cost-based planner (package pgplanner); use StraightforwardOrder
//     with that order.
//   - EarlyProjection: the same linear order, but each variable is
//     projected out immediately after its last occurrence joins
//     (Section 4).
//   - Reordering: a greedy atom permutation chosen to let variables be
//     projected as early as possible, then EarlyProjection (Section 4).
//   - BucketElimination: the constraint-satisfaction method of Section 5
//     under the maximum-cardinality-search variable order seeded with the
//     target schema; by Theorem 2 the optimal variable order achieves
//     intermediate arity treewidth+1.
//
// All constructors return plans that package plan validates and package
// engine executes; they differ only in join/projection structure, which
// is the paper's entire subject.
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// Method names a plan-construction strategy, as used by the experiment
// harness and CLIs.
type Method string

// The methods of the paper, in the order its figures present them.
const (
	MethodStraightforward   Method = "straightforward"
	MethodEarlyProjection   Method = "earlyprojection"
	MethodReordering        Method = "reordering"
	MethodBucketElimination Method = "bucketelimination"
)

// MethodYannakakis names the Yannakakis full-reducer execution strategy
// (engine.ExecYannakakis): semijoin-sweep the MCS join tree, then
// evaluate bag by bag. It is deliberately not in Methods — it is an
// execution strategy, not a plan shape; BuildPlan returns the
// tree-decomposition plan over the same join tree as its static surrogate
// for width admission and EXPLAIN, but executing that plan does not
// perform the reduction.
const MethodYannakakis Method = "yannakakis"

// MethodStream names the pipelined streaming execution strategy
// (engine.ExecStream): semijoin pushdown over the base relations, fused
// projection, and late materialization with live-byte accounting. Like
// MethodYannakakis it is an execution strategy, not a plan shape, so it is
// not in Methods; BuildPlan returns the early-projection plan as its
// static surrogate — the streaming engine lowers exactly that plan, with
// the pushdown and fusion applied at execution time.
const MethodStream Method = "stream"

// MethodWCOJ names the worst-case-optimal multiway join execution
// strategy (engine.ExecWCOJ): one global variable order, sorted per-atom
// indexes, and leapfrog intersection variable by variable, with total
// work inside the AGM output bound. Like MethodYannakakis and
// MethodStream it is an execution strategy, not a plan shape, so it is
// not in Methods; BuildPlan returns the bucket-elimination plan as its
// static surrogate — the same MCS variable order drives both, but the
// surrogate's width wildly overstates what the multiway join
// materializes on cyclic queries, which is exactly why the server admits
// wcoj routes on the AGM bound instead.
const MethodWCOJ Method = "wcoj"

// Methods lists all structural methods in presentation order.
var Methods = []Method{
	MethodStraightforward,
	MethodEarlyProjection,
	MethodReordering,
	MethodBucketElimination,
}

// BuildPlan constructs the plan for q under the named method. rng is used
// for the documented random tie-breaking of the reordering and
// bucket-elimination heuristics; nil means deterministic tie-breaking.
func BuildPlan(m Method, q *cq.Query, rng *rand.Rand) (plan.Node, error) {
	switch m {
	case MethodStraightforward:
		return Straightforward(q)
	case MethodEarlyProjection:
		return EarlyProjection(q)
	case MethodReordering:
		return Reordering(q, rng)
	case MethodBucketElimination:
		return BucketElimination(q, rng)
	case MethodYannakakis:
		// The static surrogate: same MCS join tree the full reducer
		// sweeps, lowered to a plan (no semijoin reduction).
		return TreeDecompositionPlan(q, OrderMCS, rng)
	case MethodStream:
		// The static surrogate: the early-projection plan the streaming
		// engine lowers (pushdown and fusion happen at execution time).
		return EarlyProjection(q)
	case MethodWCOJ:
		// The static surrogate: bucket elimination under the same MCS
		// variable order the leapfrog join descends (no multiway
		// intersection happens in the surrogate).
		return BucketElimination(q, rng)
	default:
		return nil, fmt.Errorf("core: unknown method %q", m)
	}
}

// Straightforward builds the paper's straightforward plan: a left-deep
// join of the atoms in query order and one final projection to the target
// schema. Intermediate arity grows to the number of variables.
func Straightforward(q *cq.Query) (plan.Node, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	nodes := make([]plan.Node, len(q.Atoms))
	for i := range q.Atoms {
		nodes[i] = &plan.Scan{Atom: q.Atoms[i]}
	}
	return &plan.Project{
		Child: plan.LeftDeepJoin(nodes),
		Cols:  append([]cq.Var(nil), q.Free...),
	}, nil
}

// StraightforwardOrder builds the straightforward plan after permuting the
// atoms by perm — the shape used for the naive method, whose join order
// comes from a cost-based planner.
func StraightforwardOrder(q *cq.Query, perm []int) (plan.Node, error) {
	pq, err := q.Permute(perm)
	if err != nil {
		return nil, err
	}
	return Straightforward(pq)
}

// EarlyProjection builds the early-projection plan of Section 4: atoms
// are joined in query order, and immediately after the join that consumes
// a variable's last occurrence, that variable is projected out (unless it
// is free). The projection keeps the live variables — exactly the
// max_occur construction of Section 6.1.
func EarlyProjection(q *cq.Query) (plan.Node, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	last := q.LastOccurrence() // free variables pinned past the end
	var cur plan.Node
	for i, a := range q.Atoms {
		if i == 0 {
			cur = &plan.Scan{Atom: a}
		} else {
			cur = &plan.Join{Left: cur, Right: &plan.Scan{Atom: a}}
		}
		attrs := cur.Attrs()
		keep := attrs[:0:0]
		for _, v := range attrs {
			if last[v] > i {
				keep = append(keep, v)
			}
		}
		if len(keep) < len(attrs) {
			cur = &plan.Project{Child: cur, Cols: keep}
		}
	}
	// All non-free variables have died; fix the column order to the
	// target schema.
	if !sameVarSet(cur.Attrs(), q.Free) || len(cur.Attrs()) != len(q.Free) {
		cur = &plan.Project{Child: cur, Cols: append([]cq.Var(nil), q.Free...)}
	}
	return cur, nil
}

// GreedyOrder computes the reordering heuristic of Section 4: it
// incrementally picks the next atom to maximize the number of its
// variables that occur only once among the remaining atoms (those die
// immediately); ties go to the atom sharing the fewest variables with the
// remaining atoms; further ties are broken randomly (by rng) or by lowest
// index (rng nil). It returns the atom permutation.
func GreedyOrder(q *cq.Query, rng *rand.Rand) []int {
	m := len(q.Atoms)
	remaining := make([]bool, m)
	counts := make(map[cq.Var]int)
	for i, a := range q.Atoms {
		remaining[i] = true
		for _, v := range a.Args {
			counts[v]++
		}
	}
	perm := make([]int, 0, m)
	for len(perm) < m {
		best := -1
		bestDying, bestShared := -1, int(^uint(0)>>1)
		var ties []int
		for i := 0; i < m; i++ {
			if !remaining[i] {
				continue
			}
			dying, shared := 0, 0
			for _, v := range q.Atoms[i].Args {
				if counts[v] == 1 {
					dying++
				} else {
					shared++
				}
			}
			switch {
			case best < 0 || dying > bestDying || (dying == bestDying && shared < bestShared):
				best, bestDying, bestShared = i, dying, shared
				ties = ties[:0]
				ties = append(ties, i)
			case dying == bestDying && shared == bestShared:
				ties = append(ties, i)
			}
		}
		if rng != nil && len(ties) > 1 {
			best = ties[rng.Intn(len(ties))]
		}
		remaining[best] = false
		for _, v := range q.Atoms[best].Args {
			counts[v]--
		}
		perm = append(perm, best)
	}
	return perm
}

// Reordering builds the reordering plan of Section 4: the greedy atom
// permutation followed by early projection.
func Reordering(q *cq.Query, rng *rand.Rand) (plan.Node, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	pq, err := q.Permute(GreedyOrder(q, rng))
	if err != nil {
		return nil, err
	}
	return EarlyProjection(pq)
}

// MCSVarOrder computes the paper's bucket-elimination variable order: a
// maximum-cardinality-search numbering of the join graph seeded with the
// target schema (Section 5). Buckets are processed from the last variable
// down to the first.
func MCSVarOrder(q *cq.Query, rng *rand.Rand) []cq.Var {
	jg := joingraph.Build(q)
	mcs := treedec.MCS(jg.G, jg.Vertices(q.Free), rng)
	return jg.VarSet(mcs)
}

// BucketElimination builds the bucket-elimination plan of Section 5 under
// the MCS variable order.
func BucketElimination(q *cq.Query, rng *rand.Rand) (plan.Node, error) {
	return BucketEliminationOrder(q, MCSVarOrder(q, rng))
}

// BucketEliminationOrder builds the bucket-elimination plan for an
// explicit variable order x1..xn (free variables must come first, since
// they are never eliminated; MCSVarOrder guarantees that). Each atom is
// placed in the bucket of its highest-numbered variable; buckets are
// processed from xn down: the bucket's relations are joined, the bucket
// variable is projected out, and the result moves to the bucket of its
// highest remaining variable. Relations whose variables are exhausted
// (possible only for disconnected queries) are joined into the final
// result as Boolean factors. By Theorem 2 the best order yields
// intermediate arity treewidth+1; the plan's width equals the induced
// width of the order plus one.
func BucketEliminationOrder(q *cq.Query, order []cq.Var) (plan.Node, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	num := make(map[cq.Var]int, len(order))
	for i, v := range order {
		if _, dup := num[v]; dup {
			return nil, fmt.Errorf("core: variable x%d repeated in order", v)
		}
		num[v] = i
	}
	for _, v := range q.Vars() {
		if _, ok := num[v]; !ok {
			return nil, fmt.Errorf("core: variable x%d missing from order", v)
		}
	}
	// Free variables must precede all eliminated variables.
	freeSet := make(map[cq.Var]bool, len(q.Free))
	for _, v := range q.Free {
		freeSet[v] = true
	}
	numFree := len(q.Free)
	for _, v := range q.Free {
		if num[v] >= numFree {
			return nil, fmt.Errorf("core: free variable x%d not at the front of the order", v)
		}
	}

	bucketOf := func(attrs []cq.Var) int {
		max := -1
		for _, v := range attrs {
			if num[v] > max {
				max = num[v]
			}
		}
		return max
	}

	buckets := make([][]plan.Node, len(order))
	var residual []plan.Node // factors with no variables left
	place := func(n plan.Node) {
		if b := bucketOf(n.Attrs()); b >= 0 {
			buckets[b] = append(buckets[b], n)
		} else {
			residual = append(residual, n)
		}
	}
	for i := range q.Atoms {
		place(&plan.Scan{Atom: q.Atoms[i]})
	}

	for i := len(order) - 1; i >= numFree; i-- {
		if len(buckets[i]) == 0 {
			continue
		}
		joined := plan.LeftDeepJoin(buckets[i])
		attrs := joined.Attrs()
		keep := make([]cq.Var, 0, len(attrs)-1)
		for _, v := range attrs {
			if v != order[i] {
				keep = append(keep, v)
			}
		}
		place(&plan.Project{Child: joined, Cols: keep})
	}

	// Join what remains in the free buckets plus Boolean residuals.
	var final []plan.Node
	for i := 0; i < numFree; i++ {
		final = append(final, buckets[i]...)
	}
	final = append(final, residual...)
	if len(final) == 0 {
		return nil, fmt.Errorf("core: bucket elimination consumed all relations (no free variables and empty residue)")
	}
	root := plan.LeftDeepJoin(final)
	if len(root.Attrs()) != len(q.Free) || !sameVarSet(root.Attrs(), q.Free) {
		root = &plan.Project{Child: root, Cols: append([]cq.Var(nil), q.Free...)}
	}
	return root, nil
}

// InducedWidth reports the maximum intermediate arity of the
// bucket-elimination process for q under the given variable order —
// computable from the schemas alone, without touching data (Section 5
// notes the process is data-independent). It equals the width of the
// bucket-elimination plan.
func InducedWidth(q *cq.Query, order []cq.Var) (int, error) {
	p, err := BucketEliminationOrder(q, order)
	if err != nil {
		return 0, err
	}
	return plan.Analyze(p).Width, nil
}

func sameVarSet(a, b []cq.Var) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]cq.Var(nil), a...)
	bs := append([]cq.Var(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
