package core

import (
	"fmt"
	"math/rand"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// ImproveOrder runs a hill-climbing local search over bucket-elimination
// variable orders, minimizing induced width — the practical face of the
// paper's "treewidth approximation" future-work item (Section 7). The
// search starts from the given order (typically MCS), repeatedly moves a
// random eliminated variable to a random new position, and keeps the
// move when the induced width does not increase (plateau moves allowed,
// so the search can traverse equal-width ridges). Free variables stay
// pinned at the front. iters bounds the number of candidate moves.
//
// The returned order is always at least as good as the start; by
// Theorem 2 the unreachable optimum is the join graph's treewidth.
func ImproveOrder(q *cq.Query, start []cq.Var, iters int, rng *rand.Rand) ([]cq.Var, int, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	jg := joingraph.Build(q)
	numFree := len(q.Free)
	if len(start) != len(jg.Vars) {
		return nil, 0, fmt.Errorf("core: order has %d variables, query has %d", len(start), len(jg.Vars))
	}

	width := func(order []cq.Var) int {
		// Bucket elimination processes from the back: the elimination
		// order is the reverse of the variable order, excluding the
		// never-eliminated free variables (they are processed last and
		// the final join over them is bounded by the free count, which
		// Theorem 1 folds into the target-schema clique).
		elim := make([]int, 0, len(order))
		for i := len(order) - 1; i >= 0; i-- {
			elim = append(elim, jg.Index[order[i]])
		}
		return treedec.InducedWidth(jg.G, elim)
	}

	cur := append([]cq.Var(nil), start...)
	curW := width(cur)
	best := append([]cq.Var(nil), cur...)
	bestW := curW

	if len(cur)-numFree >= 2 {
		cand := make([]cq.Var, len(cur))
		for it := 0; it < iters; it++ {
			// Move one eliminated variable to a new position (both
			// within the non-free suffix).
			from := numFree + rng.Intn(len(cur)-numFree)
			to := numFree + rng.Intn(len(cur)-numFree)
			if from == to {
				continue
			}
			copy(cand, cur)
			v := cand[from]
			if from < to {
				copy(cand[from:], cand[from+1:to+1])
			} else {
				copy(cand[to+1:], cand[to:from])
			}
			cand[to] = v
			if w := width(cand); w <= curW {
				cur, cand = cand, cur
				curW = w
				if w < bestW {
					bestW = w
					copy(best, cur)
				}
			}
		}
	}
	return best, bestW, nil
}

// BucketEliminationImproved plans with an MCS order refined by local
// search: MCSVarOrder followed by ImproveOrder with the given move
// budget.
func BucketEliminationImproved(q *cq.Query, iters int, rng *rand.Rand) (plan.Node, error) {
	order, _, err := ImproveOrder(q, MCSVarOrder(q, rng), iters, rng)
	if err != nil {
		return nil, err
	}
	return BucketEliminationOrder(q, order)
}
