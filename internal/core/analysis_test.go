package core

import (
	"strings"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/graph"
)

func TestAnalyzeStructureLadder(t *testing.T) {
	q := colorQuery(t, graph.Ladder(6))
	r, err := AnalyzeStructure(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vars != 12 || r.Atoms != 16 {
		t.Fatalf("shape: %+v", r)
	}
	if r.TreewidthExact != 2 {
		t.Fatalf("ladder treewidth = %d, want 2", r.TreewidthExact)
	}
	if r.TreewidthLower > r.TreewidthExact {
		t.Fatalf("lower bound %d exceeds exact %d", r.TreewidthLower, r.TreewidthExact)
	}
	for h, w := range r.InducedWidths {
		if w < r.TreewidthExact {
			t.Fatalf("%s induced width %d below treewidth", h, w)
		}
	}
	if r.MethodWidths[MethodBucketElimination] < r.TreewidthExact+1 {
		t.Fatalf("bucket width %d below treewidth+1", r.MethodWidths[MethodBucketElimination])
	}
	if r.MethodWidths[MethodStraightforward] != r.Vars {
		t.Fatalf("straightforward width %d != #vars %d",
			r.MethodWidths[MethodStraightforward], r.Vars)
	}
	if r.HypertreeWidth < 1 {
		t.Fatalf("hypertree estimate %d", r.HypertreeWidth)
	}
	out := r.String()
	for _, marker := range []string{"treewidth: 2", "induced widths:", "plan widths:"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("report missing %q:\n%s", marker, out)
		}
	}
}

func TestAnalyzeStructureLargeGraphSkipsExact(t *testing.T) {
	g := graph.Ladder(20) // 40 variables: beyond the exact solver
	q := colorQuery(t, g)
	r, err := AnalyzeStructure(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.TreewidthExact != -1 {
		t.Fatal("exact treewidth should be skipped for 40 vertices")
	}
	if !strings.Contains(r.String(), ">=") {
		t.Fatalf("report should show the lower bound:\n%s", r.String())
	}
}

func TestAnalyzeStructureEmptyQuery(t *testing.T) {
	if _, err := AnalyzeStructure(&cq.Query{}); err == nil {
		t.Fatal("accepted empty query")
	}
}
