package core

import (
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
)

func TestTreeDecompositionPlanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(5)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q := colorQuery(t, g)
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []OrderHeuristic{OrderMCS, OrderMinFill, OrderMinDegree} {
			p, err := TreeDecompositionPlan(q, h, rng)
			if err != nil {
				t.Fatalf("%s: %v", h, err)
			}
			if err := plan.Validate(p, q); err != nil {
				t.Fatalf("%s: invalid plan: %v", h, err)
			}
			res, err := engine.Exec(p, db, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Rel.Equal(want) {
				t.Fatalf("trial %d %s: tree-decomposition plan disagrees with oracle", trial, h)
			}
		}
	}
}

func TestTreeDecompositionPlanWidthTracksBucketElimination(t *testing.T) {
	// Both paths realize Theorem 1/2 widths; under the *same* MCS order
	// the tree-decomposition plan can be no wider than the induced
	// decomposition width + 1, which is the bucket plan's width bound.
	g := graph.AugmentedCircularLadder(6)
	q := colorQuery(t, g)
	tp, err := TreeDecompositionPlan(q, OrderMCS, nil)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BucketElimination(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	tw := plan.Analyze(tp).Width
	bw := plan.Analyze(bp).Width
	if tw > bw {
		t.Fatalf("tree-decomposition width %d exceeds bucket width %d under the same heuristic", tw, bw)
	}
}

func TestTreeDecompositionPlanErrors(t *testing.T) {
	q := colorQuery(t, graph.Path(3))
	if _, err := TreeDecompositionPlan(q, OrderHeuristic("nope"), nil); err == nil {
		t.Fatal("accepted unknown heuristic")
	}
	if _, err := TreeDecompositionPlan(&cq.Query{}, OrderMCS, nil); err == nil {
		t.Fatal("accepted empty query")
	}
}

func TestWeightedBucketElimination(t *testing.T) {
	// A star with a heavy center: weighted order should not behave
	// pathologically, and results must match the oracle.
	g := graph.AugmentedPath(6)
	q := colorQuery(t, g)
	db := instance.ColorDatabase(3)
	w := plan.Weights{ByVar: map[cq.Var]int{0: 100, 1: 100}, Default: 1}
	p, err := BucketEliminationWeighted(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(want) {
		t.Fatal("weighted bucket elimination disagrees with oracle")
	}
}

func TestWeightedOrderPrefersDroppingHeavyVariables(t *testing.T) {
	// Two chains meeting at the free variable; x10 and x11 are heavy.
	// The weighted plan should never carry both heavy columns together
	// longer than necessary: its weighted width must not exceed the
	// uniform MCS plan's weighted width.
	g := graph.Ladder(6)
	q := colorQuery(t, g)
	w := plan.Weights{ByVar: map[cq.Var]int{5: 50, 6: 50, 7: 50}, Default: 1}
	wp, err := BucketEliminationWeighted(q, w)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := BucketElimination(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := plan.WeightedWidth(wp, w), plan.WeightedWidth(mp, w); got > ref {
		t.Fatalf("weighted order gives weighted width %d, worse than MCS %d", got, ref)
	}
}

func TestMinWeightVarOrderShape(t *testing.T) {
	q := colorQuery(t, graph.Path(5))
	w := plan.Weights{Default: 1}
	order := MinWeightVarOrder(q, w)
	if len(order) != q.NumVars() {
		t.Fatalf("order length %d != %d vars", len(order), q.NumVars())
	}
	if order[0] != q.Free[0] {
		t.Fatalf("free variable not first: %v", order)
	}
	seen := map[cq.Var]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate in order: %v", order)
		}
		seen[v] = true
	}
}
