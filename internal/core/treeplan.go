package core

import (
	"fmt"
	"math/rand"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/jointree"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// OrderHeuristic names an elimination-order heuristic for
// tree-decomposition-based planning.
type OrderHeuristic string

// The supported elimination-order heuristics. The paper fixes MCS
// (Section 5); min-fill and min-degree are the standard alternatives the
// ablation benches compare it against.
const (
	OrderMCS       OrderHeuristic = "mcs"
	OrderMinFill   OrderHeuristic = "minfill"
	OrderMinDegree OrderHeuristic = "mindegree"
)

// EliminationOrder computes an elimination order of q's join graph under
// the heuristic, returned as join-graph vertices alongside the join graph
// itself.
func EliminationOrder(q *cq.Query, h OrderHeuristic, rng *rand.Rand) (*joingraph.JoinGraph, []int, error) {
	jg := joingraph.Build(q)
	switch h {
	case OrderMCS:
		return jg, treedec.EliminationOrder(treedec.MCS(jg.G, jg.Vertices(q.Free), rng)), nil
	case OrderMinFill:
		return jg, treedec.MinFill(jg.G), nil
	case OrderMinDegree:
		return jg, treedec.MinDegree(jg.G), nil
	default:
		return nil, nil, fmt.Errorf("core: unknown order heuristic %q", h)
	}
}

// TreeDecompositionPlan builds a plan through the paper's Theorem 1
// machinery instead of bucket elimination: compute an elimination order of
// the join graph with the chosen heuristic, derive the induced tree
// decomposition, convert it to a join-expression tree via Algorithms 2
// and 3, and lower that tree to a plan. The plan's width is at most the
// decomposition width plus one; with an optimal decomposition it attains
// the query's join width exactly.
//
// Bucket elimination under the matching variable order produces plans of
// the same width (Theorem 2); this path exists as the constructive side
// of Theorem 1 and as an independent implementation the tests and
// ablation benches cross-check against.
func TreeDecompositionPlan(q *cq.Query, h OrderHeuristic, rng *rand.Rand) (plan.Node, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	jg, elim, err := EliminationOrder(q, h, rng)
	if err != nil {
		return nil, err
	}
	dec := treedec.FromOrder(jg.G, elim)
	tree, err := jointree.FromDecomposition(q, jg, dec)
	if err != nil {
		return nil, err
	}
	return tree.ToPlan(), nil
}
