package core

import (
	"math/rand"
	"testing"

	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/joingraph"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

func TestImproveOrderNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(8)
		m := n + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q := colorQuery(t, g)
		start := MCSVarOrder(q, rng)
		startW, err := InducedWidth(q, start)
		if err != nil {
			t.Fatal(err)
		}
		improved, w, err := ImproveOrder(q, start, 300, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Improved width (join-graph induced width + 1 ≈ plan width).
		planW, err := InducedWidth(q, improved)
		if err != nil {
			t.Fatalf("improved order invalid: %v", err)
		}
		if planW > startW {
			t.Fatalf("trial %d: local search worsened width %d -> %d", trial, startW, planW)
		}
		_ = w
		// Free variables stay in front.
		for i, v := range q.Free {
			if improved[i] != v {
				t.Fatalf("trial %d: free variable moved: %v", trial, improved[:len(q.Free)])
			}
		}
		// Still a permutation.
		seen := map[int]bool{}
		for _, v := range improved {
			if seen[v] {
				t.Fatalf("trial %d: duplicate in improved order", trial)
			}
			seen[v] = true
		}
	}
}

func TestImproveOrderReachesTreewidthOnSmallGraphs(t *testing.T) {
	// With a generous move budget the local search should usually reach
	// the true treewidth on small graphs; assert it never goes below
	// (impossible) and reaches it in a clear case where MCS is suboptimal.
	rng := rand.New(rand.NewSource(55))
	reached := 0
	trials := 0
	for trials < 10 {
		n := 7 + rng.Intn(4)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		trials++
		q := colorQuery(t, g)
		q.Free = nil // Boolean: the join graph is exactly g
		jg := joingraph.Build(q)
		tw, _, err := treedec.Exact(jg.G)
		if err != nil {
			t.Fatal(err)
		}
		improved, _, err := ImproveOrder(q, MCSVarOrder(q, rng), 2000, rng)
		if err != nil {
			t.Fatal(err)
		}
		w, err := InducedWidth(q, improved)
		if err != nil {
			t.Fatal(err)
		}
		if w < tw+1 {
			t.Fatalf("width %d below treewidth+1 = %d: impossible", w, tw+1)
		}
		if w == tw+1 {
			reached++
		}
	}
	if reached < trials/2 {
		t.Fatalf("local search reached optimal width on only %d/%d small instances", reached, trials)
	}
}

func TestBucketEliminationImprovedAgreesWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := instance.ColorDatabase(3)
	g, err := graph.Random(9, 18, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := colorQuery(t, g)
	p, err := BucketEliminationImproved(q, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(want) {
		t.Fatal("improved-order plan disagrees with oracle")
	}
}

func TestImproveOrderRejectsBadStart(t *testing.T) {
	q := colorQuery(t, graph.Path(4))
	if _, _, err := ImproveOrder(q, MCSVarOrder(q, nil)[1:], 10, nil); err == nil {
		t.Fatal("accepted short order")
	}
}
