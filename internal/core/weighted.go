package core

import (
	"fmt"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// MinWeightVarOrder computes a bucket-elimination variable order for
// weighted attributes (Section 7's extension): the join graph is
// eliminated by the min-weight heuristic — always removing the variable
// whose bucket (itself plus live neighbors) has the smallest total byte
// weight — and the resulting order is reversed into processing order with
// the free variables pinned to the front.
func MinWeightVarOrder(q *cq.Query, w plan.Weights) []cq.Var {
	jg := joingraph.Build(q)
	weights := make([]int, len(jg.Vars))
	for i, v := range jg.Vars {
		weights[i] = w.Of(v)
	}
	elim := treedec.MinWeight(jg.G, weights)
	free := make(map[cq.Var]bool, len(q.Free))
	order := append([]cq.Var(nil), q.Free...)
	for _, v := range q.Free {
		free[v] = true
	}
	for i := len(elim) - 1; i >= 0; i-- {
		v := jg.Vars[elim[i]]
		if !free[v] {
			order = append(order, v)
		}
	}
	return order
}

// BucketEliminationWeighted builds a bucket-elimination plan whose
// variable order minimizes *weighted* intermediate arity rather than
// column count — the natural reading of the paper's weighted-attribute
// future work. With uniform weights it coincides with a min-degree-style
// order.
func BucketEliminationWeighted(q *cq.Query, w plan.Weights) (plan.Node, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	return BucketEliminationOrder(q, MinWeightVarOrder(q, w))
}
