package core

import (
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/pgplanner"
	"projpush/internal/plan"
)

func TestHybridPicksACandidateAndExecutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := instance.ColorDatabase(3)
	cm := pgplanner.NewCostModel(db)
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(5)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q := colorQuery(t, g)
		choice, err := Hybrid(q, cm, rng)
		if err != nil {
			t.Fatal(err)
		}
		if choice.Candidate == "" || choice.Plan == nil {
			t.Fatal("empty hybrid choice")
		}
		if err := plan.Validate(choice.Plan, q); err != nil {
			t.Fatalf("hybrid plan invalid: %v", err)
		}
		res, err := engine.Exec(choice.Plan, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.Equal(want) {
			t.Fatalf("trial %d: hybrid plan disagrees with oracle", trial)
		}
	}
}

func TestHybridBeatsStraightforwardEstimate(t *testing.T) {
	// On an augmented ladder the projection-pushing candidates have far
	// lower estimated cost than the unpushed baseline.
	g := graph.AugmentedLadder(6)
	q := colorQuery(t, g)
	cm := pgplanner.NewCostModel(instance.ColorDatabase(3))
	choice, err := Hybrid(q, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Straightforward(q)
	if err != nil {
		t.Fatal(err)
	}
	sfEst, err := cm.EstimatePlan(sf)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Estimate.Cost >= sfEst.Cost {
		t.Fatalf("hybrid estimate %g not below straightforward %g",
			choice.Estimate.Cost, sfEst.Cost)
	}
}

func TestHybridEstimateTracksActual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := instance.ColorDatabase(3)
	cm := pgplanner.NewCostModel(db)
	g, err := graph.Random(10, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := colorQuery(t, g)
	p, err := BucketElimination(q, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := cm.EstimatePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(res.Rel.Len())
	if actual > 0 && (est.Rows > actual*100 || est.Rows < actual/100) {
		t.Fatalf("estimate %f wildly off actual %f", est.Rows, actual)
	}
}

func TestHybridEmptyQuery(t *testing.T) {
	cm := pgplanner.NewCostModel(instance.ColorDatabase(3))
	if _, err := Hybrid(&cq.Query{}, cm, nil); err == nil {
		t.Fatal("accepted empty query")
	}
}
