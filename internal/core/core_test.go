package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/joingraph"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

func colorQuery(t *testing.T, g *graph.Graph) *cq.Query {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestStraightforwardShape(t *testing.T) {
	q := colorQuery(t, graph.Path(5))
	p, err := Straightforward(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	s := plan.Analyze(p)
	if s.Projects != 1 {
		t.Fatalf("straightforward must have exactly one projection, got %d", s.Projects)
	}
	if s.Width != 5 {
		t.Fatalf("width = %d, want 5 (all variables live)", s.Width)
	}
}

func TestEarlyProjectionShapeOnPath(t *testing.T) {
	q := colorQuery(t, graph.Path(6))
	p, err := EarlyProjection(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	// On a path listed in order, early projection keeps only the
	// frontier: width 3 (join of a 2-ary with an edge) — except the free
	// variable v0 rides along, giving width at most 4.
	if w := plan.Analyze(p).Width; w > 4 {
		t.Fatalf("early projection width on path = %d, want <= 4", w)
	}
	sf, _ := Straightforward(q)
	if plan.Analyze(p).Width >= plan.Analyze(sf).Width {
		t.Fatal("early projection did not reduce width on a path")
	}
}

func TestEarlyProjectionKeepsFreeVariables(t *testing.T) {
	g := graph.Path(6)
	q, err := instance.ColorQuery(g, []cq.Var{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := EarlyProjection(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	attrs := p.Attrs()
	if len(attrs) != 2 {
		t.Fatalf("root attrs = %v", attrs)
	}
}

func TestGreedyOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, err := graph.Random(12, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := colorQuery(t, g)
	perm := GreedyOrder(q, rng)
	if len(perm) != len(q.Atoms) {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestGreedyOrderPrefersDyingVariables(t *testing.T) {
	// Star: center 0 with leaves. Every atom has one dying variable
	// (the leaf) and shares the center. An augmented-path-like query
	// where one atom has two dying variables must be picked first.
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "edge", Args: []cq.Var{0, 1}}, // 1 dies
			{Rel: "edge", Args: []cq.Var{0, 2}}, // 2 dies
			{Rel: "edge", Args: []cq.Var{3, 4}}, // both die
		},
		Free: []cq.Var{0},
	}
	perm := GreedyOrder(q, nil)
	if perm[0] != 2 {
		t.Fatalf("greedy picked %d first, want atom 2 (two dying vars)", perm[0])
	}
}

func TestBucketEliminationWidthTheorem2(t *testing.T) {
	// With the optimal elimination order, the bucket-elimination plan's
	// width is exactly treewidth+1 (Theorem 2). Use truly Boolean
	// queries so the target schema adds no clique.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		m := n - 1 + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, err := instance.ColorQuery(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		q.Free = nil
		jg := joingraph.Build(q)
		tw, elim, err := treedec.Exact(jg.G)
		if err != nil {
			t.Fatal(err)
		}
		// Variable order = reverse elimination order (bucket i is
		// processed from the end).
		order := make([]cq.Var, len(elim))
		for i, v := range elim {
			order[len(elim)-1-i] = jg.Vars[v]
		}
		w, err := InducedWidth(q, order)
		if err != nil {
			t.Fatal(err)
		}
		if w != tw+1 {
			t.Fatalf("trial %d: bucket plan width %d, want tw+1 = %d", trial, w, tw+1)
		}
		// MCS order can only be as good or worse.
		mcsW, err := InducedWidth(q, MCSVarOrder(q, nil))
		if err != nil {
			t.Fatal(err)
		}
		if mcsW < w {
			t.Fatalf("trial %d: MCS width %d below optimal %d", trial, mcsW, w)
		}
	}
}

func TestBucketEliminationOrderValidation(t *testing.T) {
	q := colorQuery(t, graph.Path(3))
	if _, err := BucketEliminationOrder(q, []cq.Var{0, 1}); err == nil {
		t.Fatal("accepted order missing a variable")
	}
	if _, err := BucketEliminationOrder(q, []cq.Var{0, 1, 1, 2}); err == nil {
		t.Fatal("accepted order with duplicate")
	}
	// Free variable not first.
	if _, err := BucketEliminationOrder(q, []cq.Var{1, 2, 0}); err == nil {
		t.Fatal("accepted order with free variable not first")
	}
}

func TestAllMethodsValidateAndAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(5)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		var free []cq.Var
		if trial%2 == 0 {
			free = instance.BooleanFree(g)
		} else {
			free = instance.ChooseFree(instance.EdgeVertices(g), 0.2, rng)
		}
		q, err := instance.ColorQuery(g, free)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range Methods {
			p, err := BuildPlan(m, q, rng)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m, err)
			}
			if err := plan.Validate(p, q); err != nil {
				t.Fatalf("trial %d %s: invalid plan: %v", trial, m, err)
			}
			res, err := engine.Exec(p, db, engine.Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m, err)
			}
			if !res.Rel.Equal(want) {
				t.Fatalf("trial %d %s: result %v != oracle %v", trial, m, res.Rel, want)
			}
		}
	}
}

func TestAllMethodsAgreeOnSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(4)
		mm := 3 + rng.Intn(3*n)
		s, err := instance.RandomSAT(3, n, mm, rng)
		if err != nil {
			t.Fatal(err)
		}
		vars := instance.SATVariablesInClauses(s)
		q, db, err := instance.SATQuery(s, vars[:1])
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range Methods {
			p, err := BuildPlan(m, q, rng)
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			if err := plan.Validate(p, q); err != nil {
				t.Fatalf("%s: invalid plan: %v", m, err)
			}
			res, err := engine.Exec(p, db, engine.Options{})
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			if !res.Rel.Equal(want) {
				t.Fatalf("%s: disagrees with oracle on 3-SAT", m)
			}
		}
	}
}

func TestStructuredFamiliesWidths(t *testing.T) {
	// Bucket elimination must achieve small widths on the structured
	// families; the straightforward method cannot.
	cases := []struct {
		name   string
		g      *graph.Graph
		maxBEW int // generous bound on bucket-elimination width
	}{
		{"augmented path", graph.AugmentedPath(10), 4},
		{"ladder", graph.Ladder(10), 4},
		{"augmented ladder", graph.AugmentedLadder(8), 5},
		{"augmented circular ladder", graph.AugmentedCircularLadder(8), 6},
	}
	for _, c := range cases {
		q := colorQuery(t, c.g)
		be, err := BucketElimination(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		beW := plan.Analyze(be).Width
		if beW > c.maxBEW {
			t.Errorf("%s: bucket elimination width = %d, want <= %d", c.name, beW, c.maxBEW)
		}
		sf, err := Straightforward(q)
		if err != nil {
			t.Fatal(err)
		}
		if sfW := plan.Analyze(sf).Width; sfW <= beW {
			t.Errorf("%s: straightforward width %d not above bucket width %d", c.name, sfW, beW)
		}
	}
}

func TestBuildPlanUnknownMethod(t *testing.T) {
	q := colorQuery(t, graph.Path(3))
	if _, err := BuildPlan(Method("nope"), q, nil); err == nil {
		t.Fatal("accepted unknown method")
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	empty := &cq.Query{}
	for _, m := range Methods {
		if _, err := BuildPlan(m, empty, nil); err == nil {
			t.Errorf("%s accepted empty query", m)
		}
	}
}

func TestStraightforwardOrder(t *testing.T) {
	q := colorQuery(t, graph.Path(4))
	p, err := StraightforwardOrder(q, []int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	atoms := plan.Atoms(p)
	if atoms[0].String() != q.Atoms[2].String() {
		t.Fatalf("permuted first atom = %v", atoms[0])
	}
	if _, err := StraightforwardOrder(q, []int{0, 0, 1}); err == nil {
		t.Fatal("accepted invalid permutation")
	}
}

func TestQuickMethodsEquivalence(t *testing.T) {
	db := instance.ColorDatabase(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		m := 1 + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil || g.M() == 0 {
			return err == nil
		}
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			return false
		}
		want, err := engine.OracleNonempty(q, db)
		if err != nil {
			return false
		}
		for _, m := range Methods {
			p, err := BuildPlan(m, q, rng)
			if err != nil {
				return false
			}
			res, err := engine.Exec(p, db, engine.Options{})
			if err != nil {
				return false
			}
			if res.Nonempty() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTrulyBooleanBucketElimination(t *testing.T) {
	q := colorQuery(t, graph.Cycle(5))
	q.Free = nil
	p, err := BucketElimination(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(p, instance.ColorDatabase(3), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonempty() {
		t.Fatal("5-cycle is 3-colorable")
	}
	if res.Rel.Arity() != 0 {
		t.Fatalf("Boolean result arity = %d", res.Rel.Arity())
	}
}

func TestDisconnectedQueryBucketElimination(t *testing.T) {
	// Two disjoint triangles; the second is a Boolean factor.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		g.AddEdge(e[0], e[1])
	}
	q := colorQuery(t, g)
	p, err := BucketElimination(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(p, q); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(p, instance.ColorDatabase(3), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("result = %v, want all 3 colors", res.Rel)
	}
}
