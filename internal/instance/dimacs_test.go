package instance

import (
	"math/rand"
	"strings"
	"testing"

	"projpush/internal/graph"
)

func TestReadDIMACSGraph(t *testing.T) {
	in := `c a triangle with noise
p edge 3 3
e 1 2
e 2 3
e 3 1
e 1 1
e 2 1
`
	g, err := ReadDIMACSGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 3 {
		t.Fatalf("graph = %v, want triangle", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("edges wrong")
	}
}

func TestReadDIMACSGraphErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no problem line", "e 1 2\n"},
		{"missing problem", "c nothing\n"},
		{"bad problem", "p graph 3 3\n"},
		{"duplicate problem", "p edge 2 0\np edge 2 0\n"},
		{"endpoint out of range", "p edge 2 1\ne 1 5\n"},
		{"garbage line", "p edge 2 1\nx 1 2\n"},
		{"bad endpoints", "p edge 2 1\ne one two\n"},
	}
	for _, c := range cases {
		if _, err := ReadDIMACSGraph(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted invalid input", c.name)
		}
	}
}

func TestDIMACSGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.Random(12, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDIMACSGraph(&b, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACSGraph(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("round trip changed shape: %v vs %v", back, g)
	}
	for _, e := range g.Edges {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("lost edge %v", e)
		}
	}
}

func TestReadDIMACSCNF(t *testing.T) {
	in := `c small formula
p cnf 4 3
1 -2 3 0
-1 4 0
2 -3
-4 0
`
	s, err := ReadDIMACSCNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars != 4 || len(s.Clauses) != 3 {
		t.Fatalf("shape: %+v", s)
	}
	// Third clause spans two lines: 2 -3 -4 0.
	last := s.Clauses[2]
	if len(last) != 3 || last[0] != (Lit{1, true}) || last[1] != (Lit{2, false}) || last[2] != (Lit{3, false}) {
		t.Fatalf("spanning clause = %v", last)
	}
}

func TestReadDIMACSCNFErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no problem", "1 2 0\n"},
		{"bad problem", "p sat 3 1\n"},
		{"variable out of range", "p cnf 2 1\n3 0\n"},
		{"repeated variable", "p cnf 2 1\n1 -1 0\n"},
		{"bad literal", "p cnf 2 1\nx 0\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		if _, err := ReadDIMACSCNF(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted invalid input", c.name)
		}
	}
}

func TestDIMACSCNFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s, err := RandomSAT(3, 8, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDIMACSCNF(&b, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACSCNF(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != s.NumVars || len(back.Clauses) != len(s.Clauses) {
		t.Fatalf("round trip changed shape")
	}
	for i := range s.Clauses {
		for j := range s.Clauses[i] {
			if back.Clauses[i][j] != s.Clauses[i][j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
}

func TestReadDIMACSCNFTrailingClauseWithoutZero(t *testing.T) {
	in := "p cnf 2 1\n1 2\n"
	s, err := ReadDIMACSCNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clauses) != 1 || len(s.Clauses[0]) != 2 {
		t.Fatalf("trailing clause not captured: %+v", s)
	}
}
