package instance

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"projpush/internal/graph"
)

// This file reads and writes the DIMACS exchange formats, so the paper's
// workloads can be swapped for standard benchmark instances: the DIMACS
// graph-coloring format (".col": "p edge N M" and "e u v" lines,
// 1-indexed vertices) and the DIMACS CNF format ("p cnf N M" with
// zero-terminated clause lines).

// ReadDIMACSGraph parses a DIMACS .col graph. Comment lines ("c ...")
// are skipped; vertices are converted to 0-indexed. Duplicate edges and
// self-loops — both appear in published instances — are dropped.
func ReadDIMACSGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *graph.Graph
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			continue
		case "p":
			if g != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col") {
				return nil, fmt.Errorf("dimacs: line %d: want \"p edge N M\", got %q", line, sc.Text())
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad vertex count %q", line, fields[2])
			}
			g = graph.New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("dimacs: line %d: edge before problem line", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dimacs: line %d: want \"e u v\"", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad edge endpoints", line)
			}
			if u < 1 || v < 1 || u > g.N || v > g.N {
				return nil, fmt.Errorf("dimacs: line %d: endpoint out of range", line)
			}
			if u != v { // published instances contain stray self-loops
				g.AddEdge(u-1, v-1)
			}
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	return g, nil
}

// WriteDIMACSGraph writes g in DIMACS .col format.
func WriteDIMACSGraph(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(w, "p edge %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(w, "e %d %d\n", e[0]+1, e[1]+1); err != nil {
			return err
		}
	}
	return nil
}

// ReadDIMACSCNF parses a DIMACS CNF formula. Clauses may span lines and
// are terminated by 0. A literal ±v maps to variable v-1 with the sign
// as polarity. Clauses repeating a variable are rejected (the
// project-join encoding needs distinct variables per atom); published
// instances normally satisfy this.
func ReadDIMACSCNF(r io.Reader) (*SAT, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var s *SAT
	var cur Clause
	seen := map[int]bool{}
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || fields[0] == "c" {
			continue
		}
		if fields[0] == "p" {
			if s != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: line %d: want \"p cnf N M\"", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad variable count", line)
			}
			s = &SAT{NumVars: n}
			continue
		}
		if s == nil {
			return nil, fmt.Errorf("dimacs: line %d: clause before problem line", line)
		}
		for _, f := range fields {
			lit, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad literal %q", line, f)
			}
			if lit == 0 {
				if len(cur) > 0 {
					s.Clauses = append(s.Clauses, cur)
					cur = nil
					seen = map[int]bool{}
				}
				continue
			}
			v := lit
			if v < 0 {
				v = -v
			}
			if v > s.NumVars {
				return nil, fmt.Errorf("dimacs: line %d: variable %d out of range", line, v)
			}
			if seen[v-1] {
				return nil, fmt.Errorf("dimacs: line %d: clause repeats variable %d", line, v)
			}
			seen[v-1] = true
			cur = append(cur, Lit{Var: v - 1, Pos: lit > 0})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	if len(cur) > 0 {
		s.Clauses = append(s.Clauses, cur)
	}
	return s, nil
}

// WriteDIMACSCNF writes the formula in DIMACS CNF format.
func WriteDIMACSCNF(w io.Writer, s *SAT) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", s.NumVars, len(s.Clauses)); err != nil {
		return err
	}
	for _, cl := range s.Clauses {
		for _, lit := range cl {
			v := lit.Var + 1
			if !lit.Pos {
				v = -v
			}
			if _, err := fmt.Fprintf(w, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "0"); err != nil {
			return err
		}
	}
	return nil
}
