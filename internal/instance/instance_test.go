package instance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/relation"
)

func TestColorDatabase(t *testing.T) {
	db := ColorDatabase(3)
	e := db["edge"]
	if e.Len() != 6 {
		t.Fatalf("3-COLOR edge relation has %d tuples, want 6", e.Len())
	}
	e.Each(func(tu relation.Tuple) bool {
		if tu[0] == tu[1] {
			t.Fatalf("monochromatic tuple %v", tu)
		}
		return true
	})
	if ColorDatabase(2)["edge"].Len() != 2 {
		t.Fatal("2-COLOR edge relation must have 2 tuples")
	}
}

func TestColorQueryStructure(t *testing.T) {
	g := graph.Cycle(5)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 5 {
		t.Fatalf("atoms = %d, want 5", len(q.Atoms))
	}
	if len(q.Free) != 1 || q.Free[0] != g.Edges[0][0] {
		t.Fatalf("Boolean free = %v", q.Free)
	}
	if err := q.Validate(ColorDatabase(3)); err != nil {
		t.Fatal(err)
	}
}

func TestColorQueryRejectsEdgeless(t *testing.T) {
	if _, err := ColorQuery(graph.New(5), nil); err == nil {
		t.Fatal("accepted edgeless graph")
	}
}

func TestColorQueryRejectsIsolatedFreeVertex(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	if _, err := ColorQuery(g, []cq.Var{2}); err == nil {
		t.Fatal("accepted free vertex with no edges")
	}
}

// colorable decides k-colorability by brute force, as an oracle.
func colorable(g *graph.Graph, k int) bool {
	colors := make([]int, g.N)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			for _, e := range g.Edges {
				var u int
				switch {
				case e[0] == v && e[1] < v:
					u = e[1]
				case e[1] == v && e[0] < v:
					u = e[0]
				default:
					continue
				}
				if colors[u] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0)
}

func TestColorQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := ColorDatabase(3)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(4)
		m := n + rng.Intn(2*n)
		if m > n*(n-1)/2 {
			m = n * (n - 1) / 2
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, err := ColorQuery(g, BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.OracleNonempty(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if want := colorable(g, 3); got != want {
			t.Fatalf("trial %d: query nonempty=%v, colorable=%v for %v", trial, got, want, g)
		}
	}
}

func TestKnownColorability(t *testing.T) {
	db := ColorDatabase(3)
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"triangle", graph.Cycle(3), true},
		{"odd cycle", graph.Cycle(7), true},
		{"K4", graph.Complete(4), false},
		{"even wheel", graph.Wheel(4), true},
		{"odd wheel", graph.Wheel(5), false},
		{"ladder", graph.Ladder(5), true},
		{"augmented circular ladder", graph.AugmentedCircularLadder(4), true},
	}
	for _, c := range cases {
		q, err := ColorQuery(c.g, BooleanFree(c.g))
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.OracleNonempty(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s: 3-colorable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBipartiteTwoColoring(t *testing.T) {
	db := ColorDatabase(2)
	q, err := ColorQuery(graph.Ladder(4), BooleanFree(graph.Ladder(4)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.OracleNonempty(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("ladder is bipartite, must be 2-colorable")
	}
	qc, err := ColorQuery(graph.Cycle(5), BooleanFree(graph.Cycle(5)))
	if err != nil {
		t.Fatal(err)
	}
	got, err = engine.OracleNonempty(qc, db)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("odd cycle must not be 2-colorable")
	}
}

func TestChooseFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cand := []cq.Var{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	free := ChooseFree(cand, 0.2, rng)
	if len(free) != 2 {
		t.Fatalf("20%% of 10 = %d vars, want 2", len(free))
	}
	for i := 1; i < len(free); i++ {
		if free[i-1] >= free[i] {
			t.Fatal("free vars not sorted/distinct")
		}
	}
	if got := ChooseFree(cand, 0, rng); got != nil {
		t.Fatal("frac 0 must give nil")
	}
	if got := ChooseFree(nil, 0.5, rng); got != nil {
		t.Fatal("empty candidates must give nil")
	}
	// Ceiling behaviour: 20% of 6 candidates = 2 (⌈1.2⌉).
	if got := ChooseFree(cand[:6], 0.2, rng); len(got) != 2 {
		t.Fatalf("⌈0.2·6⌉ = %d, want 2", len(got))
	}
	// frac >= 1 keeps everything.
	if got := ChooseFree(cand, 1.0, rng); len(got) != len(cand) {
		t.Fatalf("frac 1.0 kept %d of %d", len(got), len(cand))
	}
}

func TestEdgeVertices(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(4, 1)
	g.AddEdge(1, 3)
	got := EdgeVertices(g)
	want := []cq.Var{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("EdgeVertices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EdgeVertices = %v, want %v", got, want)
		}
	}
}

func TestSATDatabaseShapes(t *testing.T) {
	db3 := SATDatabase(3)
	if len(db3) != 8 {
		t.Fatalf("3-SAT database has %d relations, want 8", len(db3))
	}
	for name, rel := range db3 {
		if rel.Arity() != 3 || rel.Len() != 7 {
			t.Fatalf("%s: arity=%d len=%d, want 3,7", name, rel.Arity(), rel.Len())
		}
	}
	db2 := SATDatabase(2)
	if len(db2) != 4 {
		t.Fatalf("2-SAT database has %d relations, want 4", len(db2))
	}
	for name, rel := range db2 {
		if rel.Arity() != 2 || rel.Len() != 3 {
			t.Fatalf("%s: arity=%d len=%d, want 2,3", name, rel.Arity(), rel.Len())
		}
	}
}

func TestSATDatabaseExcludesFalsifyingAssignment(t *testing.T) {
	db := SATDatabase(3)
	// All-positive clause c3_111 is falsified only by (0,0,0).
	if db["c3_111"].Contains([]int32{0, 0, 0}) {
		t.Fatal("c3_111 contains its falsifying assignment")
	}
	if !db["c3_111"].Contains([]int32{1, 0, 0}) {
		t.Fatal("c3_111 missing a satisfying assignment")
	}
	// All-negative clause c3_000 is falsified only by (1,1,1).
	if db["c3_000"].Contains([]int32{1, 1, 1}) {
		t.Fatal("c3_000 contains its falsifying assignment")
	}
}

// satBruteForce decides satisfiability by enumeration.
func satBruteForce(s *SAT) bool {
	for asg := 0; asg < 1<<s.NumVars; asg++ {
		ok := true
		for _, cl := range s.Clauses {
			sat := false
			for _, lit := range cl {
				bit := asg&(1<<lit.Var) != 0
				if bit == lit.Pos {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestSATQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4)
		m := 2 + rng.Intn(4*n)
		s, err := RandomSAT(3, n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		vars := SATVariablesInClauses(s)
		q, db, err := SATQuery(s, vars[:1])
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Validate(db); err != nil {
			t.Fatal(err)
		}
		got, err := engine.OracleNonempty(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if want := satBruteForce(s); got != want {
			t.Fatalf("trial %d: query=%v, brute force=%v", trial, got, want)
		}
	}
}

func TestSATQueryErrors(t *testing.T) {
	if _, _, err := SATQuery(&SAT{NumVars: 3}, nil); err == nil {
		t.Fatal("accepted empty formula")
	}
	// Mixed clause widths are supported: the database gains pattern
	// relations for every width present.
	s := &SAT{NumVars: 3, Clauses: []Clause{
		{{0, true}, {1, true}, {2, true}},
		{{0, true}, {1, true}},
	}}
	q, db, err := SATQuery(s, []cq.Var{0})
	if err != nil {
		t.Fatalf("mixed clause widths rejected: %v", err)
	}
	if err := q.Validate(db); err != nil {
		t.Fatal(err)
	}
	if len(db) != 12 { // 8 ternary + 4 binary pattern relations
		t.Fatalf("mixed-width database has %d relations, want 12", len(db))
	}
	if _, _, err := SATQuery(&SAT{NumVars: 1, Clauses: []Clause{{}}}, nil); err == nil {
		t.Fatal("accepted empty clause")
	}
	bad := &SAT{NumVars: 3, Clauses: []Clause{
		{{0, true}, {0, false}, {2, true}},
	}}
	if _, _, err := SATQuery(bad, nil); err == nil {
		t.Fatal("accepted clause repeating a variable")
	}
}

func TestRandomSATShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, err := RandomSAT(3, 10, 42, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars != 10 || len(s.Clauses) != 42 {
		t.Fatalf("shape: %+v", s)
	}
	if d := s.Density(); d != 4.2 {
		t.Fatalf("density = %f, want 4.2", d)
	}
	for _, cl := range s.Clauses {
		if len(cl) != 3 {
			t.Fatal("clause width != 3")
		}
		seen := map[int]bool{}
		for _, lit := range cl {
			if lit.Var < 0 || lit.Var >= 10 || seen[lit.Var] {
				t.Fatalf("bad clause %v", cl)
			}
			seen[lit.Var] = true
		}
	}
	if _, err := RandomSAT(5, 3, 1, rng); err == nil {
		t.Fatal("accepted k > n")
	}
}

func TestQuick2SATQueriesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		m := 1 + rng.Intn(3*n)
		s, err := RandomSAT(2, n, m, rng)
		if err != nil {
			return false
		}
		vars := SATVariablesInClauses(s)
		q, db, err := SATQuery(s, vars[:1])
		if err != nil {
			return false
		}
		got, err := engine.OracleNonempty(q, db)
		if err != nil {
			return false
		}
		return got == satBruteForce(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHomomorphismGeneralizesColoring(t *testing.T) {
	// Hom into K3 is exactly 3-COLOR.
	rng := rand.New(rand.NewSource(44))
	k3 := graph.Complete(3)
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(4)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		hq, err := HomomorphismQuery(g, BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		hGot, err := engine.OracleNonempty(hq, HomomorphismDatabase(k3))
		if err != nil {
			t.Fatal(err)
		}
		cq3, err := ColorQuery(g, BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		cGot, err := engine.OracleNonempty(cq3, ColorDatabase(3))
		if err != nil {
			t.Fatal(err)
		}
		if hGot != cGot {
			t.Fatalf("trial %d: hom-to-K3 %v != 3-COLOR %v", trial, hGot, cGot)
		}
	}
}

func TestHomomorphismOddCycleTargets(t *testing.T) {
	// C5 maps into C5 (identity) but C3 does not map into C5
	// (a triangle needs an odd girth <= 3 target).
	c5, c3 := graph.Cycle(5), graph.Cycle(3)
	q5, err := HomomorphismQuery(c5, BooleanFree(c5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.OracleNonempty(q5, HomomorphismDatabase(c5))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("C5 -> C5 must exist")
	}
	q3, err := HomomorphismQuery(c3, BooleanFree(c3))
	if err != nil {
		t.Fatal(err)
	}
	got, err = engine.OracleNonempty(q3, HomomorphismDatabase(c5))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("C3 -> C5 must not exist")
	}
	// Bipartite sources map into a single edge (K2).
	lad := graph.Ladder(4)
	ql, err := HomomorphismQuery(lad, BooleanFree(lad))
	if err != nil {
		t.Fatal(err)
	}
	got, err = engine.OracleNonempty(ql, HomomorphismDatabase(graph.Complete(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("bipartite ladder -> K2 must exist")
	}
}

func TestHomomorphismQueryErrors(t *testing.T) {
	if _, err := HomomorphismQuery(graph.New(3), nil); err == nil {
		t.Fatal("accepted edgeless source")
	}
	g := graph.New(3)
	g.AddEdge(0, 1)
	if _, err := HomomorphismQuery(g, []cq.Var{2}); err == nil {
		t.Fatal("accepted isolated free vertex")
	}
}

func TestHomomorphismMethodsAgree(t *testing.T) {
	// The optimization methods work unchanged on homomorphism queries.
	g := graph.Ladder(3)
	target := graph.Wheel(4) // 3-colorable wheel as a nontrivial target
	q, err := HomomorphismQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := HomomorphismDatabase(target)
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range core.Methods {
		p, err := core.BuildPlan(m, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Exec(p, db, engine.Options{MaxRows: 2_000_000})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !res.Rel.Equal(want) {
			t.Fatalf("%s disagrees on homomorphism query", m)
		}
	}
}
