// Package instance translates combinatorial problem instances into
// project-join queries over tiny databases, following the paper's
// experimental setup (Section 2): a graph instance of k-COLOR becomes the
// query π_{v1} ⋈_{(vi,vj)∈E} edge(vi,vj) over a single binary relation
// holding all pairs of distinct colors, and — as in the concluding remarks
// — 3-SAT and 2-SAT instances become queries over ternary/binary
// clause-pattern relations.
//
// For non-Boolean experiments the paper keeps a random 20% of the vertices
// free ("before we convert the formula we pick 20% of the vertices randomly
// to be free"); ChooseFree implements that rule.
package instance

import (
	"fmt"
	"math/rand"
	"sort"

	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/relation"
)

// ColorDatabase returns the k-COLOR database: a single relation "edge"
// with columns (0,1) containing all k(k-1) ordered pairs of distinct
// colors 0..k-1.
func ColorDatabase(k int) cq.Database {
	if k < 1 {
		panic("instance.ColorDatabase: need k >= 1")
	}
	e := relation.New([]relation.Attr{0, 1})
	for i := relation.Value(0); i < relation.Value(k); i++ {
		for j := relation.Value(0); j < relation.Value(k); j++ {
			if i != j {
				e.Add(relation.Tuple{i, j})
			}
		}
	}
	return cq.Database{"edge": e}
}

// ColorQuery translates a graph into the k-COLOR conjunctive query: one
// edge atom per graph edge, with variables numbered by graph vertices. The
// free-variable list is supplied by the caller (see BooleanFree and
// ChooseFree); every free variable must touch an edge. The query is
// nonempty over ColorDatabase(k) iff the graph is k-colorable.
func ColorQuery(g *graph.Graph, free []cq.Var) (*cq.Query, error) {
	if g.M() == 0 {
		return nil, fmt.Errorf("instance.ColorQuery: graph has no edges")
	}
	q := &cq.Query{Free: append([]cq.Var(nil), free...)}
	for _, e := range g.Edges {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "edge", Args: []cq.Var{e[0], e[1]}})
	}
	touched := make(map[cq.Var]bool)
	for _, e := range g.Edges {
		touched[e[0]] = true
		touched[e[1]] = true
	}
	for _, v := range q.Free {
		if !touched[v] {
			return nil, fmt.Errorf("instance.ColorQuery: free vertex %d touches no edge", v)
		}
	}
	return q, nil
}

// BooleanFree returns the paper's emulation of a Boolean query: a single
// free variable, the first vertex occurring in an edge.
func BooleanFree(g *graph.Graph) []cq.Var {
	if g.M() == 0 {
		return nil
	}
	return []cq.Var{g.Edges[0][0]}
}

// ChooseFree picks ⌈frac·|candidates|⌉ distinct variables uniformly at
// random from candidates — the paper's 20% rule with frac = 0.2. The
// result is sorted for determinism given a seeded rng.
func ChooseFree(candidates []cq.Var, frac float64, rng *rand.Rand) []cq.Var {
	if frac <= 0 || len(candidates) == 0 {
		return nil
	}
	n := int(frac*float64(len(candidates)) + 0.999999)
	if n > len(candidates) {
		n = len(candidates)
	}
	perm := rng.Perm(len(candidates))
	out := make([]cq.Var, n)
	for i := 0; i < n; i++ {
		out[i] = candidates[perm[i]]
	}
	sort.Ints(out)
	return out
}

// EdgeVertices returns the vertices of g that touch at least one edge,
// ascending — the candidate pool for ChooseFree.
func EdgeVertices(g *graph.Graph) []cq.Var {
	touched := make(map[int]bool)
	for _, e := range g.Edges {
		touched[e[0]] = true
		touched[e[1]] = true
	}
	out := make([]cq.Var, 0, len(touched))
	for v := range touched {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Lit is a SAT literal: a variable index with a sign (true = positive).
type Lit struct {
	Var int
	Pos bool
}

// Clause is a disjunction of literals over distinct variables.
type Clause []Lit

// SAT is a CNF formula over variables 0..NumVars-1.
type SAT struct {
	NumVars int
	Clauses []Clause
}

// Density returns clauses-per-variable, the standard SAT density.
func (s *SAT) Density() float64 {
	if s.NumVars == 0 {
		return 0
	}
	return float64(len(s.Clauses)) / float64(s.NumVars)
}

// RandomSAT generates a random k-SAT formula with n variables and m
// clauses: each clause picks k distinct variables uniformly and signs them
// by fair coins (the fixed-clause-length model).
func RandomSAT(k, n, m int, rng *rand.Rand) (*SAT, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("instance.RandomSAT: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	s := &SAT{NumVars: n}
	for c := 0; c < m; c++ {
		perm := rng.Perm(n)
		cl := make(Clause, k)
		for i := 0; i < k; i++ {
			cl[i] = Lit{Var: perm[i], Pos: rng.Intn(2) == 0}
		}
		s.Clauses = append(s.Clauses, cl)
	}
	return s, nil
}

// satPatternName names the relation for a clause sign pattern, e.g.
// "c3_101" for a 3-clause with signs (+,−,+). The relation contains every
// Boolean tuple except the single falsifying assignment.
func satPatternName(signs []bool) string {
	name := fmt.Sprintf("c%d_", len(signs))
	for _, s := range signs {
		if s {
			name += "1"
		} else {
			name += "0"
		}
	}
	return name
}

// SATDatabase returns the database of clause-pattern relations for
// k-literal clauses: 2^k relations of arity k, each with 2^k − 1 tuples
// (all assignments except the falsifying one). Like the 3-COLOR database
// it is tiny and independent of the instance.
func SATDatabase(k int) cq.Database {
	db := make(cq.Database)
	attrs := make([]relation.Attr, k)
	for i := range attrs {
		attrs[i] = i
	}
	for pat := 0; pat < 1<<k; pat++ {
		signs := make([]bool, k)
		for i := range signs {
			signs[i] = pat&(1<<i) != 0
		}
		rel := relation.New(attrs)
		for asg := 0; asg < 1<<k; asg++ {
			falsifies := true
			t := make(relation.Tuple, k)
			for i := range signs {
				bit := asg&(1<<i) != 0
				if bit {
					t[i] = 1
				}
				// A positive literal is falsified by 0, a negative
				// literal by 1.
				if bit == signs[i] {
					falsifies = false
				}
			}
			if !falsifies {
				rel.Add(t)
			}
		}
		db[satPatternName(signs)] = rel
	}
	return db
}

// SATQuery translates a CNF formula into a conjunctive query: one atom
// per clause, naming the relation of the clause's sign pattern with the
// clause's variables as arguments. The query is nonempty iff the formula
// is satisfiable. free lists the free variables (nil plus Boolean
// emulation is the caller's choice). Clause widths may be mixed — DIMACS
// benchmark formulas often are — and the returned database contains the
// pattern relations for every width that occurs.
func SATQuery(s *SAT, free []cq.Var) (*cq.Query, cq.Database, error) {
	if len(s.Clauses) == 0 {
		return nil, nil, fmt.Errorf("instance.SATQuery: formula has no clauses")
	}
	q := &cq.Query{Free: append([]cq.Var(nil), free...)}
	widths := make(map[int]bool)
	for i, cl := range s.Clauses {
		k := len(cl)
		if k == 0 {
			return nil, nil, fmt.Errorf("instance.SATQuery: clause %d is empty", i)
		}
		widths[k] = true
		signs := make([]bool, k)
		args := make([]cq.Var, k)
		seen := make(map[int]bool, k)
		for j, lit := range cl {
			if seen[lit.Var] {
				return nil, nil, fmt.Errorf("instance.SATQuery: clause %d repeats variable %d", i, lit.Var)
			}
			seen[lit.Var] = true
			signs[j] = lit.Pos
			args[j] = lit.Var
		}
		q.Atoms = append(q.Atoms, cq.Atom{Rel: satPatternName(signs), Args: args})
	}
	db := make(cq.Database)
	for k := range widths {
		for name, rel := range SATDatabase(k) {
			db[name] = rel
		}
	}
	return q, db, nil
}

// SATVariablesInClauses returns the variables that occur in some clause,
// ascending — the candidate pool for ChooseFree on SAT instances.
func SATVariablesInClauses(s *SAT) []cq.Var {
	seen := make(map[int]bool)
	for _, cl := range s.Clauses {
		for _, lit := range cl {
			seen[lit.Var] = true
		}
	}
	out := make([]cq.Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// HomomorphismDatabase returns the database for graph-homomorphism
// queries into the target graph h: a binary relation "hedge" containing
// both orientations of every edge of h. Homomorphism problems are the
// general form of the paper's CSP connection (Kolaitis–Vardi): a graph g
// maps homomorphically into h iff the query HomomorphismQuery(g, ...) is
// nonempty over this database. With h = K_k this is exactly k-COLOR.
func HomomorphismDatabase(h *graph.Graph) cq.Database {
	rel := relation.New([]relation.Attr{0, 1})
	for _, e := range h.Edges {
		rel.Add(relation.Tuple{relation.Value(e[0]), relation.Value(e[1])})
		rel.Add(relation.Tuple{relation.Value(e[1]), relation.Value(e[0])})
	}
	return cq.Database{"hedge": rel}
}

// HomomorphismQuery translates the source graph g into the conjunctive
// query deciding g → h homomorphism over HomomorphismDatabase(h): one
// hedge atom per edge of g. free follows the same conventions as
// ColorQuery.
func HomomorphismQuery(g *graph.Graph, free []cq.Var) (*cq.Query, error) {
	if g.M() == 0 {
		return nil, fmt.Errorf("instance.HomomorphismQuery: source graph has no edges")
	}
	q := &cq.Query{Free: append([]cq.Var(nil), free...)}
	for _, e := range g.Edges {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "hedge", Args: []cq.Var{e[0], e[1]}})
	}
	touched := make(map[cq.Var]bool)
	for _, e := range g.Edges {
		touched[e[0]] = true
		touched[e[1]] = true
	}
	for _, v := range q.Free {
		if !touched[v] {
			return nil, fmt.Errorf("instance.HomomorphismQuery: free vertex %d touches no edge", v)
		}
	}
	return q, nil
}
