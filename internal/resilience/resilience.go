// Package resilience connects the paper's plan-construction methods
// (package core) to the engine's degradation ladder
// (engine.ExecResilient). It lives outside both packages so that core
// stays a pure plan library and engine stays method-agnostic.
package resilience

import (
	"math/rand"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/plan"
)

// DegradationLadder returns the fallback ladder for engine.ExecResilient:
// the paper's methods ordered from cheapest re-plan to most robust. A
// plan that blows the row cap or memory budget is almost always a
// projection-pushing failure — the straightforward method's intermediates
// are exponential exactly where early projection (Section 4) and bucket
// elimination (Section 5) stay polynomial in the treewidth — so retrying
// down this ladder turns a resource abort into the answer the safer
// method would have produced all along.
//
// rng seeds the bucket-elimination tie-breaking (nil is deterministic);
// plans are constructed lazily, only if their rung is reached.
func DegradationLadder(q *cq.Query, rng *rand.Rand) []engine.Fallback {
	return []engine.Fallback{
		{
			Name:  string(core.MethodEarlyProjection),
			Build: func() (plan.Node, error) { return core.EarlyProjection(q) },
		},
		{
			Name:  string(core.MethodBucketElimination),
			Build: func() (plan.Node, error) { return core.BucketElimination(q, rng) },
		},
	}
}
