// Package resilience connects the paper's plan-construction methods
// (package core) to the engine's degradation ladder
// (engine.ExecResilient). It lives outside both packages so that core
// stays a pure plan library and engine stays method-agnostic.
package resilience

import (
	"context"
	"math/rand"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/plan"
)

// DegradationLadder returns the fallback ladder for engine.ExecResilient:
// when the query is narrow (MCS elimination width at most
// engine.DefaultYannakakisWidth — acyclic queries always qualify), the
// Yannakakis full reducer leads, because its semijoin sweeps delete
// non-contributing tuples before anything is materialized and so survive
// exactly the resource aborts that trigger the ladder; then the paper's
// methods ordered from cheapest re-plan to most robust. A plan that blows
// the row cap or memory budget is almost always a projection-pushing
// failure — the straightforward method's intermediates are exponential
// exactly where early projection (Section 4) and bucket elimination
// (Section 5) stay polynomial in the treewidth — so retrying down this
// ladder turns a resource abort into the answer the safer method would
// have produced all along.
//
// rng seeds the bucket-elimination tie-breaking (nil is deterministic);
// plans are constructed lazily, only if their rung is reached.
// Between the full reducer and the plan methods sits the streaming rung:
// the pipelined engine's semijoin pushdown and live-byte accounting make
// it the natural retry when a materializing plan blew the memory budget
// but the query is not narrow enough (or the reducer itself failed) for
// Yannakakis.
// Wide queries lead with the worst-case-optimal rung instead: when the
// MCS width is over the Yannakakis threshold the query is (or behaves
// like) a cyclic one, every join-tree method risks an intermediate
// polynomially over the output, and the leapfrog multiway join is the
// only executor whose work is bounded by the AGM output bound.
//
// With Options.SpillDir set, every rung additionally carries an implicit
// retry-with-spill step (engine.ExecResilientStrategy): a rung that
// fails with ErrMemLimit re-runs once with spilling armed — recorded as
// a "<rung>+spill" attempt in Stats.Attempts — before the ladder falls
// further. Memory pressure then degrades to disk latency on the same
// strategy instead of forcing a method change, and only an actual spill
// failure (ErrSpill) or a second memory violation moves the run down a
// rung.
func DegradationLadder(q *cq.Query, rng *rand.Rand) []engine.Fallback {
	var ladder []engine.Fallback
	if engine.MCSElimWidth(q) <= engine.DefaultYannakakisWidth {
		ladder = append(ladder, YannakakisRung(q))
	} else {
		ladder = append(ladder, WCOJRung(q))
	}
	ladder = append(ladder, StreamRung(q))
	return append(ladder, PlanLadder(q, rng)...)
}

// YannakakisRung is the full-reducer rung: a Run-style fallback that
// executes q with engine.ExecYannakakisContext. The server's narrow-query
// routing also uses it as the first rung of ExecResilientStrategy.
func YannakakisRung(q *cq.Query) engine.Fallback {
	return engine.Fallback{
		Name: string(core.MethodYannakakis),
		Run: func(ctx context.Context, db cq.Database, opt engine.Options) (*engine.Result, error) {
			return engine.ExecYannakakisContext(ctx, q, db, opt)
		},
	}
}

// StreamRung is the pipelined-engine rung: a Run-style fallback that
// executes q's early-projection plan with engine.ExecStreamContext —
// semijoin pushdown, fused projections, and a live-byte (rather than
// cumulative) memory budget. The server's mid-width routing uses it as
// the first rung of ExecResilientStrategy.
func StreamRung(q *cq.Query) engine.Fallback {
	return engine.Fallback{
		Name: string(core.MethodStream),
		Run: func(ctx context.Context, db cq.Database, opt engine.Options) (*engine.Result, error) {
			p, err := core.BuildPlan(core.MethodStream, q, nil)
			if err != nil {
				return nil, err
			}
			return engine.ExecStreamContext(ctx, p, db, opt)
		},
	}
}

// WCOJRung is the worst-case-optimal rung: a Run-style fallback that
// executes q as one leapfrog multiway join with engine.ExecWCOJContext.
// The server's AGM-bounded routing uses it as the first rung of
// ExecResilientStrategy for cyclic queries, and DegradationLadder leads
// with it when the query is too wide for the full reducer.
func WCOJRung(q *cq.Query) engine.Fallback {
	return engine.Fallback{
		Name: string(core.MethodWCOJ),
		Run: func(ctx context.Context, db cq.Database, opt engine.Options) (*engine.Result, error) {
			return engine.ExecWCOJContext(ctx, q, db, opt)
		},
	}
}

// RemoteRung adapts an execution that happens outside the local engine —
// a cluster coordinator's forward to its worker fleet — into a
// degradation-ladder rung. run receives the context and may ignore the
// database and options entirely; a nil result is normalized to an empty
// one to satisfy the Fallback.Run contract. The coordinator composes
// RemoteRung ahead of DegradationLadder so that when every replica for a
// shard is down (run fails with an error wrapping engine.ErrInternal,
// which is degradable), execution falls back to local degraded rungs and
// Stats.Attempts leads with the failed fleet attempt — the answer then
// honestly reports how it was rescued.
func RemoteRung(name string, run func(ctx context.Context) (*engine.Result, error)) engine.Fallback {
	return engine.Fallback{
		Name: name,
		Run: func(ctx context.Context, _ cq.Database, _ engine.Options) (*engine.Result, error) {
			res, err := run(ctx)
			if res == nil {
				res = &engine.Result{}
			}
			return res, err
		},
	}
}

// PlanLadder is the plan-based part of the ladder: early projection, then
// bucket elimination.
func PlanLadder(q *cq.Query, rng *rand.Rand) []engine.Fallback {
	return []engine.Fallback{
		{
			Name:  string(core.MethodEarlyProjection),
			Build: func() (plan.Node, error) { return core.EarlyProjection(q) },
		},
		{
			Name:  string(core.MethodBucketElimination),
			Build: func() (plan.Node, error) { return core.BucketElimination(q, rng) },
		},
	}
}
