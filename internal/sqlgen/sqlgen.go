// Package sqlgen renders project-join plans in the SQL dialect the paper
// ships to PostgreSQL (Appendix A): table aliases with column renaming
// ("edge e1 (v1,v2)"), explicit JOIN ... ON chains whose parenthesization
// forces the evaluation order, SELECT DISTINCT subqueries named AS tN for
// every early projection, and the naive comma-FROM/WHERE form of
// Section 3.
//
// Variables are rendered as columns v<id>; every plan.Project becomes a
// subquery, every plan.Join a JOIN ... ON, and every plan.Scan a renamed
// base-table reference. Package sqlparse parses this dialect back into
// plans, which the tests use as a round-trip oracle.
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

// ColName renders a variable as a column name.
func ColName(v cq.Var) string { return fmt.Sprintf("v%d", v) }

// generator carries alias counters through a rendering.
type generator struct {
	scans int
	subqs int
}

// rendered is a FROM item: its SQL text and where each variable can be
// referenced.
type rendered struct {
	sql  string
	cols map[cq.Var]string // variable -> qualified column reference
}

// FromPlan renders a plan as a SQL query in the paper's dialect. The plan
// root must expose at least one column (SQL cannot express a zero-column
// SELECT; the paper emulates Boolean queries with one projected variable).
func FromPlan(p plan.Node) (string, error) {
	if len(p.Attrs()) == 0 {
		return "", fmt.Errorf("sqlgen: plan has no output columns; SQL needs at least one (the paper's Boolean emulation keeps one variable)")
	}
	g := &generator{}
	body, err := g.selectBody(p)
	if err != nil {
		return "", err
	}
	return body + ";", nil
}

// selectBody renders a plan as "SELECT DISTINCT ... FROM ..." without a
// trailing semicolon or wrapping parentheses.
func (g *generator) selectBody(p plan.Node) (string, error) {
	var cols []cq.Var
	var child plan.Node
	switch t := p.(type) {
	case *plan.Project:
		cols = t.Cols
		child = t.Child
	default:
		cols = p.Attrs()
		child = p
	}
	item, err := g.fromExpr(child)
	if err != nil {
		return "", err
	}
	var sel []string
	for _, v := range cols {
		ref, ok := item.cols[v]
		if !ok {
			return "", fmt.Errorf("sqlgen: projected variable %s not produced by FROM clause", ColName(v))
		}
		sel = append(sel, ref)
	}
	return "SELECT DISTINCT " + strings.Join(sel, ", ") + "\nFROM " + item.sql, nil
}

// fromExpr renders a Scan/Join/Project subtree as a FROM item.
func (g *generator) fromExpr(p plan.Node) (rendered, error) {
	switch t := p.(type) {
	case *plan.Scan:
		g.scans++
		alias := fmt.Sprintf("e%d", g.scans)
		var names []string
		cols := make(map[cq.Var]string, len(t.Atom.Args))
		for _, v := range t.Atom.Args {
			names = append(names, ColName(v))
			cols[v] = alias + "." + ColName(v)
		}
		return rendered{
			sql:  fmt.Sprintf("%s %s (%s)", t.Atom.Rel, alias, strings.Join(names, ",")),
			cols: cols,
		}, nil

	case *plan.Project:
		body, err := g.selectBody(t)
		if err != nil {
			return rendered{}, err
		}
		g.subqs++
		alias := fmt.Sprintf("t%d", g.subqs)
		cols := make(map[cq.Var]string, len(t.Cols))
		for _, v := range t.Cols {
			cols[v] = alias + "." + ColName(v)
		}
		return rendered{
			sql:  "(" + indent(body) + ") AS " + alias,
			cols: cols,
		}, nil

	case *plan.Join:
		left, err := g.fromExpr(t.Left)
		if err != nil {
			return rendered{}, err
		}
		right, err := g.fromExpr(t.Right)
		if err != nil {
			return rendered{}, err
		}
		// Join condition: one equality per shared variable, rendered
		// right-side first as the appendix does. TRUE for cross
		// products (appendix A.4).
		var shared []cq.Var
		for v := range left.cols {
			if _, ok := right.cols[v]; ok {
				shared = append(shared, v)
			}
		}
		sort.Ints(shared)
		cond := "TRUE"
		if len(shared) > 0 {
			var eqs []string
			for _, v := range shared {
				eqs = append(eqs, right.cols[v]+" = "+left.cols[v])
			}
			cond = strings.Join(eqs, " AND ")
		}
		// Parenthesize composite operands so the evaluation order is
		// forced, exactly why the paper uses this form.
		ls := left.sql
		if _, ok := t.Left.(*plan.Join); ok {
			ls = "(" + ls + ")"
		}
		rs := right.sql
		if _, ok := t.Right.(*plan.Join); ok {
			rs = "(" + rs + ")"
		}
		cols := make(map[cq.Var]string, len(left.cols)+len(right.cols))
		for v, ref := range right.cols {
			cols[v] = ref
		}
		for v, ref := range left.cols {
			cols[v] = ref // prefer left references, as plan schemas do
		}
		return rendered{
			sql:  rs + " JOIN " + ls + " ON (" + cond + ")",
			cols: cols,
		}, nil

	default:
		return rendered{}, fmt.Errorf("sqlgen: unknown plan node %T", p)
	}
}

func indent(s string) string {
	return "\n   " + strings.ReplaceAll(s, "\n", "\n   ") + "\n"
}

// Naive renders the naive translation of Section 3: all atoms enumerated
// in the FROM clause and variable equalities in WHERE, pointing each
// occurrence at the first occurrence of the same variable (the paper's
// p(v) array). The query's free variables form the SELECT list; for the
// Boolean case the paper lists a single variable.
func Naive(q *cq.Query) (string, error) {
	if len(q.Atoms) == 0 {
		return "", fmt.Errorf("sqlgen: query has no atoms")
	}
	if len(q.Free) == 0 {
		return "", fmt.Errorf("sqlgen: SQL needs at least one projected variable")
	}
	alias := func(i int) string { return fmt.Sprintf("e%d", i+1) }

	firstAtom := q.FirstOccurrence()
	var sel []string
	for _, v := range q.Free {
		sel = append(sel, alias(firstAtom[v])+"."+ColName(v))
	}

	var from []string
	for i, a := range q.Atoms {
		var names []string
		for _, v := range a.Args {
			names = append(names, ColName(v))
		}
		from = append(from, fmt.Sprintf("%s %s (%s)", a.Rel, alias(i), strings.Join(names, ",")))
	}

	var conds []string
	for i, a := range q.Atoms {
		for _, v := range a.Args {
			if p := firstAtom[v]; p != i {
				conds = append(conds, fmt.Sprintf("%s.%s = %s.%s",
					alias(i), ColName(v), alias(p), ColName(v)))
			}
		}
	}

	sql := "SELECT DISTINCT " + strings.Join(sel, ", ") +
		"\nFROM " + strings.Join(from, ", ")
	if len(conds) > 0 {
		sql += "\nWHERE " + strings.Join(conds, " AND ")
	}
	return sql + ";", nil
}
