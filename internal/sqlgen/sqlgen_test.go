package sqlgen

import (
	"strings"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

func scan(rel string, vars ...cq.Var) *plan.Scan {
	return &plan.Scan{Atom: cq.Atom{Rel: rel, Args: vars}}
}

func TestColName(t *testing.T) {
	if ColName(7) != "v7" {
		t.Fatalf("ColName = %q", ColName(7))
	}
}

func TestFromPlanSingleScan(t *testing.T) {
	p := &plan.Project{Child: scan("edge", 0, 1), Cols: []cq.Var{0}}
	sql, err := FromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT DISTINCT e1.v0\nFROM edge e1 (v0,v1);"
	if sql != want {
		t.Fatalf("sql = %q, want %q", sql, want)
	}
}

func TestFromPlanJoinCondition(t *testing.T) {
	p := &plan.Project{
		Child: &plan.Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Cols:  []cq.Var{0},
	}
	sql, err := FromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "ON (e2.v1 = e1.v1)") {
		t.Fatalf("join condition missing:\n%s", sql)
	}
}

func TestFromPlanCrossProductUsesTrue(t *testing.T) {
	p := &plan.Project{
		Child: &plan.Join{Left: scan("edge", 0, 1), Right: scan("edge", 2, 3)},
		Cols:  []cq.Var{0},
	}
	sql, err := FromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "ON (TRUE)") {
		t.Fatalf("cross product must use ON (TRUE):\n%s", sql)
	}
}

func TestFromPlanSubqueryAlias(t *testing.T) {
	inner := &plan.Project{
		Child: &plan.Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Cols:  []cq.Var{0, 2},
	}
	p := &plan.Project{
		Child: &plan.Join{Left: inner, Right: scan("edge", 2, 3)},
		Cols:  []cq.Var{0},
	}
	sql, err := FromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, ") AS t1") {
		t.Fatalf("subquery alias missing:\n%s", sql)
	}
	if !strings.Contains(sql, "t1.v2 = ") && !strings.Contains(sql, " = t1.v2") {
		t.Fatalf("subquery column not referenced in join condition:\n%s", sql)
	}
}

func TestFromPlanNestedJoinsParenthesized(t *testing.T) {
	j := &plan.Join{
		Left:  &plan.Join{Left: scan("edge", 0, 1), Right: scan("edge", 1, 2)},
		Right: scan("edge", 2, 3),
	}
	p := &plan.Project{Child: j, Cols: []cq.Var{0}}
	sql, err := FromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "(") {
		t.Fatalf("nested join not parenthesized:\n%s", sql)
	}
}

func TestFromPlanZeroColumns(t *testing.T) {
	p := &plan.Project{Child: scan("edge", 0, 1), Cols: nil}
	if _, err := FromPlan(p); err == nil {
		t.Fatal("accepted zero-column root")
	}
}

func TestFromPlanProjectionOfMissingVariable(t *testing.T) {
	p := &plan.Project{Child: scan("edge", 0, 1), Cols: []cq.Var{9}}
	if _, err := FromPlan(p); err == nil {
		t.Fatal("accepted projection of variable not in FROM")
	}
}

func TestNaivePentagonMatchesAppendixShape(t *testing.T) {
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "edge", Args: []cq.Var{1, 2}},
			{Rel: "edge", Args: []cq.Var{1, 5}},
			{Rel: "edge", Args: []cq.Var{4, 5}},
			{Rel: "edge", Args: []cq.Var{3, 4}},
			{Rel: "edge", Args: []cq.Var{2, 3}},
		},
		Free: []cq.Var{1},
	}
	sql, err := Naive(q)
	if err != nil {
		t.Fatal(err)
	}
	// Appendix A.1 structure: 5 FROM entries, 5 WHERE equalities (one
	// per repeated occurrence).
	if got := strings.Count(sql, "edge e"); got != 5 {
		t.Fatalf("FROM entries = %d:\n%s", got, sql)
	}
	if got := strings.Count(sql, "="); got != 5 {
		t.Fatalf("WHERE equalities = %d, want 5:\n%s", got, sql)
	}
	if !strings.HasPrefix(sql, "SELECT DISTINCT e1.v1") {
		t.Fatalf("SELECT clause:\n%s", sql)
	}
}

func TestNaiveNoRepeatedVariablesNoWhere(t *testing.T) {
	q := &cq.Query{
		Atoms: []cq.Atom{{Rel: "edge", Args: []cq.Var{0, 1}}},
		Free:  []cq.Var{0},
	}
	sql, err := Naive(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "WHERE") {
		t.Fatalf("single-atom query needs no WHERE:\n%s", sql)
	}
}
