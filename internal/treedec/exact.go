package treedec

import (
	"fmt"
	"math/bits"

	"projpush/internal/graph"
)

// MaxExactVertices bounds the exact treewidth solver: the dynamic program
// tabulates all 2^n vertex subsets.
const MaxExactVertices = 22

// Exact computes the exact treewidth of g and an optimal elimination
// order, using the classic O(2^n · poly) dynamic program over vertex
// subsets (Bodlaender et al.): for a set S eliminated first,
//
//	TW(S) = min over v ∈ S of max(TW(S∖{v}), Q(S∖{v}, v))
//
// where Q(R, v) counts the vertices outside R ∪ {v} reachable from v via
// paths whose internal vertices lie in R — exactly v's live degree when
// eliminated after R. Treewidth is TW(V).
//
// Finding treewidth is NP-hard (the paper's reason for falling back to
// MCS); this solver exists to verify Theorems 1 and 2 on small graphs and
// to measure heuristic quality. It returns an error for graphs larger
// than MaxExactVertices.
func Exact(g *graph.Graph) (int, []int, error) {
	n := g.N
	if n > MaxExactVertices {
		return 0, nil, fmt.Errorf("treedec.Exact: %d vertices exceeds limit %d", n, MaxExactVertices)
	}
	if n == 0 {
		return -1, nil, nil
	}
	adjMask := make([]uint32, n)
	for _, e := range g.Edges {
		adjMask[e[0]] |= 1 << uint(e[1])
		adjMask[e[1]] |= 1 << uint(e[0])
	}

	// q computes Q(R, v) as a bitmask BFS: grow the set of vertices
	// reachable from v through R; count reachable outside R∪{v}.
	q := func(rMask uint32, v int) int {
		frontier := adjMask[v]
		visited := frontier
		for {
			// Expand through vertices inside R.
			expand := frontier & rMask
			next := uint32(0)
			for m := expand; m != 0; {
				w := bits.TrailingZeros32(m)
				m &^= 1 << uint(w)
				next |= adjMask[w]
			}
			next &^= visited
			if next == 0 {
				break
			}
			visited |= next
			frontier = next
		}
		outside := visited &^ (rMask | 1<<uint(v))
		return bits.OnesCount32(outside)
	}

	full := uint32(1)<<uint(n) - 1
	tw := make([]int8, full+1)
	choice := make([]int8, full+1)
	tw[0] = -1 // width of eliminating nothing
	for s := uint32(1); s <= full; s++ {
		best := int8(127)
		bestV := int8(-1)
		for m := s; m != 0; {
			v := bits.TrailingZeros32(m)
			m &^= 1 << uint(v)
			r := s &^ (1 << uint(v))
			qv := int8(q(r, v))
			w := tw[r]
			if qv > w {
				w = qv
			}
			if w < best {
				best = w
				bestV = int8(v)
			}
		}
		tw[s] = best
		choice[s] = bestV
	}

	// Reconstruct: choice[S] is the vertex eliminated *last* within the
	// prefix S, so walking down from the full set yields the elimination
	// order back-to-front.
	order := make([]int, n)
	s := full
	for i := n - 1; i >= 0; i-- {
		v := int(choice[s])
		order[i] = v
		s &^= 1 << uint(v)
	}
	return int(tw[full]), order, nil
}
