package treedec

import (
	"fmt"
	"sort"
)

// Simplified is the output of MarkAndSweep: a pruned decomposition plus,
// for every input relation, the node whose bag covers it.
type Simplified struct {
	Dec *Decomposition
	// RelNode[j] is the node of Dec assigned to relation j.
	RelNode []int
}

// MarkAndSweep implements Algorithm 2 of the paper: given a tree
// decomposition (of a query's join graph) and the query's relations — each
// given as the set of join-graph vertices of its attributes, with the
// target schema passed as one more "relation" R_T — it simplifies the
// decomposition to contain only what the join-expression tree needs,
// without increasing width.
//
// Each relation is assigned a host node whose bag contains it (one exists
// in any valid decomposition because a relation's attributes form a clique
// of the join graph). A vertex then survives in exactly the minimal
// subtree spanning the host nodes where it was marked — the union of the
// pairwise path markings in the paper's formulation — and empty nodes are
// deleted, bypassing interior ones. The result satisfies Lemma 2: same
// width or less, every leaf hosts a relation, and all decomposition
// properties are preserved.
func MarkAndSweep(d *Decomposition, rels [][]int) (*Simplified, error) {
	n := d.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("treedec: empty decomposition")
	}

	// Step 1: host node per relation; record marks per vertex.
	host := make([]int, len(rels))
	markNodes := make(map[int][]int) // vertex -> nodes where it is marked
	for j, rel := range rels {
		found := -1
		for i, bag := range d.Bags {
			if containsAll(bag, rel) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("treedec: no bag covers relation %d (%v)", j, rel)
		}
		host[j] = found
		for _, v := range rel {
			markNodes[v] = append(markNodes[v], found)
		}
	}

	// Step 2: for every marked vertex, keep it on the minimal subtree
	// spanning its marked nodes (root the walk at one marked node; a node
	// survives iff its subtree contains a marked node).
	keep := make([]map[int]bool, n)
	for i := range keep {
		keep[i] = make(map[int]bool)
	}
	parent := make([]int, n)
	order := make([]int, 0, n)
	for v, nodes := range markNodes {
		root := nodes[0]
		inS := make(map[int]int, len(nodes))
		for _, x := range nodes {
			inS[x]++
		}
		// Iterative DFS computing subtree counts of marked nodes.
		for i := range parent {
			parent[i] = -2
		}
		order = order[:0]
		parent[root] = -1
		stack := []int{root}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, u)
			for _, w := range d.Adj[u] {
				if parent[w] == -2 {
					parent[w] = u
					stack = append(stack, w)
				}
			}
		}
		count := make([]int, n)
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			count[u] += inS[u]
			if p := parent[u]; p >= 0 {
				count[p] += count[u]
			}
		}
		for _, u := range order {
			if count[u] >= 1 {
				keep[u][v] = true
			}
		}
	}

	// Build the swept bags.
	bags := make([][]int, n)
	for i := range bags {
		for v := range keep[i] {
			bags[i] = append(bags[i], v)
		}
		sort.Ints(bags[i])
	}

	// Step 3: delete empty nodes. Leaves are removed; interior empty
	// nodes are bypassed by chaining their neighbors (safe: a vertex
	// crossing an empty node would violate the running-intersection
	// property, so none does).
	adj := make([]map[int]bool, n)
	for i, nb := range d.Adj {
		adj[i] = make(map[int]bool, len(nb))
		for _, j := range nb {
			adj[i][j] = true
		}
	}
	alive := make([]bool, n)
	aliveCount := 0
	for i := range alive {
		alive[i] = true
		aliveCount++
	}
	// Never delete the last node even if empty (a degenerate query could
	// have an all-empty decomposition; keep one node to stay a tree).
	for i := 0; i < n && aliveCount > 1; i++ {
		if !alive[i] || len(bags[i]) > 0 {
			continue
		}
		var nbrs []int
		for j := range adj[i] {
			nbrs = append(nbrs, j)
		}
		sort.Ints(nbrs)
		for _, j := range nbrs {
			delete(adj[j], i)
		}
		adj[i] = nil
		for k := 1; k < len(nbrs); k++ {
			adj[nbrs[k-1]][nbrs[k]] = true
			adj[nbrs[k]][nbrs[k-1]] = true
		}
		alive[i] = false
		aliveCount--
	}

	// Compact indices.
	remap := make([]int, n)
	var newBags [][]int
	for i := 0; i < n; i++ {
		if alive[i] {
			remap[i] = len(newBags)
			newBags = append(newBags, bags[i])
		} else {
			remap[i] = -1
		}
	}
	newAdj := make([][]int, len(newBags))
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		var nb []int
		for j := range adj[i] {
			nb = append(nb, remap[j])
		}
		sort.Ints(nb)
		newAdj[remap[i]] = nb
	}

	out := &Simplified{
		Dec:     &Decomposition{Bags: newBags, Adj: newAdj},
		RelNode: make([]int, len(rels)),
	}
	for j, h := range host {
		if remap[h] < 0 {
			// The host bag was swept empty — possible only when the
			// relation itself is empty (no attributes); reassign to
			// node 0.
			out.RelNode[j] = 0
			continue
		}
		out.RelNode[j] = remap[h]
	}
	return out, nil
}

// containsAll reports whether the sorted bag contains every vertex of rel.
func containsAll(bag, rel []int) bool {
	for _, v := range rel {
		if !bagHas(bag, v) {
			return false
		}
	}
	return true
}
