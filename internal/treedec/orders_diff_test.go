package treedec

// Pinned pre-rewrite implementations of the ordering heuristics — the
// O(n^2)-scan MCS and the map-of-sets elimination simulation — used as
// differential oracles for the bucket-queue/bitset rewrite and as the
// baselines in the ordering microbenchmarks.

import (
	"math/rand"
	"testing"

	"projpush/internal/graph"
)

// mcsScanBaseline is the pre-rewrite MCS: a full scan over all vertices
// per pick, rebuilding the tie set each round.
func mcsScanBaseline(g *graph.Graph, initial []int, rng *rand.Rand) []int {
	adj := g.Adjacency()
	numbered := make([]bool, g.N)
	weight := make([]int, g.N)
	order := make([]int, 0, g.N)

	pick := func(v int) {
		numbered[v] = true
		order = append(order, v)
		for _, w := range adj[v] {
			if !numbered[w] {
				weight[w]++
			}
		}
	}
	for _, v := range initial {
		if v >= 0 && v < g.N && !numbered[v] {
			pick(v)
		}
	}
	for len(order) < g.N {
		best := -1
		var ties []int
		for v := 0; v < g.N; v++ {
			if numbered[v] {
				continue
			}
			switch {
			case best < 0 || weight[v] > weight[best]:
				best = v
				ties = ties[:0]
				ties = append(ties, v)
			case weight[v] == weight[best]:
				ties = append(ties, v)
			}
		}
		if rng != nil && len(ties) > 1 {
			best = ties[rng.Intn(len(ties))]
		}
		pick(best)
	}
	return order
}

// liveSetsMapBaseline / eliminateMapBaseline are the pre-rewrite
// elimination simulation on []map[int]bool adjacency.
func liveSetsMapBaseline(g *graph.Graph) []map[int]bool {
	adj := make([]map[int]bool, g.N)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, e := range g.Edges {
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	return adj
}

func eliminateMapBaseline(adj []map[int]bool, v int) []int {
	nbrs := make([]int, 0, len(adj[v]))
	for w := range adj[v] {
		nbrs = append(nbrs, w)
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			adj[nbrs[i]][nbrs[j]] = true
			adj[nbrs[j]][nbrs[i]] = true
		}
	}
	for _, w := range nbrs {
		delete(adj[w], v)
	}
	adj[v] = nil
	return nbrs
}

func inducedWidthMapBaseline(g *graph.Graph, elim []int) int {
	adj := liveSetsMapBaseline(g)
	w := 0
	for _, v := range elim {
		if n := len(eliminateMapBaseline(adj, v)); n > w {
			w = n
		}
	}
	return w
}

func minFillMapBaseline(g *graph.Graph) []int {
	adj := liveSetsMapBaseline(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestFill := -1, int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if removed[v] {
				continue
			}
			fill := 0
			nbrs := make([]int, 0, len(adj[v]))
			for w := range adj[v] {
				nbrs = append(nbrs, w)
			}
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !adj[nbrs[i]][nbrs[j]] {
						fill++
					}
				}
			}
			if fill < bestFill {
				best, bestFill = v, fill
			}
		}
		eliminateMapBaseline(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}

func minDegreeMapBaseline(g *graph.Graph) []int {
	adj := liveSetsMapBaseline(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestDeg := -1, int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if !removed[v] {
				if d := len(adj[v]); d < bestDeg {
					best, bestDeg = v, d
				}
			}
		}
		eliminateMapBaseline(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}

func minWeightMapBaseline(g *graph.Graph, weight []int) []int {
	wt := func(v int) int {
		if v < len(weight) && weight[v] > 0 {
			return weight[v]
		}
		return 1
	}
	adj := liveSetsMapBaseline(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestW, bestFill := -1, int(^uint(0)>>1), int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if removed[v] {
				continue
			}
			w := wt(v)
			nbrs := make([]int, 0, len(adj[v]))
			for u := range adj[v] {
				w += wt(u)
				nbrs = append(nbrs, u)
			}
			fill := 0
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !adj[nbrs[i]][nbrs[j]] {
						fill++
					}
				}
			}
			if w < bestW || (w == bestW && fill < bestFill) {
				best, bestW, bestFill = v, w, fill
			}
		}
		eliminateMapBaseline(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}

func sameOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMCSDifferential pins the bucket-queue MCS against the scanning
// implementation across random graphs, with and without seeded random
// tie-breaking and with initial seed vertices. Both consume the rng
// stream identically, so the orders must match element for element.
func TestMCSDifferential(t *testing.T) {
	meta := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		n := 2 + meta.Intn(60)
		maxM := n * (n - 1) / 2
		m := meta.Intn(maxM + 1)
		g, err := graph.Random(n, m, meta)
		if err != nil {
			t.Fatal(err)
		}
		var initial []int
		for k := meta.Intn(3); k > 0; k-- {
			initial = append(initial, meta.Intn(n))
		}
		seed := meta.Int63()

		oldOrder := mcsScanBaseline(g, initial, rand.New(rand.NewSource(seed)))
		newOrder := MCS(g, initial, rand.New(rand.NewSource(seed)))
		if !sameOrder(oldOrder, newOrder) {
			t.Fatalf("trial %d (n=%d m=%d init=%v): seeded MCS diverged\nold: %v\nnew: %v",
				trial, n, m, initial, oldOrder, newOrder)
		}
		if !sameOrder(mcsScanBaseline(g, initial, nil), MCS(g, initial, nil)) {
			t.Fatalf("trial %d: deterministic MCS diverged", trial)
		}
	}
}

// TestEliminationDifferential pins every bitset-based elimination
// consumer — MinFill, MinDegree, MinWeight, InducedWidth, FillIn — to
// the map-of-sets baselines on random graphs.
func TestEliminationDifferential(t *testing.T) {
	meta := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		n := 2 + meta.Intn(40)
		maxM := n * (n - 1) / 2
		m := meta.Intn(maxM + 1)
		g, err := graph.Random(n, m, meta)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := MinFill(g), minFillMapBaseline(g); !sameOrder(got, want) {
			t.Fatalf("trial %d: MinFill diverged: %v vs %v", trial, got, want)
		}
		if got, want := MinDegree(g), minDegreeMapBaseline(g); !sameOrder(got, want) {
			t.Fatalf("trial %d: MinDegree diverged: %v vs %v", trial, got, want)
		}
		weights := make([]int, n)
		for i := range weights {
			weights[i] = 1 + meta.Intn(5)
		}
		if got, want := MinWeight(g, weights), minWeightMapBaseline(g, weights); !sameOrder(got, want) {
			t.Fatalf("trial %d: MinWeight diverged: %v vs %v", trial, got, want)
		}
		elim := meta.Perm(n)
		if got, want := InducedWidth(g, elim), inducedWidthMapBaseline(g, elim); got != want {
			t.Fatalf("trial %d: InducedWidth diverged: %d vs %d", trial, got, want)
		}
		// FillIn against a direct pair count on the map baseline.
		adj := liveSetsMapBaseline(g)
		wantFill := 0
		for _, v := range elim {
			nbrs := make([]int, 0, len(adj[v]))
			for w := range adj[v] {
				nbrs = append(nbrs, w)
			}
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !adj[nbrs[i]][nbrs[j]] {
						wantFill++
					}
				}
			}
			eliminateMapBaseline(adj, v)
		}
		if got := FillIn(g, elim); got != wantFill {
			t.Fatalf("trial %d: FillIn diverged: %d vs %d", trial, got, wantFill)
		}
	}
}

// TestEliminateReturnsAscendingNeighbors pins the new contract: the
// bitset eliminate reports live neighbors in ascending vertex order.
func TestEliminateReturnsAscendingNeighbors(t *testing.T) {
	g := graph.Complete(6)
	adj := liveSets(g)
	nbrs := eliminate(adj, 3)
	want := []int{0, 1, 2, 4, 5}
	if !sameOrder(nbrs, want) {
		t.Fatalf("eliminate neighbors = %v, want %v", nbrs, want)
	}
}
