package treedec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"projpush/internal/graph"
)

func TestTrivialDecompositionValid(t *testing.T) {
	g := graph.Complete(5)
	d := Trivial(g)
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	if d.Width() != 4 {
		t.Fatalf("width = %d, want 4", d.Width())
	}
}

func TestValidateCatchesBadDecompositions(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	cases := []struct {
		name string
		d    *Decomposition
	}{
		{"missing vertex", &Decomposition{
			Bags: [][]int{{0, 1}},
			Adj:  [][]int{nil},
		}},
		{"missing edge", &Decomposition{
			Bags: [][]int{{0, 1}, {2}},
			Adj:  [][]int{{1}, {0}},
		}},
		{"disconnected occurrence", &Decomposition{
			Bags: [][]int{{0, 1}, {1, 2}, {0}},
			Adj:  [][]int{{1}, {0, 2}, {1}},
		}},
		{"cycle skeleton", &Decomposition{
			Bags: [][]int{{0, 1}, {1, 2}, {0, 2}},
			Adj:  [][]int{{1, 2}, {0, 2}, {0, 1}},
		}},
		{"disconnected skeleton", &Decomposition{
			Bags: [][]int{{0, 1}, {1, 2}, {1}, {1}},
			Adj:  [][]int{{1}, {0}, {3}, {2}},
		}},
		{"unsorted bag", &Decomposition{
			Bags: [][]int{{1, 0}, {1, 2}},
			Adj:  [][]int{{1}, {0}},
		}},
		{"out-of-range vertex", &Decomposition{
			Bags: [][]int{{0, 1, 2, 7}},
			Adj:  [][]int{nil},
		}},
	}
	for _, c := range cases {
		if err := c.d.Validate(g); err == nil {
			t.Errorf("%s: Validate accepted invalid decomposition", c.name)
		}
	}
}

func TestValidDecompositionOfPath(t *testing.T) {
	g := graph.Path(4)
	d := &Decomposition{
		Bags: [][]int{{0, 1}, {1, 2}, {2, 3}},
		Adj:  [][]int{{1}, {0, 2}, {1}},
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	if d.Width() != 1 {
		t.Fatalf("width = %d, want 1", d.Width())
	}
}

func TestPath(t *testing.T) {
	d := &Decomposition{
		Bags: [][]int{{0}, {1}, {2}, {3}},
		Adj:  [][]int{{1}, {0, 2}, {1, 3}, {2}},
	}
	p := d.Path(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Fatalf("Path = %v", p)
	}
	if p := d.Path(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v", p)
	}
}

func TestMCSNumbering(t *testing.T) {
	g := graph.Cycle(5)
	order := MCS(g, []int{3}, nil)
	if len(order) != 5 || order[0] != 3 {
		t.Fatalf("MCS order = %v, want start at 3", order)
	}
	// Each subsequent vertex must have at least one numbered neighbor
	// (cycle is connected).
	numbered := map[int]bool{3: true}
	adj := g.Adjacency()
	for _, v := range order[1:] {
		hasNumbered := false
		for _, w := range adj[v] {
			if numbered[w] {
				hasNumbered = true
			}
		}
		if !hasNumbered {
			t.Fatalf("MCS picked %v with no numbered neighbor", v)
		}
		numbered[v] = true
	}
}

func TestMCSIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := graph.Random(12, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	order := MCS(g, []int{5, 7}, rng)
	if len(order) != 12 {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate %d in MCS order", v)
		}
		seen[v] = true
	}
	if order[0] != 5 || order[1] != 7 {
		t.Fatalf("initial vertices not first: %v", order)
	}
}

func TestEliminationOrderReverses(t *testing.T) {
	e := EliminationOrder([]int{3, 1, 2})
	if e[0] != 2 || e[1] != 1 || e[2] != 3 {
		t.Fatalf("EliminationOrder = %v", e)
	}
}

func TestInducedWidthKnownGraphs(t *testing.T) {
	// A perfect elimination order on a path gives width 1.
	p := graph.Path(5)
	if w := InducedWidth(p, []int{0, 1, 2, 3, 4}); w != 1 {
		t.Fatalf("path induced width = %d, want 1", w)
	}
	// Eliminating the middle of a star first is bad.
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if w := InducedWidth(star, []int{0, 1, 2, 3}); w != 3 {
		t.Fatalf("star bad order width = %d, want 3", w)
	}
	if w := InducedWidth(star, []int{1, 2, 3, 0}); w != 1 {
		t.Fatalf("star good order width = %d, want 1", w)
	}
}

func TestFromOrderWidthMatchesInducedWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8)
		m := rng.Intn(n * (n - 1) / 2)
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		elim := rng.Perm(n)
		d := FromOrder(g, elim)
		if err := d.Validate(g); err != nil {
			t.Fatalf("trial %d: FromOrder produced invalid decomposition: %v", trial, err)
		}
		if d.Width() != InducedWidth(g, elim) {
			t.Fatalf("trial %d: width %d != induced width %d",
				trial, d.Width(), InducedWidth(g, elim))
		}
	}
}

func TestExactKnownTreewidths(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single vertex", graph.New(1), 0},
		{"edgeless", graph.New(4), 0},
		{"path", graph.Path(6), 1},
		{"cycle", graph.Cycle(6), 2},
		{"K4", graph.Complete(4), 3},
		{"K6", graph.Complete(6), 5},
		{"ladder", graph.Ladder(5), 2},
		{"augmented path", graph.AugmentedPath(5), 1},
		{"augmented ladder", graph.AugmentedLadder(3), 2},
		{"circular ladder needs 3", graph.AugmentedCircularLadder(4), 3},
		{"wheel5", graph.Wheel(5), 3},
	}
	for _, c := range cases {
		tw, order, err := Exact(c.g)
		if err != nil {
			t.Fatal(err)
		}
		if tw != c.want {
			t.Errorf("%s: treewidth = %d, want %d", c.name, tw, c.want)
			continue
		}
		if got := InducedWidth(c.g, order); got != tw {
			t.Errorf("%s: returned order has induced width %d, want %d", c.name, got, tw)
		}
	}
}

func TestExactRejectsLargeGraphs(t *testing.T) {
	if _, _, err := Exact(graph.New(MaxExactVertices + 1)); err == nil {
		t.Fatal("Exact accepted oversized graph")
	}
}

func TestHeuristicsUpperBoundExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(6)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		tw, _, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		for name, elim := range map[string][]int{
			"mcs":       EliminationOrder(MCS(g, nil, nil)),
			"minfill":   MinFill(g),
			"mindegree": MinDegree(g),
		} {
			if w := InducedWidth(g, elim); w < tw {
				t.Fatalf("trial %d: %s width %d below exact treewidth %d (impossible)",
					trial, name, w, tw)
			}
		}
		// Degeneracy lower-bounds treewidth.
		if d := g.Degeneracy(); d > tw {
			t.Fatalf("trial %d: degeneracy %d exceeds treewidth %d", trial, d, tw)
		}
	}
}

func TestMinFillOptimalOnChordal(t *testing.T) {
	// Min-fill finds a zero-fill (perfect) order on chordal graphs;
	// a k-tree has treewidth k. Build a small 2-tree.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2) // base triangle
	g.AddEdge(3, 0)
	g.AddEdge(3, 1) // 3 attached to edge (0,1)
	g.AddEdge(4, 1)
	g.AddEdge(4, 2) // 4 attached to (1,2)
	g.AddEdge(5, 3)
	g.AddEdge(5, 1) // 5 attached to (3,1)
	if w := InducedWidth(g, MinFill(g)); w != 2 {
		t.Fatalf("min-fill width on 2-tree = %d, want 2", w)
	}
	// MCS is also perfect on chordal graphs (Tarjan–Yannakakis).
	if w := InducedWidth(g, EliminationOrder(MCS(g, nil, nil))); w != 2 {
		t.Fatalf("MCS width on 2-tree = %d, want 2", w)
	}
}

func TestQuickFromOrderAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(9)
		maxM := n * (n - 1) / 2
		g, err := graph.Random(n, rng.Intn(maxM+1), rng)
		if err != nil {
			return false
		}
		elim := rng.Perm(n)
		d := FromOrder(g, elim)
		return d.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkAndSweepPath(t *testing.T) {
	// Path 0-1-2-3 with relations {0,1},{1,2},{2,3} and target {0}.
	g := graph.Path(4)
	d := FromOrder(g, []int{3, 2, 1, 0})
	rels := [][]int{{0, 1}, {1, 2}, {2, 3}, {0}}
	s, err := MarkAndSweep(d, rels)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Dec.Validate(g); err != nil {
		t.Fatalf("swept decomposition invalid: %v", err)
	}
	if s.Dec.Width() > d.Width() {
		t.Fatalf("sweep increased width: %d > %d", s.Dec.Width(), d.Width())
	}
	// Every relation's node must cover it.
	for j, rel := range rels {
		if !containsAll(s.Dec.Bags[s.RelNode[j]], rel) {
			t.Fatalf("relation %d not covered by assigned node", j)
		}
	}
	// Every leaf hosts at least one relation (Lemma 2).
	hosted := make(map[int]bool)
	for _, nd := range s.RelNode {
		hosted[nd] = true
	}
	for i, nb := range s.Dec.Adj {
		if len(nb) <= 1 && !hosted[i] {
			t.Fatalf("leaf %d (bag %v) hosts no relation", i, s.Dec.Bags[i])
		}
	}
}

func TestMarkAndSweepDropsUselessNodes(t *testing.T) {
	// A decomposition with a vertex (4) that belongs to no relation:
	// the sweep must remove it.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 4)
	d := FromOrder(g, []int{0, 4, 2, 1, 3})
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	rels := [][]int{{0, 1}, {1, 2}}
	s, err := MarkAndSweep(d, rels)
	if err != nil {
		t.Fatal(err)
	}
	for _, bag := range s.Dec.Bags {
		if bagHas(bag, 4) {
			t.Fatal("vertex 4 not swept out")
		}
		if bagHas(bag, 3) {
			t.Fatal("isolated vertex 3 not swept out")
		}
	}
}

func TestMarkAndSweepErrorOnUncoveredRelation(t *testing.T) {
	g := graph.Path(3)
	d := FromOrder(g, []int{0, 1, 2})
	if _, err := MarkAndSweep(d, [][]int{{0, 2}}); err == nil {
		t.Fatal("accepted relation covered by no bag")
	}
}

func TestQuickMarkAndSweepPreservesValidityAndWidth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		m := 1 + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			return false
		}
		// Relations: the graph's edges; target: one endpoint.
		var rels [][]int
		for _, e := range g.Edges {
			u, v := e[0], e[1]
			if u > v {
				u, v = v, u
			}
			rels = append(rels, []int{u, v})
		}
		rels = append(rels, []int{g.Edges[0][0]})
		d := FromOrder(g, EliminationOrder(MCS(g, nil, rng)))
		s, err := MarkAndSweep(d, rels)
		if err != nil {
			return false
		}
		// The swept decomposition must stay valid for the subgraph on
		// relation vertices. Build that subgraph: all vertices with an
		// edge (isolated vertices may be swept away).
		sub := graph.New(g.N)
		touched := map[int]bool{}
		for _, e := range g.Edges {
			sub.AddEdge(e[0], e[1])
			touched[e[0]] = true
			touched[e[1]] = true
		}
		// Validate manually: edge coverage, occurrence connectivity and
		// width bound (vertex coverage only for touched vertices).
		if s.Dec.Width() > d.Width() {
			return false
		}
		covered := map[int]bool{}
		for _, b := range s.Dec.Bags {
			for _, v := range b {
				covered[v] = true
			}
		}
		for v := range touched {
			if !covered[v] {
				return false
			}
		}
		for j, rel := range rels {
			if !containsAll(s.Dec.Bags[s.RelNode[j]], rel) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
