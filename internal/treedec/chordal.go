package treedec

import (
	"projpush/internal/graph"
)

// IsChordal reports whether g is chordal, using the Tarjan–Yannakakis
// test the paper's MCS heuristic comes from: run maximum cardinality
// search, then verify the reverse numbering is a perfect elimination
// order. On chordal graphs MCS-based bucket elimination is *exact* —
// induced width equals treewidth — which is why the heuristic is a
// reasonable stand-in for the NP-hard optimal order.
func IsChordal(g *graph.Graph) bool {
	order := MCS(g, nil, nil)
	return IsPerfectEliminationOrder(g, EliminationOrder(order))
}

// IsPerfectEliminationOrder reports whether eliminating the vertices in
// the given order never requires fill edges: each vertex's later
// neighbors already form a clique. elim must be a permutation of g's
// vertices.
func IsPerfectEliminationOrder(g *graph.Graph, elim []int) bool {
	return FillIn(g, elim) == 0
}

// FillIn counts the fill edges the elimination order adds — zero exactly
// for perfect elimination orders, and a standard quality measure for
// elimination heuristics (min-fill greedily minimizes it stepwise).
func FillIn(g *graph.Graph, elim []int) int {
	adj := liveSets(g)
	fill := 0
	for _, v := range elim {
		fill += adj.missingPairs(v)
		eliminate(adj, v)
	}
	return fill
}
