// Package treedec implements tree decompositions of graphs and the
// machinery the paper builds on them: elimination orders (maximum
// cardinality search, min-fill, min-degree), the decomposition induced by
// an elimination order, induced width, exact treewidth for small graphs,
// and the Mark-and-Sweep simplification of Algorithm 2.
//
// Treewidth characterizes the join width of a project-join query
// (Theorem 1: join width = treewidth of the join graph + 1) and the
// induced width of bucket elimination (Theorem 2: induced width =
// treewidth). Finding treewidth is NP-hard, so the optimization methods
// use the MCS heuristic; the exact solver here exists to verify the
// theorems and to measure heuristic quality in tests and benchmarks.
package treedec

import (
	"fmt"
	"sort"

	"projpush/internal/graph"
)

// Decomposition is a tree decomposition: a tree whose node i carries the
// bag Bags[i] (a sorted set of graph vertices). The tree is undirected;
// Adj[i] lists the tree neighbors of node i.
type Decomposition struct {
	Bags [][]int
	Adj  [][]int
}

// NumNodes returns the number of tree nodes.
func (d *Decomposition) NumNodes() int { return len(d.Bags) }

// Width returns max |bag| − 1, the width of the decomposition.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Clone returns a deep copy.
func (d *Decomposition) Clone() *Decomposition {
	c := &Decomposition{
		Bags: make([][]int, len(d.Bags)),
		Adj:  make([][]int, len(d.Adj)),
	}
	for i := range d.Bags {
		c.Bags[i] = append([]int(nil), d.Bags[i]...)
		c.Adj[i] = append([]int(nil), d.Adj[i]...)
	}
	return c
}

// bagHas reports membership in a sorted bag.
func bagHas(bag []int, v int) bool {
	i := sort.SearchInts(bag, v)
	return i < len(bag) && bag[i] == v
}

// Validate checks the three tree-decomposition properties against g:
// (1) every vertex appears in some bag, (2) every edge is covered by some
// bag, and (3) for each vertex the set of bags containing it forms a
// connected subtree. It also checks the node graph really is a tree.
func (d *Decomposition) Validate(g *graph.Graph) error {
	n := len(d.Bags)
	if n == 0 {
		if g.N == 0 {
			return nil
		}
		return fmt.Errorf("treedec: empty decomposition for nonempty graph")
	}
	// The skeleton must be a tree: connected with n-1 edges.
	edgeCount := 0
	for i, nb := range d.Adj {
		for _, j := range nb {
			if j < 0 || j >= n {
				return fmt.Errorf("treedec: node %d has out-of-range neighbor %d", i, j)
			}
			if j == i {
				return fmt.Errorf("treedec: node %d has a self-loop", i)
			}
			edgeCount++
		}
	}
	if edgeCount%2 != 0 {
		return fmt.Errorf("treedec: adjacency is not symmetric")
	}
	edgeCount /= 2
	if edgeCount != n-1 {
		return fmt.Errorf("treedec: %d tree edges for %d nodes, want %d", edgeCount, n, n-1)
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	seen := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range d.Adj[u] {
			if !visited[v] {
				visited[v] = true
				seen++
				stack = append(stack, v)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("treedec: tree skeleton is disconnected")
	}

	// Bags are sorted vertex sets.
	for i, b := range d.Bags {
		for k := 1; k < len(b); k++ {
			if b[k-1] >= b[k] {
				return fmt.Errorf("treedec: bag %d is not a sorted set: %v", i, b)
			}
		}
		for _, v := range b {
			if v < 0 || v >= g.N {
				return fmt.Errorf("treedec: bag %d contains out-of-range vertex %d", i, v)
			}
		}
	}

	// (1) vertex coverage.
	covered := make([]bool, g.N)
	for _, b := range d.Bags {
		for _, v := range b {
			covered[v] = true
		}
	}
	for v := 0; v < g.N; v++ {
		if !covered[v] {
			return fmt.Errorf("treedec: vertex %d in no bag", v)
		}
	}

	// (2) edge coverage.
	for _, e := range g.Edges {
		ok := false
		for _, b := range d.Bags {
			if bagHas(b, e[0]) && bagHas(b, e[1]) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("treedec: edge (%d,%d) covered by no bag", e[0], e[1])
		}
	}

	// (3) connectedness of each vertex's occurrence set.
	for v := 0; v < g.N; v++ {
		var nodes []int
		for i, b := range d.Bags {
			if bagHas(b, v) {
				nodes = append(nodes, i)
			}
		}
		if len(nodes) <= 1 {
			continue
		}
		inSet := make(map[int]bool, len(nodes))
		for _, i := range nodes {
			inSet[i] = true
		}
		stack := []int{nodes[0]}
		reached := map[int]bool{nodes[0]: true}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range d.Adj[u] {
				if inSet[w] && !reached[w] {
					reached[w] = true
					stack = append(stack, w)
				}
			}
		}
		if len(reached) != len(nodes) {
			return fmt.Errorf("treedec: occurrences of vertex %d are disconnected", v)
		}
	}
	return nil
}

// Path returns the unique tree path between nodes i and j (inclusive),
// or nil if they are disconnected.
func (d *Decomposition) Path(i, j int) []int {
	if i == j {
		return []int{i}
	}
	parent := make([]int, len(d.Bags))
	for k := range parent {
		parent[k] = -1
	}
	parent[i] = i
	queue := []int{i}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range d.Adj[u] {
			if parent[w] == -1 {
				parent[w] = u
				if w == j {
					var path []int
					for x := j; ; x = parent[x] {
						path = append(path, x)
						if x == i {
							break
						}
					}
					for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
						path[a], path[b] = path[b], path[a]
					}
					return path
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// Trivial returns the one-bag decomposition containing all vertices of g —
// always valid, with width n−1.
func Trivial(g *graph.Graph) *Decomposition {
	bag := make([]int, g.N)
	for i := range bag {
		bag[i] = i
	}
	return &Decomposition{Bags: [][]int{bag}, Adj: [][]int{nil}}
}

// sortedSet sorts and deduplicates a vertex list in place, returning it.
func sortedSet(vs []int) []int {
	sort.Ints(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}
