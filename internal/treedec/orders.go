package treedec

import (
	"math/bits"
	"math/rand"

	"projpush/internal/graph"
)

// MCS computes a maximum-cardinality-search numbering of g (Tarjan &
// Yannakakis): it returns the vertices in numbering order x1..xn, starting
// from the given initial vertices (the paper seeds it with the target
// schema) and then repeatedly picking the vertex with the most already-
// numbered neighbors. Ties are broken randomly when rng is non-nil, by
// lowest vertex id otherwise (for reproducibility).
//
// The unnumbered vertices live in a bucket queue keyed by weight (one
// bitset per weight level), so each pick pops the top bucket instead of
// scanning all n vertices — O(n+m) bucket updates overall, against the
// O(n^2) full scans the queue replaces. Each bucket enumerates its
// vertices in ascending id order, exactly the tie set the scanning
// implementation built, so seeded random tie-breaking draws the same
// vertices from the same rng stream.
//
// For bucket elimination the buckets are processed from xn down to x1, so
// the elimination order is the reverse of this numbering; see
// EliminationOrder.
func MCS(g *graph.Graph, initial []int, rng *rand.Rand) []int {
	adj := g.Adjacency()
	n := g.N
	numbered := make([]bool, n)
	weight := make([]int, n)
	order := make([]int, 0, n)

	words := (n + 63) / 64
	// buckets[w] holds the unnumbered vertices of weight w as a bitset;
	// counts[w] tracks the bucket's population for O(1) emptiness and
	// tie-set size checks. Levels are grown lazily (weights only ever
	// increase by one).
	buckets := [][]uint64{make([]uint64, words)}
	counts := []int{n}
	for v := 0; v < n; v++ {
		buckets[0][v>>6] |= 1 << uint(v&63)
	}
	curMax := 0

	pick := func(v int) {
		numbered[v] = true
		buckets[weight[v]][v>>6] &^= 1 << uint(v&63)
		counts[weight[v]]--
		order = append(order, v)
		for _, w := range adj[v] {
			if numbered[w] {
				continue
			}
			buckets[weight[w]][w>>6] &^= 1 << uint(w&63)
			counts[weight[w]]--
			weight[w]++
			if weight[w] >= len(buckets) {
				buckets = append(buckets, make([]uint64, words))
				counts = append(counts, 0)
			}
			buckets[weight[w]][w>>6] |= 1 << uint(w&63)
			counts[weight[w]]++
			if weight[w] > curMax {
				curMax = weight[w]
			}
		}
	}

	for _, v := range initial {
		if v >= 0 && v < n && !numbered[v] {
			pick(v)
		}
	}
	for len(order) < n {
		for curMax > 0 && counts[curMax] == 0 {
			curMax--
		}
		b := buckets[curMax]
		var best int
		if rng != nil && counts[curMax] > 1 {
			best = selectBit(b, rng.Intn(counts[curMax]))
		} else {
			best = firstBit(b)
		}
		pick(best)
	}
	return order
}

// firstBit returns the index of the lowest set bit of the bitset.
func firstBit(b []uint64) int {
	for i, w := range b {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// selectBit returns the index of the k-th (0-based, ascending) set bit.
func selectBit(b []uint64, k int) int {
	for i, w := range b {
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		for ; ; w &= w - 1 {
			if k == 0 {
				return i<<6 + bits.TrailingZeros64(w)
			}
			k--
		}
	}
	return -1
}

// EliminationOrder reverses an MCS numbering into the elimination order
// bucket elimination follows (xn is eliminated first).
func EliminationOrder(mcsOrder []int) []int {
	out := make([]int, len(mcsOrder))
	for i, v := range mcsOrder {
		out[len(mcsOrder)-1-i] = v
	}
	return out
}

// liveRows is the mutable adjacency of an elimination simulation, one
// bitset row per vertex. A nil row marks an eliminated vertex. The fill
// step — connecting a vertex's live neighbors into a clique — is a
// handful of word-wide ORs per neighbor instead of the per-pair map
// inserts of the hash-set representation this replaces.
type liveRows struct {
	words int
	rows  [][]uint64
}

// liveSets builds the mutable adjacency rows for elimination simulation.
func liveSets(g *graph.Graph) *liveRows {
	words := (g.N + 63) / 64
	lr := &liveRows{words: words, rows: make([][]uint64, g.N)}
	backing := make([]uint64, g.N*words)
	for i := range lr.rows {
		lr.rows[i] = backing[i*words : (i+1)*words]
	}
	for _, e := range g.Edges {
		lr.rows[e[0]][e[1]>>6] |= 1 << uint(e[1]&63)
		lr.rows[e[1]][e[0]>>6] |= 1 << uint(e[0]&63)
	}
	return lr
}

// has reports whether the live edge (u,v) exists.
func (lr *liveRows) has(u, v int) bool {
	return lr.rows[u][v>>6]>>uint(v&63)&1 == 1
}

// degree returns the live degree of v.
func (lr *liveRows) degree(v int) int {
	d := 0
	for _, w := range lr.rows[v] {
		d += bits.OnesCount64(w)
	}
	return d
}

// neighbors returns v's live neighbors in ascending order.
func (lr *liveRows) neighbors(v int) []int {
	out := make([]int, 0, lr.degree(v))
	for i, w := range lr.rows[v] {
		for ; w != 0; w &= w - 1 {
			out = append(out, i<<6+bits.TrailingZeros64(w))
		}
	}
	return out
}

// missingPairs counts the non-adjacent pairs among v's live neighbors —
// the fill edges eliminating v would add. Each neighbor u contributes
// |N(v) \ N(u)| - 1 missing partners (u itself is never in N(u)), and
// every missing pair is counted from both ends.
func (lr *liveRows) missingPairs(v int) int {
	row := lr.rows[v]
	total := 0
	for i, w := range row {
		for ; w != 0; w &= w - 1 {
			u := i<<6 + bits.TrailingZeros64(w)
			ru := lr.rows[u]
			c := 0
			for j, x := range row {
				c += bits.OnesCount64(x &^ ru[j])
			}
			total += c - 1
		}
	}
	return total / 2
}

// eliminate removes v from the live rows, connecting its live neighbors
// into a clique (the fill step). It returns v's live neighbors at the time
// of elimination, in ascending order.
func eliminate(lr *liveRows, v int) []int {
	nbrs := lr.neighbors(v)
	row := lr.rows[v]
	for _, u := range nbrs {
		ru := lr.rows[u]
		for j := range ru {
			ru[j] |= row[j]
		}
		ru[u>>6] &^= 1 << uint(u&63) // no self-loop
		ru[v>>6] &^= 1 << uint(v&63) // drop the eliminated vertex
	}
	lr.rows[v] = nil
	return nbrs
}

// MinFill returns the min-fill elimination order: repeatedly eliminate the
// vertex whose elimination adds the fewest fill edges. A standard
// treewidth heuristic, used here as an ablation against the paper's MCS
// choice.
func MinFill(g *graph.Graph) []int {
	adj := liveSets(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestFill := -1, int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if removed[v] {
				continue
			}
			if fill := adj.missingPairs(v); fill < bestFill {
				best, bestFill = v, fill
			}
		}
		eliminate(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}

// MinDegree returns the min-degree elimination order: repeatedly eliminate
// a vertex of minimum live degree.
func MinDegree(g *graph.Graph) []int {
	adj := liveSets(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestDeg := -1, int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if !removed[v] {
				if d := adj.degree(v); d < bestDeg {
					best, bestDeg = v, d
				}
			}
		}
		eliminate(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}

// InducedWidth returns the induced width of the elimination order on g:
// the maximum number of live neighbors any vertex has at the moment it is
// eliminated. By Theorem 2, the minimum over all orders equals the
// treewidth. elim must be a permutation of g's vertices.
func InducedWidth(g *graph.Graph, elim []int) int {
	adj := liveSets(g)
	w := 0
	for _, v := range elim {
		if n := len(eliminate(adj, v)); n > w {
			w = n
		}
	}
	return w
}

// FromOrder builds the tree decomposition induced by an elimination
// order: each eliminated vertex v yields the bag {v} ∪ liveNeighbors(v),
// and v's node is attached to the node of its earliest-eliminated live
// neighbor. The decomposition's width equals InducedWidth(g, elim).
// Disconnected pieces are chained so the result is a single tree.
func FromOrder(g *graph.Graph, elim []int) *Decomposition {
	if g.N == 0 {
		return &Decomposition{}
	}
	adj := liveSets(g)
	position := make([]int, g.N) // elimination position of each vertex
	for i, v := range elim {
		position[v] = i
	}
	bags := make([][]int, g.N) // bag of node i = bag of elim[i]
	attach := make([]int, g.N) // node index each node attaches to, -1 = root
	nodeOf := make([]int, g.N) // vertex -> node index
	for i, v := range elim {
		nodeOf[v] = i
		nbrs := eliminate(adj, v)
		bag := append([]int{v}, nbrs...)
		bags[i] = sortedSet(bag)
		attach[i] = -1
		// Attach to the earliest-eliminated live neighbor (all live
		// neighbors are eliminated after v, so their nodes come later;
		// we record the dependency and wire edges after the loop).
		bestPos := int(^uint(0) >> 1)
		for _, w := range nbrs {
			if position[w] < bestPos {
				bestPos = position[w]
				attach[i] = bestPos
			}
		}
	}
	d := &Decomposition{Bags: bags, Adj: make([][]int, g.N)}
	var roots []int
	for i := range bags {
		if attach[i] >= 0 {
			d.Adj[i] = append(d.Adj[i], attach[i])
			d.Adj[attach[i]] = append(d.Adj[attach[i]], i)
		} else {
			roots = append(roots, i)
		}
	}
	// Chain any extra roots (disconnected graphs) so the skeleton is a
	// single tree. Empty intersections are fine for validity.
	for k := 1; k < len(roots); k++ {
		a, b := roots[k-1], roots[k]
		d.Adj[a] = append(d.Adj[a], b)
		d.Adj[b] = append(d.Adj[b], a)
	}
	return d
}

// MinWeight returns an elimination order for vertex-weighted graphs:
// repeatedly eliminate the vertex whose bag — the vertex plus its live
// neighbors — has the smallest total weight, breaking ties toward fewer
// fill edges. With uniform weights it behaves like min-degree. This is
// the order heuristic behind the weighted-attribute extension the paper
// sketches in Section 7.
func MinWeight(g *graph.Graph, weight []int) []int {
	wt := func(v int) int {
		if v < len(weight) && weight[v] > 0 {
			return weight[v]
		}
		return 1
	}
	adj := liveSets(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestW, bestFill := -1, int(^uint(0)>>1), int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if removed[v] {
				continue
			}
			w := wt(v)
			for _, u := range adj.neighbors(v) {
				w += wt(u)
			}
			if w > bestW {
				continue
			}
			fill := adj.missingPairs(v)
			if w < bestW || (w == bestW && fill < bestFill) {
				best, bestW, bestFill = v, w, fill
			}
		}
		eliminate(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}
