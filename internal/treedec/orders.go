package treedec

import (
	"math/rand"

	"projpush/internal/graph"
)

// MCS computes a maximum-cardinality-search numbering of g (Tarjan &
// Yannakakis): it returns the vertices in numbering order x1..xn, starting
// from the given initial vertices (the paper seeds it with the target
// schema) and then repeatedly picking the vertex with the most already-
// numbered neighbors. Ties are broken randomly when rng is non-nil, by
// lowest vertex id otherwise (for reproducibility).
//
// For bucket elimination the buckets are processed from xn down to x1, so
// the elimination order is the reverse of this numbering; see
// EliminationOrder.
func MCS(g *graph.Graph, initial []int, rng *rand.Rand) []int {
	adj := g.Adjacency()
	numbered := make([]bool, g.N)
	weight := make([]int, g.N)
	order := make([]int, 0, g.N)

	pick := func(v int) {
		numbered[v] = true
		order = append(order, v)
		for _, w := range adj[v] {
			if !numbered[w] {
				weight[w]++
			}
		}
	}
	for _, v := range initial {
		if v >= 0 && v < g.N && !numbered[v] {
			pick(v)
		}
	}
	for len(order) < g.N {
		best := -1
		var ties []int
		for v := 0; v < g.N; v++ {
			if numbered[v] {
				continue
			}
			switch {
			case best < 0 || weight[v] > weight[best]:
				best = v
				ties = ties[:0]
				ties = append(ties, v)
			case weight[v] == weight[best]:
				ties = append(ties, v)
			}
		}
		if rng != nil && len(ties) > 1 {
			best = ties[rng.Intn(len(ties))]
		}
		pick(best)
	}
	return order
}

// EliminationOrder reverses an MCS numbering into the elimination order
// bucket elimination follows (xn is eliminated first).
func EliminationOrder(mcsOrder []int) []int {
	out := make([]int, len(mcsOrder))
	for i, v := range mcsOrder {
		out[len(mcsOrder)-1-i] = v
	}
	return out
}

// liveSets builds mutable adjacency sets for elimination simulation.
func liveSets(g *graph.Graph) []map[int]bool {
	adj := make([]map[int]bool, g.N)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, e := range g.Edges {
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	return adj
}

// eliminate removes v from the live sets, connecting its live neighbors
// into a clique (the fill step). It returns v's live neighbors at the time
// of elimination.
func eliminate(adj []map[int]bool, v int) []int {
	nbrs := make([]int, 0, len(adj[v]))
	for w := range adj[v] {
		nbrs = append(nbrs, w)
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			adj[nbrs[i]][nbrs[j]] = true
			adj[nbrs[j]][nbrs[i]] = true
		}
	}
	for _, w := range nbrs {
		delete(adj[w], v)
	}
	adj[v] = nil
	return nbrs
}

// MinFill returns the min-fill elimination order: repeatedly eliminate the
// vertex whose elimination adds the fewest fill edges. A standard
// treewidth heuristic, used here as an ablation against the paper's MCS
// choice.
func MinFill(g *graph.Graph) []int {
	adj := liveSets(g)
	order := make([]int, 0, g.N)
	remaining := g.N
	removed := make([]bool, g.N)
	for remaining > 0 {
		best, bestFill := -1, int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if removed[v] {
				continue
			}
			fill := 0
			nbrs := make([]int, 0, len(adj[v]))
			for w := range adj[v] {
				nbrs = append(nbrs, w)
			}
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !adj[nbrs[i]][nbrs[j]] {
						fill++
					}
				}
			}
			if fill < bestFill {
				best, bestFill = v, fill
			}
		}
		eliminate(adj, best)
		removed[best] = true
		order = append(order, best)
		remaining--
	}
	return order
}

// MinDegree returns the min-degree elimination order: repeatedly eliminate
// a vertex of minimum live degree.
func MinDegree(g *graph.Graph) []int {
	adj := liveSets(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestDeg := -1, int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if !removed[v] {
				if d := len(adj[v]); d < bestDeg {
					best, bestDeg = v, d
				}
			}
		}
		eliminate(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}

// InducedWidth returns the induced width of the elimination order on g:
// the maximum number of live neighbors any vertex has at the moment it is
// eliminated. By Theorem 2, the minimum over all orders equals the
// treewidth. elim must be a permutation of g's vertices.
func InducedWidth(g *graph.Graph, elim []int) int {
	adj := liveSets(g)
	w := 0
	for _, v := range elim {
		if n := len(eliminate(adj, v)); n > w {
			w = n
		}
	}
	return w
}

// FromOrder builds the tree decomposition induced by an elimination
// order: each eliminated vertex v yields the bag {v} ∪ liveNeighbors(v),
// and v's node is attached to the node of its earliest-eliminated live
// neighbor. The decomposition's width equals InducedWidth(g, elim).
// Disconnected pieces are chained so the result is a single tree.
func FromOrder(g *graph.Graph, elim []int) *Decomposition {
	if g.N == 0 {
		return &Decomposition{}
	}
	adj := liveSets(g)
	position := make([]int, g.N) // elimination position of each vertex
	for i, v := range elim {
		position[v] = i
	}
	bags := make([][]int, g.N) // bag of node i = bag of elim[i]
	attach := make([]int, g.N) // node index each node attaches to, -1 = root
	nodeOf := make([]int, g.N) // vertex -> node index
	for i, v := range elim {
		nodeOf[v] = i
		nbrs := eliminate(adj, v)
		bag := append([]int{v}, nbrs...)
		bags[i] = sortedSet(bag)
		attach[i] = -1
		// Attach to the earliest-eliminated live neighbor (all live
		// neighbors are eliminated after v, so their nodes come later;
		// we record the dependency and wire edges after the loop).
		bestPos := int(^uint(0) >> 1)
		for _, w := range nbrs {
			if position[w] < bestPos {
				bestPos = position[w]
				attach[i] = bestPos
			}
		}
	}
	d := &Decomposition{Bags: bags, Adj: make([][]int, g.N)}
	var roots []int
	for i := range bags {
		if attach[i] >= 0 {
			d.Adj[i] = append(d.Adj[i], attach[i])
			d.Adj[attach[i]] = append(d.Adj[attach[i]], i)
		} else {
			roots = append(roots, i)
		}
	}
	// Chain any extra roots (disconnected graphs) so the skeleton is a
	// single tree. Empty intersections are fine for validity.
	for k := 1; k < len(roots); k++ {
		a, b := roots[k-1], roots[k]
		d.Adj[a] = append(d.Adj[a], b)
		d.Adj[b] = append(d.Adj[b], a)
	}
	return d
}

// MinWeight returns an elimination order for vertex-weighted graphs:
// repeatedly eliminate the vertex whose bag — the vertex plus its live
// neighbors — has the smallest total weight, breaking ties toward fewer
// fill edges. With uniform weights it behaves like min-degree. This is
// the order heuristic behind the weighted-attribute extension the paper
// sketches in Section 7.
func MinWeight(g *graph.Graph, weight []int) []int {
	wt := func(v int) int {
		if v < len(weight) && weight[v] > 0 {
			return weight[v]
		}
		return 1
	}
	adj := liveSets(g)
	order := make([]int, 0, g.N)
	removed := make([]bool, g.N)
	for len(order) < g.N {
		best, bestW, bestFill := -1, int(^uint(0)>>1), int(^uint(0)>>1)
		for v := 0; v < g.N; v++ {
			if removed[v] {
				continue
			}
			w := wt(v)
			nbrs := make([]int, 0, len(adj[v]))
			for u := range adj[v] {
				w += wt(u)
				nbrs = append(nbrs, u)
			}
			fill := 0
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !adj[nbrs[i]][nbrs[j]] {
						fill++
					}
				}
			}
			if w < bestW || (w == bestW && fill < bestFill) {
				best, bestW, bestFill = v, w, fill
			}
		}
		eliminate(adj, best)
		removed[best] = true
		order = append(order, best)
	}
	return order
}
