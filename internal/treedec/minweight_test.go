package treedec

import (
	"math/rand"
	"testing"

	"projpush/internal/graph"
)

func TestMinWeightIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, err := graph.Random(12, 24, rng)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]int, 12)
	for i := range weights {
		weights[i] = 1 + rng.Intn(10)
	}
	order := MinWeight(g, weights)
	if len(order) != 12 {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate in MinWeight order")
		}
		seen[v] = true
	}
	// The order must still be usable for decomposition construction.
	d := FromOrder(g, order)
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMinWeightUniformBehavesLikeMinDegree(t *testing.T) {
	// With uniform weights, the bag weight is degree+1, so the order is
	// width-equivalent to min-degree on a path.
	g := graph.Path(8)
	uniform := make([]int, 8)
	for i := range uniform {
		uniform[i] = 1
	}
	if w := InducedWidth(g, MinWeight(g, uniform)); w != 1 {
		t.Fatalf("uniform MinWeight width on path = %d, want 1", w)
	}
}

func TestMinWeightAvoidsHeavyBags(t *testing.T) {
	// Star with a heavy center: the leaves (cheap bags) must be
	// eliminated before the center.
	g := graph.New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, i)
	}
	weights := []int{100, 1, 1, 1, 1}
	order := MinWeight(g, weights)
	if order[0] == 0 {
		t.Fatalf("heavy center eliminated first: %v", order)
	}
	// Eliminating the center first would join all four leaves through a
	// 104-weight bag; the min-weight order must stay at 101 (one leaf
	// plus the center).
	if w := maxWeightedBag(g, order, weights); w != 101 {
		t.Fatalf("max weighted bag = %d, want 101 (order %v)", w, order)
	}
}

// maxWeightedBag simulates the elimination and returns the heaviest bag
// (vertex plus live neighbors, weighted).
func maxWeightedBag(g *graph.Graph, elim []int, weights []int) int {
	adj := liveSets(g)
	max := 0
	for _, v := range elim {
		w := weights[v]
		for _, u := range eliminate(adj, v) {
			w += weights[u]
		}
		if w > max {
			max = w
		}
	}
	return max
}

func TestMinWeightDefaultsMissingWeights(t *testing.T) {
	g := graph.Path(4)
	// Short weight slice: missing entries default to 1 and nothing
	// panics.
	order := MinWeight(g, []int{5})
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}
