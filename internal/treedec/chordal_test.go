package treedec

import (
	"math/rand"
	"testing"

	"projpush/internal/graph"
)

func TestIsChordalKnownGraphs(t *testing.T) {
	twoTree := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 0}, {3, 1}, {4, 1}, {4, 2}} {
		twoTree.AddEdge(e[0], e[1])
	}
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"path", graph.Path(6), true},
		{"tree (augmented path)", graph.AugmentedPath(4), true},
		{"complete", graph.Complete(5), true},
		{"triangle", graph.Cycle(3), true},
		{"2-tree", twoTree, true},
		{"C4", graph.Cycle(4), false},
		{"C6", graph.Cycle(6), false},
		{"ladder", graph.Ladder(3), false},
		{"edgeless", graph.New(4), true},
	}
	for _, c := range cases {
		if got := IsChordal(c.g); got != c.want {
			t.Errorf("%s: IsChordal = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFillIn(t *testing.T) {
	// Eliminating the center of a star first creates a clique on the
	// leaves: C(3,2)=3 fill edges.
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if got := FillIn(star, []int{0, 1, 2, 3}); got != 3 {
		t.Fatalf("star bad order fill = %d, want 3", got)
	}
	if got := FillIn(star, []int{1, 2, 3, 0}); got != 0 {
		t.Fatalf("star leaves-first fill = %d, want 0", got)
	}
}

func TestMinFillZeroOnChordal(t *testing.T) {
	// Min-fill achieves zero fill on chordal graphs.
	g := graph.Complete(4)
	g2 := graph.New(6)
	for _, e := range graph.Complete(4).Edges {
		g2.AddEdge(e[0], e[1])
	}
	g2.AddEdge(4, 0)
	g2.AddEdge(5, 4)
	for name, gr := range map[string]*graph.Graph{"K4": g, "K4+path": g2} {
		if fill := FillIn(gr, MinFill(gr)); fill != 0 {
			t.Errorf("%s: min-fill fill-in = %d, want 0", name, fill)
		}
	}
}

func TestChordalImpliesMCSWidthIsTreewidth(t *testing.T) {
	// On chordal graphs MCS achieves exact treewidth — the theory behind
	// the paper's heuristic choice. Build random chordal graphs as
	// k-trees.
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 15; trial++ {
		k := 1 + rng.Intn(3)
		n := k + 2 + rng.Intn(7)
		g := graph.Complete(k + 1)
		full := graph.New(n)
		for _, e := range g.Edges {
			full.AddEdge(e[0], e[1])
		}
		// Attach each new vertex to a random existing k-clique: pick a
		// previously-added vertex set greedily (use the last k vertices
		// of a random clique-preserving choice: attach to vertices of
		// an existing atom — simplest valid construction: attach vertex
		// v to the clique formed by vertex p and k-1 of p's neighbors
		// chosen when p was added; track cliques explicitly).
		cliques := [][]int{}
		base := make([]int, k+1)
		for i := range base {
			base[i] = i
		}
		cliques = append(cliques, base)
		for v := k + 1; v < n; v++ {
			host := cliques[rng.Intn(len(cliques))]
			// Choose k vertices of the host clique.
			perm := rng.Perm(len(host))
			sub := make([]int, k)
			for i := 0; i < k; i++ {
				sub[i] = host[perm[i]]
			}
			for _, u := range sub {
				full.AddEdge(v, u)
			}
			cliques = append(cliques, append(append([]int(nil), sub...), v))
		}
		if !IsChordal(full) {
			t.Fatalf("trial %d: k-tree not chordal", trial)
		}
		mcsWidth := InducedWidth(full, EliminationOrder(MCS(full, nil, rng)))
		if mcsWidth != k {
			t.Fatalf("trial %d: MCS width %d on %d-tree, want %d", trial, mcsWidth, k, k)
		}
		if full.N <= MaxExactVertices {
			tw, _, err := Exact(full)
			if err != nil {
				t.Fatal(err)
			}
			if tw != k {
				t.Fatalf("trial %d: exact treewidth %d on %d-tree", trial, tw, k)
			}
		}
	}
}
