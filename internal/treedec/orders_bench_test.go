package treedec

// Elimination-order microbenchmarks recorded by `make bench-json` into
// BENCH_planner.json: the bucket-queue MCS and bitset elimination
// simulation against the scanning / map-of-sets baselines they replaced.

import (
	"fmt"
	"math/rand"
	"testing"

	"projpush/internal/graph"
)

func benchGraph(b *testing.B, n int, density float64) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(61))
	g, err := graph.Random(n, int(density*float64(n)), rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkOrderMCS measures maximum cardinality search with seeded
// random tie-breaking on random graphs of density 4: the bucket queue
// against the full-scan baseline.
func BenchmarkOrderMCS(b *testing.B) {
	for _, n := range []int{512, 1024} {
		g := benchGraph(b, n, 4)
		b.Run(fmt.Sprintf("bucket/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MCS(g, nil, rand.New(rand.NewSource(9)))
			}
		})
		b.Run(fmt.Sprintf("scan-baseline/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mcsScanBaseline(g, nil, rand.New(rand.NewSource(9)))
			}
		})
	}
}

// BenchmarkOrderInducedWidth measures the fill-in simulation behind
// InducedWidth on a 512-vertex graph: bitset rows against map-of-sets.
func BenchmarkOrderInducedWidth(b *testing.B) {
	g := benchGraph(b, 512, 4)
	elim := rand.New(rand.NewSource(13)).Perm(g.N)
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			InducedWidth(g, elim)
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inducedWidthMapBaseline(g, elim)
		}
	})
}

// BenchmarkOrderMinDegree measures the min-degree heuristic end to end
// (degree scans plus fill steps) on a 512-vertex graph.
func BenchmarkOrderMinDegree(b *testing.B) {
	g := benchGraph(b, 512, 4)
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MinDegree(g)
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			minDegreeMapBaseline(g)
		}
	})
}
