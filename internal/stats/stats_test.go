package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, -5); got != 10 {
		t.Fatalf("P-5 = %v", got)
	}
	if got := Percentile(xs, 200); got != 40 {
		t.Fatalf("P200 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestMedianDuration(t *testing.T) {
	ds := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if got := MedianDuration(ds); got != 2*time.Second {
		t.Fatalf("MedianDuration = %v", got)
	}
}

func TestSample(t *testing.T) {
	var s Sample
	if _, ok := s.Median(); ok {
		t.Fatal("empty sample has a median")
	}
	s.Add(time.Second)
	s.Add(3 * time.Second)
	s.Add(2 * time.Second)
	med, ok := s.Median()
	if !ok || med != 2*time.Second {
		t.Fatalf("median = %v, %v", med, ok)
	}
	s.AddTimeout()
	if s.Runs() != 4 {
		t.Fatalf("Runs = %d", s.Runs())
	}
	// 1 of 4 timeouts: still reportable.
	if _, ok := s.Median(); !ok {
		t.Fatal("minority timeouts should still report a median")
	}
	s.AddTimeout()
	s.AddTimeout()
	// 3 of 6: majority rule is strict (>50%), so still reportable.
	if _, ok := s.Median(); !ok {
		t.Fatal("exactly half timeouts should still report")
	}
	s.AddTimeout()
	if _, ok := s.Median(); ok {
		t.Fatal("majority timeouts must suppress the median")
	}
	if s.String() != "timeout" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		p := float64(pRaw) / 255 * 100
		got := Percentile(xs, p)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return got >= s[0] && got <= s[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMedianBetweenMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		m := Median(xs)
		return m >= s[0] && m <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
