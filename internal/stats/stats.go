// Package stats provides the small statistical toolkit the experiment
// harness needs: medians and percentiles over durations (the paper
// reports median running times) and a sample collector that keeps
// timeouts separate from measurements.
package stats

import (
	"fmt"
	"sort"
	"time"
)

// Median returns the median of the values (the mean of the two middle
// values for even counts). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics. It returns 0 for an empty
// slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MedianDuration is Median over durations.
func MedianDuration(ds []time.Duration) time.Duration {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(Median(xs))
}

// Sample collects measurements for one (x, method) cell of an experiment:
// durations of completed runs and a count of runs that hit the timeout or
// row cap.
type Sample struct {
	Durations []time.Duration
	Timeouts  int
}

// Add records a completed run.
func (s *Sample) Add(d time.Duration) { s.Durations = append(s.Durations, d) }

// AddTimeout records an aborted run.
func (s *Sample) AddTimeout() { s.Timeouts++ }

// Runs returns the total number of runs recorded.
func (s *Sample) Runs() int { return len(s.Durations) + s.Timeouts }

// Median returns the median duration of completed runs, and false when a
// majority of runs timed out (the paper plots such points as missing).
func (s *Sample) Median() (time.Duration, bool) {
	if s.Runs() == 0 || s.Timeouts*2 > s.Runs() {
		return 0, false
	}
	return MedianDuration(s.Durations), true
}

// String renders the sample the way the experiment tables print cells.
func (s *Sample) String() string {
	if med, ok := s.Median(); ok {
		if s.Timeouts > 0 {
			return fmt.Sprintf("%v (%d timeouts)", med, s.Timeouts)
		}
		return med.String()
	}
	return "timeout"
}
