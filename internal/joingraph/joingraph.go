// Package joingraph builds the join graph of a project-join query
// (Section 5 of the paper): the nodes are the query's attributes, each
// atom contributes a clique over its attributes, and the target schema
// contributes one more clique. The treewidth of this graph characterizes
// the power of projection pushing and join reordering: the minimal
// achievable intermediate arity — the query's join width — is treewidth
// plus one (Theorem 1).
package joingraph

import (
	"projpush/internal/cq"
	"projpush/internal/graph"
)

// JoinGraph is the join graph of a query, with variables mapped onto the
// contiguous vertex ids required by package graph.
type JoinGraph struct {
	// G is the underlying simple graph; vertex i represents Vars[i].
	G *graph.Graph
	// Vars maps graph vertex to query variable, in first-occurrence
	// order.
	Vars []cq.Var
	// Index maps query variable to graph vertex.
	Index map[cq.Var]int
}

// Build constructs the join graph of q.
func Build(q *cq.Query) *JoinGraph {
	vars := q.Vars()
	idx := make(map[cq.Var]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	g := graph.New(len(vars))
	clique := func(vs []cq.Var) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if vs[i] != vs[j] {
					g.AddEdge(idx[vs[i]], idx[vs[j]])
				}
			}
		}
	}
	for _, a := range q.Atoms {
		clique(a.Args)
	}
	clique(q.Free)
	return &JoinGraph{G: g, Vars: vars, Index: idx}
}

// VarSet converts a set of graph vertices back to query variables.
func (jg *JoinGraph) VarSet(vertices []int) []cq.Var {
	out := make([]cq.Var, len(vertices))
	for i, v := range vertices {
		out[i] = jg.Vars[v]
	}
	return out
}

// Vertices converts query variables to graph vertices. Unknown variables
// map to -1.
func (jg *JoinGraph) Vertices(vars []cq.Var) []int {
	out := make([]int, len(vars))
	for i, v := range vars {
		if j, ok := jg.Index[v]; ok {
			out[i] = j
		} else {
			out[i] = -1
		}
	}
	return out
}
