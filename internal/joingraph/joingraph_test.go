package joingraph

import (
	"testing"

	"projpush/internal/cq"
)

func TestBuildBinaryAtomsMirrorGraph(t *testing.T) {
	// For the paper's 3-COLOR queries over binary edge atoms with a
	// single free variable, the join graph is exactly the input graph.
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "edge", Args: []cq.Var{0, 1}},
			{Rel: "edge", Args: []cq.Var{1, 2}},
			{Rel: "edge", Args: []cq.Var{2, 0}},
		},
		Free: []cq.Var{0},
	}
	jg := Build(q)
	if jg.G.N != 3 || jg.G.M() != 3 {
		t.Fatalf("join graph %v, want triangle", jg.G)
	}
}

func TestBuildAtomClique(t *testing.T) {
	// A ternary atom yields a triangle.
	q := &cq.Query{
		Atoms: []cq.Atom{{Rel: "r", Args: []cq.Var{5, 7, 9}}},
		Free:  []cq.Var{5},
	}
	jg := Build(q)
	if jg.G.M() != 3 {
		t.Fatalf("clique edges = %d, want 3", jg.G.M())
	}
	a, b, c := jg.Index[5], jg.Index[7], jg.Index[9]
	if !jg.G.HasEdge(a, b) || !jg.G.HasEdge(b, c) || !jg.G.HasEdge(a, c) {
		t.Fatal("atom clique incomplete")
	}
}

func TestBuildTargetSchemaClique(t *testing.T) {
	// Two disjoint atoms whose variables are tied together only by the
	// target schema: the free clique must appear.
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "r", Args: []cq.Var{0, 1}},
			{Rel: "r", Args: []cq.Var{2, 3}},
		},
		Free: []cq.Var{0, 2},
	}
	jg := Build(q)
	if !jg.G.HasEdge(jg.Index[0], jg.Index[2]) {
		t.Fatal("target-schema clique edge missing")
	}
	// No spurious edges between 1 and 3.
	if jg.G.HasEdge(jg.Index[1], jg.Index[3]) {
		t.Fatal("spurious edge between unrelated variables")
	}
}

func TestBuildDedupAcrossAtoms(t *testing.T) {
	// Repeated co-occurrence must not duplicate edges.
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "r", Args: []cq.Var{0, 1}},
			{Rel: "s", Args: []cq.Var{0, 1}},
		},
		Free: []cq.Var{0},
	}
	jg := Build(q)
	if jg.G.M() != 1 {
		t.Fatalf("edges = %d, want 1", jg.G.M())
	}
}

func TestVarSetAndVertices(t *testing.T) {
	q := &cq.Query{
		Atoms: []cq.Atom{{Rel: "r", Args: []cq.Var{10, 20}}},
		Free:  []cq.Var{10},
	}
	jg := Build(q)
	vs := jg.VarSet([]int{0, 1})
	if vs[0] != 10 || vs[1] != 20 {
		t.Fatalf("VarSet = %v", vs)
	}
	idx := jg.Vertices([]cq.Var{20, 10, 99})
	if idx[0] != 1 || idx[1] != 0 || idx[2] != -1 {
		t.Fatalf("Vertices = %v", idx)
	}
}
