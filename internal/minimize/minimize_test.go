package minimize

import (
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

func q(free []cq.Var, atoms ...cq.Atom) *cq.Query {
	return &cq.Query{Atoms: atoms, Free: free}
}

func edge(u, v cq.Var) cq.Atom {
	return cq.Atom{Rel: "edge", Args: []cq.Var{u, v}}
}

func TestSelfContainment(t *testing.T) {
	c := q([]cq.Var{0}, edge(0, 1), edge(1, 2))
	ok, err := ContainedIn(c, c, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("query not contained in itself")
	}
}

func TestContainmentDroppingAtomsEnlarges(t *testing.T) {
	// path2 ⊆ path1: fewer constraints is a superset, so the longer
	// query is contained in the shorter one.
	path2 := q([]cq.Var{0}, edge(0, 1), edge(1, 2))
	path1 := q([]cq.Var{0}, edge(0, 1))
	ok, err := ContainedIn(path2, path1, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("path2 must be contained in path1")
	}
	// And the converse also holds here: map x2 to x0 (edge(x1,x0) is
	// not required — the hom maps atom-wise: edge(0,1)->edge(0,1),
	// edge(1,2)->edge(1,0)? edge(1,0) is not an atom of path1, so the
	// hom must instead reuse edge(0,1) with x2->x0... which needs atom
	// edge(1,0). There is none: containment fails.
	ok, err = ContainedIn(path1, path2, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("path1 ⊆ path2 must fail (no homomorphism fixing x0)")
	}
}

func TestContainmentDirectedCycles(t *testing.T) {
	// Boolean queries (no free vars): C2 (x0->x1->x0) and C4 cyclic.
	c2 := q(nil, edge(0, 1), edge(1, 0))
	c4 := q(nil, edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 0))
	// C4 (as a query) is contained in C2? hom C2 -> C4: need a mutual
	// edge in C4: none. So no.
	ok, err := ContainedIn(c4, c2, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("C4 ⊆ C2 requires hom C2→C4, which does not exist")
	}
	// C2 ⊆ C4: hom C4 -> C2 exists (alternate the two vertices).
	ok, err = ContainedIn(c2, c4, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("C2 ⊆ C4 must hold (wrap C4 around C2)")
	}
}

func TestEquivalentDuplicatedAtoms(t *testing.T) {
	a := q([]cq.Var{0}, edge(0, 1), edge(0, 1), edge(1, 2))
	b := q([]cq.Var{0}, edge(0, 1), edge(1, 2))
	ok, err := Equivalent(a, b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("duplicate atoms must not change semantics")
	}
}

func TestMinimizeRemovesDuplicates(t *testing.T) {
	a := q([]cq.Var{0}, edge(0, 1), edge(0, 1), edge(1, 2))
	min, err := Minimize(a, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 2 {
		t.Fatalf("minimized to %d atoms, want 2: %v", len(min.Atoms), min)
	}
	ok, err := Equivalent(a, min, engine.Options{})
	if err != nil || !ok {
		t.Fatalf("minimized query not equivalent: %v %v", ok, err)
	}
}

func TestMinimizeFoldsRedundantBranch(t *testing.T) {
	// Star from x0 to two leaves is equivalent to a single edge: the
	// second branch folds onto the first.
	a := q([]cq.Var{0}, edge(0, 1), edge(0, 2))
	min, err := Minimize(a, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 1 {
		t.Fatalf("star should minimize to one atom, got %v", min)
	}
}

func TestMinimizeKeepsCore(t *testing.T) {
	// A directed 4-cycle has no redundant atom (its core as a digraph
	// query is itself — no pair of mutual edges to fold onto).
	c4 := q(nil, edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 0))
	min, err := Minimize(c4, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 4 {
		t.Fatalf("C4 should be its own core, got %d atoms", len(min.Atoms))
	}
}

func TestMinimizePreservesFreeVariables(t *testing.T) {
	// With every variable free, no homomorphic folding is possible:
	// both atoms are pinned.
	a := q([]cq.Var{0, 1, 2}, edge(0, 1), edge(0, 2))
	min, err := Minimize(a, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 2 {
		t.Fatalf("free variables must keep their atoms, got %v", min)
	}
	// Sanity: with only x0 and x2 free the x1-branch does fold
	// (map x1 to x2), so minimization drops it.
	b := q([]cq.Var{0, 2}, edge(0, 1), edge(0, 2))
	minB, err := Minimize(b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(minB.Atoms) != 1 {
		t.Fatalf("foldable branch kept: %v", minB)
	}
}

func TestMinimizeSemanticsPreservedOnRealDatabase(t *testing.T) {
	// Evaluate original and minimized queries over the 3-COLOR database
	// and compare.
	rng := rand.New(rand.NewSource(71))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		g, err := graph.Random(n, n+rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		orig, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		min, err := Minimize(orig, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(min.Atoms) > len(orig.Atoms) {
			t.Fatal("minimization added atoms")
		}
		a, err := engine.EvalOracle(orig, db)
		if err != nil {
			t.Fatal(err)
		}
		b, err := engine.EvalOracle(min, db)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: minimization changed the answer", trial)
		}
	}
}

func TestContainedInSchemaMismatch(t *testing.T) {
	a := q([]cq.Var{0}, edge(0, 1))
	b := q([]cq.Var{1}, edge(0, 1))
	if _, err := ContainedIn(a, b, engine.Options{}); err == nil {
		t.Fatal("accepted different target schemas")
	}
}

func TestContainedInUnknownRelation(t *testing.T) {
	a := q([]cq.Var{0}, edge(0, 1))
	b := q([]cq.Var{0}, cq.Atom{Rel: "other", Args: []cq.Var{0, 1}})
	ok, err := ContainedIn(a, b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("query over a relation absent from the canonical database cannot contain")
	}
}

// bruteForceMinimalSize finds the size of the smallest equivalent
// subquery by exhaustive subset search — the oracle for Minimize.
func bruteForceMinimalSize(t *testing.T, q *cq.Query) int {
	t.Helper()
	n := len(q.Atoms)
	best := n
	for mask := 1; mask < 1<<n; mask++ {
		size := 0
		cand := &cq.Query{Free: q.Free}
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				cand.Atoms = append(cand.Atoms, q.Atoms[i])
				size++
			}
		}
		if size >= best || !coversFree(cand) {
			continue
		}
		// Equivalence needs only cand ⊆ q (dropping atoms enlarges).
		ok, err := ContainedIn(cand, q, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			best = size
		}
	}
	return best
}

func TestMinimizeReachesBruteForceMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		m := 1 + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 || g.M() > 7 {
			continue
		}
		orig, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		// Add a duplicated atom to guarantee some redundancy sometimes.
		if rng.Intn(2) == 0 {
			orig.Atoms = append(orig.Atoms, orig.Atoms[0])
		}
		min, err := Minimize(orig, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMinimalSize(t, orig)
		if len(min.Atoms) != want {
			t.Fatalf("trial %d: Minimize got %d atoms, brute force %d (query %v)",
				trial, len(min.Atoms), want, orig)
		}
	}
}
