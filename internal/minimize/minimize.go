// Package minimize implements conjunctive-query containment and join
// minimization in the Chandra–Merlin style, which the paper's concluding
// remarks single out as a natural application of its techniques: deciding
// Q1 ⊆ Q2 reduces to evaluating Q2 over the canonical database of Q1 —
// itself a project-join query over a tiny database, exactly the setting
// where bucket elimination shines. Accordingly the homomorphism tests
// here are evaluated with the paper's bucket-elimination method.
package minimize

import (
	"fmt"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/relation"
)

// ContainedIn reports whether q1 ⊆ q2: every database maps q1's result
// into q2's. By Chandra–Merlin this holds iff there is a homomorphism
// from q2 to q1 fixing the free variables, decided by evaluating q2 over
// q1's canonical database and checking that the frozen image of the
// target schema is in the result.
//
// The queries must have identical target schemas (same variables, same
// order); otherwise containment is ill-typed and an error is returned.
func ContainedIn(q1, q2 *cq.Query, opt engine.Options) (bool, error) {
	if len(q1.Free) != len(q2.Free) {
		return false, fmt.Errorf("minimize: target schemas differ in arity: %v vs %v", q1.Free, q2.Free)
	}
	for i := range q1.Free {
		if q1.Free[i] != q2.Free[i] {
			return false, fmt.Errorf("minimize: target schemas differ: %v vs %v", q1.Free, q2.Free)
		}
	}
	db, frozen := cq.CanonicalDatabase(q1)
	// q2 may mention relations q1 never uses; no tuples exist for them,
	// so containment fails. Register empty relations so evaluation is
	// well defined rather than erroring.
	for _, a := range q2.Atoms {
		if _, ok := db[a.Rel]; !ok {
			attrs := make([]relation.Attr, len(a.Args))
			for i := range attrs {
				attrs[i] = i
			}
			db[a.Rel] = relation.New(attrs)
		}
		if db[a.Rel].Arity() != len(a.Args) {
			return false, fmt.Errorf("minimize: relation %q used with different arities", a.Rel)
		}
	}
	p, err := core.BucketElimination(q2, nil)
	if err != nil {
		return false, err
	}
	res, err := engine.Exec(p, db, opt)
	if err != nil {
		return false, err
	}
	// The homomorphism must fix the free variables: check the frozen
	// image of q1's free tuple.
	want := make(relation.Tuple, len(q1.Free))
	for i, v := range q1.Free {
		fv, ok := frozen[v]
		if !ok {
			return false, fmt.Errorf("minimize: free variable x%d not frozen (not in any atom?)", v)
		}
		want[i] = fv
	}
	// res.Rel columns follow q2.Free, which equals q1.Free exactly.
	return res.Rel.Contains(want), nil
}

// Equivalent reports whether q1 and q2 return the same result on every
// database (mutual containment).
func Equivalent(q1, q2 *cq.Query, opt engine.Options) (bool, error) {
	a, err := ContainedIn(q1, q2, opt)
	if err != nil || !a {
		return false, err
	}
	return ContainedIn(q2, q1, opt)
}

// Minimize returns an equivalent subquery of q with a minimal number of
// atoms (a core of q): it repeatedly deletes any atom whose removal
// preserves equivalence, until no atom can be dropped. Chandra–Merlin
// guarantees the greedy process reaches a minimum for conjunctive
// queries. The input query is not modified.
func Minimize(q *cq.Query, opt engine.Options) (*cq.Query, error) {
	cur := q.Clone()
	for {
		dropped := false
		for i := 0; i < len(cur.Atoms); i++ {
			if len(cur.Atoms) == 1 {
				break
			}
			cand := cur.Clone()
			cand.Atoms = append(cand.Atoms[:i], cand.Atoms[i+1:]...)
			if !coversFree(cand) {
				continue
			}
			// Dropping atoms can only enlarge the result (cur ⊆ cand
			// always), so equivalence needs only cand ⊆ cur.
			ok, err := ContainedIn(cand, cur, opt)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = cand
				dropped = true
				i--
			}
		}
		if !dropped {
			return cur, nil
		}
	}
}

// coversFree reports whether every free variable still occurs in an atom.
func coversFree(q *cq.Query) bool {
	occ := make(map[cq.Var]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Args {
			occ[v] = true
		}
	}
	for _, v := range q.Free {
		if !occ[v] {
			return false
		}
	}
	return true
}
