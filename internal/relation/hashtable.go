package relation

// Open-addressing hash structures for the execution hot path. Two
// structures live here:
//
//   - the per-relation dedup table (fields keys/refs on Relation): an
//     open-addressing set over uint64 keys with linear probing and
//     power-of-two capacity, replacing the former map[uint64]struct{} /
//     map[string]struct{} pair. In packed ("exact") mode the key is an
//     injective byte-packing of the tuple; otherwise it is an FNV-1a hash
//     and equality is verified against the stored row in the arena.
//
//   - joinTable: the hash-join build table, replacing map[uint64][]Tuple.
//     Rows with equal keys are chained through flat []int32 arrays, so
//     building allocates O(1) slices total instead of one slice header per
//     distinct key.
//
// Both use the same finalizing mixer so that packed keys (whose entropy
// sits in the low bytes) spread over the whole table.

// mix64 is the splitmix64 finalizer: a bijective mixer that spreads any
// key over all 64 bits. Slot indexes are taken from its low bits, radix
// partition numbers from its high bits, so the two never correlate.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// nextPow2 returns the smallest power of two >= n (and at least 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// hashRow computes the FNV-1a fallback dedup key of a tuple, used when
// the relation has left packed mode. Collisions are resolved by comparing
// rows in the arena, so the hash only needs to be deterministic.
func hashRow(t Tuple) uint64 {
	var h uint64 = fnvOffset
	for _, v := range t {
		u := uint32(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= fnvPrime
		}
	}
	return h
}

// rowEqual reports whether stored row i equals t.
func (r *Relation) rowEqual(i int, t Tuple) bool {
	row := r.data[i*r.arity : (i+1)*r.arity]
	for j, v := range row {
		if v != t[j] {
			return false
		}
	}
	return true
}

// dedupInsert inserts (key, row r.n) unless an equal tuple is already
// present, and reports whether it inserted. In exact mode the key is
// injective so key equality decides; otherwise the candidate is compared
// against the stored row.
func (r *Relation) dedupInsert(key uint64, t Tuple) bool {
	if len(r.keys) == 0 {
		r.keys = make([]uint64, 16)
		r.refs = make([]int32, 16)
	} else if r.used*4 >= len(r.keys)*3 {
		r.growDedup()
	}
	mask := uint64(len(r.keys) - 1)
	i := mix64(key) & mask
	for {
		ref := r.refs[i]
		if ref == 0 {
			r.keys[i] = key
			r.refs[i] = int32(r.n) + 1
			r.used++
			return true
		}
		if r.keys[i] == key && (r.exact || r.rowEqual(int(ref-1), t)) {
			return false
		}
		i = (i + 1) & mask
	}
}

// dedupContains reports whether a tuple with the given key is present.
func (r *Relation) dedupContains(key uint64, t Tuple) bool {
	if len(r.keys) == 0 {
		return false
	}
	mask := uint64(len(r.keys) - 1)
	i := mix64(key) & mask
	for {
		ref := r.refs[i]
		if ref == 0 {
			return false
		}
		if r.keys[i] == key && (r.exact || r.rowEqual(int(ref-1), t)) {
			return true
		}
		i = (i + 1) & mask
	}
}

// growDedup doubles the table and rehashes the stored (key, ref) pairs.
// Rows are not touched: keys are stored alongside the refs.
func (r *Relation) growDedup() {
	oldKeys, oldRefs := r.keys, r.refs
	size := len(oldKeys) * 2
	r.keys = make([]uint64, size)
	r.refs = make([]int32, size)
	mask := uint64(size - 1)
	for j, ref := range oldRefs {
		if ref == 0 {
			continue
		}
		k := oldKeys[j]
		i := mix64(k) & mask
		for r.refs[i] != 0 {
			i = (i + 1) & mask
		}
		r.keys[i] = k
		r.refs[i] = ref
	}
}

// rebuildDedup rebuilds the table from the arena under the current mode.
// The stored rows are distinct, so each insert lands in the first free
// slot of its probe sequence.
func (r *Relation) rebuildDedup() {
	size := nextPow2(r.n*4/3 + 1)
	if size < 16 {
		size = 16
	}
	r.keys = make([]uint64, size)
	r.refs = make([]int32, size)
	r.used = r.n
	mask := uint64(size - 1)
	for i := 0; i < r.n; i++ {
		t := r.row(i)
		var k uint64
		if r.exact {
			k, _ = packKey(t)
		} else {
			k = hashRow(t)
		}
		j := mix64(k) & mask
		for r.refs[j] != 0 {
			j = (j + 1) & mask
		}
		r.keys[j] = k
		r.refs[j] = int32(i) + 1
	}
}

// ensureDedup builds the dedup table of a relation whose rows were
// assembled without one (the merge step of the partition-parallel join
// leaves the table stale because partition outputs are provably disjoint).
func (r *Relation) ensureDedup() {
	if !r.stale {
		return
	}
	r.stale = false
	r.exact = r.arity <= 8 && r.rangesPackable()
	r.rebuildDedup()
}

// migrateHashed leaves packed mode: all dedup keys become FNV hashes with
// row verification on collision.
func (r *Relation) migrateHashed() {
	r.exact = false
	r.rebuildDedup()
}

// joinTable is the hash-join build table: an open-addressing map from a
// join key to the chain of build-side row indexes carrying that key.
// Capacity is fixed at construction (the build side is fully known), so
// there is no growth path; chains live in two flat arrays.
type joinTable struct {
	mask     uint64
	slotKey  []uint64
	slotHead []int32 // 1-based index into rowOf/next; 0 = empty slot
	rowOf    []int32 // entry -> build row index
	next     []int32 // entry -> next entry with the same key (1-based, 0 = end)
}

// newJoinTable builds the table over keys[i] for rows 0..len(keys)-1.
func newJoinTable(keys []uint64) joinTable {
	jt := makeJoinTable(len(keys))
	for i, k := range keys {
		jt.insert(k, int32(i))
	}
	return jt
}

// makeJoinTable allocates an empty table sized for n rows at <=75% load.
func makeJoinTable(n int) joinTable {
	size := nextPow2(n*4/3 + 1)
	if size < 8 {
		size = 8
	}
	return joinTable{
		mask:     uint64(size - 1),
		slotKey:  make([]uint64, size),
		slotHead: make([]int32, size),
		rowOf:    make([]int32, 0, n),
		next:     make([]int32, 0, n),
	}
}

// bytes approximates the table's resident memory: slot arrays plus chain
// arrays at capacity. It is the join kernels' accounting unit for the
// memory budget (Limit.MaxBytes).
func (jt *joinTable) bytes() int64 {
	return int64(len(jt.slotKey))*12 + int64(cap(jt.rowOf))*8
}

// insert prepends row to the chain of key.
func (jt *joinTable) insert(key uint64, row int32) {
	i := mix64(key) & jt.mask
	for {
		head := jt.slotHead[i]
		if head == 0 {
			jt.slotKey[i] = key
			jt.rowOf = append(jt.rowOf, row)
			jt.next = append(jt.next, 0)
			jt.slotHead[i] = int32(len(jt.rowOf))
			return
		}
		if jt.slotKey[i] == key {
			jt.rowOf = append(jt.rowOf, row)
			jt.next = append(jt.next, head)
			jt.slotHead[i] = int32(len(jt.rowOf))
			return
		}
		i = (i + 1) & jt.mask
	}
}

// first returns the head of key's chain (1-based entry index), or 0.
// Iterate with: for e := jt.first(k); e != 0; e = jt.next[e-1].
func (jt *joinTable) first(key uint64) int32 {
	i := mix64(key) & jt.mask
	for {
		head := jt.slotHead[i]
		if head == 0 {
			return 0
		}
		if jt.slotKey[i] == key {
			return head
		}
		i = (i + 1) & jt.mask
	}
}
