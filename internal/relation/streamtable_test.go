package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// streamTableReference answers the same probes with a string-keyed map —
// the implementation StreamTable replaced in the engine's iterator
// executor — so the kernel can be checked differentially.
func streamTableReference(rows []Tuple, keyPos []int, probe Tuple, probePos []int) []string {
	key := func(t Tuple, pos []int) string {
		s := ""
		for _, p := range pos {
			s += fmt.Sprintf("%d|", t[p])
		}
		return s
	}
	want := key(probe, probePos)
	var out []string
	for _, r := range rows {
		if key(r, keyPos) == want {
			out = append(out, fmt.Sprint(r))
		}
	}
	sort.Strings(out)
	return out
}

func collectMatches(st *StreamTable, probe Tuple, probePos []int) []string {
	var out []string
	m := st.Probe(probe, probePos)
	for t := m.Next(); t != nil; t = m.Next() {
		out = append(out, fmt.Sprint(t))
	}
	sort.Strings(out)
	return out
}

func TestStreamTableDifferential(t *testing.T) {
	// Three value regimes: packed stays packed, "wide" forces migration
	// to FNV keys mid-build, "mixed" interleaves both so packed inserts
	// precede and follow the migration point.
	regimes := []struct {
		name string
		gen  func(rng *rand.Rand) Value
	}{
		{"packed", func(rng *rand.Rand) Value { return Value(rng.Intn(5)) }},
		{"wide", func(rng *rand.Rand) Value { return Value(rng.Intn(100_000) - 50_000) }},
		{"mixed", func(rng *rand.Rand) Value {
			if rng.Intn(4) == 0 {
				return Value(rng.Intn(100_000))
			}
			return Value(rng.Intn(5))
		}},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const arity = 3
			keyPos := []int{0, 2}
			probePos := []int{1, 0}
			var rows []Tuple
			st := NewStreamTable(arity, keyPos)
			for i := 0; i < 500; i++ {
				r := Tuple{reg.gen(rng), reg.gen(rng), reg.gen(rng)}
				rows = append(rows, r)
				st.Insert(r)
			}
			if st.Len() != len(rows) {
				t.Fatalf("Len = %d, want %d", st.Len(), len(rows))
			}
			for i := 0; i < 300; i++ {
				probe := Tuple{reg.gen(rng), reg.gen(rng)}
				got := collectMatches(st, probe, probePos)
				want := streamTableReference(rows, keyPos, probe, probePos)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("probe %v: got %v want %v", probe, got, want)
				}
			}
		})
	}
}

func TestStreamTableOutOfRangeProbe(t *testing.T) {
	st := NewStreamTable(2, []int{0})
	st.Insert(Tuple{1, 1})
	st.Insert(Tuple{2, 2})
	// Packed build side, out-of-range probe value: must short-circuit to
	// no matches, not hash.
	if got := collectMatches(st, Tuple{1000}, []int{0}); got != nil {
		t.Fatalf("out-of-range probe matched %v", got)
	}
	if got := collectMatches(st, Tuple{2}, []int{0}); len(got) != 1 {
		t.Fatalf("in-range probe matched %v, want one row", got)
	}
}

func TestStreamTableEmptyAndMisuse(t *testing.T) {
	st := NewStreamTable(2, []int{0})
	if got := collectMatches(st, Tuple{1}, []int{0}); got != nil {
		t.Fatalf("empty table matched %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Insert after Probe did not panic")
		}
	}()
	st.Insert(Tuple{1, 2})
}

// TestStreamTableZeroArity pins the arity-0 regression: a Boolean
// subresult builds rows with no columns, and matches must still surface
// as non-nil empty tuples rather than reading as table exhaustion.
func TestStreamTableZeroArity(t *testing.T) {
	st := NewStreamTable(0, nil)
	st.Insert(Tuple{})
	m := st.Probe(Tuple{5, 6}, nil)
	got := 0
	for tup := m.Next(); tup != nil; tup = m.Next() {
		if len(tup) != 0 {
			t.Fatalf("zero-arity match has %d columns", len(tup))
		}
		got++
	}
	if got != 1 {
		t.Fatalf("zero-arity probe matched %d rows, want 1", got)
	}
}
