package relation

import (
	"fmt"
	"sort"

	"projpush/internal/faultinject"
)

// SortedIndex is a sorted row-id view over a relation's flat arena: the
// rows of the relation ordered lexicographically by a caller-chosen
// column sequence, with no tuple copies — the index stores one int32 row
// id per tuple and reads values straight out of the arena. It is the
// access path of the worst-case-optimal join executor: a leapfrog
// intersection narrows a [lo,hi) row-id bracket one column (depth) at a
// time, and within a bracket where depths 0..d-1 are constant, depth d is
// sorted, so galloping SeekGE/SeekGT find the next candidate value and
// the end of its run in O(log gap).
//
// Sorting reuses the arena's packed/FNV key split: while every indexed
// column holds byte-range values (the paper's domains always do) and at
// most eight columns are indexed, each row packs into one order-preserving
// uint64 and the sort compares single machine words; otherwise it falls
// back to column-wise compares. Ties (rows equal on every indexed column)
// break by row id, so the order is deterministic either way.
type SortedIndex struct {
	rel  *Relation
	cols []int   // arena column index per depth
	rows []int32 // row ids, sorted lexicographically by cols
}

// NewSortedIndex builds a sorted index over r ordered by attrs. It is
// NewSortedIndexLimited with no limits; it never fails on a valid schema.
func NewSortedIndex(r *Relation, attrs []Attr) (*SortedIndex, error) {
	return NewSortedIndexLimited(r, attrs, nil)
}

// NewSortedIndexLimited builds a sorted index over r ordered by attrs
// (each of which must be in r's schema) under lim: the row-id array and
// the sort's packed-key scratch are charged against the byte budget, and
// the rows touched are charged as work.
func NewSortedIndexLimited(r *Relation, attrs []Attr, lim *Limit) (*SortedIndex, error) {
	if err := lim.interrupted(); err != nil {
		return nil, err
	}
	faultinject.Sleep(faultinject.LatencyKernel)
	if faultinject.FailAlloc(faultinject.AllocJoin) {
		return nil, fmt.Errorf("%w: injected allocation failure", ErrMemBudget)
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.Pos(a)
		if j < 0 {
			return nil, fmt.Errorf("relation.NewSortedIndex: attribute %d not in schema", a)
		}
		cols[i] = j
	}
	ix := &SortedIndex{rel: r, cols: cols, rows: make([]int32, r.n)}
	for i := range ix.rows {
		ix.rows[i] = int32(i)
	}
	lim.charge(int64(r.n))
	if err := lim.chargeBytes(ix.Bytes()); err != nil {
		return nil, err
	}

	// Packed fast path: one order-preserving uint64 per row (more
	// significant depth = more significant byte), single-word compares.
	if len(cols) <= 8 && r.rangesPackable() {
		if err := lim.chargeBytes(int64(r.n) * 8); err != nil {
			return nil, err
		}
		keys := make([]uint64, r.n)
		for i := 0; i < r.n; i++ {
			t := r.row(i)
			var key uint64
			for _, c := range cols {
				key = key<<8 | uint64(byte(t[c]))
			}
			keys[i] = key
		}
		sort.Slice(ix.rows, func(a, b int) bool {
			ka, kb := keys[ix.rows[a]], keys[ix.rows[b]]
			if ka != kb {
				return ka < kb
			}
			return ix.rows[a] < ix.rows[b]
		})
		return ix, lim.interrupted()
	}

	sort.Slice(ix.rows, func(a, b int) bool {
		ta, tb := r.row(int(ix.rows[a])), r.row(int(ix.rows[b]))
		for _, c := range cols {
			if ta[c] != tb[c] {
				return ta[c] < tb[c]
			}
		}
		return ix.rows[a] < ix.rows[b]
	})
	return ix, lim.interrupted()
}

// Len returns the number of indexed rows.
func (ix *SortedIndex) Len() int { return len(ix.rows) }

// Depths returns the number of indexed columns.
func (ix *SortedIndex) Depths() int { return len(ix.cols) }

// Bytes approximates the index's resident memory: the row-id array (the
// arena it points into is accounted to its relation).
func (ix *SortedIndex) Bytes() int64 { return int64(len(ix.rows)) * 4 }

// Value returns the depth-d column value of the i-th row in sorted order.
func (ix *SortedIndex) Value(i, d int) Value {
	return ix.rel.data[int(ix.rows[i])*ix.rel.arity+ix.cols[d]]
}

// SeekGE returns the smallest position in [lo,hi) whose depth-d value is
// >= v, or hi when none is. The bracket must be one where depths 0..d-1
// are constant (so depth d is sorted within it). The search gallops from
// lo — constant when the answer is adjacent, logarithmic in the gap —
// which is what makes leapfrog intersection's total work proportional to
// the smallest participating relation, not the largest.
func (ix *SortedIndex) SeekGE(d, lo, hi int, v Value) int {
	return ix.seek(d, lo, hi, v, false)
}

// SeekGT is SeekGE with a strict bound: the smallest position in [lo,hi)
// whose depth-d value is > v. Using it to find the end of a value's run
// avoids the v+1 overflow a SeekGE-based formulation hits at the top of
// the Value range.
func (ix *SortedIndex) SeekGT(d, lo, hi int, v Value) int {
	return ix.seek(d, lo, hi, v, true)
}

func (ix *SortedIndex) seek(d, lo, hi int, v Value, strict bool) int {
	ok := func(i int) bool {
		u := ix.Value(i, d)
		if strict {
			return u > v
		}
		return u >= v
	}
	if lo >= hi {
		return hi
	}
	if ok(lo) {
		return lo
	}
	// Gallop: double the step until we overshoot (or run off the end),
	// leaving a bracket (prev, bound] with ok(prev) false.
	prev, bound := lo, hi
	for step := 1; ; step <<= 1 {
		i := lo + step
		if i >= hi {
			break
		}
		if ok(i) {
			bound = i
			break
		}
		prev = i
	}
	// Binary search (prev, bound]: first ok position.
	return prev + 1 + sort.Search(bound-prev-1, func(k int) bool { return ok(prev + 1 + k) })
}
