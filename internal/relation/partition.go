package relation

import (
	"sync"
	"sync/atomic"

	"projpush/internal/faultinject"
)

// Partition-parallel hash join, two strategies:
//
// Radix partitioning (large build sides): both sides are partitioned on
// the high bits of the mixed join key, partitions are joined independently
// by a worker pool, and the outputs are concatenated. Dedup across
// partitions needs no extra pass: equal output tuples have equal
// shared-attribute values, hence equal join keys, hence the same partition
// — so per-partition dedup is already a parallel dedup of the whole
// output, and the merged arena is duplicate-free by construction.
//
// Probe chunking (small build sides): the paper's domains have two or
// three values, so join keys often take only a handful of distinct values
// and radix partitioning degenerates — at most one partition per distinct
// key ever has work. When the build side is small its distinct-key count
// is too, so instead one shared read-only build table is probed by
// contiguous probe-row chunks. Cross-chunk dedup is again free: a natural
// join's output schema contains every probe column, so output tuples from
// distinct probe rows are distinct, and duplicates can only come from two
// matches of one probe row — which live in the same chunk.
//
// Either way the merged relation's dedup table is left stale and rebuilt
// lazily on first use (joins and projections over it never need one).

// parallelJoinMinRows is the input size (build + probe rows) below which
// ParallelJoinLimited stays sequential: partitioning and goroutine
// handoff cost more than they save on small inputs.
const parallelJoinMinRows = 2048

// maxPartitions caps the radix fan-out; beyond this, per-partition table
// setup dominates.
const maxPartitions = 64

// chunkBuildMax is the build-side size at or below which ParallelJoinLimited
// chunks the probe over a shared table instead of radix-partitioning: a
// build this small has few distinct keys, which starves radix partitions.
const chunkBuildMax = 1024

// ParallelJoinLimited computes the same natural join as JoinLimited, with
// the work of a single join spread over up to workers goroutines via
// radix partitioning. Results are identical (as sets) to JoinLimited.
// Limits keep firing across partitions: the row cap is enforced by a
// shared atomic counter, every worker checks the deadline, and Work
// aggregates each worker's touched-tuple count.
func ParallelJoinLimited(r, o *Relation, lim *Limit, workers int) (*Relation, error) {
	if workers < 2 || r.n+o.n < parallelJoinMinRows {
		return JoinLimited(r, o, lim)
	}
	if err := lim.interrupted(); err != nil {
		return nil, err
	}
	spec := makeJoinSpec(r, o)
	if len(spec.shared) == 0 || spec.build.n == 0 {
		// A cross product has a single join key — nothing to partition.
		return JoinLimited(r, o, lim)
	}

	bKeys := spec.buildKeys()
	lim.charge(int64(spec.build.n))
	if spec.build.n <= chunkBuildMax {
		return chunkedJoin(&spec, bKeys, lim, workers)
	}

	nparts := nextPow2(2 * workers)
	if nparts > maxPartitions {
		nparts = maxPartitions
	}
	shift := uint(64)
	for p := nparts; p > 1; p >>= 1 {
		shift--
	}

	pKeys := make([]uint64, spec.probe.n)
	for i := range pKeys {
		pKeys[i] = spec.pKey.key(spec.probe.row(i))
	}

	bStarts, bIdx := partitionRows(bKeys, nparts, shift)
	pStarts, pIdx := partitionRows(pKeys, nparts, shift)

	outs := make([]*Relation, nparts)
	errs := make([]error, nparts)
	var (
		nextPart  atomic.Int64
		totalRows atomic.Int64
		work      atomic.Int64
		aborted   atomic.Bool
		wg        sync.WaitGroup
	)
	nworkers := workers
	if nworkers > nparts {
		nworkers = nparts
	}
	werrs := make([]error, nworkers)
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panicking worker becomes a typed error and flips the
			// shared abort flag, so its siblings drain instead of
			// crashing the process.
			defer func() {
				if werrs[w] != nil {
					aborted.Store(true)
				}
			}()
			defer RecoverPanic(&werrs[w])
			for {
				p := int(nextPart.Add(1)) - 1
				if p >= nparts || aborted.Load() {
					return
				}
				faultinject.Panic(faultinject.PanicJoinWorker)
				brows := bIdx[bStarts[p]:bStarts[p+1]]
				prows := pIdx[pStarts[p]:pStarts[p+1]]
				if len(brows) == 0 || len(prows) == 0 {
					continue
				}
				out, err := joinPartition(&spec, bKeys, pKeys, brows, prows,
					lim, &totalRows, &work, &aborted)
				outs[p], errs[p] = out, err
				if err != nil {
					aborted.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lim.charge(work.Load())
	for _, err := range werrs {
		if err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergePartitions(spec.outAttrs, outs), nil
}

// chunkedJoin joins by splitting the probe side into contiguous row
// chunks over one shared read-only build table. Each worker computes its
// own probe keys, so key extraction parallelizes along with probing. See
// the package comment for why per-chunk dedup is globally correct.
func chunkedJoin(spec *joinSpec, bKeys []uint64, lim *Limit, workers int) (*Relation, error) {
	jt := newJoinTable(bKeys)
	if err := lim.chargeBytes(jt.bytes()); err != nil {
		return nil, err
	}

	nchunks := 4 * workers
	if nchunks > maxPartitions {
		nchunks = maxPartitions
	}
	per := (spec.probe.n + nchunks - 1) / nchunks

	outs := make([]*Relation, nchunks)
	errs := make([]error, nchunks)
	var (
		nextChunk atomic.Int64
		totalRows atomic.Int64
		work      atomic.Int64
		aborted   atomic.Bool
		wg        sync.WaitGroup
	)
	nworkers := workers
	if nworkers > nchunks {
		nworkers = nchunks
	}
	werrs := make([]error, nworkers)
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if werrs[w] != nil {
					aborted.Store(true)
				}
			}()
			defer RecoverPanic(&werrs[w])
			for {
				c := int(nextChunk.Add(1)) - 1
				if c >= nchunks || aborted.Load() {
					return
				}
				faultinject.Panic(faultinject.PanicJoinWorker)
				lo := c * per
				hi := lo + per
				if hi > spec.probe.n {
					hi = spec.probe.n
				}
				if lo >= hi {
					continue
				}
				out, err := joinChunk(spec, &jt, lo, hi, lim, &totalRows, &work, &aborted)
				outs[c], errs[c] = out, err
				if err != nil {
					aborted.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lim.charge(work.Load())
	for _, err := range werrs {
		if err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergePartitions(spec.outAttrs, outs), nil
}

// joinChunk probes rows [lo, hi) of the probe side against the shared
// build table into a private output relation, charging limits through the
// shared counters.
func joinChunk(spec *joinSpec, jt *joinTable, lo, hi int,
	lim *Limit, totalRows, work *atomic.Int64, aborted *atomic.Bool) (*Relation, error) {

	out := New(spec.outAttrs)
	var touched, outBytes int64
	nextCheck := int64(deadlineCheckInterval)
	defer func() { work.Add(touched) }()
	for i := lo; i < hi; i++ {
		pt := spec.probe.row(i)
		touched++
		for e := jt.first(spec.pKey.key(pt)); e != 0; e = jt.next[e-1] {
			bt := spec.build.row(int(jt.rowOf[e-1]))
			touched++
			if touched >= nextCheck {
				nextCheck = touched + deadlineCheckInterval
				if aborted.Load() {
					return out, nil
				}
				if err := lim.interrupted(); err != nil {
					return nil, err
				}
			}
			if spec.needVerify && !spec.verifyMatch(pt, bt) {
				continue
			}
			if spec.emit(out, pt, bt) {
				if err := lim.chargeMem(out, &outBytes); err != nil {
					return nil, err
				}
				if lim != nil && lim.MaxRows > 0 && totalRows.Add(1) > int64(lim.MaxRows) {
					return nil, ErrRowLimit
				}
			}
		}
	}
	return out, nil
}

// partitionRows groups row indexes by the top bits of their mixed key
// with a two-pass counting sort. Partition p's rows are
// idx[starts[p]:starts[p+1]].
func partitionRows(keys []uint64, nparts int, shift uint) (starts []int32, idx []int32) {
	counts := make([]int32, nparts+1)
	for _, k := range keys {
		counts[(mix64(k)>>shift)+1]++
	}
	for p := 0; p < nparts; p++ {
		counts[p+1] += counts[p]
	}
	starts = counts
	idx = make([]int32, len(keys))
	fill := append([]int32(nil), starts[:nparts]...)
	for i, k := range keys {
		p := mix64(k) >> shift
		idx[fill[p]] = int32(i)
		fill[p]++
	}
	return starts, idx
}

// joinPartition joins one (build partition, probe partition) pair into a
// private output relation, charging limits through the shared counters.
func joinPartition(spec *joinSpec, bKeys, pKeys []uint64, brows, prows []int32,
	lim *Limit, totalRows, work *atomic.Int64, aborted *atomic.Bool) (*Relation, error) {

	jt := makeJoinTable(len(brows))
	for _, bi := range brows {
		jt.insert(bKeys[bi], bi)
	}
	if err := lim.chargeBytes(jt.bytes()); err != nil {
		return nil, err
	}

	out := New(spec.outAttrs)
	var touched, outBytes int64
	nextCheck := int64(deadlineCheckInterval)
	defer func() { work.Add(touched) }()
	for _, pi := range prows {
		pt := spec.probe.row(int(pi))
		touched++
		for e := jt.first(pKeys[pi]); e != 0; e = jt.next[e-1] {
			bt := spec.build.row(int(jt.rowOf[e-1]))
			touched++
			if touched >= nextCheck {
				nextCheck = touched + deadlineCheckInterval
				if aborted.Load() {
					return out, nil
				}
				if err := lim.interrupted(); err != nil {
					return nil, err
				}
			}
			if spec.needVerify && !spec.verifyMatch(pt, bt) {
				continue
			}
			if spec.emit(out, pt, bt) {
				if err := lim.chargeMem(out, &outBytes); err != nil {
					return nil, err
				}
				if lim != nil && lim.MaxRows > 0 && totalRows.Add(1) > int64(lim.MaxRows) {
					return nil, ErrRowLimit
				}
			}
		}
	}
	return out, nil
}

// mergePartitions concatenates the partition outputs into one relation.
// The outputs are disjoint (see the package comment above), so the merge
// is a flat copy of the arenas; the dedup table is marked stale and
// rebuilt lazily if the merged relation is ever mutated or probed.
func mergePartitions(outAttrs []Attr, parts []*Relation) *Relation {
	out := New(outAttrs)
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.n
		}
	}
	if total == 0 {
		return out
	}
	out.data = make([]Value, 0, total*out.arity)
	first := true
	for _, p := range parts {
		if p == nil || p.n == 0 {
			continue
		}
		out.data = append(out.data, p.data...)
		if first {
			copy(out.colMin, p.colMin)
			copy(out.colMax, p.colMax)
			first = false
		} else {
			for j := 0; j < out.arity; j++ {
				if p.colMin[j] < out.colMin[j] {
					out.colMin[j] = p.colMin[j]
				}
				if p.colMax[j] > out.colMax[j] {
					out.colMax[j] = p.colMax[j]
				}
			}
		}
	}
	out.n = total
	out.stale = true
	return out
}
