package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// Semijoin kernel microbenchmarks: the copying kernel (SemijoinLimited)
// against the in-place filter (SemijoinFilter) across survivor rates.
// The filter's advantage grows as the survivor rate rises — at 99% it
// compacts almost nothing and at 100% it returns its receiver — while
// the copying kernel always pays for a full output relation. `make
// bench-json` pins the BenchmarkKernel* series in BENCH_relation.json.

// semijoinInputs builds R(0,1) with `rows` tuples and S(1) holding the
// fraction of the domain that makes ~hit of R's tuples survive R ⋉ S.
func semijoinInputs(rows, domain int, hit float64) (*Relation, *Relation) {
	rng := rand.New(rand.NewSource(7))
	r := New([]Attr{0, 1})
	for i := 0; i < rows; i++ {
		r.Add(Tuple{Value(i), Value(rng.Intn(domain))})
	}
	s := New([]Attr{1})
	keep := int(hit*float64(domain) + 0.5)
	for _, v := range rng.Perm(domain)[:keep] {
		s.Add(Tuple{Value(v)})
	}
	return r, s
}

func BenchmarkKernelSemijoin(b *testing.B) {
	const rows, domain = 100_000, 1000
	for _, hit := range []float64{0.01, 0.50, 0.99} {
		r, s := semijoinInputs(rows, domain, hit)
		b.Run(fmt.Sprintf("hit=%d%%/copy", int(hit*100)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := SemijoinLimited(r, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				_ = out
			}
		})
		b.Run(fmt.Sprintf("hit=%d%%/filter", int(hit*100)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// The filter consumes its receiver; clone outside the
				// timed region so only the kernel is measured.
				b.StopTimer()
				in := r.Clone()
				b.StartTimer()
				out, _, err := SemijoinFilter(in, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				_ = out
			}
		})
	}
}
