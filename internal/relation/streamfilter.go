package relation

// StreamFilter is the streaming half of the semijoin kernel pair: where
// SemijoinFilter reduces a materialized relation in place, StreamFilter is
// built once over the key columns of a (typically already-reduced)
// relation and then answers "could this tuple join with o?" for tuples
// arriving one at a time. The pipelined executor uses it to pre-reduce
// hash-join build sides whose input is itself a stream — rows that cannot
// join with the probe side's base relations are dropped before a single
// bucket is allocated.
//
// Key handling mirrors StreamTable: injective byte-packed keys while every
// build value fits in a byte (no verification on match), FNV-1a with
// arena verification otherwise. An out-of-range probe value in packed mode
// short-circuits to "no match".

import (
	"fmt"

	"projpush/internal/faultinject"
)

// StreamFilter answers streaming membership queries against the key
// columns of a built relation.
type StreamFilter struct {
	o      *Relation
	oPos   []int
	packed bool
	keys   []uint64
	jt     joinTable
}

// NewStreamFilter builds a filter over o keyed by attrs (which must all be
// attributes of o). The probe-table build charges lim like the other
// semijoin kernels.
func NewStreamFilter(o *Relation, attrs []Attr, lim *Limit) (*StreamFilter, error) {
	if err := lim.interrupted(); err != nil {
		return nil, err
	}
	faultinject.Sleep(faultinject.LatencyKernel)
	if faultinject.FailAlloc(faultinject.AllocSemijoin) {
		return nil, fmt.Errorf("%w: injected allocation failure", ErrMemBudget)
	}
	f := &StreamFilter{o: o, oPos: make([]int, len(attrs)), packed: len(attrs) <= 8}
	for i, a := range attrs {
		p, ok := o.pos[a]
		if !ok {
			return nil, fmt.Errorf("relation: filter attribute %d not in schema", a)
		}
		f.oPos[i] = p
	}
	f.keys = make([]uint64, o.n)
	for i := 0; i < o.n; i++ {
		t := o.row(i)
		if f.packed {
			if k, ok := packCols(t, f.oPos); ok {
				f.keys[i] = k
				continue
			}
			f.packed = false
			for j := 0; j < i; j++ {
				f.keys[j] = hashCols(o.row(j), f.oPos)
			}
		}
		f.keys[i] = hashCols(t, f.oPos)
	}
	f.jt = newJoinTable(f.keys)
	lim.charge(int64(o.n))
	if err := lim.chargeBytes(f.Bytes()); err != nil {
		return nil, err
	}
	return f, nil
}

// Match reports whether t's columns pos (parallel to the attrs the filter
// was built with) equal the key columns of at least one row of o.
func (f *StreamFilter) Match(t Tuple, pos []int) bool {
	if f.o.n == 0 {
		return false
	}
	if f.packed {
		k, ok := packCols(t, pos)
		if !ok {
			// All build values are byte-range; an out-of-range probe
			// value cannot match any of them.
			return false
		}
		return f.jt.first(k) != 0
	}
	k := hashCols(t, pos)
	for e := f.jt.first(k); e != 0; e = f.jt.next[e-1] {
		ot := f.o.row(int(f.jt.rowOf[e-1]))
		match := true
		for i, p := range f.oPos {
			if ot[p] != t[pos[i]] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Bytes approximates the filter's resident memory (keys plus the probe
// structure); the arena belongs to o and is not counted.
func (f *StreamFilter) Bytes() int64 {
	return int64(cap(f.keys))*8 + f.jt.bytes()
}
