package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func edgeRelation(a, b Attr) *Relation {
	// The paper's single database relation: all pairs of distinct colors.
	r := New([]Attr{a, b})
	for i := Value(0); i < 3; i++ {
		for j := Value(0); j < 3; j++ {
			if i != j {
				r.Add(Tuple{i, j})
			}
		}
	}
	return r
}

func TestNewPanicsOnDuplicateAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate attribute")
		}
	}()
	New([]Attr{1, 2, 1})
}

func TestAddDedup(t *testing.T) {
	r := New([]Attr{0, 1})
	if !r.Add(Tuple{1, 2}) {
		t.Fatal("first Add returned false")
	}
	if r.Add(Tuple{1, 2}) {
		t.Fatal("duplicate Add returned true")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if !r.Contains(Tuple{1, 2}) {
		t.Fatal("Contains missed inserted tuple")
	}
	if r.Contains(Tuple{2, 1}) {
		t.Fatal("Contains found absent tuple")
	}
}

func TestAddCopiesTuple(t *testing.T) {
	r := New([]Attr{0})
	tu := Tuple{7}
	r.Add(tu)
	tu[0] = 9
	if !r.Contains(Tuple{7}) {
		t.Fatal("relation shares storage with caller tuple")
	}
}

func TestAddArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for arity mismatch")
		}
	}()
	New([]Attr{0, 1}).Add(Tuple{1})
}

func TestEncodeLargeValues(t *testing.T) {
	r := New([]Attr{0, 1})
	r.Add(Tuple{300, 1})
	r.Add(Tuple{1, 300})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2: large-value encoding collided", r.Len())
	}
	r.Add(Tuple{-1, 5})
	if !r.Contains(Tuple{-1, 5}) {
		t.Fatal("negative value lost")
	}
}

func TestEncodeEscapeNoCollision(t *testing.T) {
	// Value 255 must not be confusable with the escape byte of value 255.
	r := New([]Attr{0})
	r.Add(Tuple{255})
	r.Add(Tuple{256})
	if r.Len() != 2 {
		t.Fatal("escape encoding collided for 255 vs 256")
	}
}

func TestJoinBasic(t *testing.T) {
	// edge(0,1) ⋈ edge(1,2): pairs of edges sharing the middle vertex.
	e1 := edgeRelation(0, 1)
	e2 := edgeRelation(1, 2)
	j := Join(e1, e2)
	if got, want := j.Arity(), 3; got != want {
		t.Fatalf("arity = %d, want %d", got, want)
	}
	// For each of 6 (a,b) pairs there are 2 choices of c ≠ b: 12 tuples.
	if got, want := j.Len(), 12; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	j.Each(func(tu Tuple) bool {
		a, b, c := tu[0], tu[1], tu[2]
		if a == b || b == c {
			t.Fatalf("tuple %v violates edge constraints", tu)
		}
		return true
	})
}

func TestJoinNoSharedAttrsIsCrossProduct(t *testing.T) {
	e1 := edgeRelation(0, 1)
	e2 := edgeRelation(2, 3)
	j := Join(e1, e2)
	if got, want := j.Len(), 36; got != want {
		t.Fatalf("cross product len = %d, want %d", got, want)
	}
}

func TestJoinAllSharedAttrsIsIntersection(t *testing.T) {
	a := New([]Attr{0, 1})
	a.Add(Tuple{1, 2})
	a.Add(Tuple{3, 4})
	b := New([]Attr{1, 0}) // same attrs, different column order
	b.Add(Tuple{2, 1})
	b.Add(Tuple{5, 6})
	j := Join(a, b)
	if j.Len() != 1 || !j.Contains(Tuple{1, 2}) {
		t.Fatalf("join-as-intersection got %v", j)
	}
}

func TestJoinEmptyInput(t *testing.T) {
	e := edgeRelation(0, 1)
	empty := New([]Attr{1, 2})
	if j := Join(e, empty); !j.Empty() {
		t.Fatalf("join with empty relation not empty: %v", j)
	}
}

func TestJoinSchemaOrder(t *testing.T) {
	e1 := edgeRelation(0, 1)
	e2 := edgeRelation(1, 2)
	j := Join(e1, e2)
	want := []Attr{0, 1, 2}
	got := j.Attrs()
	if len(got) != len(want) {
		t.Fatalf("attrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attrs = %v, want %v", got, want)
		}
	}
}

func TestJoinRowLimit(t *testing.T) {
	e1 := edgeRelation(0, 1)
	e2 := edgeRelation(2, 3)
	_, err := JoinLimited(e1, e2, &Limit{MaxRows: 10})
	if err != ErrRowLimit {
		t.Fatalf("err = %v, want ErrRowLimit", err)
	}
}

func TestJoinDeadline(t *testing.T) {
	// Build a join large enough to cross a deadline check boundary.
	big1 := New([]Attr{0})
	big2 := New([]Attr{1})
	for i := Value(0); i < 300; i++ {
		big1.Add(Tuple{i})
		big2.Add(Tuple{i})
	}
	_, err := JoinLimited(big1, big2, &Limit{Deadline: time.Now().Add(-time.Second)})
	if err != ErrDeadline {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestJoinWorkCounter(t *testing.T) {
	var work int64
	e1 := edgeRelation(0, 1)
	e2 := edgeRelation(1, 2)
	if _, err := JoinLimited(e1, e2, &Limit{Work: &work}); err != nil {
		t.Fatal(err)
	}
	if work == 0 {
		t.Fatal("work counter not charged")
	}
}

func TestProject(t *testing.T) {
	e := edgeRelation(0, 1)
	p := Project(e, []Attr{0})
	if p.Len() != 3 {
		t.Fatalf("projection len = %d, want 3", p.Len())
	}
	p2 := Project(e, []Attr{1, 0})
	if p2.Len() != 6 || p2.Attrs()[0] != 1 {
		t.Fatalf("column-reorder projection wrong: %v", p2)
	}
}

func TestProjectUnknownAttr(t *testing.T) {
	e := edgeRelation(0, 1)
	if _, err := ProjectLimited(e, []Attr{5}, nil); err == nil {
		t.Fatal("expected error for unknown attribute")
	}
}

func TestProjectEmptyAttrList(t *testing.T) {
	e := edgeRelation(0, 1)
	p := Project(e, nil)
	// Projecting a nonempty relation to zero columns yields the single
	// empty tuple — the relational "true".
	if p.Len() != 1 || p.Arity() != 0 {
		t.Fatalf("nullary projection: len=%d arity=%d, want 1, 0", p.Len(), p.Arity())
	}
	empty := New([]Attr{0, 1})
	if p := Project(empty, nil); p.Len() != 0 {
		t.Fatal("nullary projection of empty relation must be empty")
	}
}

func TestSelect(t *testing.T) {
	e := edgeRelation(0, 1)
	s := Select(e, 0, 2)
	if s.Len() != 2 {
		t.Fatalf("select len = %d, want 2", s.Len())
	}
	s.Each(func(tu Tuple) bool {
		if tu[0] != 2 {
			t.Fatalf("tuple %v does not satisfy selection", tu)
		}
		return true
	})
}

func TestSelectEq(t *testing.T) {
	r := New([]Attr{0, 1})
	r.Add(Tuple{1, 1})
	r.Add(Tuple{1, 2})
	s := SelectEq(r, 0, 1)
	if s.Len() != 1 || !s.Contains(Tuple{1, 1}) {
		t.Fatalf("SelectEq got %v", s)
	}
}

func TestSemijoin(t *testing.T) {
	e1 := edgeRelation(0, 1)
	single := New([]Attr{1})
	single.Add(Tuple{2})
	s := Semijoin(e1, single)
	if s.Len() != 2 {
		t.Fatalf("semijoin len = %d, want 2", s.Len())
	}
	s.Each(func(tu Tuple) bool {
		if tu[1] != 2 {
			t.Fatalf("semijoin kept %v", tu)
		}
		return true
	})
}

func TestSemijoinNoSharedAttrs(t *testing.T) {
	e := edgeRelation(0, 1)
	non := New([]Attr{5})
	non.Add(Tuple{0})
	if s := Semijoin(e, non); s.Len() != e.Len() {
		t.Fatal("semijoin with nonempty disjoint relation must keep all tuples")
	}
	if s := Semijoin(e, New([]Attr{5})); !s.Empty() {
		t.Fatal("semijoin with empty disjoint relation must be empty")
	}
}

func TestSemijoinEquivalentToJoinProject(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := New([]Attr{0, 1})
		b := New([]Attr{1, 2})
		for i := 0; i < 20; i++ {
			a.Add(Tuple{Value(rng.Intn(4)), Value(rng.Intn(4))})
			b.Add(Tuple{Value(rng.Intn(4)), Value(rng.Intn(4))})
		}
		want := Project(Join(a, b), []Attr{0, 1})
		got := Semijoin(a, b)
		if !got.Equal(want) {
			t.Fatalf("trial %d: semijoin %v != π(join) %v", trial, got, want)
		}
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := New([]Attr{0, 1})
	a.Add(Tuple{1, 2})
	a.Add(Tuple{3, 4})
	b := New([]Attr{1, 0})
	b.Add(Tuple{2, 1}) // (0:1, 1:2) in a's order
	b.Add(Tuple{9, 9})

	u := Union(a, b)
	if u.Len() != 3 {
		t.Fatalf("union len = %d, want 3", u.Len())
	}
	i := Intersect(a, b)
	if i.Len() != 1 || !i.Contains(Tuple{1, 2}) {
		t.Fatalf("intersect got %v", i)
	}
	d := Difference(a, b)
	if d.Len() != 1 || !d.Contains(Tuple{3, 4}) {
		t.Fatalf("difference got %v", d)
	}
}

func TestSetOpsSchemaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on schema mismatch")
		}
	}()
	Union(New([]Attr{0}), New([]Attr{1}))
}

func TestRename(t *testing.T) {
	e := edgeRelation(0, 1)
	r := Rename(e, map[Attr]Attr{0: 10})
	if !r.HasAttr(10) || r.HasAttr(0) || !r.HasAttr(1) {
		t.Fatalf("rename schema wrong: %v", r.Attrs())
	}
	if r.Len() != e.Len() {
		t.Fatal("rename changed cardinality")
	}
}

func TestEqualIgnoresColumnOrder(t *testing.T) {
	a := New([]Attr{0, 1})
	a.Add(Tuple{1, 2})
	b := New([]Attr{1, 0})
	b.Add(Tuple{2, 1})
	if !a.Equal(b) {
		t.Fatal("Equal must ignore column order")
	}
	b.Add(Tuple{3, 3})
	if a.Equal(b) {
		t.Fatal("Equal must detect cardinality difference")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New([]Attr{0})
	a.Add(Tuple{1})
	c := a.Clone()
	c.Add(Tuple{2})
	if a.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone shares state")
	}
}

func TestSortedTuplesDeterministic(t *testing.T) {
	r := New([]Attr{0, 1})
	r.Add(Tuple{2, 1})
	r.Add(Tuple{1, 2})
	r.Add(Tuple{1, 1})
	s := r.SortedTuples()
	want := []Tuple{{1, 1}, {1, 2}, {2, 1}}
	for i := range want {
		if s[i][0] != want[i][0] || s[i][1] != want[i][1] {
			t.Fatalf("sorted order %v, want %v", s, want)
		}
	}
}

// randomRelation builds a relation over attrs with n random tuples drawn
// from [0,domain).
func randomRelation(rng *rand.Rand, attrs []Attr, n, domain int) *Relation {
	r := New(attrs)
	for i := 0; i < n; i++ {
		t := make(Tuple, len(attrs))
		for j := range t {
			t[j] = Value(rng.Intn(domain))
		}
		r.Add(t)
	}
	return r
}

// nestedLoopJoin is a trivially-correct oracle for the hash join.
func nestedLoopJoin(r, o *Relation) *Relation {
	outAttrs := append([]Attr(nil), r.Attrs()...)
	for _, a := range o.Attrs() {
		if !r.HasAttr(a) {
			outAttrs = append(outAttrs, a)
		}
	}
	out := New(outAttrs)
	shared := SharedAttrs(r, o)
	for _, rt := range r.Tuples() {
	next:
		for _, ot := range o.Tuples() {
			for _, a := range shared {
				if r.Value(rt, a) != o.Value(ot, a) {
					continue next
				}
			}
			row := make(Tuple, len(outAttrs))
			for i, a := range outAttrs {
				if r.HasAttr(a) {
					row[i] = r.Value(rt, a)
				} else {
					row[i] = o.Value(ot, a)
				}
			}
			out.Add(row)
		}
	}
	return out
}

func TestQuickJoinMatchesNestedLoop(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, arityA, arityB, overlap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		na := int(arityA%3) + 1
		nb := int(arityB%3) + 1
		ov := int(overlap) % (min(na, nb) + 1)
		// attrs: A gets 0..na-1; B shares the last ov of A's attrs.
		aAttrs := make([]Attr, na)
		for i := range aAttrs {
			aAttrs[i] = i
		}
		bAttrs := make([]Attr, nb)
		for i := range bAttrs {
			if i < ov {
				bAttrs[i] = na - ov + i
			} else {
				bAttrs[i] = 100 + i
			}
		}
		a := randomRelation(rng, aAttrs, 15, 3)
		b := randomRelation(rng, bAttrs, 15, 3)
		return Join(a, b).Equal(nestedLoopJoin(a, b))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, []Attr{0, 1}, 20, 3)
		b := randomRelation(rng, []Attr{1, 2}, 20, 3)
		return Join(a, b).Equal(Join(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, []Attr{0, 1}, 12, 3)
		b := randomRelation(rng, []Attr{1, 2}, 12, 3)
		c := randomRelation(rng, []Attr{2, 3}, 12, 3)
		return Join(Join(a, b), c).Equal(Join(a, Join(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProjectionPushingEquivalence(t *testing.T) {
	// π_X(A ⋈ B) = π_X(π_{X∪shared}(A) ⋈ B) when the projected-away
	// attributes of A occur only in A — the rewrite at the heart of the
	// paper (Section 4).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, []Attr{0, 1, 2}, 25, 3)
		b := randomRelation(rng, []Attr{2, 3}, 25, 3)
		// Attribute 0 occurs only in A; project it early.
		want := Project(Join(a, b), []Attr{1, 2, 3})
		got := Project(Join(Project(a, []Attr{1, 2}), b), []Attr{1, 2, 3})
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProjectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, []Attr{0, 1, 2}, 25, 4)
		p := Project(a, []Attr{0, 2})
		return Project(p, []Attr{0, 2}).Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashKeyerLargeValues(t *testing.T) {
	// Joins must stay correct when values exceed the byte-packing range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New([]Attr{0, 1})
		b := New([]Attr{1, 2})
		for i := 0; i < 20; i++ {
			a.Add(Tuple{Value(rng.Intn(4)), Value(rng.Intn(4)*1000 - 2000)})
			b.Add(Tuple{Value(rng.Intn(4)*1000 - 2000), Value(rng.Intn(4))})
		}
		return Join(a, b).Equal(nestedLoopJoin(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	r := New([]Attr{0, 1})
	r.Add(Tuple{1, 2})
	got := r.String()
	if got != "(x0,x1){(1,2)}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPackedModeMigration(t *testing.T) {
	// In-range tuples use the packed set; the first out-of-range tuple
	// migrates to string keys without losing dedup state.
	r := New([]Attr{0, 1})
	r.Add(Tuple{1, 2})
	r.Add(Tuple{1, 2})
	if r.Len() != 1 {
		t.Fatal("packed dedup broken")
	}
	r.Add(Tuple{500, 2}) // forces migration
	if r.Len() != 2 {
		t.Fatal("migration lost or duplicated tuples")
	}
	// Pre-migration duplicates still detected.
	if r.Add(Tuple{1, 2}) {
		t.Fatal("duplicate accepted after migration")
	}
	if r.Add(Tuple{500, 2}) {
		t.Fatal("post-migration duplicate accepted")
	}
	if !r.Contains(Tuple{1, 2}) || !r.Contains(Tuple{500, 2}) {
		t.Fatal("Contains wrong after migration")
	}
	if r.Contains(Tuple{499, 2}) {
		t.Fatal("Contains found absent tuple after migration")
	}
}

func TestPackedModeContainsOutOfRange(t *testing.T) {
	r := New([]Attr{0})
	r.Add(Tuple{3})
	if r.Contains(Tuple{1000}) {
		t.Fatal("packed Contains matched out-of-range tuple")
	}
}

func TestWideSchemaSkipsPackedMode(t *testing.T) {
	attrs := make([]Attr, 9)
	for i := range attrs {
		attrs[i] = i
	}
	r := New(attrs)
	tu := make(Tuple, 9)
	r.Add(tu)
	if r.Add(tu) {
		t.Fatal("9-ary dedup broken")
	}
	if !r.Contains(tu) {
		t.Fatal("9-ary Contains broken")
	}
}

// encode packs a tuple into a string key — the dedup encoding of the old
// map-based storage, kept as a reference oracle for dedup semantics.
func encode(t Tuple) string {
	b := make([]byte, 0, len(t)*5)
	for _, v := range t {
		if v >= 0 && v < 255 {
			b = append(b, byte(v))
		} else {
			u := uint32(v)
			b = append(b, 255, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
	}
	return string(b)
}

func TestQuickPackedDedupMatchesStringDedup(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New([]Attr{0, 1, 2})
		reference := map[string]bool{}
		for i := 0; i < 100; i++ {
			t := Tuple{
				Value(rng.Intn(300) - 10),
				Value(rng.Intn(5)),
				Value(rng.Intn(5)),
			}
			want := !reference[string(encode(t))]
			reference[string(encode(t))] = true
			if a.Add(t) != want {
				return false
			}
		}
		return a.Len() == len(reference)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
