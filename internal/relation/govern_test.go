package relation

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"projpush/internal/faultinject"
)

// bigJoinInputs builds a join pair whose output has roughly
// n/dup * (dup)^2 rows, large enough to cross the parallel-join threshold
// and run for several milliseconds.
func bigJoinInputs(n, dup int) (*Relation, *Relation) {
	a := New([]Attr{0, 1})
	b := New([]Attr{1, 2})
	for i := 0; i < n; i++ {
		a.Add(Tuple{Value(i), Value(i % dup)})
		b.Add(Tuple{Value(i % dup), Value(i)})
	}
	return a, b
}

// settleGoroutines waits for the goroutine count to drop back to at most
// base, and returns the final count.
func settleGoroutines(base int) int {
	var n int
	for i := 0; i < 200; i++ {
		n = runtime.NumGoroutine()
		if n <= base {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n
}

// TestParallelJoinCancellationHygiene cancels a context mid-join and
// checks that the join fails with ErrCanceled, retains no partial output,
// and leaks no worker goroutines. Run under -race this also exercises the
// abort-flag handoff between canceling and draining workers.
func TestParallelJoinCancellationHygiene(t *testing.T) {
	a, b := bigJoinInputs(5000, 25) // ~1M output rows
	base := runtime.NumGoroutine()

	canceled := false
	for attempt := 0; attempt < 5 && !canceled; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(attempt+1) * 500 * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		out, err := ParallelJoinLimited(a, b, &Limit{Ctx: ctx}, 4)
		timer.Stop()
		cancel()
		if err == nil {
			continue // join finished before the cancel landed; try sooner
		}
		canceled = true
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
		}
		if out != nil {
			t.Fatalf("canceled join returned partial output of %d rows", out.Len())
		}
	}
	if !canceled {
		t.Fatal("could not cancel the join mid-flight in 5 attempts")
	}
	if n := settleGoroutines(base); n > base {
		t.Fatalf("goroutines leaked: %d before, %d after settle", base, n)
	}
}

// TestMemBudgetFiresBeforeRowCap gives a join a byte budget far tighter
// than its row cap and checks the memory error wins.
func TestMemBudgetFiresBeforeRowCap(t *testing.T) {
	a, b := bigJoinInputs(3000, 30) // ~300k output rows
	var bytes atomic.Int64
	lim := &Limit{MaxRows: 100_000_000, MaxBytes: 64 << 10, Bytes: &bytes}
	if _, err := JoinLimited(a, b, lim); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("sequential join: err = %v, want ErrMemBudget", err)
	}

	bytes.Store(0)
	lim = &Limit{MaxRows: 100_000_000, MaxBytes: 64 << 10, Bytes: &bytes}
	if _, err := ParallelJoinLimited(a, b, lim, 4); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("parallel join: err = %v, want ErrMemBudget", err)
	}

	// The shared counter makes the budget cumulative across operators:
	// a join that fits alone fails when the counter is pre-charged.
	small := New([]Attr{0, 1})
	small2 := New([]Attr{1, 2})
	for i := 0; i < 100; i++ {
		small.Add(Tuple{Value(i), Value(i % 5)})
		small2.Add(Tuple{Value(i % 5), Value(i)})
	}
	bytes.Store(0)
	lim = &Limit{MaxBytes: 1 << 20, Bytes: &bytes}
	if _, err := JoinLimited(small, small2, lim); err != nil {
		t.Fatalf("small join under roomy budget: %v", err)
	}
	bytes.Store(1 << 20)
	if _, err := JoinLimited(small, small2, lim); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("pre-charged budget: err = %v, want ErrMemBudget", err)
	}
}

// TestProjectMemBudget checks the projection kernel honors the byte
// budget too.
func TestProjectMemBudget(t *testing.T) {
	r := New([]Attr{0, 1})
	for i := 0; i < 100_000; i++ {
		r.Add(Tuple{Value(i), Value(i)})
	}
	if _, err := ProjectLimited(r, []Attr{0}, &Limit{MaxBytes: 16 << 10}); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("err = %v, want ErrMemBudget", err)
	}
}

// TestWorkerPanicIsolation injects worker panics into both
// partition-parallel join strategies and checks they surface as a typed
// PanicError instead of crashing, without leaking goroutines.
func TestWorkerPanicIsolation(t *testing.T) {
	defer faultinject.Disable()
	base := runtime.NumGoroutine()

	if err := faultinject.Enable("join.panic=1", 7); err != nil {
		t.Fatal(err)
	}

	// Radix path: build side larger than chunkBuildMax.
	a, b := bigJoinInputs(4000, 40)
	_, err := ParallelJoinLimited(a, b, nil, 4)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("radix join: err = %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}

	// Chunked path: small build side, large probe side.
	small := New([]Attr{0, 1})
	for i := 0; i < 500; i++ {
		small.Add(Tuple{Value(i), Value(i % 5)})
	}
	probe := New([]Attr{1, 2})
	for i := 0; i < 4000; i++ {
		probe.Add(Tuple{Value(i % 5), Value(i)})
	}
	if _, err := ParallelJoinLimited(probe, small, nil, 4); !errors.As(err, &pe) {
		t.Fatalf("chunked join: err = %v, want *PanicError", err)
	}

	faultinject.Disable()
	if n := settleGoroutines(base); n > base {
		t.Fatalf("goroutines leaked after panics: %d before, %d after", base, n)
	}

	// With injection off the same joins succeed.
	if _, err := ParallelJoinLimited(a, b, nil, 4); err != nil {
		t.Fatalf("join after Disable: %v", err)
	}
}

// TestCancelBeforeStart checks the entry-point interruption path of every
// limited kernel.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lim := &Limit{Ctx: ctx}
	a, b := bigJoinInputs(100, 5)
	if _, err := JoinLimited(a, b, lim); !errors.Is(err, ErrCanceled) {
		t.Fatalf("JoinLimited: err = %v, want ErrCanceled", err)
	}
	if _, err := ParallelJoinLimited(a, b, lim, 4); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ParallelJoinLimited: err = %v, want ErrCanceled", err)
	}
	if _, err := ProjectLimited(a, []Attr{0}, lim); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ProjectLimited: err = %v, want ErrCanceled", err)
	}
}
