package relation

// keyer extracts a uint64 hash-join key from the shared attributes of a
// tuple. When there are at most eight shared attributes and every value in
// those columns fits in a byte, the key is an exact packing — no collisions
// between distinct value vectors, so the join can skip the verify step.
// Otherwise the key is an FNV-1a hash and matches must be verified.
//
// Exactness is decided at construction from the relation's per-column
// min/max metadata (maintained on insert), so the decision costs
// O(|shared|) instead of a scan over all rows, and a single keyer never
// mixes packed and hashed keys (mixing would let a packed key collide
// with a hash and corrupt an unverified join).
//
// The packing fast path matters: the paper's domains have three (3-COLOR)
// or two (SAT) values, so in the experiments every join key packs. The
// ablation bench BenchmarkAblationHashKey quantifies the effect.
type keyer struct {
	pos   []int // column indexes of the shared attributes
	exact bool
}

func newKeyer(r *Relation, shared []Attr) keyer {
	pos := make([]int, len(shared))
	for i, a := range shared {
		pos[i] = r.pos[a]
	}
	exact := len(shared) <= 8
	if exact && r.n > 0 {
		for _, p := range pos {
			if r.colMin[p] < 0 || r.colMax[p] > 255 {
				exact = false
				break
			}
		}
	}
	return keyer{pos: pos, exact: exact}
}

// alignKeyers forces two keyers over the same shared attributes onto one
// key function. Exactness is a per-relation property (byte-range column
// min/max), so one side of a join can pack while the other hashes — but a
// packed key and an FNV key for the same value vector differ, and probing
// a packed-key table with hashed keys silently misses every match (verify
// guards false positives, not false negatives). When the sides disagree,
// both fall back to hashing.
func alignKeyers(a, b *keyer) {
	if a.exact != b.exact {
		a.exact, b.exact = false, false
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (k keyer) key(t Tuple) uint64 {
	if k.exact {
		var key uint64
		for _, p := range k.pos {
			key = key<<8 | uint64(byte(t[p]))
		}
		return key
	}
	var h uint64 = fnvOffset
	for _, p := range k.pos {
		v := uint32(t[p])
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= fnvPrime
		}
	}
	return h
}
