package relation

import (
	"errors"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"projpush/internal/faultinject"
)

// spillDirEntries lists the spill directory's contents, failing the test
// on any filesystem error.
func spillDirEntries(t *testing.T, sp *Spiller) []string {
	t.Helper()
	ents, err := os.ReadDir(sp.Dir())
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", sp.Dir(), err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// randomRelation builds a relation in the requested dedup regime:
// packed (arity ≤ 8, values ≤ 255, exact uint64 keys) or hashed
// (values beyond the packable byte range force FNV keys).
func spillTestRelation(t *testing.T, rng *rand.Rand, arity, n int, packed bool) *Relation {
	t.Helper()
	attrs := make([]Attr, arity)
	for i := range attrs {
		attrs[i] = Attr(i + 1)
	}
	r := New(attrs)
	lim := 256
	if !packed {
		lim = 100_000
	}
	row := make(Tuple, arity)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = Value(rng.Intn(lim))
		}
		r.Add(row)
	}
	if packed != r.exact {
		t.Fatalf("generator produced exact=%v, want %v (arity %d, lim %d)", r.exact, packed, arity, lim)
	}
	return r
}

// TestSpillRoundTripBothRegimes is the tentpole's core property: a
// spill round trip is bit-identical in both dedup key regimes — same
// arena bytes, same schema, same per-column ranges, same exact flag —
// and the reloaded relation dedups correctly (Contains agrees, adding a
// spilled tuple again is a no-op).
func TestSpillRoundTripBothRegimes(t *testing.T) {
	sp, err := NewSpiller(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Cleanup()
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		name   string
		arity  int
		packed bool
	}{
		{"packed-uint64", 3, true},
		{"hashed-values", 3, false},
		{"hashed-arity9", 9, true}, // arity > 8 can never pack: New starts hashed
		{"packed-arity0", 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			packed := tc.packed && tc.arity <= 8
			var orig *Relation
			if tc.arity > 8 {
				orig = spillTestRelation(t, rng, tc.arity, 50, false)
			} else if tc.arity == 0 {
				orig = New(nil)
				orig.Add(Tuple{})
			} else {
				orig = spillTestRelation(t, rng, tc.arity, 200, packed)
			}
			f, err := sp.WriteRelation(orig)
			if err != nil {
				t.Fatalf("WriteRelation: %v", err)
			}
			got, err := f.Load()
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			defer f.Close()
			if got.exact != orig.exact {
				t.Fatalf("round trip flipped dedup regime: exact %v -> %v", orig.exact, got.exact)
			}
			if got.n != orig.n || got.arity != orig.arity {
				t.Fatalf("shape changed: (%d,%d) -> (%d,%d)", orig.n, orig.arity, got.n, got.arity)
			}
			for i, v := range orig.data[:orig.n*orig.arity] {
				if got.data[i] != v {
					t.Fatalf("arena differs at %d: %d != %d", i, got.data[i], v)
				}
			}
			for i := range orig.attrs {
				if got.attrs[i] != orig.attrs[i] {
					t.Fatalf("attrs differ at %d", i)
				}
			}
			for i := range orig.colMin {
				if got.colMin[i] != orig.colMin[i] || got.colMax[i] != orig.colMax[i] {
					t.Fatalf("column ranges differ at %d", i)
				}
			}
			if !got.Equal(orig) {
				t.Fatal("Equal reports the reloaded relation differs")
			}
			// The rebuilt dedup table must behave like the original's:
			// every original tuple is contained and re-adding is a no-op.
			for _, tup := range orig.Tuples() {
				if !got.Contains(tup) {
					t.Fatalf("reloaded relation missing %v", tup)
				}
				if got.Add(tup) {
					t.Fatalf("reloaded relation re-admitted duplicate %v", tup)
				}
			}
		})
	}
}

// TestSpillRegimePreservedAfterMigration pins the subtle case the header
// flag exists for: a relation that migrated to hashed keys (duplicate
// detection saw an out-of-range value) but whose resident rows all fit
// the packable byte range again. Re-deriving the regime from ranges
// would flip it back to packed; the stored flag must win.
func TestSpillRegimePreservedAfterMigration(t *testing.T) {
	sp, err := NewSpiller(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Cleanup()
	r := New([]Attr{1, 2})
	r.Add(Tuple{1, 2})
	r.Add(Tuple{3, 70000}) // out of byte range: migrates to hashed keys
	if r.exact {
		t.Fatal("setup: expected hashed regime after out-of-range insert")
	}
	f, err := sp.WriteRelation(r)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.exact {
		t.Fatal("Load re-derived the packed regime instead of honoring the stored flag")
	}
	if !got.Equal(r) {
		t.Fatal("reloaded relation differs")
	}
}

// TestRowFileRoundTrip streams rows out and back in order, twice (chunk
// replay opens multiple readers over one file), including the arity-0
// multiplicity case.
func TestRowFileRoundTrip(t *testing.T) {
	sp, err := NewSpiller(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Cleanup()

	rf, err := sp.NewRowFile(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Tuple{{1, 2}, {3, 4}, {5, 6}, {1, 2}}
	for _, tup := range want {
		if err := rf.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := rf.Finish(); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		rd, err := rf.Reader()
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for i, w := range want {
			got, err := rd.Next()
			if err != nil {
				t.Fatalf("pass %d row %d: %v", pass, i, err)
			}
			if got == nil || got[0] != w[0] || got[1] != w[1] {
				t.Fatalf("pass %d row %d: got %v, want %v", pass, i, got, w)
			}
		}
		if got, err := rd.Next(); err != nil || got != nil {
			t.Fatalf("pass %d: want clean EOF, got (%v, %v)", pass, got, err)
		}
		rd.Close()
	}
	rf.Close()

	// Zero-arity rows replay with the right multiplicity.
	zf, err := sp.NewRowFile(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := zf.Append(Tuple{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := zf.Finish(); err != nil {
		t.Fatal(err)
	}
	rd, err := zf.Reader()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		n++
	}
	rd.Close()
	zf.Close()
	if n != 3 {
		t.Fatalf("arity-0 replay yielded %d rows, want 3", n)
	}
}

// TestSpillQuota exhausts the disk budget and checks that the failure is
// typed ErrSpillFull, the partial file is removed, and closing spilled
// files refunds quota so later spills succeed.
func TestSpillQuota(t *testing.T) {
	sp, err := NewSpiller(t.TempDir(), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Cleanup()
	rng := rand.New(rand.NewSource(7))
	small := spillTestRelation(t, rng, 2, 10, true)
	big := spillTestRelation(t, rng, 4, 500, true)

	f1, err := sp.WriteRelation(small)
	if err != nil {
		t.Fatalf("small spill under quota: %v", err)
	}
	if _, err := sp.WriteRelation(big); !errors.Is(err, ErrSpillFull) {
		t.Fatalf("over-quota spill: got %v, want ErrSpillFull", err)
	}
	if got := spillDirEntries(t, sp); len(got) != 1 {
		t.Fatalf("failed spill left orphans: %v", got)
	}
	// Cumulative stats survive the failed attempt's refund.
	wrote, files := sp.Stats()
	if wrote <= 0 || files < 1 {
		t.Fatalf("Stats() = (%d, %d), want positive traffic", wrote, files)
	}
	f1.Close()
	if got := spillDirEntries(t, sp); len(got) != 0 {
		t.Fatalf("Close left files behind: %v", got)
	}
	// Freed quota is reusable.
	f2, err := sp.WriteRelation(small)
	if err != nil {
		t.Fatalf("spill after refund: %v", err)
	}
	f2.Close()
}

// TestSpillFaultInjection drives every spill.* fault point and checks
// the typed error surfaces with no orphaned temp files and no leaked
// goroutines — the graceful-degradation contract under disk faults.
func TestSpillFaultInjection(t *testing.T) {
	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(11))
	rel := spillTestRelation(t, rng, 3, 100, true)

	cases := []struct {
		name string
		spec string
		want error
	}{
		{"write-fail", "spill.write.fail=1", ErrSpillIO},
		{"disk-full", "spill.full=1", ErrSpillFull},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := NewSpiller(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer sp.Cleanup()
			if err := faultinject.Enable(tc.spec, 1); err != nil {
				t.Fatal(err)
			}
			defer faultinject.Disable()
			if _, err := sp.WriteRelation(rel); !errors.Is(err, tc.want) {
				t.Fatalf("WriteRelation under %s: got %v, want %v", tc.spec, err, tc.want)
			}
			if got := spillDirEntries(t, sp); len(got) != 0 {
				t.Fatalf("failed write left orphans: %v", got)
			}
			// RowFile path fails the same way and Close cleans up.
			rf, err := sp.NewRowFile(3)
			if err != nil {
				t.Fatal(err)
			}
			if err := rf.Append(Tuple{1, 2, 3}); !errors.Is(err, tc.want) {
				t.Fatalf("Append under %s: got %v, want %v", tc.spec, err, tc.want)
			}
			rf.Close()
			if got := spillDirEntries(t, sp); len(got) != 0 {
				t.Fatalf("closed row stream left orphans: %v", got)
			}
		})
	}

	t.Run("read-fail", func(t *testing.T) {
		sp, err := NewSpiller(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Cleanup()
		f, err := sp.WriteRelation(rel)
		if err != nil {
			t.Fatal(err)
		}
		if err := faultinject.Enable("spill.read.fail=1", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Load(); !errors.Is(err, ErrSpillIO) {
			faultinject.Disable()
			t.Fatalf("Load under spill.read.fail: got %v, want ErrSpillIO", err)
		}
		faultinject.Disable()
		// The file survives a failed read; a clean retry succeeds.
		if _, err := f.Load(); err != nil {
			t.Fatalf("Load after fault cleared: %v", err)
		}
		f.Close()
	})

	t.Run("slow", func(t *testing.T) {
		sp, err := NewSpiller(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Cleanup()
		if err := faultinject.Enable("spill.slow=5ms:1", 1); err != nil {
			t.Fatal(err)
		}
		defer faultinject.Disable()
		start := time.Now()
		f, err := sp.WriteRelation(rel)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if d := time.Since(start); d < 5*time.Millisecond {
			t.Fatalf("spill.slow injected no latency (%v)", d)
		}
	})

	// No goroutines survive the drills (spilling is synchronous).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestSpillRealDiskFull exercises the genuine ENOSPC path: with
// SPILL_ENOSPC_DIR pointing at a small quota'd filesystem (CI mounts a
// 16MiB tmpfs), an unquota'd spiller writing rows without bound must
// eventually surface the kernel's out-of-space error as ErrSpillFull —
// the same typed failure the byte-quota path reports — and abort
// cleanly. Skipped when the environment variable is unset.
func TestSpillRealDiskFull(t *testing.T) {
	dir := os.Getenv("SPILL_ENOSPC_DIR")
	if dir == "" {
		t.Skip("SPILL_ENOSPC_DIR not set; needs a quota'd filesystem to exhaust")
	}
	sp, err := NewSpiller(dir, 0) // no byte quota: only the disk can say no
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Cleanup()
	rf, err := sp.NewRowFile(8)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	row := Tuple{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 1<<22; i++ { // 128MiB of rows, far past any small quota
		if err = rf.Append(row); err != nil {
			break
		}
	}
	if err == nil {
		err = rf.Finish()
	}
	if !errors.Is(err, ErrSpillFull) {
		t.Fatalf("filling a quota'd disk: got %v, want ErrSpillFull", err)
	}
}

// TestSpillCleanupRemovesDirectory checks the wholesale cleanup path.
func TestSpillCleanupRemovesDirectory(t *testing.T) {
	sp, err := NewSpiller(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := sp.WriteRelation(spillTestRelation(t, rng, 2, 20, true)); err != nil {
		t.Fatal(err)
	}
	sp.Cleanup()
	if _, err := os.Stat(sp.Dir()); !os.IsNotExist(err) {
		t.Fatalf("Cleanup left the spill directory: %v", err)
	}
}
