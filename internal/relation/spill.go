package relation

// Spill-to-disk support for the resource governor. A Spiller owns one
// temp directory and a disk-byte budget; executors hand it whole flat
// tuple arenas (WriteRelation) or row streams (NewRowFile) when live
// bytes exceed Limit.MaxBytes, and stream them back when the consumer
// is ready. Files carry the arena in its packed on-heap layout —
// little-endian int32 values, row i at offset i*arity — so a round trip
// is bit-identical in both key regimes: the header records the exact
// (packed-uint64) vs hashed (column-compare) dedup mode explicitly, and
// Load rebuilds the dedup table under the stored mode rather than
// re-deriving it from value ranges (a relation that migrated to hashed
// keys on a duplicate out-of-range insert may have byte-range ranges
// again; re-deriving would silently flip its regime).
//
// Every disk failure mode is deterministic in tests via faultinject:
// spill.write.fail and spill.read.fail fire in the serialization paths,
// spill.full models ENOSPC (real ENOSPC maps to the same sentinel), and
// spill.slow injects latency at file creation and read-back open.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"projpush/internal/faultinject"
)

// ErrSpillIO reports an unrecoverable spill I/O failure: a write or
// read-back of spilled state failed, so the run cannot produce its
// answer from what remains in memory. The engine classifies it as
// ErrSpill (aliasing ErrInternal) for breaker purposes.
var ErrSpillIO = errors.New("relation: spill I/O failure")

// ErrSpillFull reports disk exhaustion: either the Spiller's configured
// byte budget would be exceeded or the filesystem returned ENOSPC.
var ErrSpillFull = errors.New("relation: spill disk budget exhausted")

// spillMagic identifies a relation spill file ("PJSP").
const spillMagic = 0x504a5350

// Spiller is a governor-owned spill manager: it creates temp files
// under its own subdirectory, enforces a disk-byte budget across all of
// them, and tracks cumulative spill traffic for Stats reporting. It is
// safe for concurrent use; Cleanup removes the directory wholesale so
// no failure path can orphan files past the end of a run.
type Spiller struct {
	dir string
	max int64 // disk budget in bytes; 0 = unlimited

	mu      sync.Mutex
	used    int64 // live bytes on disk
	written int64 // cumulative bytes ever written
	files   int   // cumulative files ever created
	seq     int
}

// NewSpiller creates a spill manager rooted at a fresh subdirectory of
// dir (os.TempDir() when dir is empty), with a disk budget of maxBytes
// (0 = unlimited).
func NewSpiller(dir string, maxBytes int64) (*Spiller, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, wrapSpillErr(err)
		}
	}
	d, err := os.MkdirTemp(dir, "projpush-spill-")
	if err != nil {
		return nil, wrapSpillErr(err)
	}
	return &Spiller{dir: d, max: maxBytes}, nil
}

// Dir returns the spill directory.
func (s *Spiller) Dir() string { return s.dir }

// Stats returns the cumulative bytes written and files created over the
// Spiller's lifetime (deleting a file does not decrement either; these
// feed Stats.SpilledBytes/SpillFiles).
func (s *Spiller) Stats() (bytes int64, files int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written, s.files
}

// Cleanup removes the spill directory and everything in it.
func (s *Spiller) Cleanup() {
	os.RemoveAll(s.dir)
}

// charge reserves delta disk bytes against the budget.
func (s *Spiller) charge(delta int64) error {
	if faultinject.FailAlloc(faultinject.SpillFull) {
		return fmt.Errorf("%w: injected ENOSPC", ErrSpillFull)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.max > 0 && s.used+delta > s.max {
		return fmt.Errorf("%w: %d bytes on disk + %d requested over budget %d",
			ErrSpillFull, s.used, delta, s.max)
	}
	s.used += delta
	s.written += delta
	return nil
}

// credit releases delta disk bytes back to the budget.
func (s *Spiller) credit(delta int64) {
	s.mu.Lock()
	s.used -= delta
	s.mu.Unlock()
}

// create opens a fresh spill file.
func (s *Spiller) create() (*os.File, error) {
	faultinject.Sleep(faultinject.SpillSlow)
	s.mu.Lock()
	s.seq++
	n := s.seq
	s.files++
	s.mu.Unlock()
	f, err := os.Create(filepath.Join(s.dir, fmt.Sprintf("spill-%06d.bin", n)))
	if err != nil {
		return nil, wrapSpillErr(err)
	}
	return f, nil
}

// wrapSpillErr maps an OS error into the spill sentinels: ENOSPC is
// budget exhaustion, everything else is unrecoverable I/O.
func wrapSpillErr(err error) error {
	if errors.Is(err, syscall.ENOSPC) {
		return fmt.Errorf("%w: %v", ErrSpillFull, err)
	}
	return fmt.Errorf("%w: %v", ErrSpillIO, err)
}

// spillWriter wraps a spill file with buffering, quota accounting, and
// fault injection. All writes go through write().
type spillWriter struct {
	sp      *Spiller
	f       *os.File
	w       *bufio.Writer
	charged int64
	scratch [8]byte
}

func (sw *spillWriter) write(p []byte) error {
	if faultinject.FailAlloc(faultinject.SpillWrite) {
		return fmt.Errorf("%w: injected write failure", ErrSpillIO)
	}
	if err := sw.sp.charge(int64(len(p))); err != nil {
		return err
	}
	sw.charged += int64(len(p))
	if _, err := sw.w.Write(p); err != nil {
		return wrapSpillErr(err)
	}
	return nil
}

func (sw *spillWriter) writeUint64(v uint64) error {
	binary.LittleEndian.PutUint64(sw.scratch[:], v)
	return sw.write(sw.scratch[:8])
}

// writeValues serializes a []Value run in bounded blocks so spilling a
// large arena never doubles its footprint transiently.
func (sw *spillWriter) writeValues(vals []Value) error {
	buf := make([]byte, 1<<15)
	for len(vals) > 0 {
		k := len(buf) / 4
		if k > len(vals) {
			k = len(vals)
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(vals[i]))
		}
		if err := sw.write(buf[:k*4]); err != nil {
			return err
		}
		vals = vals[k:]
	}
	return nil
}

// finish flushes and closes the file, returning the first error.
func (sw *spillWriter) finish() error {
	if err := sw.w.Flush(); err != nil {
		sw.f.Close()
		return wrapSpillErr(err)
	}
	if err := sw.f.Close(); err != nil {
		return wrapSpillErr(err)
	}
	return nil
}

// abort closes and removes the partial file and refunds its quota.
func (sw *spillWriter) abort() {
	sw.f.Close()
	os.Remove(sw.f.Name())
	sw.sp.credit(sw.charged)
}

// SpillFile is one spilled relation on disk.
type SpillFile struct {
	sp    *Spiller
	path  string
	bytes int64
	attrs []Attr
}

// Bytes returns the file's size on disk.
func (f *SpillFile) Bytes() int64 { return f.bytes }

// WriteRelation serializes r's flat arena (header, schema, per-column
// ranges, then the raw rows) to a fresh spill file. On any failure the
// partial file is removed and the disk budget refunded.
func (s *Spiller) WriteRelation(r *Relation) (*SpillFile, error) {
	f, err := s.create()
	if err != nil {
		return nil, err
	}
	sw := &spillWriter{sp: s, f: f, w: bufio.NewWriter(f)}
	if err := s.writeRelationTo(sw, r); err != nil {
		sw.abort()
		return nil, err
	}
	if err := sw.finish(); err != nil {
		os.Remove(f.Name())
		s.credit(sw.charged)
		return nil, err
	}
	return &SpillFile{
		sp:    s,
		path:  f.Name(),
		bytes: sw.charged,
		attrs: append([]Attr(nil), r.attrs...),
	}, nil
}

func (s *Spiller) writeRelationTo(sw *spillWriter, r *Relation) error {
	exact := uint64(0)
	if r.exact {
		exact = 1
	}
	hdr := []uint64{spillMagic, uint64(r.arity), uint64(r.n), exact}
	for _, v := range hdr {
		if err := sw.writeUint64(v); err != nil {
			return err
		}
	}
	for _, a := range r.attrs {
		if err := sw.writeUint64(uint64(int64(a))); err != nil {
			return err
		}
	}
	if err := sw.writeValues(r.colMin); err != nil {
		return err
	}
	if err := sw.writeValues(r.colMax); err != nil {
		return err
	}
	return sw.writeValues(r.data[:r.n*r.arity])
}

// Load streams the file back into a fresh private relation: the arena
// is restored byte-identically, the dedup key regime comes from the
// stored exact flag, and the dedup table is rebuilt under that regime.
// The file stays on disk until Close.
func (f *SpillFile) Load() (*Relation, error) {
	faultinject.Sleep(faultinject.SpillSlow)
	if faultinject.FailAlloc(faultinject.SpillRead) {
		return nil, fmt.Errorf("%w: injected read failure", ErrSpillIO)
	}
	fh, err := os.Open(f.path)
	if err != nil {
		return nil, wrapSpillErr(err)
	}
	defer fh.Close()
	br := bufio.NewReader(fh)
	var scratch [8]byte
	readUint64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, wrapSpillErr(err)
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	readValues := func(dst []Value) error {
		buf := make([]byte, 1<<15)
		for len(dst) > 0 {
			k := len(buf) / 4
			if k > len(dst) {
				k = len(dst)
			}
			if _, err := io.ReadFull(br, buf[:k*4]); err != nil {
				return wrapSpillErr(err)
			}
			for i := 0; i < k; i++ {
				dst[i] = Value(binary.LittleEndian.Uint32(buf[i*4:]))
			}
			dst = dst[k:]
		}
		return nil
	}
	magic, err := readUint64()
	if err != nil {
		return nil, err
	}
	if magic != spillMagic {
		return nil, fmt.Errorf("%w: bad spill file magic %#x", ErrSpillIO, magic)
	}
	arity64, err := readUint64()
	if err != nil {
		return nil, err
	}
	n64, err := readUint64()
	if err != nil {
		return nil, err
	}
	exact64, err := readUint64()
	if err != nil {
		return nil, err
	}
	arity, n := int(arity64), int(n64)
	if arity != len(f.attrs) {
		return nil, fmt.Errorf("%w: spill file arity %d != schema arity %d",
			ErrSpillIO, arity, len(f.attrs))
	}
	attrs := make([]Attr, arity)
	for i := range attrs {
		a, err := readUint64()
		if err != nil {
			return nil, err
		}
		attrs[i] = Attr(int64(a))
	}
	r := New(attrs)
	if err := readValues(r.colMin); err != nil {
		return nil, err
	}
	if err := readValues(r.colMax); err != nil {
		return nil, err
	}
	r.data = make([]Value, n*arity)
	if err := readValues(r.data); err != nil {
		return nil, err
	}
	r.n = n
	r.exact = exact64 != 0
	r.stale = false
	r.rebuildDedup()
	return r, nil
}

// Close removes the file and refunds its disk quota. Safe to call more
// than once.
func (f *SpillFile) Close() {
	if f == nil || f.sp == nil {
		return
	}
	os.Remove(f.path)
	f.sp.credit(f.bytes)
	f.sp = nil
}

// RowFile is an append-only spill stream of fixed-arity rows, used for
// hash-build chunks and probe-side spooling: rows go out in arrival
// order and come back in the same order through one or more sequential
// Readers.
type RowFile struct {
	sp       *Spiller
	path     string
	arity    int
	rows     int64
	sw       *spillWriter
	finished bool
	closed   bool
}

// NewRowFile opens a fresh row stream with the given tuple arity.
func (s *Spiller) NewRowFile(arity int) (*RowFile, error) {
	f, err := s.create()
	if err != nil {
		return nil, err
	}
	return &RowFile{
		sp:    s,
		path:  f.Name(),
		arity: arity,
		sw:    &spillWriter{sp: s, f: f, w: bufio.NewWriter(f)},
	}, nil
}

// Arity returns the row arity.
func (rf *RowFile) Arity() int { return rf.arity }

// Rows returns the number of rows appended so far.
func (rf *RowFile) Rows() int64 { return rf.rows }

// Bytes returns the bytes written so far.
func (rf *RowFile) Bytes() int64 { return rf.sw.charged }

// Append writes one row. On failure the stream is unusable; Close
// removes the partial file.
func (rf *RowFile) Append(t Tuple) error {
	if len(t) != rf.arity {
		return fmt.Errorf("%w: row arity %d != stream arity %d", ErrSpillIO, len(t), rf.arity)
	}
	if rf.arity == 0 {
		// Zero-arity rows (existence-only tuples) still need a presence
		// marker so replay yields the right multiplicity.
		if err := rf.sw.write([]byte{1}); err != nil {
			return err
		}
		rf.rows++
		return nil
	}
	if err := rf.sw.writeValues(t); err != nil {
		return err
	}
	rf.rows++
	return nil
}

// Finish flushes and closes the write side. Required before Reader.
func (rf *RowFile) Finish() error {
	if rf.finished {
		return nil
	}
	rf.finished = true
	return rf.sw.finish()
}

// Reader opens a sequential reader over the finished stream. Multiple
// Readers (one per replayed chunk pass) may be opened over one file.
func (rf *RowFile) Reader() (*RowReader, error) {
	faultinject.Sleep(faultinject.SpillSlow)
	if faultinject.FailAlloc(faultinject.SpillRead) {
		return nil, fmt.Errorf("%w: injected read failure", ErrSpillIO)
	}
	if !rf.finished {
		return nil, fmt.Errorf("%w: reading an unfinished row stream", ErrSpillIO)
	}
	f, err := os.Open(rf.path)
	if err != nil {
		return nil, wrapSpillErr(err)
	}
	return &RowReader{
		f:     f,
		br:    bufio.NewReader(f),
		arity: rf.arity,
		row:   make(Tuple, rf.arity),
		buf:   make([]byte, rf.arity*4),
	}, nil
}

// Close removes the file and refunds its quota. Safe to call more than
// once; it force-closes an unfinished write side first.
func (rf *RowFile) Close() {
	if rf == nil || rf.closed {
		return
	}
	rf.closed = true
	if !rf.finished {
		rf.finished = true
		rf.sw.w.Flush()
		rf.sw.f.Close()
	}
	os.Remove(rf.path)
	rf.sp.credit(rf.sw.charged)
}

// RowReader streams rows back from a RowFile in append order.
type RowReader struct {
	f     *os.File
	br    *bufio.Reader
	arity int
	row   Tuple
	buf   []byte
}

// Next returns the next row, or (nil, nil) at end of stream. The
// returned tuple is only valid until the following Next call.
func (rd *RowReader) Next() (Tuple, error) {
	if rd.arity == 0 {
		if _, err := rd.br.ReadByte(); err != nil {
			if err == io.EOF {
				return nil, nil
			}
			return nil, wrapSpillErr(err)
		}
		return rd.row, nil
	}
	if _, err := io.ReadFull(rd.br, rd.buf); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, wrapSpillErr(err)
	}
	for i := range rd.row {
		rd.row[i] = Value(binary.LittleEndian.Uint32(rd.buf[i*4:]))
	}
	return rd.row, nil
}

// Close releases the reader's file handle.
func (rd *RowReader) Close() {
	if rd.f != nil {
		rd.f.Close()
		rd.f = nil
	}
}
