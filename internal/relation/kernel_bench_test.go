package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel microbenchmarks for the execution hot path, with map-based
// baselines replicating the pre-open-addressing kernels (build tables as
// map[uint64][]Tuple, dedup as map[uint64]struct{}, rows as individually
// allocated Tuples). `make bench-json` records the BenchmarkKernel*
// series in BENCH_relation.json so future PRs have a perf trajectory.

// benchInputs builds the classic chain-join pair R(0,1) ⋈ S(1,2).
func benchInputs(rows, domain int) (*Relation, *Relation) {
	rng := rand.New(rand.NewSource(42))
	a := New([]Attr{0, 1})
	b := New([]Attr{1, 2})
	for i := 0; i < rows; i++ {
		a.Add(Tuple{Value(rng.Intn(domain)), Value(rng.Intn(domain))})
		b.Add(Tuple{Value(rng.Intn(domain)), Value(rng.Intn(domain))})
	}
	return a, b
}

// mapBaselineJoinProject is the old kernel shape: generic-map build
// table, per-row Tuple allocation, map-set dedup for both the join output
// and the projection. It operates on the same inputs and produces the
// same logical result as JoinLimited + ProjectLimited.
func mapBaselineJoinProject(r, o *Relation, projCols []Attr) int {
	shared := SharedAttrs(r, o)
	build, probe := r, o
	if probe.Len() < build.Len() {
		build, probe = o, r
	}
	outAttrs := append([]Attr(nil), r.attrs...)
	for _, a := range o.attrs {
		if !r.HasAttr(a) {
			outAttrs = append(outAttrs, a)
		}
	}
	bKey := newKeyer(build, shared)
	pKey := newKeyer(probe, shared)

	table := make(map[uint64][]Tuple, build.Len())
	for i := 0; i < build.n; i++ {
		t := build.row(i)
		k := bKey.key(t)
		table[k] = append(table[k], t)
	}

	probeSrc := make([]int, len(outAttrs))
	buildSrc := make([]int, len(outAttrs))
	for i, a := range outAttrs {
		if j := probe.Pos(a); j >= 0 {
			probeSrc[i], buildSrc[i] = j, -1
		} else {
			probeSrc[i], buildSrc[i] = -1, build.pos[a]
		}
	}

	joined := make(map[uint64]struct{})
	var rows []Tuple
	for pi := 0; pi < probe.n; pi++ {
		pt := probe.row(pi)
		for _, bt := range table[pKey.key(pt)] {
			row := make(Tuple, len(outAttrs))
			for i := range outAttrs {
				if probeSrc[i] >= 0 {
					row[i] = pt[probeSrc[i]]
				} else {
					row[i] = bt[buildSrc[i]]
				}
			}
			k, _ := packKey(row)
			if _, dup := joined[k]; dup {
				continue
			}
			joined[k] = struct{}{}
			rows = append(rows, row)
		}
	}

	idx := make([]int, len(projCols))
	for i, a := range projCols {
		for j, oa := range outAttrs {
			if oa == a {
				idx[i] = j
			}
		}
	}
	projected := make(map[uint64]struct{})
	n := 0
	for _, t := range rows {
		row := make(Tuple, len(projCols))
		for i, j := range idx {
			row[i] = t[j]
		}
		k, _ := packKey(row)
		if _, dup := projected[k]; dup {
			continue
		}
		projected[k] = struct{}{}
		n++
	}
	return n
}

// BenchmarkKernelJoinProject measures the join+project hot path — the
// operation pair that dominates every figure's running time — on the
// open-addressing kernels against the map-based baseline.
func BenchmarkKernelJoinProject(b *testing.B) {
	a, c := benchInputs(20000, 120)
	proj := []Attr{0, 2}
	b.Run("open", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := JoinLimited(a, c, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ProjectLimited(out, proj, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mapBaselineJoinProject(a, c, proj)
		}
	})
}

// BenchmarkKernelDedup measures raw dedup-insert throughput: the arena +
// open-addressing relation against the old packed map set with per-row
// Tuple clones.
func BenchmarkKernelDedup(b *testing.B) {
	const n = 50000
	rng := rand.New(rand.NewSource(7))
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Value(rng.Intn(40)), Value(rng.Intn(40)), Value(rng.Intn(40))}
	}
	b.Run("open", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := New([]Attr{0, 1, 2})
			for _, t := range tuples {
				r.Add(t)
			}
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := make(map[uint64]struct{})
			var rows []Tuple
			for _, t := range tuples {
				k, _ := packKey(t)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				rows = append(rows, t.Clone())
			}
		}
	})
}

// BenchmarkKernelParallelJoin measures the radix-partitioned join at
// increasing worker counts against the sequential kernel on the same
// inputs.
func BenchmarkKernelParallelJoin(b *testing.B) {
	a, c := benchInputs(60000, 250)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ParallelJoinLimited(a, c, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelScanRename measures the per-scan cost of binding a base
// relation's columns to query variables — zero-copy since Rename shares
// rows and dedup state with the source.
func BenchmarkKernelScanRename(b *testing.B) {
	r := New([]Attr{0, 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		r.Add(Tuple{Value(rng.Intn(200)), Value(rng.Intn(200))})
	}
	m := map[Attr]Attr{0: 7, 1: 9}
	b.Run("zero-copy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Rename(r, m)
		}
	})
	b.Run("rehash-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := New([]Attr{7, 9})
			for j := 0; j < r.n; j++ {
				out.Add(r.row(j))
			}
		}
	})
}
