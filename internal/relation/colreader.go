package relation

// ColumnReader is a zero-copy column-subset cursor over a relation's
// arena: Next yields the selected columns of each stored row into a
// reusable buffer, without materializing the projection. It is the fused
// scan+project primitive of the pipelined executor — a scan that emits
// only the columns its consumers need reads the arena through one of
// these instead of building a projected relation first.
type ColumnReader struct {
	r   *Relation
	idx []int // selected column indexes, in output order
	pos int
	buf Tuple
}

// NewColumnReader returns a cursor over the attrs columns of r, in the
// given order. It panics if an attribute is absent: the engine computes
// needed-column sets from the plan, so a miss is a lowering bug.
func NewColumnReader(r *Relation, attrs []Attr) *ColumnReader {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := r.pos[a]
		if !ok {
			panic("relation.ColumnReader: attribute not in schema")
		}
		idx[i] = p
	}
	return &ColumnReader{r: r, idx: idx, buf: make(Tuple, len(attrs))}
}

// Next returns the selected columns of the next row, or nil at end of
// stream. The returned tuple is the cursor's reusable buffer: it is only
// valid until the next call, and callers that retain it must copy.
func (c *ColumnReader) Next() Tuple {
	if c.pos >= c.r.n {
		return nil
	}
	row := c.r.row(c.pos)
	c.pos++
	for i, p := range c.idx {
		c.buf[i] = row[p]
	}
	return c.buf
}

// Len returns the number of rows the cursor will yield in total.
func (c *ColumnReader) Len() int { return c.r.n }
