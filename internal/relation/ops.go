package relation

import (
	"errors"
	"fmt"
	"time"
)

// Limit bounds the work an operation may perform. The zero value imposes no
// limits. Limits exist because unoptimized plans in this paper's setting
// legitimately produce intermediate results that are exponential in the
// query size; the experiment harness must be able to abort such runs and
// report a timeout, as the paper does for the straightforward method on
// augmented circular ladders.
type Limit struct {
	// MaxRows caps the number of rows in any produced relation. 0 means
	// unlimited.
	MaxRows int
	// Deadline aborts the operation when passed. The zero time means no
	// deadline. The deadline is checked every few thousand rows.
	Deadline time.Time
	// Work, if non-nil, is incremented by the number of tuples touched.
	Work *int64
}

// ErrRowLimit is returned when an operation would exceed Limit.MaxRows.
var ErrRowLimit = errors.New("relation: intermediate result exceeds row limit")

// ErrDeadline is returned when an operation runs past Limit.Deadline.
var ErrDeadline = errors.New("relation: deadline exceeded")

const deadlineCheckInterval = 4096

func (l *Limit) charge(n int64) {
	if l != nil && l.Work != nil {
		*l.Work += n
	}
}

func (l *Limit) expired() bool {
	return l != nil && !l.Deadline.IsZero() && time.Now().After(l.Deadline)
}

func (l *Limit) overRows(n int) bool {
	return l != nil && l.MaxRows > 0 && n > l.MaxRows
}

// SharedAttrs returns the attributes common to r and o, in r's column order.
func SharedAttrs(r, o *Relation) []Attr {
	var shared []Attr
	for _, a := range r.attrs {
		if o.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	return shared
}

// Join computes the natural join of r and o. It is equivalent to
// JoinLimited with no limits; it never fails.
func Join(r, o *Relation) *Relation {
	out, err := JoinLimited(r, o, nil)
	if err != nil {
		panic("relation.Join: unreachable error without limits: " + err.Error())
	}
	return out
}

// JoinLimited computes the natural join of r and o under lim. The output
// schema is r's attributes followed by o's attributes not in r. When the
// relations share no attributes the result is the cross product.
//
// The implementation is a classic hash join: build a table on the smaller
// input keyed by the shared attributes, probe with the larger one. This
// mirrors the paper's setup, which forced hash joins in PostgreSQL.
func JoinLimited(r, o *Relation, lim *Limit) (*Relation, error) {
	if lim.expired() {
		return nil, ErrDeadline
	}
	shared := SharedAttrs(r, o)

	// Build on the smaller side.
	build, probe := r, o
	if probe.Len() < build.Len() {
		build, probe = probe, r
	}

	// Output schema: r's columns, then o-only columns.
	outAttrs := append([]Attr(nil), r.attrs...)
	for _, a := range o.attrs {
		if !r.HasAttr(a) {
			outAttrs = append(outAttrs, a)
		}
	}
	out := New(outAttrs)

	bKey := newKeyer(build, shared)
	pKey := newKeyer(probe, shared)

	table := make(map[uint64][]Tuple, build.Len())
	for _, t := range build.rows {
		k := bKey.key(t)
		table[k] = append(table[k], t)
	}
	lim.charge(int64(build.Len()))

	// Precompute how to assemble the output tuple from (probe, build)
	// pairs. We assemble in terms of (r, o) so compute per-side sources.
	type src struct {
		fromR bool
		idx   int
	}
	assemble := make([]src, len(outAttrs))
	for i, a := range outAttrs {
		if j := r.Pos(a); j >= 0 {
			assemble[i] = src{fromR: true, idx: j}
		} else {
			assemble[i] = src{fromR: false, idx: o.pos[a]}
		}
	}
	buildIsR := build == r

	// When keys can collide across distinct shared-value vectors (the
	// generic hasher), verify equality on shared columns explicitly.
	bPos := make([]int, len(shared))
	pPos := make([]int, len(shared))
	for i, a := range shared {
		bPos[i] = build.pos[a]
		pPos[i] = probe.pos[a]
	}
	needVerify := !bKey.exact || !pKey.exact

	// Output tuples are carved out of chunked backing arrays: one
	// allocation per arenaChunk rows instead of one per row. Stored
	// tuples are never mutated, so sharing a backing array is safe.
	arity := len(outAttrs)
	var arena []Value
	count := 0
	for _, pt := range probe.rows {
		count++
		if count%deadlineCheckInterval == 0 && lim.expired() {
			return nil, ErrDeadline
		}
		matches := table[pKey.key(pt)]
		lim.charge(int64(len(matches)) + 1)
	match:
		for _, bt := range matches {
			if needVerify {
				for i := range shared {
					if bt[bPos[i]] != pt[pPos[i]] {
						continue match
					}
				}
			}
			rt, ot := pt, bt
			if buildIsR {
				rt, ot = bt, pt
			}
			if len(arena) < arity {
				arena = make([]Value, arenaChunk*arity)
			}
			row := Tuple(arena[:arity:arity])
			for i, s := range assemble {
				if s.fromR {
					row[i] = rt[s.idx]
				} else {
					row[i] = ot[s.idx]
				}
			}
			if out.addOwned(row) {
				arena = arena[arity:]
			}
			if lim.overRows(out.Len()) {
				return nil, ErrRowLimit
			}
		}
	}
	return out, nil
}

// arenaChunk is the number of output rows allocated per backing array in
// the join and projection kernels.
const arenaChunk = 256

// Project returns the projection of r onto attrs (which must all be in r's
// schema), with duplicates removed — SELECT DISTINCT semantics.
func Project(r *Relation, attrs []Attr) *Relation {
	out, err := ProjectLimited(r, attrs, nil)
	if err != nil {
		panic("relation.Project: unreachable error without limits: " + err.Error())
	}
	return out
}

// ProjectLimited is Project under lim.
func ProjectLimited(r *Relation, attrs []Attr, lim *Limit) (*Relation, error) {
	if lim.expired() {
		return nil, ErrDeadline
	}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.Pos(a)
		if j < 0 {
			return nil, fmt.Errorf("relation.Project: attribute %d not in schema", a)
		}
		idx[i] = j
	}
	out := New(attrs)
	lim.charge(int64(r.Len()))
	arity := len(attrs)
	var arena []Value
	for n, t := range r.rows {
		if n%deadlineCheckInterval == deadlineCheckInterval-1 && lim.expired() {
			return nil, ErrDeadline
		}
		if len(arena) < arity {
			arena = make([]Value, arenaChunk*arity)
		}
		row := Tuple(arena[:arity:arity])
		for i, j := range idx {
			row[i] = t[j]
		}
		if out.addOwned(row) {
			arena = arena[arity:]
		}
		if lim.overRows(out.Len()) {
			return nil, ErrRowLimit
		}
	}
	return out, nil
}

// Select returns the tuples of r whose attribute a equals v.
func Select(r *Relation, a Attr, v Value) *Relation {
	j := r.Pos(a)
	if j < 0 {
		panic(fmt.Sprintf("relation.Select: attribute %d not in schema", a))
	}
	out := New(r.attrs)
	for _, t := range r.rows {
		if t[j] == v {
			out.Add(t)
		}
	}
	return out
}

// SelectEq returns the tuples of r where attributes a and b are equal.
func SelectEq(r *Relation, a, b Attr) *Relation {
	i, j := r.Pos(a), r.Pos(b)
	if i < 0 || j < 0 {
		panic("relation.SelectEq: attribute not in schema")
	}
	out := New(r.attrs)
	for _, t := range r.rows {
		if t[i] == t[j] {
			out.Add(t)
		}
	}
	return out
}

// Semijoin returns the tuples of r that join with at least one tuple of o
// (r ⋉ o). With no shared attributes, the result is r itself when o is
// nonempty and empty otherwise.
func Semijoin(r, o *Relation) *Relation {
	shared := SharedAttrs(r, o)
	out := New(r.attrs)
	if len(shared) == 0 {
		if o.Empty() {
			return out
		}
		return r.Clone()
	}
	oKey := newKeyer(o, shared)
	rKey := newKeyer(r, shared)
	oPos := make([]int, len(shared))
	rPos := make([]int, len(shared))
	for i, a := range shared {
		oPos[i] = o.pos[a]
		rPos[i] = r.pos[a]
	}
	needVerify := !oKey.exact || !rKey.exact
	table := make(map[uint64][]Tuple, o.Len())
	for _, t := range o.rows {
		k := oKey.key(t)
		table[k] = append(table[k], t)
	}
	for _, t := range r.rows {
		matches := table[rKey.key(t)]
		if !needVerify {
			if len(matches) > 0 {
				out.Add(t)
			}
			continue
		}
	match:
		for _, ot := range matches {
			for i := range shared {
				if ot[oPos[i]] != t[rPos[i]] {
					continue match
				}
			}
			out.Add(t)
			break
		}
	}
	return out
}

// sameAttrSet reports whether r and o have identical attribute sets.
func sameAttrSet(r, o *Relation) bool {
	if len(r.attrs) != len(o.attrs) {
		return false
	}
	for _, a := range r.attrs {
		if !o.HasAttr(a) {
			return false
		}
	}
	return true
}

// reorderTo converts a tuple of o into r's column order.
func reorderTo(r, o *Relation, t Tuple, buf Tuple) Tuple {
	for i, a := range r.attrs {
		buf[i] = t[o.pos[a]]
	}
	return buf
}

// Union returns r ∪ o. The relations must have the same attribute set;
// column order may differ. The result uses r's column order.
func Union(r, o *Relation) *Relation {
	if !sameAttrSet(r, o) {
		panic("relation.Union: schema mismatch")
	}
	out := r.Clone()
	buf := make(Tuple, len(r.attrs))
	for _, t := range o.rows {
		out.Add(reorderTo(r, o, t, buf))
	}
	return out
}

// Intersect returns r ∩ o over identical attribute sets.
func Intersect(r, o *Relation) *Relation {
	if !sameAttrSet(r, o) {
		panic("relation.Intersect: schema mismatch")
	}
	out := New(r.attrs)
	buf := make(Tuple, len(r.attrs))
	for _, t := range o.rows {
		if r.Contains(reorderTo(r, o, t, buf)) {
			out.Add(buf)
		}
	}
	return out
}

// Difference returns r − o over identical attribute sets.
func Difference(r, o *Relation) *Relation {
	if !sameAttrSet(r, o) {
		panic("relation.Difference: schema mismatch")
	}
	neg := New(r.attrs)
	buf := make(Tuple, len(r.attrs))
	for _, t := range o.rows {
		neg.Add(reorderTo(r, o, t, buf))
	}
	out := New(r.attrs)
	for _, t := range r.rows {
		if !neg.Contains(t) {
			out.Add(t)
		}
	}
	return out
}

// Rename returns a copy of r with attributes substituted according to m.
// Attributes not in m are kept. It panics if the renaming collapses two
// attributes into one.
func Rename(r *Relation, m map[Attr]Attr) *Relation {
	attrs := make([]Attr, len(r.attrs))
	for i, a := range r.attrs {
		if b, ok := m[a]; ok {
			attrs[i] = b
		} else {
			attrs[i] = a
		}
	}
	out := New(attrs)
	for _, t := range r.rows {
		out.Add(t)
	}
	return out
}
