package relation

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"projpush/internal/faultinject"
)

// Limit bounds the work an operation may perform. The zero value imposes no
// limits. Limits exist because unoptimized plans in this paper's setting
// legitimately produce intermediate results that are exponential in the
// query size; the experiment harness must be able to abort such runs and
// report a timeout, as the paper does for the straightforward method on
// augmented circular ladders.
type Limit struct {
	// MaxRows caps the number of rows in any produced relation. 0 means
	// unlimited.
	MaxRows int
	// Deadline aborts the operation when passed. The zero time means no
	// deadline. The deadline is checked every few thousand rows.
	Deadline time.Time
	// Work, if non-nil, is incremented by the number of tuples touched.
	Work *int64
	// Ctx, when non-nil, cancels the operation: kernels poll Ctx.Err()
	// at the same cadence as the deadline check, so cancellation lands
	// within a few thousand rows. A canceled operation fails with an
	// error wrapping both ErrCanceled and the context's error.
	Ctx context.Context
	// MaxBytes caps the cumulative bytes of relation storage (tuple
	// arenas plus dedup and join tables) materialized under this limit.
	// 0 means unlimited. The byte budget is checked on every arena or
	// table growth, so joins on pathological plans abort on allocation
	// pressure before the row cap would fire.
	MaxBytes int64
	// Bytes, when non-nil, is the shared cumulative byte counter: one
	// execution threads a single counter through every operator (and
	// every partition-parallel worker), making MaxBytes a per-run
	// budget rather than a per-operator one.
	Bytes *atomic.Int64
	// OnPressure, when non-nil, is invoked when a charge would exceed
	// MaxBytes: the owner may spill resident state to disk, credit the
	// shared counter, and return true to have the charge re-evaluated.
	// Returning false (nothing left to spill) lets the charge fail with
	// ErrMemBudget; a non-nil error (spill I/O failure) aborts the
	// operation with that error instead.
	OnPressure func(need int64) (bool, error)
}

// ErrRowLimit is returned when an operation would exceed Limit.MaxRows.
var ErrRowLimit = errors.New("relation: intermediate result exceeds row limit")

// ErrDeadline is returned when an operation runs past Limit.Deadline.
var ErrDeadline = errors.New("relation: deadline exceeded")

// ErrCanceled is returned when Limit.Ctx is canceled mid-operation.
var ErrCanceled = errors.New("relation: operation canceled")

// ErrMemBudget is returned when an operation would exceed Limit.MaxBytes.
var ErrMemBudget = errors.New("relation: intermediate results exceed memory budget")

const deadlineCheckInterval = 4096

// CheckInterval is the tuples-touched cadence at which kernels poll for
// cancellation and deadline expiry. Engine-side loops that drive the
// arena directly (the worst-case-optimal join) reuse it so every
// executor responds to interrupts within the same bounded work.
const CheckInterval = deadlineCheckInterval

// Interrupted reports why an operation driving this limit must stop
// early — context cancellation or deadline expiry — or nil to continue.
// It is the exported face of the kernels' poll, for engine loops that
// iterate the arena without going through a kernel.
func (l *Limit) Interrupted() error { return l.interrupted() }

// Charge adds n touched tuples to the work counter.
func (l *Limit) Charge(n int64) { l.charge(n) }

// ChargeMemGrowth charges the growth of out's resident footprint since
// *last against the byte budget; callers keep one last-seen value per
// output relation, so most rows cost a subtraction and a compare.
func (l *Limit) ChargeMemGrowth(out *Relation, last *int64) error {
	return l.chargeMem(out, last)
}

// OverRows reports whether a result of n rows exceeds MaxRows.
func (l *Limit) OverRows(n int) bool { return l.overRows(n) }

func (l *Limit) charge(n int64) {
	if l != nil && l.Work != nil {
		*l.Work += n
	}
}

// interrupted reports why the operation must stop early: context
// cancellation or deadline expiry. It returns nil to continue.
func (l *Limit) interrupted() error {
	if l == nil {
		return nil
	}
	if l.Ctx != nil {
		if err := l.Ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	if !l.Deadline.IsZero() && time.Now().After(l.Deadline) {
		return ErrDeadline
	}
	return nil
}

func (l *Limit) overRows(n int) bool {
	return l != nil && l.MaxRows > 0 && n > l.MaxRows
}

// chargeBytes folds delta bytes into the budget counter and reports
// whether the budget is exhausted.
func (l *Limit) chargeBytes(delta int64) error {
	if l == nil || l.MaxBytes <= 0 || delta <= 0 {
		return nil
	}
	total := delta
	if l.Bytes != nil {
		total = l.Bytes.Add(delta)
	}
	for total > l.MaxBytes && l.OnPressure != nil {
		freed, err := l.OnPressure(total - l.MaxBytes)
		if err != nil {
			return err
		}
		if !freed || l.Bytes == nil {
			break
		}
		total = l.Bytes.Load()
	}
	if total > l.MaxBytes {
		return fmt.Errorf("%w: charge of %d bytes puts %d in use over budget %d",
			ErrMemBudget, delta, total, l.MaxBytes)
	}
	return nil
}

// chargeMem charges the growth of out's resident footprint since *last.
// Callers keep one last-seen value per output relation; growth is zero on
// most rows (arenas double), so the common case is three multiplications
// and a compare.
func (l *Limit) chargeMem(out *Relation, last *int64) error {
	if l == nil || l.MaxBytes <= 0 {
		return nil
	}
	b := out.Bytes()
	delta := b - *last
	if delta == 0 {
		return nil
	}
	*last = b
	return l.chargeBytes(delta)
}

// SharedAttrs returns the attributes common to r and o, in r's column order.
func SharedAttrs(r, o *Relation) []Attr {
	var shared []Attr
	for _, a := range r.attrs {
		if o.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	return shared
}

// joinSpec precomputes everything a hash join between r and o needs:
// build/probe role assignment, keyers, verification column positions, and
// the output assembly map. It is shared by the sequential kernel
// (JoinLimited) and the partition-parallel one (ParallelJoinLimited).
type joinSpec struct {
	shared       []Attr
	build, probe *Relation
	outAttrs     []Attr
	bKey, pKey   keyer
	needVerify   bool
	bPos, pPos   []int // shared-attr column positions for verification
	probeSrc     []int // output column -> probe column, or -1
	buildSrc     []int // output column -> build column (when probeSrc is -1)
}

// makeJoinSpec prepares the join of r and o. The output schema is r's
// attributes followed by o's attributes not in r; the smaller input
// becomes the build side, as in the original kernel.
func makeJoinSpec(r, o *Relation) joinSpec {
	s := joinSpec{shared: SharedAttrs(r, o)}

	// Build on the smaller side.
	s.build, s.probe = r, o
	if s.probe.n < s.build.n {
		s.build, s.probe = o, r
	}

	// Output schema: r's columns, then o-only columns.
	s.outAttrs = append([]Attr(nil), r.attrs...)
	for _, a := range o.attrs {
		if !r.HasAttr(a) {
			s.outAttrs = append(s.outAttrs, a)
		}
	}

	s.bKey = newKeyer(s.build, s.shared)
	s.pKey = newKeyer(s.probe, s.shared)
	alignKeyers(&s.bKey, &s.pKey)
	// When keys can collide across distinct shared-value vectors (the
	// generic hasher), verify equality on shared columns explicitly.
	s.needVerify = !s.bKey.exact || !s.pKey.exact
	s.bPos = make([]int, len(s.shared))
	s.pPos = make([]int, len(s.shared))
	for i, a := range s.shared {
		s.bPos[i] = s.build.pos[a]
		s.pPos[i] = s.probe.pos[a]
	}

	// Output assembly: shared attributes are read from the probe side
	// (the join condition makes the two sides agree on them).
	s.probeSrc = make([]int, len(s.outAttrs))
	s.buildSrc = make([]int, len(s.outAttrs))
	for i, a := range s.outAttrs {
		if j := s.probe.Pos(a); j >= 0 {
			s.probeSrc[i] = j
			s.buildSrc[i] = -1
		} else {
			s.probeSrc[i] = -1
			s.buildSrc[i] = s.build.pos[a]
		}
	}
	return s
}

// buildKeys computes the join key of every build-side row.
func (s *joinSpec) buildKeys() []uint64 {
	keys := make([]uint64, s.build.n)
	for i := range keys {
		keys[i] = s.bKey.key(s.build.row(i))
	}
	return keys
}

// emit assembles the (probe row, build row) output tuple into out and
// inserts it, reporting whether it was new.
func (s *joinSpec) emit(out *Relation, pt, bt Tuple) bool {
	row := out.stage()
	for i, ps := range s.probeSrc {
		if ps >= 0 {
			row[i] = pt[ps]
		} else {
			row[i] = bt[s.buildSrc[i]]
		}
	}
	return out.commitStaged(row)
}

// verifyMatch reports whether the shared columns of a probe and build row
// really agree (needed when keys are hashes).
func (s *joinSpec) verifyMatch(pt, bt Tuple) bool {
	for i := range s.pPos {
		if bt[s.bPos[i]] != pt[s.pPos[i]] {
			return false
		}
	}
	return true
}

// Join computes the natural join of r and o. It is equivalent to
// JoinLimited with no limits; it never fails.
func Join(r, o *Relation) *Relation {
	out, err := JoinLimited(r, o, nil)
	if err != nil {
		panic("relation.Join: unreachable error without limits: " + err.Error())
	}
	return out
}

// JoinLimited computes the natural join of r and o under lim. The output
// schema is r's attributes followed by o's attributes not in r. When the
// relations share no attributes the result is the cross product.
//
// The implementation is a classic hash join: build an open-addressing
// table on the smaller input keyed by the shared attributes, probe with
// the larger one. This mirrors the paper's setup, which forced hash joins
// in PostgreSQL.
func JoinLimited(r, o *Relation, lim *Limit) (*Relation, error) {
	if err := lim.interrupted(); err != nil {
		return nil, err
	}
	faultinject.Sleep(faultinject.LatencyKernel)
	if faultinject.FailAlloc(faultinject.AllocJoin) {
		return nil, fmt.Errorf("%w: injected allocation failure", ErrMemBudget)
	}
	spec := makeJoinSpec(r, o)
	out := New(spec.outAttrs)
	if spec.build.n == 0 {
		return out, nil
	}

	jt := newJoinTable(spec.buildKeys())
	lim.charge(int64(spec.build.n))
	if err := lim.chargeBytes(jt.bytes()); err != nil {
		return nil, err
	}

	// The interrupt check ticks on tuples touched, not probe rows: a
	// high-fanout join can emit millions of rows from a handful of probe
	// rows, and cancellation must land within a bounded amount of work.
	probe := spec.probe
	var touched, outBytes int64
	nextCheck := int64(deadlineCheckInterval)
	for pi := 0; pi < probe.n; pi++ {
		pt := probe.row(pi)
		touched++
		for e := jt.first(spec.pKey.key(pt)); e != 0; e = jt.next[e-1] {
			bt := spec.build.row(int(jt.rowOf[e-1]))
			touched++
			if touched >= nextCheck {
				nextCheck = touched + deadlineCheckInterval
				if err := lim.interrupted(); err != nil {
					lim.charge(touched)
					return nil, err
				}
			}
			if spec.needVerify && !spec.verifyMatch(pt, bt) {
				continue
			}
			spec.emit(out, pt, bt)
			if err := lim.chargeMem(out, &outBytes); err != nil {
				lim.charge(touched)
				return nil, err
			}
			if lim.overRows(out.n) {
				lim.charge(touched)
				return nil, ErrRowLimit
			}
		}
	}
	lim.charge(touched)
	return out, nil
}

// Project returns the projection of r onto attrs (which must all be in r's
// schema), with duplicates removed — SELECT DISTINCT semantics.
func Project(r *Relation, attrs []Attr) *Relation {
	out, err := ProjectLimited(r, attrs, nil)
	if err != nil {
		panic("relation.Project: unreachable error without limits: " + err.Error())
	}
	return out
}

// ProjectLimited is Project under lim.
func ProjectLimited(r *Relation, attrs []Attr, lim *Limit) (*Relation, error) {
	if err := lim.interrupted(); err != nil {
		return nil, err
	}
	faultinject.Sleep(faultinject.LatencyKernel)
	if faultinject.FailAlloc(faultinject.AllocProject) {
		return nil, fmt.Errorf("%w: injected allocation failure", ErrMemBudget)
	}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.Pos(a)
		if j < 0 {
			return nil, fmt.Errorf("relation.Project: attribute %d not in schema", a)
		}
		idx[i] = j
	}
	out := New(attrs)
	lim.charge(int64(r.n))
	var outBytes int64
	for n := 0; n < r.n; n++ {
		if n%deadlineCheckInterval == deadlineCheckInterval-1 {
			if err := lim.interrupted(); err != nil {
				return nil, err
			}
		}
		t := r.row(n)
		row := out.stage()
		for i, j := range idx {
			row[i] = t[j]
		}
		out.commitStaged(row)
		if err := lim.chargeMem(out, &outBytes); err != nil {
			return nil, err
		}
		if lim.overRows(out.n) {
			return nil, ErrRowLimit
		}
	}
	return out, nil
}

// Select returns the tuples of r whose attribute a equals v.
func Select(r *Relation, a Attr, v Value) *Relation {
	j := r.Pos(a)
	if j < 0 {
		panic(fmt.Sprintf("relation.Select: attribute %d not in schema", a))
	}
	out := New(r.attrs)
	for i := 0; i < r.n; i++ {
		t := r.row(i)
		if t[j] == v {
			out.Add(t)
		}
	}
	return out
}

// SelectEq returns the tuples of r where attributes a and b are equal.
func SelectEq(r *Relation, a, b Attr) *Relation {
	i, j := r.Pos(a), r.Pos(b)
	if i < 0 || j < 0 {
		panic("relation.SelectEq: attribute not in schema")
	}
	out := New(r.attrs)
	for n := 0; n < r.n; n++ {
		t := r.row(n)
		if t[i] == t[j] {
			out.Add(t)
		}
	}
	return out
}

// Semijoin returns the tuples of r that join with at least one tuple of o
// (r ⋉ o). With no shared attributes, the result is r itself when o is
// nonempty and empty otherwise. It is SemijoinLimited (semijoin.go) with
// no limits; it never fails.
func Semijoin(r, o *Relation) *Relation {
	out, err := SemijoinLimited(r, o, nil)
	if err != nil {
		panic("relation.Semijoin: unreachable error without limits: " + err.Error())
	}
	return out
}

// sameAttrSet reports whether r and o have identical attribute sets.
func sameAttrSet(r, o *Relation) bool {
	if len(r.attrs) != len(o.attrs) {
		return false
	}
	for _, a := range r.attrs {
		if !o.HasAttr(a) {
			return false
		}
	}
	return true
}

// reorderTo converts a tuple of o into r's column order.
func reorderTo(r, o *Relation, t Tuple, buf Tuple) Tuple {
	for i, a := range r.attrs {
		buf[i] = t[o.pos[a]]
	}
	return buf
}

// Union returns r ∪ o. The relations must have the same attribute set;
// column order may differ. The result uses r's column order.
func Union(r, o *Relation) *Relation {
	if !sameAttrSet(r, o) {
		panic("relation.Union: schema mismatch")
	}
	out := r.Clone()
	buf := make(Tuple, len(r.attrs))
	for i := 0; i < o.n; i++ {
		out.Add(reorderTo(r, o, o.row(i), buf))
	}
	return out
}

// Intersect returns r ∩ o over identical attribute sets.
func Intersect(r, o *Relation) *Relation {
	if !sameAttrSet(r, o) {
		panic("relation.Intersect: schema mismatch")
	}
	out := New(r.attrs)
	buf := make(Tuple, len(r.attrs))
	for i := 0; i < o.n; i++ {
		if r.Contains(reorderTo(r, o, o.row(i), buf)) {
			out.Add(buf)
		}
	}
	return out
}

// Difference returns r − o over identical attribute sets.
func Difference(r, o *Relation) *Relation {
	if !sameAttrSet(r, o) {
		panic("relation.Difference: schema mismatch")
	}
	neg := New(r.attrs)
	buf := make(Tuple, len(r.attrs))
	for i := 0; i < o.n; i++ {
		neg.Add(reorderTo(r, o, o.row(i), buf))
	}
	out := New(r.attrs)
	for i := 0; i < r.n; i++ {
		t := r.row(i)
		if !neg.Contains(t) {
			out.Add(t)
		}
	}
	return out
}

// Rename returns a view of r with attributes substituted according to m.
// Attributes not in m are kept. It panics if the renaming collapses two
// attributes into one.
//
// A pure attribute substitution cannot introduce duplicates, so the view
// is zero-copy: it shares the source's row arena, dedup table, and range
// metadata. Both relations turn copy-on-write — the first mutation of
// either side unshares its storage — so neither can observe the other's
// later inserts. Every Scan in both executors goes through here, which
// turns scans from an O(n) re-hash into O(1).
func Rename(r *Relation, m map[Attr]Attr) *Relation {
	attrs := make([]Attr, len(r.attrs))
	for i, a := range r.attrs {
		if b, ok := m[a]; ok {
			attrs[i] = b
		} else {
			attrs[i] = a
		}
	}
	pos := make(map[Attr]int, len(attrs))
	for i, a := range attrs {
		if _, dup := pos[a]; dup {
			panic(fmt.Sprintf("relation.Rename: duplicate attribute %d", a))
		}
		pos[a] = i
	}
	out := &Relation{
		attrs:  attrs,
		pos:    pos,
		arity:  r.arity,
		data:   r.data,
		n:      r.n,
		exact:  r.exact,
		keys:   r.keys,
		refs:   r.refs,
		used:   r.used,
		colMin: r.colMin,
		colMax: r.colMax,
		shared: 1,
		stale:  r.stale,
	}
	r.markShared()
	return out
}
