package relation

// StreamTable is the open-addressing hash-join build table for streamed
// inputs: rows arrive one at a time (a Volcano-style iterator draining its
// build side), are copied into a flat arena, and are then probed by key
// equality on a column subset. It is the same kernel stack as the
// relational join — packed-uint64/FNV key split, splitmix-mixed
// open-addressing table with flat duplicate chains — exported so the
// engine's iterator executor shares one hot path with the materializing
// executors instead of building string keys into a Go map.
//
// Key mode mirrors keyer: while every key-column value fits in a byte and
// there are at most eight key columns, keys are injective byte-packings
// and matches need no verification; the first out-of-range value migrates
// every stored key to FNV-1a, after which probes verify candidate rows
// against the arena. Probing in packed mode with an out-of-range probe
// value short-circuits to "no match" — the build side is known to contain
// byte-range values only.
type StreamTable struct {
	arity  int
	keyPos []int // key columns in inserted rows

	data []Value // flat arena; row i = data[i*arity:(i+1)*arity]
	n    int
	keys []uint64 // per-row key under the current mode

	packed bool
	built  bool
	jt     joinTable
}

// NewStreamTable returns an empty table for rows of the given arity keyed
// by the columns keyPos (which it copies).
func NewStreamTable(arity int, keyPos []int) *StreamTable {
	return &StreamTable{
		arity:  arity,
		keyPos: append([]int(nil), keyPos...),
		packed: len(keyPos) <= 8,
	}
}

// Len returns the number of inserted rows.
func (st *StreamTable) Len() int { return st.n }

// Bytes approximates the table's resident memory: the tuple arena, the
// per-row keys, and the probe structure once built. It is the iterator
// engine's accounting unit for the memory budget.
func (st *StreamTable) Bytes() int64 {
	b := int64(cap(st.data))*4 + int64(cap(st.keys))*8
	if st.built {
		b += st.jt.bytes()
	}
	return b
}

// emptyRow is the canonical zero-arity row. Row must not derive it by
// slicing the arena: with no columns the arena stays nil, and a nil row
// would read as "no match" to StreamMatches.Next.
var emptyRow = make(Tuple, 0)

// Row returns stored row i. The caller must not modify it.
func (st *StreamTable) Row(i int) Tuple {
	if st.arity == 0 {
		return emptyRow
	}
	return st.data[i*st.arity : (i+1)*st.arity]
}

// packCols packs the key columns of t, reporting failure on an
// out-of-range value.
func packCols(t Tuple, pos []int) (uint64, bool) {
	var key uint64
	for _, p := range pos {
		v := t[p]
		if v < 0 || v > 255 {
			return 0, false
		}
		key = key<<8 | uint64(byte(v))
	}
	return key, true
}

// hashCols FNV-hashes the key columns of t.
func hashCols(t Tuple, pos []int) uint64 {
	var h uint64 = fnvOffset
	for _, p := range pos {
		v := uint32(t[p])
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= fnvPrime
		}
	}
	return h
}

// Insert copies the row into the arena. It panics if called after the
// first Probe: the build phase of a hash join completes before probing.
func (st *StreamTable) Insert(t Tuple) {
	if st.built {
		panic("relation.StreamTable: Insert after Probe")
	}
	if len(t) != st.arity {
		panic("relation.StreamTable: row arity mismatch")
	}
	st.data = append(st.data, t...)
	var k uint64
	if st.packed {
		var ok bool
		if k, ok = packCols(t, st.keyPos); !ok {
			st.migrate()
			k = hashCols(t, st.keyPos)
		}
	} else {
		k = hashCols(t, st.keyPos)
	}
	st.keys = append(st.keys, k)
	st.n++
}

// migrate leaves packed mode, rehashing every stored key.
func (st *StreamTable) migrate() {
	st.packed = false
	for i := range st.keys {
		st.keys[i] = hashCols(st.Row(i), st.keyPos)
	}
}

// build freezes the table: no more inserts, probing allowed.
func (st *StreamTable) build() {
	st.jt = newJoinTable(st.keys)
	st.built = true
}

// StreamMatches iterates the build rows matching one probe tuple.
type StreamMatches struct {
	st     *StreamTable
	e      int32
	verify bool
	probe  Tuple
	pPos   []int
}

// Probe returns an iterator over the stored rows whose key columns equal
// probePos of pt. The first Probe freezes the table.
func (st *StreamTable) Probe(pt Tuple, probePos []int) StreamMatches {
	if !st.built {
		st.build()
	}
	if st.n == 0 {
		return StreamMatches{}
	}
	var k uint64
	if st.packed {
		var ok bool
		if k, ok = packCols(pt, probePos); !ok {
			// All build values are byte-range; an out-of-range probe
			// value cannot match any of them.
			return StreamMatches{}
		}
		return StreamMatches{st: st, e: st.jt.first(k)}
	}
	k = hashCols(pt, probePos)
	return StreamMatches{st: st, e: st.jt.first(k), verify: true, probe: pt, pPos: probePos}
}

// Next returns the next matching build row, or nil when exhausted. The
// returned slice points into the arena; the caller must not modify it.
func (m *StreamMatches) Next() Tuple {
	for m.e != 0 {
		row := m.st.Row(int(m.st.jt.rowOf[m.e-1]))
		m.e = m.st.jt.next[m.e-1]
		if m.verify {
			match := true
			for i, p := range m.st.keyPos {
				if row[p] != m.probe[m.pPos[i]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		return row
	}
	return nil
}
