package relation

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// nestedLoopSemijoin is the trivially-correct oracle: keep each r-tuple
// that agrees with some o-tuple on every shared attribute.
func nestedLoopSemijoin(r, o *Relation) *Relation {
	shared := SharedAttrs(r, o)
	out := New(r.Attrs())
	r.Each(func(rt Tuple) bool {
		match := false
		o.Each(func(ot Tuple) bool {
			for _, a := range shared {
				if rt[r.Pos(a)] != ot[o.Pos(a)] {
					return true
				}
			}
			match = true
			return false
		})
		if match {
			out.Add(rt)
		}
		return true
	})
	return out
}

func TestSemijoinKernelsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schemas := []struct{ r, o []Attr }{
		{[]Attr{0, 1}, []Attr{1, 2}},
		{[]Attr{0, 1, 2}, []Attr{1, 2}},
		{[]Attr{0, 1}, []Attr{0, 1}},
		{[]Attr{0, 1}, []Attr{2, 3}}, // disjoint
	}
	for trial := 0; trial < 60; trial++ {
		sc := schemas[trial%len(schemas)]
		r := randomRelation(rng, sc.r, rng.Intn(30), 4)
		o := randomRelation(rng, sc.o, rng.Intn(30), 4)
		want := nestedLoopSemijoin(r, o)

		got, err := SemijoinLimited(r, o, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: SemijoinLimited %v != oracle %v", trial, got, want)
		}

		// SemijoinFilter consumes its receiver: run it on a private clone.
		in := r.Clone()
		filtered, removed, err := SemijoinFilter(in, o, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !filtered.Equal(want) {
			t.Fatalf("trial %d: SemijoinFilter %v != oracle %v", trial, filtered, want)
		}
		if removed != r.Len()-want.Len() {
			t.Fatalf("trial %d: removed = %d, want %d", trial, removed, r.Len()-want.Len())
		}
	}
}

func TestSemijoinFilterAllSurviveIsIdentity(t *testing.T) {
	r := edgeRelation(0, 1)
	o := edgeRelation(1, 2) // every value matches: nothing removed
	out, removed, err := SemijoinFilter(r, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed = %d, want 0", removed)
	}
	if out != r {
		t.Fatal("all-survive filter must return the receiver without copying")
	}
}

func TestSemijoinFilterSharedStorageCopies(t *testing.T) {
	// Rename shares the arena; filtering one view must never disturb the
	// sibling (an in-place compaction would).
	base := edgeRelation(0, 1)
	view := Rename(base, map[Attr]Attr{0: 3, 1: 4})
	before := base.Clone()

	single := New([]Attr{3})
	single.Add(Tuple{2})
	out, removed, err := SemijoinFilter(view, single, nil)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("selective filter removed nothing; test is vacuous")
	}
	if out == view {
		t.Fatal("filter on shared storage must return a fresh relation")
	}
	if !base.Equal(before) {
		t.Fatalf("sibling view corrupted: %v, want %v", base, before)
	}
	want, err := SemijoinLimited(view, single, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatalf("shared-path filter %v != copying kernel %v", out, want)
	}
}

func TestSemijoinFilterInPlaceRemainsUsable(t *testing.T) {
	// After an in-place compaction the dedup index is rebuilt lazily;
	// Contains, Add and a further filter must all behave.
	rng := rand.New(rand.NewSource(9))
	r := randomRelation(rng, []Attr{0, 1}, 40, 6)
	sel := New([]Attr{0})
	sel.Add(Tuple{1})
	sel.Add(Tuple{2})
	want := nestedLoopSemijoin(r, sel)

	out, _, err := SemijoinFilter(r, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatalf("in-place filter %v != oracle %v", out, want)
	}
	out.Each(func(tu Tuple) bool {
		if !out.Contains(tu) {
			t.Fatalf("surviving tuple %v not found by Contains", tu)
		}
		return true
	})
	n := out.Len()
	out.Add(Tuple{Value(99), Value(99)})
	if out.Len() != n+1 || !out.Contains(Tuple{99, 99}) {
		t.Fatal("Add after in-place filter failed")
	}
	if out.Add(Tuple{99, 99}) {
		t.Fatal("dedup lost after in-place filter: duplicate accepted")
	}
}

func TestSemijoinFilterEmptyCases(t *testing.T) {
	r := edgeRelation(0, 1)
	empty := New([]Attr{1})
	out, removed, err := SemijoinFilter(r.Clone(), empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || removed != r.Len() {
		t.Fatalf("filter by empty: len=%d removed=%d, want 0 and %d", out.Len(), removed, r.Len())
	}

	er := New([]Attr{0, 1})
	out, removed, err = SemijoinFilter(er, edgeRelation(1, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || removed != 0 {
		t.Fatal("empty receiver must stay empty with nothing removed")
	}

	// Disjoint schemas: a nonempty other keeps everything, an empty
	// other keeps nothing (Cartesian semantics).
	non := New([]Attr{7})
	non.Add(Tuple{0})
	out, removed, err = SemijoinFilter(r.Clone(), non, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != r.Len() || removed != 0 {
		t.Fatal("disjoint nonempty other must keep all tuples")
	}
	out, removed, err = SemijoinFilter(r.Clone(), New([]Attr{7}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || removed != r.Len() {
		t.Fatal("disjoint empty other must drop all tuples")
	}
}

func TestSemijoinKernelsHonorCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := randomRelation(rng, []Attr{0, 1}, 20000, 50)
	o := randomRelation(rng, []Attr{1, 2}, 20000, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SemijoinLimited(r, o, &Limit{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SemijoinLimited under canceled ctx: err = %v", err)
	}
	if _, _, err := SemijoinFilter(r.Clone(), o, &Limit{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SemijoinFilter under canceled ctx: err = %v", err)
	}
}

func TestSemijoinLimitedChargesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := randomRelation(rng, []Attr{0, 1}, 5000, 20)
	o := randomRelation(rng, []Attr{1, 2}, 5000, 20)
	lim := &Limit{MaxBytes: 64}
	if _, err := SemijoinLimited(r, o, lim); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("tiny byte budget: err = %v, want ErrMemBudget", err)
	}
}

// TestSemijoinMixedKeyWidths pins the keyer-alignment regression: when one
// side's shared columns are all byte-range (packed exact keys) and the
// other's are not (FNV keys), the probe must not look up packed keys in an
// FNV table — that misses every match and silently empties the result.
func TestSemijoinMixedKeyWidths(t *testing.T) {
	small := New([]Attr{0, 1})
	small.Add(Tuple{3, 7})
	small.Add(Tuple{200, 9})
	big := New([]Attr{1, 2})
	big.Add(Tuple{7, 1000})
	big.Add(Tuple{9, 77})
	big.Add(Tuple{1000, 1000}) // pushes big's column 1 out of byte range

	want := nestedLoopSemijoin(small, big)
	if want.Len() != 2 {
		t.Fatalf("oracle sanity: got %d rows, want 2", want.Len())
	}
	got, err := SemijoinLimited(small, big, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("SemijoinLimited with mixed key widths: %v, want %v", got, want)
	}
	filtered, removed, err := SemijoinFilter(small.Clone(), big, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !filtered.Equal(want) || removed != 0 {
		t.Fatalf("SemijoinFilter with mixed key widths: %v (removed %d), want %v (removed 0)",
			filtered, removed, want)
	}
	joined, err := JoinLimited(small, big, nil)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 2 {
		t.Fatalf("JoinLimited with mixed key widths: %d rows, want 2", joined.Len())
	}
}
