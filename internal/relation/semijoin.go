package relation

// Semijoin kernels. The Yannakakis full reducer (internal/engine) drives
// its bottom-up and top-down sweeps through SemijoinFilter, the in-place
// variant: reduction marks survivors in a bitmask and compacts the arena
// instead of copying tuples into a fresh relation, so a sweep that removes
// nothing allocates nothing beyond the probe table. SemijoinLimited is the
// classic copying kernel under a Limit; Semijoin (ops.go) delegates to it.

import (
	"fmt"

	"projpush/internal/faultinject"
)

// semijoinProbe is the shared matcher of the semijoin kernels: a hash
// table over o's rows keyed by the shared attributes, probed with rows
// of r.
type semijoinProbe struct {
	o          *Relation
	rKey       keyer
	oPos, rPos []int
	needVerify bool
	table      joinTable
}

func newSemijoinProbe(r, o *Relation, shared []Attr) *semijoinProbe {
	p := &semijoinProbe{
		o:    o,
		rKey: newKeyer(r, shared),
		oPos: make([]int, len(shared)),
		rPos: make([]int, len(shared)),
	}
	oKey := newKeyer(o, shared)
	alignKeyers(&oKey, &p.rKey)
	p.needVerify = !oKey.exact || !p.rKey.exact
	for i, a := range shared {
		p.oPos[i] = o.pos[a]
		p.rPos[i] = r.pos[a]
	}
	oKeys := make([]uint64, o.n)
	for i := range oKeys {
		oKeys[i] = oKey.key(o.row(i))
	}
	p.table = newJoinTable(oKeys)
	return p
}

// matches reports whether r-row t joins with at least one row of o.
func (p *semijoinProbe) matches(t Tuple) bool {
	for e := p.table.first(p.rKey.key(t)); e != 0; e = p.table.next[e-1] {
		if p.needVerify {
			ot := p.o.row(int(p.table.rowOf[e-1]))
			match := true
			for j := range p.rPos {
				if ot[p.oPos[j]] != t[p.rPos[j]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		return true
	}
	return false
}

// SemijoinLimited computes r ⋉ o (the tuples of r that join with at least
// one tuple of o) under lim, copying the surviving tuples into a fresh
// relation. With no shared attributes, the result is a copy of r when o is
// nonempty and empty otherwise.
func SemijoinLimited(r, o *Relation, lim *Limit) (*Relation, error) {
	if err := lim.interrupted(); err != nil {
		return nil, err
	}
	faultinject.Sleep(faultinject.LatencyKernel)
	if faultinject.FailAlloc(faultinject.AllocSemijoin) {
		return nil, fmt.Errorf("%w: injected allocation failure", ErrMemBudget)
	}
	shared := SharedAttrs(r, o)
	if len(shared) == 0 {
		if o.Empty() {
			return New(r.attrs), nil
		}
		out := r.Clone()
		if err := lim.chargeBytes(out.Bytes()); err != nil {
			return nil, err
		}
		return out, nil
	}
	probe := newSemijoinProbe(r, o, shared)
	lim.charge(int64(o.n))
	if err := lim.chargeBytes(probe.table.bytes()); err != nil {
		return nil, err
	}
	out := New(r.attrs)
	var touched, outBytes int64
	nextCheck := int64(deadlineCheckInterval)
	for i := 0; i < r.n; i++ {
		touched++
		if touched >= nextCheck {
			nextCheck = touched + deadlineCheckInterval
			if err := lim.interrupted(); err != nil {
				lim.charge(touched)
				return nil, err
			}
		}
		t := r.row(i)
		if !probe.matches(t) {
			continue
		}
		out.Add(t)
		if err := lim.chargeMem(out, &outBytes); err != nil {
			lim.charge(touched)
			return nil, err
		}
	}
	lim.charge(touched)
	return out, nil
}

// SemijoinFilter reduces r to r ⋉ o without copying tuples: survivors are
// marked in a bitmask and, only when something was removed, the arena is
// compacted in place. It returns the reduced relation and the number of
// tuples removed.
//
// The returned relation may be r itself (always when nothing was removed);
// when r's storage is shared (a zero-copy Rename view), compaction copies
// the survivors into a fresh arena instead of overwriting rows a sibling
// still reads. Either way the caller must treat r as consumed and use only
// the returned relation.
func SemijoinFilter(r, o *Relation, lim *Limit) (*Relation, int, error) {
	if err := lim.interrupted(); err != nil {
		return nil, 0, err
	}
	faultinject.Sleep(faultinject.LatencyKernel)
	if faultinject.FailAlloc(faultinject.AllocSemijoin) {
		return nil, 0, fmt.Errorf("%w: injected allocation failure", ErrMemBudget)
	}
	shared := SharedAttrs(r, o)
	if len(shared) == 0 {
		if o.Empty() && r.n > 0 {
			return New(r.attrs), r.n, nil
		}
		return r, 0, nil
	}
	if r.n == 0 {
		return r, 0, nil
	}
	probe := newSemijoinProbe(r, o, shared)
	lim.charge(int64(o.n))
	if err := lim.chargeBytes(probe.table.bytes()); err != nil {
		return nil, 0, err
	}

	mask := make([]uint64, (r.n+63)/64)
	kept := 0
	var touched int64
	nextCheck := int64(deadlineCheckInterval)
	for i := 0; i < r.n; i++ {
		touched++
		if touched >= nextCheck {
			nextCheck = touched + deadlineCheckInterval
			if err := lim.interrupted(); err != nil {
				lim.charge(touched)
				return nil, 0, err
			}
		}
		if probe.matches(r.row(i)) {
			mask[i>>6] |= 1 << (i & 63)
			kept++
		}
	}
	lim.charge(touched)
	if kept == r.n {
		return r, 0, nil
	}
	removed := r.n - kept

	if r.isShared() {
		// A sibling view still reads this arena: copy the survivors out
		// instead of overwriting shared rows. The dedup table is left
		// stale and rebuilt lazily on the next membership query.
		data := make([]Value, 0, kept*r.arity)
		for i := 0; i < r.n; i++ {
			if mask[i>>6]&(1<<(i&63)) != 0 {
				data = append(data, r.row(i)...)
			}
		}
		out := &Relation{
			attrs:  r.attrs,
			pos:    r.pos,
			arity:  r.arity,
			data:   data,
			n:      kept,
			exact:  r.exact,
			colMin: append([]Value(nil), r.colMin...),
			colMax: append([]Value(nil), r.colMax...),
			stale:  true,
		}
		if err := lim.chargeBytes(out.Bytes()); err != nil {
			return nil, 0, err
		}
		return out, removed, nil
	}

	// Private storage: compact the arena in place. No allocation, so
	// nothing to charge; the byte watermark (cap-based) only shrinks.
	w := 0
	for i := 0; i < r.n; i++ {
		if mask[i>>6]&(1<<(i&63)) == 0 {
			continue
		}
		if w != i {
			copy(r.data[w*r.arity:(w+1)*r.arity], r.row(i))
		}
		w++
	}
	r.n = kept
	r.data = r.data[:kept*r.arity]
	r.keys, r.refs, r.used = nil, nil, 0
	r.stale = true
	r.hdrs = nil
	return r, removed, nil
}
