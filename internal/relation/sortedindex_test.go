package relation

import (
	"math/rand"
	"testing"
)

// randomIndexed builds a random relation and a sorted index over a random
// permutation of its attributes. maxVal > 255 exercises the column-compare
// sort (the arena is not byte-packable); maxVal <= 255 the packed path.
func randomIndexed(t *testing.T, rng *rand.Rand, n, arity int, maxVal int32) (*Relation, *SortedIndex, []Attr) {
	t.Helper()
	attrs := make([]Attr, arity)
	for i := range attrs {
		attrs[i] = Attr(i)
	}
	r := New(attrs)
	buf := make(Tuple, arity)
	for i := 0; i < n; i++ {
		for j := range buf {
			buf[j] = Value(rng.Int31n(maxVal + 1))
		}
		r.Add(buf)
	}
	order := make([]Attr, arity)
	copy(order, attrs)
	rng.Shuffle(arity, func(i, j int) { order[i], order[j] = order[j], order[i] })
	ix, err := NewSortedIndex(r, order)
	if err != nil {
		t.Fatal(err)
	}
	return r, ix, order
}

// TestSortedIndexOrder checks that both sort paths (packed single-word
// keys and column-wise compares) produce the same lexicographic order
// with deterministic row-id tie-breaking.
func TestSortedIndexOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, maxVal := range []int32{3, 255, 100_000} {
		_, ix, _ := randomIndexed(t, rng, 500, 3, maxVal)
		for i := 1; i < ix.Len(); i++ {
			for d := 0; d < ix.Depths(); d++ {
				a, b := ix.Value(i-1, d), ix.Value(i, d)
				if a < b {
					break
				}
				if a > b {
					t.Fatalf("maxVal=%d: rows %d,%d out of order at depth %d: %d > %d",
						maxVal, i-1, i, d, a, b)
				}
			}
		}
	}
}

// TestSortedIndexSeekProperty drives SeekGE and SeekGT against a linear
// scan over random brackets: for every bracket where the prefix depths
// are constant, the galloping seek must return exactly the first
// position the scan finds. Domains beyond 255 force the FNV/unpacked
// arena and the column-compare sort, so both key regimes are swept.
func TestSortedIndexSeekProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		n, arity int
		maxVal   int32
	}{
		{0, 2, 10},      // empty relation
		{1, 1, 5},       // single row
		{400, 2, 6},     // dense duplicates, packed keys
		{400, 3, 255},   // packed boundary
		{400, 3, 70000}, // unpacked arena, column compares
	} {
		_, ix, _ := randomIndexed(t, rng, tc.n, tc.arity, tc.maxVal)
		linear := func(d, lo, hi int, v Value, strict bool) int {
			for i := lo; i < hi; i++ {
				u := ix.Value(i, d)
				if (strict && u > v) || (!strict && u >= v) {
					return i
				}
			}
			return hi
		}
		// Depth-0 brackets are the whole index; deeper brackets are runs
		// of constant prefix, found by walking the sorted order.
		type bracket struct{ d, lo, hi int }
		brackets := []bracket{{0, 0, ix.Len()}}
		for d := 1; d < ix.Depths(); d++ {
			lo := 0
			for lo < ix.Len() {
				hi := lo + 1
				for hi < ix.Len() {
					same := true
					for pd := 0; pd < d; pd++ {
						if ix.Value(hi, pd) != ix.Value(lo, pd) {
							same = false
							break
						}
					}
					if !same {
						break
					}
					hi++
				}
				brackets = append(brackets, bracket{d, lo, hi})
				lo = hi
			}
		}
		for _, br := range brackets {
			probes := []Value{0, 1, Value(tc.maxVal), Value(tc.maxVal) + 1, 1<<31 - 1}
			for k := 0; k < 16; k++ {
				probes = append(probes, Value(rng.Int31n(tc.maxVal+1)))
			}
			if br.hi > br.lo {
				probes = append(probes, ix.Value(br.lo, br.d), ix.Value(br.hi-1, br.d))
			}
			for _, v := range probes {
				if got, want := ix.SeekGE(br.d, br.lo, br.hi, v), linear(br.d, br.lo, br.hi, v, false); got != want {
					t.Fatalf("n=%d maxVal=%d SeekGE(d=%d,[%d,%d),%d) = %d, linear scan %d",
						tc.n, tc.maxVal, br.d, br.lo, br.hi, v, got, want)
				}
				if got, want := ix.SeekGT(br.d, br.lo, br.hi, v), linear(br.d, br.lo, br.hi, v, true); got != want {
					t.Fatalf("n=%d maxVal=%d SeekGT(d=%d,[%d,%d),%d) = %d, linear scan %d",
						tc.n, tc.maxVal, br.d, br.lo, br.hi, v, got, want)
				}
			}
		}
	}
}

// TestSortedIndexSeekGTAtMaxValue pins the overflow case SeekGT exists
// for: finding the end of a run whose value is the maximum representable
// Value, where a SeekGE(v+1) formulation would wrap.
func TestSortedIndexSeekGTAtMaxValue(t *testing.T) {
	const top = Value(1<<31 - 1)
	r := New([]Attr{0})
	for _, v := range []Value{1, top, top, 5} {
		r.Add(Tuple{v})
	}
	ix, err := NewSortedIndex(r, []Attr{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.SeekGT(0, 0, ix.Len(), top); got != ix.Len() {
		t.Fatalf("SeekGT(max) = %d, want %d (end)", got, ix.Len())
	}
	if got := ix.SeekGE(0, 0, ix.Len(), top); got != 2 {
		t.Fatalf("SeekGE(max) = %d, want 2 (start of the max run)", got)
	}
}

// TestSortedIndexLimits checks the limit plumbing: a byte budget below
// the row-id array fails the build with ErrMemBudget, and work is
// charged per indexed row.
func TestSortedIndexLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, _, order := randomIndexed(t, rng, 1000, 2, 50)
	var work int64
	lim := &Limit{Work: &work, MaxBytes: 16}
	if _, err := NewSortedIndexLimited(r, order, lim); err == nil {
		t.Fatal("16-byte budget admitted a 1000-row index")
	}
	work = 0
	if _, err := NewSortedIndexLimited(r, order, &Limit{Work: &work}); err != nil {
		t.Fatal(err)
	}
	if work < int64(r.Len()) {
		t.Fatalf("work charged = %d, want >= %d rows", work, r.Len())
	}
	if _, err := NewSortedIndex(r, []Attr{99}); err == nil {
		t.Fatal("indexing a missing attribute must fail")
	}
}
