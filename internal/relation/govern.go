package relation

import (
	"fmt"
	"runtime/debug"
)

// PanicError records a panic recovered at a worker-pool boundary: the
// panic value and the stack of the panicking goroutine. The parallel join
// pools convert worker panics into this error instead of crashing the
// process; the engine classifies it under its ErrInternal sentinel, so a
// single pathological cell can never take down a whole experiments batch.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack (runtime/debug.Stack).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("relation: worker panic: %v", e.Value)
}

// RecoverPanic converts an in-flight panic into a *PanicError stored at
// dst. Use directly as a deferred call at a worker boundary:
//
//	defer relation.RecoverPanic(&err)
func RecoverPanic(dst *error) {
	if r := recover(); r != nil {
		*dst = &PanicError{Value: r, Stack: debug.Stack()}
	}
}
