package relation

import (
	"math/rand"
	"testing"
	"time"
)

// bigPair builds two relations large enough to cross the
// parallelJoinMinRows threshold, sharing attribute 1. scale shifts values
// out of byte range when nonzero, forcing the FNV verify path.
func bigPair(seed int64, rows, domain int, scale Value) (*Relation, *Relation) {
	rng := rand.New(rand.NewSource(seed))
	a := New([]Attr{0, 1})
	b := New([]Attr{1, 2})
	for i := 0; i < rows; i++ {
		a.Add(Tuple{Value(rng.Intn(domain)) * (1 + scale), Value(rng.Intn(domain)) * (1 + scale)})
		b.Add(Tuple{Value(rng.Intn(domain)) * (1 + scale), Value(rng.Intn(domain)) * (1 + scale)})
	}
	return a, b
}

func TestParallelJoinMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		scale Value
	}{
		{"packed-keys", 0},
		{"hashed-keys", 5000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := bigPair(7, 2500, 50, tc.scale)
			want := Join(a, b)
			for _, workers := range []int{2, 4, 7} {
				got, err := ParallelJoinLimited(a, b, nil, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("workers=%d: parallel join differs (%d vs %d rows)",
						workers, got.Len(), want.Len())
				}
			}
		})
	}
}

// TestParallelJoinChunkedMatchesSequential drives the probe-chunking
// strategy (build side at most chunkBuildMax rows, far fewer distinct
// keys than workers — the shape of every chain-plan join over the paper's
// tiny domains) and checks set equality with the sequential join.
func TestParallelJoinChunkedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	small := New([]Attr{1, 2})
	for i := 0; i < 30; i++ {
		small.Add(Tuple{Value(rng.Intn(3)), Value(rng.Intn(10))})
	}
	big := New([]Attr{0, 1})
	for i := 0; i < 6000; i++ {
		big.Add(Tuple{Value(rng.Intn(100)), Value(rng.Intn(3))})
	}
	want := Join(big, small)
	for _, workers := range []int{2, 4, 7} {
		got, err := ParallelJoinLimited(big, small, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: chunked join differs (%d vs %d rows)",
				workers, got.Len(), want.Len())
		}
	}
}

func TestParallelJoinChunkedRowCap(t *testing.T) {
	small := New([]Attr{1, 2})
	for i := Value(0); i < 3; i++ {
		for j := Value(0); j < 3; j++ {
			small.Add(Tuple{i, j})
		}
	}
	big := New([]Attr{0, 1})
	for i := Value(0); i < 3000; i++ {
		big.Add(Tuple{i, i % 3})
	}
	_, err := ParallelJoinLimited(big, small, &Limit{MaxRows: 50}, 4)
	if err != ErrRowLimit {
		t.Fatalf("err = %v, want ErrRowLimit", err)
	}
}

func TestParallelJoinSmallInputFallsBack(t *testing.T) {
	a, b := bigPair(3, 40, 5, 0)
	got, err := ParallelJoinLimited(a, b, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Join(a, b)) {
		t.Fatal("small-input fallback differs from sequential join")
	}
}

func TestParallelJoinCrossProductFallsBack(t *testing.T) {
	a := New([]Attr{0})
	b := New([]Attr{1})
	for i := Value(0); i < 60; i++ {
		a.Add(Tuple{i})
		b.Add(Tuple{i})
	}
	got, err := ParallelJoinLimited(a, b, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 60*60 {
		t.Fatalf("cross product len = %d, want 3600", got.Len())
	}
}

func TestParallelJoinRowCap(t *testing.T) {
	a, b := bigPair(11, 3000, 20, 0)
	_, err := ParallelJoinLimited(a, b, &Limit{MaxRows: 100}, 4)
	if err != ErrRowLimit {
		t.Fatalf("err = %v, want ErrRowLimit", err)
	}
}

func TestParallelJoinDeadline(t *testing.T) {
	a, b := bigPair(13, 3000, 20, 0)
	_, err := ParallelJoinLimited(a, b, &Limit{Deadline: time.Now().Add(-time.Second)}, 4)
	if err != ErrDeadline {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestParallelJoinWorkCharged(t *testing.T) {
	var work int64
	a, b := bigPair(17, 2500, 40, 0)
	if _, err := ParallelJoinLimited(a, b, &Limit{Work: &work}, 4); err != nil {
		t.Fatal(err)
	}
	if work == 0 {
		t.Fatal("work counter not charged across partitions")
	}
}

// TestParallelJoinOutputUsable checks that the merged output — whose
// dedup table is built lazily — behaves like any other relation under
// every dedup-dependent operation.
func TestParallelJoinOutputUsable(t *testing.T) {
	a, b := bigPair(19, 2500, 40, 0)
	got, err := ParallelJoinLimited(a, b, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Join(a, b)

	// Contains over the lazily-built table.
	want.Each(func(tu Tuple) bool {
		if !got.Contains(tu) {
			t.Fatalf("merged output missing %v", tu)
		}
		return true
	})
	// Further joins and projections over the merged output.
	c := New([]Attr{2, 3})
	for i := Value(0); i < 50; i++ {
		c.Add(Tuple{i, i})
	}
	if !Join(got, c).Equal(Join(want, c)) {
		t.Fatal("join over merged output differs")
	}
	if !Project(got, []Attr{0, 2}).Equal(Project(want, []Attr{0, 2})) {
		t.Fatal("projection over merged output differs")
	}
	// Mutating the merged output must dedup correctly.
	probe := want.Tuples()[0]
	if got.Add(probe) {
		t.Fatal("merged output accepted a duplicate")
	}
}

func TestRenameZeroCopyIndependence(t *testing.T) {
	src := New([]Attr{0, 1})
	src.Add(Tuple{1, 2})
	src.Add(Tuple{3, 4})
	view := Rename(src, map[Attr]Attr{0: 10})

	// Mutating the view must not affect the source.
	if !view.Add(Tuple{5, 6}) {
		t.Fatal("view rejected fresh tuple")
	}
	if src.Len() != 2 || src.Contains(Tuple{5, 6}) {
		t.Fatalf("view mutation leaked into source: %v", src)
	}
	// Mutating the source must not affect the view (or earlier views).
	if !src.Add(Tuple{7, 8}) {
		t.Fatal("source rejected fresh tuple")
	}
	if view.Len() != 3 || view.Contains(Tuple{7, 8}) {
		t.Fatalf("source mutation leaked into view: %v", view)
	}
	// Dedup state still correct on both sides.
	if src.Add(Tuple{1, 2}) || view.Add(Tuple{1, 2}) {
		t.Fatal("duplicate accepted after unsharing")
	}
}

func TestRenameOfRename(t *testing.T) {
	src := New([]Attr{0, 1})
	src.Add(Tuple{1, 2})
	v1 := Rename(src, map[Attr]Attr{0: 10})
	v2 := Rename(v1, map[Attr]Attr{10: 20})
	if !v2.HasAttr(20) || !v2.HasAttr(1) || v2.Len() != 1 {
		t.Fatalf("chained rename wrong: %v", v2)
	}
	v2.Add(Tuple{9, 9})
	if src.Len() != 1 || v1.Len() != 1 {
		t.Fatal("chained rename shares mutable state")
	}
}

func TestRenameCollapsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when rename collapses attributes")
		}
	}()
	Rename(New([]Attr{0, 1}), map[Attr]Attr{0: 1})
}
