// Package relation implements in-memory relations with set semantics and
// the relational-algebra operations needed for project-join query
// evaluation: natural join, projection, selection, semijoin, and the set
// operations.
//
// A relation has an ordered schema of attributes and a deduplicated set of
// tuples. Attributes are plain ints; in query processing they are the
// variable identifiers of a conjunctive query. Values are small integers
// (colors, truth values), but the implementation accepts the full int32
// range.
//
// The paper's experimental setting ("Projection Pushing Revisited", EDBT
// 2004) forces hash joins in PostgreSQL and works with main-memory
// databases under SELECT DISTINCT semantics; this package is the
// corresponding substrate: every operation deduplicates, and joins are
// hash joins.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attr identifies an attribute (column). In query processing attributes are
// the variables of the conjunctive query.
type Attr = int

// Value is the domain element type. The paper's domains are tiny (three
// colors, two truth values) but nothing here depends on that.
type Value = int32

// Tuple is one row of a relation, with values in schema order.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Relation is a set of tuples over an ordered attribute schema.
// The zero value is not usable; use New.
//
// Deduplication uses a packed-uint64 set while every tuple has at most
// eight columns with byte-range values — always true for the paper's
// domains — and migrates transparently to string keys the first time a
// tuple falls outside that range.
type Relation struct {
	attrs  []Attr
	pos    map[Attr]int
	rows   []Tuple
	seen   map[string]struct{} // non-nil iff not in packed mode
	packed map[uint64]struct{} // non-nil iff in packed mode
}

// New returns an empty relation over the given attributes, in the given
// column order. It panics if an attribute repeats: project-join queries
// rename columns apart before joining, and a repeated column is always a
// construction bug in this codebase.
func New(attrs []Attr) *Relation {
	pos := make(map[Attr]int, len(attrs))
	for i, a := range attrs {
		if _, dup := pos[a]; dup {
			panic(fmt.Sprintf("relation.New: duplicate attribute %d", a))
		}
		pos[a] = i
	}
	r := &Relation{
		attrs: append([]Attr(nil), attrs...),
		pos:   pos,
	}
	if len(attrs) <= 8 {
		r.packed = make(map[uint64]struct{})
	} else {
		r.seen = make(map[string]struct{})
	}
	return r
}

// packKey packs a tuple into an injective uint64 key, or reports failure
// when a value is out of byte range.
func packKey(t Tuple) (uint64, bool) {
	var key uint64
	for _, v := range t {
		if v < 0 || v > 255 {
			return 0, false
		}
		key = key<<8 | uint64(byte(v))
	}
	return key, true
}

// unpack leaves packed mode, rebuilding the string-keyed set.
func (r *Relation) unpack() {
	r.seen = make(map[string]struct{}, len(r.rows))
	for _, t := range r.rows {
		r.seen[encode(t)] = struct{}{}
	}
	r.packed = nil
}

// FromTuples builds a relation over attrs containing the given tuples
// (duplicates are collapsed). It panics if a tuple has the wrong arity.
func FromTuples(attrs []Attr, tuples []Tuple) *Relation {
	r := New(attrs)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.rows) == 0 }

// Attrs returns the schema in column order. The caller must not modify it.
func (r *Relation) Attrs() []Attr { return r.attrs }

// HasAttr reports whether a is in the schema.
func (r *Relation) HasAttr(a Attr) bool {
	_, ok := r.pos[a]
	return ok
}

// Pos returns the column index of attribute a, or -1 if absent.
func (r *Relation) Pos(a Attr) int {
	if i, ok := r.pos[a]; ok {
		return i
	}
	return -1
}

// Add inserts the tuple if not already present and reports whether it was
// inserted. The tuple is copied; the caller keeps ownership of t.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != len(r.attrs) {
		panic(fmt.Sprintf("relation.Add: tuple arity %d != schema arity %d", len(t), len(r.attrs)))
	}
	if r.packed != nil {
		if k, ok := packKey(t); ok {
			if _, dup := r.packed[k]; dup {
				return false
			}
			r.packed[k] = struct{}{}
			r.rows = append(r.rows, t.Clone())
			return true
		}
		r.unpack()
	}
	k := encode(t)
	if _, ok := r.seen[k]; ok {
		return false
	}
	r.seen[k] = struct{}{}
	r.rows = append(r.rows, t.Clone())
	return true
}

// addOwned inserts a tuple the relation may keep without copying.
func (r *Relation) addOwned(t Tuple) bool {
	if r.packed != nil {
		if k, ok := packKey(t); ok {
			if _, dup := r.packed[k]; dup {
				return false
			}
			r.packed[k] = struct{}{}
			r.rows = append(r.rows, t)
			return true
		}
		r.unpack()
	}
	k := encode(t)
	if _, ok := r.seen[k]; ok {
		return false
	}
	r.seen[k] = struct{}{}
	r.rows = append(r.rows, t)
	return true
}

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != len(r.attrs) {
		return false
	}
	if r.packed != nil {
		if k, ok := packKey(t); ok {
			_, present := r.packed[k]
			return present
		}
		// Out-of-range tuples cannot be in a packed relation.
		return false
	}
	_, ok := r.seen[encode(t)]
	return ok
}

// Tuples returns the rows in insertion order. The caller must not modify
// the returned slices.
func (r *Relation) Tuples() []Tuple { return r.rows }

// Each calls f for every tuple until f returns false.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, t := range r.rows {
		if !f(t) {
			return
		}
	}
}

// Value returns the value of attribute a in tuple t (which must belong to
// this relation's schema).
func (r *Relation) Value(t Tuple, a Attr) Value {
	return t[r.pos[a]]
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := New(r.attrs)
	for _, t := range r.rows {
		c.Add(t)
	}
	return c
}

// Equal reports whether r and o contain the same set of tuples over the
// same set of attributes, regardless of column order.
func (r *Relation) Equal(o *Relation) bool {
	if len(r.attrs) != len(o.attrs) || len(r.rows) != len(o.rows) {
		return false
	}
	perm := make([]int, len(r.attrs))
	for i, a := range r.attrs {
		j, ok := o.pos[a]
		if !ok {
			return false
		}
		perm[i] = j
	}
	buf := make(Tuple, len(r.attrs))
	for _, t := range o.rows {
		for i := range perm {
			buf[i] = t[perm[i]]
		}
		if !r.Contains(buf) {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples sorted lexicographically. Useful for
// deterministic output in tests and examples.
func (r *Relation) SortedTuples() []Tuple {
	out := make([]Tuple, len(r.rows))
	copy(out, r.rows)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// String renders the relation compactly: attrs then sorted tuples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, a := range r.attrs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "x%d", a)
	}
	b.WriteString("){")
	for i, t := range r.SortedTuples() {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString("(")
		for j, v := range t {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteString(")")
	}
	b.WriteString("}")
	return b.String()
}

// encode packs a tuple into a string key for dedup hashing. Values that fit
// in a byte use one byte; others use a 5-byte escape.
func encode(t Tuple) string {
	var b []byte
	if len(t) <= 16 {
		var arr [16 * 5]byte
		b = arr[:0]
	} else {
		b = make([]byte, 0, len(t)*5)
	}
	for _, v := range t {
		if v >= 0 && v < 255 {
			b = append(b, byte(v))
		} else {
			u := uint32(v)
			b = append(b, 255, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
	}
	return string(b)
}
