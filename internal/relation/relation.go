// Package relation implements in-memory relations with set semantics and
// the relational-algebra operations needed for project-join query
// evaluation: natural join, projection, selection, semijoin, and the set
// operations.
//
// A relation has an ordered schema of attributes and a deduplicated set of
// tuples. Attributes are plain ints; in query processing they are the
// variable identifiers of a conjunctive query. Values are small integers
// (colors, truth values), but the implementation accepts the full int32
// range.
//
// The paper's experimental setting ("Projection Pushing Revisited", EDBT
// 2004) forces hash joins in PostgreSQL and works with main-memory
// databases under SELECT DISTINCT semantics; this package is the
// corresponding substrate: every operation deduplicates, and joins are
// hash joins.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Attr identifies an attribute (column). In query processing attributes are
// the variables of the conjunctive query.
type Attr = int

// Value is the domain element type. The paper's domains are tiny (three
// colors, two truth values) but nothing here depends on that.
type Value = int32

// Tuple is one row of a relation, with values in schema order.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Relation is a set of tuples over an ordered attribute schema.
// The zero value is not usable; use New.
//
// Storage layout: all rows live in one flat []Value arena with stride
// equal to the arity — row i is data[i*arity:(i+1)*arity] — so scans walk
// contiguous memory and appending a row never allocates a per-row header.
// Deduplication uses an open-addressing uint64 table (hashtable.go): keys
// are injective byte-packings while every tuple has at most eight columns
// with byte-range values — always true for the paper's domains — and
// migrate transparently to FNV hashes with row verification the first
// time a tuple falls outside that range.
//
// Relations track per-column min/max values on insert, which lets the
// join keyer decide packed-vs-hashed exactness without rescanning rows,
// and lets Rename share storage with its source (copy-on-write).
type Relation struct {
	attrs []Attr
	pos   map[Attr]int
	arity int

	data []Value // flat arena; row i = data[i*arity:(i+1)*arity]
	n    int     // number of rows

	exact bool     // dedup keys are injective byte-packings
	keys  []uint64 // open-addressing dedup table: key per slot
	refs  []int32  // row index + 1 per slot; 0 = empty
	used  int      // occupied slots

	colMin []Value // per-column minimum over all rows (valid when n > 0)
	colMax []Value // per-column maximum

	// shared is 1 when storage is shared with another relation (zero-copy
	// Rename). Accessed atomically: concurrent scans of one base relation
	// all mark it shared, and parallel executors do exactly that.
	shared uint32
	stale  bool // dedup table not built (merged partition output)

	hdrs []Tuple // lazy Tuples() headers into data
}

// New returns an empty relation over the given attributes, in the given
// column order. It panics if an attribute repeats: project-join queries
// rename columns apart before joining, and a repeated column is always a
// construction bug in this codebase.
func New(attrs []Attr) *Relation {
	pos := make(map[Attr]int, len(attrs))
	for i, a := range attrs {
		if _, dup := pos[a]; dup {
			panic(fmt.Sprintf("relation.New: duplicate attribute %d", a))
		}
		pos[a] = i
	}
	return &Relation{
		attrs:  append([]Attr(nil), attrs...),
		pos:    pos,
		arity:  len(attrs),
		exact:  len(attrs) <= 8,
		colMin: make([]Value, len(attrs)),
		colMax: make([]Value, len(attrs)),
	}
}

// packKey packs a tuple into an injective uint64 key, or reports failure
// when a value is out of byte range.
func packKey(t Tuple) (uint64, bool) {
	var key uint64
	for _, v := range t {
		if v < 0 || v > 255 {
			return 0, false
		}
		key = key<<8 | uint64(byte(v))
	}
	return key, true
}

// rangesPackable reports whether every stored value fits in a byte.
func (r *Relation) rangesPackable() bool {
	if r.n == 0 {
		return true
	}
	for j := 0; j < r.arity; j++ {
		if r.colMin[j] < 0 || r.colMax[j] > 255 {
			return false
		}
	}
	return true
}

// FromTuples builds a relation over attrs containing the given tuples
// (duplicates are collapsed). It panics if a tuple has the wrong arity.
func FromTuples(attrs []Attr, tuples []Tuple) *Relation {
	r := New(attrs)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return r.n }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.n == 0 }

// Attrs returns the schema in column order. The caller must not modify it.
func (r *Relation) Attrs() []Attr { return r.attrs }

// HasAttr reports whether a is in the schema.
func (r *Relation) HasAttr(a Attr) bool {
	_, ok := r.pos[a]
	return ok
}

// Pos returns the column index of attribute a, or -1 if absent.
func (r *Relation) Pos(a Attr) int {
	if i, ok := r.pos[a]; ok {
		return i
	}
	return -1
}

// row returns stored row i as a slice into the arena. The caller must not
// modify it.
func (r *Relation) row(i int) Tuple {
	return r.data[i*r.arity : (i+1)*r.arity]
}

// isShared reports whether storage is shared with another relation.
func (r *Relation) isShared() bool { return atomic.LoadUint32(&r.shared) != 0 }

// markShared flags the relation's storage as shared.
func (r *Relation) markShared() { atomic.StoreUint32(&r.shared, 1) }

// privatize unshares storage after a zero-copy Rename so a mutation on
// this relation cannot corrupt its sibling: the dedup table and range
// metadata are copied, and the arena is capacity-capped so the next
// append reallocates instead of writing into the shared backing array.
func (r *Relation) privatize() {
	r.data = r.data[: r.n*r.arity : r.n*r.arity]
	r.keys = append([]uint64(nil), r.keys...)
	r.refs = append([]int32(nil), r.refs...)
	r.colMin = append([]Value(nil), r.colMin...)
	r.colMax = append([]Value(nil), r.colMax...)
	atomic.StoreUint32(&r.shared, 0)
}

// stage returns a writable scratch row at the end of the arena, growing
// it if needed. The caller fills the row and calls commitStaged; staged
// data is simply abandoned (overwritten by the next stage) if the row
// turns out to be a duplicate.
func (r *Relation) stage() Tuple {
	if r.isShared() {
		r.privatize()
	}
	need := (r.n + 1) * r.arity
	if need > cap(r.data) {
		newCap := 2 * cap(r.data)
		if minCap := 64 * r.arity; newCap < minCap {
			newCap = minCap
		}
		if newCap < need {
			newCap = need
		}
		nd := make([]Value, r.n*r.arity, newCap)
		copy(nd, r.data)
		r.data = nd
	}
	return r.data[r.n*r.arity : need]
}

// commitStaged deduplicates the staged row t (which must be the slice
// returned by the last stage call) and keeps it when new, reporting
// whether it was inserted.
func (r *Relation) commitStaged(t Tuple) bool {
	if r.stale {
		r.ensureDedup()
	}
	var key uint64
	if r.exact {
		k, ok := packKey(t)
		if !ok {
			r.migrateHashed()
			key = hashRow(t)
		} else {
			key = k
		}
	} else {
		key = hashRow(t)
	}
	if !r.dedupInsert(key, t) {
		return false
	}
	r.data = r.data[:(r.n+1)*r.arity]
	if r.n == 0 {
		copy(r.colMin, t)
		copy(r.colMax, t)
	} else {
		for j, v := range t {
			if v < r.colMin[j] {
				r.colMin[j] = v
			}
			if v > r.colMax[j] {
				r.colMax[j] = v
			}
		}
	}
	r.n++
	return true
}

// Add inserts the tuple if not already present and reports whether it was
// inserted. The tuple is copied; the caller keeps ownership of t.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation.Add: tuple arity %d != schema arity %d", len(t), r.arity))
	}
	row := r.stage()
	copy(row, t)
	return r.commitStaged(row)
}

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity || r.n == 0 {
		return false
	}
	r.ensureDedup()
	if r.exact {
		k, ok := packKey(t)
		if !ok {
			// Out-of-range tuples cannot be in a packed relation.
			return false
		}
		return r.dedupContains(k, t)
	}
	return r.dedupContains(hashRow(t), t)
}

// Tuples returns the rows in insertion order. The caller must not modify
// the returned slices.
func (r *Relation) Tuples() []Tuple {
	if len(r.hdrs) != r.n {
		hdrs := make([]Tuple, r.n)
		for i := range hdrs {
			hdrs[i] = r.row(i)
		}
		r.hdrs = hdrs
	}
	return r.hdrs
}

// Each calls f for every tuple until f returns false.
func (r *Relation) Each(f func(Tuple) bool) {
	for i := 0; i < r.n; i++ {
		if !f(r.row(i)) {
			return
		}
	}
}

// Value returns the value of attribute a in tuple t (which must belong to
// this relation's schema).
func (r *Relation) Value(t Tuple, a Attr) Value {
	return t[r.pos[a]]
}

// Bytes approximates the relation's resident memory in bytes: the tuple
// arena plus the dedup table. It is the accounting unit of the engine's
// subplan result cache; approximation (headers and the attribute schema
// are ignored) is fine there because cached relations are dominated by
// their arenas.
func (r *Relation) Bytes() int64 {
	return int64(cap(r.data))*4 + int64(len(r.keys))*8 + int64(len(r.refs))*4
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	return &Relation{
		attrs:  r.attrs,
		pos:    r.pos,
		arity:  r.arity,
		data:   append([]Value(nil), r.data...),
		n:      r.n,
		exact:  r.exact,
		keys:   append([]uint64(nil), r.keys...),
		refs:   append([]int32(nil), r.refs...),
		used:   r.used,
		colMin: append([]Value(nil), r.colMin...),
		colMax: append([]Value(nil), r.colMax...),
		stale:  r.stale,
	}
}

// Equal reports whether r and o contain the same set of tuples over the
// same set of attributes, regardless of column order.
func (r *Relation) Equal(o *Relation) bool {
	if r.arity != o.arity || r.n != o.n {
		return false
	}
	perm := make([]int, r.arity)
	for i, a := range r.attrs {
		j, ok := o.pos[a]
		if !ok {
			return false
		}
		perm[i] = j
	}
	buf := make(Tuple, r.arity)
	for i := 0; i < o.n; i++ {
		t := o.row(i)
		for j := range perm {
			buf[j] = t[perm[j]]
		}
		if !r.Contains(buf) {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples sorted lexicographically. Useful for
// deterministic output in tests and examples.
func (r *Relation) SortedTuples() []Tuple {
	out := make([]Tuple, r.n)
	copy(out, r.Tuples())
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// String renders the relation compactly: attrs then sorted tuples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, a := range r.attrs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "x%d", a)
	}
	b.WriteString("){")
	for i, t := range r.SortedTuples() {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString("(")
		for j, v := range t {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteString(")")
	}
	b.WriteString("}")
	return b.String()
}
