// Package cq defines conjunctive (project-join) queries and the databases
// they are evaluated over.
//
// A conjunctive query is an expression π_{x1..xn}(R1 ⋈ ... ⋈ Rm): a list of
// atoms, each naming a database relation and binding its columns to query
// variables, plus a list of free variables (the target schema). Boolean
// queries have an empty target schema; the paper emulates them with a
// single free variable, and both conventions are supported here.
package cq

import (
	"fmt"
	"sort"

	"projpush/internal/relation"
)

// Var identifies a query variable (equivalently, an attribute of an
// intermediate relation). Variables double as relation attributes so plans
// can be built without a renaming layer.
type Var = relation.Attr

// Atom is one occurrence of a database relation in the join, with its
// columns bound to query variables. The same variable may appear in
// multiple atoms (that is what the join enforces) but — as in the paper's
// queries — not twice within a single atom.
type Atom struct {
	// Rel names the database relation.
	Rel string
	// Args binds the relation's columns, in order, to query variables.
	Args []Var
}

// Vars returns the atom's variables (its Args).
func (a Atom) Vars() []Var { return a.Args }

// HasVar reports whether v occurs in the atom.
func (a Atom) HasVar(v Var) bool {
	for _, x := range a.Args {
		if x == v {
			return true
		}
	}
	return false
}

// String renders the atom as rel(x0,x1,...).
func (a Atom) String() string {
	s := a.Rel + "("
	for i, v := range a.Args {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("x%d", v)
	}
	return s + ")"
}

// Query is a project-join (conjunctive) query.
type Query struct {
	// Atoms is the join list, in the order the query presents them; the
	// straightforward method evaluates them in exactly this order.
	Atoms []Atom
	// Free is the target schema. Empty means a truly Boolean query; the
	// paper's experiments use a single free variable instead ("we emulate
	// Boolean queries by including only a single variable in the
	// projection").
	Free []Var
}

// Database maps relation names to relations. The paper's databases are
// tiny — a single 6-tuple binary relation for 3-COLOR — but any relations
// fit.
type Database map[string]*relation.Relation

// Vars returns all variables of the query in order of first occurrence
// (atoms first, then any free variables that appear in no atom).
func (q *Query) Vars() []Var {
	seen := make(map[Var]bool)
	var out []Var
	add := func(v Var) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, a := range q.Atoms {
		for _, v := range a.Args {
			add(v)
		}
	}
	for _, v := range q.Free {
		add(v)
	}
	return out
}

// NumVars returns the number of distinct variables.
func (q *Query) NumVars() int { return len(q.Vars()) }

// IsBoolean reports whether the query has at most one free variable, the
// paper's operational notion of a Boolean query (nonempty vs empty result).
func (q *Query) IsBoolean() bool { return len(q.Free) <= 1 }

// IsFree reports whether v is in the target schema.
func (q *Query) IsFree(v Var) bool {
	for _, f := range q.Free {
		if f == v {
			return true
		}
	}
	return false
}

// Occurrences returns, for each variable, the indexes of the atoms it
// occurs in (ascending).
func (q *Query) Occurrences() map[Var][]int {
	occ := make(map[Var][]int)
	for i, a := range q.Atoms {
		for _, v := range a.Args {
			if n := len(occ[v]); n == 0 || occ[v][n-1] != i {
				occ[v] = append(occ[v], i)
			}
		}
	}
	return occ
}

// FirstOccurrence returns min_occur: for each variable the index of the
// first atom containing it (the paper's min_occur array).
func (q *Query) FirstOccurrence() map[Var]int {
	m := make(map[Var]int)
	for i, a := range q.Atoms {
		for _, v := range a.Args {
			if _, ok := m[v]; !ok {
				m[v] = i
			}
		}
	}
	return m
}

// LastOccurrence returns max_occur: for each variable the index of the
// last atom containing it. Free variables are reported as occurring at
// index len(Atoms) — one past the end — matching the paper's trick of
// setting max_occur[j] = |E|+1 for free vertices so they stay live.
func (q *Query) LastOccurrence() map[Var]int {
	m := make(map[Var]int)
	for i, a := range q.Atoms {
		for _, v := range a.Args {
			m[v] = i
		}
	}
	for _, v := range q.Free {
		m[v] = len(q.Atoms)
	}
	return m
}

// Validate checks the query is well formed over db: every atom names an
// existing relation with matching arity, no atom repeats a variable, and
// every free variable occurs in some atom.
func (q *Query) Validate(db Database) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query has no atoms")
	}
	occ := q.Occurrences()
	for i, a := range q.Atoms {
		rel, ok := db[a.Rel]
		if !ok {
			return fmt.Errorf("cq: atom %d references unknown relation %q", i, a.Rel)
		}
		if rel.Arity() != len(a.Args) {
			return fmt.Errorf("cq: atom %d arity %d != relation %q arity %d",
				i, len(a.Args), a.Rel, rel.Arity())
		}
		seen := make(map[Var]bool, len(a.Args))
		for _, v := range a.Args {
			if seen[v] {
				return fmt.Errorf("cq: atom %d repeats variable x%d", i, v)
			}
			seen[v] = true
		}
	}
	for _, v := range q.Free {
		if len(occ[v]) == 0 {
			return fmt.Errorf("cq: free variable x%d occurs in no atom", v)
		}
	}
	return nil
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{
		Atoms: make([]Atom, len(q.Atoms)),
		Free:  append([]Var(nil), q.Free...),
	}
	for i, a := range q.Atoms {
		c.Atoms[i] = Atom{Rel: a.Rel, Args: append([]Var(nil), a.Args...)}
	}
	return c
}

// Permute returns a copy of the query with atoms reordered by perm:
// result.Atoms[i] = q.Atoms[perm[i]]. perm must be a permutation of
// 0..len(Atoms)-1.
func (q *Query) Permute(perm []int) (*Query, error) {
	if len(perm) != len(q.Atoms) {
		return nil, fmt.Errorf("cq: permutation length %d != %d atoms", len(perm), len(q.Atoms))
	}
	used := make([]bool, len(perm))
	c := q.Clone()
	for i, p := range perm {
		if p < 0 || p >= len(perm) || used[p] {
			return nil, fmt.Errorf("cq: invalid permutation %v", perm)
		}
		used[p] = true
		c.Atoms[i] = q.Atoms[p]
	}
	return c, nil
}

// String renders the query as π_{x..}(atom ⋈ atom ⋈ ...).
func (q *Query) String() string {
	s := "π{"
	for i, v := range q.Free {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("x%d", v)
	}
	s += "}("
	for i, a := range q.Atoms {
		if i > 0 {
			s += " ⋈ "
		}
		s += a.String()
	}
	return s + ")"
}

// CanonicalDatabase builds the Chandra–Merlin canonical database of q: the
// query itself viewed as data, with each variable frozen into a distinct
// domain value. It returns the database and the frozen value assigned to
// each variable. Evaluating another query q' over this database decides
// the homomorphism q' → q, the core test of containment and minimization.
func CanonicalDatabase(q *Query) (Database, map[Var]relation.Value) {
	vars := q.Vars()
	sort.Ints(vars)
	frozen := make(map[Var]relation.Value, len(vars))
	for i, v := range vars {
		frozen[v] = relation.Value(i)
	}
	db := make(Database)
	for _, a := range q.Atoms {
		rel, ok := db[a.Rel]
		if !ok {
			attrs := make([]relation.Attr, len(a.Args))
			for i := range attrs {
				attrs[i] = i
			}
			rel = relation.New(attrs)
			db[a.Rel] = rel
		}
		t := make(relation.Tuple, len(a.Args))
		for i, v := range a.Args {
			t[i] = frozen[v]
		}
		rel.Add(t)
	}
	return db, frozen
}
