package cq

// Normalize returns a copy of the query with variables renamed to
// 0..n-1 in first-occurrence order, plus the mapping applied. Normalized
// queries make cross-query comparison and canonical hashing sane:
// structurally identical queries normalize to identical atom lists.
func Normalize(q *Query) (*Query, map[Var]Var) {
	m := make(map[Var]Var)
	next := 0
	get := func(v Var) Var {
		if nv, ok := m[v]; ok {
			return nv
		}
		m[v] = next
		next++
		return m[v]
	}
	out := &Query{
		Atoms: make([]Atom, len(q.Atoms)),
		Free:  make([]Var, len(q.Free)),
	}
	for i, a := range q.Atoms {
		args := make([]Var, len(a.Args))
		for j, v := range a.Args {
			args[j] = get(v)
		}
		out.Atoms[i] = Atom{Rel: a.Rel, Args: args}
	}
	for i, v := range q.Free {
		out.Free[i] = get(v)
	}
	return out, m
}

// Fingerprint returns a canonical string for the query: its rendering
// after normalization. Two queries have equal fingerprints iff they are
// identical up to variable renaming (atom order matters — reordered
// atoms are different syntactic queries even when semantically equal; use
// package minimize for semantic equivalence).
func Fingerprint(q *Query) string {
	n, _ := Normalize(q)
	return n.String()
}
