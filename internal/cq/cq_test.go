package cq

import (
	"testing"

	"projpush/internal/relation"
)

func edgeDB() Database {
	e := relation.New([]relation.Attr{0, 1})
	for i := relation.Value(0); i < 3; i++ {
		for j := relation.Value(0); j < 3; j++ {
			if i != j {
				e.Add(relation.Tuple{i, j})
			}
		}
	}
	return Database{"edge": e}
}

func triangle() *Query {
	return &Query{
		Atoms: []Atom{
			{Rel: "edge", Args: []Var{0, 1}},
			{Rel: "edge", Args: []Var{1, 2}},
			{Rel: "edge", Args: []Var{2, 0}},
		},
		Free: []Var{0},
	}
}

func TestVarsOrderOfFirstOccurrence(t *testing.T) {
	q := &Query{
		Atoms: []Atom{
			{Rel: "edge", Args: []Var{3, 1}},
			{Rel: "edge", Args: []Var{1, 0}},
		},
		Free: []Var{0},
	}
	vars := q.Vars()
	want := []Var{3, 1, 0}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
	if q.NumVars() != 3 {
		t.Fatalf("NumVars = %d, want 3", q.NumVars())
	}
}

func TestIsBooleanAndIsFree(t *testing.T) {
	q := triangle()
	if !q.IsBoolean() {
		t.Fatal("single-free-var query must report Boolean")
	}
	if !q.IsFree(0) || q.IsFree(1) {
		t.Fatal("IsFree wrong")
	}
	q.Free = []Var{0, 1}
	if q.IsBoolean() {
		t.Fatal("two-free-var query must not report Boolean")
	}
}

func TestOccurrences(t *testing.T) {
	q := triangle()
	occ := q.Occurrences()
	if got := occ[1]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("occ[1] = %v, want [0 1]", got)
	}
	first := q.FirstOccurrence()
	last := q.LastOccurrence()
	if first[2] != 1 || last[2] != 2 {
		t.Fatalf("first/last of x2 = %d/%d, want 1/2", first[2], last[2])
	}
	// Free variable x0 is pinned to one past the end.
	if last[0] != len(q.Atoms) {
		t.Fatalf("last of free x0 = %d, want %d", last[0], len(q.Atoms))
	}
}

func TestValidate(t *testing.T) {
	db := edgeDB()
	if err := triangle().Validate(db); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}

	cases := []struct {
		name string
		q    *Query
	}{
		{"no atoms", &Query{Free: []Var{0}}},
		{"unknown relation", &Query{Atoms: []Atom{{Rel: "nope", Args: []Var{0, 1}}}}},
		{"arity mismatch", &Query{Atoms: []Atom{{Rel: "edge", Args: []Var{0, 1, 2}}}}},
		{"repeated variable", &Query{Atoms: []Atom{{Rel: "edge", Args: []Var{0, 0}}}}},
		{"free var not in atoms", &Query{
			Atoms: []Atom{{Rel: "edge", Args: []Var{0, 1}}},
			Free:  []Var{9},
		}},
	}
	for _, c := range cases {
		if err := c.q.Validate(db); err == nil {
			t.Errorf("%s: Validate accepted invalid query", c.name)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	q := triangle()
	c := q.Clone()
	c.Atoms[0].Args[0] = 99
	c.Free[0] = 98
	if q.Atoms[0].Args[0] == 99 || q.Free[0] == 98 {
		t.Fatal("Clone shares storage")
	}
}

func TestPermute(t *testing.T) {
	q := triangle()
	p, err := q.Permute([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms[0].Args[0] != 2 || p.Atoms[1].Args[0] != 0 {
		t.Fatalf("permuted atoms wrong: %v", p.Atoms)
	}
	if _, err := q.Permute([]int{0, 0, 1}); err == nil {
		t.Fatal("Permute accepted non-permutation")
	}
	if _, err := q.Permute([]int{0}); err == nil {
		t.Fatal("Permute accepted wrong length")
	}
}

func TestString(t *testing.T) {
	q := triangle()
	got := q.String()
	want := "π{x0}(edge(x0,x1) ⋈ edge(x1,x2) ⋈ edge(x2,x0))"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestCanonicalDatabase(t *testing.T) {
	q := triangle()
	db, frozen := CanonicalDatabase(q)
	e := db["edge"]
	if e == nil {
		t.Fatal("canonical database missing edge relation")
	}
	if e.Len() != 3 {
		t.Fatalf("canonical edge has %d tuples, want 3", e.Len())
	}
	// Frozen values are distinct.
	seen := map[relation.Value]bool{}
	for _, v := range frozen {
		if seen[v] {
			t.Fatal("frozen values collide")
		}
		seen[v] = true
	}
	// Each atom appears as a tuple.
	for _, a := range q.Atoms {
		tup := relation.Tuple{frozen[a.Args[0]], frozen[a.Args[1]]}
		if !e.Contains(tup) {
			t.Fatalf("canonical database missing tuple for %v", a)
		}
	}
}

func TestCanonicalDatabaseSharedRelation(t *testing.T) {
	// Two atoms over the same relation collapse into one canonical
	// relation with both tuples.
	q := &Query{
		Atoms: []Atom{
			{Rel: "r", Args: []Var{0, 1}},
			{Rel: "r", Args: []Var{1, 2}},
		},
		Free: []Var{0},
	}
	db, _ := CanonicalDatabase(q)
	if db["r"].Len() != 2 {
		t.Fatalf("canonical r has %d tuples, want 2", db["r"].Len())
	}
}

func TestAtomString(t *testing.T) {
	a := Atom{Rel: "edge", Args: []Var{4, 7}}
	if a.String() != "edge(x4,x7)" {
		t.Fatalf("Atom.String = %q", a.String())
	}
	if !a.HasVar(4) || a.HasVar(5) {
		t.Fatal("HasVar wrong")
	}
}

func TestNormalize(t *testing.T) {
	q := &Query{
		Atoms: []Atom{
			{Rel: "edge", Args: []Var{7, 3}},
			{Rel: "edge", Args: []Var{3, 9}},
		},
		Free: []Var{9},
	}
	n, m := Normalize(q)
	if n.Atoms[0].Args[0] != 0 || n.Atoms[0].Args[1] != 1 ||
		n.Atoms[1].Args[0] != 1 || n.Atoms[1].Args[1] != 2 {
		t.Fatalf("normalized atoms: %v", n.Atoms)
	}
	if n.Free[0] != 2 {
		t.Fatalf("normalized free: %v", n.Free)
	}
	if m[7] != 0 || m[3] != 1 || m[9] != 2 {
		t.Fatalf("mapping: %v", m)
	}
	// Original untouched.
	if q.Atoms[0].Args[0] != 7 {
		t.Fatal("Normalize mutated input")
	}
}

func TestFingerprintRenamingInvariance(t *testing.T) {
	a := &Query{
		Atoms: []Atom{{Rel: "edge", Args: []Var{5, 8}}, {Rel: "edge", Args: []Var{8, 2}}},
		Free:  []Var{5},
	}
	b := &Query{
		Atoms: []Atom{{Rel: "edge", Args: []Var{0, 1}}, {Rel: "edge", Args: []Var{1, 2}}},
		Free:  []Var{0},
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("renamed queries fingerprint differently:\n%s\n%s",
			Fingerprint(a), Fingerprint(b))
	}
	c := b.Clone()
	c.Free = []Var{1}
	if Fingerprint(b) == Fingerprint(c) {
		t.Fatal("different target schemas must fingerprint differently")
	}
	d := b.Clone()
	d.Atoms[0], d.Atoms[1] = d.Atoms[1], d.Atoms[0]
	if Fingerprint(b) == Fingerprint(d) {
		t.Fatal("atom order is part of the fingerprint")
	}
}
