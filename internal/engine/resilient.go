package engine

import (
	"context"
	"errors"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

// ExecResilient runs a plan with graceful method degradation: when the
// given plan blows a resource limit (row cap or byte budget) or hits an
// internal fault, progressively safer plans from the fallback ladder are
// tried instead of giving up. This mirrors how the paper's methods relate
// in practice: the straightforward method legitimately explodes on
// treewidth-bounded instances where early projection or bucket
// elimination stays polynomial, so a failure of the former is an
// instruction to re-plan, not a property of the query.

// Fallback is one rung of a degradation ladder: a plan construction (or
// a plan-free execution strategy) to try when the previous rung failed
// degradably.
type Fallback struct {
	// Name labels the rung in Stats.Attempts (typically the method name).
	Name string
	// Build constructs the rung's plan. It runs only if the rung is
	// reached, so expensive plan construction is paid on demand.
	Build func() (plan.Node, error)
	// Run, when non-nil, executes the rung directly instead of building
	// a plan — for strategies that are not plan-shaped, like the
	// Yannakakis full reducer (ExecYannakakisContext). Build is ignored
	// when Run is set. Run must return a non-nil Result even on
	// failure, as the engine's entry points do.
	Run func(ctx context.Context, db cq.Database, opt Options) (*Result, error)
}

// Attempt records one rung of an ExecResilient run.
type Attempt struct {
	// Method is the rung's label ("given" for the initial plan).
	Method string
	// Err is the failure, empty for the succeeding attempt. Plan
	// construction failures are prefixed "plan: ".
	Err string
	// Elapsed, MaxRows and Bytes summarize how far the attempt got.
	Elapsed time.Duration
	MaxRows int
	Bytes   int64
}

// Degradable reports whether an execution error warrants retrying with a
// safer plan: resource exhaustion (ErrRowLimit, ErrMemLimit) and internal
// faults (ErrInternal) do; timeouts and cancellations do not — the caller
// asked the run to stop, and a safer method cannot un-expire a deadline.
func Degradable(err error) bool {
	return errors.Is(err, ErrRowLimit) || errors.Is(err, ErrMemLimit) || errors.Is(err, ErrInternal)
}

// ExecResilient evaluates the plan over db under opt, retrying down the
// fallback ladder on degradable failures. The given plan runs first with
// the given worker count; fallback rungs run sequentially (workers = 1) —
// the safest configuration, with no worker pools to fault and the
// smallest memory turnover. Every attempt gets a fresh byte budget and
// timeout.
//
// The returned Result carries the succeeding attempt's stats, with
// Stats.Attempts listing every rung tried in order. When every rung
// fails, the last rung's result and error are returned (Attempts still
// records the full history).
func ExecResilient(ctx context.Context, n plan.Node, fallbacks []Fallback,
	db cq.Database, opt Options, workers int) (*Result, error) {

	given := Fallback{Name: "given", Build: func() (plan.Node, error) { return n, nil }}
	return ExecResilientStrategy(ctx, given, fallbacks, db, opt, workers)
}

// ExecResilientStrategy is ExecResilient with an arbitrary first rung:
// the server's Yannakakis routing leads with a Run-style rung
// (resilience.YannakakisRung) and degrades to plan-based methods. Only
// the first rung may use the parallel executor (and only when it is
// plan-based); fallback rungs run sequentially, as in ExecResilient.
func ExecResilientStrategy(ctx context.Context, first Fallback, fallbacks []Fallback,
	db cq.Database, opt Options, workers int) (*Result, error) {

	var attempts []Attempt
	// try executes one rung under o; ok is false when plan construction
	// failed (the attempt is recorded with a "plan: " prefix and the
	// caller keeps the previous rung's result and error).
	try := func(fb Fallback, isFirst bool, o Options) (res *Result, err error, ok bool) {
		if fb.Run != nil {
			res, err = fb.Run(ctx, db, o)
		} else {
			var p plan.Node
			p, err = fb.Build()
			if err != nil {
				attempts = append(attempts, Attempt{Method: fb.Name, Err: "plan: " + err.Error()})
				return nil, err, false
			}
			if isFirst && workers > 1 {
				res, err = ExecParallelContext(ctx, p, db, o, workers)
			} else {
				res, err = ExecContext(ctx, p, db, o)
			}
		}
		a := Attempt{Method: fb.Name}
		if res != nil {
			a.Elapsed = res.Stats.Elapsed
			a.MaxRows = res.Stats.MaxRows
			a.Bytes = res.Stats.Bytes
		}
		if err != nil {
			a.Err = err.Error()
		}
		attempts = append(attempts, a)
		return res, err, true
	}
	// runRung is the retry-with-spill wrapper: with Options.SpillDir set,
	// every rung runs in-memory first (spill disarmed) and, on
	// ErrMemLimit, re-runs the same strategy once with spilling armed —
	// recorded as its own "<rung>+spill" attempt — before the ladder
	// falls to the next rung. Spill retries run sequentially: the
	// parallel executor ignores SpillDir.
	runRung := func(fb Fallback, isFirst bool) (*Result, error, bool) {
		if opt.SpillDir == "" {
			return try(fb, isFirst, opt)
		}
		mem := opt
		mem.SpillDir = ""
		res, err, ok := try(fb, isFirst, mem)
		if !ok || err == nil || !errors.Is(err, ErrMemLimit) {
			return res, err, ok
		}
		sp := fb
		sp.Name = fb.Name + "+spill"
		return try(sp, false, opt)
	}

	res, err, _ := runRung(first, true)
	for _, fb := range fallbacks {
		if err == nil || !Degradable(err) {
			break
		}
		r, e, ok := runRung(fb, false)
		if !ok {
			continue
		}
		res, err = r, e
	}
	if res != nil {
		res.Stats.Attempts = attempts
	}
	return res, err
}
