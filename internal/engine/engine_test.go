package engine

import (
	"errors"
	"testing"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// edgeDB returns the paper's 3-COLOR database: one binary relation with
// the six pairs of distinct colors.
func edgeDB() cq.Database {
	e := relation.New([]relation.Attr{0, 1})
	for i := relation.Value(0); i < 3; i++ {
		for j := relation.Value(0); j < 3; j++ {
			if i != j {
				e.Add(relation.Tuple{i, j})
			}
		}
	}
	return cq.Database{"edge": e}
}

func scan(vars ...cq.Var) plan.Node {
	return &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: vars}}
}

func straightforward(q *cq.Query) plan.Node {
	nodes := make([]plan.Node, len(q.Atoms))
	for i, a := range q.Atoms {
		nodes[i] = &plan.Scan{Atom: a}
	}
	return &plan.Project{Child: plan.LeftDeepJoin(nodes), Cols: q.Free}
}

func cycleQuery(n int) *cq.Query {
	q := &cq.Query{Free: []cq.Var{0}}
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "edge", Args: []cq.Var{i, (i + 1) % n}})
	}
	return q
}

func TestExecTriangleColorable(t *testing.T) {
	q := cycleQuery(3)
	res, err := Exec(straightforward(q), edgeDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonempty() {
		t.Fatal("triangle is 3-colorable; result must be nonempty")
	}
	// π_{v0} over a satisfiable symmetric instance yields all 3 colors.
	if res.Rel.Len() != 3 {
		t.Fatalf("result len = %d, want 3", res.Rel.Len())
	}
}

func TestExecOddWheelNotColorable(t *testing.T) {
	// K4 is 3-colorable; build K4 plus an edge forced monochromatic?
	// Simpler known non-3-colorable graph: K4 is colorable, W5 (odd wheel)
	// is not. Wheel: hub 0, cycle 1..5.
	q := &cq.Query{Free: []cq.Var{0}}
	for i := 1; i <= 5; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "edge", Args: []cq.Var{0, i}})
		next := i%5 + 1
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "edge", Args: []cq.Var{i, next}})
	}
	res, err := Exec(straightforward(q), edgeDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nonempty() {
		t.Fatal("odd wheel W5 is not 3-colorable; result must be empty")
	}
}

func TestExecStats(t *testing.T) {
	q := cycleQuery(4)
	res, err := Exec(straightforward(q), edgeDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Joins != 3 || s.Projections != 1 {
		t.Fatalf("operator counts: %+v", s)
	}
	if s.MaxArity != 4 {
		t.Fatalf("MaxArity = %d, want 4 (straightforward keeps all columns)", s.MaxArity)
	}
	if s.MaxRows == 0 || s.Tuples == 0 || s.Work == 0 {
		t.Fatalf("instrumentation not collected: %+v", s)
	}
	if s.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
}

func TestExecRowCap(t *testing.T) {
	q := cycleQuery(8)
	_, err := Exec(straightforward(q), edgeDB(), Options{MaxRows: 10})
	if !errors.Is(err, ErrRowLimit) {
		t.Fatalf("err = %v, want ErrRowLimit", err)
	}
}

func TestExecTimeout(t *testing.T) {
	q := cycleQuery(14)
	_, err := Exec(straightforward(q), edgeDB(), Options{Timeout: time.Nanosecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestExecUnknownRelation(t *testing.T) {
	p := &plan.Scan{Atom: cq.Atom{Rel: "nope", Args: []cq.Var{0, 1}}}
	if _, err := Exec(p, edgeDB(), Options{}); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}

func TestExecArityMismatch(t *testing.T) {
	p := &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{0, 1, 2}}}
	if _, err := Exec(p, edgeDB(), Options{}); err == nil {
		t.Fatal("expected error for arity mismatch")
	}
}

func TestExecProjectionPushedPlanSameAnswer(t *testing.T) {
	// Path of length 3: early-projection plan vs straightforward.
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "edge", Args: []cq.Var{0, 1}},
			{Rel: "edge", Args: []cq.Var{1, 2}},
			{Rel: "edge", Args: []cq.Var{2, 3}},
		},
		Free: []cq.Var{0},
	}
	pushed := &plan.Project{
		Child: &plan.Join{
			Left: &plan.Project{
				Child: &plan.Join{Left: scan(0, 1), Right: scan(1, 2)},
				Cols:  []cq.Var{0, 2},
			},
			Right: scan(2, 3),
		},
		Cols: []cq.Var{0},
	}
	db := edgeDB()
	a, err := Exec(straightforward(q), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exec(pushed, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel.Equal(b.Rel) {
		t.Fatal("projection-pushed plan disagrees with straightforward plan")
	}
	if b.Stats.MaxArity >= a.Stats.MaxArity {
		t.Fatalf("pushed MaxArity %d not below straightforward %d",
			b.Stats.MaxArity, a.Stats.MaxArity)
	}
}

func TestOracleMatchesExec(t *testing.T) {
	db := edgeDB()
	for _, n := range []int{3, 4, 5, 6, 7} {
		q := cycleQuery(n)
		res, err := Exec(straightforward(q), db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		or, err := EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.Equal(or) {
			t.Fatalf("cycle %d: executor %v != oracle %v", n, res.Rel, or)
		}
		// Odd cycles are 3-colorable (n>=3 odd cycles are colorable with 3
		// colors); all cycles except nothing... every cycle with n>=3 is
		// 3-colorable, so results must be nonempty.
		if res.Rel.Empty() {
			t.Fatalf("cycle %d should be 3-colorable", n)
		}
	}
}

func TestOracleNonBoolean(t *testing.T) {
	q := cycleQuery(3)
	q.Free = []cq.Var{0, 1}
	or, err := EvalOracle(q, edgeDB())
	if err != nil {
		t.Fatal(err)
	}
	// Triangle colorings: 6 total; projected to two vertices: all 6
	// ordered distinct pairs.
	if or.Len() != 6 {
		t.Fatalf("oracle len = %d, want 6", or.Len())
	}
	res, err := Exec(straightforward(q), edgeDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(or) {
		t.Fatal("non-Boolean: executor disagrees with oracle")
	}
}

func TestOracleTrulyBooleanQuery(t *testing.T) {
	q := cycleQuery(3)
	q.Free = nil
	or, err := EvalOracle(q, edgeDB())
	if err != nil {
		t.Fatal(err)
	}
	if or.Arity() != 0 || or.Len() != 1 {
		t.Fatalf("nullary oracle result: arity=%d len=%d, want 0,1", or.Arity(), or.Len())
	}
	ok, err := OracleNonempty(q, edgeDB())
	if err != nil || !ok {
		t.Fatalf("OracleNonempty = %v, %v", ok, err)
	}
}

func TestOracleInvalidQuery(t *testing.T) {
	q := &cq.Query{Atoms: []cq.Atom{{Rel: "nope", Args: []cq.Var{0, 1}}}}
	if _, err := EvalOracle(q, edgeDB()); err == nil {
		t.Fatal("expected validation error")
	}
}
