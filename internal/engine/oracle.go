package engine

import (
	"fmt"
	"sort"

	"projpush/internal/cq"
	"projpush/internal/relation"
)

// EvalOracle evaluates the conjunctive query by straightforward
// backtracking search over variable assignments, with no relational
// algebra involved. It exists as an independent correctness oracle for the
// plan-based evaluation paths: every optimization method must produce the
// same relation this function produces.
//
// It enumerates assignments variable by variable (in first-occurrence
// order), pruning with every atom whose variables are fully assigned, and
// collects the distinct projections onto the free variables. It is
// exponential and intended for small queries in tests.
func EvalOracle(q *cq.Query, db cq.Database) (*relation.Relation, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}

	vars := q.Vars()
	varIdx := make(map[cq.Var]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}

	// Candidate domain per variable: the distinct values seen in any
	// column the variable is bound to (intersected across atoms).
	domains := make([][]relation.Value, len(vars))
	for i, v := range vars {
		var dom map[relation.Value]bool
		for _, a := range q.Atoms {
			for col, av := range a.Args {
				if av != v {
					continue
				}
				colVals := make(map[relation.Value]bool)
				rel := db[a.Rel]
				attr := rel.Attrs()[col]
				rel.Each(func(t relation.Tuple) bool {
					colVals[rel.Value(t, attr)] = true
					return true
				})
				if dom == nil {
					dom = colVals
				} else {
					for val := range dom {
						if !colVals[val] {
							delete(dom, val)
						}
					}
				}
			}
		}
		if dom == nil {
			return nil, fmt.Errorf("engine: variable x%d has no domain", v)
		}
		vals := make([]relation.Value, 0, len(dom))
		for val := range dom {
			vals = append(vals, val)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		domains[i] = vals
	}

	// For pruning: atoms become checkable at the depth where their last
	// variable gets assigned.
	atomDepth := make([][]cq.Atom, len(vars))
	for _, a := range q.Atoms {
		depth := 0
		for _, v := range a.Args {
			if d := varIdx[v]; d > depth {
				depth = d
			}
		}
		atomDepth[depth] = append(atomDepth[depth], a)
	}

	out := relation.New(q.Free)
	assign := make([]relation.Value, len(vars))
	freeIdx := make([]int, len(q.Free))
	for i, v := range q.Free {
		freeIdx[i] = varIdx[v]
	}

	var search func(depth int)
	search = func(depth int) {
		if depth == len(vars) {
			row := make(relation.Tuple, len(freeIdx))
			for i, j := range freeIdx {
				row[i] = assign[j]
			}
			out.Add(row)
			return
		}
		for _, val := range domains[depth] {
			assign[depth] = val
			ok := true
			for _, a := range atomDepth[depth] {
				rel := db[a.Rel]
				t := make(relation.Tuple, len(a.Args))
				for col, v := range a.Args {
					t[col] = assign[varIdx[v]]
				}
				if !rel.Contains(t) {
					ok = false
					break
				}
			}
			if ok {
				search(depth + 1)
			}
		}
	}
	search(0)
	return out, nil
}

// OracleNonempty reports whether the query has a nonempty answer according
// to the backtracking oracle.
func OracleNonempty(q *cq.Query, db cq.Database) (bool, error) {
	r, err := EvalOracle(q, db)
	if err != nil {
		return false, err
	}
	return !r.Empty(), nil
}
