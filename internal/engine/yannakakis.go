// Yannakakis full-reducer execution (ROADMAP item 2).
//
// The plan executors materialize every intermediate a plan names, and on
// low-width queries most of that work is wasted: once a join tree exists,
// a bottom-up then top-down semijoin sweep deletes every tuple that
// cannot contribute to the answer ("Algorithms for Optimizing Acyclic
// Queries", arXiv 2509.14144 — the classic Yannakakis algorithm), after
// which the bag-by-bag evaluation is output-bounded. This file implements
// that strategy over the paper's own machinery: the MCS elimination order
// (Section 5), the induced tree decomposition, and the join-expression
// tree of Algorithm 3 (internal/jointree).
//
// Execution runs in four phases over the interior nodes of the join tree:
//
//  1. bind: each bag materializes the join of the atoms hosted at it
//     (width-bounded by construction — this is the only joining that
//     happens before reduction);
//  2. bottom-up sweep: children before parents, each bag semijoin-reduces
//     its parent (relation.SemijoinFilter — in place, no copying);
//  3. top-down sweep: parents before children, each bag is reduced by its
//     parent. After both sweeps the bags are fully reduced along every
//     tree edge;
//  4. evaluate: bottom-up, each bag joins its children's results and
//     projects onto its interface with the parent (Node.Projected), the
//     root projecting onto the target schema.
//
// Tuples deleted by phase 2/3 are counted in Stats.ReducedTuples; tuples
// written by phases 1 and 4 in Stats.MaterializedTuples. Like the plan
// executors, every kernel call is context-cancellable, deadline-bounded,
// and charged against the shared MaxBytes budget; a panic anywhere in the
// sweep is isolated and surfaces as ErrInternal.
package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/jointree"
	"projpush/internal/relation"
	"projpush/internal/treedec"
)

// DefaultYannakakisWidth is the default MCS-elimination-width threshold
// below which the server and the degradation ladder prefer the Yannakakis
// full reducer: acyclic queries have elimination width at most the atom
// arity, and the full reducer's intermediates stay output-bounded while
// the width (hence bag size) is small.
const DefaultYannakakisWidth = 3

// BuildJoinTree constructs the join-expression tree the full reducer
// sweeps: MCS elimination order seeded with the target schema, the
// induced tree decomposition, then Algorithm 3. rng seeds the MCS
// tie-breaking; nil is deterministic.
func BuildJoinTree(q *cq.Query, rng *rand.Rand) (*jointree.Tree, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("engine: query has no atoms")
	}
	jg := joingraph.Build(q)
	elim := treedec.EliminationOrder(treedec.MCS(jg.G, jg.Vertices(q.Free), rng))
	dec := treedec.FromOrder(jg.G, elim)
	return jointree.FromDecomposition(q, jg, dec)
}

// MCSElimWidth returns the induced width of q's join graph under the
// (deterministic) MCS elimination order — the static signal admission
// control and the degradation ladder use to decide whether the full
// reducer should run: width ≤ DefaultYannakakisWidth means the bags stay
// small and the sweep's intermediates stay output-bounded.
func MCSElimWidth(q *cq.Query) int {
	jg := joingraph.Build(q)
	elim := treedec.EliminationOrder(treedec.MCS(jg.G, jg.Vertices(q.Free), nil))
	return treedec.InducedWidth(jg.G, elim)
}

// ybag is one interior node of the join tree during a sweep: the bag
// relation (join of the atoms hosted here; nil when the bag hosts none)
// plus the per-phase row counts EXPLAIN ANALYZE renders.
type ybag struct {
	node     *jointree.Node
	parent   *ybag
	children []*ybag
	atoms    []*cq.Atom

	rel *relation.Relation

	// Row counts per phase: after bind, after the bottom-up sweep,
	// after the top-down sweep, and the evaluated output. -1 = no bag
	// relation (the node hosts no atoms).
	bound, afterUp, afterDown, out int
}

// buildBags mirrors the interior skeleton of the join tree, splitting
// each node's children into hosted atoms and interior subtrees. Interior
// bags hosting no atoms have no relation for the sweeps to reduce — left
// in place they would cut the reduction path between their children and
// their parent — so buildBags splices them out, lifting their children to
// the grandparent. Semijoin edges stay correct under any tree surgery
// (each kernel call matches on the actual shared attributes); only the
// root may remain atom-less, and eval handles it by joining the child
// results directly.
func buildBags(n *jointree.Node, parent *ybag) *ybag {
	b := &ybag{node: n, parent: parent, bound: -1, afterUp: -1, afterDown: -1, out: -1}
	for _, c := range n.Children {
		if c.Atom != nil {
			b.atoms = append(b.atoms, c.Atom)
		} else {
			cb := buildBags(c, b)
			if len(cb.atoms) == 0 {
				for _, gc := range cb.children {
					gc.parent = b
					b.children = append(b.children, gc)
				}
			} else {
				b.children = append(b.children, cb)
			}
		}
	}
	return b
}

// preorder collects the bag tree in pre-order (parents before children).
func preorder(b *ybag, out []*ybag) []*ybag {
	out = append(out, b)
	for _, c := range b.children {
		out = preorder(c, out)
	}
	return out
}

// yexec is the full reducer's execution state: the same limits and stats
// frame as the plan executors, threaded through one shared byte counter.
type yexec struct {
	db       cq.Database
	ctx      context.Context
	deadline time.Time
	maxRows  int
	maxBytes int64
	bytes    atomic.Int64
	stats    Stats
}

func (ex *yexec) lim() *relation.Limit {
	return &relation.Limit{
		MaxRows:  ex.maxRows,
		Deadline: ex.deadline,
		Work:     &ex.stats.Work,
		Ctx:      ex.ctx,
		MaxBytes: ex.maxBytes,
		Bytes:    &ex.bytes,
	}
}

// bind resolves one atom against the database as a zero-copy renamed
// view, exactly like the plan executors' Scan.
func (ex *yexec) bind(a *cq.Atom) (*relation.Relation, error) {
	rel, ok := ex.db[a.Rel]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", a.Rel)
	}
	if rel.Arity() != len(a.Args) {
		return nil, fmt.Errorf("engine: atom %s arity mismatch with relation (%d columns)",
			a, rel.Arity())
	}
	m := make(map[relation.Attr]relation.Attr, rel.Arity())
	for i, attr := range rel.Attrs() {
		m[attr] = a.Args[i]
	}
	bound := relation.Rename(rel, m)
	observe(&ex.stats, bound)
	return bound, nil
}

// materialize computes the bag relation: the join of the atoms hosted at
// the bag. Bags host few atoms and the join's schema is bounded by the
// bag (width+1 variables), so this is the cheap, width-bounded part of
// materialization; an atom-less root (the only atom-less bag buildBags
// keeps) stays nil and is skipped by the sweeps.
func (ex *yexec) materialize(b *ybag) error {
	if len(b.atoms) == 0 {
		return nil
	}
	cur, err := ex.bind(b.atoms[0])
	if err != nil {
		return err
	}
	for _, a := range b.atoms[1:] {
		next, err := ex.bind(a)
		if err != nil {
			return err
		}
		out, err := relation.JoinLimited(cur, next, ex.lim())
		if err != nil {
			return err
		}
		ex.stats.Joins++
		ex.stats.Bytes += out.Bytes()
		ex.stats.PeakBytes += out.Bytes()
		ex.stats.MaterializedTuples += int64(out.Len())
		observe(&ex.stats, out)
		cur = out
	}
	b.rel = cur
	b.bound = cur.Len()
	return nil
}

// reduce semijoin-filters target's bag relation by source's, in place,
// crediting the deleted tuples to Stats.ReducedTuples. Bags without a
// relation neither reduce nor get reduced — correctness never depends on
// a sweep edge, only the amount of reduction does.
func (ex *yexec) reduce(target, source *ybag) error {
	if target.rel == nil || source.rel == nil {
		return nil
	}
	out, removed, err := relation.SemijoinFilter(target.rel, source.rel, ex.lim())
	if err != nil {
		return err
	}
	ex.stats.ReducedTuples += int64(removed)
	target.rel = out
	return nil
}

// eval computes the subtree result bottom-up: the bag relation joined
// with every child's result, projected onto the node's interface with
// its parent.
func (ex *yexec) eval(b *ybag) (*relation.Relation, error) {
	cur := b.rel
	for _, c := range b.children {
		cr, err := ex.eval(c)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = cr
			continue
		}
		out, err := relation.JoinLimited(cur, cr, ex.lim())
		if err != nil {
			return nil, err
		}
		ex.stats.Joins++
		ex.stats.Bytes += out.Bytes()
		ex.stats.PeakBytes += out.Bytes()
		ex.stats.MaterializedTuples += int64(out.Len())
		observe(&ex.stats, out)
		cur = out
	}
	if cur == nil {
		// Validate guarantees interior nodes have children, so a bag
		// with no atoms has interior children with results.
		return nil, fmt.Errorf("engine: yannakakis bag with no relation")
	}
	if len(b.node.Projected) != len(cur.Attrs()) {
		out, err := relation.ProjectLimited(cur, b.node.Projected, ex.lim())
		if err != nil {
			return nil, err
		}
		ex.stats.Projections++
		ex.stats.Bytes += out.Bytes()
		ex.stats.PeakBytes += out.Bytes()
		ex.stats.MaterializedTuples += int64(out.Len())
		observe(&ex.stats, out)
		cur = out
	}
	b.out = cur.Len()
	return cur, nil
}

// run executes the four phases over the bag tree, panic-isolated: a fault
// anywhere inside the sweep surfaces as a *relation.PanicError, which
// classifyErr maps to ErrInternal.
func (ex *yexec) run(t *jointree.Tree) (root *ybag, rel *relation.Relation, err error) {
	defer relation.RecoverPanic(&err)
	root = buildBags(t.Root, nil)
	order := preorder(root, nil)

	// Phase 1: bind atoms and materialize the bag relations.
	for _, b := range order {
		if err := ex.materialize(b); err != nil {
			return root, nil, err
		}
	}
	// Phase 2: bottom-up sweep. Reverse pre-order processes every
	// descendant of a node before the node itself, so when b reduces
	// its parent, b's bag already reflects b's whole subtree.
	for i := len(order) - 1; i >= 0; i-- {
		if b := order[i]; b.parent != nil {
			if err := ex.reduce(b.parent, b); err != nil {
				return root, nil, err
			}
		}
	}
	for _, b := range order {
		if b.rel != nil {
			b.afterUp = b.rel.Len()
		}
	}
	// Phase 3: top-down sweep, parents before children.
	for _, b := range order {
		if b.parent != nil {
			if err := ex.reduce(b, b.parent); err != nil {
				return root, nil, err
			}
		}
	}
	for _, b := range order {
		if b.rel != nil {
			b.afterDown = b.rel.Len()
		}
	}
	// Phase 4: bag-by-bag evaluation up the tree.
	out, err := ex.eval(root)
	if err != nil {
		return root, nil, err
	}
	// The root's schema is set-equal to the target schema (Validate);
	// align the column order with the plan executors' final projection.
	if !sameVarsOrdered(out.Attrs(), t.Query.Free) {
		final, err := relation.ProjectLimited(out, t.Query.Free, ex.lim())
		if err != nil {
			return root, nil, err
		}
		ex.stats.Projections++
		ex.stats.Bytes += final.Bytes()
		ex.stats.PeakBytes += final.Bytes()
		ex.stats.MaterializedTuples += int64(final.Len())
		observe(&ex.stats, final)
		out = final
	}
	return root, out, nil
}

func sameVarsOrdered(a []relation.Attr, b []cq.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExecYannakakis evaluates q with the full-reducer strategy. See
// ExecYannakakisContext.
func ExecYannakakis(q *cq.Query, db cq.Database, opt Options) (*Result, error) {
	return ExecYannakakisContext(context.Background(), q, db, opt)
}

// ExecYannakakisContext builds the MCS join tree for q and executes it
// with the full-reducer sweep. Errors are classified exactly like the
// plan executors' (ErrTimeout, ErrCanceled, ErrRowLimit, ErrMemLimit,
// ErrInternal); the returned Result is always non-nil and carries the
// partial stats of a failed run. The subplan cache (opt.Cache) is
// ignored: reduction mutates its inputs, so there are no immutable
// subtree results to share.
func ExecYannakakisContext(ctx context.Context, q *cq.Query, db cq.Database, opt Options) (*Result, error) {
	tree, err := BuildJoinTree(q, nil)
	if err != nil {
		return &Result{}, err
	}
	return ExecYannakakisTree(ctx, tree, db, opt)
}

// ExecYannakakisTree runs the full-reducer sweep over an already-built
// join tree.
func ExecYannakakisTree(ctx context.Context, t *jointree.Tree, db cq.Database, opt Options) (*Result, error) {
	res, _, err := execYannakakis(ctx, t, db, opt)
	return res, err
}

func execYannakakis(ctx context.Context, t *jointree.Tree, db cq.Database, opt Options) (*Result, *ybag, error) {
	ex := &yexec{
		db:       db,
		ctx:      ctx,
		maxRows:  opt.MaxRows,
		maxBytes: opt.MaxBytes,
	}
	if opt.Timeout > 0 {
		ex.deadline = time.Now().Add(opt.Timeout)
	}
	start := time.Now()
	root, rel, err := ex.run(t)
	ex.stats.Elapsed = time.Since(start)
	if err != nil {
		return &Result{Stats: ex.stats}, root, classifyErr(err, ex.stats.Elapsed)
	}
	return &Result{Rel: rel, Stats: ex.stats}, root, nil
}
