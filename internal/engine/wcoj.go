// Worst-case-optimal multiway join execution (ROADMAP item 1).
//
// Every binary-join executor in this codebase — including the
// projection-pushing plans the paper studies — can be polynomially worse
// than the AGM output bound on cyclic queries (Atserias–Grohe–Marx,
// arXiv 1711.03860): a triangle query over m-edge relations has output
// O(m^1.5), but any join tree materializes an Ω(m²) intermediate in the
// worst case. This file implements the generic/leapfrog worst-case-
// optimal alternative: pick one global variable order, index every atom's
// relation sorted by that order (relation.SortedIndex — row ids over the
// PR-1 flat arenas, no tuple copies), and extend the output one variable
// at a time by leapfrog-intersecting the participating atoms' candidate
// runs. The total work is bounded by the AGM fractional-cover bound, the
// quantity internal/server/admission.go already computes for admission.
//
// The variable order is treedec-informed and smallest-domain-first: the
// MCS order seeded with the target schema (the paper's Section 5 order,
// which puts the free variables first) with each block stably reordered
// by an upper bound on the variable's domain. Free variables occupy the
// order's prefix, so the first level at which every output attribute's
// support is complete is exactly len(Free): below it the executor stops
// at the first witness per assignment (early projection as existence
// checking) instead of enumerating the full expansion.
//
// Like the other executors: every loop polls the shared Limit at the
// relation.CheckInterval cadence (context cancellation, deadline), index
// builds and output growth are charged against Options.MaxBytes, panics
// are isolated to ErrInternal, and Stats carries per-run Seeks/Extensions
// counters that EXPLAIN ANALYZE renders per variable level.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/relation"
	"projpush/internal/treedec"
)

// DefaultWCOJAGMLog2 is the default log2 AGM-output-bound threshold under
// which the server routes cyclic queries to the worst-case-optimal
// executor and admits them even when their plan/MCS width exceeds the
// width caps: 2^24 ≈ 16M output tuples is comfortably within a single
// request's budget, while the width of such queries (cliques, dense
// k-COLOR) grows without bound.
const DefaultWCOJAGMLog2 = 24

// wcojAtom is one atom's execution state: the bound relation, its sorted
// index (columns ordered by the global variable order), and a bracket
// stack — lo[k],hi[k) is the index range consistent with the bindings of
// the atom's first k variables; lo[0],hi[0) is the whole index.
type wcojAtom struct {
	atom *cq.Atom
	rel  *relation.Relation
	cols []relation.Attr // the atom's variables in global-order sequence
	ix   *relation.SortedIndex
	lo   []int
	hi   []int
}

// wcojLevel is one variable of the global order with the atoms whose
// intersection defines the variable's candidate values.
type wcojLevel struct {
	v     cq.Var
	atoms []*wcojAtom
	depth []int // local index depth of v in the corresponding atom
	pos   []int // scratch: current index position per atom
	end   []int // scratch: end of the current value's run per atom

	// seeks counts SeekGE/SeekGT calls at this level, extensions the
	// values that survived the intersection — the leapfrog analogue of
	// probe work and output fanout, rendered by EXPLAIN ANALYZE.
	seeks, extensions int64
}

// wexec is the worst-case-optimal executor's state: the same limits and
// stats frame as the other executors, plus the variable order and the
// per-level leapfrog state.
type wexec struct {
	db       cq.Database
	q        *cq.Query
	ctx      context.Context
	deadline time.Time
	maxRows  int
	maxBytes int64
	bytes    atomic.Int64
	stats    Stats
	limit    *relation.Limit

	vars    []cq.Var
	freeCut int // levels [0,freeCut) are free; below it, existence only
	atoms   []*wcojAtom
	levels  []*wcojLevel
	assign  []relation.Value
	empty   bool // some bound relation is empty: the answer is empty

	out      *relation.Relation
	outBuf   relation.Tuple
	outSrc   []int // output column -> level index
	outBytes int64

	touched, nextCheck int64
}

func newWexec(ctx context.Context, q *cq.Query, db cq.Database, opt Options) *wexec {
	ex := &wexec{
		db:      db,
		q:       q,
		ctx:     ctx,
		maxRows: opt.MaxRows, maxBytes: opt.MaxBytes,
		nextCheck: relation.CheckInterval,
	}
	if opt.Timeout > 0 {
		ex.deadline = time.Now().Add(opt.Timeout)
	}
	ex.limit = &relation.Limit{
		MaxRows:  ex.maxRows,
		Deadline: ex.deadline,
		Work:     &ex.stats.Work,
		Ctx:      ex.ctx,
		MaxBytes: ex.maxBytes,
		Bytes:    &ex.bytes,
	}
	return ex
}

// bind resolves one atom against the database as a zero-copy renamed
// view, exactly like the other executors' Scan.
func (ex *wexec) bind(a *cq.Atom) (*relation.Relation, error) {
	rel, ok := ex.db[a.Rel]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", a.Rel)
	}
	if rel.Arity() != len(a.Args) {
		return nil, fmt.Errorf("engine: atom %s arity mismatch with relation (%d columns)",
			a, rel.Arity())
	}
	m := make(map[relation.Attr]relation.Attr, rel.Arity())
	for i, attr := range rel.Attrs() {
		m[attr] = a.Args[i]
	}
	bound := relation.Rename(rel, m)
	observe(&ex.stats, bound)
	return bound, nil
}

// prepare binds the atoms and fixes the global variable order and the
// per-level intersection structure; it does not build indexes or touch
// tuples, so EXPLAIN without ANALYZE can render the order cheaply.
func (ex *wexec) prepare() error {
	if len(ex.q.Atoms) == 0 {
		return fmt.Errorf("engine: query has no atoms")
	}
	ex.atoms = make([]*wcojAtom, len(ex.q.Atoms))
	dom := make(map[cq.Var]int) // domain upper bound: min |R| over atoms
	for i := range ex.q.Atoms {
		a := &ex.q.Atoms[i]
		rel, err := ex.bind(a)
		if err != nil {
			return err
		}
		ex.atoms[i] = &wcojAtom{atom: a, rel: rel}
		if rel.Empty() {
			ex.empty = true
		}
		for _, v := range a.Args {
			if d, ok := dom[v]; !ok || rel.Len() < d {
				dom[v] = rel.Len()
			}
		}
	}

	// MCS order seeded with the target schema (free variables first),
	// then each block stably reordered smallest-domain-first. Any global
	// order is correct for the generic join; small domains first shrink
	// the branching near the root.
	jg := joingraph.Build(ex.q)
	order := jg.VarSet(treedec.MCS(jg.G, jg.Vertices(ex.q.Free), nil))
	for _, v := range ex.q.Vars() {
		if _, ok := dom[v]; !ok {
			return fmt.Errorf("engine: wcoj variable x%d missing a binding atom", v)
		}
	}
	ex.freeCut = len(ex.q.Free)
	if ex.freeCut > len(order) {
		return fmt.Errorf("engine: wcoj order shorter than the target schema")
	}
	byDomain := func(block []cq.Var) {
		sort.SliceStable(block, func(i, j int) bool { return dom[block[i]] < dom[block[j]] })
	}
	ex.vars = append([]cq.Var(nil), order...)
	byDomain(ex.vars[:ex.freeCut])
	byDomain(ex.vars[ex.freeCut:])

	levelOf := make(map[cq.Var]int, len(ex.vars))
	ex.levels = make([]*wcojLevel, len(ex.vars))
	for d, v := range ex.vars {
		levelOf[v] = d
		ex.levels[d] = &wcojLevel{v: v}
	}
	for _, a := range ex.atoms {
		// The atom's index columns, in global order; its k-th column is
		// its local depth k.
		args := append([]cq.Var(nil), a.atom.Args...)
		sort.Slice(args, func(i, j int) bool { return levelOf[args[i]] < levelOf[args[j]] })
		a.cols = args
		for k, v := range args {
			lv := ex.levels[levelOf[v]]
			lv.atoms = append(lv.atoms, a)
			lv.depth = append(lv.depth, k)
		}
		a.lo = make([]int, len(args)+1)
		a.hi = make([]int, len(args)+1)
	}
	for _, lv := range ex.levels {
		if len(lv.atoms) == 0 {
			// Unreachable for validated queries (every variable occurs in
			// an atom), but an unconstrained variable would mean an
			// infinite domain — fail loudly rather than loop.
			return fmt.Errorf("engine: wcoj variable x%d constrained by no atom", lv.v)
		}
		lv.pos = make([]int, len(lv.atoms))
		lv.end = make([]int, len(lv.atoms))
	}

	ex.assign = make([]relation.Value, len(ex.vars))
	ex.out = relation.New(ex.q.Free)
	ex.outBuf = make(relation.Tuple, len(ex.q.Free))
	ex.outSrc = make([]int, len(ex.q.Free))
	for i, v := range ex.q.Free {
		ex.outSrc[i] = levelOf[v]
	}
	return nil
}

// execute builds the sorted indexes and runs the leapfrog enumeration.
func (ex *wexec) execute() error {
	if ex.empty {
		return nil
	}
	for _, a := range ex.atoms {
		if a.rel.Arity() == 0 {
			// A nonempty arity-0 atom is a satisfied Boolean factor.
			continue
		}
		ix, err := relation.NewSortedIndexLimited(a.rel, a.cols, ex.limit)
		if err != nil {
			return err
		}
		a.ix = ix
		ex.stats.Bytes += ix.Bytes()
		ex.stats.PeakBytes += ix.Bytes()
		a.lo[0], a.hi[0] = 0, ix.Len()
	}
	ex.stats.Joins++
	return ex.enumerate(0)
}

// tick advances the touched-tuples counter and polls for interruption at
// the kernels' cadence, so cancellation and deadlines land within a
// bounded amount of intersection work.
func (ex *wexec) tick() error {
	ex.touched++
	if ex.touched >= ex.nextCheck {
		ex.nextCheck = ex.touched + relation.CheckInterval
		return ex.limit.Interrupted()
	}
	return nil
}

// enumerate extends the assignment at level d. Levels below freeCut bind
// free variables and recurse; at freeCut every output attribute's support
// is complete, so the remaining levels are checked for a single witness
// (exists) and the assignment is emitted — the executor's early
// projection.
func (ex *wexec) enumerate(d int) error {
	if d == ex.freeCut {
		found, err := ex.exists(d)
		if err != nil {
			return err
		}
		if found {
			return ex.emit()
		}
		return nil
	}
	_, err := ex.intersect(d, func() (bool, error) {
		return false, ex.enumerate(d + 1)
	})
	return err
}

// exists reports whether the current partial assignment extends to a full
// one, stopping at the first witness.
func (ex *wexec) exists(d int) (bool, error) {
	if d == len(ex.vars) {
		return true, nil
	}
	return ex.intersect(d, func() (bool, error) {
		return ex.exists(d + 1)
	})
}

// intersect runs the leapfrog intersection at level d: the participating
// atoms' current brackets each hold a sorted run of candidate values; the
// laggards repeatedly gallop to the maximum until all agree, each agreed
// value narrows every atom's bracket to that value's run and visits the
// next level. visit returns stop=true to end the enumeration early (the
// existence check's first witness); intersect reports whether it was
// stopped.
func (ex *wexec) intersect(d int, visit func() (bool, error)) (bool, error) {
	lv := ex.levels[d]
	for i, a := range lv.atoms {
		k := lv.depth[i]
		if a.lo[k] >= a.hi[k] {
			return false, nil
		}
		lv.pos[i] = a.lo[k]
	}
	for {
		// The current candidate is the maximum of the atoms' cursor
		// values; any atom below it can never match a smaller value.
		vmax := lv.atoms[0].ix.Value(lv.pos[0], lv.depth[0])
		allEqual := true
		for i := 1; i < len(lv.atoms); i++ {
			v := lv.atoms[i].ix.Value(lv.pos[i], lv.depth[i])
			if v != vmax {
				allEqual = false
				if v > vmax {
					vmax = v
				}
			}
		}
		if !allEqual {
			for i, a := range lv.atoms {
				k := lv.depth[i]
				if a.ix.Value(lv.pos[i], k) < vmax {
					lv.pos[i] = a.ix.SeekGE(k, lv.pos[i], a.hi[k], vmax)
					lv.seeks++
					if err := ex.tick(); err != nil {
						return false, err
					}
					if lv.pos[i] >= a.hi[k] {
						return false, nil
					}
				}
			}
			continue
		}
		// All atoms agree on vmax: narrow each bracket to its run and
		// descend.
		for i, a := range lv.atoms {
			k := lv.depth[i]
			lv.end[i] = a.ix.SeekGT(k, lv.pos[i], a.hi[k], vmax)
			lv.seeks++
			if err := ex.tick(); err != nil {
				return false, err
			}
			a.lo[k+1], a.hi[k+1] = lv.pos[i], lv.end[i]
		}
		ex.assign[d] = vmax
		lv.extensions++
		stop, err := visit()
		if err != nil || stop {
			return stop, err
		}
		for i, a := range lv.atoms {
			k := lv.depth[i]
			lv.pos[i] = lv.end[i]
			if lv.pos[i] >= a.hi[k] {
				return false, nil
			}
		}
	}
}

// emit writes the current free-variable assignment into the output,
// charging growth against the byte budget and the row cap.
func (ex *wexec) emit() error {
	for i, src := range ex.outSrc {
		ex.outBuf[i] = ex.assign[src]
	}
	ex.out.Add(ex.outBuf)
	if err := ex.limit.ChargeMemGrowth(ex.out, &ex.outBytes); err != nil {
		return err
	}
	if ex.limit.OverRows(ex.out.Len()) {
		return relation.ErrRowLimit
	}
	return nil
}

// run executes prepare + execute, panic-isolated, charging the touched
// counter into Work on every exit path.
func (ex *wexec) run() (err error) {
	defer relation.RecoverPanic(&err)
	defer func() { ex.limit.Charge(ex.touched) }()
	if err := ex.prepare(); err != nil {
		return err
	}
	if err := ex.execute(); err != nil {
		return err
	}
	ex.stats.Bytes += ex.out.Bytes()
	ex.stats.PeakBytes += ex.out.Bytes()
	ex.stats.MaterializedTuples += int64(ex.out.Len())
	observe(&ex.stats, ex.out)
	return nil
}

func execWCOJ(ctx context.Context, q *cq.Query, db cq.Database, opt Options) (*Result, *wexec, error) {
	ex := newWexec(ctx, q, db, opt)
	start := time.Now()
	err := ex.run()
	for _, lv := range ex.levels {
		ex.stats.Seeks += lv.seeks
		ex.stats.Extensions += lv.extensions
	}
	ex.stats.Elapsed = time.Since(start)
	if err != nil {
		return &Result{Stats: ex.stats}, ex, classifyErr(err, ex.stats.Elapsed)
	}
	return &Result{Rel: ex.out, Stats: ex.stats}, ex, nil
}

// ExecWCOJ evaluates q with the worst-case-optimal leapfrog strategy. See
// ExecWCOJContext.
func ExecWCOJ(q *cq.Query, db cq.Database, opt Options) (*Result, error) {
	return ExecWCOJContext(context.Background(), q, db, opt)
}

// ExecWCOJContext evaluates q as one multiway leapfrog join under the
// MCS/smallest-domain variable order: total work within the AGM output
// bound, no binary-join intermediates at all. Errors are classified
// exactly like the other executors' (ErrTimeout, ErrCanceled,
// ErrRowLimit, ErrMemLimit, ErrInternal); the returned Result is always
// non-nil and carries the partial stats of a failed run. The subplan
// cache (opt.Cache) is ignored: the executor materializes no subtree
// results to share.
func ExecWCOJContext(ctx context.Context, q *cq.Query, db cq.Database, opt Options) (*Result, error) {
	res, _, err := execWCOJ(ctx, q, db, opt)
	return res, err
}
