package engine

import (
	"fmt"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/instance"
)

// TestDifferentialCacheOnOff runs every Figure-6–9 workload and every
// optimization method three ways — uncached, cache-enabled cold, and
// cache-enabled warm (second execution over a populated cache) — through
// both the sequential and the parallel executor, and checks that the
// result relation and the width instrumentation are identical in all of
// them. This is the contract that makes the cache safe to leave on in
// the experiment harness: figures and CSVs depend only on results and
// stats, so a cached sweep must be indistinguishable from an uncached
// one except in elapsed time.
func TestDifferentialCacheOnOff(t *testing.T) {
	db := instance.ColorDatabase(3)
	for _, w := range figureWorkloads(t) {
		q, err := instance.ColorQuery(w.g, instance.BooleanFree(w.g))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range core.Methods {
			t.Run(fmt.Sprintf("%s/%s", w.name, m), func(t *testing.T) {
				p, err := core.BuildPlan(m, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := Exec(p, db, Options{})
				if err != nil {
					t.Fatal(err)
				}
				check := func(label string, res *Result, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if !ref.Rel.Equal(res.Rel) {
						t.Fatalf("%s: relation differs (%d vs %d rows)",
							label, res.Rel.Len(), ref.Rel.Len())
					}
					r, s := ref.Stats, res.Stats
					if r.MaxArity != s.MaxArity || r.MaxRows != s.MaxRows ||
						r.Tuples != s.Tuples || r.Work != s.Work ||
						r.Joins != s.Joins || r.Projections != s.Projections {
						t.Fatalf("%s: instrumentation differs:\nref  %+v\ngot  %+v",
							label, r, s)
					}
				}

				c := NewCache(0)
				cold, err := Exec(p, db, Options{Cache: c})
				check("sequential cold", cold, err)
				if cold.Stats.CacheMisses == 0 {
					t.Fatal("sequential cold run recorded no misses")
				}
				warm, err := Exec(p, db, Options{Cache: c})
				check("sequential warm", warm, err)
				if warm.Stats.CacheHits == 0 {
					t.Fatal("sequential warm run recorded no hits")
				}

				// A fresh cache for the parallel executor, then a warm
				// cross-executor pass: parallel running over entries the
				// sequential executor stored, and vice versa.
				pc := NewCache(0)
				pcold, err := ExecParallel(p, db, Options{Cache: pc}, 4)
				check("parallel cold", pcold, err)
				pwarm, err := ExecParallel(p, db, Options{Cache: pc}, 4)
				check("parallel warm", pwarm, err)
				if pwarm.Stats.CacheHits == 0 {
					t.Fatal("parallel warm run recorded no hits")
				}
				crossSeq, err := Exec(p, db, Options{Cache: pc})
				check("sequential over parallel-built cache", crossSeq, err)
				crossPar, err := ExecParallel(p, db, Options{Cache: c}, 4)
				check("parallel over sequential-built cache", crossPar, err)
			})
		}
	}
}

// TestDifferentialStreamCacheOnOff runs the streaming engine uncached,
// cache-enabled cold, and cache-enabled warm over workloads whose
// pushdown sweeps genuinely remove tuples (the selective chain) and the
// figure workloads, checking that the result relation and the reduction
// instrumentation are identical in all three. The warm run must hit on
// every base scan — its sweeps are skipped entirely — yet still report
// the same ReducedTuples as the run that performed them.
func TestDifferentialStreamCacheOnOff(t *testing.T) {
	type workload struct {
		name string
		q    *cq.Query
		db   cq.Database
	}
	var workloads []workload
	cq5, cdb5 := selectiveChain(5, 400, 250, 9)
	workloads = append(workloads, workload{"selective-chain", cq5, cdb5})
	colorDB := instance.ColorDatabase(3)
	for _, w := range figureWorkloads(t) {
		q, err := instance.ColorQuery(w.g, instance.BooleanFree(w.g))
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, workload{w.name, q, colorDB})
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			p, err := core.BuildPlan(core.MethodStream, w.q, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := ExecStream(p, w.db, Options{})
			if err != nil {
				t.Fatal(err)
			}
			check := func(label string, res *Result, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !ref.Rel.Equal(res.Rel) {
					t.Fatalf("%s: relation differs (%d vs %d rows)",
						label, res.Rel.Len(), ref.Rel.Len())
				}
				if ref.Stats.ReducedTuples != res.Stats.ReducedTuples {
					t.Fatalf("%s: ReducedTuples = %d, uncached run %d",
						label, res.Stats.ReducedTuples, ref.Stats.ReducedTuples)
				}
			}
			scans := len(w.q.Atoms)
			c := NewCache(0)
			cold, err := ExecStream(p, w.db, Options{Cache: c})
			check("cold", cold, err)
			if cold.Stats.CacheMisses != int64(scans) || cold.Stats.CacheHits != 0 {
				t.Fatalf("cold run: hits=%d misses=%d, want 0/%d",
					cold.Stats.CacheHits, cold.Stats.CacheMisses, scans)
			}
			warm, err := ExecStream(p, w.db, Options{Cache: c})
			check("warm", warm, err)
			if warm.Stats.CacheHits != int64(scans) || warm.Stats.CacheMisses != 0 {
				t.Fatalf("warm run: hits=%d misses=%d, want %d/0",
					warm.Stats.CacheHits, warm.Stats.CacheMisses, scans)
			}
		})
	}
}

// TestDifferentialIteratorUnchanged pins that the iterator executor —
// which ignores the cache — still matches the materializing executor on
// the figure workloads after its port onto the packed-key kernels.
func TestDifferentialIteratorUnchanged(t *testing.T) {
	db := instance.ColorDatabase(3)
	for _, w := range figureWorkloads(t) {
		q, err := instance.ColorQuery(w.g, instance.BooleanFree(w.g))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range core.Methods {
			t.Run(fmt.Sprintf("%s/%s", w.name, m), func(t *testing.T) {
				p, err := core.BuildPlan(m, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := Exec(p, db, Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := ExecIterator(p, db, Options{Cache: NewCache(0)})
				if err != nil {
					t.Fatal(err)
				}
				if !ref.Rel.Equal(got.Rel) {
					t.Fatalf("iterator relation differs (%d vs %d rows)",
						got.Rel.Len(), ref.Rel.Len())
				}
			})
		}
	}
}
