package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/relation"
	"projpush/internal/resilience"
)

// yannakakisWorkloads is the acyclic/low-width grid the differential
// tests sweep: the Figure-6–9 families at small orders, plus trees and
// stars (genuinely acyclic join graphs).
func yannakakisWorkloads(t testing.TB) []struct {
	name string
	g    *graph.Graph
} {
	t.Helper()
	star := graph.New(8)
	for i := 1; i < 8; i++ {
		star.AddEdge(0, i)
	}
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(10)},
		{"star", star},
		{"fig6-augpath", graph.AugmentedPath(8)},
		{"fig7-ladder", graph.Ladder(6)},
		{"fig8-augladder", graph.AugmentedLadder(4)},
		{"fig9-augcircladder", graph.AugmentedCircularLadder(4)},
	}
}

// TestYannakakisDifferential pins the full reducer to the backtracking
// oracle and to the bucket-elimination plan, Boolean and non-Boolean,
// across the structured workload grid: identical relations, and the
// exact free-variable column order.
func TestYannakakisDifferential(t *testing.T) {
	db := instance.ColorDatabase(3)
	for _, wl := range yannakakisWorkloads(t) {
		for _, frac := range []float64{0, 0.25} {
			name := fmt.Sprintf("%s/free=%v", wl.name, frac)
			rng := rand.New(rand.NewSource(17))
			var free []cq.Var
			if frac > 0 {
				free = instance.ChooseFree(instance.EdgeVertices(wl.g), frac, rng)
			} else {
				free = instance.BooleanFree(wl.g)
			}
			q, err := instance.ColorQuery(wl.g, free)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.ExecYannakakis(q, db, engine.Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, err := engine.EvalOracle(q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Rel.Equal(want) {
				t.Fatalf("%s: yannakakis %v != oracle %v", name, res.Rel, want)
			}
			be, err := engine.Exec(buildPlan(t, core.MethodBucketElimination, q), db, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Rel.Equal(be.Rel) {
				t.Fatalf("%s: yannakakis %v != bucket elimination %v", name, res.Rel, be.Rel)
			}
			for i, v := range q.Free {
				if res.Rel.Attrs()[i] != relation.Attr(v) {
					t.Fatalf("%s: result attrs %v, want exact free order %v", name, res.Rel.Attrs(), q.Free)
				}
			}
		}
	}
}

// TestYannakakisRandomGraphs sweeps random graphs (cyclic included —
// the tree decomposition handles any width) against the oracle.
func TestYannakakisRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		m := n - 1 + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		free := instance.ChooseFree(instance.EdgeVertices(g), 0.3, rng)
		if len(free) == 0 {
			free = instance.BooleanFree(g)
		}
		q, err := instance.ColorQuery(g, free)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.ExecYannakakis(q, db, engine.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.Equal(want) {
			t.Fatalf("trial %d: yannakakis %v != oracle %v", trial, res.Rel, want)
		}
	}
}

// selectiveChain builds the workload where reduction matters: a chain
// R1(x0,x1) ⋈ R2(x1,x2) ⋈ R3(x2,x3) with wide random R1, R2 and a
// one-tuple R3, so the sweeps delete almost everything before phase 4.
func selectiveChain(rows int) (*cq.Query, cq.Database) {
	rng := rand.New(rand.NewSource(5))
	r1 := relation.New([]relation.Attr{0, 1})
	r2 := relation.New([]relation.Attr{0, 1})
	for i := 0; i < rows; i++ {
		r1.Add(relation.Tuple{relation.Value(rng.Intn(rows)), relation.Value(rng.Intn(50))})
		r2.Add(relation.Tuple{relation.Value(rng.Intn(50)), relation.Value(rng.Intn(50))})
	}
	r3 := relation.New([]relation.Attr{0, 1})
	r3.Add(relation.Tuple{r2.SortedTuples()[0][1], 0})
	q := &cq.Query{
		Atoms: []cq.Atom{
			{Rel: "r1", Args: []cq.Var{0, 1}},
			{Rel: "r2", Args: []cq.Var{1, 2}},
			{Rel: "r3", Args: []cq.Var{2, 3}},
		},
		Free: []cq.Var{0, 3},
	}
	return q, cq.Database{"r1": r1, "r2": r2, "r3": r3}
}

// TestYannakakisReducedTuples checks the new counters: a selective
// acyclic chain must report semijoin deletions, and the run must agree
// with the oracle.
func TestYannakakisReducedTuples(t *testing.T) {
	q, db := selectiveChain(2000)
	res, err := engine.ExecYannakakis(q, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReducedTuples == 0 {
		t.Fatal("selective chain: ReducedTuples = 0, want > 0")
	}
	if res.Stats.MaterializedTuples == 0 {
		t.Fatal("MaterializedTuples = 0, want > 0 (phase 4 writes the answer)")
	}
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(want) {
		t.Fatalf("reduced run %v != oracle %v", res.Rel, want)
	}

	// The plan executors never semijoin: their ReducedTuples stays zero.
	be, err := engine.Exec(buildPlan(t, core.MethodBucketElimination, q), db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if be.Stats.ReducedTuples != 0 {
		t.Fatalf("plan executor ReducedTuples = %d, want 0", be.Stats.ReducedTuples)
	}
	if be.Stats.MaterializedTuples == 0 {
		t.Fatal("plan executor MaterializedTuples = 0, want > 0")
	}
}

// TestYannakakisCancellation cancels the sweep before and during a run
// (kernel latency injected so the mid-run cancel lands inside a
// semijoin), expecting ErrCanceled and no goroutine leak under -race.
func TestYannakakisCancellation(t *testing.T) {
	q, db := figure9(t, 6)
	base := runtime.NumGoroutine()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.ExecYannakakisContext(pre, q, db, engine.Options{}); !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("pre-canceled: err = %v, want ErrCanceled", err)
	}

	if err := faultinject.Enable("kernel.latency=2ms:1", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	ctx, cancelMid := context.WithCancel(context.Background())
	timer := time.AfterFunc(3*time.Millisecond, cancelMid)
	_, err := engine.ExecYannakakisContext(ctx, q, db, engine.Options{})
	timer.Stop()
	cancelMid()
	if !errors.Is(err, engine.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run: err = %v, want ErrCanceled matching context.Canceled", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked after cancellation: %d before, %d after", base, n)
	}
}

// TestYannakakisLimits drives the sweep into each governed failure mode
// and checks the classification matches the plan executors' sentinels,
// with a non-nil Result carrying partial stats every time.
func TestYannakakisLimits(t *testing.T) {
	q, db := figure9(t, 6)

	res, err := engine.ExecYannakakis(q, db, engine.Options{MaxRows: 1})
	if !errors.Is(err, engine.ErrRowLimit) {
		t.Fatalf("MaxRows=1: err = %v, want ErrRowLimit", err)
	}
	if res == nil {
		t.Fatal("failed run must return a non-nil Result")
	}

	if _, err = engine.ExecYannakakis(q, db, engine.Options{MaxBytes: 64}); !errors.Is(err, engine.ErrMemLimit) {
		t.Fatalf("MaxBytes=64: err = %v, want ErrMemLimit", err)
	}

	if _, err = engine.ExecYannakakis(q, db, engine.Options{Timeout: time.Nanosecond}); !errors.Is(err, engine.ErrTimeout) {
		t.Fatalf("Timeout=1ns: err = %v, want ErrTimeout", err)
	}

	// Panic isolation: a nil relation makes the bind panic inside the
	// sweep; RecoverPanic must surface it as ErrInternal, not crash.
	poisoned := cq.Database{"edge": nil}
	if _, err = engine.ExecYannakakis(q, poisoned, engine.Options{}); !errors.Is(err, engine.ErrInternal) {
		t.Fatalf("nil relation: err = %v, want ErrInternal", err)
	}

	// The semijoin kernels carry their own allocation fault point.
	if err := faultinject.Enable("semijoin.alloc=1", 1); err != nil {
		t.Fatal(err)
	}
	_, err = engine.ExecYannakakis(q, db, engine.Options{})
	faultinject.Disable()
	if !errors.Is(err, engine.ErrMemLimit) {
		t.Fatalf("injected semijoin alloc failure: err = %v, want ErrMemLimit", err)
	}
}

// TestYannakakisRungDegrades checks the Run-style first rung composes
// with the plan ladder: a width cap the reducer blows is rescued by the
// fallback rungs, with the full attempt history recorded.
func TestYannakakisRungDegrades(t *testing.T) {
	q, db := figure9(t, 4)
	if err := faultinject.Enable("semijoin.alloc=1", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	res, err := engine.ExecResilientStrategy(context.Background(),
		resilience.YannakakisRung(q), resilience.PlanLadder(q, nil), db, engine.Options{}, 1)
	if err != nil {
		t.Fatalf("ladder should rescue the poisoned reducer: %v", err)
	}
	if len(res.Stats.Attempts) < 2 {
		t.Fatalf("attempts = %+v, want yannakakis failure then a plan rung", res.Stats.Attempts)
	}
	if res.Stats.Attempts[0].Method != string(core.MethodYannakakis) ||
		!strings.Contains(res.Stats.Attempts[0].Err, engine.ErrMemLimit.Error()) {
		t.Fatalf("first attempt = %+v, want failed yannakakis rung", res.Stats.Attempts[0])
	}
	want, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(want) {
		t.Fatalf("degraded answer %v != oracle %v", res.Rel, want)
	}
}

// TestCacheReplaysNewCounters is the cache-coherence contract extended
// to the new Stats fields: a fully warmed cache-on run must report the
// same MaterializedTuples/ReducedTuples totals as a cache-off run.
func TestCacheReplaysNewCounters(t *testing.T) {
	q, db := figure9(t, 4)
	p := buildPlan(t, core.MethodBucketElimination, q)

	off, err := engine.Exec(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := engine.NewCache(0)
	if _, err := engine.Exec(p, db, engine.Options{Cache: cache}); err != nil {
		t.Fatal(err) // warm
	}
	on, err := engine.Exec(p, db, engine.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.CacheHits == 0 {
		t.Fatal("warmed run recorded no cache hits")
	}
	if on.Stats.MaterializedTuples != off.Stats.MaterializedTuples {
		t.Fatalf("cache-on MaterializedTuples = %d, cache-off = %d; replay must match",
			on.Stats.MaterializedTuples, off.Stats.MaterializedTuples)
	}
	if on.Stats.ReducedTuples != off.Stats.ReducedTuples {
		t.Fatalf("cache-on ReducedTuples = %d, cache-off = %d", on.Stats.ReducedTuples, off.Stats.ReducedTuples)
	}
	if on.Stats.Bytes != off.Stats.Bytes {
		t.Fatalf("cache-on Bytes = %d, cache-off = %d", on.Stats.Bytes, off.Stats.Bytes)
	}
	if on.Stats.PeakBytes != off.Stats.PeakBytes {
		t.Fatalf("cache-on PeakBytes = %d, cache-off = %d", on.Stats.PeakBytes, off.Stats.PeakBytes)
	}
}

// TestExplainYannakakis checks both renderings: the static tree and the
// analyzed sweep with per-bag counts and the reduced/materialized footer.
func TestExplainYannakakis(t *testing.T) {
	q, db := selectiveChain(200)
	static, err := engine.ExplainYannakakis(q, db, engine.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(static, "yannakakis full reducer") || !strings.Contains(static, "bag") {
		t.Fatalf("static explain missing structure:\n%s", static)
	}
	if strings.Contains(static, "reduced:") {
		t.Fatalf("static explain must not carry analyze annotations:\n%s", static)
	}
	analyzed, err := engine.ExplainYannakakis(q, db, engine.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reduced:", "materialized:", "⋉↑", "⋉↓"} {
		if !strings.Contains(analyzed, want) {
			t.Fatalf("analyzed explain missing %q:\n%s", want, analyzed)
		}
	}
}
