package engine

import (
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// benchWorkload builds the repeated-workload scenario the cache targets:
// a figure plan executed over and over against one fixed database, as
// every rep × method sweep of the experiment harness does.
func benchWorkload(b *testing.B, m core.Method) (plan.Node, cq.Database) {
	b.Helper()
	g := graph.AugmentedPath(8)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.BuildPlan(m, q, nil)
	if err != nil {
		b.Fatal(err)
	}
	return p, instance.ColorDatabase(3)
}

// BenchmarkEngineCacheRepeatedWorkload measures repeated execution of one
// figure workload with the subplan cache disabled and enabled — the
// acceptance scenario for the cache: identical subtrees across reps must
// collapse to fingerprint lookups plus O(arity) rebinds. The "cached"
// variant shares one cache across all b.N executions (steady state is
// all-hit); "uncached" re-joins from scratch every time.
func BenchmarkEngineCacheRepeatedWorkload(b *testing.B) {
	for _, m := range []core.Method{core.MethodStraightforward, core.MethodBucketElimination} {
		p, db := benchWorkload(b, m)
		b.Run(string(m)+"/uncached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Exec(p, db, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(string(m)+"/cached", func(b *testing.B) {
			b.ReportAllocs()
			c := NewCache(0)
			for i := 0; i < b.N; i++ {
				if _, err := Exec(p, db, Options{Cache: c}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCacheParallel measures the cached steady state under the
// parallel executor: shard-lock contention plus zero-copy rebinds.
func BenchmarkEngineCacheParallel(b *testing.B) {
	p, db := benchWorkload(b, core.MethodBucketElimination)
	for _, name := range []string{"uncached", "cached"} {
		var c *Cache
		if name == "cached" {
			c = NewCache(0)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ExecParallel(p, db, Options{Cache: c}, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mapStringJoin is the iterator executor's former hash-join inner loop:
// a map[string][]Tuple build table keyed by raw-byte string keys, with
// per-match output assembly. Kept as the benchmark baseline for the port
// onto relation.StreamTable.
func mapStringJoin(build, probe []relation.Tuple, buildKey, probeKey []int) int {
	key := func(t relation.Tuple, pos []int) string {
		buf := make([]byte, 0, 4*len(pos))
		for _, p := range pos {
			v := uint32(t[p])
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(buf)
	}
	table := make(map[string][]relation.Tuple, len(build))
	for _, t := range build {
		k := key(t, buildKey)
		table[k] = append(table[k], t.Clone())
	}
	matches := 0
	for _, t := range probe {
		for range table[key(t, probeKey)] {
			matches++
		}
	}
	return matches
}

// streamTableJoin is the same join on the ported kernel.
func streamTableJoin(build, probe []relation.Tuple, buildKey, probeKey []int) int {
	st := relation.NewStreamTable(len(build[0]), buildKey)
	for _, t := range build {
		st.Insert(t)
	}
	matches := 0
	for _, t := range probe {
		m := st.Probe(t, probeKey)
		for r := m.Next(); r != nil; r = m.Next() {
			matches++
		}
	}
	return matches
}

// BenchmarkEngineIterJoin measures the iterator executor's hash-join
// kernel before and after the port: string keys into a Go map versus the
// packed-uint64 open-addressing StreamTable.
func BenchmarkEngineIterJoin(b *testing.B) {
	mkRows := func(n, domain, seed int) []relation.Tuple {
		rows := make([]relation.Tuple, n)
		s := uint64(seed)
		for i := range rows {
			t := make(relation.Tuple, 3)
			for j := range t {
				s = s*6364136223846793005 + 1442695040888963407
				t[j] = relation.Value((s >> 33) % uint64(domain))
			}
			rows[i] = t
		}
		return rows
	}
	build := mkRows(20000, 40, 1)
	probe := mkRows(20000, 40, 2)
	buildKey, probeKey := []int{0, 1}, []int{1, 2}

	want := mapStringJoin(build, probe, buildKey, probeKey)
	if got := streamTableJoin(build, probe, buildKey, probeKey); got != want {
		b.Fatalf("kernels disagree: %d vs %d matches", got, want)
	}

	b.Run("streamtable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			streamTableJoin(build, probe, buildKey, probeKey)
		}
	})
	b.Run("mapstring-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mapStringJoin(build, probe, buildKey, probeKey)
		}
	})
}

// BenchmarkEngineIterExec measures the full iterator executor on a figure
// workload — the end-to-end path the StreamTable port feeds.
func BenchmarkEngineIterExec(b *testing.B) {
	p, db := benchWorkload(b, core.MethodEarlyProjection)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExecIterator(p, db, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
