package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"projpush/internal/graph"
	"projpush/internal/instance"
)

// TestDifferentialWCOJFigureWorkloads runs the Figure-6–9 structured
// workloads — Boolean and with a free-variable sample — through the
// worst-case-optimal executor and checks the result against the
// backtracking oracle.
func TestDifferentialWCOJFigureWorkloads(t *testing.T) {
	db := instance.ColorDatabase(3)
	rng := rand.New(rand.NewSource(11))
	for _, w := range figureWorkloads(t) {
		for _, mode := range []string{"boolean", "free"} {
			t.Run(fmt.Sprintf("%s/%s", w.name, mode), func(t *testing.T) {
				free := instance.BooleanFree(w.g)
				if mode == "free" {
					free = instance.ChooseFree(instance.EdgeVertices(w.g), 0.4, rng)
				}
				q, err := instance.ColorQuery(w.g, free)
				if err != nil {
					t.Fatal(err)
				}
				res, err := ExecWCOJ(q, db, Options{})
				if err != nil {
					t.Fatal(err)
				}
				want, err := EvalOracle(q, db)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Rel.Equal(want) {
					t.Fatalf("wcoj result differs from oracle (%d vs %d rows)",
						res.Rel.Len(), want.Len())
				}
				if res.Stats.Seeks == 0 {
					t.Error("leapfrog run recorded no seeks")
				}
				if res.Stats.Joins != 1 {
					t.Errorf("Joins = %d, want 1 (one multiway join)", res.Stats.Joins)
				}
			})
		}
	}
}

// TestDifferentialWCOJCyclicGraphs sweeps the cyclic shapes the
// executor exists for — cliques, cycles, wheels, and random graphs at
// several densities — under k-COLOR for k=3 and k=4, Boolean and
// enumerating, against the oracle. Cliques above the chromatic number
// pin the empty-answer path; k=4 makes several of them satisfiable.
func TestDifferentialWCOJCyclicGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"K4", graph.Complete(4)},
		{"K5", graph.Complete(5)},
		{"C5", graph.Cycle(5)},
		{"C7", graph.Cycle(7)},
		{"wheel6", graph.Wheel(6)},
	}
	for i := 0; i < 4; i++ {
		g, err := graph.RandomDensity(7, 0.35+0.15*float64(i), rng)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{fmt.Sprintf("rand7-%d", i), g})
	}
	for _, k := range []int{3, 4} {
		db := instance.ColorDatabase(k)
		for _, w := range graphs {
			for _, mode := range []string{"boolean", "free"} {
				t.Run(fmt.Sprintf("k%d/%s/%s", k, w.name, mode), func(t *testing.T) {
					free := instance.BooleanFree(w.g)
					if mode == "free" {
						free = instance.ChooseFree(instance.EdgeVertices(w.g), 0.5, rng)
					}
					q, err := instance.ColorQuery(w.g, free)
					if err != nil {
						t.Fatal(err)
					}
					res, err := ExecWCOJ(q, db, Options{})
					if err != nil {
						t.Fatal(err)
					}
					want, err := EvalOracle(q, db)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Rel.Equal(want) {
						t.Fatalf("wcoj result differs from oracle (%d vs %d rows)",
							res.Rel.Len(), want.Len())
					}
				})
			}
		}
	}
}

// TestWCOJLimits drives the executor into each governor wall: the row
// cap, the byte budget, and the deadline, each surfacing as its typed
// sentinel.
func TestWCOJLimits(t *testing.T) {
	g := graph.Cycle(9)
	q, err := instance.ColorQuery(g, instance.EdgeVertices(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)

	if _, err := ExecWCOJ(q, db, Options{MaxRows: 5}); !errors.Is(err, ErrRowLimit) {
		t.Errorf("MaxRows=5: err = %v, want ErrRowLimit", err)
	}
	if _, err := ExecWCOJ(q, db, Options{MaxBytes: 64}); !errors.Is(err, ErrMemLimit) {
		t.Errorf("MaxBytes=64: err = %v, want ErrMemLimit", err)
	}
	if _, err := ExecWCOJ(q, db, Options{Timeout: time.Nanosecond}); !errors.Is(err, ErrTimeout) {
		t.Errorf("1ns timeout: err = %v, want ErrTimeout", err)
	}
}

// TestWCOJCancellation cancels the executor before the run and
// mid-intersection, expecting ErrCanceled (matching context.Canceled)
// and no goroutine leak — the -race run in `make test` sweeps this.
func TestWCOJCancellation(t *testing.T) {
	// A full enumeration of the 3-colorings of C20 (about 10^6 rows)
	// runs long enough for the mid-run cancel to land; the row cap is a
	// backstop so a broken cancellation path fails typed instead of
	// materializing the whole answer.
	g := graph.Cycle(20)
	q, err := instance.ColorQuery(g, instance.EdgeVertices(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	base := runtime.NumGoroutine()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecWCOJContext(pre, q, db, Options{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: err = %v, want ErrCanceled", err)
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	timer := time.AfterFunc(3*time.Millisecond, cancelMid)
	_, err = ExecWCOJContext(ctx, q, db, Options{MaxRows: 10_000_000})
	timer.Stop()
	cancelMid()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run: err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run: err = %v, want errors.Is(err, context.Canceled)", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked after cancellations: %d before, %d after", base, n)
	}
}

// TestExplainWCOJ checks both renderings: the static variable order
// (existence levels marked ∃, no counters) and the EXPLAIN ANALYZE form
// with per-level seek/extension counts and the run trailers.
func TestExplainWCOJ(t *testing.T) {
	g := graph.Cycle(5)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)

	static, err := ExplainWCOJ(q, db, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(static, "wcoj leapfrog") || !strings.Contains(static, "∃") {
		t.Fatalf("static explain missing header or ∃ marks:\n%s", static)
	}
	if strings.Contains(static, "seeks=") {
		t.Fatalf("static explain must not carry counters:\n%s", static)
	}

	analyzed, err := ExplainWCOJ(q, db, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seeks=", "extensions=", "seeks: total=", "memory:", "tuples:"} {
		if !strings.Contains(analyzed, want) {
			t.Fatalf("analyze explain missing %q:\n%s", want, analyzed)
		}
	}
}
