package engine

// The streaming executor: a pipelined operator graph with late
// materialization. It lowers the same plans as Exec and ExecIterator, but
// with three structural differences that bound *live* intermediate size —
// the quantity the paper shows governs cost — rather than cumulative
// materialization:
//
//   - Projection is fused into scans and probes. Every operator is lowered
//     against the set of columns its ancestors actually need, so scans
//     emit column subsets through relation.ColumnReader (deduplicating
//     lazily only when columns were dropped) and hash-join builds store
//     only the needed columns of their input.
//
//   - Semijoin filters are pushed below hash-join builds. A pre-pass walks
//     the plan, derives which scan pairs share an attribute that survives
//     (is never projected away) from each scan to their common ancestor
//     join, and runs relation.SemijoinFilter sweeps over zero-copy bound
//     views of the base relations until a fixpoint — so build sides are
//     pre-reduced before a single bucket is allocated. Interior joins
//     whose build input is itself a stream are additionally pre-filtered
//     with relation.StreamFilter probes against the probe side's reduced
//     base relations.
//
//   - Materialization happens only at genuine pipeline breakers — hash
//     builds, DISTINCT states, and the final output — and each breaker
//     *releases* its bytes back to the governor when the operator closes.
//     The memory budget (Options.MaxBytes) therefore bounds peak live
//     bytes, not cumulative allocation, and Stats.Bytes reports the
//     high-water mark of live bytes.
//
// Per-operator row/byte/peak counters feed ExplainStream's EXPLAIN
// ANALYZE operator tree.
//
// The subplan cache (Options.Cache) memoizes the pushdown pre-pass: the
// engine materializes no subtree join results to share, but the
// semijoin-reduced base scans it does produce are keyed by
// database fingerprint ⊕ whole-plan fingerprint ⊕ scan position (the
// reduced view of one scan depends on every edge of the plan, so the
// whole-plan fingerprint — invariant to variable renaming — is the
// finest sound key). A run that finds every scan of its plan cached
// swaps the reduced views in and skips the sweeps entirely; any miss
// re-runs the fixpoint and stores all scans. Per-scan reduced-tuple
// counts ride along in the entry stats so cache-on and cache-off runs
// report identical ReducedTuples.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// DefaultStreamWidth is the elimination-width ceiling under which the
// server routes method-less queries to the streaming engine when they are
// too wide for the Yannakakis full reducer (DefaultYannakakisWidth) but
// narrow enough that a pipelined plan with pushdown stays cheap.
const DefaultStreamWidth = 6

// maxReducePasses caps the pushdown fixpoint sweeps. A forward pass
// cascades reductions along the plan order, the backward pass carries
// them the other way (the spider shape needs it: an outer arm first
// reduces its inner relation, which then reduces the other arms through
// the center); further passes only fire when a prior pass still removed
// rows somewhere.
const maxReducePasses = 4

// opStats is one operator's slice of the EXPLAIN ANALYZE tree: rows
// emitted, bytes materialized (cumulative) and resident (current / peak),
// and tuples removed by pushed-down semijoin reduction.
type opStats struct {
	label    string
	attrs    []cq.Var
	rows     int64 // tuples emitted
	total    int64 // cumulative bytes materialized by this operator
	held     int64 // bytes currently resident
	peak     int64 // high-water resident bytes
	build    int64 // build-side rows stored (joins)
	reduced  int64 // tuples removed before this operator by pushdown
	children []*opStats
}

// streamContext carries limits and the live-byte governor shared by a
// pipeline. Unlike execContext, bytes released by a closing operator come
// back to the budget immediately: maxBytes bounds live bytes and peak
// records their high-water mark.
type streamContext struct {
	cctx     context.Context
	deadline time.Time
	maxRows  int
	maxBytes int64
	live     int64 // resident bytes across all live operators
	peak     int64 // high-water mark of live
	stats    *Stats
	ticks    int
	// spiller, when non-nil, lets pipeline breakers and hash builds
	// spill their resident state to disk instead of failing the hold
	// that pushed live over maxBytes.
	spiller *relation.Spiller
}

func (c *streamContext) tick() error {
	c.ticks++
	if c.ticks%4096 == 0 {
		if c.cctx != nil {
			if err := c.cctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", relation.ErrCanceled, err)
			}
		}
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			return relation.ErrDeadline
		}
	}
	return nil
}

// hold re-charges one operator's resident state at its current size (now
// bytes, previously *last), folding the delta into the live-byte budget
// and the peak watermark.
func (c *streamContext) hold(now int64, last *int64, op *opStats) error {
	delta := now - *last
	if delta == 0 {
		return nil
	}
	*last = now
	c.live += delta
	if op != nil {
		op.held += delta
		if delta > 0 {
			op.total += delta
		}
	}
	if c.maxBytes > 0 && c.live > c.maxBytes {
		// The rejected charge stays out of the peak watermarks: a caller
		// that spills unwinds it entirely (release + re-hold), so peak
		// tracks what was ever successfully resident.
		return fmt.Errorf("%w: charge of %d bytes puts %d live over budget %d",
			relation.ErrMemBudget, delta, c.live, c.maxBytes)
	}
	if op != nil && op.held > op.peak {
		op.peak = op.held
	}
	if c.live > c.peak {
		c.peak = c.live
	}
	return nil
}

// release returns an operator's entire resident charge to the budget.
func (c *streamContext) release(last *int64, op *opStats) {
	if *last == 0 {
		return
	}
	c.live -= *last
	if op != nil {
		op.held -= *last
	}
	*last = 0
}

// kernelLim adapts the live budget for a relation kernel call: the
// kernel's transient allocations (probe tables, copy-outs) charge on top
// of the current live bytes, so a budget violation mid-kernel surfaces as
// ErrMemBudget, and notePeak folds the transient high-water into the
// run's peak after the call.
func (c *streamContext) kernelLim(counter *atomic.Int64) *relation.Limit {
	counter.Store(c.live)
	lim := &relation.Limit{
		MaxRows:  c.maxRows,
		Deadline: c.deadline,
		Ctx:      c.cctx,
		MaxBytes: c.maxBytes,
	}
	if lim.MaxBytes <= 0 {
		lim.MaxBytes = math.MaxInt64 // track transients even without a budget
	}
	lim.Bytes = counter
	if c.stats != nil {
		lim.Work = &c.stats.Work
	}
	return lim
}

func (c *streamContext) notePeak(counter *atomic.Int64) {
	if v := counter.Load(); v > c.peak {
		c.peak = v
	}
}

// streamOp is one operator of the pipelined graph. Tuples returned by
// next are only valid until the following call; close is idempotent and
// releases the operator's resident bytes back to the governor.
type streamOp interface {
	schema() []cq.Var
	next() (relation.Tuple, error)
	close()
}

// streamScanState is one base-relation occurrence tracked by the pushdown
// pre-pass: a zero-copy bound view of the stored relation, reduced in
// place (well, copy-on-first-write) by the semijoin sweeps before any
// operator runs.
type streamScanState struct {
	node    *plan.Scan
	view    *relation.Relation
	charged int64 // live bytes held for the reduced view (0 while shared)
	epoch   int   // bumped whenever rows are removed
	reduced int64 // tuples removed by the sweeps
}

// reduceEdge records that scans a and b may soundly semijoin-reduce each
// other on attrs: each attr survives from both scans to a common ancestor
// join, so a tuple of either scan whose attr values never appear in the
// other cannot contribute to any answer.
type reduceEdge struct {
	a, b           int
	attrs          []cq.Var
	epochA, epochB int // endpoint epochs when the edge last ran
}

type streamExec struct {
	ctx       *streamContext
	db        cq.Database
	scans     []*streamScanState
	scanOf    map[*plan.Scan]int
	edges     []reduceEdge
	edgeOf    map[[2]int]int
	aliveAt   map[plan.Node]map[cq.Var][]int
	nextFresh relation.Attr // fresh attrs for restricted constrainer views
}

// collect walks the plan bottom-up, binding scan views and building the
// alive-attribute map: for each node, which scans does each attribute of
// the node's output survive from? Project drops attributes, Join merges
// its children and — for every attribute alive on both sides — records a
// reduction edge between each pair of source scans.
func (e *streamExec) collect(n plan.Node) (map[cq.Var][]int, error) {
	switch t := n.(type) {
	case *plan.Scan:
		rel, ok := e.db[t.Atom.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", t.Atom.Rel)
		}
		if rel.Arity() != len(t.Atom.Args) {
			return nil, fmt.Errorf("engine: atom %s arity mismatch with relation (%d columns)",
				t.Atom, rel.Arity())
		}
		m := make(map[relation.Attr]relation.Attr, rel.Arity())
		for i, a := range rel.Attrs() {
			m[a] = t.Atom.Args[i]
		}
		idx := len(e.scans)
		e.scans = append(e.scans, &streamScanState{node: t, view: relation.Rename(rel, m)})
		e.scanOf[t] = idx
		alive := make(map[cq.Var][]int, len(t.Atom.Args))
		for _, a := range t.Atom.Args {
			alive[a] = []int{idx}
		}
		e.aliveAt[n] = alive
		return alive, nil

	case *plan.Join:
		l, err := e.collect(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.collect(t.Right)
		if err != nil {
			return nil, err
		}
		for a, ls := range l {
			rs, ok := r[a]
			if !ok {
				continue
			}
			for _, i := range ls {
				for _, j := range rs {
					e.addEdge(i, j, a)
				}
			}
		}
		alive := make(map[cq.Var][]int, len(l)+len(r))
		for a, ls := range l {
			alive[a] = append(alive[a], ls...)
		}
		for a, rs := range r {
			alive[a] = append(alive[a], rs...)
		}
		e.aliveAt[n] = alive
		return alive, nil

	case *plan.Project:
		c, err := e.collect(t.Child)
		if err != nil {
			return nil, err
		}
		alive := make(map[cq.Var][]int, len(t.Cols))
		for _, a := range t.Cols {
			if ls, ok := c[a]; ok {
				alive[a] = ls
			}
		}
		e.aliveAt[n] = alive
		return alive, nil

	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

func (e *streamExec) addEdge(i, j int, a cq.Var) {
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	key := [2]int{i, j}
	if k, ok := e.edgeOf[key]; ok {
		for _, have := range e.edges[k].attrs {
			if have == a {
				return
			}
		}
		e.edges[k].attrs = append(e.edges[k].attrs, a)
		return
	}
	e.edgeOf[key] = len(e.edges)
	e.edges = append(e.edges, reduceEdge{a: i, b: j, attrs: []cq.Var{a}, epochA: -1, epochB: -1})
}

// reduceOne reduces target's view by constrainer's on attrs, returning
// whether rows were removed. When the two views share more attributes
// than are sound for this edge, the constrainer's extra columns are
// renamed apart (zero-copy) so the kernel keys only on attrs.
func (e *streamExec) reduceOne(target, constrainer *streamScanState, attrs []cq.Var) (bool, error) {
	if target.view.Empty() {
		return false, nil
	}
	ov := constrainer.view
	shared := relation.SharedAttrs(target.view, ov)
	if len(shared) > len(attrs) {
		ok := make(map[cq.Var]bool, len(attrs))
		for _, a := range attrs {
			ok[a] = true
		}
		m := make(map[relation.Attr]relation.Attr)
		for _, a := range shared {
			if !ok[a] {
				m[a] = e.nextFresh
				e.nextFresh--
			}
		}
		ov = relation.Rename(ov, m)
	}
	var counter atomic.Int64
	out, removed, err := relation.SemijoinFilter(target.view, ov, e.ctx.kernelLim(&counter))
	e.ctx.notePeak(&counter)
	if err != nil {
		return false, err
	}
	if removed == 0 {
		return false, nil
	}
	target.view = out
	target.epoch++
	target.reduced += int64(removed)
	if e.ctx.stats != nil {
		e.ctx.stats.ReducedTuples += int64(removed)
	}
	// After the first removal the view owns a private arena; charge its
	// footprint as live bytes (compactions shrink the charge again).
	return true, e.ctx.hold(out.Bytes(), &target.charged, nil)
}

// reduceAll runs the pushdown sweeps to a fixpoint (bounded by
// maxReducePasses): forward along plan order, then backward, skipping
// edges whose endpoints have not changed since the edge last ran.
func (e *streamExec) reduceAll() error {
	for pass := 0; pass < maxReducePasses; pass++ {
		changed := false
		for k := range e.edges {
			i := k
			if pass%2 == 1 {
				i = len(e.edges) - 1 - k
			}
			ed := &e.edges[i]
			sa, sb := e.scans[ed.a], e.scans[ed.b]
			if ed.epochA == sa.epoch && ed.epochB == sb.epoch {
				continue
			}
			// Reduce the larger view first: the kernel's probe table is
			// built over the constrainer, so constraining big-by-small
			// keeps the sweep's own transient footprint at the small
			// side's size — and the second call then probes an
			// already-shrunk view.
			x, y := sa, sb
			if x.view.Len() < y.view.Len() {
				x, y = y, x
			}
			c1, err := e.reduceOne(x, y, ed.attrs)
			if err != nil {
				return err
			}
			c2, err := e.reduceOne(y, x, ed.attrs)
			if err != nil {
				return err
			}
			ed.epochA, ed.epochB = sa.epoch, sb.epoch
			changed = changed || c1 || c2
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// neededFor intersects a child's output attributes with the columns its
// parent needs plus the join attributes, preserving child order.
func neededFor(child plan.Node, needed []cq.Var, shared []cq.Var) []cq.Var {
	want := make(map[cq.Var]bool, len(needed)+len(shared))
	for _, a := range needed {
		want[a] = true
	}
	for _, a := range shared {
		want[a] = true
	}
	var out []cq.Var
	for _, a := range child.Attrs() {
		if want[a] {
			out = append(out, a)
		}
	}
	return out
}

// streamScan streams the needed columns of a (reduced) base-relation
// view, deduplicating lazily — a seen-set is kept only when columns were
// actually dropped, since only then can duplicates arise.
type streamScan struct {
	ctx        *streamContext
	state      *streamScanState
	sch        []cq.Var
	rd         *relation.ColumnReader
	dedup      *relation.Relation
	dedupBytes int64
	st         *opStats
	done       bool
}

func (s *streamScan) schema() []cq.Var { return s.sch }

func (s *streamScan) next() (relation.Tuple, error) {
	if s.done {
		return nil, nil
	}
	for {
		t := s.rd.Next()
		if t == nil {
			s.close()
			return nil, nil
		}
		if err := s.ctx.tick(); err != nil {
			return nil, err
		}
		if s.dedup != nil {
			if !s.dedup.Add(t) {
				continue
			}
			if s.ctx.stats != nil {
				s.ctx.stats.Tuples++
				s.ctx.stats.MaterializedTuples++
			}
			if err := s.ctx.hold(s.dedup.Bytes(), &s.dedupBytes, s.st); err != nil {
				return nil, err
			}
			if s.ctx.maxRows > 0 && s.dedup.Len() > s.ctx.maxRows {
				return nil, relation.ErrRowLimit
			}
		}
		s.st.rows++
		return t, nil
	}
}

func (s *streamScan) close() {
	if s.done {
		return
	}
	s.done = true
	s.ctx.release(&s.dedupBytes, s.st)
	s.dedup = nil
	s.ctx.release(&s.state.charged, s.st)
}

// buildFilter pre-reduces a streamed build side against one of the probe
// side's base relations: rows whose key values never appear in the scan's
// reduced view are dropped before they reach the hash table.
type buildFilter struct {
	state *streamScanState
	attrs []cq.Var
	pos   []int // key columns in the stored (gathered) build row
	f     *relation.StreamFilter
	bytes int64
}

// streamJoin builds a hash table over the needed columns of its right
// input — pre-filtered by any attached buildFilters — then streams the
// left input through it. The table is released when the left input is
// exhausted; the right subtree is closed as soon as the build completes.
type streamJoin struct {
	ctx         *streamContext
	left, right streamOp
	sch         []cq.Var

	sharedLeft []int // probe key columns in left schema
	keyPos     []int // key columns in the stored build row
	gather     []int // rightNeeded columns in right schema
	leftCols   []int // schema assembly: left column index or -1
	rightCols  []int // schema assembly: stored-row column index or -1

	filters  []buildFilter
	table    *relation.StreamTable
	tabBytes int64
	built    bool
	done     bool
	closed   bool

	// Grace spilling (armed only when ctx.spiller is set and the build
	// outgrew the budget): chunks holds build partitions written to
	// disk, spool the probe-side tuples replayed against each reloaded
	// chunk after the in-memory pass, spoolRd the reader of the chunk
	// pass in progress. Equal build rows may recur across chunks, so a
	// spilled join can emit duplicate tuples; every consumer
	// deduplicates (set semantics), so answers are unchanged.
	chunks  []*relation.RowFile
	spool   *relation.RowFile
	spoolRd *relation.RowReader
	replay  bool

	cur     relation.Tuple
	haveCur bool
	matches relation.StreamMatches
	out     relation.Tuple
	buf     relation.Tuple // gathered build row buffer
	st      *opStats
}

func (j *streamJoin) schema() []cq.Var { return j.sch }

func (j *streamJoin) build() error {
	for fi := range j.filters {
		bf := &j.filters[fi]
		var counter atomic.Int64
		f, err := relation.NewStreamFilter(bf.state.view, bf.attrs, j.ctx.kernelLim(&counter))
		j.ctx.notePeak(&counter)
		if err != nil {
			return err
		}
		bf.f = f
		if err := j.ctx.hold(f.Bytes(), &bf.bytes, j.st); err != nil {
			return err
		}
	}
	n := 0
insert:
	for {
		t, err := j.right.next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		if err := j.ctx.tick(); err != nil {
			return err
		}
		for i, g := range j.gather {
			j.buf[i] = t[g]
		}
		for fi := range j.filters {
			if !j.filters[fi].f.Match(j.buf, j.filters[fi].pos) {
				j.st.reduced++
				if j.ctx.stats != nil {
					j.ctx.stats.ReducedTuples++
				}
				continue insert
			}
		}
		n++
		if j.ctx.maxRows > 0 && n > j.ctx.maxRows {
			return relation.ErrRowLimit
		}
		j.table.Insert(j.buf)
		if j.ctx.stats != nil {
			j.ctx.stats.Tuples++
			j.ctx.stats.MaterializedTuples++
		}
		if err := j.ctx.hold(j.table.Bytes(), &j.tabBytes, j.st); err != nil {
			if j.ctx.spiller == nil || !errors.Is(err, relation.ErrMemBudget) {
				return err
			}
			if err := j.spillBuild(); err != nil {
				return err
			}
		}
	}
	j.st.build = int64(n)
	if j.ctx.stats != nil && n > j.ctx.stats.MaxRows {
		j.ctx.stats.MaxRows = n
	}
	// The build side is fully materialized; release the filters and the
	// right subtree's state.
	for fi := range j.filters {
		j.ctx.release(&j.filters[fi].bytes, j.st)
		j.filters[fi].f = nil
	}
	j.filters = nil
	j.right.close()
	j.built = true
	return nil
}

// spillBuild writes the whole in-progress hash build to a fresh chunk
// file, releases its bytes to the governor, and restarts the table
// empty — grace-style partitioning driven by memory pressure. The
// chunks are replayed against the spooled probe side once the in-memory
// pass (over the final, resident partition) finishes.
func (j *streamJoin) spillBuild() error {
	rf, err := j.ctx.spiller.NewRowFile(len(j.buf))
	if err != nil {
		return err
	}
	for i := 0; i < j.table.Len(); i++ {
		if err := rf.Append(j.table.Row(i)); err != nil {
			rf.Close()
			return err
		}
	}
	if err := rf.Finish(); err != nil {
		rf.Close()
		return err
	}
	j.chunks = append(j.chunks, rf)
	j.ctx.release(&j.tabBytes, j.st)
	j.table = relation.NewStreamTable(len(j.buf), j.keyPos)
	return j.ctx.hold(j.table.Bytes(), &j.tabBytes, j.st)
}

// replayAdvance drives the chunk-replay phase: reload the next spilled
// build chunk into a fresh table and stream the spooled probe tuples
// through it, one chunk at a time, holding exactly one chunk resident.
// It leaves the next probe tuple in j.cur/j.matches, or sets j.done.
func (j *streamJoin) replayAdvance() error {
	for {
		if j.table == nil {
			if len(j.chunks) == 0 {
				j.done = true
				j.spool.Close()
				j.spool = nil
				return nil
			}
			ch := j.chunks[0]
			j.chunks = j.chunks[1:]
			tab := relation.NewStreamTable(len(j.buf), j.keyPos)
			rd, err := ch.Reader()
			if err != nil {
				ch.Close()
				return err
			}
			for {
				row, err := rd.Next()
				if err != nil {
					rd.Close()
					ch.Close()
					return err
				}
				if row == nil {
					break
				}
				if err := j.ctx.tick(); err != nil {
					rd.Close()
					ch.Close()
					return err
				}
				tab.Insert(row)
				// A reloaded chunk cannot spill again: it was cut at the
				// budget's slack when it was written, so it must fit the
				// slack its siblings leave now. If it does not, the run
				// fails with an honest ErrMemBudget.
				if err := j.ctx.hold(tab.Bytes(), &j.tabBytes, j.st); err != nil {
					rd.Close()
					ch.Close()
					return err
				}
			}
			rd.Close()
			ch.Close()
			j.table = tab
			spoolRd, err := j.spool.Reader()
			if err != nil {
				return err
			}
			j.spoolRd = spoolRd
		}
		row, err := j.spoolRd.Next()
		if err != nil {
			return err
		}
		if row == nil {
			// Probe pass over this chunk done; drop it, move to the next.
			j.spoolRd.Close()
			j.spoolRd = nil
			j.ctx.release(&j.tabBytes, j.st)
			j.table = nil
			continue
		}
		if err := j.ctx.tick(); err != nil {
			return err
		}
		j.cur = append(j.cur[:0], row...)
		j.haveCur = true
		j.matches = j.table.Probe(j.cur, j.sharedLeft)
		return nil
	}
}

func (j *streamJoin) next() (relation.Tuple, error) {
	if j.done {
		return nil, nil
	}
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		if j.haveCur {
			if rt := j.matches.Next(); rt != nil {
				for i := range j.sch {
					if lc := j.leftCols[i]; lc >= 0 {
						j.out[i] = j.cur[lc]
					} else {
						j.out[i] = rt[j.rightCols[i]]
					}
				}
				j.st.rows++
				return j.out, nil
			}
			j.haveCur = false
		}
		if j.replay {
			if err := j.replayAdvance(); err != nil {
				return nil, err
			}
			if j.done {
				return nil, nil
			}
			continue
		}
		t, err := j.left.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			// Probe input exhausted: the in-memory pass is over, so the
			// resident table goes back to the governor now.
			j.ctx.release(&j.tabBytes, j.st)
			j.table = nil
			j.left.close()
			if len(j.chunks) == 0 {
				j.done = true
				return nil, nil
			}
			if j.spool == nil {
				// No probe tuple ever arrived; the spilled chunks cannot
				// match anything.
				for _, ch := range j.chunks {
					ch.Close()
				}
				j.chunks = nil
				j.done = true
				return nil, nil
			}
			if err := j.spool.Finish(); err != nil {
				return nil, err
			}
			j.replay = true
			continue
		}
		if err := j.ctx.tick(); err != nil {
			return nil, err
		}
		if len(j.chunks) > 0 {
			// Spool the probe side for the chunk-replay passes.
			if j.spool == nil {
				rf, err := j.ctx.spiller.NewRowFile(len(t))
				if err != nil {
					return nil, err
				}
				j.spool = rf
			}
			if err := j.spool.Append(t); err != nil {
				return nil, err
			}
		}
		j.cur = append(j.cur[:0], t...)
		j.haveCur = true
		j.matches = j.table.Probe(j.cur, j.sharedLeft)
	}
}

func (j *streamJoin) close() {
	if j.closed {
		return
	}
	j.closed = true
	j.done = true
	for fi := range j.filters {
		j.ctx.release(&j.filters[fi].bytes, j.st)
	}
	j.filters = nil
	j.ctx.release(&j.tabBytes, j.st)
	j.table = nil
	for _, ch := range j.chunks {
		ch.Close()
	}
	j.chunks = nil
	if j.spoolRd != nil {
		j.spoolRd.Close()
		j.spoolRd = nil
	}
	if j.spool != nil {
		j.spool.Close()
		j.spool = nil
	}
	j.left.close()
	j.right.close()
}

// streamDistinct projects its input onto cols and deduplicates — the
// SELECT DISTINCT pipeline breaker. When it is the plan root, the engine
// takes ownership of the seen-set as the final result instead of
// materializing a second copy.
type streamDistinct struct {
	ctx       *streamContext
	in        streamOp
	sch       []cq.Var
	idx       []int
	seen      *relation.Relation
	seenBytes int64
	out       relation.Tuple
	st        *opStats
	done      bool
	detached  bool

	// chunks holds seen-set partitions spilled under memory pressure.
	// A fresh seen-set forgets what the spilled partitions contain, so
	// an interior distinct may re-emit a tuple it already passed once;
	// downstream breakers re-deduplicate, and when the distinct is the
	// plan root the engine merges chunks and the resident seen-set with
	// full deduplication (mergeSpilled) instead of detaching.
	chunks []*relation.SpillFile
}

func (d *streamDistinct) schema() []cq.Var { return d.sch }

func (d *streamDistinct) next() (relation.Tuple, error) {
	if d.done {
		return nil, nil
	}
	for {
		t, err := d.in.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			d.done = true
			d.in.close()
			return nil, nil
		}
		if err := d.ctx.tick(); err != nil {
			return nil, err
		}
		for i, j := range d.idx {
			d.out[i] = t[j]
		}
		if !d.seen.Add(d.out) {
			continue
		}
		if err := d.ctx.hold(d.seen.Bytes(), &d.seenBytes, d.st); err != nil {
			if d.ctx.spiller == nil || !errors.Is(err, relation.ErrMemBudget) {
				return nil, err
			}
			if err := d.spillSeen(); err != nil {
				return nil, err
			}
		}
		if d.ctx.maxRows > 0 && d.seen.Len() > d.ctx.maxRows {
			return nil, relation.ErrRowLimit
		}
		if d.ctx.stats != nil {
			if d.seen.Len() > d.ctx.stats.MaxRows {
				d.ctx.stats.MaxRows = d.seen.Len()
			}
			d.ctx.stats.Tuples++
			d.ctx.stats.MaterializedTuples++
		}
		d.st.rows++
		return d.out, nil
	}
}

// spillSeen writes the whole seen-set (which already contains the
// current row) to disk, releases its bytes, and restarts deduplication
// from the current row so the near-term stream still dedups cheaply.
func (d *streamDistinct) spillSeen() error {
	sf, err := d.ctx.spiller.WriteRelation(d.seen)
	if err != nil {
		return err
	}
	d.chunks = append(d.chunks, sf)
	d.ctx.release(&d.seenBytes, d.st)
	d.seen = relation.New(d.sch)
	d.seen.Add(d.out)
	return d.ctx.hold(d.seen.Bytes(), &d.seenBytes, d.st)
}

// detachSeen hands the dedup state to the caller as the final result; its
// bytes stay charged (the result is live until the run returns).
func (d *streamDistinct) detachSeen() *relation.Relation {
	d.detached = true
	return d.seen
}

// mergeSpilled unions the spilled seen-set chunks with the resident one
// into the final result, deduplicating across chunk overlaps. One chunk
// is resident at a time, and the growing result is itself charged — an
// answer that genuinely exceeds the budget still fails honestly, since
// the run must return it materialized.
func (d *streamDistinct) mergeSpilled() (*relation.Relation, error) {
	out := relation.New(d.sch)
	var outBytes int64
	addAll := func(r *relation.Relation) error {
		var ferr error
		r.Each(func(t relation.Tuple) bool {
			if err := d.ctx.tick(); err != nil {
				ferr = err
				return false
			}
			if !out.Add(t) {
				return true
			}
			if err := d.ctx.hold(out.Bytes(), &outBytes, d.st); err != nil {
				ferr = err
				return false
			}
			if d.ctx.maxRows > 0 && out.Len() > d.ctx.maxRows {
				ferr = fmt.Errorf("%w: final result", relation.ErrRowLimit)
				return false
			}
			return true
		})
		return ferr
	}
	if err := addAll(d.seen); err != nil {
		return nil, err
	}
	d.ctx.release(&d.seenBytes, d.st)
	d.seen = nil
	d.detached = true
	for len(d.chunks) > 0 {
		ch := d.chunks[0]
		d.chunks = d.chunks[1:]
		rel, err := ch.Load()
		ch.Close()
		if err != nil {
			return nil, err
		}
		var chBytes int64
		if err := d.ctx.hold(rel.Bytes(), &chBytes, d.st); err != nil {
			return nil, err
		}
		err = addAll(rel)
		d.ctx.release(&chBytes, d.st)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *streamDistinct) close() {
	if !d.detached {
		d.ctx.release(&d.seenBytes, d.st)
		d.seen = nil
	}
	for _, ch := range d.chunks {
		ch.Close()
	}
	d.chunks = nil
	if !d.done {
		d.done = true
		d.in.close()
	}
}

// lower builds the operator graph for n, emitting only the needed
// columns. needed is always a subset of n.Attrs(); the returned
// operator's schema is a superset of needed (joins keep their own key
// columns in the streamed output — they cost nothing until the next
// breaker, which gathers its own needed subset).
func (e *streamExec) lower(n plan.Node, needed []cq.Var) (streamOp, *opStats, error) {
	switch t := n.(type) {
	case *plan.Scan:
		state := e.scans[e.scanOf[t]]
		st := &opStats{
			label:   t.Atom.String(),
			attrs:   needed,
			reduced: state.reduced,
			held:    state.charged,
			total:   state.charged,
			peak:    state.charged,
		}
		if len(needed) < len(t.Atom.Args) {
			st.label += " π" + varList(needed)
		}
		s := &streamScan{
			ctx:   e.ctx,
			state: state,
			sch:   needed,
			rd:    relation.NewColumnReader(state.view, needed),
			st:    st,
		}
		if len(needed) < state.view.Arity() {
			s.dedup = relation.New(needed)
		}
		e.noteArity(len(needed))
		return s, st, nil

	case *plan.Join:
		shared := sharedVars(t.Left.Attrs(), t.Right.Attrs())
		leftNeeded := neededFor(t.Left, needed, shared)
		rightNeeded := neededFor(t.Right, needed, shared)
		left, lst, err := e.lower(t.Left, leftNeeded)
		if err != nil {
			return nil, nil, err
		}
		right, rst, err := e.lower(t.Right, rightNeeded)
		if err != nil {
			return nil, nil, err
		}
		j := &streamJoin{ctx: e.ctx, left: left, right: right}
		ls, rs := left.schema(), right.schema()
		rpos := make(map[cq.Var]int, len(rs))
		for i, a := range rs {
			rpos[a] = i
		}
		// Stored build rows are the rightNeeded gather of the right input.
		stored := rightNeeded
		spos := make(map[cq.Var]int, len(stored))
		for i, a := range stored {
			j.gather = append(j.gather, rpos[a])
			spos[a] = i
		}
		lpos := make(map[cq.Var]int, len(ls))
		for i, a := range ls {
			lpos[a] = i
			j.sch = append(j.sch, a)
			j.leftCols = append(j.leftCols, i)
			j.rightCols = append(j.rightCols, -1)
			if si, ok := spos[a]; ok {
				j.sharedLeft = append(j.sharedLeft, i)
				j.keyPos = append(j.keyPos, si)
			}
		}
		for i, a := range stored {
			if _, ok := lpos[a]; !ok {
				j.sch = append(j.sch, a)
				j.leftCols = append(j.leftCols, -1)
				j.rightCols = append(j.rightCols, i)
			}
		}
		j.out = make(relation.Tuple, len(j.sch))
		j.buf = make(relation.Tuple, len(stored))
		j.table = relation.NewStreamTable(len(stored), j.keyPos)
		j.filters = e.buildFilters(t, stored, spos)
		j.st = &opStats{label: "⋈", attrs: j.sch, children: []*opStats{lst, rst}}
		if e.ctx.stats != nil {
			e.ctx.stats.Joins++
		}
		e.noteArity(len(j.sch))
		return j, j.st, nil

	case *plan.Project:
		// Consecutive projections collapse: π_N(π_C(X)) = π_N(X) under
		// set semantics, so only one DISTINCT state is kept.
		child := t.Child
		for {
			if p, ok := child.(*plan.Project); ok {
				child = p.Child
				continue
			}
			break
		}
		in, cst, err := e.lower(child, needed)
		if err != nil {
			return nil, nil, err
		}
		pos := make(map[cq.Var]int, len(in.schema()))
		for i, a := range in.schema() {
			pos[a] = i
		}
		idx := make([]int, len(needed))
		for i, c := range needed {
			p, ok := pos[c]
			if !ok {
				return nil, nil, fmt.Errorf("engine: projection column x%d not in input schema", c)
			}
			idx[i] = p
		}
		d := &streamDistinct{
			ctx:  e.ctx,
			in:   in,
			sch:  append([]cq.Var(nil), needed...),
			idx:  idx,
			seen: relation.New(needed),
			out:  make(relation.Tuple, len(needed)),
			st:   &opStats{label: "π" + varList(needed), attrs: needed, children: []*opStats{cst}},
		}
		if e.ctx.stats != nil {
			e.ctx.stats.Projections++
		}
		e.noteArity(len(needed))
		return d, d.st, nil

	default:
		return nil, nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// buildFilters attaches StreamFilter specs to a join whose build side is a
// streamed subtree: for every join attribute alive at some probe-side
// scan, build rows are checked against that scan's reduced view. Bare
// (possibly projected) scan build sides are skipped — the pushdown
// pre-pass already reduced those directly.
func (e *streamExec) buildFilters(t *plan.Join, stored []cq.Var, spos map[cq.Var]int) []buildFilter {
	n := t.Right
	for {
		if p, ok := n.(*plan.Project); ok {
			n = p.Child
			continue
		}
		break
	}
	if _, isScan := n.(*plan.Scan); isScan {
		return nil
	}
	alive := e.aliveAt[t.Left]
	byScan := make(map[int][]cq.Var)
	var order []int
	for _, a := range stored {
		ls, ok := alive[a]
		if !ok || len(ls) == 0 {
			continue
		}
		si := ls[0]
		if _, seen := byScan[si]; !seen {
			order = append(order, si)
		}
		byScan[si] = append(byScan[si], a)
	}
	var out []buildFilter
	for _, si := range order {
		attrs := byScan[si]
		pos := make([]int, len(attrs))
		for i, a := range attrs {
			pos[i] = spos[a]
		}
		out = append(out, buildFilter{state: e.scans[si], attrs: attrs, pos: pos})
	}
	return out
}

func (e *streamExec) noteArity(a int) {
	if e.ctx.stats != nil && a > e.ctx.stats.MaxArity {
		e.ctx.stats.MaxArity = a
	}
}

func sharedVars(l, r []cq.Var) []cq.Var {
	in := make(map[cq.Var]bool, len(r))
	for _, a := range r {
		in[a] = true
	}
	var out []cq.Var
	for _, a := range l {
		if in[a] {
			out = append(out, a)
		}
	}
	return out
}

// ExecStream evaluates the plan with the pipelined streaming engine:
// semijoin pushdown before execution, fused projections, and live-byte
// memory accounting (Stats.Bytes and Stats.PeakBytes report the peak of
// live bytes, not cumulative materialization). Results are identical to
// Exec. The subplan cache (opt.Cache) memoizes the semijoin-reduced base
// scans, so repeated plans skip the pushdown sweeps.
func ExecStream(p plan.Node, db cq.Database, opt Options) (*Result, error) {
	return ExecStreamContext(context.Background(), p, db, opt)
}

// ExecStreamContext is ExecStream under a context: the pipeline and the
// pushdown sweeps poll the context and surface cancellation as
// ErrCanceled.
func ExecStreamContext(cctx context.Context, p plan.Node, db cq.Database, opt Options) (*Result, error) {
	res, _, err := execStream(cctx, p, db, opt)
	return res, err
}

func execStream(cctx context.Context, p plan.Node, db cq.Database, opt Options) (*Result, *opStats, error) {
	var stats Stats
	ctx := &streamContext{cctx: cctx, maxRows: opt.MaxRows, maxBytes: opt.MaxBytes, stats: &stats}
	if opt.Timeout > 0 {
		ctx.deadline = time.Now().Add(opt.Timeout)
	}
	start := time.Now()
	if opt.SpillDir != "" {
		sp, err := relation.NewSpiller(opt.SpillDir, opt.MaxSpillBytes)
		if err != nil {
			stats.Elapsed = time.Since(start)
			return &Result{Stats: stats}, nil, classifyErr(err, stats.Elapsed)
		}
		ctx.spiller = sp
		defer sp.Cleanup()
	}
	e := &streamExec{
		ctx:       ctx,
		db:        db,
		scanOf:    make(map[*plan.Scan]int),
		edgeOf:    make(map[[2]int]int),
		aliveAt:   make(map[plan.Node]map[cq.Var][]int),
		nextFresh: -1,
	}
	finish := func() {
		stats.Elapsed = time.Since(start)
		stats.Bytes = ctx.peak
		stats.PeakBytes = ctx.peak
		if ctx.spiller != nil {
			stats.SpilledBytes, stats.SpillFiles = ctx.spiller.Stats()
		}
	}
	fail := func(root *opStats, err error) (*Result, *opStats, error) {
		finish()
		return &Result{Stats: stats}, root, classifyErr(err, stats.Elapsed)
	}
	if _, err := e.collect(p); err != nil {
		return nil, nil, err // structural, not a run failure
	}
	// Cached pushdown: if every scan's reduced view is memoized for this
	// (database, plan) pair, swap the views in and skip the sweeps.
	var scanKeys []string
	reduced := false
	if opt.Cache != nil {
		scanKeys = streamScanKeys(DatabaseFingerprint(db), p, len(e.scans))
		views := make([]*relation.Relation, len(e.scans))
		counts := make([]int64, len(e.scans))
		hitAll := true
		for i := range e.scans {
			rel, st, hit := opt.Cache.get(scanKeys[i])
			if !hit {
				hitAll = false
				break
			}
			views[i], counts[i] = rel, st.ReducedTuples
		}
		if hitAll {
			for i, s := range e.scans {
				s.view = scanFromCanonical(views[i], s.node.Atom.Args)
				s.reduced = counts[i]
				stats.ReducedTuples += counts[i]
				if counts[i] > 0 {
					// A reduced view owns a private arena; an unreduced one
					// is still a zero-copy binding of the base relation.
					if err := ctx.hold(s.view.Bytes(), &s.charged, nil); err != nil {
						return fail(nil, err)
					}
				}
			}
			stats.CacheHits += int64(len(e.scans))
			reduced = true
		} else {
			stats.CacheMisses += int64(len(e.scans))
		}
	}
	if !reduced {
		if err := e.reduceAll(); err != nil {
			return fail(nil, err)
		}
		if opt.Cache != nil {
			for i, s := range e.scans {
				opt.Cache.put(scanKeys[i], scanToCanonical(s.view, s.node.Atom.Args),
					Stats{ReducedTuples: s.reduced})
			}
		}
	}
	root, rootSt, err := e.lower(p, append([]cq.Var(nil), p.Attrs()...))
	if err != nil {
		return nil, nil, err
	}
	defer root.close()
	var out *relation.Relation
	if d, ok := root.(*streamDistinct); ok {
		for {
			t, err := d.next()
			if err != nil {
				return fail(rootSt, err)
			}
			if t == nil {
				break
			}
		}
		if len(d.chunks) == 0 {
			out = d.detachSeen()
		} else {
			var err error
			out, err = d.mergeSpilled()
			if err != nil {
				return fail(rootSt, err)
			}
		}
	} else {
		out = relation.New(append([]cq.Var(nil), root.schema()...))
		var outBytes int64
		for {
			t, err := root.next()
			if err != nil {
				return fail(rootSt, err)
			}
			if t == nil {
				break
			}
			out.Add(t)
			if err := ctx.hold(out.Bytes(), &outBytes, rootSt); err != nil {
				return fail(rootSt, err)
			}
			if opt.MaxRows > 0 && out.Len() > opt.MaxRows {
				return fail(rootSt, fmt.Errorf("%w: final result", relation.ErrRowLimit))
			}
		}
	}
	root.close()
	finish()
	if out.Arity() > stats.MaxArity {
		stats.MaxArity = out.Arity()
	}
	if out.Len() > stats.MaxRows {
		stats.MaxRows = out.Len()
	}
	return &Result{Rel: out, Stats: stats}, rootSt, nil
}

// ExplainStream renders the streaming engine's fused operator tree. When
// analyze is true the plan executes under opt and every operator line
// carries its rows/bytes/peak counters — bytes is the operator's
// cumulative materialization, peak its resident high-water mark — plus
// reduced= where pushed-down semijoins removed tuples and build= on hash
// builds; the trailer reports the run's peak live bytes and
// reduced-vs-materialized totals.
func ExplainStream(p plan.Node, db cq.Database, opt Options, analyze bool) (string, error) {
	var rootSt *opStats
	var st Stats
	if analyze {
		res, r, err := execStream(context.Background(), p, db, opt)
		if err != nil {
			return "", err
		}
		rootSt, st = r, res.Stats
	} else {
		ctx := &streamContext{maxRows: opt.MaxRows, maxBytes: opt.MaxBytes}
		e := &streamExec{
			ctx:       ctx,
			db:        db,
			scanOf:    make(map[*plan.Scan]int),
			edgeOf:    make(map[[2]int]int),
			aliveAt:   make(map[plan.Node]map[cq.Var][]int),
			nextFresh: -1,
		}
		if _, err := e.collect(p); err != nil {
			return "", err
		}
		root, r, err := e.lower(p, append([]cq.Var(nil), p.Attrs()...))
		if err != nil {
			return "", err
		}
		root.close()
		rootSt = r
	}
	var b strings.Builder
	b.WriteString("stream pipeline\n")
	var walk func(o *opStats, depth int)
	walk = func(o *opStats, depth int) {
		indent := strings.Repeat("  ", depth+1)
		fmt.Fprintf(&b, "%s%s  arity=%d", indent, o.label, len(o.attrs))
		if analyze {
			fmt.Fprintf(&b, " rows=%d bytes=%d peak=%d", o.rows, o.total, o.peak)
			if o.build > 0 {
				fmt.Fprintf(&b, " build=%d", o.build)
			}
			if o.reduced > 0 {
				fmt.Fprintf(&b, " reduced=%d", o.reduced)
			}
		}
		b.WriteString("\n")
		for _, c := range o.children {
			walk(c, depth+1)
		}
	}
	walk(rootSt, 0)
	if analyze {
		fmt.Fprintf(&b, "memory: %d bytes peak live", st.PeakBytes)
		if opt.MaxBytes > 0 {
			fmt.Fprintf(&b, " (budget %d)", opt.MaxBytes)
		}
		b.WriteString("\n")
		if st.SpilledBytes > 0 {
			fmt.Fprintf(&b, "spill: %d bytes across %d files\n",
				st.SpilledBytes, st.SpillFiles)
		}
		fmt.Fprintf(&b, "tuples: materialized=%d reduced=%d\n",
			st.MaterializedTuples, st.ReducedTuples)
		if opt.Cache != nil {
			fmt.Fprintf(&b, "cache: run hits=%d misses=%d; %s\n",
				st.CacheHits, st.CacheMisses, opt.Cache.Counters())
		}
	}
	return b.String(), nil
}
