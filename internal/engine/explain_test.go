package engine

import (
	"strings"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

func TestExplainStructureOnly(t *testing.T) {
	q := cycleQuery(3)
	p := straightforward(q)
	out, err := Explain(p, edgeDB(), Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"π{x0}", "⋈", "edge(x0,x1)", "arity=3"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("explain missing %q:\n%s", marker, out)
		}
	}
	if strings.Contains(out, "rows=") {
		t.Fatalf("non-analyze explain must not show rows:\n%s", out)
	}
}

func TestExplainAnalyze(t *testing.T) {
	q := cycleQuery(3)
	p := straightforward(q)
	out, err := Explain(p, edgeDB(), Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows=3") { // final projection: 3 colors
		t.Fatalf("explain analyze missing final cardinality:\n%s", out)
	}
	if !strings.Contains(out, "rows=6") { // each scan: 6 tuples
		t.Fatalf("explain analyze missing scan cardinality:\n%s", out)
	}
	// Indentation encodes tree depth: the deepest scans are indented.
	if !strings.Contains(out, "      edge(") {
		t.Fatalf("explain lacks indentation:\n%s", out)
	}
}

func TestExplainAnalyzePropagatesErrors(t *testing.T) {
	p := &plan.Scan{Atom: cq.Atom{Rel: "nope", Args: []cq.Var{0, 1}}}
	if _, err := Explain(p, edgeDB(), Options{}, true); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}
