package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/relation"
)

// TestStreamDifferentialFigureWorkloads checks the streaming executor
// against the materializing one and the backtracking oracle on every
// Figure-6–9 workload, across the plan shapes it will actually be handed
// (left-deep with projections, bushy, and the exponential left-deep
// straightforward chains).
func TestStreamDifferentialFigureWorkloads(t *testing.T) {
	for _, w := range figureWorkloads(t) {
		for _, free := range [][]cq.Var{instance.BooleanFree(w.g), {0, 1}} {
			q, err := instance.ColorQuery(w.g, free)
			if err != nil {
				t.Fatal(err)
			}
			db := instance.ColorDatabase(3)
			oracle, err := EvalOracle(q, db)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range core.Methods {
				t.Run(fmt.Sprintf("%s/free=%d/%s", w.name, len(free), m), func(t *testing.T) {
					p, err := core.BuildPlan(m, q, nil)
					if err != nil {
						t.Fatal(err)
					}
					exec, err := Exec(p, db, Options{})
					if err != nil {
						t.Fatal(err)
					}
					stream, err := ExecStream(p, db, Options{})
					if err != nil {
						t.Fatal(err)
					}
					if !stream.Rel.Equal(exec.Rel) {
						t.Fatalf("stream relation differs from Exec (%d vs %d rows)",
							stream.Rel.Len(), exec.Rel.Len())
					}
					if !stream.Rel.Equal(oracle) {
						t.Fatalf("stream relation differs from oracle (%d vs %d rows)",
							stream.Rel.Len(), oracle.Len())
					}
				})
			}
		}
	}
}

// TestStreamDifferentialRandomGraphs sweeps random sparse (mostly
// acyclic) and dense (cyclic) graphs through the streaming executor and
// compares against the oracle — the pushdown pre-pass must stay sound on
// arbitrary join structure, including cycles where every scan pair
// reduces every other.
func TestStreamDifferentialRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 24; trial++ {
		n := 4 + rng.Intn(3)
		maxM := n * (n - 1) / 2
		m := 1 + rng.Intn(maxM)
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		free := instance.BooleanFree(g)
		if trial%2 == 0 {
			free = []cq.Var{0}
		}
		q, err := instance.ColorQuery(g, free)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, method := range []core.Method{core.MethodEarlyProjection, core.MethodBucketElimination} {
			p, err := core.BuildPlan(method, q, rng)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ExecStream(p, db, Options{})
			if err != nil {
				t.Fatalf("trial %d (%s, n=%d m=%d): %v", trial, method, n, m, err)
			}
			if !res.Rel.Equal(oracle) {
				t.Fatalf("trial %d (%s, n=%d m=%d): stream result differs from oracle (%d vs %d rows)",
					trial, method, n, m, res.Rel.Len(), oracle.Len())
			}
		}
	}
}

// selectiveChain builds the Figure-6-style selective path workload the
// streaming engine exists for: a chain of random binary relations with a
// tiny head, so pushdown shrinks every hop before any join runs.
func selectiveChain(atoms, rows, dom int, seed int64) (*cq.Query, cq.Database) {
	rng := rand.New(rand.NewSource(seed))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0, 1}}
	for i := 0; i < atoms; i++ {
		n := rows
		if i == 0 {
			n = 5 // the selective head
		}
		r := relation.New([]relation.Attr{0, 1})
		for j := 0; j < n; j++ {
			r.Add(relation.Tuple{relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom))})
		}
		name := fmt.Sprintf("r%d", i)
		db[name] = r
		q.Atoms = append(q.Atoms, cq.Atom{Rel: name, Args: []cq.Var{cq.Var(i), cq.Var(i + 1)}})
	}
	return q, db
}

// TestStreamPeakBytesReduction pins the tentpole's acceptance property at
// test scale: on the selective chain, the streaming engine's peak live
// bytes are at least 5x below the iterator engine's on the same plan,
// with identical results.
func TestStreamPeakBytesReduction(t *testing.T) {
	q, db := selectiveChain(5, 500, 300, 11)
	p, err := core.BuildPlan(core.MethodEarlyProjection, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := ExecIterator(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ExecStream(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Rel.Equal(iter.Rel) {
		t.Fatalf("stream relation differs from iterator (%d vs %d rows)",
			stream.Rel.Len(), iter.Rel.Len())
	}
	if stream.Stats.Bytes*5 > iter.Stats.Bytes {
		t.Fatalf("peak bytes not reduced 5x: stream=%d iterator=%d",
			stream.Stats.Bytes, iter.Stats.Bytes)
	}
	if stream.Stats.ReducedTuples == 0 {
		t.Fatal("pushdown removed no tuples on the selective chain")
	}
}

// TestStreamLiveBudget pins the live-byte (rather than cumulative)
// accounting of both streaming engines: a run fits exactly inside a
// budget equal to its own reported peak — under the old accumulate-only
// accounting a multi-join chain's cumulative charge exceeds its peak and
// would trip ErrMemLimit — while a fraction of the peak still fails.
func TestStreamLiveBudget(t *testing.T) {
	q, db := selectiveChain(5, 500, 300, 11)
	p, err := core.BuildPlan(core.MethodEarlyProjection, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	type engineFn struct {
		name string
		run  func(opt Options) (*Result, error)
	}
	engines := []engineFn{
		{"iterator", func(opt Options) (*Result, error) { return ExecIterator(p, db, opt) }},
		{"stream", func(opt Options) (*Result, error) { return ExecStream(p, db, opt) }},
	}
	for _, e := range engines {
		free, err := e.run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		peak := free.Stats.Bytes
		if peak == 0 {
			t.Fatalf("%s: peak bytes not instrumented", e.name)
		}
		if peak != free.Stats.PeakBytes {
			t.Fatalf("%s: Bytes=%d != PeakBytes=%d", e.name, peak, free.Stats.PeakBytes)
		}
		if _, err := e.run(Options{MaxBytes: peak}); err != nil {
			t.Fatalf("%s: run does not fit its own peak %d: %v", e.name, peak, err)
		}
		if _, err := e.run(Options{MaxBytes: peak / 8}); !errors.Is(err, ErrMemLimit) {
			t.Fatalf("%s: budget peak/8: err = %v, want ErrMemLimit", e.name, err)
		}
	}
	// The iterator run materializes several hash tables over the chain;
	// fitting in a budget equal to the peak is only meaningful if the
	// cumulative charge is genuinely larger, i.e. state was released.
	iter, err := ExecIterator(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cumulative int64
	for _, a := range q.Atoms[1:] {
		cumulative += db[a.Rel].Bytes() / 2 // half: arena only, no keys
	}
	if cumulative <= iter.Stats.Bytes {
		t.Skipf("workload too small to separate cumulative (%d) from peak (%d)",
			cumulative, iter.Stats.Bytes)
	}
}

// TestStreamCancellation cancels the streaming executor before the run
// and mid-pipeline, expecting ErrCanceled (matching context.Canceled) and
// no goroutine leak — the -race run in `make test` sweeps this.
func TestStreamCancellation(t *testing.T) {
	// Order 14 streams for seconds; the cancels below cut it to
	// milliseconds.
	g := graph.AugmentedCircularLadder(14)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecStreamContext(pre, p, db, Options{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: err = %v, want ErrCanceled", err)
	}
	ctx, cancelMid := context.WithCancel(context.Background())
	timer := time.AfterFunc(3*time.Millisecond, cancelMid)
	_, err = ExecStreamContext(ctx, p, db, Options{})
	timer.Stop()
	cancelMid()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run: err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run: err = %v, want errors.Is(err, context.Canceled)", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked after cancellations: %d before, %d after", base, n)
	}
}

// TestExplainStreamAnalyze checks the EXPLAIN ANALYZE operator tree: one
// line per fused operator with rows/bytes/peak counters, pushdown
// reductions on the scans, and the peak-live trailer.
func TestExplainStreamAnalyze(t *testing.T) {
	q, db := selectiveChain(4, 200, 150, 7)
	p, err := core.BuildPlan(core.MethodEarlyProjection, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExplainStream(p, db, Options{MaxBytes: 1 << 20}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stream pipeline",
		"rows=", "bytes=", "peak=",
		"reduced=",
		"build=",
		"bytes peak live (budget 1048576)",
		"tuples: materialized=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	structural, err := ExplainStream(p, db, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(structural, "rows=") {
		t.Fatalf("structural EXPLAIN must not carry row counts:\n%s", structural)
	}
	if !strings.Contains(structural, "arity=") {
		t.Fatalf("structural EXPLAIN missing arity:\n%s", structural)
	}
}

// TestStreamRowAndTimeLimits checks the streaming engine surfaces the
// governor's other sentinels like the sibling executors. Row caps bound
// materialized state — for a streaming run that is the pipeline-breaker
// contents and the final result, so the cap is exercised with a free
// variable set large enough that the result itself blows it.
func TestStreamRowAndTimeLimits(t *testing.T) {
	g := graph.Path(8)
	all := make([]cq.Var, 8)
	for i := range all {
		all[i] = cq.Var(i)
	}
	q, err := instance.ColorQuery(g, all)
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3*2^7 = 384 proper colorings of the path blow a 100-row cap.
	if _, err := ExecStream(p, db, Options{MaxRows: 100}); !errors.Is(err, ErrRowLimit) {
		t.Fatalf("row cap: err = %v, want ErrRowLimit", err)
	}

	big := graph.AugmentedCircularLadder(14)
	bq, err := instance.ColorQuery(big, instance.BooleanFree(big))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := core.BuildPlan(core.MethodStraightforward, bq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecStream(bp, db, Options{Timeout: 5 * time.Millisecond}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout: err = %v, want ErrTimeout", err)
	}
}
