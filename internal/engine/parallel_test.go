package engine

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

func TestExecParallelMatchesSequential(t *testing.T) {
	db := edgeDB()
	for _, n := range []int{3, 5, 7} {
		q := cycleQuery(n)
		p := straightforward(q)
		a, err := Exec(p, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ExecParallel(p, db, Options{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Rel.Equal(b.Rel) {
			t.Fatalf("cycle %d: parallel result differs", n)
		}
		if b.Stats.Joins != a.Stats.Joins || b.Stats.Projections != a.Stats.Projections {
			t.Fatalf("cycle %d: operator counts differ: %+v vs %+v", n, b.Stats, a.Stats)
		}
	}
}

func TestExecParallelBushyPlan(t *testing.T) {
	// A genuinely bushy plan: two independent 3-chains joined at the
	// top. Both sides are non-trivial subtrees, so they fork.
	db := edgeDB()
	side := func(base cq.Var) plan.Node {
		return &plan.Project{
			Child: &plan.Join{
				Left:  scan(base, base+1),
				Right: scan(base+1, base+2),
			},
			Cols: []cq.Var{base, base + 2},
		}
	}
	p := &plan.Project{
		Child: &plan.Join{Left: side(0), Right: side(2)},
		Cols:  []cq.Var{0, 4},
	}
	a, err := Exec(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		b, err := ExecParallel(p, db, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Rel.Equal(b.Rel) {
			t.Fatalf("workers=%d: parallel result differs", workers)
		}
	}
}

func TestExecParallelRandomPlans(t *testing.T) {
	db := edgeDB()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		// Random bushy join shape over a chain of variables.
		nvars := 4 + rng.Intn(4)
		var build func(lo, hi int) plan.Node
		build = func(lo, hi int) plan.Node {
			if hi-lo == 1 {
				return scan(lo, lo+1)
			}
			mid := lo + 1 + rng.Intn(hi-lo-1)
			j := &plan.Join{Left: build(lo, mid), Right: build(mid, hi)}
			if rng.Intn(2) == 0 {
				return &plan.Project{Child: j, Cols: []cq.Var{lo, hi}}
			}
			return j
		}
		p := &plan.Project{Child: build(0, nvars), Cols: []cq.Var{0}}
		a, err := Exec(p, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ExecParallel(p, db, Options{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Rel.Equal(b.Rel) {
			t.Fatalf("trial %d: parallel differs", trial)
		}
	}
}

func TestExecParallelTimeout(t *testing.T) {
	q := cycleQuery(13)
	_, err := ExecParallel(straightforward(q), edgeDB(), Options{Timeout: time.Nanosecond}, 4)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestExecParallelRowCap(t *testing.T) {
	q := cycleQuery(9)
	_, err := ExecParallel(straightforward(q), edgeDB(), Options{MaxRows: 10}, 4)
	if !errors.Is(err, ErrRowLimit) {
		t.Fatalf("err = %v, want ErrRowLimit", err)
	}
}

func TestExecParallelDegeneratesToSequential(t *testing.T) {
	q := cycleQuery(4)
	p := straightforward(q)
	a, err := ExecParallel(p, edgeDB(), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rel.Len() != 3 {
		t.Fatalf("workers=0 result: %v", a.Rel)
	}
}
