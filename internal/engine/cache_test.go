package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// pathPlan builds π{free}(edge(v0,v1) ⋈ edge(v1,v2) ⋈ ...) over the
// 3-COLOR edge relation, with variables offset by base so structurally
// identical plans over disjoint variable names are easy to make.
func pathPlan(length int, base cq.Var) plan.Node {
	var n plan.Node = &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{base, base + 1}}}
	for i := 1; i < length; i++ {
		right := &plan.Scan{Atom: cq.Atom{Rel: "edge", Args: []cq.Var{base + cq.Var(i), base + cq.Var(i) + 1}}}
		n = &plan.Join{Left: n, Right: right}
	}
	return &plan.Project{Cols: []cq.Var{base}, Child: n}
}

func TestCacheHitAcrossRenamedPlans(t *testing.T) {
	db := instance.ColorDatabase(3)
	c := NewCache(0)

	first, err := Exec(pathPlan(4, 0), db, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHits != 0 || first.Stats.CacheMisses == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", first.Stats.CacheHits, first.Stats.CacheMisses)
	}

	// Same structure over entirely different variable names: the root
	// lookup must hit, so the run performs no joins at all.
	second, err := Exec(pathPlan(4, 100), db, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheHits != 1 || second.Stats.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 1/0", second.Stats.CacheHits, second.Stats.CacheMisses)
	}
	if got, want := second.Rel.Attrs()[0], 100; got != want {
		t.Fatalf("warm result bound to attr %d, want %d", got, want)
	}
	if first.Rel.Len() != second.Rel.Len() {
		t.Fatalf("cardinality drifted: %d vs %d", first.Rel.Len(), second.Rel.Len())
	}
	// The replayed instrumentation must match the cold run exactly.
	f, s := first.Stats, second.Stats
	if f.MaxRows != s.MaxRows || f.MaxArity != s.MaxArity || f.Tuples != s.Tuples ||
		f.Work != s.Work || f.Joins != s.Joins || f.Projections != s.Projections ||
		f.Bytes != s.Bytes || f.PeakBytes != s.PeakBytes {
		t.Fatalf("replayed stats differ:\ncold %+v\nwarm %+v", f, s)
	}
}

func TestCacheDistinguishesDatabases(t *testing.T) {
	c := NewCache(0)
	p := pathPlan(3, 0)
	r3, err := Exec(p, instance.ColorDatabase(3), Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Exec(p, instance.ColorDatabase(2), Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.CacheHits != 0 {
		t.Fatalf("2-color run hit 3-color entries (%d hits)", r2.Stats.CacheHits)
	}
	// 2-COLOR on an even path is satisfiable, 3-COLOR too; the point is
	// the results came from the right database.
	if r3.Rel.Len() == r2.Rel.Len() {
		t.Fatalf("suspicious: same cardinality %d from different databases", r3.Rel.Len())
	}
}

func TestCacheRowCapHonesty(t *testing.T) {
	g := graph.AugmentedPath(8)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	c := NewCache(0)
	// Populate the cache with an uncapped run whose intermediates are
	// large...
	if _, err := Exec(p, db, Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	// ...then a capped run must still report the violation instead of
	// serving the oversized result from cache.
	if _, err := Exec(p, db, Options{Cache: c, MaxRows: 100}); !errors.Is(err, ErrRowLimit) {
		t.Fatalf("capped warm run: err = %v, want ErrRowLimit", err)
	}
}

func TestCacheEvictionRespectsBudget(t *testing.T) {
	// Small budget; entries large enough to force eviction inside a
	// shard. Drive put/get directly to keep the scenario exact.
	c := NewCache(16 << 10)
	mk := func(seed int) *relation.Relation {
		r := relation.New([]relation.Attr{0, 1})
		for i := 0; i < 8; i++ {
			r.Add(relation.Tuple{relation.Value(seed), relation.Value(i)})
		}
		return r
	}
	for i := 0; i < 64; i++ {
		c.put(fmt.Sprintf("key-%d", i), mk(i), Stats{})
	}
	cc := c.Counters()
	if cc.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", 16<<10, cc)
	}
	if cc.Bytes > 16<<10 {
		t.Fatalf("accounted bytes %d exceed budget %d", cc.Bytes, 16<<10)
	}
	per := int64(len(c.shards))
	if cc.Entries+cc.Evictions < 64-per {
		t.Fatalf("entries %d + evictions %d do not account for 64 puts", cc.Entries, cc.Evictions)
	}
	// An entry bigger than a shard's share is refused outright.
	big := relation.New([]relation.Attr{0})
	for i := 0; i < 16384; i++ {
		big.Add(relation.Tuple{relation.Value(i)})
	}
	before := c.Counters().Entries
	c.put("oversized", big, Stats{})
	if after := c.Counters().Entries; after != before {
		t.Fatalf("oversized entry was admitted (%d -> %d entries)", before, after)
	}
}

func TestCacheConcurrentMixedExecutors(t *testing.T) {
	// Sequential and parallel executors sharing one cache must agree
	// with an uncached reference; run them concurrently so `-race`
	// sweeps the shard locking and the shared cached relations.
	g := graph.Ladder(6)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodBucketElimination, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Exec(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			var res *Result
			var err error
			if i%2 == 0 {
				res, err = Exec(p, db, Options{Cache: c})
			} else {
				res, err = ExecParallel(p, db, Options{Cache: c}, 4)
			}
			if err == nil && !res.Rel.Equal(ref.Rel) {
				err = fmt.Errorf("goroutine %d: relation differs", i)
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	cc := c.Counters()
	if cc.Hits == 0 {
		t.Fatalf("eight identical executions produced no cache hits: %+v", cc)
	}
}

func TestExplainReportsCache(t *testing.T) {
	db := instance.ColorDatabase(3)
	c := NewCache(0)
	p := pathPlan(3, 0)
	if _, err := Exec(p, db, Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	out, err := Explain(p, db, Options{Cache: c}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(cached)") {
		t.Fatalf("EXPLAIN ANALYZE lacks (cached) markers:\n%s", out)
	}
	if !strings.Contains(out, "cache: run hits=") {
		t.Fatalf("EXPLAIN ANALYZE lacks the cache summary line:\n%s", out)
	}
}
