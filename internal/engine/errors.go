package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"projpush/internal/relation"
)

// The engine reports every abnormal termination through one of five
// sentinel errors, so harnesses can classify outcomes with errors.Is
// without knowing which executor or kernel produced them. classifyErr is
// the single translation point from the relation layer's errors; all
// three executors (materializing, partition-parallel, iterator) route
// their failures through it.

// sentinelError is a sentinel that additionally aliases a standard
// library error: errors.Is(err, ErrTimeout) and
// errors.Is(err, context.DeadlineExceeded) both hold for an engine
// timeout, so engine-aware and context-aware callers agree.
type sentinelError struct {
	msg   string
	alias error
}

func (e *sentinelError) Error() string { return e.msg }

func (e *sentinelError) Is(target error) bool {
	return e.alias != nil && target == e.alias
}

// ErrTimeout is returned when a run exceeds Options.Timeout. It matches
// context.DeadlineExceeded under errors.Is.
var ErrTimeout error = &sentinelError{
	msg:   "engine: execution timed out",
	alias: context.DeadlineExceeded,
}

// ErrCanceled is returned when the context passed to ExecContext (or its
// siblings) is canceled mid-run. It matches context.Canceled under
// errors.Is.
var ErrCanceled error = &sentinelError{
	msg:   "engine: execution canceled",
	alias: context.Canceled,
}

// ErrRowLimit is returned when an intermediate result exceeds
// Options.MaxRows.
var ErrRowLimit = errors.New("engine: intermediate result exceeds row cap")

// ErrMemLimit is returned when a run's materialized bytes exceed
// Options.MaxBytes.
var ErrMemLimit = errors.New("engine: execution exceeds memory budget")

// ErrInternal is returned when a worker goroutine panics mid-run: the
// panic is recovered at the pool boundary (relation.PanicError) and
// surfaces here instead of crashing the process. The wrapped error
// carries the panicking goroutine's stack.
var ErrInternal = errors.New("engine: internal execution fault")

// ErrSpill is returned when spill-to-disk execution hits an
// unrecoverable disk failure: a spill write or read-back failed, or the
// disk budget (Options.MaxSpillBytes / real ENOSPC) is exhausted. It
// matches ErrInternal under errors.Is so circuit breakers and the
// degradation ladder treat a dying disk like any other internal fault.
var ErrSpill error = &sentinelError{
	msg:   "engine: unrecoverable spill I/O failure",
	alias: ErrInternal,
}

// ErrOverWidth is returned when width-aware admission control rejects a
// query before execution: its predicted intermediate arity (plan width)
// or AGM output bound exceeds the configured threshold. The paper's
// Theorems 1–2 make this a static predictor — treewidth+1 bounds the
// achievable arity — so rejection costs plan construction only, never a
// materialized intermediate. Terminal: retrying the same query cannot
// change its width.
var ErrOverWidth = errors.New("engine: query exceeds admission width threshold")

// ErrOverloaded is returned when a request is shed by a concurrency
// limiter: every execution slot is busy and the bounded wait queue is
// full (or the queue wait expired). Retryable: the same query is
// admissible once load subsides.
var ErrOverloaded = errors.New("engine: request shed under load")

// classifyErr converts a relation-layer failure into the engine's
// sentinel errors. It is the shared error path of Exec, ExecParallel and
// ExecIterator; errors it does not recognize pass through unchanged.
func classifyErr(err error, elapsed time.Duration) error {
	if err == nil {
		return nil
	}
	var pe *relation.PanicError
	switch {
	case errors.Is(err, relation.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w after %v: %v", ErrTimeout, elapsed, err)
	case errors.Is(err, relation.ErrCanceled):
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	case errors.Is(err, relation.ErrRowLimit):
		return fmt.Errorf("%w: %v", ErrRowLimit, err)
	case errors.Is(err, relation.ErrSpillIO), errors.Is(err, relation.ErrSpillFull):
		return fmt.Errorf("%w: %v", ErrSpill, err)
	case errors.Is(err, relation.ErrMemBudget):
		return fmt.Errorf("%w: %v", ErrMemLimit, err)
	case errors.As(err, &pe):
		return fmt.Errorf("%w: %v", ErrInternal, err)
	}
	return err
}
