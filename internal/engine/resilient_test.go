package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"projpush/internal/core"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
	"projpush/internal/resilience"
)

// TestDegradableMatrix pins the sentinel classification that routes the
// degradation ladder: resource exhaustion and internal faults re-plan,
// caller-initiated stops and admission verdicts do not — and the
// classification must survive %w wrapping, since every engine layer
// annotates errors on the way up.
func TestDegradableMatrix(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"row limit", engine.ErrRowLimit, true},
		{"mem limit", engine.ErrMemLimit, true},
		{"internal", engine.ErrInternal, true},
		{"timeout", engine.ErrTimeout, false},
		{"canceled", engine.ErrCanceled, false},
		{"ctx deadline", context.DeadlineExceeded, false},
		{"ctx canceled", context.Canceled, false},
		{"over width", engine.ErrOverWidth, false},
		{"overloaded", engine.ErrOverloaded, false},
		{"unrelated", errors.New("disk on fire"), false},
	}
	for _, c := range cases {
		if got := engine.Degradable(c.err); got != c.want {
			t.Errorf("Degradable(%s) = %v, want %v", c.name, got, c.want)
		}
		if c.err == nil {
			continue
		}
		wrapped := fmt.Errorf("join node 3: %w", c.err)
		if got := engine.Degradable(wrapped); got != c.want {
			t.Errorf("Degradable(wrapped %s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestLadderExhaustion drives every rung into the same failure: with a
// one-row cap, no method can materialize anything, so the ladder must
// run out. The contract: the last rung's genuine error comes back (not a
// synthetic "ladder exhausted"), and Stats.Attempts records every rung
// tried, in order, each with its own failure.
func TestLadderExhaustion(t *testing.T) {
	g := graph.Complete(3)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := engine.Options{MaxRows: 1}
	res, err := engine.ExecResilient(context.Background(), p, resilience.DegradationLadder(q, nil), db, opt, 1)
	if !errors.Is(err, engine.ErrRowLimit) {
		t.Fatalf("exhausted ladder: err = %v, want ErrRowLimit", err)
	}
	if res == nil {
		t.Fatal("exhausted ladder must still return the last attempt's result")
	}
	wantRungs := []string{"given", string(core.MethodYannakakis), string(core.MethodStream), string(core.MethodEarlyProjection), string(core.MethodBucketElimination)}
	if len(res.Stats.Attempts) != len(wantRungs) {
		t.Fatalf("Attempts = %d, want %d: %+v", len(res.Stats.Attempts), len(wantRungs), res.Stats.Attempts)
	}
	for i, a := range res.Stats.Attempts {
		if a.Method != wantRungs[i] {
			t.Errorf("attempt %d method = %q, want %q", i, a.Method, wantRungs[i])
		}
		if a.Err == "" {
			t.Errorf("attempt %d (%s): no recorded failure on an exhausted ladder", i, a.Method)
		}
	}
}

// TestLadderSkipsBrokenRung: a rung whose plan construction fails is
// recorded with a "plan: " prefix and the ladder continues to the next
// rung rather than aborting.
func TestLadderSkipsBrokenRung(t *testing.T) {
	g := graph.AugmentedLadder(5)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ladder := []engine.Fallback{
		{Name: "broken", Build: func() (plan.Node, error) { return nil, errors.New("no such method") }},
		{Name: string(core.MethodBucketElimination), Build: func() (plan.Node, error) {
			return core.BucketElimination(q, nil)
		}},
	}
	// A cap the straightforward plan blows but bucket elimination does not.
	opt := engine.Options{MaxRows: 2000}
	res, err := engine.ExecResilient(context.Background(), p, ladder, db, opt, 1)
	if err != nil {
		t.Fatalf("ladder with a working final rung: %v", err)
	}
	if len(res.Stats.Attempts) != 3 {
		t.Fatalf("Attempts = %+v, want given, broken, bucketelimination", res.Stats.Attempts)
	}
	if !strings.HasPrefix(res.Stats.Attempts[1].Err, "plan: ") {
		t.Errorf("broken rung err = %q, want 'plan: ' prefix", res.Stats.Attempts[1].Err)
	}
	if res.Stats.Attempts[2].Err != "" {
		t.Errorf("final rung err = %q, want success", res.Stats.Attempts[2].Err)
	}
	if !res.Nonempty() {
		t.Error("augmented ladder is 3-colorable: want NONEMPTY")
	}
}
