package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"projpush/internal/cq"
	"projpush/internal/faultinject"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// ExecParallel evaluates the plan like Exec but exploits parallelism on
// two axes:
//
//   - across the plan: the two sides of a join are computed concurrently
//     when both are non-trivial subtrees. Bucket elimination and
//     tree-decomposition plans are bushy — sibling buckets share no state
//     — so independent subtrees parallelize cleanly.
//
//   - inside a join: large joins are radix-partitioned on the join key
//     and the partitions are joined by a worker pool
//     (relation.ParallelJoinLimited). This is what lets chain-shaped
//     (left-deep) plans — the straightforward method on paths, ladders,
//     and augmented circular ladders — benefit from workers > 1, where
//     subtree parallelism alone degenerates to sequential execution.
//
// workers bounds the number of concurrently evaluating subtrees and the
// fan-out of each partitioned join (values < 2 degenerate to sequential
// execution). Results are identical to Exec. Statistics are aggregated
// across goroutines; per-operator counters are exact, Work and MaxRows
// are merged from each goroutine's private counters.
//
// A subplan cache (opt.Cache) is shared with the sequential executors:
// lookups and stores go through the cache's own shard locks, and the
// per-subtree stats stored with each entry are aggregated in a private
// mutex-guarded frame before being folded into the run's totals, so hits
// replay identical instrumentation regardless of which executor populated
// the entry.
func ExecParallel(n plan.Node, db cq.Database, opt Options, workers int) (*Result, error) {
	return ExecParallelContext(context.Background(), n, db, opt, workers)
}

// ExecParallelContext is ExecParallel under a context: cancellation is
// polled by every kernel and every partition worker, and surfaces as
// ErrCanceled. A panic in a subtree-evaluating goroutine is recovered at
// the goroutine boundary, cancels the sibling subtree's workers via the
// shared limit, and surfaces as ErrInternal instead of crashing the
// process.
func ExecParallelContext(ctx context.Context, n plan.Node, db cq.Database, opt Options, workers int) (*Result, error) {
	if workers < 2 {
		return ExecContext(ctx, n, db, opt)
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	// The run's internal context lets a failing subtree cancel its
	// concurrently-evaluating siblings instead of letting them run to
	// their own limits.
	ctx, abort := context.WithCancel(ctx)
	defer abort()
	pe := &parallelExec{
		db:       db,
		ctx:      ctx,
		abort:    abort,
		deadline: deadline,
		maxRows:  opt.MaxRows,
		maxBytes: opt.MaxBytes,
		cache:    opt.Cache,
		workers:  workers,
		sem:      make(chan struct{}, workers),
		sizes:    make(map[plan.Node]int),
	}
	if pe.cache != nil {
		pe.dbFP = DatabaseFingerprint(db)
	}
	measureSubtrees(n, pe.sizes)
	root := &pframe{}
	start := time.Now()
	rel, err := pe.eval(n, root)
	root.stats.Elapsed = time.Since(start)
	if err != nil {
		return &Result{Stats: root.stats}, classifyErr(err, root.stats.Elapsed)
	}
	return &Result{Rel: rel, Stats: root.stats}, nil
}

type parallelExec struct {
	db       cq.Database
	ctx      context.Context
	abort    context.CancelFunc
	deadline time.Time
	maxRows  int
	maxBytes int64
	bytes    atomic.Int64
	cache    *Cache
	dbFP     string
	workers  int
	sem      chan struct{}
	sizes    map[plan.Node]int
}

// pframe is a mutex-guarded stats frame: the aggregation target for the
// goroutines evaluating one subtree. The root frame collects the whole
// run; each cache-candidate subtree gets a private frame so the stats
// stored with its cache entry cover exactly that subtree.
type pframe struct {
	mu    sync.Mutex
	stats Stats
}

// observe merges one operator's output into the frame.
func (fr *pframe) observe(r *relation.Relation, kind byte, work int64) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if r.Len() > fr.stats.MaxRows {
		fr.stats.MaxRows = r.Len()
	}
	if r.Arity() > fr.stats.MaxArity {
		fr.stats.MaxArity = r.Arity()
	}
	fr.stats.Tuples += int64(r.Len())
	fr.stats.Work += work
	switch kind {
	case 'j':
		fr.stats.Joins++
		fr.stats.Bytes += r.Bytes()
		fr.stats.PeakBytes += r.Bytes()
		fr.stats.MaterializedTuples += int64(r.Len())
	case 'p':
		fr.stats.Projections++
		fr.stats.Bytes += r.Bytes()
		fr.stats.PeakBytes += r.Bytes()
		fr.stats.MaterializedTuples += int64(r.Len())
	}
}

// merge folds another frame (or a cached entry's stats) into the frame.
func (fr *pframe) merge(o *Stats) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.stats.merge(o)
}

// lim builds a fresh private limit for one operator invocation. The byte
// counter is shared across all operators and workers of the run.
func (pe *parallelExec) lim(work *int64) *relation.Limit {
	return &relation.Limit{
		MaxRows:  pe.maxRows,
		Deadline: pe.deadline,
		Work:     work,
		Ctx:      pe.ctx,
		MaxBytes: pe.maxBytes,
		Bytes:    &pe.bytes,
	}
}

// measureSubtrees records the node count of every subtree in one walk, so
// evalPair's fork-or-not decision is O(1) per join instead of re-walking
// the subtree at every pair (O(n²) on deep chain plans).
func measureSubtrees(n plan.Node, sizes map[plan.Node]int) int {
	size := 1
	for _, c := range n.Children() {
		size += measureSubtrees(c, sizes)
	}
	sizes[n] = size
	return size
}

func (pe *parallelExec) eval(n plan.Node, fr *pframe) (*relation.Relation, error) {
	if _, isScan := n.(*plan.Scan); !isScan && pe.cache != nil {
		return pe.evalCached(n, fr)
	}
	return pe.evalOp(n, fr)
}

// evalCached wraps evalOp in a cache lookup/store, mirroring the
// sequential executor: misses evaluate into a private frame whose totals
// become the stored entry's stats.
func (pe *parallelExec) evalCached(n plan.Node, fr *pframe) (*relation.Relation, error) {
	key, vars := cacheKey(pe.dbFP, n)
	admissible := func(sub *Stats) bool {
		if pe.maxRows > 0 && sub.MaxRows > pe.maxRows {
			return false
		}
		if pe.maxBytes > 0 && pe.bytes.Load()+sub.Bytes > pe.maxBytes {
			return false
		}
		return true
	}
	if rel, sub, ok := pe.cache.get(key); ok && admissible(&sub) {
		sub.CacheHits++
		fr.merge(&sub)
		pe.bytes.Add(sub.Bytes)
		return fromCanonical(rel, vars), nil
	}
	nf := &pframe{}
	rel, err := pe.evalOp(n, nf)
	nf.stats.CacheMisses++
	entryStats := nf.stats
	entryStats.CacheHits, entryStats.CacheMisses = 0, 0
	fr.merge(&nf.stats)
	if err != nil {
		return nil, err
	}
	pe.cache.put(key, toCanonical(rel, vars), entryStats)
	return rel, nil
}

func (pe *parallelExec) evalOp(n plan.Node, fr *pframe) (*relation.Relation, error) {
	switch t := n.(type) {
	case *plan.Scan:
		rel, ok := pe.db[t.Atom.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", t.Atom.Rel)
		}
		if rel.Arity() != len(t.Atom.Args) {
			return nil, fmt.Errorf("engine: atom %s arity mismatch", t.Atom)
		}
		m := make(map[relation.Attr]relation.Attr, rel.Arity())
		for i, a := range rel.Attrs() {
			m[a] = t.Atom.Args[i]
		}
		bound := relation.Rename(rel, m)
		fr.observe(bound, 's', 0)
		return bound, nil

	case *plan.Join:
		l, r, err := pe.evalPair(t.Left, t.Right, fr)
		if err != nil {
			return nil, err
		}
		var work int64
		out, err := relation.ParallelJoinLimited(l, r, pe.lim(&work), pe.workers)
		if err != nil {
			return nil, err
		}
		fr.observe(out, 'j', work)
		return out, nil

	case *plan.Project:
		c, err := pe.eval(t.Child, fr)
		if err != nil {
			return nil, err
		}
		var work int64
		out, err := relation.ProjectLimited(c, t.Cols, pe.lim(&work))
		if err != nil {
			return nil, err
		}
		fr.observe(out, 'p', work)
		return out, nil

	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// evalPair evaluates two subtrees, concurrently when both are non-trivial
// and a worker slot is free.
func (pe *parallelExec) evalPair(a, b plan.Node, fr *pframe) (*relation.Relation, *relation.Relation, error) {
	if pe.sizes[a] < 3 || pe.sizes[b] < 3 {
		ra, err := pe.eval(a, fr)
		if err != nil {
			return nil, nil, err
		}
		rb, err := pe.eval(b, fr)
		if err != nil {
			return nil, nil, err
		}
		return ra, rb, nil
	}
	select {
	case pe.sem <- struct{}{}:
		var (
			rb  *relation.Relation
			ebr error
			wg  sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-pe.sem }()
			// A failing subtree cancels its sibling; a panicking one
			// additionally becomes a typed error at the goroutine
			// boundary (classified as ErrInternal by the entry point)
			// instead of crashing the process.
			defer func() {
				if ebr != nil {
					pe.abort()
				}
			}()
			defer relation.RecoverPanic(&ebr)
			faultinject.Panic(faultinject.PanicSubtreeWorker)
			rb, ebr = pe.eval(b, fr)
		}()
		ra, ear := pe.eval(a, fr)
		if ear != nil {
			pe.abort()
		}
		wg.Wait()
		if err := preferErr(ear, ebr); err != nil {
			return nil, nil, err
		}
		return ra, rb, nil
	default:
		// No free worker: stay sequential.
		ra, err := pe.eval(a, fr)
		if err != nil {
			return nil, nil, err
		}
		rb, err := pe.eval(b, fr)
		if err != nil {
			return nil, nil, err
		}
		return ra, rb, nil
	}
}

// preferErr picks the more informative of two concurrent subtree errors:
// a genuine failure over the cancellation it induced in its sibling.
func preferErr(a, b error) error {
	if a == nil {
		return b
	}
	if b != nil && errors.Is(a, relation.ErrCanceled) && !errors.Is(b, relation.ErrCanceled) {
		return b
	}
	return a
}
