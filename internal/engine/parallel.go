package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// ExecParallel evaluates the plan like Exec but exploits parallelism on
// two axes:
//
//   - across the plan: the two sides of a join are computed concurrently
//     when both are non-trivial subtrees. Bucket elimination and
//     tree-decomposition plans are bushy — sibling buckets share no state
//     — so independent subtrees parallelize cleanly.
//
//   - inside a join: large joins are radix-partitioned on the join key
//     and the partitions are joined by a worker pool
//     (relation.ParallelJoinLimited). This is what lets chain-shaped
//     (left-deep) plans — the straightforward method on paths, ladders,
//     and augmented circular ladders — benefit from workers > 1, where
//     subtree parallelism alone degenerates to sequential execution.
//
// workers bounds the number of concurrently evaluating subtrees and the
// fan-out of each partitioned join (values < 2 degenerate to sequential
// execution). Results are identical to Exec. Statistics are aggregated
// across goroutines; per-operator counters are exact, Work and MaxRows
// are merged from each goroutine's private counters.
func ExecParallel(n plan.Node, db cq.Database, opt Options, workers int) (*Result, error) {
	if workers < 2 {
		return Exec(n, db, opt)
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	pe := &parallelExec{
		db:       db,
		deadline: deadline,
		maxRows:  opt.MaxRows,
		workers:  workers,
		sem:      make(chan struct{}, workers),
		sizes:    make(map[plan.Node]int),
	}
	measureSubtrees(n, pe.sizes)
	start := time.Now()
	rel, err := pe.eval(n)
	pe.stats.Elapsed = time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, relation.ErrDeadline):
			err = fmt.Errorf("%w after %v: %v", ErrTimeout, pe.stats.Elapsed, err)
		case errors.Is(err, relation.ErrRowLimit):
			err = fmt.Errorf("%w: %v", ErrRowLimit, err)
		}
		return &Result{Stats: pe.stats}, err
	}
	return &Result{Rel: rel, Stats: pe.stats}, nil
}

type parallelExec struct {
	db       cq.Database
	deadline time.Time
	maxRows  int
	workers  int
	sem      chan struct{}
	sizes    map[plan.Node]int

	mu    sync.Mutex
	stats Stats
}

// observe merges one operator's output into the shared stats.
func (pe *parallelExec) observe(r *relation.Relation, kind byte, work int64) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if r.Len() > pe.stats.MaxRows {
		pe.stats.MaxRows = r.Len()
	}
	if r.Arity() > pe.stats.MaxArity {
		pe.stats.MaxArity = r.Arity()
	}
	pe.stats.Tuples += int64(r.Len())
	pe.stats.Work += work
	switch kind {
	case 'j':
		pe.stats.Joins++
	case 'p':
		pe.stats.Projections++
	}
}

// lim builds a fresh private limit for one operator invocation.
func (pe *parallelExec) lim(work *int64) *relation.Limit {
	return &relation.Limit{MaxRows: pe.maxRows, Deadline: pe.deadline, Work: work}
}

// measureSubtrees records the node count of every subtree in one walk, so
// evalPair's fork-or-not decision is O(1) per join instead of re-walking
// the subtree at every pair (O(n²) on deep chain plans).
func measureSubtrees(n plan.Node, sizes map[plan.Node]int) int {
	size := 1
	for _, c := range n.Children() {
		size += measureSubtrees(c, sizes)
	}
	sizes[n] = size
	return size
}

func (pe *parallelExec) eval(n plan.Node) (*relation.Relation, error) {
	switch t := n.(type) {
	case *plan.Scan:
		rel, ok := pe.db[t.Atom.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", t.Atom.Rel)
		}
		if rel.Arity() != len(t.Atom.Args) {
			return nil, fmt.Errorf("engine: atom %s arity mismatch", t.Atom)
		}
		m := make(map[relation.Attr]relation.Attr, rel.Arity())
		for i, a := range rel.Attrs() {
			m[a] = t.Atom.Args[i]
		}
		bound := relation.Rename(rel, m)
		pe.observe(bound, 's', 0)
		return bound, nil

	case *plan.Join:
		l, r, err := pe.evalPair(t.Left, t.Right)
		if err != nil {
			return nil, err
		}
		var work int64
		out, err := relation.ParallelJoinLimited(l, r, pe.lim(&work), pe.workers)
		if err != nil {
			return nil, err
		}
		pe.observe(out, 'j', work)
		return out, nil

	case *plan.Project:
		c, err := pe.eval(t.Child)
		if err != nil {
			return nil, err
		}
		var work int64
		out, err := relation.ProjectLimited(c, t.Cols, pe.lim(&work))
		if err != nil {
			return nil, err
		}
		pe.observe(out, 'p', work)
		return out, nil

	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// evalPair evaluates two subtrees, concurrently when both are non-trivial
// and a worker slot is free.
func (pe *parallelExec) evalPair(a, b plan.Node) (*relation.Relation, *relation.Relation, error) {
	if pe.sizes[a] < 3 || pe.sizes[b] < 3 {
		ra, err := pe.eval(a)
		if err != nil {
			return nil, nil, err
		}
		rb, err := pe.eval(b)
		if err != nil {
			return nil, nil, err
		}
		return ra, rb, nil
	}
	select {
	case pe.sem <- struct{}{}:
		var (
			rb  *relation.Relation
			ebr error
			wg  sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-pe.sem }()
			rb, ebr = pe.eval(b)
		}()
		ra, ear := pe.eval(a)
		wg.Wait()
		if ear != nil {
			return nil, nil, ear
		}
		if ebr != nil {
			return nil, nil, ebr
		}
		return ra, rb, nil
	default:
		// No free worker: stay sequential.
		ra, err := pe.eval(a)
		if err != nil {
			return nil, nil, err
		}
		rb, err := pe.eval(b)
		if err != nil {
			return nil, nil, err
		}
		return ra, rb, nil
	}
}
