package engine

import (
	"fmt"
	"strings"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// Explain renders a plan as an indented operator tree, one line per node
// with its output schema and arity — the structural facts the paper's
// analysis runs on. When analyze is true the plan is executed under opt
// and each line is annotated with the actual output cardinality, in the
// spirit of EXPLAIN ANALYZE on the paper's backend.
func Explain(p plan.Node, db cq.Database, opt Options, analyze bool) (string, error) {
	var rows map[plan.Node]int
	if analyze {
		rows = make(map[plan.Node]int)
		ex := &executor{db: db}
		ex.lim.MaxRows = opt.MaxRows
		ex.lim.Work = &ex.stats.Work
		if opt.Timeout > 0 {
			ex.lim.Deadline = time.Now().Add(opt.Timeout)
		}
		if _, err := ex.evalRecording(p, rows); err != nil {
			return "", err
		}
	}
	var b strings.Builder
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		label := ""
		switch t := n.(type) {
		case *plan.Scan:
			label = t.Atom.String()
		case *plan.Join:
			label = "⋈"
		case *plan.Project:
			label = "π" + varList(t.Cols)
		}
		fmt.Fprintf(&b, "%s%s  arity=%d", indent, label, len(n.Attrs()))
		if analyze {
			fmt.Fprintf(&b, " rows=%d", rows[n])
		}
		b.WriteString("\n")
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String(), nil
}

func varList(vs []cq.Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("x%d", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// evalRecording mirrors executor.eval but records each node's output
// cardinality.
func (ex *executor) evalRecording(n plan.Node, rows map[plan.Node]int) (*relation.Relation, error) {
	var out *relation.Relation
	var err error
	switch t := n.(type) {
	case *plan.Scan:
		out, err = ex.eval(t)
	case *plan.Join:
		var l, r *relation.Relation
		if l, err = ex.evalRecording(t.Left, rows); err != nil {
			return nil, err
		}
		if r, err = ex.evalRecording(t.Right, rows); err != nil {
			return nil, err
		}
		out, err = relation.JoinLimited(l, r, &ex.lim)
		if err == nil {
			ex.stats.Joins++
			err = ex.observe(out)
		}
	case *plan.Project:
		var c *relation.Relation
		if c, err = ex.evalRecording(t.Child, rows); err != nil {
			return nil, err
		}
		out, err = relation.ProjectLimited(c, t.Cols, &ex.lim)
		if err == nil {
			ex.stats.Projections++
			err = ex.observe(out)
		}
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
	if err != nil {
		return nil, err
	}
	rows[n] = out.Len()
	return out, nil
}
