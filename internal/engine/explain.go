package engine

import (
	"context"
	"fmt"
	"strings"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

// Explain renders a plan as an indented operator tree, one line per node
// with its output schema and arity — the structural facts the paper's
// analysis runs on. When analyze is true the plan is executed under opt
// and each line is annotated with the actual output cardinality, in the
// spirit of EXPLAIN ANALYZE on the paper's backend. With a subplan cache
// configured (opt.Cache), subtrees served from the cache are marked
// "(cached)" — their descendants carry no row counts, since they were
// never evaluated — and a final line reports the run's hit/miss counts
// plus the cache's entry/byte/eviction totals.
func Explain(p plan.Node, db cq.Database, opt Options, analyze bool) (string, error) {
	var ex *executor
	if analyze {
		ex = newExecutor(context.Background(), db, opt)
		ex.rows = make(map[plan.Node]int)
		ex.cached = make(map[plan.Node]bool)
		if err := ex.arm(opt); err != nil {
			return "", classifyErr(err, 0)
		}
		_, err := ex.eval(p, &ex.stats)
		if ex.spiller != nil {
			ex.stats.SpilledBytes, ex.stats.SpillFiles = ex.spiller.Stats()
			ex.stats.PeakBytes = ex.resPeak
			ex.spiller.Cleanup()
		}
		if err != nil {
			return "", classifyErr(err, 0)
		}
	}
	var b strings.Builder
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		label := ""
		switch t := n.(type) {
		case *plan.Scan:
			label = t.Atom.String()
		case *plan.Join:
			label = "⋈"
		case *plan.Project:
			label = "π" + varList(t.Cols)
		}
		fmt.Fprintf(&b, "%s%s  arity=%d", indent, label, len(n.Attrs()))
		if analyze {
			if rows, ok := ex.rows[n]; ok {
				fmt.Fprintf(&b, " rows=%d", rows)
			}
			if ex.cached[n] {
				b.WriteString(" (cached)")
			}
		}
		b.WriteString("\n")
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	if analyze {
		fmt.Fprintf(&b, "memory: %d bytes materialized, peak %d live", ex.stats.Bytes, ex.stats.PeakBytes)
		if opt.MaxBytes > 0 {
			fmt.Fprintf(&b, " (budget %d)", opt.MaxBytes)
		}
		b.WriteString("\n")
		if ex.stats.SpilledBytes > 0 {
			fmt.Fprintf(&b, "spill: %d bytes across %d files\n",
				ex.stats.SpilledBytes, ex.stats.SpillFiles)
		}
		fmt.Fprintf(&b, "tuples: materialized=%d reduced=%d\n",
			ex.stats.MaterializedTuples, ex.stats.ReducedTuples)
	}
	if analyze && opt.Cache != nil {
		fmt.Fprintf(&b, "cache: run hits=%d misses=%d; %s\n",
			ex.stats.CacheHits, ex.stats.CacheMisses, opt.Cache.Counters())
	}
	return b.String(), nil
}

// ExplainYannakakis renders the full-reducer join tree for q: one line
// per bag with its working and projected labels and the atoms it hosts.
// When analyze is true the sweep executes under opt and each bag line is
// annotated with its per-phase cardinalities — rows after binding, after
// the bottom-up sweep (⋉↑), after the top-down sweep (⋉↓), and the
// evaluated output — followed by the run's reduced-vs-materialized
// totals.
func ExplainYannakakis(q *cq.Query, db cq.Database, opt Options, analyze bool) (string, error) {
	tree, err := BuildJoinTree(q, nil)
	if err != nil {
		return "", err
	}
	var root *ybag
	var st Stats
	if analyze {
		res, r, err := execYannakakis(context.Background(), tree, db, opt)
		if err != nil {
			return "", err
		}
		root, st = r, res.Stats
	} else {
		root = buildBags(tree.Root, nil)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "yannakakis full reducer  width=%d\n", tree.Width())
	var walk func(y *ybag, depth int)
	walk = func(y *ybag, depth int) {
		indent := strings.Repeat("  ", depth+1)
		fmt.Fprintf(&b, "%sbag %s → π%s", indent, varList(y.node.Working), varList(y.node.Projected))
		for _, a := range y.atoms {
			fmt.Fprintf(&b, "  %s", a)
		}
		if analyze {
			if y.bound >= 0 {
				fmt.Fprintf(&b, "  rows=%d ⋉↑%d ⋉↓%d", y.bound, y.afterUp, y.afterDown)
			}
			if y.out >= 0 {
				fmt.Fprintf(&b, " out=%d", y.out)
			}
		}
		b.WriteString("\n")
		for _, c := range y.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	if analyze {
		fmt.Fprintf(&b, "reduced: %d tuples removed by semijoin sweeps\n", st.ReducedTuples)
		fmt.Fprintf(&b, "materialized: %d tuples, %d bytes", st.MaterializedTuples, st.Bytes)
		if opt.MaxBytes > 0 {
			fmt.Fprintf(&b, " (budget %d)", opt.MaxBytes)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// ExplainWCOJ renders the worst-case-optimal executor's variable order
// for q: one line per variable level with the atoms whose intersection
// constrains it, levels past the free prefix marked ∃ (existence-checked
// only — the executor's early projection). When analyze is true the join
// executes under opt and each level is annotated with its seek and
// extension counts, followed by the run's totals and the memory/tuples
// trailers the other executors report.
func ExplainWCOJ(q *cq.Query, db cq.Database, opt Options, analyze bool) (string, error) {
	var ex *wexec
	if analyze {
		_, x, err := execWCOJ(context.Background(), q, db, opt)
		if err != nil {
			return "", err
		}
		ex = x
	} else {
		ex = newWexec(context.Background(), q, db, opt)
		if err := ex.prepare(); err != nil {
			return "", err
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wcoj leapfrog  vars=%d free=%d atoms=%d\n",
		len(ex.vars), ex.freeCut, len(ex.atoms))
	for d, lv := range ex.levels {
		mark := ""
		if d >= ex.freeCut {
			mark = " ∃"
		}
		fmt.Fprintf(&b, "  level x%d%s ", lv.v, mark)
		for _, a := range lv.atoms {
			fmt.Fprintf(&b, " %s", a.atom)
		}
		if analyze {
			fmt.Fprintf(&b, "  seeks=%d extensions=%d", lv.seeks, lv.extensions)
		}
		b.WriteString("\n")
	}
	if analyze {
		fmt.Fprintf(&b, "seeks: total=%d extensions=%d\n", ex.stats.Seeks, ex.stats.Extensions)
		fmt.Fprintf(&b, "memory: %d bytes materialized, peak %d live", ex.stats.Bytes, ex.stats.PeakBytes)
		if opt.MaxBytes > 0 {
			fmt.Fprintf(&b, " (budget %d)", opt.MaxBytes)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "tuples: materialized=%d reduced=%d\n",
			ex.stats.MaterializedTuples, ex.stats.ReducedTuples)
	}
	return b.String(), nil
}

func varList(vs []cq.Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("x%d", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
