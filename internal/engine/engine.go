// Package engine evaluates project-join plans over in-memory databases.
//
// It is the stand-in for the PostgreSQL backend of the paper's experiments:
// a main-memory executor with hash joins and SELECT DISTINCT semantics.
// Execution is instrumented — maximum intermediate cardinality and arity,
// tuples materialized, operator counts — because those quantities, not
// hardware details, drive the paper's running-time curves. Runs can be
// bounded by a deadline and a row cap so that deliberately bad plans (the
// straightforward method on augmented circular ladders) terminate the way
// the paper reports them: as timeouts.
package engine

import (
	"errors"
	"fmt"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// Options bounds and instruments an execution.
type Options struct {
	// Timeout aborts the run after this duration. Zero means no timeout.
	Timeout time.Duration
	// MaxRows caps the cardinality of any intermediate relation.
	// Zero means no cap.
	MaxRows int
}

// ErrTimeout is returned when a run exceeds Options.Timeout.
var ErrTimeout = errors.New("engine: execution timed out")

// ErrRowLimit is returned when an intermediate result exceeds
// Options.MaxRows.
var ErrRowLimit = errors.New("engine: intermediate result exceeds row cap")

// Stats instruments one execution.
type Stats struct {
	// MaxRows is the largest intermediate (or final) cardinality.
	MaxRows int
	// MaxArity is the widest intermediate (or final) schema. For a
	// projection-pushed plan this is the plan's width; the paper's
	// Theorem 1 bounds its optimum by treewidth+1.
	MaxArity int
	// Tuples is the total number of tuples materialized across all
	// operators.
	Tuples int64
	// Work counts tuples touched by the join and projection kernels
	// (probe matches, build rows, input rows).
	Work int64
	// Joins and Projections count operators executed.
	Joins, Projections int
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// Result is the outcome of executing a plan.
type Result struct {
	// Rel is the final relation (over the plan root's schema).
	Rel *relation.Relation
	// Stats instruments the run.
	Stats Stats
}

// Nonempty reports whether the query result is nonempty — the answer to a
// Boolean query.
func (r *Result) Nonempty() bool { return !r.Rel.Empty() }

type executor struct {
	db    cq.Database
	lim   relation.Limit
	stats Stats
}

// Exec evaluates the plan over db under opt.
// On timeout or row-cap violation it returns ErrTimeout or ErrRowLimit
// (wrapped); the partial stats collected so far are returned alongside so
// harnesses can report how far a run got.
func Exec(n plan.Node, db cq.Database, opt Options) (*Result, error) {
	ex := &executor{db: db}
	ex.lim.MaxRows = opt.MaxRows
	ex.lim.Work = &ex.stats.Work
	if opt.Timeout > 0 {
		ex.lim.Deadline = time.Now().Add(opt.Timeout)
	}
	start := time.Now()
	rel, err := ex.eval(n)
	ex.stats.Elapsed = time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, relation.ErrDeadline):
			err = fmt.Errorf("%w after %v: %v", ErrTimeout, ex.stats.Elapsed, err)
		case errors.Is(err, relation.ErrRowLimit):
			err = fmt.Errorf("%w: %v", ErrRowLimit, err)
		}
		return &Result{Rel: nil, Stats: ex.stats}, err
	}
	return &Result{Rel: rel, Stats: ex.stats}, nil
}

func (ex *executor) observe(r *relation.Relation) error {
	if r.Len() > ex.stats.MaxRows {
		ex.stats.MaxRows = r.Len()
	}
	if r.Arity() > ex.stats.MaxArity {
		ex.stats.MaxArity = r.Arity()
	}
	ex.stats.Tuples += int64(r.Len())
	return nil
}

func (ex *executor) eval(n plan.Node) (*relation.Relation, error) {
	switch t := n.(type) {
	case *plan.Scan:
		rel, ok := ex.db[t.Atom.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", t.Atom.Rel)
		}
		if rel.Arity() != len(t.Atom.Args) {
			return nil, fmt.Errorf("engine: atom %s arity mismatch with relation (%d columns)",
				t.Atom, rel.Arity())
		}
		// Bind the stored relation's columns to the atom's variables.
		m := make(map[relation.Attr]relation.Attr, rel.Arity())
		for i, a := range rel.Attrs() {
			m[a] = t.Atom.Args[i]
		}
		bound := relation.Rename(rel, m)
		if err := ex.observe(bound); err != nil {
			return nil, err
		}
		return bound, nil

	case *plan.Join:
		l, err := ex.eval(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := ex.eval(t.Right)
		if err != nil {
			return nil, err
		}
		out, err := relation.JoinLimited(l, r, &ex.lim)
		if err != nil {
			return nil, err
		}
		ex.stats.Joins++
		if err := ex.observe(out); err != nil {
			return nil, err
		}
		return out, nil

	case *plan.Project:
		c, err := ex.eval(t.Child)
		if err != nil {
			return nil, err
		}
		out, err := relation.ProjectLimited(c, t.Cols, &ex.lim)
		if err != nil {
			return nil, err
		}
		ex.stats.Projections++
		if err := ex.observe(out); err != nil {
			return nil, err
		}
		return out, nil

	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}
