// Package engine evaluates project-join plans over in-memory databases.
//
// It is the stand-in for the PostgreSQL backend of the paper's experiments:
// a main-memory executor with hash joins and SELECT DISTINCT semantics.
// Execution is instrumented — maximum intermediate cardinality and arity,
// tuples materialized, operator counts — because those quantities, not
// hardware details, drive the paper's running-time curves. Runs can be
// bounded by a deadline and a row cap so that deliberately bad plans (the
// straightforward method on augmented circular ladders) terminate the way
// the paper reports them: as timeouts.
//
// Executions can share a subplan result Cache (Options.Cache): Join and
// Project subtrees are memoized under a renaming-invariant fingerprint
// plus a database fingerprint, so repeated executions of identical
// subtrees — across methods, repetitions, and the sequential and parallel
// executors — return the memoized relation instead of re-joining. Hits
// replay the subtree's recorded instrumentation, keeping cache-on and
// cache-off stats identical (except elapsed time, which is the point).
package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// Options bounds and instruments an execution.
type Options struct {
	// Timeout aborts the run after this duration. Zero means no timeout.
	Timeout time.Duration
	// MaxRows caps the cardinality of any intermediate relation.
	// Zero means no cap.
	MaxRows int
	// MaxBytes caps the cumulative bytes of relation storage (tuple
	// arenas, dedup tables, join tables) materialized by the run. Zero
	// means no budget. Exceeding it fails the run with ErrMemLimit —
	// typically long before MaxRows would fire, since the budget charges
	// allocation pressure, not just final cardinalities.
	MaxBytes int64
	// Cache, when non-nil, memoizes Join and Project subtree results
	// across executions (see Cache). The iterator executor ignores it:
	// that engine materializes no subtree results to share.
	Cache *Cache
	// SpillDir, when non-empty, arms spill-to-disk: instead of failing
	// with ErrMemLimit when live bytes exceed MaxBytes, the
	// materializing executor spills parked intermediates and the stream
	// executor spills breaker partitions and hash builds to temp files
	// under this directory, replaying them when consumed. MaxBytes then
	// bounds peak residency rather than availability. Unrecoverable
	// disk failures surface as ErrSpill. The partition-parallel,
	// iterator, Yannakakis, and WCOJ executors ignore it.
	SpillDir string
	// MaxSpillBytes caps the live bytes a run may hold on disk when
	// spilling (0 = unlimited). Exceeding it — or a real ENOSPC — fails
	// the run with ErrSpill.
	MaxSpillBytes int64
}

// Stats instruments one execution.
type Stats struct {
	// MaxRows is the largest intermediate (or final) cardinality.
	MaxRows int
	// MaxArity is the widest intermediate (or final) schema. For a
	// projection-pushed plan this is the plan's width; the paper's
	// Theorem 1 bounds its optimum by treewidth+1.
	MaxArity int
	// Tuples is the total number of tuples materialized across all
	// operators.
	Tuples int64
	// Work counts tuples touched by the join and projection kernels
	// (probe matches, build rows, input rows).
	Work int64
	// Joins and Projections count operators executed.
	Joins, Projections int
	// CacheHits and CacheMisses count subplan cache lookups by this
	// execution (zero when Options.Cache is nil). A hit replays the
	// memoized subtree's stats into the counters above, so the totals
	// match a cache-off run.
	CacheHits, CacheMisses int64
	// Bytes is the total bytes of relation storage materialized by Join
	// and Project operators (arena plus dedup table of each output).
	// Cache hits replay the memoized subtree's byte count, so cache-on
	// and cache-off totals match. The streaming executors (ExecStream,
	// ExecIterator) report their peak of live bytes here instead — for
	// them this equals PeakBytes.
	Bytes int64
	// PeakBytes is the high-water mark of live relation storage. The
	// materializing executors release nothing mid-run, so for them it
	// equals Bytes (and cache hits replay it identically); the streaming
	// executors release operator state on close, so their peak is what
	// admission should budget against.
	PeakBytes int64
	// MaterializedTuples counts tuples written into operator outputs by
	// Join and Project (and the Yannakakis bag evaluation) — the
	// materialization a full-reducer sweep exists to minimize. Cache
	// hits replay the memoized subtree's count, like Bytes.
	MaterializedTuples int64
	// ReducedTuples counts tuples eliminated by semijoin reduction
	// (the Yannakakis full-reducer sweeps). Zero for the plan
	// executors, which never semijoin.
	ReducedTuples int64
	// Seeks and Extensions instrument the worst-case-optimal executor
	// (ExecWCOJ): Seeks counts galloping SeekGE/SeekGT calls across all
	// variable levels, Extensions the values that survived a level's
	// leapfrog intersection. Zero for every other executor.
	Seeks, Extensions int64
	// SpilledBytes and SpillFiles count the cumulative spill traffic of
	// the run: bytes written to and temp files created under
	// Options.SpillDir. Zero when spilling is disabled or memory
	// pressure never fired. They are a run-level property, not a
	// subtree one: a subplan cache hit replays no spill traffic (the
	// memoized result is already resident).
	SpilledBytes int64
	SpillFiles   int
	// Attempts records the degradation history of an ExecResilient run:
	// one entry per plan tried, in order, the last being the one whose
	// stats this struct carries. Nil for the plain entry points.
	Attempts []Attempt
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// merge folds a subtree's stats into s: maxima for the size watermarks,
// sums for the additive counters.
func (s *Stats) merge(o *Stats) {
	if o.MaxRows > s.MaxRows {
		s.MaxRows = o.MaxRows
	}
	if o.MaxArity > s.MaxArity {
		s.MaxArity = o.MaxArity
	}
	s.Tuples += o.Tuples
	s.Work += o.Work
	s.Joins += o.Joins
	s.Projections += o.Projections
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Bytes += o.Bytes
	s.PeakBytes += o.PeakBytes
	s.MaterializedTuples += o.MaterializedTuples
	s.ReducedTuples += o.ReducedTuples
	s.Seeks += o.Seeks
	s.Extensions += o.Extensions
	s.SpilledBytes += o.SpilledBytes
	s.SpillFiles += o.SpillFiles
}

// Result is the outcome of executing a plan.
type Result struct {
	// Rel is the final relation (over the plan root's schema).
	Rel *relation.Relation
	// Stats instruments the run.
	Stats Stats
}

// Nonempty reports whether the query result is nonempty — the answer to a
// Boolean query.
func (r *Result) Nonempty() bool { return !r.Rel.Empty() }

type executor struct {
	db       cq.Database
	ctx      context.Context
	deadline time.Time
	maxRows  int
	maxBytes int64
	bytes    atomic.Int64
	cache    *Cache
	dbFP     string
	stats    Stats

	// Spill state (nil/zero when Options.SpillDir is empty). parked
	// holds join left inputs awaiting their sibling's evaluation — the
	// only operator outputs alive but idle in a tree-walking executor —
	// so they are the spill candidates under memory pressure. spillable
	// marks relations this run materialized privately (spilling a
	// cache-shared or base relation would free nothing). resPeak is the
	// residency high-water mark; with a spiller the shared byte counter
	// is credited when intermediates retire, so MaxBytes bounds
	// residency rather than cumulative materialization.
	spiller   *relation.Spiller
	parked    []*parkedRel
	spillable map[*relation.Relation]bool
	resPeak   int64

	// rows/cached record per-node output cardinalities for EXPLAIN
	// ANALYZE; nil outside Explain.
	rows   map[plan.Node]int
	cached map[plan.Node]bool
}

// parkedRel is one join input parked while its sibling evaluates: either
// still resident (rel) or spilled to disk (file).
type parkedRel struct {
	rel  *relation.Relation
	size int64 // resident bytes charged for rel; 0 = not spillable
	file *relation.SpillFile
}

func newExecutor(ctx context.Context, db cq.Database, opt Options) *executor {
	ex := &executor{
		db:       db,
		ctx:      ctx,
		maxRows:  opt.MaxRows,
		maxBytes: opt.MaxBytes,
		cache:    opt.Cache,
	}
	if opt.Timeout > 0 {
		ex.deadline = time.Now().Add(opt.Timeout)
	}
	if ex.cache != nil {
		ex.dbFP = DatabaseFingerprint(db)
	}
	return ex
}

// arm creates the spill manager when opt requests one. The caller owns
// Cleanup.
func (ex *executor) arm(opt Options) error {
	if opt.SpillDir == "" {
		return nil
	}
	sp, err := relation.NewSpiller(opt.SpillDir, opt.MaxSpillBytes)
	if err != nil {
		return err
	}
	ex.spiller = sp
	ex.spillable = make(map[*relation.Relation]bool)
	return nil
}

// park shelves a join input while its sibling evaluates, making it a
// spill candidate. Returns nil when spilling is disarmed.
func (ex *executor) park(rel *relation.Relation) *parkedRel {
	if ex.spiller == nil {
		return nil
	}
	pk := &parkedRel{rel: rel}
	if ex.spillable[rel] {
		pk.size = rel.Bytes()
	}
	ex.parked = append(ex.parked, pk)
	return pk
}

// unpark returns the parked relation, reloading it from disk (and
// re-charging its bytes) if pressure spilled it meanwhile. With
// discard set the parked state is released without reloading (the
// sibling failed; the join will not run).
func (ex *executor) unpark(pk *parkedRel, orig *relation.Relation, st *Stats, discard bool) (*relation.Relation, error) {
	if pk == nil {
		return orig, nil
	}
	ex.parked = ex.parked[:len(ex.parked)-1]
	if pk.rel != nil {
		return pk.rel, nil
	}
	defer pk.file.Close()
	if discard {
		return nil, nil
	}
	rel, err := pk.file.Load()
	if err != nil {
		return nil, err
	}
	var last int64
	if err := ex.lim(st).ChargeMemGrowth(rel, &last); err != nil {
		return nil, err
	}
	ex.spillable[rel] = true
	return rel, nil
}

// onPressure is the Limit callback under memory pressure: spill the
// largest parked resident intermediate and credit its bytes. It returns
// false when nothing spillable remains, letting the charge fail with
// ErrMemBudget honestly.
func (ex *executor) onPressure(int64) (bool, error) {
	var best *parkedRel
	for _, pk := range ex.parked {
		if pk.rel != nil && pk.size > 0 && (best == nil || pk.size > best.size) {
			best = pk
		}
	}
	if best == nil {
		return false, nil
	}
	sf, err := ex.spiller.WriteRelation(best.rel)
	if err != nil {
		return false, err
	}
	// The watermark is taken after the spill credit: the pending charge
	// that triggered this callback is not resident until the budget check
	// admits it, so recording the pre-spill counter would count rejected
	// (or not-yet-admitted) bytes as live.
	if v := ex.bytes.Add(-best.size); v > ex.resPeak {
		ex.resPeak = v
	}
	delete(ex.spillable, best.rel)
	best.rel, best.file = nil, sf
	return true, nil
}

// retire settles an operator's accounting in spill mode: kernel
// transients (join tables, arena overshoot) are credited now that the
// operator returned, consumed children leave residency, and the output
// becomes the newest spill candidate. A no-op without a spiller, so
// spill-off byte accounting is unchanged.
func (ex *executor) retire(before int64, out *relation.Relation, children ...*relation.Relation) {
	if ex.spiller == nil {
		return
	}
	if v := ex.bytes.Load(); v > ex.resPeak {
		ex.resPeak = v
	}
	if extra := ex.bytes.Load() - before - out.Bytes(); extra > 0 {
		ex.bytes.Add(-extra)
	}
	for _, c := range children {
		if c != nil && ex.spillable[c] {
			ex.bytes.Add(-c.Bytes())
			delete(ex.spillable, c)
		}
	}
	ex.spillable[out] = true
}

// lim builds the limit charging work into the given stats frame. The byte
// budget counter is shared across all operators of the run, so MaxBytes
// bounds the run's cumulative materialization, not any single operator's.
// With a spiller armed, charges that would exceed the budget first spill
// parked intermediates through onPressure.
func (ex *executor) lim(st *Stats) *relation.Limit {
	l := &relation.Limit{
		MaxRows:  ex.maxRows,
		Deadline: ex.deadline,
		Work:     &st.Work,
		Ctx:      ex.ctx,
		MaxBytes: ex.maxBytes,
		Bytes:    &ex.bytes,
	}
	if ex.spiller != nil {
		l.OnPressure = ex.onPressure
	}
	return l
}

// admissible reports whether a cached subtree's recorded footprint fits
// this run's limits. An inadmissible hit falls through to honest
// re-execution, which reports the violation exactly as an uncached run
// would.
func (ex *executor) admissible(sub *Stats) bool {
	if ex.maxRows > 0 && sub.MaxRows > ex.maxRows {
		return false
	}
	if ex.maxBytes > 0 && ex.bytes.Load()+sub.Bytes > ex.maxBytes {
		return false
	}
	return true
}

// Exec evaluates the plan over db under opt.
// On timeout, cancellation, row-cap or byte-budget violation it returns
// ErrTimeout, ErrCanceled, ErrRowLimit or ErrMemLimit (wrapped); the
// partial stats collected so far are returned alongside so harnesses can
// report how far a run got.
func Exec(n plan.Node, db cq.Database, opt Options) (*Result, error) {
	return ExecContext(context.Background(), n, db, opt)
}

// ExecContext is Exec under a context: cancellation is observed by every
// kernel within a bounded amount of work and surfaces as ErrCanceled
// (matching context.Canceled under errors.Is).
func ExecContext(ctx context.Context, n plan.Node, db cq.Database, opt Options) (*Result, error) {
	ex := newExecutor(ctx, db, opt)
	start := time.Now()
	if err := ex.arm(opt); err != nil {
		return &Result{Rel: nil, Stats: ex.stats}, classifyErr(err, time.Since(start))
	}
	rel, err := ex.eval(n, &ex.stats)
	if ex.spiller != nil {
		ex.stats.SpilledBytes, ex.stats.SpillFiles = ex.spiller.Stats()
		// Residency, not cumulative materialization, is what the budget
		// bounded on this run.
		ex.stats.PeakBytes = ex.resPeak
		ex.spiller.Cleanup()
	}
	ex.stats.Elapsed = time.Since(start)
	if err != nil {
		return &Result{Rel: nil, Stats: ex.stats}, classifyErr(err, ex.stats.Elapsed)
	}
	return &Result{Rel: rel, Stats: ex.stats}, nil
}

// observe folds one operator's output into the stats frame.
func observe(st *Stats, r *relation.Relation) {
	if r.Len() > st.MaxRows {
		st.MaxRows = r.Len()
	}
	if r.Arity() > st.MaxArity {
		st.MaxArity = r.Arity()
	}
	st.Tuples += int64(r.Len())
}

// record notes a node's output cardinality for EXPLAIN ANALYZE.
func (ex *executor) record(n plan.Node, r *relation.Relation, fromCache bool) {
	if ex.rows == nil {
		return
	}
	ex.rows[n] = r.Len()
	if fromCache {
		ex.cached[n] = true
	}
}

// eval evaluates n, charging instrumentation into the stats frame st.
// With a cache configured, Join and Project subtrees are memoized: a miss
// evaluates the subtree into a private frame whose totals are stored with
// the result and then merged into st, so a later hit can replay exactly
// the instrumentation the evaluation would have produced.
func (ex *executor) eval(n plan.Node, st *Stats) (*relation.Relation, error) {
	if _, isScan := n.(*plan.Scan); !isScan && ex.cache != nil {
		return ex.evalCached(n, st)
	}
	return ex.evalOp(n, st)
}

// evalCached wraps evalOp in a cache lookup/store for a Join or Project
// subtree.
func (ex *executor) evalCached(n plan.Node, st *Stats) (*relation.Relation, error) {
	key, vars := cacheKey(ex.dbFP, n)
	if rel, sub, ok := ex.cache.get(key); ok && ex.admissible(&sub) {
		// A hit whose recorded intermediates exceed this run's row cap
		// or byte budget falls through to honest re-execution (which
		// will report the violation, as the uncached run would).
		st.CacheHits++
		st.merge(&sub)
		ex.bytes.Add(sub.Bytes)
		out := fromCanonical(rel, vars)
		ex.record(n, out, true)
		return out, nil
	}
	st.CacheMisses++
	var sub Stats
	rel, err := ex.evalOp(n, &sub)
	// Cache counters of nested lookups live in the live run, not in the
	// stored entry: a future hit replays the subtree's execution stats,
	// not its cache traffic.
	entryStats := sub
	entryStats.CacheHits, entryStats.CacheMisses = 0, 0
	st.merge(&sub)
	if err != nil {
		return nil, err
	}
	ex.cache.put(key, toCanonical(rel, vars), entryStats)
	if ex.spillable != nil {
		// The cache now retains (and may share storage with) this
		// result: spilling our reference would free nothing real, so it
		// stops being a spill candidate and stays charged, exactly like
		// a cache hit.
		delete(ex.spillable, rel)
	}
	return rel, nil
}

// evalOp evaluates one operator node, recursing through eval for children.
func (ex *executor) evalOp(n plan.Node, st *Stats) (*relation.Relation, error) {
	switch t := n.(type) {
	case *plan.Scan:
		rel, ok := ex.db[t.Atom.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", t.Atom.Rel)
		}
		if rel.Arity() != len(t.Atom.Args) {
			return nil, fmt.Errorf("engine: atom %s arity mismatch with relation (%d columns)",
				t.Atom, rel.Arity())
		}
		// Bind the stored relation's columns to the atom's variables.
		m := make(map[relation.Attr]relation.Attr, rel.Arity())
		for i, a := range rel.Attrs() {
			m[a] = t.Atom.Args[i]
		}
		bound := relation.Rename(rel, m)
		observe(st, bound)
		ex.record(n, bound, false)
		return bound, nil

	case *plan.Join:
		l, err := ex.eval(t.Left, st)
		if err != nil {
			return nil, err
		}
		// Park the left input while the right subtree evaluates: it is
		// idle until the join runs, so under memory pressure it is the
		// relation worth spilling.
		pk := ex.park(l)
		r, err := ex.eval(t.Right, st)
		l, uerr := ex.unpark(pk, l, st, err != nil)
		if err != nil {
			return nil, err
		}
		if uerr != nil {
			return nil, uerr
		}
		before := ex.bytes.Load()
		out, err := relation.JoinLimited(l, r, ex.lim(st))
		if err != nil {
			return nil, err
		}
		ex.retire(before, out, l, r)
		st.Joins++
		st.Bytes += out.Bytes()
		st.PeakBytes += out.Bytes()
		st.MaterializedTuples += int64(out.Len())
		observe(st, out)
		ex.record(n, out, false)
		return out, nil

	case *plan.Project:
		c, err := ex.eval(t.Child, st)
		if err != nil {
			return nil, err
		}
		before := ex.bytes.Load()
		out, err := relation.ProjectLimited(c, t.Cols, ex.lim(st))
		if err != nil {
			return nil, err
		}
		ex.retire(before, out, c)
		st.Projections++
		st.Bytes += out.Bytes()
		st.PeakBytes += out.Bytes()
		st.MaterializedTuples += int64(out.Len())
		observe(st, out)
		ex.record(n, out, false)
		return out, nil

	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}
