package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
)

// spillOpts arms spilling under a tmpdir owned by the test.
func spillOpts(t *testing.T, base Options) Options {
	t.Helper()
	base.SpillDir = t.TempDir()
	return base
}

// TestSpillDifferentialFigureWorkloads checks that merely arming the
// spill directory changes nothing: with no memory pressure the spill-on
// and spill-off runs produce identical answers and identical non-byte
// stats, and no spill traffic occurs, for both the materializing and the
// streaming executor on every Figure-6–9 workload.
func TestSpillDifferentialFigureWorkloads(t *testing.T) {
	for _, w := range figureWorkloads(t) {
		for _, free := range [][]cq.Var{instance.BooleanFree(w.g), {0, 1}} {
			q, err := instance.ColorQuery(w.g, free)
			if err != nil {
				t.Fatal(err)
			}
			db := instance.ColorDatabase(3)
			for _, m := range core.Methods {
				t.Run(fmt.Sprintf("%s/free=%d/%s", w.name, len(free), m), func(t *testing.T) {
					p, err := core.BuildPlan(m, q, nil)
					if err != nil {
						t.Fatal(err)
					}
					plain, err := Exec(p, db, Options{})
					if err != nil {
						t.Fatal(err)
					}
					spilled, err := Exec(p, db, spillOpts(t, Options{}))
					if err != nil {
						t.Fatalf("Exec with spill armed: %v", err)
					}
					if !plain.Rel.Equal(spilled.Rel) {
						t.Fatalf("spill-armed Exec answer differs (%d vs %d rows)",
							spilled.Rel.Len(), plain.Rel.Len())
					}
					assertSameNonByteStats(t, &plain.Stats, &spilled.Stats)
					if spilled.Stats.SpilledBytes != 0 || spilled.Stats.SpillFiles != 0 {
						t.Fatalf("no pressure but spill traffic: %d bytes, %d files",
							spilled.Stats.SpilledBytes, spilled.Stats.SpillFiles)
					}

					sPlain, err := ExecStream(p, db, Options{})
					if err != nil {
						t.Fatal(err)
					}
					sSpill, err := ExecStream(p, db, spillOpts(t, Options{}))
					if err != nil {
						t.Fatalf("ExecStream with spill armed: %v", err)
					}
					if !sPlain.Rel.Equal(sSpill.Rel) {
						t.Fatalf("spill-armed stream answer differs (%d vs %d rows)",
							sSpill.Rel.Len(), sPlain.Rel.Len())
					}
					assertSameNonByteStats(t, &sPlain.Stats, &sSpill.Stats)
					if sSpill.Stats.SpilledBytes != 0 {
						t.Fatalf("no pressure but stream spilled %d bytes", sSpill.Stats.SpilledBytes)
					}
				})
			}
		}
	}
}

// assertSameNonByteStats compares the execution counters that must not
// depend on whether a spill directory is armed.
func assertSameNonByteStats(t *testing.T, a, b *Stats) {
	t.Helper()
	if a.Tuples != b.Tuples || a.MaxRows != b.MaxRows || a.MaxArity != b.MaxArity ||
		a.Joins != b.Joins || a.Projections != b.Projections ||
		a.MaterializedTuples != b.MaterializedTuples || a.ReducedTuples != b.ReducedTuples {
		t.Fatalf("non-byte stats differ with spill armed:\noff: %+v\non:  %+v", a, b)
	}
}

// spillPressureCase finds a memory budget under which the plain run dies
// with ErrMemLimit while the spill-armed run completes, and returns that
// budget. It walks the candidate budgets in order, preferring one that
// forces real disk traffic; exec is the executor under test.
func spillPressureCase(t *testing.T, exec func(Options) (*Result, error), budgets []int64) (int64, *Result) {
	t.Helper()
	var fbBudget int64
	var fb *Result
	for _, budget := range budgets {
		if budget < 256 {
			break
		}
		_, err := exec(Options{MaxBytes: budget})
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrMemLimit) {
			t.Fatalf("budget %d: unexpected failure kind: %v", budget, err)
		}
		res, err := exec(spillOpts(t, Options{MaxBytes: budget}))
		if err != nil {
			if errors.Is(err, ErrMemLimit) {
				continue // too tight even for out-of-core; walk on
			}
			t.Fatalf("budget %d with spill: %v", budget, err)
		}
		if res.Stats.SpilledBytes > 0 {
			return budget, res
		}
		// Rescued by residency accounting alone (spill-mode crediting);
		// keep walking for a budget that forces real disk traffic.
		if fb == nil {
			fbBudget, fb = budget, res
		}
	}
	return fbBudget, fb
}

// divisorBudgets walks down from a peak by integer divisors — the
// candidate schedule for the streaming engine, whose breakers can shed
// almost all resident state to disk.
func divisorBudgets(peak int64) []int64 {
	var budgets []int64
	for _, div := range []int64{2, 3, 4, 6, 8, 12, 16, 24, 32} {
		budgets = append(budgets, peak/div)
	}
	return budgets
}

// residencyWindowBudgets shaves a residency peak by small fractions —
// the candidate schedule for the materializing executor, where only
// parked join inputs can spill, so the rescue window sits just below
// the residency high-water mark.
func residencyWindowBudgets(resPeak int64) []int64 {
	var budgets []int64
	for _, f := range []struct{ num, den int64 }{
		{127, 128}, {63, 64}, {31, 32}, {15, 16}, {7, 8}, {3, 4}, {5, 8}, {1, 2}, {1, 4},
	} {
		budgets = append(budgets, resPeak*f.num/f.den)
	}
	return budgets
}

// TestStreamSpillUnderPressure is the tentpole's end-to-end acceptance
// on the streaming engine: an over-budget run that fails with ErrMemLimit
// in memory completes once spilling is armed, produces the oracle answer,
// reports spill traffic, and keeps peak live bytes within the budget.
func TestStreamSpillUnderPressure(t *testing.T) {
	g := workloadGraph(t)
	q, err := instance.ColorQuery(g, []cq.Var{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	oracle, err := EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildPlan(core.MethodStream, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExecStream(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget, res := spillPressureCase(t, func(o Options) (*Result, error) {
		return ExecStream(p, db, o)
	}, divisorBudgets(base.Stats.PeakBytes))
	if res == nil {
		t.Fatalf("no budget under peak %d demonstrates fails-without/succeeds-with; workload too small", base.Stats.PeakBytes)
	}
	if !res.Rel.Equal(oracle) {
		t.Fatalf("spilled stream answer differs from oracle (%d vs %d rows)", res.Rel.Len(), oracle.Len())
	}
	if res.Stats.SpilledBytes <= 0 || res.Stats.SpillFiles <= 0 {
		t.Fatalf("run rescued by spilling reported no spill traffic: %+v", res.Stats)
	}
	if res.Stats.Bytes > budget {
		t.Fatalf("peak live bytes %d over budget %d despite spilling", res.Stats.Bytes, budget)
	}
}

// TestExecSpillUnderPressure drives the materializing executor's parked-
// input spilling the same way.
func TestExecSpillUnderPressure(t *testing.T) {
	g := workloadGraph(t)
	q, err := instance.ColorQuery(g, []cq.Var{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	oracle, err := EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildPlan(core.MethodBucketElimination, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A spill-armed unbounded run reports PeakBytes as the residency
	// high-water mark (retire() credits intermediates as they leave
	// scope) — the quantity Exec's budget actually bounds in spill mode.
	// The rescue window sits just below it: parked join inputs are the
	// only spill candidates, so they can shave at most a few KiB off it.
	probe, err := Exec(p, db, spillOpts(t, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	budget, res := spillPressureCase(t, func(o Options) (*Result, error) {
		return Exec(p, db, o)
	}, residencyWindowBudgets(probe.Stats.PeakBytes))
	if res == nil {
		t.Skipf("no budget under residency peak %d demonstrates fails-without/succeeds-with on this plan shape", probe.Stats.PeakBytes)
	}
	if !res.Rel.Equal(oracle) {
		t.Fatalf("spilled Exec answer differs from oracle (%d vs %d rows)", res.Rel.Len(), oracle.Len())
	}
	if res.Stats.SpilledBytes <= 0 {
		t.Fatalf("run rescued by spilling reported no spill traffic: %+v", res.Stats)
	}
	if res.Stats.PeakBytes > budget {
		t.Fatalf("peak residency %d over budget %d despite spilling", res.Stats.PeakBytes, budget)
	}
	t.Logf("budget %d: spilled %d bytes across %d files, peak residency %d",
		budget, res.Stats.SpilledBytes, res.Stats.SpillFiles, res.Stats.PeakBytes)
}

// workloadGraph is the shared over-budget workload: an augmented ladder
// large enough that the streaming run's resident state dominates tiny
// base relations but small enough for the oracle.
func workloadGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.AugmentedLadder(5)
}

// TestRetryWithSpillLadder checks the resilience rung: with SpillDir set
// and a budget the in-memory run blows, ExecResilientStrategy re-runs the
// same strategy with spilling armed, records it as "<rung>+spill" in
// Stats.Attempts, and succeeds without falling down the method ladder.
func TestRetryWithSpillLadder(t *testing.T) {
	g := workloadGraph(t)
	q, err := instance.ColorQuery(g, []cq.Var{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStream, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExecStream(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget, _ := spillPressureCase(t, func(o Options) (*Result, error) {
		return ExecStream(p, db, o)
	}, divisorBudgets(base.Stats.PeakBytes))
	if budget == 0 {
		t.Fatal("could not find a demonstrating budget")
	}
	opt := spillOpts(t, Options{MaxBytes: budget})
	// Inline equivalents of resilience.StreamRung / PlanLadder (that
	// package imports engine, so the in-package test rebuilds the rungs).
	streamRung := Fallback{Name: "stream", Run: func(ctx context.Context, db cq.Database, o Options) (*Result, error) {
		return ExecStreamContext(ctx, p, db, o)
	}}
	ladder := []Fallback{
		{Name: "earlyprojection", Build: func() (plan.Node, error) { return core.EarlyProjection(q) }},
		{Name: "bucketelimination", Build: func() (plan.Node, error) { return core.BucketElimination(q, nil) }},
	}
	res, err := ExecResilientStrategy(context.Background(), streamRung, ladder, db, opt, 1)
	if err != nil {
		t.Fatalf("resilient run with spill rung: %v", err)
	}
	if len(res.Stats.Attempts) != 2 {
		t.Fatalf("want exactly [stream, stream+spill] attempts, got %+v", res.Stats.Attempts)
	}
	if res.Stats.Attempts[0].Method != "stream" || res.Stats.Attempts[0].Err == "" {
		t.Fatalf("first attempt should be the failed in-memory stream run, got %+v", res.Stats.Attempts[0])
	}
	if res.Stats.Attempts[1].Method != "stream+spill" || res.Stats.Attempts[1].Err != "" {
		t.Fatalf("second attempt should be the succeeding spill retry, got %+v", res.Stats.Attempts[1])
	}
	if res.Stats.SpilledBytes <= 0 {
		t.Fatalf("spill retry reported no spill traffic: %+v", res.Stats)
	}
}

// TestSpillErrClassification checks the new failure domain's typing: an
// injected spill write failure surfaces as ErrSpill, which aliases
// ErrInternal (breakers and the ladder treat it as infrastructure), and
// a tiny disk quota surfaces the same way via ErrSpillFull.
func TestSpillErrClassification(t *testing.T) {
	g := workloadGraph(t)
	q, err := instance.ColorQuery(g, []cq.Var{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStream, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExecStream(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget, _ := spillPressureCase(t, func(o Options) (*Result, error) {
		return ExecStream(p, db, o)
	}, divisorBudgets(base.Stats.PeakBytes))
	if budget == 0 {
		t.Fatal("could not find a demonstrating budget")
	}

	t.Run("write-fault", func(t *testing.T) {
		if err := faultinject.Enable("spill.write.fail=1", 1); err != nil {
			t.Fatal(err)
		}
		defer faultinject.Disable()
		_, err := ExecStream(p, db, spillOpts(t, Options{MaxBytes: budget}))
		if !errors.Is(err, ErrSpill) {
			t.Fatalf("got %v, want ErrSpill", err)
		}
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("ErrSpill must alias ErrInternal, got %v", err)
		}
	})

	t.Run("disk-quota", func(t *testing.T) {
		opt := spillOpts(t, Options{MaxBytes: budget})
		opt.MaxSpillBytes = 64 // absurdly small: first spill exhausts it
		_, err := ExecStream(p, db, opt)
		if !errors.Is(err, ErrSpill) {
			t.Fatalf("got %v, want ErrSpill from disk exhaustion", err)
		}
	})
}

// TestMemLimitMessageCarriesNumbers pins the satellite contract: the
// ErrMemLimit failure names the budget and the charge that blew it, for
// both the materializing and the streaming accounting paths.
func TestMemLimitMessageCarriesNumbers(t *testing.T) {
	g := workloadGraph(t)
	q, err := instance.ColorQuery(g, []cq.Var{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	for _, m := range []core.Method{core.MethodBucketElimination, core.MethodStream} {
		p, err := core.BuildPlan(m, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		run := func(o Options) (*Result, error) {
			if m == core.MethodStream {
				return ExecStream(p, db, o)
			}
			return Exec(p, db, o)
		}
		const budget = 4096
		_, err = run(Options{MaxBytes: budget})
		if !errors.Is(err, ErrMemLimit) {
			t.Fatalf("%s: got %v, want ErrMemLimit", m, err)
		}
		msg := err.Error()
		if !strings.Contains(msg, fmt.Sprintf("budget %d", budget)) {
			t.Fatalf("%s: failure message lacks the budget: %q", m, msg)
		}
		if !strings.Contains(msg, "charge of ") {
			t.Fatalf("%s: failure message lacks the failed charge size: %q", m, msg)
		}
	}
}

// TestExplainAnalyzeSpillLine checks EXPLAIN ANALYZE surfaces the spill
// trailer when and only when a run went out of core.
func TestExplainAnalyzeSpillLine(t *testing.T) {
	g := workloadGraph(t)
	q, err := instance.ColorQuery(g, []cq.Var{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStream, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExecStream(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget, _ := spillPressureCase(t, func(o Options) (*Result, error) {
		return ExecStream(p, db, o)
	}, divisorBudgets(base.Stats.PeakBytes))
	if budget == 0 {
		t.Fatal("could not find a demonstrating budget")
	}
	out, err := ExplainStream(p, db, spillOpts(t, Options{MaxBytes: budget}), true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "spill: ") {
		t.Fatalf("spilled EXPLAIN ANALYZE lacks the spill trailer:\n%s", out)
	}
	dry, err := ExplainStream(p, db, spillOpts(t, Options{}), true)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(dry, "spill: ") {
		t.Fatalf("unspilled EXPLAIN ANALYZE shows a spill trailer:\n%s", dry)
	}
}
