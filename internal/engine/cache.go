package engine

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// Cache is a sharded, memory-accounted result cache for subplan
// executions. The paper's figure pipeline runs the same structured
// workloads through five methods × many repetitions over one tiny
// database, and the methods' plans share scans and low subjoins — so
// identical subtrees are re-joined from scratch thousands of times.
// The cache memoizes every Join and Project subtree result under a key
// that is invariant to variable renaming:
//
//	key = databaseFingerprint ⊕ plan.Fingerprint(subtree)
//
// Cached relations are stored over canonical attributes (the fingerprint's
// first-occurrence numbering) and re-bound to the hitting subtree's actual
// variables with a zero-copy relation.Rename, so a hit costs O(arity), not
// O(rows). Alongside the relation, each entry carries the subtree's
// execution Stats (max intermediate rows/arity, tuples, work, operator
// counts); a hit merges them into the running execution's stats, so
// cache-on and cache-off runs report identical instrumentation — the
// property the differential tests pin down.
//
// Sharding: keys hash onto a fixed array of mutex-guarded shards, so
// concurrent executions (the parallel executor, the experiment harness
// worker pool) contend only per shard. Memory: every entry is accounted
// at its relation's arena+table size; inserting past a shard's share of
// MaxBytes evicts least-recently-used entries of that shard. Entries
// whose relation alone exceeds the shard budget are not cached at all.
//
// Concurrent misses of the same key may compute the result twice; the
// second store is dropped. That keeps the fast path lock-free outside the
// shard map and is harmless: results are deterministic per key.
type Cache struct {
	maxBytes   int64
	shardMax   int64
	shards     [cacheShards]cacheShard
	tick       atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	totalBytes atomic.Int64
}

const cacheShards = 16

// DefaultCacheBytes is the memory budget NewCache applies when given a
// non-positive limit.
const DefaultCacheBytes = 256 << 20

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	bytes   int64
}

type cacheEntry struct {
	rel     *relation.Relation // canonical attributes 0..arity-1
	stats   Stats              // subtree-local execution stats
	bytes   int64
	lastUse int64
}

// NewCache returns an empty cache bounded by maxBytes of cached relation
// storage (DefaultCacheBytes if maxBytes <= 0).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &Cache{maxBytes: maxBytes, shardMax: maxBytes / cacheShards}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
	}
	return c
}

// CacheCounters is a snapshot of a cache's lifetime counters.
type CacheCounters struct {
	Hits, Misses, Evictions, Entries int64
	Bytes                            int64
}

// Counters returns the cache's lifetime hit/miss/eviction counts and its
// current entry count and accounted bytes.
func (c *Cache) Counters() CacheCounters {
	var entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return CacheCounters{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     c.totalBytes.Load(),
	}
}

// String renders the counters compactly, the form Explain appends.
func (cc CacheCounters) String() string {
	return fmt.Sprintf("hits=%d misses=%d entries=%d bytes=%d evictions=%d",
		cc.Hits, cc.Misses, cc.Entries, cc.Bytes, cc.Evictions)
}

// shard picks the shard of a key by FNV-1a.
func (c *Cache) shard(key string) *cacheShard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%cacheShards]
}

// get looks the key up, returning the entry's relation and subtree stats.
func (c *Cache) get(key string) (*relation.Relation, Stats, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		e.lastUse = c.tick.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, Stats{}, false
	}
	c.hits.Add(1)
	return e.rel, e.stats, true
}

// put stores a subtree result (over canonical attributes) unless an entry
// for the key already exists or the relation alone exceeds the per-shard
// budget. Over-budget shards evict least-recently-used entries.
func (c *Cache) put(key string, rel *relation.Relation, stats Stats) {
	bytes := rel.Bytes() + int64(len(key))
	if bytes > c.shardMax {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[key]; dup {
		return
	}
	for s.bytes+bytes > c.shardMax {
		var oldKey string
		var old *cacheEntry
		for k, e := range s.entries {
			if old == nil || e.lastUse < old.lastUse {
				oldKey, old = k, e
			}
		}
		if old == nil {
			break
		}
		delete(s.entries, oldKey)
		s.bytes -= old.bytes
		c.totalBytes.Add(-old.bytes)
		c.evictions.Add(1)
	}
	s.entries[key] = &cacheEntry{rel: rel, stats: stats, bytes: bytes, lastUse: c.tick.Add(1)}
	s.bytes += bytes
	c.totalBytes.Add(bytes)
}

// DatabaseFingerprint digests a database's contents: relation names,
// schemas, and every tuple in insertion order. Two executions share cache
// entries only under equal fingerprints, so a mutated or regenerated
// database (each SAT repetition builds a fresh one) never aliases stale
// results. The paper's databases are tiny — a 6-tuple relation for
// 3-COLOR — so the digest is recomputed per execution rather than
// memoized against mutation hazards.
func DatabaseFingerprint(db cq.Database) string {
	names := make([]string, 0, len(db))
	for name := range db {
		names = append(names, name)
	}
	sort.Strings(names)
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= 1099511628211
		}
	}
	for _, name := range names {
		for i := 0; i < len(name); i++ {
			h ^= uint64(name[i])
			h *= 1099511628211
		}
		r := db[name]
		mix(uint64(r.Arity()))
		mix(uint64(r.Len()))
		for _, a := range r.Attrs() {
			mix(uint64(a))
		}
		r.Each(func(t relation.Tuple) bool {
			for _, v := range t {
				mix(uint64(uint32(v)))
			}
			return true
		})
	}
	return fmt.Sprintf("%016x", h)
}

// cacheKey combines the database and subtree fingerprints, returning the
// canonicalization witness needed to bind a cached relation to the
// subtree's actual variables.
func cacheKey(dbFP string, n plan.Node) (string, []cq.Var) {
	fp, vars := plan.Fingerprint(n)
	return dbFP + "\x00" + fp, vars
}

// streamScanKeys derives the streaming engine's per-scan cache keys: one
// key per base-relation occurrence, in the pushdown pre-pass's collect
// (DFS) order. The reduced view of a scan depends on every reduction edge
// of the plan, so the key embeds the whole plan's renaming-invariant
// fingerprint; the scan position disambiguates occurrences, and DFS order
// corresponds across isomorphic plans.
func streamScanKeys(dbFP string, p plan.Node, n int) []string {
	fp, _ := plan.Fingerprint(p)
	prefix := dbFP + "\x00streamscan:" + fp + ":"
	keys := make([]string, n)
	for i := range keys {
		keys[i] = prefix + strconv.Itoa(i)
	}
	return keys
}

// scanToCanonical renames a scan's (reduced) view onto positional
// attributes 0..arity-1, so the cached relation is invariant to the
// query's variable naming.
func scanToCanonical(rel *relation.Relation, args []cq.Var) *relation.Relation {
	m := make(map[relation.Attr]relation.Attr, len(args))
	for i, a := range args {
		m[a] = relation.Attr(i)
	}
	return relation.Rename(rel, m)
}

// scanFromCanonical binds a cached canonical scan view to the hitting
// atom's actual argument variables.
func scanFromCanonical(rel *relation.Relation, args []cq.Var) *relation.Relation {
	m := make(map[relation.Attr]relation.Attr, len(args))
	for i, a := range args {
		m[relation.Attr(i)] = a
	}
	return relation.Rename(rel, m)
}

// toCanonical renames a subtree result onto the canonical attributes of
// its fingerprint: vars[i] → i.
func toCanonical(rel *relation.Relation, vars []cq.Var) *relation.Relation {
	m := make(map[relation.Attr]relation.Attr, len(vars))
	for i, v := range vars {
		m[v] = i
	}
	return relation.Rename(rel, m)
}

// fromCanonical binds a cached canonical relation to the hitting
// subtree's actual variables: i → vars[i].
func fromCanonical(rel *relation.Relation, vars []cq.Var) *relation.Relation {
	m := make(map[relation.Attr]relation.Attr, len(vars))
	for i, v := range vars {
		m[i] = v
	}
	return relation.Rename(rel, m)
}
