package engine_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/plan"
	"projpush/internal/resilience"
)

// figure9 builds a Figure-9-style instance — the Boolean 3-COLOR query of
// an augmented circular ladder — the regime the resource governor exists
// for: the straightforward plan's intermediates explode while bucket
// elimination stays polynomial.
func figure9(t testing.TB, order int) (*cq.Query, cq.Database) {
	t.Helper()
	g := graph.AugmentedCircularLadder(order)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	return q, instance.ColorDatabase(3)
}

func buildPlan(t testing.TB, m core.Method, q *cq.Query) plan.Node {
	t.Helper()
	p, err := core.BuildPlan(m, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSentinelAliases checks the engine sentinels match their context
// counterparts under errors.Is, and only those.
func TestSentinelAliases(t *testing.T) {
	if !errors.Is(engine.ErrTimeout, context.DeadlineExceeded) {
		t.Error("ErrTimeout does not match context.DeadlineExceeded")
	}
	if !errors.Is(engine.ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled does not match context.Canceled")
	}
	if errors.Is(engine.ErrTimeout, context.Canceled) {
		t.Error("ErrTimeout must not match context.Canceled")
	}
	if errors.Is(engine.ErrRowLimit, context.DeadlineExceeded) {
		t.Error("ErrRowLimit must not match context.DeadlineExceeded")
	}
}

// TestTimeoutMatchesDeadlineExceeded runs a hopeless plan under a tiny
// timeout and checks the failure matches both the engine sentinel and the
// standard library's.
func TestTimeoutMatchesDeadlineExceeded(t *testing.T) {
	q, db := figure9(t, 6)
	p := buildPlan(t, core.MethodStraightforward, q)
	_, err := engine.Exec(p, db, engine.Options{Timeout: 2 * time.Millisecond})
	if !errors.Is(err, engine.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}
}

// TestExecContextCancellation cancels all three executors, before the run
// and mid-run, and checks the failure is ErrCanceled (matching
// context.Canceled) with no goroutine leak.
func TestExecContextCancellation(t *testing.T) {
	q, db := figure9(t, 6)
	p := buildPlan(t, core.MethodStraightforward, q)
	base := runtime.NumGoroutine()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	type runner struct {
		name string
		run  func(ctx context.Context) error
	}
	runners := []runner{
		{"Exec", func(ctx context.Context) error {
			_, err := engine.ExecContext(ctx, p, db, engine.Options{})
			return err
		}},
		{"ExecParallel", func(ctx context.Context) error {
			_, err := engine.ExecParallelContext(ctx, p, db, engine.Options{}, 4)
			return err
		}},
		{"ExecIterator", func(ctx context.Context) error {
			_, err := engine.ExecIteratorContext(ctx, p, db, engine.Options{})
			return err
		}},
	}
	for _, r := range runners {
		if err := r.run(pre); !errors.Is(err, engine.ErrCanceled) {
			t.Fatalf("%s pre-canceled: err = %v, want ErrCanceled", r.name, err)
		}
		ctx, cancelMid := context.WithCancel(context.Background())
		timer := time.AfterFunc(3*time.Millisecond, cancelMid)
		err := r.run(ctx)
		timer.Stop()
		cancelMid()
		if !errors.Is(err, engine.ErrCanceled) {
			t.Fatalf("%s mid-run: err = %v, want ErrCanceled", r.name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s mid-run: err = %v, want errors.Is(err, context.Canceled)", r.name, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked after cancellations: %d before, %d after", base, n)
	}
}

// TestMemBudget checks Options.MaxBytes aborts all three executors with
// ErrMemLimit, and that a roomy budget reports materialized bytes in
// Stats.
func TestMemBudget(t *testing.T) {
	q, db := figure9(t, 4)
	p := buildPlan(t, core.MethodBucketElimination, q)

	ok, err := engine.Exec(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Stats.Bytes <= 0 {
		t.Fatal("successful run reports no materialized bytes")
	}

	tight := engine.Options{MaxBytes: 256}
	if _, err := engine.Exec(p, db, tight); !errors.Is(err, engine.ErrMemLimit) {
		t.Fatalf("Exec: err = %v, want ErrMemLimit", err)
	}
	if _, err := engine.ExecParallel(p, db, tight, 4); !errors.Is(err, engine.ErrMemLimit) {
		t.Fatalf("ExecParallel: err = %v, want ErrMemLimit", err)
	}
	if _, err := engine.ExecIterator(p, db, tight); !errors.Is(err, engine.ErrMemLimit) {
		t.Fatalf("ExecIterator: err = %v, want ErrMemLimit", err)
	}

	// A budget above the run's appetite changes nothing.
	roomy, err := engine.Exec(p, db, engine.Options{MaxBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if !roomy.Rel.Equal(ok.Rel) || roomy.Stats.Bytes != ok.Stats.Bytes {
		t.Fatal("roomy budget perturbed the result or its stats")
	}
}

// TestStatsBytesCacheReplay checks cache hits replay the memoized
// subtree's byte counts, keeping cache-on and cache-off Stats.Bytes
// identical.
func TestStatsBytesCacheReplay(t *testing.T) {
	q, db := figure9(t, 4)
	p := buildPlan(t, core.MethodEarlyProjection, q)

	bare, err := engine.Exec(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := engine.NewCache(0)
	cold, err := engine.Exec(p, db, engine.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := engine.Exec(p, db, engine.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits == 0 {
		t.Fatal("warm run had no cache hits")
	}
	if cold.Stats.Bytes != bare.Stats.Bytes || warm.Stats.Bytes != bare.Stats.Bytes {
		t.Fatalf("Stats.Bytes diverges: bare=%d cold=%d warm=%d",
			bare.Stats.Bytes, cold.Stats.Bytes, warm.Stats.Bytes)
	}
	if cold.Stats.PeakBytes != bare.Stats.PeakBytes || warm.Stats.PeakBytes != bare.Stats.PeakBytes {
		t.Fatalf("Stats.PeakBytes diverges: bare=%d cold=%d warm=%d",
			bare.Stats.PeakBytes, cold.Stats.PeakBytes, warm.Stats.PeakBytes)
	}

	// The EXPLAIN ANALYZE memory and tuple trailers are rendered from the
	// replayed counters, so a fully warmed cache must print the same
	// lines as a cache-off run (the tree differs: hits are marked).
	offOut, err := engine.Explain(p, db, engine.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	onOut, err := engine.Explain(p, db, engine.Options{Cache: cache}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []string{"memory:", "tuples:"} {
		offLine, onLine := lineWithPrefix(offOut, prefix), lineWithPrefix(onOut, prefix)
		if offLine == "" || offLine != onLine {
			t.Fatalf("EXPLAIN ANALYZE %q line diverges under cache replay:\noff: %s\non:  %s",
				prefix, offLine, onLine)
		}
	}
}

func lineWithPrefix(s, prefix string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// TestSubtreePanicIsolation injects panics into the parallel executor's
// subtree workers and checks they surface as ErrInternal instead of
// crashing the process.
func TestSubtreePanicIsolation(t *testing.T) {
	defer faultinject.Disable()
	q, db := figure9(t, 4)
	// Bucket elimination plans are bushy, so subtrees actually fork.
	p := buildPlan(t, core.MethodBucketElimination, q)
	if err := faultinject.Enable("subtree.panic=1", 11); err != nil {
		t.Fatal(err)
	}
	_, err := engine.ExecParallel(p, db, engine.Options{}, 4)
	if !errors.Is(err, engine.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	faultinject.Disable()
	res, err := engine.ExecParallel(p, db, engine.Options{}, 4)
	if err != nil {
		t.Fatalf("after Disable: %v", err)
	}
	oracle, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(oracle) {
		t.Fatal("result differs from oracle after fault injection was disabled")
	}
}

// TestExecResilientDegradation is the end-to-end acceptance check of the
// resource governor: on a Figure-9-style workload, a straightforward plan
// run with injected worker panics and a byte budget too tight for early
// projection degrades down resilience.DegradationLadder and returns, via
// the bucket-elimination rung, a result differentially checked against
// the oracle.
func TestExecResilientDegradation(t *testing.T) {
	defer faultinject.Disable()
	q, db := figure9(t, 4)

	// Calibrate a budget between the two fallback rungs' appetites:
	// early projection must blow it, bucket elimination must fit.
	early, err := engine.Exec(buildPlan(t, core.MethodEarlyProjection, q), db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bucketPlan := buildPlan(t, core.MethodBucketElimination, q)
	bucket, err := engine.Exec(bucketPlan, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bucket.Stats.Bytes >= early.Stats.Bytes {
		t.Fatalf("workload does not separate the methods: bucket=%dB early=%dB",
			bucket.Stats.Bytes, early.Stats.Bytes)
	}
	budget := early.Stats.Bytes * 9 / 10
	if _, err := engine.Exec(bucketPlan, db, engine.Options{MaxBytes: budget}); err != nil {
		t.Fatalf("calibration: bucket elimination does not fit the budget %d: %v", budget, err)
	}

	// semijoin.alloc=1 knocks out the streaming rung's first pushdown
	// sweep, so the run degrades through every rung of the explicit
	// stream → earlyprojection → bucketelimination ladder.
	if err := faultinject.Enable("join.panic=1,subtree.panic=1,semijoin.alloc=1", 23); err != nil {
		t.Fatal(err)
	}
	opt := engine.Options{MaxBytes: budget}
	ladder := append([]engine.Fallback{resilience.StreamRung(q)}, resilience.PlanLadder(q, nil)...)
	res, err := engine.ExecResilient(context.Background(), buildPlan(t, core.MethodStraightforward, q),
		ladder, db, opt, 4)
	if err != nil {
		t.Fatalf("ExecResilient failed down the whole ladder: %v\nattempts: %+v",
			err, res.Stats.Attempts)
	}

	at := res.Stats.Attempts
	if len(at) != 4 {
		t.Fatalf("attempts = %+v, want 4 (given, stream, earlyprojection, bucketelimination)", at)
	}
	if at[0].Method != "given" || at[0].Err == "" {
		t.Fatalf("first attempt = %+v, want a failed 'given' run", at[0])
	}
	if at[1].Method != string(core.MethodStream) || !errorsContains(at[1].Err, "memory") {
		t.Fatalf("second attempt = %+v, want the stream rung failing on the injected allocation fault", at[1])
	}
	if at[2].Method != string(core.MethodEarlyProjection) || !errorsContains(at[2].Err, "memory") {
		t.Fatalf("third attempt = %+v, want early projection failing on the byte budget", at[2])
	}
	if last := at[3]; last.Method != string(core.MethodBucketElimination) || last.Err != "" {
		t.Fatalf("last attempt = %+v, want bucket elimination succeeding", at[3])
	}

	oracle, err := engine.EvalOracle(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(oracle) {
		t.Fatalf("degraded result differs from oracle (%d vs %d rows)",
			res.Rel.Len(), oracle.Len())
	}

	// The default ladder for this wide query leads with the
	// worst-case-optimal rung, which survives the injected faults and the
	// byte budget outright: the run is rescued in one fallback instead of
	// degrading through the materializing methods.
	res2, err := engine.ExecResilient(context.Background(), buildPlan(t, core.MethodStraightforward, q),
		resilience.DegradationLadder(q, nil), db, opt, 4)
	if err != nil {
		t.Fatalf("ExecResilient with default ladder: %v", err)
	}
	at2 := res2.Stats.Attempts
	if len(at2) != 2 || at2[1].Method != string(core.MethodWCOJ) || at2[1].Err != "" {
		t.Fatalf("default-ladder attempts = %+v, want [given, wcoj(success)]", at2)
	}
	if !res2.Rel.Equal(oracle) {
		t.Fatalf("wcoj-rescued result differs from oracle (%d vs %d rows)",
			res2.Rel.Len(), oracle.Len())
	}
}

// errorsContains reports whether the recorded attempt error mentions sub.
func errorsContains(errStr, sub string) bool {
	return errStr != "" && strings.Contains(errStr, sub)
}
